// Quickstart: simulate one energy-constrained real-time task under the
// paper's adaptive checkpointing schemes and print what happened.
//
//   ./quickstart [--utilization=0.8] [--lambda=1.4e-3] [--k=5]
//                [--runs=2000]
//
// Walks through the three layers of the library:
//   1. model   — describe the task, platform, costs, and fault process
//   2. policy  — pick a checkpointing scheme
//   3. sim     — run one traced execution, then a Monte-Carlo cell
#include <iostream>

#include "analytic/dvs_estimate.hpp"
#include "policy/factory.hpp"
#include "sim/monte_carlo.hpp"
#include "sim/trace.hpp"
#include "util/cli.hpp"
#include "util/tables.hpp"

int main(int argc, char** argv) {
  using namespace adacheck;
  const util::CliArgs args(argc, argv,
                           {"utilization", "lambda", "k", "runs"});
  const double utilization = args.get_double("utilization", 0.80);
  const double lambda = args.get_double("lambda", 1.4e-3);
  const int k = static_cast<int>(args.get_int("k", 5));
  const int runs = static_cast<int>(args.get_int("runs", 2'000));

  // 1. Model: a job of N = U*D cycles against deadline D = 10000 on a
  //    two-speed DVS processor (f1 = 1, f2 = 2), DMR with SCP-flavor
  //    checkpoint costs, transient faults at rate lambda.
  sim::SimSetup setup{
      model::task_from_utilization(utilization, 1.0, 10'000.0, k),
      model::CheckpointCosts::paper_scp_flavor(),
      model::DvsProcessor::two_speed(2.0),
      model::FaultModel{lambda, false}};

  std::cout << "Task: N=" << setup.task.cycles << " cycles, D="
            << setup.task.deadline << ", k=" << k << ", lambda=" << lambda
            << "\n";
  const double t_est_low = analytic::dvs_time_estimate(
      setup.task.cycles, 1.0, setup.costs.cscp(), lambda);
  std::cout << "Fault-aware completion estimate at f1: " << t_est_low
            << (t_est_low <= setup.task.deadline ? "  (fits: start slow)"
                                                 : "  (misses: start fast)")
            << "\n\n";

  // 2+3a. One traced run of the paper's A_D_S scheme.
  auto policy = policy::make_policy("A_D_S");
  sim::EngineConfig engine_config;
  engine_config.record_trace = true;
  const auto run = sim::simulate_seeded(setup, *policy, /*seed=*/2006,
                                        engine_config);
  std::cout << "One seeded run of " << policy->name() << ": "
            << to_string(run.outcome) << " at t=" << run.finish_time
            << ", energy=" << run.energy << ", faults=" << run.faults
            << ", rollbacks=" << run.rollbacks << "\n";
  std::cout << "Checkpoints placed: " << run.checkpoints_scp << " SCP, "
            << run.checkpoints_ccp << " CCP, " << run.checkpoints_cscp
            << " CSCP; speed switches: " << run.speed_switches << "\n";
  if (run.faults > 0) {
    std::cout << "\nTrace excerpt (first 12 events):\n";
    sim::Trace excerpt;
    for (std::size_t i = 0; i < run.trace.size() && i < 12; ++i) {
      const auto& e = run.trace.events()[i];
      excerpt.push(e.kind, e.time, e.value, e.aux);
    }
    std::cout << excerpt.to_string();
  }

  // 3b. Monte-Carlo comparison of all schemes on this cell.
  std::cout << "\nMonte-Carlo (" << runs << " runs/cell):\n";
  util::TextTable table(
      {"scheme", "P(timely)", "E(success)", "faults/run", "rollbacks/run"});
  sim::MonteCarloConfig config;
  config.runs = runs;
  for (const auto& name : policy::known_policies()) {
    const auto stats =
        sim::run_cell(setup, policy::make_policy_factory(name), config);
    table.add_row({name, util::fmt_prob(stats.probability()),
                   util::fmt_energy(stats.energy()),
                   util::fmt_fixed(stats.faults.mean(), 2),
                   util::fmt_fixed(stats.rollbacks.mean(), 2)});
  }
  std::cout << table;
  return 0;
}
