// Mixed-criticality control task set on one DMR computer (scheduling
// substrate demo).
//
// Three periodic tasks — attitude control, navigation fusion, and
// telemetry packing — share the processor under a non-preemptive EDF
// executive.  Jobs are checkpointed per the paper's schemes.  The
// example first runs the analytic admission check (fault-aware
// effective utilization + non-preemptive blocking), then simulates a
// long window and reports per-task deadline-miss ratios and energy
// under three policy assignments.
#include <iostream>

#include "sched/executive.hpp"
#include "sched/taskset.hpp"
#include "util/cli.hpp"
#include "util/tables.hpp"

int main(int argc, char** argv) {
  using namespace adacheck;
  const util::CliArgs args(argc, argv, {"horizon", "lambda"});
  const double horizon = args.get_double("horizon", 400'000.0);
  const double lambda = args.get_double("lambda", 1.2e-3);

  auto make_set = [](const char* policy) {
    sched::TaskSet set;
    sched::PeriodicTask attitude;
    attitude.name = "attitude";
    attitude.cycles = 2'600.0;
    attitude.period = 10'000.0;
    attitude.relative_deadline = 6'000.0;
    attitude.fault_tolerance = 4;
    attitude.policy = policy;
    sched::PeriodicTask navigation;
    navigation.name = "navigation";
    navigation.cycles = 3'000.0;
    navigation.period = 20'000.0;
    navigation.fault_tolerance = 4;
    navigation.policy = policy;
    sched::PeriodicTask telemetry;
    telemetry.name = "telemetry";
    telemetry.cycles = 4'000.0;
    telemetry.period = 40'000.0;
    telemetry.phase = 5'000.0;
    telemetry.fault_tolerance = 4;
    telemetry.policy = policy;
    set.tasks = {attitude, navigation, telemetry};
    return set;
  };

  const auto set = make_set("A_D_S");
  std::cout << "=== Control task set on one DMR computer ===\n"
            << "lambda = " << lambda << ", horizon = " << horizon << "\n\n";
  std::cout << "Admission analysis (f1):\n"
            << "  raw utilization       = " << set.utilization(1.0) << "\n"
            << "  effective (fault-aware) = "
            << sched::effective_utilization(set, 1.0, 22.0, lambda) << "\n";
  const auto blocking = sched::blocking_estimates(set, 1.0, 22.0, lambda);
  for (std::size_t i = 0; i < set.tasks.size(); ++i) {
    std::cout << "  " << set.tasks[i].name
              << ": worst-case blocking ~ " << util::fmt_fixed(blocking[i], 0)
              << " of deadline " << set.tasks[i].deadline() << "\n";
  }
  std::cout << "\n";

  util::TextTable table({"policy", "task", "released", "completed",
                         "miss ratio", "mean response", "energy"});
  for (const char* policy : {"k-f-t", "A_D", "A_D_S"}) {
    const auto policy_set = make_set(policy);
    sched::ExecutiveConfig config;
    config.horizon = horizon;
    config.costs = model::CheckpointCosts::paper_scp_flavor();
    config.fault_model = model::FaultModel{lambda, false};
    config.seed = 0xC0DE;
    const auto result = sched::run_executive(policy_set, config);
    for (std::size_t i = 0; i < policy_set.tasks.size(); ++i) {
      const auto& stats = result.per_task[i];
      table.add_row({policy, policy_set.tasks[i].name,
                     std::to_string(stats.released),
                     std::to_string(stats.completed),
                     util::fmt_prob(result.miss_ratio(i)),
                     util::fmt_fixed(stats.response_time.mean(), 0),
                     util::fmt_energy(stats.energy)});
    }
    table.add_rule();
  }
  std::cout << table
            << "\nReading: under the fixed k-f-t scheme faults snowball\n"
               "through the queue (non-preemptive blocking), while the\n"
               "adaptive DVS schemes absorb them; A_D_S does so with the\n"
               "least energy.\n";
  return 0;
}
