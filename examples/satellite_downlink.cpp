// Satellite telemetry downlink with post-mortem replay (the paper's
// "space systems working on a limited combination of solar and battery
// power").
//
// A compression job must finish before each ground-station contact
// window closes.  Radiation events (South Atlantic Anomaly crossings)
// spike the fault rate by an order of magnitude for short stretches:
// exactly the two-state Markov-modulated burst process of the
// fault-environment subsystem.  The example contrasts a Poisson
// process at the *matched average rate* with the bursty environment —
// same long-run lambda, very different tail — and shows the
// rate-tracking A_D_C-est scheme recovering part of the loss.
//
// It also demonstrates record/replay: every run is traced; the worst
// bursty run is re-executed deterministically from its recorded fault
// trace, which is how an engineer would debug a missed downlink after
// the fact.
#include <algorithm>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "model/fault.hpp"
#include "model/fault_env.hpp"
#include "policy/factory.hpp"
#include "sim/engine.hpp"
#include "sim/validators.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/tables.hpp"

namespace {

using namespace adacheck;

model::FaultTrace extract_faults(const sim::RunResult& result) {
  model::FaultTrace trace;
  for (const auto& e : result.trace.events()) {
    if (e.kind == sim::TraceEventKind::kFault) trace.record(e.value, e.aux);
  }
  return trace;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv, {"runs", "lambda-quiet", "saa-mult",
                                        "quiet-dwell", "saa-dwell"});
  const int runs = static_cast<int>(args.get_int("runs", 3'000));
  const double lambda_quiet = args.get_double("lambda-quiet", 6.0e-4);
  // SAA crossing: ~12x the quiet rate for ~250 time units out of every
  // ~2550 (one crossing per orbit-ish period).
  const double saa_mult = args.get_double("saa-mult", 12.0);
  const double quiet_dwell = args.get_double("quiet-dwell", 2'300.0);
  const double saa_dwell = args.get_double("saa-dwell", 250.0);

  const auto orbit_env =
      model::FaultEnvironment::bursty(saa_mult, quiet_dwell, saa_dwell);
  const double lambda_avg = lambda_quiet * orbit_env.rate_multiplier();

  // Downlink prep: N = 9200 cycles at f1 against a 10000-unit window.
  sim::SimSetup setup{
      model::task_from_utilization(0.92, 1.0, 10'000.0, 3),
      model::CheckpointCosts::paper_ccp_flavor(),  // stores dominate: CCPs
      model::DvsProcessor::two_speed(2.0),
      model::FaultModel{lambda_avg, false}};

  std::cout << "=== Satellite downlink: U = 0.92, CCP-flavor costs ===\n"
            << "orbit environment: " << saa_mult << "x bursts, "
            << quiet_dwell << "/" << saa_dwell << " dwell, lambda_avg = "
            << util::fmt_sci(lambda_avg, 2) << "\n\n";

  struct EnvCase {
    const char* label;
    model::FaultEnvironment env;
    double rate;  ///< FaultModel rate making the averages match
  };
  // The bursty case uses the quiet rate: the environment's multiplier
  // brings its long-run average up to lambda_avg, so both rows inject
  // the same mean number of faults per window.
  const std::vector<EnvCase> cases = {
      {"poisson (avg)", model::FaultEnvironment::exponential(), lambda_avg},
      {"SAA bursts", orbit_env, lambda_quiet},
  };

  util::TextTable table({"fault process", "scheme", "P(timely)",
                         "worst finish", "faults(max)"});
  std::optional<model::FaultTrace> worst_trace;
  double worst_finish = -1.0;

  for (const auto& env_case : cases) {
    setup.fault_model.rate = env_case.rate;
    setup.environment = env_case.env;
    for (const char* scheme : {"A_D", "A_D_C", "A_D_C-est"}) {
      auto factory = policy::make_policy_factory(scheme);
      double worst = 0.0;
      int worst_faults = 0;
      int completions = 0;
      sim::EngineConfig config;
      config.record_trace = true;
      for (int i = 0; i < runs; ++i) {
        auto policy = factory();
        const auto result = sim::simulate_seeded(
            setup, *policy,
            util::derive_seed(0x5A7, static_cast<std::uint64_t>(i)), config);
        completions += result.completed();
        if (result.finish_time > worst) {
          worst = result.finish_time;
          worst_faults = result.faults;
          // Keep the globally worst bursty A_D_C-est run for the
          // replay demo.
          if (std::string(scheme) == "A_D_C-est" &&
              env_case.env.burst.enabled && worst > worst_finish) {
            worst_finish = worst;
            worst_trace = extract_faults(result);
          }
        }
      }
      table.add_row({env_case.label, scheme,
                     util::fmt_prob(static_cast<double>(completions) / runs),
                     util::fmt_fixed(worst, 1),
                     std::to_string(worst_faults)});
    }
    table.add_rule();
  }
  std::cout << table;

  // Post-mortem: replay the worst bursty run deterministically.
  if (worst_trace) {
    std::cout << "\nPost-mortem replay of the worst bursty A_D_C-est run ("
              << worst_trace->size() << " faults recorded):\n";
    setup.fault_model.rate = lambda_quiet;
    setup.environment = orbit_env;
    model::ReplayFaultSource source(*worst_trace);
    auto policy = policy::make_policy("A_D_C-est");
    sim::EngineConfig config;
    config.record_trace = true;
    const auto replay = sim::simulate(setup, *policy, source, config);
    std::cout << "  outcome=" << to_string(replay.outcome)
              << " finish=" << replay.finish_time
              << " rollbacks=" << replay.rollbacks
              << " speed switches=" << replay.speed_switches << "\n";
    const auto violations = sim::validate_all(setup, replay);
    std::cout << "  invariant check: "
              << (violations.empty() ? "clean" : violations[0].message)
              << "\n";
    std::cout << "  fault timeline (exposure coordinates): ";
    for (const auto& e : worst_trace->events()) std::cout << e.time << " ";
    std::cout << "\n";
  }
  return 0;
}
