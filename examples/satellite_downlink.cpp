// Satellite telemetry downlink with post-mortem replay (the paper's
// "space systems working on a limited combination of solar and battery
// power").
//
// A compression job must finish before each ground-station contact
// window closes.  During a radiation event (e.g. a South Atlantic
// Anomaly crossing) the fault rate spikes by an order of magnitude.
// The example demonstrates the record/replay facility: every run is
// traced; the worst run is re-executed deterministically from its
// recorded fault trace, which is how an engineer would debug a missed
// downlink after the fact.
#include <algorithm>
#include <iostream>
#include <optional>

#include "model/fault.hpp"
#include "policy/factory.hpp"
#include "sim/engine.hpp"
#include "sim/validators.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/tables.hpp"

namespace {

using namespace adacheck;

model::FaultTrace extract_faults(const sim::RunResult& result) {
  model::FaultTrace trace;
  for (const auto& e : result.trace.events()) {
    if (e.kind == sim::TraceEventKind::kFault) trace.record(e.value, e.aux);
  }
  return trace;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv, {"runs", "lambda-quiet", "lambda-saa"});
  const int runs = static_cast<int>(args.get_int("runs", 3'000));
  const double lambda_quiet = args.get_double("lambda-quiet", 2.0e-4);
  const double lambda_saa = args.get_double("lambda-saa", 2.4e-3);

  // Downlink prep: N = 9200 cycles at f1 against a 10000-unit window.
  sim::SimSetup setup{
      model::task_from_utilization(0.92, 1.0, 10'000.0, 3),
      model::CheckpointCosts::paper_ccp_flavor(),  // stores dominate: CCPs
      model::DvsProcessor::two_speed(2.0),
      model::FaultModel{lambda_quiet, false}};

  std::cout << "=== Satellite downlink: U = 0.92, CCP-flavor costs ===\n\n";

  util::TextTable table({"orbit segment", "lambda", "scheme", "P(timely)",
                         "worst finish", "faults(max)"});
  std::optional<model::FaultTrace> worst_trace;
  double worst_finish = -1.0;

  for (const auto& [segment, lambda] :
       {std::pair<const char*, double>{"quiet orbit", lambda_quiet},
        std::pair<const char*, double>{"SAA crossing", lambda_saa}}) {
    setup.fault_model.rate = lambda;
    for (const char* scheme : {"A_D", "A_D_C"}) {
      auto factory = policy::make_policy_factory(scheme);
      double worst = 0.0;
      int worst_faults = 0;
      int completions = 0;
      sim::EngineConfig config;
      config.record_trace = true;
      for (int i = 0; i < runs; ++i) {
        auto policy = factory();
        const auto result = sim::simulate_seeded(
            setup, *policy, util::derive_seed(0x5A7, static_cast<std::uint64_t>(i)),
            config);
        completions += result.completed();
        if (result.finish_time > worst) {
          worst = result.finish_time;
          worst_faults = result.faults;
          // Keep the globally worst A_D_C run for the replay demo.
          if (std::string(scheme) == "A_D_C" && worst > worst_finish) {
            worst_finish = worst;
            worst_trace = extract_faults(result);
          }
        }
      }
      table.add_row({segment, util::fmt_sci(lambda, 1), scheme,
                     util::fmt_prob(static_cast<double>(completions) / runs),
                     util::fmt_fixed(worst, 1),
                     std::to_string(worst_faults)});
    }
    table.add_rule();
  }
  std::cout << table;

  // Post-mortem: replay the worst A_D_C run deterministically.
  if (worst_trace) {
    std::cout << "\nPost-mortem replay of the worst A_D_C run ("
              << worst_trace->size() << " faults recorded):\n";
    setup.fault_model.rate = lambda_saa;
    model::ReplayFaultSource source(*worst_trace);
    auto policy = policy::make_policy("A_D_C");
    sim::EngineConfig config;
    config.record_trace = true;
    const auto replay = sim::simulate(setup, *policy, source, config);
    std::cout << "  outcome=" << to_string(replay.outcome)
              << " finish=" << replay.finish_time
              << " rollbacks=" << replay.rollbacks
              << " speed switches=" << replay.speed_switches << "\n";
    const auto violations = sim::validate_all(setup, replay);
    std::cout << "  invariant check: "
              << (violations.empty() ? "clean" : violations[0].message)
              << "\n";
    std::cout << "  fault timeline (exposure coordinates): ";
    for (const auto& e : worst_trace->events()) std::cout << e.time << " ";
    std::cout << "\n";
  }
  return 0;
}
