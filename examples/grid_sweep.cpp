// Custom parameter-grid sweep.
//
// The paper's tables fix a handful of (U, lambda) points; a designer
// exploring a new platform wants a denser grid.  This example builds a
// custom ExperimentSpec — any utilization x fault-rate grid, any
// scheme list — and runs the whole grid as one flat task queue via
// harness::run_sweep, printing the measured table and the sweep's
// throughput, and optionally writing the machine-readable JSON.
//
// Usage: example_grid_sweep [--runs=N] [--threads=T] [--json=path]
#include <fstream>
#include <iostream>

#include "harness/json_report.hpp"
#include "harness/report.hpp"
#include "harness/sweep.hpp"
#include "util/cli.hpp"
#include "util/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace adacheck;
  const util::CliArgs args(argc, argv, {"runs", "threads", "json"});

  // A grid the paper never printed: utilization from relaxed to
  // saturated, fault rates from benign to hostile, SCP-flavor costs.
  harness::ExperimentSpec spec;
  spec.id = "grid";
  spec.title = "Custom grid: U x lambda under SCP-flavor costs";
  spec.costs = model::CheckpointCosts::paper_scp_flavor();
  spec.deadline = 10'000.0;
  spec.fault_tolerance = 5;
  spec.speed_ratio = 2.0;
  spec.util_level = 0;
  spec.schemes = {"Poisson", "A_D", "A_D_S", "A_D_C"};
  for (const double u : {0.70, 0.76, 0.82, 0.88}) {
    for (const double lambda : {2.0e-4, 8.0e-4, 1.4e-3, 2.0e-3}) {
      spec.rows.push_back({u, lambda, {}});
    }
  }

  sim::MonteCarloConfig config;
  config.runs = static_cast<int>(args.get_int("runs", 2'000));
  config.threads = static_cast<int>(args.get_int("threads", 0));
  config.seed = 0x5EED'06D1;
  util::ThreadPool::set_shared_size(config.threads);

  const auto sweep = harness::run_sweep({spec}, config);
  const auto& result = sweep.experiments.front();

  std::cout << harness::render_experiment(result) << "\n"
            << "sweep: " << sweep.perf.cells << " cells x " << config.runs
            << " runs on " << sweep.perf.threads << " threads — "
            << sweep.perf.runs_per_second << " runs/s\n";

  const std::string json_path = args.get_string("json", "");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cannot open " << json_path << "\n";
      return 1;
    }
    harness::write_sweep_json(sweep, out);
    std::cout << "wrote " << json_path << "\n";
  }

  std::cout << "\nReading: the adaptive schemes hold P near 1.0 deep into\n"
               "the hostile corner of the grid where the Poisson baseline\n"
               "collapses; A_D_S vs A_D_C shows the cost-flavor tradeoff\n"
               "on a grid the paper never tabulated.\n";
  return 0;
}
