// Remote sensor fleet sizing (the paper's "time-sensitive systems
// deployed in remote locations where a steady power supply is not
// available").
//
// Each node runs a periodic sensing/aggregation task from a fixed
// battery.  Given a fleet-wide reliability requirement, the question is
// the engineering tradeoff the paper's energy tables quantify: which
// scheme maximizes node lifetime while meeting the per-job completion
// probability, and how does the answer move with the fault environment?
#include <cmath>
#include <iostream>

#include "analytic/expected_time.hpp"
#include "analytic/intervals.hpp"
#include "policy/factory.hpp"
#include "sim/monte_carlo.hpp"
#include "util/cli.hpp"
#include "util/tables.hpp"

int main(int argc, char** argv) {
  using namespace adacheck;
  const util::CliArgs args(argc, argv,
                           {"runs", "battery", "target-p", "jobs-per-day"});
  const int runs = static_cast<int>(args.get_int("runs", 3'000));
  const double battery = args.get_double("battery", 2.0e10);
  const double target_p = args.get_double("target-p", 0.999);
  const double jobs_per_day = args.get_double("jobs-per-day", 17'280.0);

  std::cout << "=== Sensor fleet: per-job U = 0.78, k = 5, battery = "
            << battery << " ===\n"
            << "requirement: P(timely) >= " << target_p << " per job\n\n";

  // Back-of-envelope feasibility from the analytic layer first: the
  // designers' first cut before any simulation.
  {
    const double i1 = analytic::poisson_interval(22.0, 1.4e-3);
    analytic::BaselineTaskParams baseline{7'800.0, i1, 1.4e-3,
                                          model::CheckpointCosts::paper_scp_flavor()};
    std::cout << "Analytic sanity (lambda = 1.4e-3): Poisson-interval "
              << util::fmt_fixed(i1, 1) << ", expected completion "
              << util::fmt_fixed(analytic::expected_time(baseline), 0)
              << " of deadline 10000, expected rollbacks/job "
              << util::fmt_fixed(analytic::expected_rollbacks(baseline), 2)
              << "\n\n";
  }

  util::TextTable table({"site lambda", "scheme", "P(timely)", "E/job",
                         "meets P?", "node lifetime (days)"});
  for (const double lambda : {4.0e-4, 1.0e-3, 1.6e-3}) {
    sim::SimSetup setup{
        model::task_from_utilization(0.78, 1.0, 10'000.0, 5),
        model::CheckpointCosts::paper_scp_flavor(),
        model::DvsProcessor::two_speed(2.0),
        model::FaultModel{lambda, false}};
    sim::MonteCarloConfig config;
    config.runs = runs;
    config.seed = 0x5E25;

    for (const char* scheme : {"Poisson", "A_D", "A_D_S"}) {
      const auto stats =
          sim::run_cell(setup, policy::make_policy_factory(scheme), config);
      const double energy = stats.energy_all.mean();
      const double days = battery / (energy * jobs_per_day);
      table.add_row(
          {util::fmt_sci(lambda, 1), scheme,
           util::fmt_prob(stats.probability()), util::fmt_energy(energy),
           stats.probability() >= target_p ? "yes" : "NO",
           util::fmt_fixed(days, 1)});
    }
    table.add_rule();
  }
  std::cout << table
            << "\nReading: the Poisson baseline lives longest on paper but\n"
               "cannot meet the completion requirement once faults are\n"
               "non-negligible; among the schemes that do meet it, A_D_S\n"
               "buys measurably more node-days than A_D.\n";
  return 0;
}
