// UAV flight-controller mission (the paper's "autonomous airborne
// systems working on limited battery supply").
//
// A control job runs once per 50 ms frame for a 3-hour mission.  The
// transient-fault process depends on altitude: more atmospheric
// neutrons higher up (higher rate), and at survey altitude the flux
// arrives in correlated bursts (solar activity), which the plain
// Poisson model understates.  Each phase therefore carries a fault
// *environment*, not just a lambda.  The example asks two operational
// questions:
//   1. Which checkpointing scheme keeps the control deadline-miss rate
//      below a 1e-3 budget in every phase — including the bursty one?
//   2. How many control frames does the battery fund under each scheme?
#include <iostream>
#include <string>
#include <vector>

#include "model/fault_env.hpp"
#include "policy/factory.hpp"
#include "sim/monte_carlo.hpp"
#include "util/cli.hpp"
#include "util/tables.hpp"

namespace {

using namespace adacheck;

struct MissionPhase {
  std::string name;
  double minutes;
  double lambda;  // per-time-unit quiet fault rate at this altitude
  model::FaultEnvironment environment;
  std::string environment_label;
};

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv, {"runs", "battery"});
  const int runs = static_cast<int>(args.get_int("runs", 4'000));
  // Battery budget in the same V^2*cycles units the simulator reports.
  const double battery = args.get_double("battery", 1.3e10);

  // One control frame: 8200 cycles of worst-case work at f1 against a
  // 10000-unit frame deadline (U = 0.82), tolerate k = 5 faults/frame.
  const auto poisson = model::FaultEnvironment::exponential();
  // Survey altitude: solar-modulated neutron showers — 8x bursts a few
  // frames long, with a fifth of the strikes hitting both replicas.
  const auto showers = model::FaultEnvironment::bursty(8.0, 1'800.0, 300.0)
                           .with_common_cause(0.2);
  const std::vector<MissionPhase> phases = {
      {"takeoff  (0.5 km)", 20.0, 4.0e-4, poisson, "poisson"},
      {"transit  (3 km)", 60.0, 9.0e-4, poisson, "poisson"},
      {"survey   (6 km)", 80.0, 1.1e-3, showers, "8x bursts+cc"},
      {"descent  (1 km)", 20.0, 5.0e-4, poisson, "poisson"},
  };

  std::cout << "=== UAV mission: 50 ms control frames, U = 0.82, k = 5 ===\n"
            << "miss budget per phase: P(miss) <= 1e-3; battery = "
            << battery << " energy units\n\n";

  const std::vector<std::string> schemes = {"k-f-t", "A_D_S", "A_D_S-est"};
  util::TextTable table({"phase", "environment", "lambda", "scheme",
                         "P(timely)", "E/frame", "meets 1e-3?",
                         "frames on battery"});

  struct Tally {
    double worst_p = 1.0;
    double total_energy_rate = 0.0;  // weighted by phase duration
  };
  std::vector<Tally> tallies(schemes.size());

  for (const auto& phase : phases) {
    sim::SimSetup setup{
        model::task_from_utilization(0.82, 1.0, 10'000.0, 5),
        model::CheckpointCosts::paper_scp_flavor(),
        model::DvsProcessor::two_speed(2.0),
        model::FaultModel{phase.lambda, false},
        phase.environment};
    sim::MonteCarloConfig config;
    config.runs = runs;
    config.seed = 0xF17E + static_cast<std::uint64_t>(phase.minutes);

    for (std::size_t s = 0; s < schemes.size(); ++s) {
      const auto stats = sim::run_cell(
          setup, policy::make_policy_factory(schemes[s]), config);
      const double p = stats.probability();
      const double energy = stats.energy_all.mean();
      const bool meets = (1.0 - p) <= 1e-3;
      const double frames = battery / energy;
      table.add_row({phase.name, phase.environment_label,
                     util::fmt_sci(phase.lambda, 1), schemes[s],
                     util::fmt_prob(p), util::fmt_energy(energy),
                     meets ? "yes" : "NO",
                     util::fmt_energy(frames)});
      tallies[s].worst_p = std::min(tallies[s].worst_p, p);
      tallies[s].total_energy_rate += phase.minutes * energy;
    }
    table.add_rule();
  }
  std::cout << table << "\nMission summary:\n";
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    // Frames per minute at 20 frames/s * 60 = 1200.
    const double mission_energy = tallies[s].total_energy_rate * 1'200.0;
    std::cout << "  " << schemes[s] << ": worst-phase P = "
              << util::fmt_prob(tallies[s].worst_p)
              << ", 3-hour mission energy = "
              << util::fmt_energy(mission_energy)
              << (mission_energy <= battery ? "  (within battery)"
                                            : "  (EXCEEDS battery)")
              << "\n";
  }
  std::cout << "\nReading: the fixed k-f-t scheme is cheapest but blows the\n"
               "miss budget at every altitude; A_D_S holds it in every\n"
               "phase including the bursty survey leg.  The rate-tracking\n"
               "A_D_S-est matches it under bursts by shortening intervals\n"
               "while a shower is in progress — the flip side is that long\n"
               "quiet stretches relax its plan, trading a sliver of quiet-\n"
               "phase margin for burst responsiveness.\n";
  return 0;
}
