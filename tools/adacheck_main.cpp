// adacheck — the unified scenario driver.
//
// One binary fronting the whole simulation service: scenarios are
// declarative JSON files (schema adacheck-scenario-v1, see
// src/scenario/spec.hpp and README.md "Scenarios"), and every workload
// — paper tables, environment sweeps, the satellite/UAV examples — is
// a file under scenarios/ instead of a hand-compiled binary.
//
// Subcommands:
//   run       execute a scenario, write the adacheck-sweep-v4 report
//   validate  parse + validate scenario files, run nothing
//   list      show the registries scenarios can reference
//
// The cell section of a `run` report is byte-identical to the
// equivalent programmatic sweep at any --threads value (compare with
// --no-perf; the perf section legitimately differs), and so is the
// --jsonl cell stream.  Progress (--progress) and status go to stderr
// whenever stdout carries a document, so machine output stays clean.
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "harness/json_report.hpp"
#include "harness/stream_report.hpp"
#include "model/fault_env.hpp"
#include "policy/factory.hpp"
#include "scenario/binder.hpp"
#include "scenario/spec.hpp"
#include "sim/metrics.hpp"
#include "util/cli.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace adacheck;

int usage(std::ostream& os, int code) {
  os << "adacheck — declarative scenario driver "
        "(conf_date_LiCY06 reproduction)\n"
        "\n"
        "usage:\n"
        "  adacheck run <scenario.json> [--runs=N] [--seed=S] "
        "[--threads=T]\n"
        "               [--budget=HW] [--budget-e=HW] [--min-runs=N] "
        "[--max-runs=N]\n"
        "               [--out=PATH] [--jsonl=PATH] [--progress] "
        "[--quiet]\n"
        "               [--validate] [--no-perf] [--dry-run]\n"
        "  adacheck validate <scenario.json> [more.json ...]\n"
        "  adacheck list [policies|environments|tables|metrics|budget]\n"
        "\n"
        "run flags override the scenario's config and budget blocks;\n"
        "--budget targets a Wilson 95% half-width on P, --budget-e a\n"
        "relative half-width on E (cells then stop at the first\n"
        "256-run chunk boundary meeting every target, within\n"
        "[--min-runs, --max-runs]); --out=- writes the report to\n"
        "stdout; --jsonl streams one JSON line per completed cell (in\n"
        "cell order, byte-identical across thread counts); --progress\n"
        "keeps a live cells/runs-per-second line on stderr; --quiet\n"
        "drops the status chatter; --dry-run binds and prints the plan\n"
        "without simulating.  ADACHECK_THREADS sizes the worker pool\n"
        "when --threads is not given.  Statistics are bit-identical\n"
        "across thread counts.\n";
  return code;
}

std::size_t cell_count(const std::vector<harness::ExperimentSpec>& specs) {
  std::size_t cells = 0;
  for (const auto& spec : specs) {
    cells += spec.rows.size() * spec.schemes.size();
  }
  return cells;
}

/// Swallows status chatter under --quiet (a stream with a null
/// buffer discards everything written to it).
std::ostream& null_stream() {
  static std::ostream stream(nullptr);
  return stream;
}

int cmd_run(int argc, char** argv) {
  const util::CliArgs args(argc, argv,
                           {"runs", "seed", "threads", "budget", "budget-e",
                            "min-runs", "max-runs", "out", "jsonl",
                            "progress!", "quiet!", "validate!", "no-perf!",
                            "dry-run!"});
  if (args.positional().size() != 2) {
    std::cerr << "run expects exactly one scenario file\n";
    return 2;
  }
  auto scenario = scenario::load_scenario_file(args.positional()[1]);

  // Flags override the scenario's config block, under the same range
  // rules the schema enforces.
  scenario.config.runs =
      static_cast<int>(args.get_int("runs", scenario.config.runs));
  if (scenario.config.runs < 1) {
    std::cerr << "--runs must be >= 1\n";
    return 2;
  }
  const std::int64_t seed =
      args.get_int("seed", static_cast<std::int64_t>(scenario.config.seed));
  if (seed < 0) {
    std::cerr << "--seed must be >= 0\n";
    return 2;
  }
  scenario.config.seed = static_cast<std::uint64_t>(seed);
  const std::int64_t threads =
      args.get_int("threads", scenario.config.threads);
  if (threads < 0 || threads > 4096) {
    std::cerr << "--threads must be in [0, 4096]\n";
    return 2;
  }
  scenario.config.threads = static_cast<int>(threads);
  scenario.config.validate =
      args.get_bool("validate", scenario.config.validate);

  // Budget flags layer onto the scenario's "budget" object (or create
  // one); the combined budget is validated the same way the schema
  // validates the object.
  scenario.budget.target_p_halfwidth =
      args.get_double("budget", scenario.budget.target_p_halfwidth);
  scenario.budget.target_e_rel_halfwidth =
      args.get_double("budget-e", scenario.budget.target_e_rel_halfwidth);
  scenario.budget.min_runs = static_cast<int>(
      args.get_int("min-runs", scenario.budget.min_runs));
  scenario.budget.max_runs = static_cast<int>(
      args.get_int("max-runs", scenario.budget.max_runs));
  try {
    scenario.budget.validate();
  } catch (const std::exception& e) {
    std::cerr << "budget flags: " << e.what() << "\n";
    return 2;
  }

  std::string out_path = args.get_string("out", scenario.output);
  if (out_path.empty()) out_path = scenario.name + "_sweep.json";
  const std::string jsonl_path =
      args.get_string("jsonl", scenario.output_jsonl);
  if (jsonl_path == "-") {
    std::cerr << "--jsonl needs a file path (stdout is the report's)\n";
    return 2;
  }
  // With --out=- the report owns stdout; status moves to stderr so the
  // emitted JSON stays clean (and byte-comparable).  --quiet drops the
  // chatter entirely; errors still reach stderr either way.
  const bool quiet = args.get_bool("quiet", false);
  std::ostream& status =
      quiet ? null_stream() : (out_path == "-" ? std::cerr : std::cout);

  const auto specs = scenario::bind_experiments(scenario);
  status << "scenario \"" << scenario.name << "\": " << specs.size()
         << " experiments, " << cell_count(specs) << " cells x ";
  if (scenario.budget.enabled()) {
    const auto& budget = scenario.budget;
    status << "[" << budget.resolved_min(scenario.config.runs) << ", "
           << budget.resolved_max(scenario.config.runs)
           << "] runs (budgeted)\n";
  } else {
    status << scenario.config.runs << " runs\n";
  }

  if (args.get_bool("dry-run", false)) {
    for (const auto& spec : specs) {
      status << "  " << spec.id << ": " << spec.rows.size() << " rows x "
             << spec.schemes.size() << " schemes, environment "
             << spec.environment << "\n";
    }
    if (!scenario.metrics.empty()) {
      status << "  metrics:";
      for (const auto& name : scenario.metrics) status << " " << name;
      status << "\n";
    }
    if (scenario.budget.enabled()) {
      const auto& budget = scenario.budget;
      status << "  budget:";
      if (budget.target_p_halfwidth > 0.0) {
        status << " target_p_halfwidth=" << budget.target_p_halfwidth;
      }
      if (budget.target_e_rel_halfwidth > 0.0) {
        status << " target_e_rel_halfwidth=" << budget.target_e_rel_halfwidth;
      }
      status << " min_runs=" << budget.resolved_min(scenario.config.runs)
             << " max_runs=" << budget.resolved_max(scenario.config.runs)
             << "\n";
    }
    if (!jsonl_path.empty()) status << "  jsonl: " << jsonl_path << "\n";
    status << "dry run: scenario validated and bound, nothing executed\n";
    return 0;
  }

  util::ThreadPool::set_shared_size(scenario.config.threads);

  // Observers: the JSONL cell stream and/or the live progress line,
  // both optional.  Progress always talks to stderr, so it can never
  // contaminate --out (even --out=-) or the JSONL document.
  sim::ObserverList observers;
  std::ofstream jsonl_file;
  std::unique_ptr<harness::JsonlCellStream> jsonl;
  if (!jsonl_path.empty()) {
    jsonl_file.open(jsonl_path, std::ios::binary);
    if (!jsonl_file) {
      std::cerr << "cannot open JSONL output file: " << jsonl_path << "\n";
      return 1;
    }
    jsonl = std::make_unique<harness::JsonlCellStream>(
        jsonl_file, harness::sweep_cell_refs(specs));
    observers.add(jsonl.get());
  }
  std::unique_ptr<harness::ProgressLine> progress;
  if (args.get_bool("progress", false)) {
    progress = std::make_unique<harness::ProgressLine>(std::cerr);
    observers.add(progress.get());
  }
  harness::SweepOptions sweep_options;
  if (!observers.empty()) sweep_options.observer = &observers;

  // Sweep the specs bound above (the same bind the JSONL refs came
  // from) so the stream's cell coordinates can never desync from the
  // jobs actually run.
  const auto sweep = harness::run_sweep(
      specs, scenario::monte_carlo_config(scenario), sweep_options);

  harness::JsonReportOptions options;
  options.include_perf = !args.get_bool("no-perf", false);
  if (out_path == "-") {
    harness::write_sweep_json(sweep, std::cout, options);
  } else {
    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
      std::cerr << "cannot open output file: " << out_path << "\n";
      return 1;
    }
    harness::write_sweep_json(sweep, out, options);
  }

  status << "wall: " << sweep.perf.wall_seconds << " s on "
         << sweep.perf.threads << " threads, " << sweep.perf.runs_per_second
         << " runs/s\n";
  if (out_path != "-") status << "wrote " << out_path << "\n";
  if (!jsonl_path.empty()) {
    status << "streamed " << jsonl->emitted() << " cells to " << jsonl_path
           << "\n";
  }
  return 0;
}

int cmd_validate(int argc, char** argv) {
  const util::CliArgs args(argc, argv, {"help"});
  const auto& files = args.positional();  // [0] is the verb
  if (files.size() < 2) {
    std::cerr << "validate expects at least one scenario file\n";
    return 2;
  }
  int failures = 0;
  for (std::size_t i = 1; i < files.size(); ++i) {
    try {
      const auto scenario = scenario::load_scenario_file(files[i]);
      const auto specs = scenario::bind_experiments(scenario);
      std::cout << files[i] << ": ok (" << specs.size() << " experiments, "
                << cell_count(specs) << " cells)\n";
    } catch (const std::exception& e) {
      std::cerr << e.what() << "\n";
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

void print_section(const std::string& heading,
                   const std::vector<std::string>& names) {
  std::cout << heading << ":\n";
  for (const auto& name : names) std::cout << "  " << name << "\n";
}

int cmd_list(int argc, char** argv) {
  const util::CliArgs args(argc, argv, {"help"});
  const std::string what =
      args.positional().size() > 1 ? args.positional()[1] : "";
  if (what.empty() || what == "policies") {
    print_section("policies (scheme factory names)",
                  policy::known_policies());
  }
  if (what.empty() || what == "environments") {
    print_section("fault environments (registry names)",
                  model::known_environments());
  }
  if (what.empty() || what == "tables") {
    print_section("paper tables", scenario::known_tables());
  }
  if (what.empty() || what == "metrics") {
    print_section("metric recorders (scenario \"metrics\" names)",
                  sim::known_metric_recorders());
  }
  if (what.empty() || what == "budget") {
    print_section(
        "budget knobs (scenario \"budget\" object / run flags)",
        {"target_p_halfwidth (--budget): Wilson 95% half-width on P",
         "target_e_rel_halfwidth (--budget-e): relative 95% half-width on E",
         "min_runs (--min-runs): floor; default one chunk (256 runs)",
         "max_runs (--max-runs): hard cap; default config.runs"});
  }
  if (!what.empty() && what != "policies" && what != "environments" &&
      what != "tables" && what != "metrics" && what != "budget") {
    std::cerr << "unknown list \"" << what
              << "\"; choose policies, environments, tables, metrics, or "
                 "budget\n";
    return 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string verb = util::CliArgs::subcommand(argc, argv);
  try {
    if (verb == "run") return cmd_run(argc, argv);
    if (verb == "validate") return cmd_validate(argc, argv);
    if (verb == "list") return cmd_list(argc, argv);
    if (verb == "help" ||
        util::CliArgs(argc, argv, {"help"}).get_bool("help", false)) {
      return usage(std::cout, 0);
    }
    std::cerr << (verb.empty() ? std::string("missing subcommand")
                               : "unknown subcommand \"" + verb + "\"")
              << "\n\n";
    return usage(std::cerr, 2);
  } catch (const std::exception& e) {
    std::cerr << "adacheck: " << e.what() << "\n";
    return 1;
  }
}
