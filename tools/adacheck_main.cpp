// adacheck — the unified scenario driver.
//
// One binary fronting the whole simulation service: scenarios are
// declarative JSON files (schema adacheck-scenario-v1), campaigns
// (schema adacheck-campaign-v1) are matrices of scenario runs behind a
// content-addressed result cache, and every workload — paper tables,
// environment sweeps, the satellite/UAV examples — is a file under
// scenarios/ instead of a hand-compiled binary.
//
// Subcommands (one cli::CommandRegistry declaration each — dispatch,
// help, --version, and unknown-flag/verb "did you mean" all derive
// from the declarations; see src/cli/command.hpp):
//   run       execute a scenario, write the adacheck-sweep-v5 report
//   campaign  execute a campaign through the result cache, write the
//             adacheck-campaign-report-v1 report
//   validate  parse + validate scenario/campaign files, run nothing
//   list      show the registries scenarios can reference
//   version   print the code-version string
//
// Output selection follows ONE precedence rule everywhere
// (cli::resolve_output): an explicit --out/--jsonl flag wins, else the
// document's "output" object, else the built-in default
// ("<name>_sweep.json" for run, "<name>_campaign.json" for campaign);
// --out=- writes the report to stdout.  The cell section of a `run`
// report is byte-identical to the equivalent programmatic sweep at any
// --threads value (compare with --no-perf; the perf section
// legitimately differs), and so is the --jsonl cell stream.  Progress
// (--progress) and status go to stderr whenever stdout carries a
// document, so machine output stays clean.
#include <fstream>
#include <iostream>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "campaign/runner.hpp"
#include "campaign/spec.hpp"
#include "cli/command.hpp"
#include "harness/json_report.hpp"
#include "harness/stream_report.hpp"
#include "model/fault_env.hpp"
#include "policy/factory.hpp"
#include "scenario/binder.hpp"
#include "scenario/spec.hpp"
#include "sim/metrics.hpp"
#include "util/cli.hpp"
#include "util/thread_pool.hpp"
#include "util/version.hpp"

namespace {

using namespace adacheck;

std::size_t cell_count(const std::vector<harness::ExperimentSpec>& specs) {
  std::size_t cells = 0;
  for (const auto& spec : specs) {
    cells += spec.rows.size() * spec.schemes.size();
  }
  return cells;
}

/// Swallows status chatter under --quiet (a stream with a null
/// buffer discards everything written to it).
std::ostream& null_stream() {
  static std::ostream stream(nullptr);
  return stream;
}

/// Status stream selection shared by run and campaign: with --out=-
/// the report owns stdout, so chatter moves to stderr; --quiet drops
/// it entirely (errors still reach stderr either way).
std::ostream& status_stream(bool quiet, const std::string& out_path) {
  if (quiet) return null_stream();
  return out_path == "-" ? std::cerr : std::cout;
}

// --- run -----------------------------------------------------------------

const std::vector<cli::Flag> kRunFlags = {
    {"runs", "N", "override config.runs (fixed Monte-Carlo count)"},
    {"seed", "S", "override config.seed"},
    {"threads", "T", "parallelism cap and shared-pool size (0 = default)"},
    {"budget", "HW", "target Wilson 95% half-width on P"},
    {"budget-e", "HW", "target relative 95% half-width on E"},
    {"min-runs", "N", "budget floor (default one 256-run chunk)"},
    {"max-runs", "N", "budget hard cap (default config.runs)"},
    {"out", "PATH", "report path (\"-\" = stdout); overrides \"output\""},
    {"jsonl", "PATH", "stream one JSON line per completed cell"},
    {"progress", "", "live cells/runs-per-second line on stderr"},
    {"quiet", "", "drop status chatter"},
    {"validate", "", "run invariant validators on every run"},
    {"no-perf", "", "omit the perf section (byte-stable report)"},
    {"dry-run", "", "bind and print the plan without simulating"},
};

int cmd_run(const util::CliArgs& args) {
  if (args.positional().size() != 2) {
    std::cerr << "run expects exactly one scenario file\n";
    return 2;
  }
  auto scenario = scenario::load_scenario_file(args.positional()[1]);

  // Flags override the scenario's config block, under the same range
  // rules the schema enforces.
  scenario.config.runs =
      static_cast<int>(args.get_int("runs", scenario.config.runs));
  if (scenario.config.runs < 1) {
    std::cerr << "--runs must be >= 1\n";
    return 2;
  }
  const std::int64_t seed =
      args.get_int("seed", static_cast<std::int64_t>(scenario.config.seed));
  if (seed < 0) {
    std::cerr << "--seed must be >= 0\n";
    return 2;
  }
  scenario.config.seed = static_cast<std::uint64_t>(seed);
  const std::int64_t threads =
      args.get_int("threads", scenario.config.threads);
  if (threads < 0 || threads > 4096) {
    std::cerr << "--threads must be in [0, 4096]\n";
    return 2;
  }
  scenario.config.threads = static_cast<int>(threads);
  scenario.config.validate =
      args.get_bool("validate", scenario.config.validate);

  // Budget flags layer onto the scenario's "budget" object (or create
  // one); the combined budget is validated the same way the schema
  // validates the object.
  scenario.budget.target_p_halfwidth =
      args.get_double("budget", scenario.budget.target_p_halfwidth);
  scenario.budget.target_e_rel_halfwidth =
      args.get_double("budget-e", scenario.budget.target_e_rel_halfwidth);
  scenario.budget.min_runs = static_cast<int>(
      args.get_int("min-runs", scenario.budget.min_runs));
  scenario.budget.max_runs = static_cast<int>(
      args.get_int("max-runs", scenario.budget.max_runs));
  try {
    scenario.budget.validate();
  } catch (const std::exception& e) {
    std::cerr << "budget flags: " << e.what() << "\n";
    return 2;
  }

  const std::string out_path = cli::resolve_output(
      args, "out", scenario.output, scenario.name + "_sweep.json");
  const std::string jsonl_path =
      cli::resolve_output(args, "jsonl", scenario.output_jsonl, "");
  if (jsonl_path == "-") {
    std::cerr << "--jsonl needs a file path (stdout is the report's)\n";
    return 2;
  }
  const bool quiet = args.get_bool("quiet", false);
  std::ostream& status = status_stream(quiet, out_path);

  const auto specs = scenario::bind_experiments(scenario);
  status << "scenario \"" << scenario.name << "\": " << specs.size()
         << " experiments, " << cell_count(specs) << " cells x ";
  if (scenario.budget.enabled()) {
    const auto& budget = scenario.budget;
    status << "[" << budget.resolved_min(scenario.config.runs) << ", "
           << budget.resolved_max(scenario.config.runs)
           << "] runs (budgeted)\n";
  } else {
    status << scenario.config.runs << " runs\n";
  }

  if (args.get_bool("dry-run", false)) {
    for (const auto& spec : specs) {
      status << "  " << spec.id << ": " << spec.rows.size() << " rows x "
             << spec.schemes.size() << " schemes, environment "
             << spec.environment << "\n";
    }
    if (!scenario.metrics.empty()) {
      status << "  metrics:";
      for (const auto& name : scenario.metrics) status << " " << name;
      status << "\n";
    }
    if (scenario.budget.enabled()) {
      const auto& budget = scenario.budget;
      status << "  budget:";
      if (budget.target_p_halfwidth > 0.0) {
        status << " target_p_halfwidth=" << budget.target_p_halfwidth;
      }
      if (budget.target_e_rel_halfwidth > 0.0) {
        status << " target_e_rel_halfwidth=" << budget.target_e_rel_halfwidth;
      }
      status << " min_runs=" << budget.resolved_min(scenario.config.runs)
             << " max_runs=" << budget.resolved_max(scenario.config.runs)
             << "\n";
    }
    if (!jsonl_path.empty()) status << "  jsonl: " << jsonl_path << "\n";
    status << "dry run: scenario validated and bound, nothing executed\n";
    return 0;
  }

  util::ThreadPool::set_shared_size(scenario.config.threads);

  // Observers: the JSONL cell stream and/or the live progress line,
  // both optional.  Progress always talks to stderr, so it can never
  // contaminate --out (even --out=-) or the JSONL document.
  sim::ObserverList observers;
  std::ofstream jsonl_file;
  std::unique_ptr<harness::JsonlCellStream> jsonl;
  if (!jsonl_path.empty()) {
    jsonl_file.open(jsonl_path, std::ios::binary);
    if (!jsonl_file) {
      std::cerr << "cannot open JSONL output file: " << jsonl_path << "\n";
      return 1;
    }
    jsonl = std::make_unique<harness::JsonlCellStream>(
        jsonl_file, harness::sweep_cell_refs(specs));
    observers.add(jsonl.get());
  }
  std::unique_ptr<harness::ProgressLine> progress;
  if (args.get_bool("progress", false)) {
    progress = std::make_unique<harness::ProgressLine>(std::cerr);
    observers.add(progress.get());
  }
  harness::SweepOptions sweep_options;
  if (!observers.empty()) sweep_options.observer = &observers;

  // Sweep the specs bound above (the same bind the JSONL refs came
  // from) so the stream's cell coordinates can never desync from the
  // jobs actually run.
  const auto sweep = harness::run_sweep(
      specs, scenario::monte_carlo_config(scenario), sweep_options);

  harness::JsonReportOptions options;
  options.include_perf = !args.get_bool("no-perf", false);
  if (out_path == "-") {
    harness::write_sweep_json(sweep, std::cout, options);
  } else {
    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
      std::cerr << "cannot open output file: " << out_path << "\n";
      return 1;
    }
    harness::write_sweep_json(sweep, out, options);
  }

  status << "wall: " << sweep.perf.wall_seconds << " s on "
         << sweep.perf.threads << " threads, " << sweep.perf.runs_per_second
         << " runs/s\n";
  if (out_path != "-") status << "wrote " << out_path << "\n";
  if (!jsonl_path.empty()) {
    status << "streamed " << jsonl->emitted() << " cells to " << jsonl_path
           << "\n";
  }
  return 0;
}

// --- campaign ------------------------------------------------------------

const std::vector<cli::Flag> kCampaignFlags = {
    {"cache", "DIR", "result cache directory (overrides \"cache_dir\")"},
    {"resume", "", "replay cached cells, execute only misses (default)"},
    {"fresh", "", "ignore the cache, re-execute and overwrite everything"},
    {"fail-fast", "", "stop at the first failed cell, skip the rest"},
    {"threads", "T", "per-cell parallelism cap and shared-pool size"},
    {"out", "PATH", "report path (\"-\" = stdout); overrides \"output\""},
    {"jsonl", "PATH", "campaign stream: header + cell lines per cell"},
    {"progress", "", "live progress line on stderr for executed cells"},
    {"quiet", "", "drop status chatter"},
    {"no-perf", "", "omit the execution section (byte-stable report)"},
    {"dry-run", "", "plan, fingerprint, and probe the cache only"},
};

int cmd_campaign(const util::CliArgs& args) {
  if (args.positional().size() != 2) {
    std::cerr << "campaign expects exactly one campaign file\n";
    return 2;
  }
  const auto spec = campaign::load_campaign_file(args.positional()[1]);

  if (args.get_bool("fresh", false) && args.get_bool("resume", false)) {
    std::cerr << "--fresh and --resume are mutually exclusive\n";
    return 2;
  }
  const std::int64_t threads = args.get_int("threads", -1);
  if (threads < -1 || threads > 4096) {
    std::cerr << "--threads must be in [0, 4096]\n";
    return 2;
  }

  const std::string out_path = cli::resolve_output(
      args, "out", spec.output, spec.name + "_campaign.json");
  const std::string jsonl_path =
      cli::resolve_output(args, "jsonl", spec.output_jsonl, "");
  if (jsonl_path == "-") {
    std::cerr << "--jsonl needs a file path (stdout is the report's)\n";
    return 2;
  }
  const bool quiet = args.get_bool("quiet", false);
  std::ostream& status = status_stream(quiet, out_path);

  campaign::CampaignOptions options;
  options.resume = !args.get_bool("fresh", false);
  options.fail_fast = args.get_bool("fail-fast", false);
  options.threads = static_cast<int>(threads);
  options.cache_dir = args.get_string("cache", "");
  options.status = &status;

  const std::string cache_dir =
      options.cache_dir.empty() ? spec.cache_dir : options.cache_dir;

  if (args.get_bool("dry-run", false)) {
    const auto plan = campaign::plan_campaign(spec);
    status << "campaign \"" << spec.name << "\": " << plan.cells.size()
           << " cells, cache " << cache_dir << "\n";
    for (const auto& cell : plan.cells) {
      status << "  [" << (cell.index + 1) << "] " << cell.resolved.name;
      if (!cell.environment.empty()) status << "@" << cell.environment;
      status << " seed=" << cell.seed << " runs=" << cell.resolved.config.runs
             << " cells=" << cell.sweep_cells << " fp=" << cell.fingerprint
             << " "
             << (campaign::cache_probe(cache_dir, cell.fingerprint)
                     ? "cached"
                     : "miss")
             << "\n";
    }
    status << "dry run: campaign planned, nothing executed\n";
    return 0;
  }

  if (threads >= 0) {
    util::ThreadPool::set_shared_size(static_cast<int>(threads));
  }

  std::ofstream jsonl_file;
  if (!jsonl_path.empty()) {
    jsonl_file.open(jsonl_path, std::ios::binary);
    if (!jsonl_file) {
      std::cerr << "cannot open JSONL output file: " << jsonl_path << "\n";
      return 1;
    }
    options.jsonl = &jsonl_file;
  }
  std::unique_ptr<harness::ProgressLine> progress;
  if (args.get_bool("progress", false)) {
    progress = std::make_unique<harness::ProgressLine>(std::cerr);
    options.observer = progress.get();
  }

  status << "campaign \"" << spec.name << "\": cache " << cache_dir << "\n";
  const auto result = campaign::run_campaign(spec, options);

  campaign::CampaignReportOptions report_options;
  report_options.include_execution = !args.get_bool("no-perf", false);
  if (out_path == "-") {
    campaign::write_campaign_json(spec, result, std::cout, report_options);
  } else {
    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
      std::cerr << "cannot open output file: " << out_path << "\n";
      return 1;
    }
    campaign::write_campaign_json(spec, result, out, report_options);
  }

  std::size_t cached = 0, executed = 0, failed = 0, skipped = 0;
  long long runs = 0;
  for (const auto& outcome : result.outcomes) {
    switch (outcome.status) {
      case campaign::CellStatus::kCached: ++cached; break;
      case campaign::CellStatus::kExecuted: ++executed; break;
      case campaign::CellStatus::kFailed: ++failed; break;
      case campaign::CellStatus::kSkipped: ++skipped; break;
    }
    runs += outcome.runs_executed;
  }
  status << "campaign: " << cached << " cached, " << executed
         << " executed, " << failed << " failed, " << skipped
         << " skipped; " << runs << " runs in " << result.wall_seconds
         << " s\n";
  if (out_path != "-") status << "wrote " << out_path << "\n";
  if (!jsonl_path.empty()) status << "streamed to " << jsonl_path << "\n";
  return result.any_failed() ? 1 : 0;
}

// --- validate ------------------------------------------------------------

int cmd_validate(const util::CliArgs& args) {
  const auto& files = args.positional();  // [0] is the verb
  if (files.size() < 2) {
    std::cerr << "validate expects at least one scenario or campaign file\n";
    return 2;
  }
  int failures = 0;
  for (std::size_t i = 1; i < files.size(); ++i) {
    try {
      // Dispatch on the document's "schema" member: campaign documents
      // validate their matrix AND every referenced scenario (via
      // planning); anything else must be a valid scenario.
      std::ifstream in(files[i], std::ios::binary);
      if (!in) throw std::runtime_error(files[i] + ": cannot open file");
      std::string text((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
      if (campaign::is_campaign_document(util::json::parse(text))) {
        const auto spec = campaign::load_campaign_file(files[i]);
        const auto plan = campaign::plan_campaign(spec);
        std::cout << files[i] << ": ok (campaign, " << plan.cells.size()
                  << " cells)\n";
      } else {
        const auto scenario = scenario::load_scenario_file(files[i]);
        const auto specs = scenario::bind_experiments(scenario);
        std::cout << files[i] << ": ok (" << specs.size()
                  << " experiments, " << cell_count(specs) << " cells)\n";
      }
    } catch (const std::exception& e) {
      std::cerr << e.what() << "\n";
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

// --- list ----------------------------------------------------------------

void print_section(const std::string& heading,
                   const std::vector<std::string>& names) {
  std::cout << heading << ":\n";
  for (const auto& name : names) std::cout << "  " << name << "\n";
}

int cmd_list(const util::CliArgs& args) {
  const std::string what =
      args.positional().size() > 1 ? args.positional()[1] : "";
  if (what.empty() || what == "policies") {
    print_section("policies (scheme factory names)",
                  policy::known_policies());
  }
  if (what.empty() || what == "environments") {
    print_section("fault environments (registry names)",
                  model::known_environments());
  }
  if (what.empty() || what == "tables") {
    print_section("paper tables", scenario::known_tables());
  }
  if (what.empty() || what == "metrics") {
    print_section("metric recorders (scenario \"metrics\" names)",
                  sim::known_metric_recorders());
  }
  if (what.empty() || what == "budget") {
    print_section(
        "budget knobs (scenario \"budget\" object / run flags)",
        {"target_p_halfwidth (--budget): Wilson 95% half-width on P",
         "target_e_rel_halfwidth (--budget-e): relative 95% half-width on E",
         "min_runs (--min-runs): floor; default one chunk (256 runs)",
         "max_runs (--max-runs): hard cap; default config.runs"});
  }
  if (!what.empty() && what != "policies" && what != "environments" &&
      what != "tables" && what != "metrics" && what != "budget") {
    std::cerr << "unknown list \"" << what
              << "\"; choose policies, environments, tables, metrics, or "
                 "budget\n";
    return 2;
  }
  return 0;
}

cli::CommandRegistry build_registry() {
  cli::CommandRegistry registry(
      "adacheck",
      "adacheck — declarative scenario driver "
      "(conf_date_LiCY06 reproduction)",
      util::version_string());
  registry.add({"run", "execute a scenario, write the sweep report",
                "run <scenario.json>", kRunFlags, cmd_run});
  registry.add({"campaign",
                "execute a scenario matrix through the result cache",
                "campaign <campaign.json>", kCampaignFlags, cmd_campaign});
  registry.add({"validate", "parse + validate files, run nothing",
                "validate <file.json> [more.json ...]", {}, cmd_validate});
  registry.add({"list", "show the registries scenarios can reference",
                "list [policies|environments|tables|metrics|budget]", {},
                cmd_list});
  return registry;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return build_registry().dispatch(argc, argv, std::cout, std::cerr);
  } catch (const std::exception& e) {
    std::cerr << "adacheck: " << e.what() << "\n";
    return 1;
  }
}
