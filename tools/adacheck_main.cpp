// adacheck — the unified scenario driver.
//
// One binary fronting the whole simulation service: scenarios are
// declarative JSON files (schema adacheck-scenario-v1), campaigns
// (schema adacheck-campaign-v1) are matrices of scenario runs behind a
// content-addressed result cache, and every workload — paper tables,
// environment sweeps, the satellite/UAV examples — is a file under
// scenarios/ instead of a hand-compiled binary.
//
// Subcommands (one cli::CommandRegistry declaration each — dispatch,
// help, --version, and unknown-flag/verb "did you mean" all derive
// from the declarations; see src/cli/command.hpp):
//   run       execute a scenario, write the adacheck-sweep-v6 report
//   campaign  execute a campaign through the result cache, write the
//             adacheck-campaign-report-v1 report; `campaign ls` and
//             `campaign gc` inspect and prune the cache itself
//   serve     long-lived job service: a loopback TCP daemon speaking
//             adacheck-serve-v1 (submit/status/list/cancel/stream/
//             shutdown) in front of a bounded priority job queue
//   validate  parse + validate scenario/campaign files, run nothing
//   list      show the registries scenarios can reference
//   version   print the code-version string
//
// Output selection follows ONE precedence rule everywhere
// (cli::resolve_output): an explicit --out/--jsonl flag wins, else the
// document's "output" object, else the built-in default
// ("<name>_sweep.json" for run, "<name>_campaign.json" for campaign);
// --out=- writes the report to stdout.  The cell section of a `run`
// report is byte-identical to the equivalent programmatic sweep at any
// --threads value (compare with --no-perf; the perf section
// legitimately differs), and so is the --jsonl cell stream.  Progress
// (--progress) and status go to stderr whenever stdout carries a
// document, so machine output stays clean.
#include <csignal>
#include <fstream>
#include <iostream>
#include <iterator>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/runner.hpp"
#include "campaign/spec.hpp"
#include "cli/command.hpp"
#include "harness/json_report.hpp"
#include "harness/json_writer.hpp"
#include "harness/stream_report.hpp"
#include "model/fault_env.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "policy/factory.hpp"
#include "scenario/binder.hpp"
#include "scenario/spec.hpp"
#include "sched/scheduler.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "sim/metrics.hpp"
#include "util/canonical_json.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/thread_pool.hpp"
#include "util/version.hpp"

namespace {

using namespace adacheck;

std::size_t cell_count(const std::vector<harness::ExperimentSpec>& specs) {
  std::size_t cells = 0;
  for (const auto& spec : specs) {
    cells += spec.rows.size() * spec.schemes.size();
  }
  return cells;
}

std::size_t graph_cell_count(
    const std::vector<harness::GraphExperimentSpec>& graphs) {
  std::size_t cells = 0;
  for (const auto& spec : graphs) {
    cells += spec.lambdas.size() * spec.schedulers.size();
  }
  return cells;
}

/// Swallows status chatter under --quiet (a stream with a null
/// buffer discards everything written to it).
std::ostream& null_stream() {
  static std::ostream stream(nullptr);
  return stream;
}

/// Status stream selection shared by run and campaign: with --out=-
/// the report owns stdout, so chatter moves to stderr; --quiet drops
/// it entirely (errors still reach stderr either way).
std::ostream& status_stream(bool quiet, const std::string& out_path) {
  if (quiet) return null_stream();
  return out_path == "-" ? std::cerr : std::cout;
}

// --- telemetry plumbing (shared by run, campaign, serve) -----------------

/// The two obs output flags; appended to each batch verb's table.
const cli::Flag kTraceOutFlag = {
    "trace-out", "PATH",
    "write a Chrome/Perfetto trace (open in ui.perfetto.dev)"};
const cli::Flag kMetricsOutFlag = {
    "metrics-out", "PATH", "write the adacheck-stats-v1 metrics snapshot"};

std::vector<cli::Flag> with_telemetry_flags(std::vector<cli::Flag> flags) {
  flags.push_back(kTraceOutFlag);
  flags.push_back(kMetricsOutFlag);
  return flags;
}

struct TelemetryOutputs {
  std::string trace_path;
  std::string metrics_path;
};

/// Reads the obs flags and switches telemetry on accordingly.  With
/// neither flag the registry stays disabled and instrumentation costs
/// one relaxed load per site — and the outputs produced either way are
/// byte-identical (pinned by obs_test).
TelemetryOutputs telemetry_setup(const util::CliArgs& args) {
  TelemetryOutputs outputs;
  outputs.trace_path = args.get_string("trace-out", "");
  outputs.metrics_path = args.get_string("metrics-out", "");
  if (!outputs.trace_path.empty()) {
    obs::Tracer::instance().set_enabled(true);
  }
  if (!outputs.trace_path.empty() || !outputs.metrics_path.empty()) {
    obs::Registry::instance().set_enabled(true);
  }
  return outputs;
}

/// Writes whichever obs outputs were requested.  Returns 0, or 1 when
/// a file could not be written (after the run itself succeeded — the
/// result documents are already on disk by now).
int telemetry_finish(const TelemetryOutputs& outputs, std::ostream& status) {
  int rc = 0;
  if (!outputs.trace_path.empty()) {
    obs::Tracer::instance().set_enabled(false);
    if (obs::Tracer::instance().write_file(outputs.trace_path)) {
      status << "wrote trace " << outputs.trace_path << " ("
             << obs::Tracer::instance().event_count() << " events)\n";
    } else {
      std::cerr << "cannot write trace file: " << outputs.trace_path << "\n";
      rc = 1;
    }
  }
  if (!outputs.metrics_path.empty()) {
    std::ofstream out(outputs.metrics_path, std::ios::binary);
    out << obs::stats_json(obs::Registry::instance().snapshot(),
                           /*pretty=*/true);
    if (out) {
      status << "wrote metrics " << outputs.metrics_path << "\n";
    } else {
      std::cerr << "cannot write metrics file: " << outputs.metrics_path
                << "\n";
      rc = 1;
    }
  }
  return rc;
}

// --- run -----------------------------------------------------------------

const std::vector<cli::Flag> kRunFlags = {
    {"runs", "N", "override config.runs (fixed Monte-Carlo count)"},
    {"seed", "S", "override config.seed"},
    {"threads", "T", "parallelism cap and shared-pool size (0 = default)"},
    {"budget", "HW", "target Wilson 95% half-width on P"},
    {"budget-e", "HW", "target relative 95% half-width on E"},
    {"min-runs", "N", "budget floor (default one 256-run chunk)"},
    {"max-runs", "N", "budget hard cap (default config.runs)"},
    {"out", "PATH", "report path (\"-\" = stdout); overrides \"output\""},
    {"jsonl", "PATH", "stream one JSON line per completed cell"},
    {"progress", "", "live cells/runs-per-second line on stderr"},
    {"quiet", "", "drop status chatter"},
    {"validate", "", "run invariant validators on every run"},
    {"no-perf", "", "omit the perf section (byte-stable report)"},
    {"dry-run", "", "bind and print the plan without simulating"},
};

int cmd_run(const util::CliArgs& args) {
  if (args.positional().size() != 2) {
    std::cerr << "run expects exactly one scenario file\n";
    return 2;
  }
  auto scenario = scenario::load_scenario_file(args.positional()[1]);

  // Flags override the scenario's config block, under the same range
  // rules the schema enforces.
  scenario.config.runs =
      static_cast<int>(args.get_int("runs", scenario.config.runs));
  if (scenario.config.runs < 1) {
    std::cerr << "--runs must be >= 1\n";
    return 2;
  }
  const std::int64_t seed =
      args.get_int("seed", static_cast<std::int64_t>(scenario.config.seed));
  if (seed < 0) {
    std::cerr << "--seed must be >= 0\n";
    return 2;
  }
  scenario.config.seed = static_cast<std::uint64_t>(seed);
  const std::int64_t threads =
      args.get_int("threads", scenario.config.threads);
  if (threads < 0 || threads > 4096) {
    std::cerr << "--threads must be in [0, 4096]\n";
    return 2;
  }
  scenario.config.threads = static_cast<int>(threads);
  scenario.config.validate =
      args.get_bool("validate", scenario.config.validate);

  // Budget flags layer onto the scenario's "budget" object (or create
  // one); the combined budget is validated the same way the schema
  // validates the object.
  scenario.budget.target_p_halfwidth =
      args.get_double("budget", scenario.budget.target_p_halfwidth);
  scenario.budget.target_e_rel_halfwidth =
      args.get_double("budget-e", scenario.budget.target_e_rel_halfwidth);
  scenario.budget.min_runs = static_cast<int>(
      args.get_int("min-runs", scenario.budget.min_runs));
  scenario.budget.max_runs = static_cast<int>(
      args.get_int("max-runs", scenario.budget.max_runs));
  try {
    scenario.budget.validate();
  } catch (const std::exception& e) {
    std::cerr << "budget flags: " << e.what() << "\n";
    return 2;
  }

  const std::string out_path = cli::resolve_output(
      args, "out", scenario.output, scenario.name + "_sweep.json");
  const std::string jsonl_path =
      cli::resolve_output(args, "jsonl", scenario.output_jsonl, "");
  if (jsonl_path == "-") {
    std::cerr << "--jsonl needs a file path (stdout is the report's)\n";
    return 2;
  }
  const bool quiet = args.get_bool("quiet", false);
  std::ostream& status = status_stream(quiet, out_path);

  const auto specs = scenario::bind_experiments(scenario);
  const auto graphs = scenario::bind_graphs(scenario);
  status << "scenario \"" << scenario.name << "\": " << specs.size()
         << " experiments";
  if (!graphs.empty()) status << " + " << graphs.size() << " graphs";
  status << ", " << (cell_count(specs) + graph_cell_count(graphs))
         << " cells x ";
  if (scenario.budget.enabled()) {
    const auto& budget = scenario.budget;
    status << "[" << budget.resolved_min(scenario.config.runs) << ", "
           << budget.resolved_max(scenario.config.runs)
           << "] runs (budgeted)\n";
  } else {
    status << scenario.config.runs << " runs\n";
  }

  if (args.get_bool("dry-run", false)) {
    for (const auto& spec : specs) {
      status << "  " << spec.id << ": " << spec.rows.size() << " rows x "
             << spec.schemes.size() << " schemes, environment "
             << spec.environment << "\n";
    }
    for (const auto& spec : graphs) {
      status << "  " << spec.id << ": graph of " << spec.graph.nodes.size()
             << " nodes/" << spec.graph.edges.size() << " edges, "
             << spec.lambdas.size() << " lambdas x "
             << spec.schedulers.size() << " schedulers, " << spec.workers
             << " workers, environment " << spec.environment << "\n";
    }
    if (!scenario.metrics.empty()) {
      status << "  metrics:";
      for (const auto& name : scenario.metrics) status << " " << name;
      status << "\n";
    }
    if (scenario.budget.enabled()) {
      const auto& budget = scenario.budget;
      status << "  budget:";
      if (budget.target_p_halfwidth > 0.0) {
        status << " target_p_halfwidth=" << budget.target_p_halfwidth;
      }
      if (budget.target_e_rel_halfwidth > 0.0) {
        status << " target_e_rel_halfwidth=" << budget.target_e_rel_halfwidth;
      }
      status << " min_runs=" << budget.resolved_min(scenario.config.runs)
             << " max_runs=" << budget.resolved_max(scenario.config.runs)
             << "\n";
    }
    if (!jsonl_path.empty()) status << "  jsonl: " << jsonl_path << "\n";
    status << "dry run: scenario validated and bound, nothing executed\n";
    return 0;
  }

  util::ThreadPool::set_shared_size(scenario.config.threads);
  const TelemetryOutputs telemetry = telemetry_setup(args);

  // Observers: the JSONL cell stream and/or the live progress line,
  // both optional.  Progress always talks to stderr, so it can never
  // contaminate --out (even --out=-) or the JSONL document.
  sim::ObserverList observers;
  std::ofstream jsonl_file;
  std::unique_ptr<harness::JsonlCellStream> jsonl;
  if (!jsonl_path.empty()) {
    jsonl_file.open(jsonl_path, std::ios::binary);
    if (!jsonl_file) {
      std::cerr << "cannot open JSONL output file: " << jsonl_path << "\n";
      return 1;
    }
    jsonl = std::make_unique<harness::JsonlCellStream>(
        jsonl_file, harness::sweep_cell_refs(specs, graphs));
    observers.add(jsonl.get());
  }
  std::unique_ptr<harness::ProgressLine> progress;
  if (args.get_bool("progress", false)) {
    progress = std::make_unique<harness::ProgressLine>(std::cerr);
    observers.add(progress.get());
  }
  harness::SweepOptions sweep_options;
  if (!observers.empty()) sweep_options.observer = &observers;

  // Sweep the specs bound above (the same bind the JSONL refs came
  // from) so the stream's cell coordinates can never desync from the
  // jobs actually run.
  const auto sweep = harness::run_sweep(
      specs, graphs, scenario::monte_carlo_config(scenario), sweep_options);

  harness::JsonReportOptions options;
  options.include_perf = !args.get_bool("no-perf", false);
  if (out_path == "-") {
    harness::write_sweep_json(sweep, std::cout, options);
  } else {
    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
      std::cerr << "cannot open output file: " << out_path << "\n";
      return 1;
    }
    harness::write_sweep_json(sweep, out, options);
  }

  status << "wall: " << sweep.perf.wall_seconds << " s on "
         << sweep.perf.threads << " threads, " << sweep.perf.runs_per_second
         << " runs/s\n";
  if (out_path != "-") status << "wrote " << out_path << "\n";
  if (!jsonl_path.empty()) {
    status << "streamed " << jsonl->emitted() << " cells to " << jsonl_path
           << "\n";
  }
  return telemetry_finish(telemetry, status);
}

// --- campaign ------------------------------------------------------------

const std::vector<cli::Flag> kCampaignFlags = {
    {"cache", "DIR", "result cache directory (overrides \"cache_dir\")"},
    {"resume", "", "replay cached cells, execute only misses (default)"},
    {"fresh", "", "ignore the cache, re-execute and overwrite everything"},
    {"fail-fast", "", "stop at the first failed cell, skip the rest"},
    {"threads", "T", "per-cell parallelism cap and shared-pool size"},
    {"cells", "N", "cache-miss cells in flight (0 = pool width)"},
    {"out", "PATH", "report path (\"-\" = stdout); overrides \"output\""},
    {"jsonl", "PATH", "campaign stream: header + cell lines per cell"},
    {"progress", "", "live progress line on stderr for executed cells"},
    {"quiet", "", "drop status chatter"},
    {"no-perf", "", "omit the execution section (byte-stable report)"},
    {"dry-run", "", "plan/probe only (campaign); report only (gc)"},
    {"older-than", "AGE", "gc: prune valid entries older than 30m/12h/7d"},
};

/// Cache directory for `campaign ls` / `campaign gc`: --cache wins,
/// else the campaign file named after the sub-verb supplies its
/// cache_dir.  Empty string + error message when neither is given.
std::string cache_dir_for(const util::CliArgs& args) {
  std::string cache_dir = args.get_string("cache", "");
  if (!cache_dir.empty()) return cache_dir;
  if (args.positional().size() > 2) {
    return campaign::load_campaign_file(args.positional()[2]).cache_dir;
  }
  return "";
}

std::string format_age(double seconds) {
  std::ostringstream out;
  if (seconds < 60.0) {
    out << static_cast<long long>(seconds) << "s";
  } else if (seconds < 3600.0) {
    out << static_cast<long long>(seconds / 60.0) << "m";
  } else if (seconds < 86400.0) {
    out << static_cast<long long>(seconds / 3600.0) << "h";
  } else {
    out << static_cast<long long>(seconds / 86400.0) << "d";
  }
  return out.str();
}

void print_cache_entry(std::ostream& os, const campaign::CacheEntryInfo& e) {
  os << "  " << e.fingerprint << "  ";
  if (e.valid) {
    os << e.scenario;
    if (!e.environment.empty()) os << "@" << e.environment;
    os << " seed=" << e.seed << " cells=" << e.sweep_cells
       << " runs=" << e.total_runs;
  } else {
    os << "CORRUPT (" << e.defect << ")";
  }
  os << " age=" << format_age(e.age_seconds) << " " << e.bytes << "B\n";
}

int cmd_campaign_ls(const util::CliArgs& args) {
  const std::string cache_dir = cache_dir_for(args);
  if (cache_dir.empty()) {
    std::cerr << "campaign ls needs --cache DIR or a campaign file\n";
    return 2;
  }
  const auto entries = campaign::cache_ls(cache_dir);
  std::size_t valid = 0;
  std::uintmax_t bytes = 0;
  for (const auto& entry : entries) {
    if (entry.valid) ++valid;
    bytes += entry.bytes;
  }
  std::cout << "cache " << cache_dir << ": " << entries.size() << " entries ("
            << valid << " valid, " << (entries.size() - valid)
            << " corrupt), " << bytes << " bytes\n";
  for (const auto& entry : entries) print_cache_entry(std::cout, entry);
  return 0;
}

int cmd_campaign_gc(const util::CliArgs& args) {
  const std::string cache_dir = cache_dir_for(args);
  if (cache_dir.empty()) {
    std::cerr << "campaign gc needs --cache DIR or a campaign file\n";
    return 2;
  }
  campaign::CacheGcOptions options;
  options.dry_run = args.get_bool("dry-run", false);
  const std::string older_than = args.get_string("older-than", "");
  if (!older_than.empty()) {
    try {
      options.older_than_seconds = campaign::parse_duration_seconds(older_than);
    } catch (const std::exception& e) {
      std::cerr << "--older-than: " << e.what() << "\n";
      return 2;
    }
  }
  const auto result = campaign::cache_gc(cache_dir, options);
  const char* verb = options.dry_run ? "would remove" : "removed";
  if (!result.removed.empty()) {
    std::cout << verb << ":\n";
    for (const auto& entry : result.removed) {
      print_cache_entry(std::cout, entry);
    }
  }
  std::cout << "gc " << cache_dir << ": " << verb << " "
            << result.removed.size() << " entries (" << result.bytes_freed
            << " bytes), kept " << result.kept << "\n";
  return 0;
}

int cmd_campaign(const util::CliArgs& args) {
  // `campaign ls` / `campaign gc` operate on the cache itself; the
  // plain verb runs a campaign file.
  if (args.positional().size() >= 2 && args.positional()[1] == "ls") {
    return cmd_campaign_ls(args);
  }
  if (args.positional().size() >= 2 && args.positional()[1] == "gc") {
    return cmd_campaign_gc(args);
  }
  if (args.positional().size() != 2) {
    std::cerr << "campaign expects one campaign file (or the ls/gc "
                 "sub-verbs)\n";
    return 2;
  }
  const auto spec = campaign::load_campaign_file(args.positional()[1]);

  if (args.get_bool("fresh", false) && args.get_bool("resume", false)) {
    std::cerr << "--fresh and --resume are mutually exclusive\n";
    return 2;
  }
  const std::int64_t threads = args.get_int("threads", -1);
  if (threads < -1 || threads > 4096) {
    std::cerr << "--threads must be in [0, 4096]\n";
    return 2;
  }

  const std::string out_path = cli::resolve_output(
      args, "out", spec.output, spec.name + "_campaign.json");
  const std::string jsonl_path =
      cli::resolve_output(args, "jsonl", spec.output_jsonl, "");
  if (jsonl_path == "-") {
    std::cerr << "--jsonl needs a file path (stdout is the report's)\n";
    return 2;
  }
  const bool quiet = args.get_bool("quiet", false);
  std::ostream& status = status_stream(quiet, out_path);

  const std::int64_t cells = args.get_int("cells", 0);
  if (cells < 0 || cells > 4096) {
    std::cerr << "--cells must be in [0, 4096]\n";
    return 2;
  }

  campaign::CampaignOptions options;
  options.resume = !args.get_bool("fresh", false);
  options.fail_fast = args.get_bool("fail-fast", false);
  options.threads = static_cast<int>(threads);
  options.cell_parallelism = static_cast<int>(cells);
  options.cache_dir = args.get_string("cache", "");
  options.status = &status;

  const std::string cache_dir =
      options.cache_dir.empty() ? spec.cache_dir : options.cache_dir;

  if (args.get_bool("dry-run", false)) {
    const auto plan = campaign::plan_campaign(spec);
    status << "campaign \"" << spec.name << "\": " << plan.cells.size()
           << " cells, cache " << cache_dir << "\n";
    for (const auto& cell : plan.cells) {
      status << "  [" << (cell.index + 1) << "] " << cell.resolved.name;
      if (!cell.environment.empty()) status << "@" << cell.environment;
      status << " seed=" << cell.seed << " runs=" << cell.resolved.config.runs
             << " cells=" << cell.sweep_cells << " fp=" << cell.fingerprint
             << " "
             << (campaign::cache_probe(cache_dir, cell.fingerprint)
                     ? "cached"
                     : "miss")
             << "\n";
    }
    status << "dry run: campaign planned, nothing executed\n";
    return 0;
  }

  if (threads >= 0) {
    util::ThreadPool::set_shared_size(static_cast<int>(threads));
  }
  const TelemetryOutputs telemetry = telemetry_setup(args);

  std::ofstream jsonl_file;
  if (!jsonl_path.empty()) {
    jsonl_file.open(jsonl_path, std::ios::binary);
    if (!jsonl_file) {
      std::cerr << "cannot open JSONL output file: " << jsonl_path << "\n";
      return 1;
    }
    options.jsonl = &jsonl_file;
  }
  std::unique_ptr<harness::ProgressLine> progress;
  if (args.get_bool("progress", false)) {
    progress = std::make_unique<harness::ProgressLine>(std::cerr);
    options.observer = progress.get();
  }

  status << "campaign \"" << spec.name << "\": cache " << cache_dir << "\n";
  const auto result = campaign::run_campaign(spec, options);

  campaign::CampaignReportOptions report_options;
  report_options.include_execution = !args.get_bool("no-perf", false);
  if (out_path == "-") {
    campaign::write_campaign_json(spec, result, std::cout, report_options);
  } else {
    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
      std::cerr << "cannot open output file: " << out_path << "\n";
      return 1;
    }
    campaign::write_campaign_json(spec, result, out, report_options);
  }

  std::size_t cached = 0, executed = 0, failed = 0, skipped = 0;
  long long runs = 0;
  for (const auto& outcome : result.outcomes) {
    switch (outcome.status) {
      case campaign::CellStatus::kCached: ++cached; break;
      case campaign::CellStatus::kExecuted: ++executed; break;
      case campaign::CellStatus::kFailed: ++failed; break;
      case campaign::CellStatus::kSkipped: ++skipped; break;
    }
    runs += outcome.runs_executed;
  }
  status << "campaign: " << cached << " cached, " << executed
         << " executed, " << failed << " failed, " << skipped
         << " skipped; " << runs << " runs in " << result.wall_seconds
         << " s\n";
  if (out_path != "-") status << "wrote " << out_path << "\n";
  if (!jsonl_path.empty()) status << "streamed to " << jsonl_path << "\n";
  const int telemetry_rc = telemetry_finish(telemetry, status);
  if (result.any_failed()) return 1;
  return telemetry_rc;
}

// --- validate ------------------------------------------------------------

int cmd_validate(const util::CliArgs& args) {
  const auto& files = args.positional();  // [0] is the verb
  if (files.size() < 2) {
    std::cerr << "validate expects at least one scenario or campaign file\n";
    return 2;
  }
  int failures = 0;
  for (std::size_t i = 1; i < files.size(); ++i) {
    try {
      // Dispatch on the document's "schema" member: campaign documents
      // validate their matrix AND every referenced scenario (via
      // planning); anything else must be a valid scenario.
      std::ifstream in(files[i], std::ios::binary);
      if (!in) throw std::runtime_error(files[i] + ": cannot open file");
      std::string text((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
      // Parse errors must carry the failing document's source: with
      // several files on the command line, a bare "line 3: ..." is
      // useless.
      util::json::Value document;
      try {
        document = util::json::parse(text);
      } catch (const std::exception& e) {
        throw std::runtime_error(files[i] + ": " + e.what());
      }
      if (campaign::is_campaign_document(document)) {
        const auto spec = campaign::load_campaign_file(files[i]);
        const auto plan = campaign::plan_campaign(spec);
        std::cout << files[i] << ": ok (campaign, " << plan.cells.size()
                  << " cells)\n";
      } else {
        const auto scenario = scenario::load_scenario_file(files[i]);
        const auto specs = scenario::bind_experiments(scenario);
        const auto graphs = scenario::bind_graphs(scenario);
        std::cout << files[i] << ": ok (" << specs.size() << " experiments";
        if (!graphs.empty()) std::cout << " + " << graphs.size() << " graphs";
        std::cout << ", " << (cell_count(specs) + graph_cell_count(graphs))
                  << " cells)\n";
      }
    } catch (const std::exception& e) {
      std::cerr << e.what() << "\n";
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

// --- serve ---------------------------------------------------------------

const std::vector<cli::Flag> kServeFlags = {
    {"host", "ADDR", "bind address (default 127.0.0.1; local service)"},
    {"port", "P", "TCP port (default 0 = kernel-chosen ephemeral)"},
    {"port-file", "PATH", "write the bound port after listen (scripts)"},
    {"queue", "N", "bounded submission queue; full rejects (default 64)"},
    {"jobs", "N", "concurrent job executions (default 2)"},
    {"threads", "T", "shared-pool size for job sweeps (0 = default)"},
    {"transcript", "PATH", "write the protocol session transcript"},
    {"trace-out", "PATH", "write a Chrome/Perfetto trace at shutdown"},
    {"quiet", "", "drop status chatter"},
};

/// SIGINT/SIGTERM land here so Ctrl-C drains jobs and exits cleanly
/// instead of leaving half-written transcripts.
serve::Server* g_serve_server = nullptr;

void serve_signal_handler(int) {
  if (g_serve_server != nullptr) g_serve_server->request_shutdown();
}

int cmd_serve(const util::CliArgs& args) {
  if (args.positional().size() != 1) {
    std::cerr << "serve takes no positional arguments\n";
    return 2;
  }
  serve::ServerOptions options;
  options.host = args.get_string("host", "127.0.0.1");
  const std::int64_t port = args.get_int("port", 0);
  if (port < 0 || port > 65535) {
    std::cerr << "--port must be in [0, 65535]\n";
    return 2;
  }
  options.port = static_cast<int>(port);
  const std::int64_t queue = args.get_int("queue", 64);
  if (queue < 1 || queue > 100000) {
    std::cerr << "--queue must be in [1, 100000]\n";
    return 2;
  }
  options.jobs.max_queued = static_cast<std::size_t>(queue);
  const std::int64_t jobs = args.get_int("jobs", 2);
  if (jobs < 1 || jobs > 256) {
    std::cerr << "--jobs must be in [1, 256]\n";
    return 2;
  }
  options.jobs.workers = static_cast<int>(jobs);
  const std::int64_t threads = args.get_int("threads", 0);
  if (threads < 0 || threads > 4096) {
    std::cerr << "--threads must be in [0, 4096]\n";
    return 2;
  }
  if (threads > 0) {
    util::ThreadPool::set_shared_size(static_cast<int>(threads));
  }

  const bool quiet = args.get_bool("quiet", false);
  if (!quiet) options.status = &std::cout;

  std::ofstream transcript;
  const std::string transcript_path = args.get_string("transcript", "");
  if (!transcript_path.empty()) {
    transcript.open(transcript_path, std::ios::binary | std::ios::trunc);
    if (!transcript) {
      std::cerr << "cannot open transcript file: " << transcript_path << "\n";
      return 1;
    }
    options.transcript = &transcript;
  }

  serve::Server server(options);

  const std::string port_file = args.get_string("port-file", "");
  if (!port_file.empty()) {
    std::ofstream out(port_file, std::ios::binary | std::ios::trunc);
    out << server.port() << "\n";
    if (!out) {
      std::cerr << "cannot write port file: " << port_file << "\n";
      return 1;
    }
  }

  // The Server constructor enabled the metrics registry (the stats
  // verb needs live data); span tracing additionally needs a sink.
  const std::string trace_path = args.get_string("trace-out", "");
  if (!trace_path.empty()) obs::Tracer::instance().set_enabled(true);

  g_serve_server = &server;
  std::signal(SIGINT, serve_signal_handler);
  std::signal(SIGTERM, serve_signal_handler);
  server.run();
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  g_serve_server = nullptr;

  if (!trace_path.empty()) {
    obs::Tracer::instance().set_enabled(false);
    if (!obs::Tracer::instance().write_file(trace_path)) {
      std::cerr << "cannot write trace file: " << trace_path << "\n";
      return 1;
    }
    if (!quiet) {
      std::cout << "wrote trace " << trace_path << " ("
                << obs::Tracer::instance().event_count() << " events)\n";
    }
  }
  if (!quiet) std::cout << "serve: shut down cleanly\n";
  return 0;
}

// --- submit --------------------------------------------------------------

const std::vector<cli::Flag> kSubmitFlags = {
    {"host", "ADDR", "daemon address (default 127.0.0.1)"},
    {"port", "P", "daemon TCP port"},
    {"port-file", "PATH", "read the port from a serve --port-file"},
    {"priority", "N", "scheduling priority (higher runs earlier)"},
    {"threads", "T", "per-job parallelism cap (0 = job default)"},
    {"source", "LABEL", "job label shown by status/list (default: path)"},
    {"follow", "", "stream the job's cell JSONL to stdout until terminal"},
};

/// Resolves the daemon port: --port wins, else the first line of
/// --port-file.  Returns 0 (with a message) when neither works.
int resolve_port(const util::CliArgs& args) {
  const std::int64_t port = args.get_int("port", 0);
  if (port < 0 || port > 65535) {
    std::cerr << "--port must be in [1, 65535]\n";
    return 0;
  }
  if (port > 0) return static_cast<int>(port);
  const std::string port_file = args.get_string("port-file", "");
  if (port_file.empty()) {
    std::cerr << "submit needs --port P or --port-file PATH\n";
    return 0;
  }
  std::ifstream in(port_file);
  int from_file = 0;
  if (!(in >> from_file) || from_file < 1 || from_file > 65535) {
    std::cerr << port_file << ": not a port file\n";
    return 0;
  }
  return from_file;
}

/// `adacheck submit` — the shell-friendly serve client: submit one
/// scenario file to a running daemon, optionally stream its JSONL to
/// stdout (--follow).  Chatter goes to stderr; stdout carries nothing
/// but the job's cell lines, so `adacheck submit --follow ... > out`
/// captures a stream byte-identical to `adacheck run --jsonl`.
int cmd_submit(const util::CliArgs& args) {
  if (args.positional().size() != 2) {
    std::cerr << "submit expects exactly one scenario file\n";
    return 2;
  }
  const std::string& path = args.positional()[1];
  const int port = resolve_port(args);
  if (port == 0) return 2;
  const std::int64_t priority = args.get_int("priority", 0);
  if (priority < -1'000'000 || priority > 1'000'000) {
    std::cerr << "--priority must be in [-1e6, 1e6]\n";
    return 2;
  }
  const std::int64_t threads = args.get_int("threads", 0);
  if (threads < 0 || threads > 4096) {
    std::cerr << "--threads must be in [0, 4096]\n";
    return 2;
  }

  // Ship the document inline (parsed client-side, so a bad file fails
  // here with a local path, and the daemon needs no filesystem view).
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << path << ": cannot open file\n";
    return 2;
  }
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  util::json::Value document;
  try {
    document = util::json::parse(text);
  } catch (const std::exception& e) {
    std::cerr << path << ": " << e.what() << "\n";
    return 2;
  }

  std::ostringstream request;
  harness::JsonWriter json(request, harness::JsonStyle::kCompact);
  json.begin_object();
  json.kv("req", std::string("submit"));
  json.key("scenario");
  json.raw_value(util::canonical_json(document));
  if (priority != 0) json.kv("priority", priority);
  if (threads != 0) json.kv("threads", threads);
  json.kv("source", args.get_string("source", path));
  json.end_object();

  const std::string host = args.get_string("host", "127.0.0.1");
  try {
    serve::LineClient client(host, port);
    client.send_line(request.str());
    const auto reply = client.recv_line();
    if (!reply) {
      std::cerr << "submit: daemon closed the connection\n";
      return 1;
    }
    const auto response = util::json::parse(*reply);
    const util::json::Value* ok = response.find("ok");
    if (ok == nullptr || !ok->is_bool() || !ok->as_bool()) {
      const util::json::Value* error = response.find("error");
      std::cerr << "submit: "
                << (error != nullptr && error->is_string()
                        ? error->as_string()
                        : *reply)
                << "\n";
      return 1;
    }
    const std::uint64_t job = static_cast<std::uint64_t>(
        response.find("job")->as_int());
    std::cerr << "submitted job " << job << " to " << host << ":" << port
              << "\n";
    if (!args.get_bool("follow", false)) {
      std::cout << job << "\n";  // the handle, for scripts
      return 0;
    }

    // Follow: one stream request, cell lines verbatim to stdout until
    // the adacheck-serve-eot-v1 line reports the terminal state.
    client.send_line("{\"req\": \"stream\", \"job\": " +
                     std::to_string(job) + "}");
    const auto opening = client.recv_line();
    if (!opening) {
      std::cerr << "stream: daemon closed the connection\n";
      return 1;
    }
    const auto opened = util::json::parse(*opening);
    const util::json::Value* stream_ok = opened.find("ok");
    if (stream_ok == nullptr || !stream_ok->as_bool()) {
      std::cerr << "stream: " << *opening << "\n";
      return 1;
    }
    for (;;) {
      const auto line = client.recv_line();
      if (!line) {
        std::cerr << "stream: connection lost before end of stream\n";
        return 1;
      }
      if (line->starts_with("{\"schema\":\"adacheck-serve-eot-v1\"")) {
        const auto eot = util::json::parse(*line);
        const std::string state = eot.find("state")->as_string();
        std::cerr << "job " << job << " " << state << "\n";
        return state == "done" ? 0 : 1;
      }
      std::cout << *line << "\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "submit: " << e.what() << "\n";
    return 1;
  }
}

// --- list ----------------------------------------------------------------

void print_section(const std::string& heading,
                   const std::vector<std::string>& names) {
  std::cout << heading << ":\n";
  for (const auto& name : names) std::cout << "  " << name << "\n";
}

int cmd_list(const util::CliArgs& args) {
  const std::string what =
      args.positional().size() > 1 ? args.positional()[1] : "";
  if (what.empty() || what == "policies") {
    print_section("policies (scheme factory names)",
                  policy::known_policies());
  }
  if (what.empty() || what == "environments") {
    print_section("fault environments (registry names)",
                  model::known_environments());
  }
  if (what.empty() || what == "schedulers") {
    std::vector<std::string> lines;
    for (const auto& info : sched::known_scheduler_info()) {
      lines.push_back(info.name + ": " + info.description);
    }
    print_section("schedulers (graph \"schedulers\" names)", lines);
  }
  if (what.empty() || what == "tables") {
    print_section("paper tables", scenario::known_tables());
  }
  if (what.empty() || what == "metrics") {
    print_section("metric recorders (scenario \"metrics\" names)",
                  sim::known_metric_recorders());
  }
  if (what.empty() || what == "budget") {
    print_section(
        "budget knobs (scenario \"budget\" object / run flags)",
        {"target_p_halfwidth (--budget): Wilson 95% half-width on P",
         "target_e_rel_halfwidth (--budget-e): relative 95% half-width on E",
         "min_runs (--min-runs): floor; default one chunk (256 runs)",
         "max_runs (--max-runs): hard cap; default config.runs"});
  }
  if (!what.empty() && what != "policies" && what != "environments" &&
      what != "schedulers" && what != "tables" && what != "metrics" &&
      what != "budget") {
    std::cerr << "unknown list \"" << what
              << "\"; choose policies, environments, schedulers, tables, "
                 "metrics, or budget\n";
    return 2;
  }
  return 0;
}

cli::CommandRegistry build_registry() {
  cli::CommandRegistry registry(
      "adacheck",
      "adacheck — declarative scenario driver "
      "(conf_date_LiCY06 reproduction)",
      util::version_string());
  registry.add({"run", "execute a scenario, write the sweep report",
                "run <scenario.json>", with_telemetry_flags(kRunFlags),
                cmd_run});
  registry.add({"campaign",
                "execute a scenario matrix through the result cache",
                "campaign <campaign.json> | campaign ls|gc [campaign.json]",
                with_telemetry_flags(kCampaignFlags), cmd_campaign});
  registry.add({"serve", "long-lived job service (adacheck-serve-v1 TCP)",
                "serve [--port P] [--port-file PATH]", kServeFlags,
                cmd_serve});
  registry.add({"submit", "send a scenario to a serve daemon",
                "submit <scenario.json> --port P|--port-file PATH "
                "[--follow]",
                kSubmitFlags, cmd_submit});
  registry.add({"validate", "parse + validate files, run nothing",
                "validate <file.json> [more.json ...]", {}, cmd_validate});
  registry.add({"list", "show the registries scenarios can reference",
                "list [policies|environments|schedulers|tables|metrics|"
                "budget]",
                {}, cmd_list});
  return registry;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return build_registry().dispatch(argc, argv, std::cout, std::cerr);
  } catch (const std::exception& e) {
    std::cerr << "adacheck: " << e.what() << "\n";
    return 1;
  }
}
