#!/usr/bin/env python3
"""CI smoke client for `adacheck serve` (adacheck-serve-v1).

Exercises the documented protocol end to end against a daemon already
listening on 127.0.0.1:<port> (argv[1]):

  * submits scenarios/smoke.json twice at different priorities and
    waits for both to reach `done`,
  * streams one of them to SERVE_stream.jsonl (the CI step cmp's it
    against a batch `adacheck run --jsonl` of the same document),
  * submits the long scenarios/serve_soak.json job and cancels it,
  * checks submit validation errors name the job and its source and
    that unknown request types get a did-you-mean suggestion,
  * queries the stats verb, validates the adacheck-stats-v1 payload
    against the traffic just generated, and saves it to
    STATS_smoke.json (the CI step uploads it as an artifact),
  * asks the daemon to shut down (the CI step asserts exit code 0).

Exits non-zero (assertion) on any protocol deviation.
"""

import json
import socket
import sys
import time

EOT_SCHEMA = "adacheck-serve-eot-v1"


def main():
    port = int(sys.argv[1])
    sock = socket.create_connection(("127.0.0.1", port), timeout=300)
    f = sock.makefile("rw", encoding="utf-8", newline="\n")

    def send(obj):
        f.write(json.dumps(obj) + "\n")
        f.flush()

    def rpc(obj):
        send(obj)
        return json.loads(f.readline())

    def wait_done(job_id, want="done"):
        for _ in range(3000):
            st = rpc({"req": "status", "job": job_id})["job"]
            if st["state"] in ("done", "failed", "cancelled"):
                break
            time.sleep(0.1)
        assert st["state"] == want, st
        return st

    doc = json.load(open("scenarios/smoke.json"))

    # Two submissions of the same document at different priorities.
    lo = rpc({"req": "submit", "scenario": doc, "priority": 1, "source": "ci-lo"})
    hi = rpc({"req": "submit", "scenario": doc, "priority": 9, "source": "ci-hi"})
    assert lo["ok"] and hi["ok"], (lo, hi)
    assert lo["job"] != hi["job"], (lo, hi)

    # A long job, submitted by server-side path, to cancel later.
    soak = rpc({"req": "submit", "path": "scenarios/serve_soak.json",
                "priority": -5, "source": "ci-soak"})
    assert soak["ok"], soak

    # Stream the low-priority smoke job to completion; the bytes must
    # equal the batch run (the shell step cmp's the two files).
    send({"req": "stream", "job": lo["job"]})
    opening = json.loads(f.readline())
    assert opening["ok"] and opening["req"] == "stream", opening
    chunks = []
    while True:
        line = f.readline()
        assert line, "stream closed before EOT"
        if '"%s"' % EOT_SCHEMA in line:
            eot = json.loads(line)
            assert eot["schema"] == EOT_SCHEMA, eot
            assert eot["state"] == "done", eot
            assert eot["bytes"] == sum(len(c.encode()) for c in chunks), eot
            break
        chunks.append(line)
    with open("SERVE_stream.jsonl", "w", newline="") as out:
        out.write("".join(chunks))

    # Both priority submissions must complete.
    wait_done(lo["job"])
    wait_done(hi["job"])

    # Cancel the soak job: 90 cells x 20k runs cannot have finished.
    cancel = rpc({"req": "cancel", "job": soak["job"]})
    assert cancel["ok"], cancel
    st = wait_done(soak["job"], want="cancelled")
    assert st["cells_done"] < st["cells_total"], st

    # Errors name the failing document's source...
    bad = rpc({"req": "submit", "scenario": {"schema": "adacheck-scenario-v1"},
               "source": "ci-bad"})
    assert not bad["ok"], bad
    assert "ci-bad" in bad["error"] and bad.get("job", 0) > 0, bad

    # ...and unknown request types get a did-you-mean suggestion.
    typo = rpc({"req": "submitt"})
    assert not typo["ok"] and "did you mean" in typo["error"], typo

    listing = rpc({"req": "list"})
    states = sorted((j["job"], j["state"]) for j in listing["jobs"])
    print("serve smoke jobs:", states)
    assert len(listing["jobs"]) == 4, listing

    # The stats verb must reflect the traffic this script generated.
    reply = rpc({"req": "stats"})
    assert reply["ok"] and reply["req"] == "stats", reply
    stats = reply["stats"]
    assert stats["schema"] == "adacheck-stats-v1", stats
    counters = stats["counters"]
    # 4 submit requests, 3 of which became queued jobs (the invalid
    # document failed validation before entering the queue).
    assert counters["serve.jobs_submitted"] >= 3, counters
    assert counters["serve.jobs_failed"] >= 1, counters
    assert counters["serve.jobs_done"] >= 2, counters
    assert counters["serve.jobs_cancelled"] >= 1, counters
    assert counters["serve.requests.submit"] >= 4, counters
    assert "serve.queue_depth" in stats["gauges"], stats["gauges"]
    assert stats["histograms"]["serve.request_us.submit"]["count"] >= 4, stats

    # A request is counted when it completes, so the first stats reply
    # cannot include itself; the second must, and counters only grow.
    stats = rpc({"req": "stats"})["stats"]
    assert stats["counters"]["serve.requests.stats"] >= 1, stats["counters"]
    assert stats["counters"]["serve.requests.submit"] >= counters[
        "serve.requests.submit"], stats["counters"]
    with open("STATS_smoke.json", "w") as out:
        json.dump(stats, out, indent=1, sort_keys=True)
    print("serve stats:", {k: v for k, v in sorted(counters.items())
                           if not k.startswith("pool.")})

    bye = rpc({"req": "shutdown"})
    assert bye["ok"], bye


if __name__ == "__main__":
    main()
