// Ablation: modeling knobs the paper leaves implicit (DESIGN.md §3/§4):
//  1. re-planning at every committed CSCP vs only after faults,
//  2. fault exposure during checkpoint operations,
//  3. non-zero rollback cost t_r.
#include <iostream>
#include <memory>

#include "policy/adaptive.hpp"
#include "sim/monte_carlo.hpp"
#include "util/cli.hpp"
#include "util/tables.hpp"

namespace {

using namespace adacheck;

sim::SimSetup cell_setup(double utilization, double lambda, int k,
                         double rollback, bool overhead_faults) {
  sim::SimSetup setup{
      model::task_from_utilization(utilization, 1.0, 10'000.0, k),
      model::CheckpointCosts::paper_scp_flavor(),
      model::DvsProcessor::two_speed(2.0),
      model::FaultModel{lambda, overhead_faults}};
  setup.costs.rollback = rollback;
  return setup;
}

sim::CellStats run(const sim::SimSetup& setup, bool recompute_at_commit,
                   const sim::MonteCarloConfig& config) {
  auto policy_config = policy::AdaptiveCheckpointPolicy::adapchp_dvs_scp();
  policy_config.recompute_at_commit = recompute_at_commit;
  return sim::run_cell(
      setup,
      [policy_config] {
        return std::make_unique<policy::AdaptiveCheckpointPolicy>(
            policy_config);
      },
      config);
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv, {"runs", "utilization", "lambda", "k"});
  sim::MonteCarloConfig config;
  config.runs = static_cast<int>(args.get_int("runs", 4'000));
  config.seed = 0x7B0B;
  const double utilization = args.get_double("utilization", 0.80);
  const double lambda = args.get_double("lambda", 1.6e-3);
  const int k = static_cast<int>(args.get_int("k", 5));

  std::cout << "=== Ablation: modeling knobs (A_D_S, U=" << utilization
            << ", lambda=" << lambda << ", k=" << k << ") ===\n\n";

  util::TextTable table({"recompute@commit", "overhead faults", "t_r",
                         "P", "E", "rollbacks/run"});
  for (const bool recompute : {false, true}) {
    for (const bool overhead : {false, true}) {
      for (const double tr : {0.0, 10.0, 50.0}) {
        const auto setup = cell_setup(utilization, lambda, k, tr, overhead);
        const auto stats = run(setup, recompute, config);
        table.add_row({recompute ? "yes" : "no", overhead ? "yes" : "no",
                       util::fmt_fixed(tr, 0),
                       util::fmt_prob(stats.probability()),
                       util::fmt_energy(stats.energy()),
                       util::fmt_fixed(stats.rollbacks.mean(), 2)});
      }
    }
    table.add_rule();
  }
  std::cout << table
            << "\nExpected shape: overhead-window faults and t_r > 0 cost\n"
               "a little P and E; per-commit re-planning changes little\n"
               "(the paper re-plans only after faults).\n";
  return 0;
}
