// Fully parameterized single-cell runner — the "try your own system"
// entry point.  Everything the library models is a flag:
//
//   scenario --policy=A_D_S --utilization=0.8 --lambda=1.4e-3 --k=5
//            [--deadline=10000] [--ts=2] [--tcp=20] [--tr=0]
//            [--speed-ratio=2] [--kappa=4] [--redundancy=2]
//            [--util-level=0] [--baseline-level=0]
//            [--overhead-faults] [--runs=10000] [--seed=...]
//            [--threads=0] [--validate]
//
// Prints P, E, and the extended statistics for the one cell.
#include <iostream>

#include "policy/factory.hpp"
#include "sim/monte_carlo.hpp"
#include "util/cli.hpp"
#include "util/tables.hpp"

int main(int argc, char** argv) {
  using namespace adacheck;
  const util::CliArgs args(
      argc, argv,
      {"policy", "utilization", "lambda", "k", "deadline", "ts", "tcp",
       "tr", "speed-ratio", "kappa", "redundancy", "util-level",
       "baseline-level", "overhead-faults", "runs", "seed", "threads",
       "validate"});

  const std::string policy = args.get_string("policy", "A_D_S");
  const double utilization = args.get_double("utilization", 0.8);
  const double lambda = args.get_double("lambda", 1.4e-3);
  const int k = static_cast<int>(args.get_int("k", 5));
  const double deadline = args.get_double("deadline", 10'000.0);
  const model::CheckpointCosts costs{args.get_double("ts", 2.0),
                                     args.get_double("tcp", 20.0),
                                     args.get_double("tr", 0.0)};
  const double speed_ratio = args.get_double("speed-ratio", 2.0);
  model::VoltageLaw law;
  law.kappa = args.get_double("kappa", 4.0);
  const int redundancy = static_cast<int>(args.get_int("redundancy", 2));
  const auto util_level =
      static_cast<std::size_t>(args.get_int("util-level", 0));
  const auto baseline_level =
      static_cast<std::size_t>(args.get_int("baseline-level", 0));

  auto processor = model::DvsProcessor::two_speed(speed_ratio, law);
  const double util_freq = processor.level(util_level).frequency;
  sim::SimSetup setup{
      model::task_from_utilization(utilization, util_freq, deadline, k),
      costs, std::move(processor),
      model::FaultModel{lambda, args.get_bool("overhead-faults", false),
                        redundancy}};

  sim::MonteCarloConfig config;
  config.runs = static_cast<int>(args.get_int("runs", 10'000));
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 0x5EED));
  config.threads = static_cast<int>(args.get_int("threads", 0));
  config.validate = args.get_bool("validate", false);

  const auto stats = sim::run_cell(
      setup, policy::make_policy_factory(policy, baseline_level), config);

  std::cout << "scenario: " << policy << " on N=" << setup.task.cycles
            << " cycles, D=" << deadline << ", k=" << k
            << ", lambda=" << lambda << ", t_s/t_cp/t_r=" << costs.store
            << "/" << costs.compare << "/" << costs.rollback
            << ", replicas=" << redundancy << "\n\n";
  util::TextTable table({"metric", "value"});
  table.add_row({"P(timely)", util::fmt_prob(stats.probability())});
  table.add_row({"P 95% CI", "[" + util::fmt_prob(stats.completion.wilson_lo()) +
                                 ", " + util::fmt_prob(stats.completion.wilson_hi()) +
                                 "]"});
  table.add_row({"E (successful runs)", util::fmt_energy(stats.energy())});
  table.add_row({"E (all runs)", util::fmt_energy(stats.energy_all.mean())});
  table.add_row({"finish time (mean, ok)",
                 util::fmt_fixed(stats.finish_time_success.mean(), 1)});
  table.add_row({"faults / run", util::fmt_fixed(stats.faults.mean(), 3)});
  table.add_row({"rollbacks / run", util::fmt_fixed(stats.rollbacks.mean(), 3)});
  table.add_row({"corrections / run",
                 util::fmt_fixed(stats.corrections.mean(), 3)});
  table.add_row({"high-speed cycles / run",
                 util::fmt_energy(stats.high_speed_cycles.mean())});
  table.add_row({"aborted runs", std::to_string(stats.aborted_runs)});
  if (config.validate) {
    table.add_row({"validation failures",
                   std::to_string(stats.validation_failures)});
  }
  std::cout << table;
  return 0;
}
