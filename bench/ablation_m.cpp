// Ablation: the inner checkpoint count m (DESIGN.md §4).
//
// Prints R1(m)/R2(m) across m for the paper's parameters, the optimum
// found by the Fig. 2 procedure vs an exhaustive scan, and a simulated
// verification of the analytic curves (engine-measured expected
// interval time at selected m).
#include <cstdint>
#include <iostream>
#include <memory>

#include "analytic/num_checkpoints.hpp"
#include "sim/monte_carlo.hpp"
#include "util/cli.hpp"
#include "util/tables.hpp"

namespace {

using namespace adacheck;

double simulate_interval(double interval, int m, double lambda,
                         const model::CheckpointCosts& costs,
                         sim::InnerKind kind, int runs) {
  sim::SimSetup setup{model::TaskSpec{interval, 1e12, 0.0, 1 << 20, "abl"},
                      costs,
                      model::DvsProcessor({model::SpeedLevel{1.0, 2.0}}),
                      model::FaultModel{lambda, false}};

  class FixedPolicy final : public sim::ICheckpointPolicy {
   public:
    explicit FixedPolicy(sim::Decision plan) : plan_(plan) {}
    std::string name() const override { return "fixed"; }
    sim::Decision initial(const sim::ExecContext&) override { return plan_; }
    sim::Decision on_fault(const sim::ExecContext&) override { return plan_; }

   private:
    sim::Decision plan_;
  };

  sim::Decision plan;
  plan.speed = setup.processor.slowest();
  plan.cscp_interval = interval;
  plan.sub_interval = interval / static_cast<double>(m);
  plan.inner = kind;

  sim::MonteCarloConfig config;
  config.runs = runs;
  config.seed = 0xAB1A;
  const auto stats = sim::run_cell(
      setup, [plan] { return std::make_unique<FixedPolicy>(plan); }, config);
  return stats.finish_time_success.mean();
}

void sweep(const char* title, bool scp, double interval, double lambda,
           int runs) {
  const auto costs = scp ? model::CheckpointCosts::paper_scp_flavor()
                         : model::CheckpointCosts::paper_ccp_flavor();
  std::cout << title << " (T=" << interval << ", lambda=" << lambda
            << ", t_s=" << costs.store << ", t_cp=" << costs.compare
            << ")\n";
  util::TextTable table({"m", "analytic E[time]", "simulated E[time]",
                         "overhead vs m=1"});
  double base = 0.0;
  for (int m : {1, 2, 3, 4, 6, 8, 12, 16, 24, 32}) {
    double analytic_value = 0.0;
    if (scp) {
      analytic::ScpRenewalParams p{interval, lambda, costs};
      analytic_value = analytic::scp_expected_time(p, m);
    } else {
      analytic::CcpRenewalParams p{interval, lambda, costs};
      analytic_value = analytic::ccp_expected_time_recursive(p, m);
    }
    if (m == 1) base = analytic_value;
    const double simulated = simulate_interval(
        interval, m, lambda, costs,
        scp ? sim::InnerKind::kScp : sim::InnerKind::kCcp, runs);
    table.add_row({std::to_string(m), util::fmt_fixed(analytic_value, 2),
                   util::fmt_fixed(simulated, 2),
                   util::fmt_fixed(100.0 * (analytic_value / base - 1.0), 2) +
                       "%"});
  }
  std::cout << table;

  if (scp) {
    analytic::ScpRenewalParams p{interval, lambda, costs};
    std::cout << "num_SCP (Fig. 2): " << analytic::num_scp(p)
              << "   exhaustive argmin: " << analytic::num_scp_exhaustive(p)
              << "\n\n";
  } else {
    analytic::CcpRenewalParams p{interval, lambda, costs};
    std::cout << "num_CCP (Fig. 2): " << analytic::num_ccp(p)
              << "   exhaustive argmin: " << analytic::num_ccp_exhaustive(p)
              << "\n\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv, {"runs", "interval", "lambda"});
  const int runs = static_cast<int>(args.get_int("runs", 20'000));
  const double interval = args.get_double("interval", 800.0);
  const double lambda = args.get_double("lambda", 4e-3);

  std::cout << "=== Ablation: inner checkpoint count m ===\n\n";
  sweep("SCP scheme R1(m)", /*scp=*/true, interval, lambda, runs);
  sweep("CCP scheme R2(m)", /*scp=*/false, interval, lambda, runs);

  std::cout << "Optimal m across fault rates (T=" << interval << "):\n";
  util::TextTable table({"lambda", "num_SCP", "num_CCP"});
  for (double l : {1e-4, 5e-4, 1.4e-3, 4e-3, 1e-2, 3e-2}) {
    analytic::ScpRenewalParams ps{interval, l,
                                  model::CheckpointCosts::paper_scp_flavor()};
    analytic::CcpRenewalParams pc{interval, l,
                                  model::CheckpointCosts::paper_ccp_flavor()};
    table.add_row({util::fmt_sci(l, 1), std::to_string(analytic::num_scp(ps)),
                   std::to_string(analytic::num_ccp(pc))});
  }
  std::cout << table;
  return 0;
}
