// Full-grid parallel sweep with machine-readable perf output.
//
// Runs all eight paper sub-tables (or a --tables subset) as one flat
// task queue on the shared thread pool and writes BENCH_sweep.json:
// every cell's statistics plus wall-clock and runs-per-second, the
// numbers CI archives to track the perf trajectory.
//
// Observer-overhead guard: the main sweep is the null-observer path;
// a second identical sweep runs under a no-op observer, and the perf
// section gains an advisory "observer_overhead" object comparing the
// two (and the null path against the committed --baseline report).
// Advisory means exactly that — machines, thread counts, and run
// budgets differ between measurements, so a low ratio warns on stderr
// but never fails the process.
//
// Run-budget guard: a third measurement runs one high-P(success) cell
// twice — at the fixed run count and under a precision budget
// targeting the same Wilson half-width the fixed count achieves — and
// the perf section gains "time_to_target_precision" comparing runs
// and wall clock.  The budgeted path should hit matched precision in
// a fraction of the runs; CI asserts the ratio stays >= 5x.
//
// Telemetry-overhead guard: a fourth measurement reruns the sweep
// with the obs registry and tracer enabled, and the perf section
// gains an advisory "telemetry_overhead" object comparing metered vs
// unmetered throughput.  Same advisory stance as observer_overhead.
//
// Usage: bench_sweep [--runs=N] [--seed=S] [--threads=T]
//                    [--out=BENCH_sweep.json] [--tables=table1a,table2b]
//                    [--baseline=BENCH_sweep.json] [--no-observer-check]
//                    [--precision-runs=N] [--precision-target=H]
//                    [--no-precision-check] [--no-telemetry-check]
//                    [--validate] [--no-perf]
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/json_report.hpp"
#include "harness/paper_params.hpp"
#include "harness/sweep.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "sim/monte_carlo.hpp"
#include "sim/observer.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/thread_pool.hpp"

namespace {

/// perf.runs_per_second of a committed adacheck-sweep report; 0 when
/// the file is missing, unparsable, or has no perf section.
double baseline_runs_per_second(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return 0.0;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    const auto doc = adacheck::util::json::parse(buffer.str());
    const auto* perf = doc.find("perf");
    if (perf == nullptr) return 0.0;
    const auto* rate = perf->find("runs_per_second");
    return rate != nullptr && rate->is_number() ? rate->as_number() : 0.0;
  } catch (const std::exception&) {
    return 0.0;
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace adacheck;
  const util::CliArgs args(argc, argv,
                           {"runs", "seed", "threads", "out", "tables",
                            "baseline", "no-observer-check", "precision-runs",
                            "precision-target", "no-precision-check",
                            "no-telemetry-check", "validate", "no-perf"});
  sim::MonteCarloConfig config;
  config.runs = static_cast<int>(args.get_int("runs", 10'000));
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 0x5EED5EED));
  config.threads = static_cast<int>(args.get_int("threads", 0));
  config.validate = args.get_bool("validate", false);
  util::ThreadPool::set_shared_size(config.threads);

  std::vector<harness::ExperimentSpec> specs = harness::all_paper_tables();
  const std::string tables = args.get_string("tables", "");
  if (!tables.empty()) {
    const auto wanted = util::split_csv(tables);
    std::vector<harness::ExperimentSpec> filtered;
    for (const auto& spec : specs) {
      for (const auto& id : wanted) {
        if (spec.id == id) {
          filtered.push_back(spec);
          break;
        }
      }
    }
    if (filtered.empty()) {
      std::cerr << "no table matches --tables=" << tables << "\n";
      return 1;
    }
    specs = std::move(filtered);
  }

  const std::string out_path = args.get_string("out", "BENCH_sweep.json");
  // Read the committed baseline BEFORE the sweep possibly overwrites
  // the same path.
  const std::string baseline_path =
      args.get_string("baseline", "BENCH_sweep.json");
  harness::PerfBaseline baseline;
  baseline.path = baseline_path;
  baseline.runs_per_second = baseline_runs_per_second(baseline_path);

  // The measured sweep IS the null-observer path.
  const auto sweep = harness::run_sweep(specs, config);
  baseline.null_runs_per_second = sweep.perf.runs_per_second;

  harness::JsonReportOptions options;
  options.include_perf = !args.get_bool("no-perf", false);

  // The rerun only feeds the perf section, so skip it whenever that
  // section is suppressed — --no-perf must not double the bench time.
  if (options.include_perf && !args.get_bool("no-observer-check", false)) {
    // Same sweep under a no-op observer: any throughput gap is the
    // cost of the observer plumbing itself (per-cell tracking atomics
    // and serialized callbacks), amortized over every run.
    sim::ISweepObserver noop;
    harness::SweepOptions observed;
    observed.observer = &noop;
    const auto rerun = harness::run_sweep(specs, config, observed);
    baseline.observer_runs_per_second = rerun.perf.runs_per_second;
    options.baseline = &baseline;

    const double ratio =
        baseline.null_runs_per_second > 0.0
            ? baseline.observer_runs_per_second / baseline.null_runs_per_second
            : 0.0;
    if (ratio < harness::PerfBaseline::kMinObserverRatio) {
      std::cerr << "advisory: observer path at " << ratio
                << "x of null-path throughput (tolerance "
                << harness::PerfBaseline::kMinObserverRatio << "x)\n";
    }
  }
  // Time-to-target-precision probe: one high-P(success) cell, fixed
  // run count vs a budget targeting the same achieved half-width.
  harness::PrecisionBench precision;
  if (options.include_perf && !args.get_bool("no-precision-check", false)) {
    harness::ExperimentSpec spec;
    spec.id = "precision";
    spec.title = "time-to-target-precision probe";
    spec.costs = model::CheckpointCosts::paper_scp_flavor();
    spec.deadline = 10'000.0;
    spec.fault_tolerance = 5;
    spec.speed_ratio = 2.0;
    spec.util_level = 0;
    spec.schemes = {"A_D_S"};
    spec.rows = {{0.5, 1.0e-4, {}}};

    sim::MonteCarloConfig fixed;
    fixed.runs = static_cast<int>(args.get_int("precision-runs", 10'000));
    fixed.seed = config.seed;
    fixed.threads = config.threads;
    auto jobs = harness::experiment_jobs(spec, fixed);
    const auto& job = jobs.at(0);

    using clock = std::chrono::steady_clock;
    const auto fixed_t0 = clock::now();
    const auto fixed_stats = sim::run_cell(job.setup, job.factory, job.config);
    const auto fixed_t1 = clock::now();

    auto budgeted_config = job.config;
    budgeted_config.budget.target_p_halfwidth =
        args.get_double("precision-target", 0.01);
    const auto budgeted_t0 = clock::now();
    const auto budgeted_stats =
        sim::run_cell(job.setup, job.factory, budgeted_config);
    const auto budgeted_t1 = clock::now();

    const auto seconds = [](clock::time_point a, clock::time_point b) {
      return std::chrono::duration<double>(b - a).count();
    };
    precision.target_p_halfwidth = budgeted_config.budget.target_p_halfwidth;
    precision.fixed_runs =
        static_cast<long long>(fixed_stats.completion.trials());
    precision.fixed_wall_seconds = seconds(fixed_t0, fixed_t1);
    precision.fixed_p_halfwidth = fixed_stats.completion.wilson_halfwidth();
    precision.budgeted_runs =
        static_cast<long long>(budgeted_stats.completion.trials());
    precision.budgeted_wall_seconds = seconds(budgeted_t0, budgeted_t1);
    precision.budgeted_p_halfwidth =
        budgeted_stats.completion.wilson_halfwidth();
    options.precision = &precision;
  }

  // Telemetry-overhead probe: the same sweep with the metrics registry
  // and tracer switched on.  The main sweep already measured the
  // disabled path (telemetry defaults off), so one metered rerun gives
  // the ratio the "telemetry is near-free" claim rests on.
  harness::TelemetryBench telemetry;
  if (options.include_perf && !args.get_bool("no-telemetry-check", false)) {
    obs::Registry::instance().set_enabled(true);
    obs::Tracer::instance().set_enabled(true);
    const auto metered = harness::run_sweep(specs, config);
    obs::Tracer::instance().set_enabled(false);
    obs::Registry::instance().set_enabled(false);

    telemetry.disabled_runs_per_second = sweep.perf.runs_per_second;
    telemetry.enabled_runs_per_second = metered.perf.runs_per_second;
    telemetry.events_recorded =
        static_cast<long long>(obs::Tracer::instance().event_count());
    obs::Tracer::instance().clear();
    options.telemetry = &telemetry;

    const double ratio =
        telemetry.disabled_runs_per_second > 0.0
            ? telemetry.enabled_runs_per_second /
                  telemetry.disabled_runs_per_second
            : 0.0;
    if (ratio < harness::TelemetryBench::kMinTelemetryRatio) {
      std::cerr << "advisory: metered path at " << ratio
                << "x of unmetered throughput (tolerance "
                << harness::TelemetryBench::kMinTelemetryRatio << "x)\n";
    }
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open output file: " << out_path << "\n";
    return 1;
  }
  harness::write_sweep_json(sweep, out, options);

  std::cout << "sweep: " << sweep.perf.cells << " cells x " << config.runs
            << " runs on " << sweep.perf.threads << " threads\n"
            << "wall: " << sweep.perf.wall_seconds << " s, "
            << sweep.perf.runs_per_second << " runs/s\n";
  if (options.precision != nullptr) {
    std::cout << "precision: " << precision.budgeted_runs << " budgeted vs "
              << precision.fixed_runs << " fixed runs ("
              << (precision.budgeted_runs > 0
                      ? static_cast<double>(precision.fixed_runs) /
                            static_cast<double>(precision.budgeted_runs)
                      : 0.0)
              << "x fewer) at half-width target "
              << precision.target_p_halfwidth << "\n";
  }
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
