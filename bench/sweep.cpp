// Full-grid parallel sweep with machine-readable perf output.
//
// Runs all eight paper sub-tables (or a --tables subset) as one flat
// task queue on the shared thread pool and writes BENCH_sweep.json:
// every cell's statistics plus wall-clock and runs-per-second, the
// numbers CI archives to track the perf trajectory.
//
// Usage: bench_sweep [--runs=N] [--seed=S] [--threads=T]
//                    [--out=BENCH_sweep.json] [--tables=table1a,table2b]
//                    [--validate] [--no-perf]
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "harness/json_report.hpp"
#include "harness/paper_params.hpp"
#include "harness/sweep.hpp"
#include "util/cli.hpp"
#include "util/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace adacheck;
  const util::CliArgs args(argc, argv, {"runs", "seed", "threads", "out",
                                        "tables", "validate", "no-perf"});
  sim::MonteCarloConfig config;
  config.runs = static_cast<int>(args.get_int("runs", 10'000));
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 0x5EED5EED));
  config.threads = static_cast<int>(args.get_int("threads", 0));
  config.validate = args.get_bool("validate", false);
  util::ThreadPool::set_shared_size(config.threads);

  std::vector<harness::ExperimentSpec> specs = harness::all_paper_tables();
  const std::string tables = args.get_string("tables", "");
  if (!tables.empty()) {
    const auto wanted = util::split_csv(tables);
    std::vector<harness::ExperimentSpec> filtered;
    for (const auto& spec : specs) {
      for (const auto& id : wanted) {
        if (spec.id == id) {
          filtered.push_back(spec);
          break;
        }
      }
    }
    if (filtered.empty()) {
      std::cerr << "no table matches --tables=" << tables << "\n";
      return 1;
    }
    specs = std::move(filtered);
  }

  const auto sweep = harness::run_sweep(specs, config);

  harness::JsonReportOptions options;
  options.include_perf = !args.get_bool("no-perf", false);
  const std::string out_path = args.get_string("out", "BENCH_sweep.json");
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open output file: " << out_path << "\n";
    return 1;
  }
  harness::write_sweep_json(sweep, out, options);

  std::cout << "sweep: " << sweep.perf.cells << " cells x " << config.runs
            << " runs on " << sweep.perf.threads << " threads\n"
            << "wall: " << sweep.perf.wall_seconds << " s, "
            << sweep.perf.runs_per_second << " runs/s\n"
            << "wrote " << out_path << "\n";
  return 0;
}
