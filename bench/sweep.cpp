// Full-grid parallel sweep with machine-readable perf output.
//
// Runs all eight paper sub-tables (or a --tables subset) as one flat
// task queue on the shared thread pool and writes BENCH_sweep.json:
// every cell's statistics plus wall-clock and runs-per-second, the
// numbers CI archives to track the perf trajectory.
//
// Observer-overhead guard: the main sweep is the null-observer path;
// a second identical sweep runs under a no-op observer, and the perf
// section gains an advisory "observer_overhead" object comparing the
// two (and the null path against the committed --baseline report).
// Advisory means exactly that — machines, thread counts, and run
// budgets differ between measurements, so a low ratio warns on stderr
// but never fails the process.
//
// Usage: bench_sweep [--runs=N] [--seed=S] [--threads=T]
//                    [--out=BENCH_sweep.json] [--tables=table1a,table2b]
//                    [--baseline=BENCH_sweep.json] [--no-observer-check]
//                    [--validate] [--no-perf]
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/json_report.hpp"
#include "harness/paper_params.hpp"
#include "harness/sweep.hpp"
#include "sim/observer.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/thread_pool.hpp"

namespace {

/// perf.runs_per_second of a committed adacheck-sweep report; 0 when
/// the file is missing, unparsable, or has no perf section.
double baseline_runs_per_second(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return 0.0;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    const auto doc = adacheck::util::json::parse(buffer.str());
    const auto* perf = doc.find("perf");
    if (perf == nullptr) return 0.0;
    const auto* rate = perf->find("runs_per_second");
    return rate != nullptr && rate->is_number() ? rate->as_number() : 0.0;
  } catch (const std::exception&) {
    return 0.0;
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace adacheck;
  const util::CliArgs args(argc, argv,
                           {"runs", "seed", "threads", "out", "tables",
                            "baseline", "no-observer-check", "validate",
                            "no-perf"});
  sim::MonteCarloConfig config;
  config.runs = static_cast<int>(args.get_int("runs", 10'000));
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 0x5EED5EED));
  config.threads = static_cast<int>(args.get_int("threads", 0));
  config.validate = args.get_bool("validate", false);
  util::ThreadPool::set_shared_size(config.threads);

  std::vector<harness::ExperimentSpec> specs = harness::all_paper_tables();
  const std::string tables = args.get_string("tables", "");
  if (!tables.empty()) {
    const auto wanted = util::split_csv(tables);
    std::vector<harness::ExperimentSpec> filtered;
    for (const auto& spec : specs) {
      for (const auto& id : wanted) {
        if (spec.id == id) {
          filtered.push_back(spec);
          break;
        }
      }
    }
    if (filtered.empty()) {
      std::cerr << "no table matches --tables=" << tables << "\n";
      return 1;
    }
    specs = std::move(filtered);
  }

  const std::string out_path = args.get_string("out", "BENCH_sweep.json");
  // Read the committed baseline BEFORE the sweep possibly overwrites
  // the same path.
  const std::string baseline_path =
      args.get_string("baseline", "BENCH_sweep.json");
  harness::PerfBaseline baseline;
  baseline.path = baseline_path;
  baseline.runs_per_second = baseline_runs_per_second(baseline_path);

  // The measured sweep IS the null-observer path.
  const auto sweep = harness::run_sweep(specs, config);
  baseline.null_runs_per_second = sweep.perf.runs_per_second;

  harness::JsonReportOptions options;
  options.include_perf = !args.get_bool("no-perf", false);

  // The rerun only feeds the perf section, so skip it whenever that
  // section is suppressed — --no-perf must not double the bench time.
  if (options.include_perf && !args.get_bool("no-observer-check", false)) {
    // Same sweep under a no-op observer: any throughput gap is the
    // cost of the observer plumbing itself (per-cell tracking atomics
    // and serialized callbacks), amortized over every run.
    sim::ISweepObserver noop;
    harness::SweepOptions observed;
    observed.observer = &noop;
    const auto rerun = harness::run_sweep(specs, config, observed);
    baseline.observer_runs_per_second = rerun.perf.runs_per_second;
    options.baseline = &baseline;

    const double ratio =
        baseline.null_runs_per_second > 0.0
            ? baseline.observer_runs_per_second / baseline.null_runs_per_second
            : 0.0;
    if (ratio < harness::PerfBaseline::kMinObserverRatio) {
      std::cerr << "advisory: observer path at " << ratio
                << "x of null-path throughput (tolerance "
                << harness::PerfBaseline::kMinObserverRatio << "x)\n";
    }
  }
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open output file: " << out_path << "\n";
    return 1;
  }
  harness::write_sweep_json(sweep, out, options);

  std::cout << "sweep: " << sweep.perf.cells << " cells x " << config.runs
            << " runs on " << sweep.perf.threads << " threads\n"
            << "wall: " << sweep.perf.wall_seconds << " s, "
            << sweep.perf.runs_per_second << " runs/s\n"
            << "wrote " << out_path << "\n";
  return 0;
}
