// Reproduces Table 4 of the paper: A_D_C vs the baselines with the
// fixed schemes at the high speed f2.
#include "bench/table_common.hpp"
#include "harness/paper_params.hpp"

int main(int argc, char** argv) {
  using namespace adacheck;
  return benchtool::run_tables(argc, argv,
                               {harness::table4a(), harness::table4b()});
}
