// Ablation: checkpoint cost asymmetry (DESIGN.md §4).
//
// The paper's two flavors (t_s = 2/t_cp = 20 vs t_s = 20/t_cp = 2) pick
// which inner checkpoint type pays off.  This bench sweeps the t_s:t_cp
// split at constant c = t_s + t_cp = 22 and runs A_D_S vs A_D_C vs A_D
// on the Table 1(a) cell, locating the crossover.
#include <iostream>

#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "policy/factory.hpp"
#include "sim/monte_carlo.hpp"
#include "util/cli.hpp"
#include "util/tables.hpp"

int main(int argc, char** argv) {
  using namespace adacheck;
  const util::CliArgs args(argc, argv,
                           {"runs", "utilization", "lambda", "k"});
  sim::MonteCarloConfig config;
  config.runs = static_cast<int>(args.get_int("runs", 4'000));
  config.seed = 0xC057;
  const double utilization = args.get_double("utilization", 0.76);
  const double lambda = args.get_double("lambda", 1.4e-3);
  const int k = static_cast<int>(args.get_int("k", 5));

  std::cout << "=== Ablation: t_s vs t_cp split at constant c = 22 ===\n"
            << "cell: U=" << utilization << " lambda=" << lambda
            << " k=" << k << " D=10000, baselines' util level f1\n\n";

  util::TextTable table({"t_s", "t_cp", "A_D P/E", "A_D_S P/E", "A_D_C P/E",
                         "winner(E)"});
  for (const double ts : {1.0, 2.0, 5.0, 11.0, 17.0, 20.0, 21.0}) {
    const double tcp = 22.0 - ts;
    auto processor = model::DvsProcessor::two_speed(2.0);
    sim::SimSetup setup{
        model::task_from_utilization(utilization, 1.0, 10'000.0, k),
        model::CheckpointCosts{ts, tcp, 0.0}, std::move(processor),
        model::FaultModel{lambda, false}};

    std::string cells[3];
    double energies[3] = {0, 0, 0};
    const char* names[3] = {"A_D", "A_D_S", "A_D_C"};
    for (int i = 0; i < 3; ++i) {
      const auto stats =
          sim::run_cell(setup, policy::make_policy_factory(names[i]), config);
      cells[i] = util::fmt_prob(stats.probability()) + " / " +
                 util::fmt_energy(stats.energy());
      energies[i] = stats.energy();
    }
    const char* winner =
        energies[1] < energies[2]
            ? (energies[1] < energies[0] ? "A_D_S" : "A_D")
            : (energies[2] < energies[0] ? "A_D_C" : "A_D");
    table.add_row({util::fmt_fixed(ts, 0), util::fmt_fixed(tcp, 0), cells[0],
                   cells[1], cells[2], winner});
  }
  std::cout << table
            << "\nExpected shape: cheap stores favor extra SCPs, cheap\n"
               "compares favor extra CCPs; both dominate plain A_D.\n";
  return 0;
}
