// Extension experiment: DMR vs TMR (the paper's "other task duplication
// systems" future work, following its ref [5] which analyzes both).
//
// Re-runs the Table 1(a)/(b) grids with a third replica: single faults
// are then majority-voted away at comparisons instead of forcing a
// rollback.  Expected shape: TMR lifts the fixed baselines' completion
// probability dramatically (their whole weakness was rollback storms)
// and lets the adaptive schemes hold P with fewer inner checkpoints;
// per-replica energy changes little (the third replica's energy is a
// constant platform factor, reported separately by the harness note).
#include <iostream>

#include "harness/experiment.hpp"
#include "policy/factory.hpp"
#include "sim/monte_carlo.hpp"
#include "util/cli.hpp"
#include "util/tables.hpp"

int main(int argc, char** argv) {
  using namespace adacheck;
  const util::CliArgs args(argc, argv, {"runs"});
  sim::MonteCarloConfig config;
  config.runs = static_cast<int>(args.get_int("runs", 4'000));
  config.seed = 0x73311;

  std::cout << "=== Extension: DMR vs TMR on the Table 1(a) grid ===\n"
            << "(SCP flavor, baselines at f1, k = 5; energy is per "
               "replica)\n\n";

  util::TextTable table({"U", "lambda", "scheme", "DMR P", "DMR E",
                         "TMR P", "TMR E", "TMR corrections/run"});
  for (const double u : {0.76, 0.80}) {
    for (const double lambda : {1.4e-3, 1.6e-3}) {
      for (const char* scheme : {"Poisson", "k-f-t", "A_D", "A_D_S"}) {
        sim::SimSetup setup{
            model::task_from_utilization(u, 1.0, 10'000.0, 5),
            model::CheckpointCosts::paper_scp_flavor(),
            model::DvsProcessor::two_speed(2.0),
            model::FaultModel{lambda, false, 2}};
        const auto dmr = sim::run_cell(
            setup, policy::make_policy_factory(scheme), config);
        setup.fault_model.processors = 3;
        const auto tmr = sim::run_cell(
            setup, policy::make_policy_factory(scheme), config);
        table.add_row({util::fmt_fixed(u, 2), util::fmt_sci(lambda, 1),
                       scheme, util::fmt_prob(dmr.probability()),
                       util::fmt_energy(dmr.energy()),
                       util::fmt_prob(tmr.probability()),
                       util::fmt_energy(tmr.energy()),
                       util::fmt_fixed(tmr.corrections.mean(), 2)});
      }
      table.add_rule();
    }
  }
  std::cout << table
            << "\nExpected shape: TMR rescues the fixed baselines (single\n"
               "faults no longer cost re-execution) and narrows the gap to\n"
               "the adaptive schemes; A_D_S still wins on energy because\n"
               "it can stay at the low speed longer.\n";
  return 0;
}
