// Reproduces Table 1 of the paper: adapchp_dvs_SCP (A_D_S) vs Poisson,
// k-fault-tolerant, and ADT_DVS (A_D) with the fixed baselines at the
// low speed f1.  SCP-flavor costs: t_s = 2, t_cp = 20.
#include "bench/table_common.hpp"
#include "harness/paper_params.hpp"

int main(int argc, char** argv) {
  using namespace adacheck;
  return benchtool::run_tables(argc, argv,
                               {harness::table1a(), harness::table1b()});
}
