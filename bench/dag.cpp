// DAG executive throughput probe: jobs/sec per scheduler policy.
//
// Runs the same chain-vs-shorts task graph (the workload behind
// scenarios/dag_policy_sweep.json) through the graph executive once
// per registered scheduler policy, repeating each executive run with
// fresh seeds, and writes BENCH_dag.json: per-policy wall clock,
// dispatched-jobs-per-second, and the miss/blocking character of the
// schedule.  CI archives it next to the sweep bench; the numbers are
// advisory — policy throughputs differ because the schedules differ,
// not only because the dispatch keys cost differently.
//
// Usage: bench_dag [--instances=N] [--repeats=R] [--seed=S]
//                  [--lambda=L] [--workers=W] [--out=BENCH_dag.json]
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "harness/json_writer.hpp"
#include "model/checkpoint.hpp"
#include "sched/graph_executive.hpp"
#include "sched/scheduler.hpp"
#include "sched/task_graph.hpp"
#include "util/cli.hpp"
#include "util/version.hpp"

namespace {

/// Three-stage critical chain racing four short independent jobs, two
/// of which contend on a capacity-1 bus — the graph where the four
/// shipped policies disagree most visibly.
adacheck::sched::TaskGraph chain_vs_shorts() {
  using adacheck::sched::GraphNode;
  adacheck::sched::TaskGraph graph;
  graph.name = "chain_vs_shorts";
  graph.period = 20'000.0;
  graph.deadline = 11'500.0;
  const auto bus = graph.add_resource("bus", 1);
  const auto node = [&](const char* name, double cycles, bool on_bus) {
    GraphNode n;
    n.name = name;
    n.cycles = cycles;
    n.fault_tolerance = 2;
    if (on_bus) n.resources.push_back(bus);
    graph.add_node(std::move(n));
  };
  node("s1", 2'000.0, false);
  node("s2", 2'000.0, true);
  node("s3", 2'000.0, true);
  node("s4", 2'000.0, false);
  node("c1", 3'000.0, false);
  node("c2", 3'000.0, false);
  node("c3", 3'000.0, false);
  graph.add_edge("c1", "c2");
  graph.add_edge("c2", "c3");
  graph.validate();
  return graph;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace adacheck;
  try {
    const util::CliArgs args(
        argc, argv, {"instances", "repeats", "seed", "lambda", "workers",
                     "out"});
    const int instances = static_cast<int>(args.get_int("instances", 64));
    const int repeats = static_cast<int>(args.get_int("repeats", 50));
    const auto seed =
        static_cast<std::uint64_t>(args.get_int("seed", 0x5EED5EED));
    const double lambda = args.get_double("lambda", 1.0e-4);
    const int workers = static_cast<int>(args.get_int("workers", 2));
    const std::string out_path = args.get_string("out", "BENCH_dag.json");

    const auto graph = chain_vs_shorts();

    sched::GraphExecutiveConfig config;
    config.instances = instances;
    config.skip_late_jobs = true;
    config.workers = workers;
    config.costs = model::CheckpointCosts::paper_scp_flavor();
    config.fault_model.rate = lambda;

    struct PolicyRow {
      std::string scheduler;
      double wall_seconds = 0.0;
      double jobs_per_second = 0.0;
      long long jobs_dispatched = 0;
      double instance_miss_ratio = 0.0;
      double total_blocking = 0.0;
    };
    std::vector<PolicyRow> rows;

    using clock = std::chrono::steady_clock;
    for (const auto& name : sched::known_schedulers()) {
      config.scheduler = name;
      PolicyRow row;
      row.scheduler = name;
      double miss_sum = 0.0;
      const auto t0 = clock::now();
      for (int r = 0; r < repeats; ++r) {
        config.seed = seed + static_cast<std::uint64_t>(r);
        const auto result = sched::run_graph_executive(graph, config);
        row.jobs_dispatched += static_cast<long long>(result.instances_released)
                               * static_cast<long long>(graph.nodes.size());
        miss_sum += result.instance_miss_ratio();
        row.total_blocking += result.total_blocking;
      }
      const auto t1 = clock::now();
      row.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
      row.jobs_per_second =
          row.wall_seconds > 0.0
              ? static_cast<double>(row.jobs_dispatched) / row.wall_seconds
              : 0.0;
      row.instance_miss_ratio = miss_sum / repeats;
      std::cerr << name << ": " << row.wall_seconds << " s\n";
      rows.push_back(std::move(row));
    }

    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
      std::cerr << "cannot open output file: " << out_path << "\n";
      return 1;
    }
    harness::JsonWriter json(out);
    json.begin_object();
    json.kv("schema", std::string("adacheck-bench-dag-v1"));
    json.kv("version", util::version_string());
    json.kv("graph", graph.name);
    json.kv("nodes", graph.nodes.size());
    json.kv("workers", workers);
    json.kv("instances", instances);
    json.kv("repeats", repeats);
    json.kv("lambda", lambda);
    json.key("policies");
    json.begin_array();
    for (const auto& row : rows) {
      json.begin_object();
      json.kv("scheduler", row.scheduler);
      json.kv("wall_seconds", row.wall_seconds);
      json.kv("jobs_dispatched", row.jobs_dispatched);
      json.kv("jobs_per_second", row.jobs_per_second);
      json.kv("instance_miss_ratio", row.instance_miss_ratio);
      json.kv("total_blocking", row.total_blocking);
      json.end_object();
    }
    json.end_array();
    json.end_object();
    out << "\n";
    std::cerr << "wrote " << out_path << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "bench_dag: " << e.what() << "\n";
    return 1;
  }
}
