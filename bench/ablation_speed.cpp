// Ablation: DVS speed ratio f2/f1 (DESIGN.md §4).
//
// The paper fixes f2 = 2*f1.  This bench sweeps the ratio and reports
// the P/E tradeoff of the DVS schemes on the Table 1(a) cell: a slower
// high speed saves energy per cycle but leaves less recovery slack.
#include <iostream>

#include "model/speed.hpp"
#include "policy/factory.hpp"
#include "sim/monte_carlo.hpp"
#include "util/cli.hpp"
#include "util/tables.hpp"

int main(int argc, char** argv) {
  using namespace adacheck;
  const util::CliArgs args(argc, argv,
                           {"runs", "utilization", "lambda", "k"});
  sim::MonteCarloConfig config;
  config.runs = static_cast<int>(args.get_int("runs", 4'000));
  config.seed = 0x5BEED;
  const double utilization = args.get_double("utilization", 0.80);
  const double lambda = args.get_double("lambda", 1.4e-3);
  const int k = static_cast<int>(args.get_int("k", 5));

  std::cout << "=== Ablation: speed ratio f2/f1 ===\n"
            << "cell: U=" << utilization << " (at f1), lambda=" << lambda
            << " k=" << k << ", V^2 = 4*f\n\n";

  util::TextTable table({"f2/f1", "A_D P", "A_D E", "A_D_S P", "A_D_S E",
                         "A_D_S hi-cycles"});
  for (const double ratio : {1.25, 1.5, 1.75, 2.0, 2.5, 3.0}) {
    sim::SimSetup setup{
        model::task_from_utilization(utilization, 1.0, 10'000.0, k),
        model::CheckpointCosts::paper_scp_flavor(),
        model::DvsProcessor::two_speed(ratio),
        model::FaultModel{lambda, false}};
    const auto ad =
        sim::run_cell(setup, policy::make_policy_factory("A_D"), config);
    const auto ads =
        sim::run_cell(setup, policy::make_policy_factory("A_D_S"), config);
    table.add_row({util::fmt_fixed(ratio, 2),
                   util::fmt_prob(ad.probability()),
                   util::fmt_energy(ad.energy()),
                   util::fmt_prob(ads.probability()),
                   util::fmt_energy(ads.energy()),
                   util::fmt_energy(ads.high_speed_cycles.mean())});
  }
  std::cout << table
            << "\nExpected shape: tiny ratios cannot absorb faults (P\n"
               "drops); large ratios restore P at higher energy; A_D_S\n"
               "dominates A_D throughout.\n";
  return 0;
}
