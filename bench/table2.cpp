// Reproduces Table 2 of the paper: A_D_S vs the baselines with the
// fixed schemes running at the high speed f2 (U = N/(f2*D)).
#include "bench/table_common.hpp"
#include "harness/paper_params.hpp"

int main(int argc, char** argv) {
  using namespace adacheck;
  return benchtool::run_tables(argc, argv,
                               {harness::table2a(), harness::table2b()});
}
