// Ablation: the paper's §2 schemes *without* DVS (Fig. 3 adapchp-SCP
// and the §2.2 CCP analogue) against the fixed baselines at the same
// fixed speed.  Isolates how much of the headline gain comes from the
// adaptive interval + inner checkpoints alone, and how much from the
// speed scaling of §3.
#include <iostream>

#include "policy/factory.hpp"
#include "sim/monte_carlo.hpp"
#include "util/cli.hpp"
#include "util/tables.hpp"

int main(int argc, char** argv) {
  using namespace adacheck;
  const util::CliArgs args(argc, argv, {"runs", "k"});
  sim::MonteCarloConfig config;
  config.runs = static_cast<int>(args.get_int("runs", 6'000));
  config.seed = 0x90D5;
  const int k = static_cast<int>(args.get_int("k", 5));

  std::cout << "=== Ablation: adaptive checkpointing without DVS ===\n"
            << "all schemes pinned to f2 (U measured against f2), SCP "
               "flavor, k=" << k << "\n\n";

  util::TextTable table({"U", "lambda", "Poisson P/E", "k-f-t P/E",
                         "adapchp-SCP P/E", "A_D_S (DVS) P/E"});
  for (const double u : {0.76, 0.80}) {
    for (const double lambda : {1.4e-3, 1.6e-3}) {
      sim::SimSetup setup{
          model::task_from_utilization(u, 2.0, 10'000.0, k),
          model::CheckpointCosts::paper_scp_flavor(),
          model::DvsProcessor::two_speed(2.0),
          model::FaultModel{lambda, false}};
      std::vector<std::string> cells = {util::fmt_fixed(u, 2),
                                        util::fmt_sci(lambda, 1)};
      for (const char* scheme :
           {"Poisson", "k-f-t", "adapchp-SCP", "A_D_S"}) {
        // Fixed-speed schemes run at level 1 (f2); A_D_S chooses.
        const auto stats = sim::run_cell(
            setup, policy::make_policy_factory(scheme, /*level=*/1),
            config);
        cells.push_back(util::fmt_prob(stats.probability()) + " / " +
                        util::fmt_energy(stats.energy()));
      }
      table.add_row(std::move(cells));
    }
  }
  std::cout << table
            << "\nExpected shape: the non-DVS adaptive scheme already\n"
               "beats the fixed baselines' P at the same speed (deadline-\n"
               "aware intervals + cheap inner SCPs); adding DVS (A_D_S)\n"
               "keeps that P while trimming energy via low-speed phases.\n";
  return 0;
}
