// Environment-axis sweep with machine-readable perf output.
//
// Runs one utilization/lambda grid under every registered fault
// environment (or a --envs subset) and three adaptive schemes — the
// paper's A_D and A_D_S plus the rate-tracking A_D_S-est — as one
// flat task queue, and writes BENCH_fault_env.json (schema
// adacheck-sweep-v2, one experiment per environment).  CI archives
// the file next to BENCH_sweep.json: together they track both the
// paper-grid throughput and the environment subsystem's cost.
//
// Cell seeds depend only on (row, scheme), so every environment sees
// paired fault-process draws: cross-environment deltas in the report
// are environment effects, not seed noise.
//
// Usage: bench_fault_env [--runs=N] [--seed=S] [--threads=T]
//                        [--out=BENCH_fault_env.json]
//                        [--envs=poisson,bursty-orbit] [--no-perf]
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "harness/json_report.hpp"
#include "harness/sweep.hpp"
#include "model/fault_env.hpp"
#include "util/cli.hpp"
#include "util/thread_pool.hpp"

namespace {

/// The base grid: a deadline-pressure column (U) crossed with a fault
/// load column (lambda), compact enough that the full environment
/// cross product stays a smoke-runnable sweep.
adacheck::harness::ExperimentSpec base_spec() {
  adacheck::harness::ExperimentSpec spec;
  spec.id = "fault-env-grid";
  spec.title = "fault environment sweep";
  spec.costs = adacheck::model::CheckpointCosts::paper_scp_flavor();
  spec.deadline = 10'000.0;
  spec.fault_tolerance = 5;
  spec.speed_ratio = 2.0;
  spec.util_level = 0;
  spec.schemes = {"A_D", "A_D_S", "A_D_S-est"};
  spec.rows = {
      {0.76, 1.0e-3, {}},
      {0.76, 2.4e-3, {}},
      {0.88, 1.0e-3, {}},
      {0.88, 2.4e-3, {}},
  };
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace adacheck;
  const util::CliArgs args(argc, argv,
                           {"runs", "seed", "threads", "out", "envs",
                            "no-perf"});
  sim::MonteCarloConfig config;
  config.runs = static_cast<int>(args.get_int("runs", 2'000));
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 0x5EED5EED));
  config.threads = static_cast<int>(args.get_int("threads", 0));
  util::ThreadPool::set_shared_size(config.threads);

  std::vector<std::string> envs = model::known_environments();
  const std::string wanted = args.get_string("envs", "");
  if (!wanted.empty()) envs = util::split_csv(wanted);

  std::vector<harness::ExperimentSpec> specs;
  try {
    specs = harness::with_environments({base_spec()}, envs);
  } catch (const std::invalid_argument& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }

  const auto sweep = harness::run_sweep(specs, config);

  harness::JsonReportOptions options;
  options.include_perf = !args.get_bool("no-perf", false);
  const std::string out_path = args.get_string("out", "BENCH_fault_env.json");
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open output file: " << out_path << "\n";
    return 1;
  }
  harness::write_sweep_json(sweep, out, options);

  std::cout << "fault-env sweep: " << envs.size() << " environments x "
            << base_spec().rows.size() << " rows x "
            << base_spec().schemes.size() << " schemes, " << config.runs
            << " runs/cell on " << sweep.perf.threads << " threads\n"
            << "wall: " << sweep.perf.wall_seconds << " s, "
            << sweep.perf.runs_per_second << " runs/s\n"
            << "wrote " << out_path << "\n";
  return 0;
}
