// Reproduces Table 3 of the paper: adapchp_dvs_CCP (A_D_C) vs the
// baselines at the low speed f1.  CCP-flavor costs: t_s = 20, t_cp = 2.
#include "bench/table_common.hpp"
#include "harness/paper_params.hpp"

int main(int argc, char** argv) {
  using namespace adacheck;
  return benchtool::run_tables(argc, argv,
                               {harness::table3a(), harness::table3b()});
}
