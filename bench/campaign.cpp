// Campaign cache probe: cold vs warm wall clock.
//
// Runs the same campaign twice into a scratch cache directory — once
// cold (every cell executed and committed) and once warm (every cell
// replayed from the cache) — and writes BENCH_campaign.json with both
// wall-clock times and the speedup.  CI archives it next to the sweep
// bench to track the cache's payoff, and asserts the warm pass
// executed zero Monte-Carlo runs (replay must never simulate).
//
// Usage: bench_campaign [--campaign=scenarios/campaign_smoke.json]
//                       [--cache=DIR] [--threads=T]
//                       [--out=BENCH_campaign.json]
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "campaign/runner.hpp"
#include "campaign/spec.hpp"
#include "harness/json_writer.hpp"
#include "util/cli.hpp"
#include "util/thread_pool.hpp"
#include "util/version.hpp"

int main(int argc, char** argv) {
  using namespace adacheck;
  try {
    const util::CliArgs args(argc, argv,
                             {"campaign", "cache", "threads", "out"});
    const std::string campaign_path =
        args.get_string("campaign", "scenarios/campaign_smoke.json");
    const std::string cache_dir =
        args.get_string("cache", "bench_campaign_cache");
    const std::string out_path = args.get_string("out", "BENCH_campaign.json");
    const int threads = static_cast<int>(args.get_int("threads", 0));
    util::ThreadPool::set_shared_size(threads);

    const auto spec = campaign::load_campaign_file(campaign_path);

    // A true cold pass needs an empty cache.
    std::filesystem::remove_all(cache_dir);

    campaign::CampaignOptions options;
    options.cache_dir = cache_dir;
    options.status = &std::cerr;

    std::cerr << "cold pass:\n";
    const auto cold = campaign::run_campaign(spec, options);
    std::cerr << "warm pass:\n";
    const auto warm = campaign::run_campaign(spec, options);

    long long cold_runs = 0, warm_runs = 0;
    std::size_t warm_cached = 0;
    for (const auto& outcome : cold.outcomes) {
      cold_runs += outcome.runs_executed;
    }
    for (const auto& outcome : warm.outcomes) {
      warm_runs += outcome.runs_executed;
      if (outcome.status == campaign::CellStatus::kCached) ++warm_cached;
    }
    if (warm_runs != 0 || warm_cached != warm.plan.cells.size()) {
      std::cerr << "WARNING: warm pass was not fully cached (" << warm_cached
                << "/" << warm.plan.cells.size() << " cells, " << warm_runs
                << " runs)\n";
    }

    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
      std::cerr << "cannot open output file: " << out_path << "\n";
      return 1;
    }
    harness::JsonWriter json(out);
    json.begin_object();
    json.kv("schema", std::string("adacheck-bench-campaign-v1"));
    json.kv("version", util::version_string());
    json.kv("campaign", campaign_path);
    json.kv("cells", cold.plan.cells.size());
    json.kv("cold_wall_seconds", cold.wall_seconds);
    json.kv("cold_runs", cold_runs);
    json.kv("warm_wall_seconds", warm.wall_seconds);
    json.kv("warm_runs", warm_runs);
    json.kv("warm_cached_cells", warm_cached);
    json.kv("speedup", warm.wall_seconds > 0.0
                           ? cold.wall_seconds / warm.wall_seconds
                           : 0.0);
    json.end_object();
    out << "\n";
    std::cerr << "wrote " << out_path << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "bench_campaign: " << e.what() << "\n";
    return 1;
  }
}
