// Shared main() skeleton for the per-table bench binaries.
//
// Usage: table1 [--runs=N] [--seed=S] [--threads=T] [--csv=path]
//               [--extended] [--validate]
// Prints the paper's values next to ours for every cell, then the
// qualitative shape checks.  Exit code 0 even on shape-check failure
// (benches report; tests assert).
#pragma once

#include <fstream>
#include <iostream>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "sim/monte_carlo.hpp"
#include "util/cli.hpp"
#include "util/thread_pool.hpp"

namespace adacheck::benchtool {

inline int run_tables(int argc, char** argv,
                      const std::vector<harness::ExperimentSpec>& specs) {
  const util::CliArgs args(argc, argv, {"runs", "seed", "threads", "csv",
                                        "extended", "validate"});
  sim::MonteCarloConfig config;
  config.runs = static_cast<int>(args.get_int("runs", 10'000));
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 0x5EED5EED));
  config.threads = static_cast<int>(args.get_int("threads", 0));
  config.validate = args.get_bool("validate", false);
  // Pin the shared pool's worker count too (statistics are identical
  // at any thread count; this only trades wall-clock for cores).
  util::ThreadPool::set_shared_size(config.threads);

  std::ofstream csv_file;
  const std::string csv_path = args.get_string("csv", "");
  if (!csv_path.empty()) {
    csv_file.open(csv_path);
    if (!csv_file) {
      std::cerr << "cannot open csv file: " << csv_path << "\n";
      return 1;
    }
  }

  for (const auto& spec : specs) {
    const auto result = harness::run_experiment(spec, config);
    std::cout << harness::render_experiment(result) << "\n";
    if (args.get_bool("extended", false)) {
      std::cout << harness::render_extended(result) << "\n";
    }
    std::cout << harness::render_shape_checks(harness::shape_checks(result))
              << "\n";
    if (csv_file.is_open()) harness::write_csv(result, csv_file);
  }
  return 0;
}

}  // namespace adacheck::benchtool
