// Google-benchmark microbenchmarks: throughput of the simulation engine
// and cost of the analytic decision procedures.  These bound how long
// the table benches take (10,000 runs x ~50 cells each).
#include <benchmark/benchmark.h>

#include "analytic/interval_policy.hpp"
#include "analytic/num_checkpoints.hpp"
#include "policy/factory.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace {

using namespace adacheck;

sim::SimSetup paper_cell(double lambda) {
  return sim::SimSetup{
      model::task_from_utilization(0.76, 1.0, 10'000.0, 5),
      model::CheckpointCosts::paper_scp_flavor(),
      model::DvsProcessor::two_speed(2.0),
      model::FaultModel{lambda, false}};
}

void BM_AdaptiveInterval(benchmark::State& state) {
  double rd = 10'000.0;
  for (auto _ : state) {
    const auto d = analytic::adaptive_interval(rd, 3'800.0, 11.0, 5, 1.4e-3);
    benchmark::DoNotOptimize(d.interval);
  }
}
BENCHMARK(BM_AdaptiveInterval);

void BM_NumScp(benchmark::State& state) {
  analytic::ScpRenewalParams params;
  params.interval = static_cast<double>(state.range(0));
  params.lambda = 1.4e-3;
  params.costs = model::CheckpointCosts::paper_scp_flavor();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analytic::num_scp(params));
  }
}
BENCHMARK(BM_NumScp)->Arg(125)->Arg(500)->Arg(2000);

void BM_NumCcp(benchmark::State& state) {
  analytic::CcpRenewalParams params;
  params.interval = static_cast<double>(state.range(0));
  params.lambda = 1.4e-3;
  params.costs = model::CheckpointCosts::paper_ccp_flavor();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analytic::num_ccp(params));
  }
}
BENCHMARK(BM_NumCcp)->Arg(125)->Arg(500)->Arg(2000);

void BM_SingleRun(benchmark::State& state, const char* scheme,
                  double lambda) {
  const auto setup = paper_cell(lambda);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto policy = policy::make_policy(scheme);
    const auto result = sim::simulate_seeded(setup, *policy, seed++);
    benchmark::DoNotOptimize(result.energy);
  }
}
BENCHMARK_CAPTURE(BM_SingleRun, poisson_low, "Poisson", 1e-4);
BENCHMARK_CAPTURE(BM_SingleRun, poisson_high, "Poisson", 1.6e-3);
BENCHMARK_CAPTURE(BM_SingleRun, a_d, "A_D", 1.6e-3);
BENCHMARK_CAPTURE(BM_SingleRun, a_d_s, "A_D_S", 1.6e-3);
BENCHMARK_CAPTURE(BM_SingleRun, a_d_c, "A_D_C", 1.6e-3);

void BM_RngExponential(benchmark::State& state) {
  util::Xoshiro256 rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.exponential(1.4e-3));
  }
}
BENCHMARK(BM_RngExponential);

}  // namespace

BENCHMARK_MAIN();
