#include "analytic/interval_policy.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "analytic/intervals.hpp"

namespace adacheck::analytic {
namespace {

// Fig. 4 branch selection, checked against hand-evaluated thresholds.

TEST(AdaptiveInterval, PoissonBranchWhenFaultsExceedBudget) {
  // exp_error = lambda * Rt = 10.6 > Rf = 5 and Rt below Th_lambda
  // -> line 10: I1.
  const auto d = adaptive_interval(10'000.0, 7'600.0, 22.0, 5, 1.4e-3);
  EXPECT_EQ(d.rule, IntervalRule::kPoisson);
  EXPECT_NEAR(d.interval, poisson_interval(22.0, 1.4e-3), 1e-9);
}

TEST(AdaptiveInterval, DeadlineBranchUnderPressure) {
  // Rt above Th_lambda -> I3 regardless of the fault-budget side.
  const double lambda = 1.4e-3;
  const double th = poisson_threshold(9'000.0, lambda, 22.0);
  const double rt = th * 1.05;
  const auto d = adaptive_interval(9'000.0, rt, 22.0, 50, lambda);
  EXPECT_EQ(d.rule, IntervalRule::kDeadlinePressure);
  EXPECT_NEAR(d.interval, deadline_interval(rt, 9'000.0, 22.0), 1e-9);

  // Same with the budget exhausted (exp_error > Rf).
  const auto d2 = adaptive_interval(9'000.0, rt, 22.0, 0, lambda);
  EXPECT_EQ(d2.rule, IntervalRule::kDeadlinePressure);
}

TEST(AdaptiveInterval, ExpectedFaultBranchBetweenThresholds) {
  // Rt between Th and Th_lambda with exp_error <= Rf -> I2 with the
  // expected fault count (Fig. 4 line 6).
  const double lambda = 1e-4, c = 22.0, rd = 10'000.0;
  const int rf = 5;
  const double th_l = poisson_threshold(rd, lambda, c);
  const double th_k = k_fault_threshold(rd, rf, c);
  ASSERT_LT(th_k, th_l);
  const double rt = 0.5 * (th_k + th_l);
  ASSERT_LE(lambda * rt, rf);
  const auto d = adaptive_interval(rd, rt, c, rf, lambda);
  EXPECT_EQ(d.rule, IntervalRule::kExpectedFaults);
  EXPECT_NEAR(d.interval, std::sqrt(rt * c / (lambda * rt)), 1e-6);
}

TEST(AdaptiveInterval, GuaranteeBranchWhenComfortable) {
  // Small Rt -> line 7: I2 with the full budget Rf.
  const double lambda = 1e-4, c = 22.0, rd = 10'000.0;
  const int rf = 5;
  const double rt = 3'000.0;
  ASSERT_LT(rt, k_fault_threshold(rd, rf, c));
  const auto d = adaptive_interval(rd, rt, c, rf, lambda);
  EXPECT_EQ(d.rule, IntervalRule::kFaultGuarantee);
  EXPECT_NEAR(d.interval, k_fault_interval(rt, rf, c), 1e-9);
}

TEST(AdaptiveInterval, NegativeBudgetTreatedAsZero) {
  // After more than k detections R_f can go below zero; the procedure
  // must still return a usable interval (Poisson side).
  const auto d = adaptive_interval(5'000.0, 3'000.0, 22.0, -2, 1e-3);
  EXPECT_GT(d.interval, 0.0);
}

TEST(AdaptiveInterval, ZeroLambdaFavorsGuarantee) {
  // exp_error = 0 <= Rf always; comfortable Rt -> k-fault interval.
  const auto d = adaptive_interval(10'000.0, 4'000.0, 22.0, 5, 0.0);
  EXPECT_EQ(d.rule, IntervalRule::kFaultGuarantee);
}

TEST(AdaptiveInterval, IntervalShrinksAsBudgetTightens) {
  // Fewer remaining faults to tolerate -> larger interval (fewer
  // checkpoints needed for the guarantee).
  const double rd = 10'000.0, rt = 3'000.0, c = 22.0;
  const auto d5 = adaptive_interval(rd, rt, c, 5, 1e-4);
  const auto d1 = adaptive_interval(rd, rt, c, 1, 1e-4);
  EXPECT_GT(d1.interval, d5.interval);
}

TEST(AdaptiveInterval, RejectsBadArguments) {
  EXPECT_THROW(adaptive_interval(100.0, 0.0, 22.0, 1, 1e-3),
               std::invalid_argument);
  EXPECT_THROW(adaptive_interval(100.0, 50.0, 22.0, 1, -1e-3),
               std::invalid_argument);
}

TEST(IntervalRule, Names) {
  EXPECT_EQ(std::string(to_string(IntervalRule::kPoisson)), "I1-poisson");
  EXPECT_EQ(std::string(to_string(IntervalRule::kDeadlinePressure)),
            "I3-deadline");
  EXPECT_EQ(std::string(to_string(IntervalRule::kExpectedFaults)),
            "I2-expected");
  EXPECT_EQ(std::string(to_string(IntervalRule::kFaultGuarantee)),
            "I2-guarantee");
}

}  // namespace
}  // namespace adacheck::analytic
