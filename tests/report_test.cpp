#include "harness/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace adacheck::harness {
namespace {

/// Builds a synthetic two-row, paper-style result without running any
/// simulation (CellStats filled by hand).
ExperimentResult synthetic_result(double p_ads, double p_ad,
                                  double e_ads = 50'000.0,
                                  double e_ad = 55'000.0) {
  ExperimentSpec spec;
  spec.id = "synthetic";
  spec.title = "synthetic";
  spec.costs = model::CheckpointCosts::paper_scp_flavor();
  spec.deadline = 10'000.0;
  spec.fault_tolerance = 5;
  spec.util_level = 0;
  spec.schemes = {"Poisson", "k-f-t", "A_D", "A_D_S"};
  spec.rows = {{0.76,
                1.4e-3,
                {{0.10, 39'000.0},
                 {0.11, 39'000.0},
                 {0.99, 57'000.0},
                 {0.999, 53'000.0}}}};

  ExperimentResult result;
  result.spec = spec;
  auto make_cell = [](double p, double e) {
    sim::CellStats stats;
    const int runs = 1'000;
    const int ok = static_cast<int>(p * runs);
    for (int i = 0; i < runs; ++i) {
      const bool success = i < ok;
      stats.completion.add(success);
      stats.energy_all.add(e);
      if (success) {
        stats.energy_success.add(e);
        stats.finish_time_success.add(9'000.0);
      }
      stats.faults.add(3.0);
      stats.rollbacks.add(3.0);
      stats.high_speed_cycles.add(0.0);
    }
    return stats;
  };
  result.cells = {{make_cell(0.12, 39'500.0), make_cell(0.10, 39'200.0),
                   make_cell(p_ad, e_ad), make_cell(p_ads, e_ads)}};
  return result;
}

TEST(Report, RenderContainsPaperAndMeasured) {
  const auto result = synthetic_result(0.998, 0.99);
  const auto text = render_experiment(result);
  EXPECT_NE(text.find("0.9990 / 0.9980"), std::string::npos);  // A_D_S P
  EXPECT_NE(text.find("A_D_S"), std::string::npos);
  EXPECT_NE(text.find("synthetic"), std::string::npos);
}

TEST(Report, ExtendedRenderHasConfidenceIntervals) {
  const auto result = synthetic_result(0.998, 0.99);
  const auto text = render_extended(result);
  EXPECT_NE(text.find("P 95% CI"), std::string::npos);
  EXPECT_NE(text.find("rollbacks"), std::string::npos);
}

TEST(Report, CsvHasHeaderAndOneLinePerCell) {
  const auto result = synthetic_result(0.998, 0.99);
  std::ostringstream os;
  write_csv(result, os);
  const std::string text = os.str();
  std::size_t lines = 0, pos = 0;
  while ((pos = text.find('\n', pos)) != std::string::npos) {
    ++lines;
    ++pos;
  }
  EXPECT_EQ(lines, 1u + 4u);  // header + 4 cells
  EXPECT_NE(text.find("table,utilization"), std::string::npos);
  EXPECT_NE(text.find("A_D_S"), std::string::npos);
}

TEST(ShapeChecks, PassOnHealthyResult) {
  const auto result = synthetic_result(/*p_ads=*/0.999, /*p_ad=*/0.99,
                                       /*e_ads=*/50'000.0,
                                       /*e_ad=*/55'000.0);
  const auto checks = shape_checks(result);
  ASSERT_FALSE(checks.empty());
  for (const auto& check : checks) {
    EXPECT_TRUE(check.passed) << check.description;
  }
}

TEST(ShapeChecks, FailWhenProposedLosesToAd) {
  const auto result = synthetic_result(/*p_ads=*/0.60, /*p_ad=*/0.99);
  const auto checks = shape_checks(result);
  EXPECT_FALSE(checks[0].passed);
}

TEST(ShapeChecks, FailWhenProposedLosesToBaselines) {
  // Proposed barely above baselines where the paper claims a big gap.
  const auto result = synthetic_result(/*p_ads=*/0.15, /*p_ad=*/0.10);
  bool any_failed = false;
  for (const auto& check : shape_checks(result)) {
    any_failed |= !check.passed;
  }
  EXPECT_TRUE(any_failed);
}

TEST(ShapeChecks, FailOnEnergyRegression) {
  // f1-table: proposed scheme burning 30% more than A_D must fail the
  // energy check.
  const auto result = synthetic_result(0.999, 0.99, /*e_ads=*/71'500.0,
                                       /*e_ad=*/55'000.0);
  bool energy_failed = false;
  for (const auto& check : shape_checks(result)) {
    if (check.description.find("energy ratio") != std::string::npos) {
      energy_failed = !check.passed;
    }
  }
  EXPECT_TRUE(energy_failed);
}

TEST(ShapeChecks, RenderedListing) {
  const auto checks = shape_checks(synthetic_result(0.999, 0.99));
  const auto text = render_shape_checks(checks);
  EXPECT_NE(text.find("[PASS]"), std::string::npos);
}

}  // namespace
}  // namespace adacheck::harness
