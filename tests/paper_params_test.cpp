// Guards the transcription of the paper's tables: grids, cost flavors,
// speed levels, and a sample of the embedded reported values.
#include "harness/paper_params.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace adacheck::harness {
namespace {

TEST(PaperParams, EightSubTables) {
  const auto tables = all_paper_tables();
  ASSERT_EQ(tables.size(), 8u);
  EXPECT_EQ(tables[0].id, "table1a");
  EXPECT_EQ(tables[7].id, "table4b");
}

TEST(PaperParams, CommonParameters) {
  for (const auto& spec : all_paper_tables()) {
    EXPECT_DOUBLE_EQ(spec.deadline, 10'000.0) << spec.id;
    EXPECT_DOUBLE_EQ(spec.costs.cscp(), 22.0) << spec.id;  // c = 22
    EXPECT_DOUBLE_EQ(spec.costs.rollback, 0.0) << spec.id; // t_r = 0
    EXPECT_DOUBLE_EQ(spec.speed_ratio, 2.0) << spec.id;    // f2 = 2 f1
    EXPECT_EQ(spec.schemes.size(), 4u) << spec.id;
    EXPECT_EQ(spec.schemes[0], "Poisson");
    EXPECT_EQ(spec.schemes[1], "k-f-t");
    EXPECT_EQ(spec.schemes[2], "A_D");
  }
}

TEST(PaperParams, CostFlavors) {
  // Tables 1-2: SCP flavor (t_s = 2, t_cp = 20); 3-4: CCP flavor.
  EXPECT_DOUBLE_EQ(table1a().costs.store, 2.0);
  EXPECT_DOUBLE_EQ(table2b().costs.compare, 20.0);
  EXPECT_DOUBLE_EQ(table3a().costs.store, 20.0);
  EXPECT_DOUBLE_EQ(table4b().costs.compare, 2.0);
  EXPECT_EQ(table1a().schemes[3], "A_D_S");
  EXPECT_EQ(table3a().schemes[3], "A_D_C");
}

TEST(PaperParams, UtilizationLevels) {
  EXPECT_EQ(table1a().util_level, 0u);  // baselines at f1
  EXPECT_EQ(table2a().util_level, 1u);  // baselines at f2
  EXPECT_EQ(table3b().util_level, 0u);
  EXPECT_EQ(table4a().util_level, 1u);
}

TEST(PaperParams, SubTableAGrids) {
  for (const auto& spec : {table1a(), table2a(), table3a(), table4a()}) {
    EXPECT_EQ(spec.fault_tolerance, 5) << spec.id;
    ASSERT_EQ(spec.rows.size(), 8u) << spec.id;
    EXPECT_DOUBLE_EQ(spec.rows.front().utilization, 0.76);
    EXPECT_DOUBLE_EQ(spec.rows.back().utilization, 0.82);
    EXPECT_DOUBLE_EQ(spec.rows.front().lambda, 1.4e-3);
    EXPECT_DOUBLE_EQ(spec.rows[1].lambda, 1.6e-3);
  }
}

TEST(PaperParams, SubTableBGrids) {
  for (const auto& spec : {table1b(), table3b()}) {
    EXPECT_EQ(spec.fault_tolerance, 1) << spec.id;
    ASSERT_EQ(spec.rows.size(), 6u) << spec.id;
    EXPECT_DOUBLE_EQ(spec.rows.back().utilization, 1.00);
    EXPECT_DOUBLE_EQ(spec.rows.front().lambda, 1e-4);
  }
  // The high-speed (b) tables stop at U = 0.95 in the paper.
  for (const auto& spec : {table2b(), table4b()}) {
    ASSERT_EQ(spec.rows.size(), 4u) << spec.id;
    EXPECT_DOUBLE_EQ(spec.rows.back().utilization, 0.95);
  }
}

TEST(PaperParams, SpotCheckEmbeddedValues) {
  // Table 1(a) row 1: Poisson P = 0.1185 / E = 39015; A_D_S 0.9999/52863.
  const auto t1a = table1a();
  EXPECT_DOUBLE_EQ(t1a.rows[0].paper[0].p, 0.1185);
  EXPECT_DOUBLE_EQ(t1a.rows[0].paper[0].e, 39'015.0);
  EXPECT_DOUBLE_EQ(t1a.rows[0].paper[3].p, 0.9999);
  EXPECT_DOUBLE_EQ(t1a.rows[0].paper[3].e, 52'863.0);
  // Table 1(b) U = 1.00 rows: baselines report NaN energy.
  const auto t1b = table1b();
  EXPECT_TRUE(std::isnan(t1b.rows[4].paper[0].e));
  EXPECT_DOUBLE_EQ(t1b.rows[4].paper[0].p, 0.0);
  // Table 4(a) last row: A_D_C P = 0.2115.
  const auto t4a = table4a();
  EXPECT_DOUBLE_EQ(t4a.rows[7].paper[3].p, 0.2115);
  EXPECT_DOUBLE_EQ(t4a.rows[7].paper[3].e, 154'400.0);
}

TEST(PaperParams, PaperShapeHoldsInEmbeddedData) {
  // Internal consistency of the transcription: in every (a)-table cell
  // the proposed scheme's reported P beats both fixed baselines.
  for (const auto& spec : {table1a(), table2a(), table3a(), table4a()}) {
    for (const auto& row : spec.rows) {
      EXPECT_GT(row.paper[3].p, row.paper[0].p) << spec.id;
      EXPECT_GT(row.paper[3].p, row.paper[1].p) << spec.id;
    }
  }
}

}  // namespace
}  // namespace adacheck::harness
