#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

namespace adacheck::util {
namespace {

TEST(ThreadPool, RunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  TaskGroup group(pool);
  for (int i = 0; i < 1'000; ++i) {
    group.run([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  group.wait();
  EXPECT_EQ(count.load(), 1'000);
}

TEST(ThreadPool, DefaultsToAtLeastOneWorker) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1);
  EXPECT_GE(ThreadPool::default_concurrency(), 1);
}

TEST(ThreadPool, SharedPoolIsPersistent) {
  EXPECT_EQ(&ThreadPool::shared(), &ThreadPool::shared());
  EXPECT_GE(ThreadPool::shared().size(), 1);
}

TEST(ThreadPool, SharedSizeIsFixedAfterFirstUse) {
  const int current = ThreadPool::shared().size();  // force construction
  // Re-requesting the current size (or the default) is a no-op...
  EXPECT_NO_THROW(ThreadPool::set_shared_size(current));
  EXPECT_NO_THROW(ThreadPool::set_shared_size(0));
  EXPECT_NO_THROW(ThreadPool::set_shared_size(-3));
  // ...but an actual resize after the pool exists must fail loudly.
  EXPECT_THROW(ThreadPool::set_shared_size(current + 1), std::logic_error);
  EXPECT_EQ(ThreadPool::shared().size(), current);
}

TEST(ThreadPool, ParsesThreadOverrides) {
  // The ADACHECK_THREADS parsing rule: positive integers win, anything
  // else means "use the default" (0).
  EXPECT_EQ(ThreadPool::parse_thread_override("6"), 6);
  EXPECT_EQ(ThreadPool::parse_thread_override("1"), 1);
  EXPECT_EQ(ThreadPool::parse_thread_override(nullptr), 0);
  EXPECT_EQ(ThreadPool::parse_thread_override(""), 0);
  EXPECT_EQ(ThreadPool::parse_thread_override("0"), 0);
  EXPECT_EQ(ThreadPool::parse_thread_override("-2"), 0);
  EXPECT_EQ(ThreadPool::parse_thread_override("four"), 0);
  EXPECT_EQ(ThreadPool::parse_thread_override("4x"), 0);
  EXPECT_EQ(ThreadPool::parse_thread_override("999999999999"), 0);
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  TaskGroup group(pool);
  for (int i = 0; i < 10; ++i) {
    group.run([&count, i] {
      if (i == 3) throw std::runtime_error("task 3 failed");
      count.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_THROW(group.wait(), std::runtime_error);
  // The failure does not cancel siblings: every other task still ran.
  EXPECT_EQ(count.load(), 9);
}

TEST(ThreadPool, GroupIsReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  TaskGroup group(pool);
  group.run([&count] { ++count; });
  group.wait();
  group.run([&count] { ++count; });
  group.run([&count] { ++count; });
  group.wait();
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, NestedWaitDoesNotDeadlockOnSingleWorker) {
  // A task running on the only worker submits and waits on its own
  // sub-tasks; help-while-wait must execute them in place.
  ThreadPool pool(1);
  std::atomic<int> inner_count{0};
  TaskGroup outer(pool);
  outer.run([&] {
    TaskGroup inner(pool);
    for (int i = 0; i < 8; ++i) {
      inner.run([&inner_count] { ++inner_count; });
    }
    inner.wait();
  });
  outer.wait();
  EXPECT_EQ(inner_count.load(), 8);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    TaskGroup group(pool);
    for (int i = 0; i < 64; ++i) {
      group.run([&count] { ++count; });
    }
    group.wait();
  }
  EXPECT_EQ(count.load(), 64);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(237);
  parallel_for(pool, 0, 237, 10, [&hits](int lo, int hi) {
    for (int i = lo; i < hi; ++i) hits[static_cast<std::size_t>(i)]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyAndTinyRanges) {
  ThreadPool pool(2);
  int calls = 0;
  parallel_for(pool, 5, 5, 10, [&calls](int, int) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int> sum{0};
  parallel_for(pool, 3, 4, 100, [&sum](int lo, int hi) {
    sum += hi - lo;
  });
  EXPECT_EQ(sum.load(), 1);
}

TEST(ParallelFor, PropagatesBodyException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      parallel_for(pool, 0, 100, 1,
                   [](int lo, int) {
                     if (lo == 42) throw std::logic_error("boom");
                   }),
      std::logic_error);
}

}  // namespace
}  // namespace adacheck::util
