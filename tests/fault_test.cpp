#include "model/fault.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "model/fault_env.hpp"
#include "util/rng.hpp"

namespace adacheck::model {
namespace {

TEST(FaultModel, PairRateIsSystemRate) {
  // The paper's lambda is the duplex-system arrival rate (DESIGN.md §3).
  FaultModel m{1.4e-3, false};
  EXPECT_DOUBLE_EQ(m.pair_rate(), 1.4e-3);
  EXPECT_TRUE(m.valid());
  EXPECT_FALSE((FaultModel{-1.0, false}).valid());
}

TEST(FaultModel, AcceptsAnyReplicaCountFromTwo) {
  // Regression for the {2,3}-only restriction: fault environments must
  // compose with future N-modular redundancy, so any N >= 2 (up to the
  // 32-bit mask width) is a valid replica group.
  for (int n : {2, 3, 4, 5, 8, 16, 32}) {
    EXPECT_TRUE((FaultModel{1e-3, false, n}).valid()) << n;
  }
  EXPECT_FALSE((FaultModel{1e-3, false, 1}).valid());
  EXPECT_FALSE((FaultModel{1e-3, false, 0}).valid());
  EXPECT_FALSE((FaultModel{1e-3, false, -2}).valid());
  EXPECT_FALSE((FaultModel{1e-3, false, 33}).valid());
}

TEST(FaultTrace, RecordKeepsOrderAndRejectsBadInput) {
  FaultTrace trace;
  trace.record(1.0, 0);
  trace.record(2.5, 1);
  EXPECT_EQ(trace.size(), 2u);
  EXPECT_THROW(trace.record(2.0, 0), std::invalid_argument);   // regression
  EXPECT_THROW(trace.record(3.0, 32), std::invalid_argument);  // mask width
  EXPECT_THROW(trace.record(3.0, -2), std::invalid_argument);  // bad replica
  EXPECT_NO_THROW(trace.record(3.0, 2));   // TMR third replica is valid
  EXPECT_NO_THROW(trace.record(3.5, 7));   // NMR replicas are valid
  EXPECT_NO_THROW(trace.record(4.0, kAllReplicas));  // common-cause strike
}

TEST(FaultTrace, ConstructorValidatesSorting) {
  EXPECT_NO_THROW(FaultTrace({{1.0, 0}, {2.0, 1}}));
  EXPECT_THROW(FaultTrace({{2.0, 0}, {1.0, 1}}), std::invalid_argument);
}

TEST(FaultTrace, CountInWindow) {
  FaultTrace trace({{1.0, 0}, {2.0, 1}, {2.0, 0}, {5.0, 1}});
  EXPECT_EQ(trace.count_in(0.0, 10.0), 4u);
  EXPECT_EQ(trace.count_in(1.5, 2.5), 2u);
  EXPECT_EQ(trace.count_in(2.0, 5.0), 2u);  // half-open: [2, 5)
  EXPECT_EQ(trace.count_in(6.0, 9.0), 0u);
}

TEST(PoissonFaultSource, ArrivalRateMatchesLambda) {
  util::Xoshiro256 rng(99);
  const FaultModel model{0.01, false};
  PoissonFaultSource source(model, rng);
  int count = 0;
  double cursor = 0.0;
  int cpu = 0;
  for (;;) {
    const double t = source.next_fault_after(cursor, cpu);
    if (t >= 10'000.0) break;
    ++count;
    cursor = std::nextafter(t, std::numeric_limits<double>::infinity());
  }
  EXPECT_NEAR(count, 100, 30);  // lambda * horizon = 100
}

TEST(PoissonFaultSource, QueryIsIdempotentUntilConsumed) {
  util::Xoshiro256 rng(5);
  PoissonFaultSource source(FaultModel{0.1, false}, rng);
  int cpu1 = -1, cpu2 = -1;
  const double t1 = source.next_fault_after(0.0, cpu1);
  const double t2 = source.next_fault_after(0.0, cpu2);
  EXPECT_DOUBLE_EQ(t1, t2);
  EXPECT_EQ(cpu1, cpu2);
}

TEST(PoissonFaultSource, AssignsBothProcessors) {
  util::Xoshiro256 rng(123);
  PoissonFaultSource source(FaultModel{1.0, false}, rng);
  int seen0 = 0, seen1 = 0;
  double cursor = 0.0;
  int cpu = 0;
  for (int i = 0; i < 1'000; ++i) {
    const double t = source.next_fault_after(cursor, cpu);
    (cpu == 0 ? seen0 : seen1)++;
    cursor = std::nextafter(t, std::numeric_limits<double>::infinity());
  }
  EXPECT_GT(seen0, 300);
  EXPECT_GT(seen1, 300);
}

TEST(PoissonFaultSource, ZeroRateNeverFires) {
  util::Xoshiro256 rng(5);
  PoissonFaultSource source(FaultModel{0.0, false}, rng);
  int cpu = 0;
  EXPECT_TRUE(std::isinf(source.next_fault_after(0.0, cpu)));
}

TEST(ReplayFaultSource, WalksTraceInOrder) {
  FaultTrace trace({{1.0, 0}, {3.0, 1}, {7.0, 0}});
  ReplayFaultSource source(trace);
  int cpu = -1;
  EXPECT_DOUBLE_EQ(source.next_fault_after(0.0, cpu), 1.0);
  EXPECT_EQ(cpu, 0);
  EXPECT_DOUBLE_EQ(source.next_fault_after(2.0, cpu), 3.0);
  EXPECT_EQ(cpu, 1);
  EXPECT_DOUBLE_EQ(source.next_fault_after(3.5, cpu), 7.0);
  EXPECT_TRUE(std::isinf(source.next_fault_after(8.0, cpu)));
}

TEST(ReplayFaultSource, EmptyTraceIsFaultFree) {
  FaultTrace trace;
  ReplayFaultSource source(trace);
  int cpu = 0;
  EXPECT_TRUE(std::isinf(source.next_fault_after(0.0, cpu)));
}

}  // namespace
}  // namespace adacheck::model
