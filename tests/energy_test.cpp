#include "model/energy.hpp"

#include <gtest/gtest.h>

namespace adacheck::model {
namespace {

TEST(EnergyMeter, AccumulatesVSquaredTimesCycles) {
  EnergyMeter m;
  const SpeedLevel low{1.0, 2.0};   // energy/cycle 4
  const SpeedLevel high{2.0, 3.0};  // energy/cycle 9
  m.charge(low, 100.0);
  m.charge(high, 10.0);
  EXPECT_DOUBLE_EQ(m.total(), 400.0 + 90.0);
  EXPECT_DOUBLE_EQ(m.total_cycles(), 110.0);
}

TEST(EnergyMeter, BreakdownByFrequency) {
  EnergyMeter m;
  const SpeedLevel low{1.0, 2.0};
  const SpeedLevel high{2.0, 3.0};
  m.charge(low, 50.0);
  m.charge(high, 25.0);
  m.charge(low, 10.0);
  EXPECT_DOUBLE_EQ(m.cycles_at(1.0), 60.0);
  EXPECT_DOUBLE_EQ(m.cycles_at(2.0), 25.0);
  EXPECT_DOUBLE_EQ(m.cycles_at(4.0), 0.0);
  EXPECT_EQ(m.breakdown().size(), 2u);
}

TEST(EnergyMeter, ZeroChargeIsNoOp) {
  EnergyMeter m;
  m.charge({1.0, 1.0}, 0.0);
  EXPECT_DOUBLE_EQ(m.total(), 0.0);
}

TEST(EnergyMeter, RejectsNegativeCycles) {
  EnergyMeter m;
  EXPECT_THROW(m.charge({1.0, 1.0}, -1.0), std::invalid_argument);
}

TEST(EnergyMeter, SpillsBeyondInlineCapacity) {
  // More distinct frequencies than the inline slot array holds (6):
  // the spill path must keep per-frequency accounting exact.
  EnergyMeter m;
  const int levels = 10;
  for (int pass = 0; pass < 2; ++pass) {
    for (int i = 1; i <= levels; ++i) {
      m.charge({static_cast<double>(i), 1.0}, 10.0 * i);
    }
  }
  for (int i = 1; i <= levels; ++i) {
    EXPECT_DOUBLE_EQ(m.cycles_at(i), 20.0 * i) << "frequency " << i;
  }
  EXPECT_DOUBLE_EQ(m.total_cycles(), 2.0 * 10.0 * (levels * (levels + 1) / 2));
  EXPECT_DOUBLE_EQ(m.cycles_above(8.0), 20.0 * (9 + 10));
  const auto breakdown = m.breakdown();
  ASSERT_EQ(breakdown.size(), static_cast<std::size_t>(levels));
  for (int i = 1; i <= levels; ++i) {  // sorted ascending, no duplicates
    EXPECT_DOUBLE_EQ(breakdown[static_cast<std::size_t>(i - 1)].first, i);
  }
  m.reset();
  EXPECT_TRUE(m.breakdown().empty());
  EXPECT_DOUBLE_EQ(m.cycles_at(7.0), 0.0);
}

TEST(EnergyMeter, ResetClearsEverything) {
  EnergyMeter m;
  m.charge({1.0, 2.0}, 10.0);
  m.reset();
  EXPECT_DOUBLE_EQ(m.total(), 0.0);
  EXPECT_DOUBLE_EQ(m.total_cycles(), 0.0);
  EXPECT_TRUE(m.breakdown().empty());
}

TEST(EnergyMeter, PaperCalibration) {
  // With the default voltage law (kappa = 4), a fault-free N = 7600
  // cycle run at f1 costs 30400 — the right magnitude for the paper's
  // ~39000 including checkpoint overhead and re-execution.
  VoltageLaw law;
  EnergyMeter m;
  m.charge({1.0, law.voltage_for(1.0)}, 7'600.0);
  EXPECT_DOUBLE_EQ(m.total(), 30'400.0);
}

}  // namespace
}  // namespace adacheck::model
