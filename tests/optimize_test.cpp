#include "util/optimize.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace adacheck::util {
namespace {

TEST(GoldenSection, FindsParabolaMinimum) {
  const auto m = golden_section_minimize(
      [](double x) { return (x - 3.0) * (x - 3.0) + 2.0; }, -10.0, 10.0);
  EXPECT_NEAR(m.x, 3.0, 1e-5);
  EXPECT_NEAR(m.fx, 2.0, 1e-9);
}

TEST(GoldenSection, HandlesBoundaryMinimum) {
  // Monotone increasing: minimum at the left edge.
  const auto m =
      golden_section_minimize([](double x) { return x; }, 2.0, 9.0);
  EXPECT_NEAR(m.x, 2.0, 1e-5);
}

TEST(GoldenSection, NonSmoothUnimodal) {
  const auto m = golden_section_minimize(
      [](double x) { return std::abs(x - 1.25); }, 0.0, 4.0);
  EXPECT_NEAR(m.x, 1.25, 1e-5);
}

TEST(GoldenSection, RejectsInvertedBracket) {
  EXPECT_THROW(
      golden_section_minimize([](double x) { return x; }, 1.0, 0.0),
      std::invalid_argument);
}

TEST(GoldenSection, RejectsBadToleranceAndBracket) {
  // Regression: tol <= 0 could spin forever once the bracket hit the
  // floating-point floor; non-finite brackets never converge.
  const auto f = [](double x) { return x * x; };
  EXPECT_THROW(golden_section_minimize(f, -1.0, 1.0, 0.0),
               std::invalid_argument);
  EXPECT_THROW(golden_section_minimize(f, -1.0, 1.0, -1e-6),
               std::invalid_argument);
  EXPECT_THROW(golden_section_minimize(
                   f, -1.0, 1.0, std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
  EXPECT_THROW(golden_section_minimize(
                   f, -std::numeric_limits<double>::infinity(), 1.0),
               std::invalid_argument);
  EXPECT_THROW(golden_section_minimize(
                   f, -1.0, std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
}

TEST(GoldenSection, TerminatesWhenTolBelowBracketUlp) {
  // Regression: with tol below the bracket's ULP spacing the probe
  // points round onto the endpoints and the width stops shrinking —
  // the search must stop at floating-point resolution, not spin.
  const auto m = golden_section_minimize(
      [](double x) { return (x - 1e10) * (x - 1e10); }, 1e10,
      1e10 + 1.0, 1e-7);
  EXPECT_NEAR(m.x, 1e10, 1e-5);
}

TEST(GoldenSection, CheckpointRenewalShape) {
  // The shape num_SCP minimizes: overhead/x + growth*x, minimum at
  // sqrt(overhead/growth).
  const double overhead = 22.0, growth = 0.0014;
  const auto m = golden_section_minimize(
      [&](double x) { return overhead / x + growth * x; }, 1e-3, 1e5,
      1e-6);
  EXPECT_NEAR(m.x, std::sqrt(overhead / growth), 1.0);
}

TEST(IntegerArgmin, FindsDiscreteMinimum) {
  const auto best = integer_argmin(
      [](std::int64_t m) {
        const double md = static_cast<double>(m);
        return 100.0 / md + 3.0 * md;
      },
      1, 100);
  EXPECT_EQ(best.x, 6);  // sqrt(100/3) ~ 5.77 -> 6 beats 5 here
}

TEST(IntegerArgmin, EarlyStopMatchesFullScanOnConvex) {
  const auto f = [](std::int64_t m) {
    const double md = static_cast<double>(m);
    return 400.0 / md + 1.7 * md;
  };
  const auto full = integer_argmin(f, 1, 1'000);
  const auto fast = integer_argmin(f, 1, 1'000, /*early_stop_rises=*/3);
  EXPECT_EQ(full.x, fast.x);
  EXPECT_DOUBLE_EQ(full.fx, fast.fx);
}

TEST(IntegerArgmin, SinglePointRange) {
  const auto best =
      integer_argmin([](std::int64_t) { return 7.0; }, 5, 5);
  EXPECT_EQ(best.x, 5);
  EXPECT_DOUBLE_EQ(best.fx, 7.0);
}

TEST(IntegerArgmin, RejectsEmptyRange) {
  EXPECT_THROW(integer_argmin([](std::int64_t) { return 0.0; }, 2, 1),
               std::invalid_argument);
}

TEST(BisectRoot, FindsSqrtTwo) {
  const double root = bisect_root(
      [](double x) { return x * x - 2.0; }, 0.0, 2.0);
  EXPECT_NEAR(root, std::sqrt(2.0), 1e-9);
}

TEST(BisectRoot, ExactEndpointRoot) {
  EXPECT_DOUBLE_EQ(bisect_root([](double x) { return x; }, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(bisect_root([](double x) { return x - 1.0; }, 0.0, 1.0),
                   1.0);
}

TEST(BisectRoot, RejectsBadToleranceAndBracket) {
  const auto f = [](double x) { return x; };
  EXPECT_THROW(bisect_root(f, -1.0, 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(bisect_root(f, -1.0, 1.0, -1e-12), std::invalid_argument);
  EXPECT_THROW(
      bisect_root(f, -1.0, 1.0, std::numeric_limits<double>::quiet_NaN()),
      std::invalid_argument);
  EXPECT_THROW(
      bisect_root(f, -std::numeric_limits<double>::infinity(), 1.0),
      std::invalid_argument);
  EXPECT_THROW(
      bisect_root(f, -1.0, std::numeric_limits<double>::infinity()),
      std::invalid_argument);
}

TEST(BisectRoot, TerminatesWhenTolBelowBracketUlp) {
  // Regression: on a large-magnitude bracket the midpoint eventually
  // rounds back onto an endpoint; bisection must return the resolved
  // root instead of looping on `hi - lo > tol` forever.
  const double root = bisect_root(
      [](double x) { return x - (1e12 + 0.5); }, 1e12, 1e12 + 1.0,
      1e-10);
  EXPECT_NEAR(root, 1e12 + 0.5, 1e-3);
}

TEST(BisectRoot, RejectsNoSignChange) {
  EXPECT_THROW(
      bisect_root([](double x) { return x * x + 1.0; }, -1.0, 1.0),
      std::invalid_argument);
}

}  // namespace
}  // namespace adacheck::util
