#include "model/speed.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace adacheck::model {
namespace {

TEST(SpeedLevel, EnergyAndTime) {
  SpeedLevel lvl{2.0, 3.0};
  EXPECT_DOUBLE_EQ(lvl.energy(100.0), 900.0);  // V^2 * cycles
  EXPECT_DOUBLE_EQ(lvl.time(100.0), 50.0);     // cycles / f
}

TEST(VoltageLaw, SquareRootScaling) {
  VoltageLaw law;  // kappa = 4.0 default
  EXPECT_DOUBLE_EQ(law.voltage_for(1.0), 2.0);
  EXPECT_NEAR(law.voltage_for(2.0), 2.0 * std::sqrt(2.0), 1e-12);
  // Energy per cycle doubles when frequency doubles (V^2 ~ f).
  const double e1 = std::pow(law.voltage_for(1.0), 2);
  const double e2 = std::pow(law.voltage_for(2.0), 2);
  EXPECT_NEAR(e2 / e1, 2.0, 1e-12);
}

TEST(VoltageLaw, RejectsBadInput) {
  VoltageLaw law;
  EXPECT_THROW(law.voltage_for(0.0), std::invalid_argument);
  law.kappa = -1.0;
  EXPECT_THROW(law.voltage_for(1.0), std::invalid_argument);
}

TEST(DvsProcessor, TwoSpeedFactoryNormalized) {
  const auto proc = DvsProcessor::two_speed(2.0);
  ASSERT_EQ(proc.num_levels(), 2u);
  EXPECT_DOUBLE_EQ(proc.slowest().frequency, 1.0);
  EXPECT_DOUBLE_EQ(proc.fastest().frequency, 2.0);
  EXPECT_LT(proc.slowest().voltage, proc.fastest().voltage);
}

TEST(DvsProcessor, SortsLevels) {
  DvsProcessor proc({{3.0, 3.0}, {1.0, 1.0}, {2.0, 2.0}});
  EXPECT_DOUBLE_EQ(proc.level(0).frequency, 1.0);
  EXPECT_DOUBLE_EQ(proc.level(1).frequency, 2.0);
  EXPECT_DOUBLE_EQ(proc.level(2).frequency, 3.0);
}

TEST(DvsProcessor, AtLeastPicksSlowestSufficient) {
  DvsProcessor proc({{1.0, 1.0}, {2.0, 2.0}, {4.0, 3.0}});
  EXPECT_DOUBLE_EQ(proc.at_least(1.5).frequency, 2.0);
  EXPECT_DOUBLE_EQ(proc.at_least(2.0).frequency, 2.0);
  EXPECT_DOUBLE_EQ(proc.at_least(9.0).frequency, 4.0);  // saturates
  EXPECT_DOUBLE_EQ(proc.at_least(0.1).frequency, 1.0);
}

TEST(DvsProcessor, RejectsDegenerateConfigs) {
  EXPECT_THROW(DvsProcessor({}), std::invalid_argument);
  EXPECT_THROW(DvsProcessor({{1.0, 1.0}, {1.0, 2.0}}),
               std::invalid_argument);  // duplicate frequency
  EXPECT_THROW(DvsProcessor({{0.0, 1.0}}), std::invalid_argument);
  EXPECT_THROW(DvsProcessor({{1.0, -1.0}}), std::invalid_argument);
  EXPECT_THROW(DvsProcessor::two_speed(1.0), std::invalid_argument);
}

TEST(DvsProcessor, LevelBoundsChecked) {
  const auto proc = DvsProcessor::two_speed(2.0);
  EXPECT_THROW(proc.level(2), std::out_of_range);
}

}  // namespace
}  // namespace adacheck::model
