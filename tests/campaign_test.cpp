// campaign/spec.hpp + campaign/runner.hpp: the adacheck-campaign-v1
// schema, cell fingerprints, the content-addressed result cache, and
// the runner.  The load-bearing properties: a fingerprint depends on
// every result-affecting knob and nothing else, a warm rerun replays
// byte-identical streams with zero simulation runs, and flipping one
// cell's seed re-executes exactly that cell.
#include "campaign/runner.hpp"
#include "campaign/spec.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "scenario/spec.hpp"
#include "util/version.hpp"

namespace adacheck::campaign {
namespace {

namespace fs = std::filesystem;
using scenario::ScenarioError;

const char* kMiniScenario = R"({
  "schema": "adacheck-scenario-v1",
  "name": "mini",
  "config": {"runs": 64, "seed": 5},
  "output": "mini_sweep.json",
  "experiments": [{
    "id": "mini",
    "costs": {"store": 2, "compare": 20, "rollback": 0},
    "fault_tolerance": 5,
    "schemes": ["Poisson"],
    "rows": [{"utilization": 0.8, "lambda": 1.4e-3}]
  }]
})";

/// Fresh per-test scratch directory holding mini.json and the cache.
class CampaignTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::path(::testing::TempDir()) /
           (std::string("adacheck_campaign_") + info->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    write_file("mini.json", kMiniScenario);
  }
  void TearDown() override { fs::remove_all(dir_); }

  void write_file(const std::string& name, const std::string& text) {
    std::ofstream out(dir_ / name, std::ios::binary);
    out << text;
  }

  CampaignSpec mini_campaign(std::vector<std::uint64_t> seeds = {1, 2}) {
    CampaignSpec spec;
    spec.name = "c";
    spec.title = "c";
    spec.cache_dir = (dir_ / "cache").string();
    spec.base_dir = dir_.string();
    MatrixEntry entry;
    entry.scenario = "mini.json";
    entry.seeds = std::move(seeds);
    spec.matrix.push_back(entry);
    return spec;
  }

  fs::path dir_;
};

// --- schema --------------------------------------------------------------

TEST(CampaignSchema, ParsesDefaultsAndOverrides) {
  const auto spec = parse_campaign_text(R"({
    "schema": "adacheck-campaign-v1",
    "name": "study",
    "matrix": [
      {"scenario": "smoke.json", "seeds": [1, 2],
       "environments": ["bursty-orbit"], "runs": 500,
       "budget": {"target_p_halfwidth": 0.01}}
    ]
  })");
  EXPECT_EQ(spec.name, "study");
  EXPECT_EQ(spec.title, "study");            // defaults to name
  EXPECT_EQ(spec.cache_dir, "study_cache");  // defaults to <name>_cache
  ASSERT_EQ(spec.matrix.size(), 1u);
  const auto& entry = spec.matrix[0];
  EXPECT_EQ(entry.scenario, "smoke.json");
  EXPECT_EQ(entry.seeds, (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(entry.environments, (std::vector<std::string>{"bursty-orbit"}));
  EXPECT_EQ(entry.runs, 500);
  EXPECT_DOUBLE_EQ(entry.budget.target_p_halfwidth, 0.01);
}

TEST(CampaignSchema, UnknownKeySuggestsTheClosest) {
  try {
    parse_campaign_text(R"({"schema": "adacheck-campaign-v1",
                            "name": "c", "matrx": []})");
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    EXPECT_NE(std::string(e.what()).find("did you mean \"matrix\"?"),
              std::string::npos)
        << e.what();
  }
}

TEST(CampaignSchema, EntryKeyTypoIsPathQualified) {
  try {
    parse_campaign_text(R"({"schema": "adacheck-campaign-v1", "name": "c",
                            "matrix": [{"sceanrio": "x.json"}]})");
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    EXPECT_EQ(e.path(), "matrix[0]");
    EXPECT_NE(std::string(e.what()).find("did you mean \"scenario\"?"),
              std::string::npos)
        << e.what();
  }
}

TEST(CampaignSchema, UnknownEnvironmentSuggests) {
  try {
    parse_campaign_text(R"({"schema": "adacheck-campaign-v1", "name": "c",
      "matrix": [{"scenario": "x.json",
                  "environments": ["bursty-orbitt"]}]})");
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    EXPECT_NE(std::string(e.what()).find("did you mean \"bursty-orbit\"?"),
              std::string::npos)
        << e.what();
  }
}

TEST(CampaignSchema, RejectsDuplicateAndNegativeSeeds) {
  EXPECT_THROW(parse_campaign_text(
                   R"({"schema": "adacheck-campaign-v1", "name": "c",
                       "matrix": [{"scenario": "x", "seeds": [1, 1]}]})"),
               ScenarioError);
  EXPECT_THROW(parse_campaign_text(
                   R"({"schema": "adacheck-campaign-v1", "name": "c",
                       "matrix": [{"scenario": "x", "seeds": [-1]}]})"),
               ScenarioError);
}

TEST(CampaignSchema, IsCampaignDocumentDispatches) {
  EXPECT_TRUE(is_campaign_document(util::json::parse(
      R"({"schema": "adacheck-campaign-v1", "name": "c", "matrix": []})")));
  EXPECT_FALSE(is_campaign_document(
      util::json::parse(R"({"schema": "adacheck-scenario-v1"})")));
  EXPECT_FALSE(is_campaign_document(util::json::parse("[1]")));
}

// --- fingerprints --------------------------------------------------------

TEST(CampaignFingerprint, StableUnderDocumentKeyReordering) {
  const auto a = scenario::parse_scenario_text(kMiniScenario);
  // The same scenario with every object's keys in a different order.
  const auto b = scenario::parse_scenario_text(R"({
    "experiments": [{
      "rows": [{"lambda": 1.4e-3, "utilization": 0.8}],
      "schemes": ["Poisson"],
      "fault_tolerance": 5,
      "costs": {"rollback": 0, "compare": 20, "store": 2},
      "id": "mini"
    }],
    "output": "mini_sweep.json",
    "config": {"seed": 5, "runs": 64},
    "name": "mini",
    "schema": "adacheck-scenario-v1"
  })");
  EXPECT_EQ(cell_fingerprint_document(a), cell_fingerprint_document(b));
  EXPECT_EQ(cell_fingerprint(a), cell_fingerprint(b));
}

TEST(CampaignFingerprint, SensitiveToEveryResultAffectingKnob) {
  const auto base = scenario::parse_scenario_text(kMiniScenario);
  const std::string fp = cell_fingerprint(base);

  auto seed = base;
  seed.config.seed = 6;
  EXPECT_NE(cell_fingerprint(seed), fp);

  auto runs = base;
  runs.config.runs = 65;
  EXPECT_NE(cell_fingerprint(runs), fp);

  auto validate = base;
  validate.config.validate = true;
  EXPECT_NE(cell_fingerprint(validate), fp);

  auto environment = base;
  environment.experiments[0].environment = "bursty-orbit";
  EXPECT_NE(cell_fingerprint(environment), fp);

  auto budget = base;
  budget.budget.target_p_halfwidth = 0.01;
  EXPECT_NE(cell_fingerprint(budget), fp);

  auto metrics = base;
  metrics.metrics = {"tails"};
  EXPECT_NE(cell_fingerprint(metrics), fp);

  auto row = base;
  row.experiments[0].rows[0].utilization = 0.76;
  EXPECT_NE(cell_fingerprint(row), fp);
}

TEST(CampaignFingerprint, ThreadsAreNotPartOfTheIdentity) {
  const auto base = scenario::parse_scenario_text(kMiniScenario);
  auto threaded = base;
  threaded.config.threads = 7;
  EXPECT_EQ(cell_fingerprint(threaded), cell_fingerprint(base));
}

TEST(CampaignFingerprint, CarriesTheCodeVersion) {
  const auto base = scenario::parse_scenario_text(kMiniScenario);
  const std::string doc = cell_fingerprint_document(base);
  EXPECT_NE(doc.find("\"code_version\":\"" + util::version_string() + "\""),
            std::string::npos)
      << doc;
  // The document is already canonical: re-canonicalizing is a no-op.
  EXPECT_EQ(util::canonical_json(util::json::parse(doc)), doc);
}

// --- planning ------------------------------------------------------------

TEST_F(CampaignTest, PlanExpandsSeedsByEnvironments) {
  auto spec = mini_campaign({1, 2});
  spec.matrix[0].environments = {"poisson", "bursty-orbit"};
  const auto plan = plan_campaign(spec);
  ASSERT_EQ(plan.cells.size(), 4u);  // 2 environments x 2 seeds
  EXPECT_EQ(plan.cells[0].environment, "poisson");
  EXPECT_EQ(plan.cells[0].seed, 1u);
  EXPECT_EQ(plan.cells[1].seed, 2u);
  EXPECT_EQ(plan.cells[2].environment, "bursty-orbit");
  EXPECT_EQ(plan.cells[0].sweep_cells, 1u);
  // Every cell's identity is distinct.
  for (std::size_t i = 0; i < plan.cells.size(); ++i) {
    for (std::size_t j = i + 1; j < plan.cells.size(); ++j) {
      EXPECT_NE(plan.cells[i].fingerprint, plan.cells[j].fingerprint);
    }
  }
}

TEST_F(CampaignTest, PlanAppliesRunsAndBudgetOverrides) {
  auto spec = mini_campaign({1});
  spec.matrix[0].runs = 128;
  spec.matrix[0].budget.target_p_halfwidth = 0.05;
  const auto plan = plan_campaign(spec);
  ASSERT_EQ(plan.cells.size(), 1u);
  EXPECT_EQ(plan.cells[0].resolved.config.runs, 128);
  EXPECT_DOUBLE_EQ(plan.cells[0].resolved.budget.target_p_halfwidth, 0.05);
}

TEST_F(CampaignTest, MissingScenarioRefNamesThePath) {
  auto spec = mini_campaign({1});
  spec.matrix[0].scenario = "nope.json";
  try {
    plan_campaign(spec);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("nope.json"), std::string::npos);
  }
}

// --- the cache -----------------------------------------------------------

TEST_F(CampaignTest, WarmRerunIsFullyCachedAndByteIdentical) {
  const auto spec = mini_campaign();

  CampaignOptions options;
  options.threads = 1;
  std::ostringstream first_stream;
  options.jsonl = &first_stream;
  const auto first = run_campaign(spec, options);
  ASSERT_EQ(first.outcomes.size(), 2u);
  for (const auto& outcome : first.outcomes) {
    EXPECT_EQ(outcome.status, CellStatus::kExecuted);
    EXPECT_GT(outcome.runs_executed, 0);
    EXPECT_EQ(outcome.result_hash.size(), 32u);
  }

  // Second run at a DIFFERENT thread count: everything cached, zero
  // simulation runs, byte-identical stream.
  options.threads = 2;
  std::ostringstream second_stream;
  options.jsonl = &second_stream;
  const auto second = run_campaign(spec, options);
  for (std::size_t i = 0; i < second.outcomes.size(); ++i) {
    EXPECT_EQ(second.outcomes[i].status, CellStatus::kCached);
    EXPECT_EQ(second.outcomes[i].runs_executed, 0);
    EXPECT_EQ(second.outcomes[i].result_hash, first.outcomes[i].result_hash);
  }
  EXPECT_EQ(first_stream.str(), second_stream.str());
  EXPECT_FALSE(first_stream.str().empty());

  // The deterministic report section is identical too.
  CampaignReportOptions report;
  report.include_execution = false;
  EXPECT_EQ(campaign_json(spec, first, report),
            campaign_json(spec, second, report));
}

TEST_F(CampaignTest, SeedFlipReexecutesExactlyThatCell) {
  CampaignOptions options;
  options.threads = 1;
  run_campaign(mini_campaign({1, 2}), options);

  const auto flipped = run_campaign(mini_campaign({1, 3}), options);
  ASSERT_EQ(flipped.outcomes.size(), 2u);
  EXPECT_EQ(flipped.outcomes[0].status, CellStatus::kCached);    // seed 1
  EXPECT_EQ(flipped.outcomes[1].status, CellStatus::kExecuted);  // seed 3
}

TEST_F(CampaignTest, FreshIgnoresTheCache) {
  CampaignOptions options;
  options.threads = 1;
  run_campaign(mini_campaign(), options);

  options.resume = false;
  const auto fresh = run_campaign(mini_campaign(), options);
  for (const auto& outcome : fresh.outcomes) {
    EXPECT_EQ(outcome.status, CellStatus::kExecuted);
  }
}

TEST_F(CampaignTest, CorruptedPayloadIsAMissNotAnError) {
  const auto spec = mini_campaign({1});
  CampaignOptions options;
  options.threads = 1;
  const auto first = run_campaign(spec, options);
  ASSERT_EQ(first.outcomes[0].status, CellStatus::kExecuted);

  // Flip the cached payload; the meta hash no longer matches.
  const auto plan = plan_campaign(spec);
  const fs::path payload =
      fs::path(spec.cache_dir) / (plan.cells[0].fingerprint + ".jsonl");
  ASSERT_TRUE(fs::exists(payload));
  std::ofstream(payload, std::ios::binary) << "{\"corrupt\":true}\n";

  const auto second = run_campaign(spec, options);
  EXPECT_EQ(second.outcomes[0].status, CellStatus::kExecuted);
  EXPECT_EQ(second.outcomes[0].result_hash, first.outcomes[0].result_hash);
  EXPECT_TRUE(cache_probe(spec.cache_dir, plan.cells[0].fingerprint));
}

TEST_F(CampaignTest, PayloadWithoutMetaIsAMiss) {
  const auto spec = mini_campaign({1});
  const auto plan = plan_campaign(spec);
  fs::create_directories(spec.cache_dir);
  std::ofstream(fs::path(spec.cache_dir) /
                    (plan.cells[0].fingerprint + ".jsonl"),
                std::ios::binary)
      << "orphan payload\n";
  EXPECT_FALSE(cache_probe(spec.cache_dir, plan.cells[0].fingerprint));
}

// --- failure handling ----------------------------------------------------

TEST_F(CampaignTest, FailFastSkipsTheRemainingCells) {
  CampaignOptions options;
  options.threads = 1;
  options.fail_fast = true;
  options.before_execute = [](const CampaignCell&) {
    throw std::runtime_error("injected failure");
  };
  const auto result = run_campaign(mini_campaign({1, 2}), options);
  ASSERT_EQ(result.outcomes.size(), 2u);
  EXPECT_EQ(result.outcomes[0].status, CellStatus::kFailed);
  EXPECT_NE(result.outcomes[0].error.find("injected failure"),
            std::string::npos);
  EXPECT_EQ(result.outcomes[1].status, CellStatus::kSkipped);
  EXPECT_TRUE(result.any_failed());
}

TEST_F(CampaignTest, WithoutFailFastEveryCellIsAttempted) {
  CampaignOptions options;
  options.threads = 1;
  options.before_execute = [](const CampaignCell&) {
    throw std::runtime_error("injected failure");
  };
  const auto result = run_campaign(mini_campaign({1, 2}), options);
  EXPECT_EQ(result.outcomes[0].status, CellStatus::kFailed);
  EXPECT_EQ(result.outcomes[1].status, CellStatus::kFailed);
}

TEST_F(CampaignTest, FailedCellDoesNotPoisonTheCache) {
  const auto spec = mini_campaign({1});
  CampaignOptions options;
  options.threads = 1;
  options.before_execute = [](const CampaignCell&) {
    throw std::runtime_error("injected failure");
  };
  const auto failed = run_campaign(spec, options);
  ASSERT_EQ(failed.outcomes[0].status, CellStatus::kFailed);

  // Next run (no injection) must execute — nothing was committed.
  const auto retry = run_campaign(spec, CampaignOptions{.threads = 1});
  EXPECT_EQ(retry.outcomes[0].status, CellStatus::kExecuted);
}

// --- report --------------------------------------------------------------

TEST_F(CampaignTest, ReportCarriesPlanExecutionAndVersion) {
  const auto spec = mini_campaign({1});
  const auto result = run_campaign(spec, CampaignOptions{.threads = 1});
  const std::string report = campaign_json(spec, result);
  EXPECT_NE(report.find("\"schema\": \"adacheck-campaign-report-v1\""),
            std::string::npos);
  EXPECT_NE(report.find("\"version\": \"" + util::version_string() + "\""),
            std::string::npos);
  EXPECT_NE(report.find("\"fingerprint\""), std::string::npos);
  EXPECT_NE(report.find("\"status\": \"executed\""), std::string::npos);

  CampaignReportOptions no_execution;
  no_execution.include_execution = false;
  const std::string stable = campaign_json(spec, result, no_execution);
  EXPECT_EQ(stable.find("\"execution\""), std::string::npos);
  EXPECT_EQ(stable.find("wall_seconds"), std::string::npos);
}

// --- shipped campaign documents ------------------------------------------

TEST(CampaignFiles, EveryShippedCampaignValidatesAndPlans) {
  const fs::path dir = ADACHECK_SCENARIO_DIR;
  ASSERT_TRUE(fs::is_directory(dir)) << dir;
  std::size_t count = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() != ".json") continue;
    if (entry.path().filename().string().rfind("campaign_", 0) != 0) {
      continue;
    }
    ++count;
    SCOPED_TRACE(entry.path().string());
    const auto spec = load_campaign_file(entry.path().string());
    EXPECT_FALSE(spec.output.empty())
        << "shipped campaigns should name their report file";
    const auto plan = plan_campaign(spec);
    EXPECT_FALSE(plan.cells.empty());
    for (const auto& cell : plan.cells) {
      EXPECT_EQ(cell.fingerprint.size(), 32u);
      EXPECT_GT(cell.sweep_cells, 0u);
    }
  }
  EXPECT_GE(count, 2u);  // campaign_smoke, campaign_tables
}

// --- concurrent execution ------------------------------------------------

TEST_F(CampaignTest, ConcurrentMissesMatchSequentialByteForByte) {
  const auto spec = mini_campaign({1, 2, 3, 4});

  CampaignOptions sequential;
  sequential.cell_parallelism = 1;
  std::ostringstream seq_jsonl, seq_status;
  sequential.jsonl = &seq_jsonl;
  sequential.status = &seq_status;
  const auto seq = run_campaign(spec, sequential);

  CampaignOptions parallel;
  parallel.resume = false;  // force every cell to execute again
  parallel.cell_parallelism = 0;
  std::ostringstream par_jsonl, par_status;
  parallel.jsonl = &par_jsonl;
  parallel.status = &par_status;
  const auto par = run_campaign(spec, parallel);

  ASSERT_EQ(seq.outcomes.size(), 4u);
  for (std::size_t i = 0; i < seq.outcomes.size(); ++i) {
    EXPECT_EQ(par.outcomes[i].status, CellStatus::kExecuted);
    EXPECT_EQ(par.outcomes[i].result_hash, seq.outcomes[i].result_hash);
  }
  // Emission is plan-ordered regardless of completion order, so the
  // streams are byte-identical at any parallelism.
  EXPECT_EQ(par_jsonl.str(), seq_jsonl.str());
  EXPECT_EQ(par_status.str(), seq_status.str());
}

TEST_F(CampaignTest, DuplicateFingerprintsExecuteOnce) {
  // Same scenario, same seed, twice: identical fingerprints.  The
  // first occurrence executes, the duplicate replays its committed
  // result — they never race on the same cache files.
  auto spec = mini_campaign({9});
  spec.matrix.push_back(spec.matrix[0]);

  CampaignOptions options;
  std::ostringstream jsonl;
  options.jsonl = &jsonl;
  const auto result = run_campaign(spec, options);

  ASSERT_EQ(result.outcomes.size(), 2u);
  EXPECT_EQ(result.plan.cells[0].fingerprint,
            result.plan.cells[1].fingerprint);
  EXPECT_EQ(result.outcomes[0].status, CellStatus::kExecuted);
  EXPECT_EQ(result.outcomes[1].status, CellStatus::kCached);
  EXPECT_EQ(result.outcomes[0].result_hash, result.outcomes[1].result_hash);
}

// --- cache inspection (ls / gc) ------------------------------------------

TEST_F(CampaignTest, CacheLsReportsValidEntriesWithProvenance) {
  const auto spec = mini_campaign({1, 2});
  const auto result = run_campaign(spec, {});

  const auto entries = cache_ls(result.cache_dir);
  ASSERT_EQ(entries.size(), 2u);
  for (const auto& entry : entries) {
    EXPECT_TRUE(entry.valid) << entry.defect;
    EXPECT_EQ(entry.scenario, "mini");
    EXPECT_EQ(entry.sweep_cells, 1u);
    EXPECT_GT(entry.total_runs, 0);
    EXPECT_EQ(entry.code_version, util::version_string());
    EXPECT_GT(entry.bytes, 0u);
    EXPECT_GE(entry.age_seconds, 0.0);
  }
  EXPECT_TRUE(entries[0].seed == 1 || entries[0].seed == 2);
}

TEST_F(CampaignTest, CacheLsFlagsEveryDefectKind) {
  const auto spec = mini_campaign({1});
  const auto result = run_campaign(spec, {});
  const std::string fp = result.plan.cells[0].fingerprint;

  // Corrupt the committed payload; add an orphan payload and a
  // meta-only stub alongside.
  write_file("cache/" + fp + ".jsonl", "{\"tampered\": true}\n");
  write_file("cache/orphan.jsonl", "{}\n");
  write_file("cache/stub.meta.json", "{\"fingerprint\": \"stub\"}\n");

  const auto entries = cache_ls(result.cache_dir);
  ASSERT_EQ(entries.size(), 3u);  // sorted by fingerprint
  for (const auto& entry : entries) {
    EXPECT_FALSE(entry.valid);
    EXPECT_FALSE(entry.defect.empty());
  }
}

TEST_F(CampaignTest, CacheLsOfMissingDirectoryIsEmpty) {
  EXPECT_TRUE(cache_ls((dir_ / "no_such_cache").string()).empty());
}

TEST_F(CampaignTest, CacheGcPrunesCorruptKeepsValid) {
  const auto spec = mini_campaign({1, 2});
  const auto result = run_campaign(spec, {});
  const std::string fp = result.plan.cells[0].fingerprint;
  write_file("cache/" + fp + ".jsonl", "tampered\n");

  CacheGcOptions dry;
  dry.dry_run = true;
  const auto preview = cache_gc(result.cache_dir, dry);
  ASSERT_EQ(preview.removed.size(), 1u);
  EXPECT_EQ(preview.removed[0].fingerprint, fp);
  EXPECT_EQ(preview.kept, 1u);
  // Dry run touched nothing: the defective entry is still there.
  EXPECT_EQ(cache_ls(result.cache_dir).size(), 2u);

  const auto gc = cache_gc(result.cache_dir, {});
  ASSERT_EQ(gc.removed.size(), 1u);
  EXPECT_GT(gc.bytes_freed, 0u);
  const auto left = cache_ls(result.cache_dir);
  ASSERT_EQ(left.size(), 1u);
  EXPECT_TRUE(left[0].valid);

  // The pruned cell is an ordinary miss on the next resume run.
  CampaignOptions options;
  const auto rerun = run_campaign(spec, options);
  EXPECT_EQ(rerun.outcomes[0].status, CellStatus::kExecuted);
  EXPECT_EQ(rerun.outcomes[1].status, CellStatus::kCached);
}

TEST_F(CampaignTest, CacheGcAgePrunesOldValidEntries) {
  const auto spec = mini_campaign({1});
  const auto result = run_campaign(spec, {});

  CacheGcOptions young;
  young.older_than_seconds = 3600.0;  // entries are seconds old
  EXPECT_TRUE(cache_gc(result.cache_dir, young).removed.empty());

  // Backdate the entry's files: age is measured from mtime.
  const auto past =
      fs::file_time_type::clock::now() - std::chrono::hours(48);
  for (const auto& file : fs::directory_iterator(result.cache_dir)) {
    fs::last_write_time(file.path(), past);
  }
  CacheGcOptions old_enough;
  old_enough.older_than_seconds = 3600.0;
  const auto gc = cache_gc(result.cache_dir, old_enough);
  ASSERT_EQ(gc.removed.size(), 1u);
  EXPECT_TRUE(gc.removed[0].valid);  // pruned by age, not by defect
  EXPECT_TRUE(cache_ls(result.cache_dir).empty());
}

TEST(CampaignDuration, ParsesUnitsAndRejectsJunk) {
  EXPECT_DOUBLE_EQ(parse_duration_seconds("30"), 30.0);
  EXPECT_DOUBLE_EQ(parse_duration_seconds("45s"), 45.0);
  EXPECT_DOUBLE_EQ(parse_duration_seconds("30m"), 1800.0);
  EXPECT_DOUBLE_EQ(parse_duration_seconds("12h"), 43200.0);
  EXPECT_DOUBLE_EQ(parse_duration_seconds("7d"), 604800.0);
  EXPECT_DOUBLE_EQ(parse_duration_seconds("2w"), 1209600.0);
  EXPECT_DOUBLE_EQ(parse_duration_seconds("1.5h"), 5400.0);
  EXPECT_THROW(parse_duration_seconds(""), std::invalid_argument);
  EXPECT_THROW(parse_duration_seconds("abc"), std::invalid_argument);
  EXPECT_THROW(parse_duration_seconds("10x"), std::invalid_argument);
  EXPECT_THROW(parse_duration_seconds("-5m"), std::invalid_argument);
  EXPECT_THROW(parse_duration_seconds("m"), std::invalid_argument);
}

}  // namespace
}  // namespace adacheck::campaign
