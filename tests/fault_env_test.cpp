// The fault-environment subsystem: spec validation and registry,
// renewal / Markov-modulated / common-cause fault sources, the
// bit-for-bit compatibility of the exponential environment with the
// pre-environment simulator, cross-thread determinism under bursty
// environments, and the accuracy of the effective-rate approximation
// the analytic layer uses for non-Poisson environments.
#include "model/fault_env.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "model/fault.hpp"
#include "policy/factory.hpp"
#include "sim/monte_carlo.hpp"
#include "tests/test_helpers.hpp"
#include "util/rng.hpp"

namespace adacheck::model {
namespace {

TEST(FaultEnvironment, DefaultIsThePlainPoissonProcess) {
  const FaultEnvironment env;
  EXPECT_TRUE(env.plain_exponential());
  EXPECT_TRUE(env.valid());
  EXPECT_DOUBLE_EQ(env.rate_multiplier(), 1.0);
}

TEST(FaultEnvironment, ValidationRejectsBadSpecs) {
  EXPECT_FALSE(FaultEnvironment::weibull(0.0).valid());
  EXPECT_FALSE(FaultEnvironment::weibull(-1.0).valid());
  EXPECT_FALSE(FaultEnvironment::log_normal(0.0).valid());
  EXPECT_FALSE(
      FaultEnvironment::exponential().with_common_cause(1.5).valid());
  EXPECT_FALSE(
      FaultEnvironment::exponential().with_common_cause(-0.1).valid());
  // Bursts require positive *finite* dwells and a multiplier >= 1
  // (an infinite dwell would make rate_multiplier() NaN and poison
  // every planning decision downstream).
  EXPECT_FALSE(FaultEnvironment::bursty(0.5, 100.0, 10.0).valid());
  EXPECT_FALSE(FaultEnvironment::bursty(10.0, 0.0, 10.0).valid());
  EXPECT_FALSE(FaultEnvironment::bursty(10.0, 100.0, 0.0).valid());
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(FaultEnvironment::bursty(10.0, inf, 10.0).valid());
  EXPECT_FALSE(FaultEnvironment::bursty(10.0, 100.0, inf).valid());
  EXPECT_FALSE(FaultEnvironment::bursty(inf, 100.0, 10.0).valid());
  // Burst modulation composes only with exponential arrivals.
  FaultEnvironment mixed = FaultEnvironment::bursty(10.0, 100.0, 10.0);
  mixed.arrival = ArrivalKind::kWeibull;
  mixed.shape = 2.0;
  EXPECT_FALSE(mixed.valid());
  EXPECT_THROW(mixed.validate(), std::invalid_argument);
}

TEST(FaultEnvironment, RateMultiplierAveragesTheBurstStates) {
  const auto env = FaultEnvironment::bursty(12.0, 2'300.0, 250.0);
  // duty = 250 / 2550; multiplier = 1 + duty * 11.
  const double duty = 250.0 / 2'550.0;
  EXPECT_NEAR(env.rate_multiplier(), 1.0 + duty * 11.0, 1e-12);
  EXPECT_DOUBLE_EQ(FaultEnvironment::weibull(2.0).rate_multiplier(), 1.0);
}

TEST(FaultEnvironment, RegistryKnowsItsNames) {
  const auto names = known_environments();
  ASSERT_GE(names.size(), 9u);
  EXPECT_EQ(names.front(), "poisson");
  for (const auto& name : names) {
    EXPECT_TRUE(is_known_environment(name)) << name;
    EXPECT_NO_THROW(find_environment(name).validate()) << name;
  }
  EXPECT_FALSE(is_known_environment("made-up"));
  EXPECT_THROW(find_environment("made-up"), std::invalid_argument);
  EXPECT_TRUE(find_environment("poisson").plain_exponential());
  EXPECT_TRUE(find_environment("bursty-orbit").burst.enabled);
  EXPECT_GT(find_environment("common-cause").common_cause_fraction, 0.0);
}

TEST(FaultSourceFactory, PlainExponentialConsumesTheExactPoissonStream) {
  // The factory's default-environment source must be bit-identical to
  // the pre-environment PoissonFaultSource: same RNG consumption, same
  // arrival times, same processor assignments.
  const FaultModel fault_model{2.0e-3, false};
  util::Xoshiro256 rng_a(31337), rng_b(31337);
  PoissonFaultSource reference(fault_model, rng_a);
  const auto source =
      make_fault_source(fault_model, FaultEnvironment::exponential(), rng_b);
  double cursor = 0.0;
  for (int i = 0; i < 1'000; ++i) {
    int proc_a = -2, proc_b = -2;
    const double t_a = reference.next_fault_after(cursor, proc_a);
    const double t_b = source->next_fault_after(cursor, proc_b);
    ASSERT_EQ(t_a, t_b) << i;
    ASSERT_EQ(proc_a, proc_b) << i;
    cursor = std::nextafter(t_a, std::numeric_limits<double>::infinity());
  }
}

// Exact statistics captured from the pre-environment simulator (commit
// 0174df2, RelWithDebInfo): the exponential environment must reproduce
// them bit-for-bit — same seeds, same CellStats — forever.
TEST(SeedParity, ExponentialEnvironmentReproducesSeedStatisticsBitForBit) {
  sim::SimSetup setup{model::task_from_utilization(0.78, 1.0, 10'000.0, 5),
                      model::CheckpointCosts::paper_scp_flavor(),
                      model::DvsProcessor::two_speed(2.0),
                      model::FaultModel{1.4e-3, false}};
  sim::MonteCarloConfig config;
  config.runs = 500;
  config.seed = 77;
  const auto stats =
      sim::run_cell(setup, policy::make_policy_factory("A_D_S"), config);
  EXPECT_EQ(stats.completion.successes(), 500u);
  EXPECT_EQ(stats.energy_success.mean(), 0x1.b7b3398967557p+15);
  EXPECT_EQ(stats.finish_time_success.mean(), 0x1.04a922d241d72p+13);
  EXPECT_EQ(stats.faults.mean(), 0x1.5395810624dd3p+3);
  EXPECT_EQ(stats.rollbacks.mean(), 0x1.2de353f7ced91p+3);
}

TEST(SeedParity, TmrStatisticsAlsoBitForBit) {
  sim::SimSetup setup{model::task_from_utilization(0.84, 1.0, 10'000.0, 5),
                      model::CheckpointCosts::paper_ccp_flavor(),
                      model::DvsProcessor::two_speed(2.0),
                      model::FaultModel{2.0e-3, false, 3}};
  sim::MonteCarloConfig config;
  config.runs = 400;
  config.seed = 0xBEEF;
  const auto stats =
      sim::run_cell(setup, policy::make_policy_factory("A_D_C"), config);
  EXPECT_EQ(stats.completion.successes(), 400u);
  EXPECT_EQ(stats.energy_success.mean(), 0x1.b59f55f9b26b1p+15);
  EXPECT_EQ(stats.finish_time_success.mean(), 0x1.d4376e89733c4p+12);
  EXPECT_EQ(stats.faults.mean(), 0x1.a3d70a3d70a3fp+3);
  EXPECT_EQ(stats.rollbacks.mean(), 0x1.67ae147ae147bp-1);
}

/// Counts arrivals of `source` on [0, horizon).
std::size_t count_arrivals(FaultSource& source, double horizon) {
  std::size_t count = 0;
  double cursor = 0.0;
  int proc = 0;
  for (;;) {
    const double t = source.next_fault_after(cursor, proc);
    if (!(t < horizon)) break;
    ++count;
    cursor = std::nextafter(t, std::numeric_limits<double>::infinity());
  }
  return count;
}

TEST(RenewalFaultSource, LongRunRateMatchesLambdaForEveryKind) {
  // Renewal gaps are scaled to mean 1/lambda, so by the elementary
  // renewal theorem the arrival count over a long horizon approaches
  // lambda * horizon for every distribution family.  This is exactly
  // the effective-rate approximation the analytic layer documents for
  // non-exponential environments (rate_multiplier() == 1).
  const FaultModel fault_model{1.0e-3, false};
  const double horizon = 4.0e6;  // ~4000 arrivals
  const struct {
    FaultEnvironment env;
    double tolerance;  // relative; scales with the gap's variance
  } cases[] = {
      {FaultEnvironment::weibull(0.7), 0.10},
      {FaultEnvironment::weibull(2.0), 0.05},
      {FaultEnvironment::log_normal(1.5), 0.15},
      {FaultEnvironment::gamma_arrivals(4.0), 0.05},
  };
  for (const auto& c : cases) {
    util::Xoshiro256 rng(4242);
    RenewalFaultSource source(fault_model, c.env, rng);
    const double count = static_cast<double>(count_arrivals(source, horizon));
    const double expected = fault_model.rate * horizon;
    EXPECT_NEAR(count / expected, 1.0, c.tolerance)
        << to_string(c.env.arrival);
  }
}

TEST(RenewalFaultSource, ZeroRateNeverFires) {
  for (const auto& env :
       {FaultEnvironment::weibull(2.0), FaultEnvironment::log_normal(1.0),
        FaultEnvironment::gamma_arrivals(3.0)}) {
    util::Xoshiro256 rng(9);
    RenewalFaultSource source(FaultModel{0.0, false}, env, rng);
    int proc = 0;
    EXPECT_TRUE(std::isinf(source.next_fault_after(0.0, proc)))
        << to_string(env.arrival);
  }
}

TEST(MmppFaultSource, LongRunRateMatchesTheEffectiveRate) {
  const FaultModel fault_model{2.0e-3, false};
  const auto env = FaultEnvironment::bursty(12.0, 2'300.0, 250.0);
  util::Xoshiro256 rng(777);
  MmppFaultSource source(fault_model, env, rng);
  const double horizon = 4.0e6;
  const double count = static_cast<double>(count_arrivals(source, horizon));
  const double expected = fault_model.rate * env.rate_multiplier() * horizon;
  // Burst clumping inflates the count variance well past Poisson;
  // 8% at ~16600 expected arrivals is ~10 sigma for Poisson but a
  // comfortable margin for this MMPP.
  EXPECT_NEAR(count / expected, 1.0, 0.08);
  // And it must be visibly MORE than the quiet rate alone would give.
  EXPECT_GT(count, fault_model.rate * horizon * 1.5);
}

TEST(MmppFaultSource, ZeroRateNeverFires) {
  util::Xoshiro256 rng(5);
  MmppFaultSource source(FaultModel{0.0, false},
                         FaultEnvironment::bursty(12.0, 100.0, 10.0), rng);
  int proc = 0;
  EXPECT_TRUE(std::isinf(source.next_fault_after(0.0, proc)));
}

TEST(CommonCause, FullFractionStrikesAllReplicasEveryTime) {
  const FaultModel fault_model{1.0e-2, false, 3};
  const auto env = FaultEnvironment::exponential().with_common_cause(1.0);
  util::Xoshiro256 rng(11);
  RenewalFaultSource source(fault_model, env, rng);
  double cursor = 0.0;
  for (int i = 0; i < 200; ++i) {
    int proc = 0;
    const double t = source.next_fault_after(cursor, proc);
    ASSERT_EQ(proc, kAllReplicas) << i;
    cursor = std::nextafter(t, std::numeric_limits<double>::infinity());
  }
}

TEST(CommonCause, FractionSplitsStrikes) {
  const FaultModel fault_model{1.0e-2, false, 2};
  const auto env = FaultEnvironment::exponential().with_common_cause(0.5);
  util::Xoshiro256 rng(23);
  RenewalFaultSource source(fault_model, env, rng);
  int all = 0, single = 0;
  double cursor = 0.0;
  for (int i = 0; i < 2'000; ++i) {
    int proc = 0;
    const double t = source.next_fault_after(cursor, proc);
    (proc == kAllReplicas ? all : single)++;
    cursor = std::nextafter(t, std::numeric_limits<double>::infinity());
  }
  EXPECT_NEAR(all, 1'000, 100);
  EXPECT_NEAR(single, 1'000, 100);
}

TEST(CommonCause, DefeatsMajorityVotingInTheEngine) {
  // N = 3 with every strike hitting all replicas: no comparison can
  // ever find a healthy majority, so corrections must be zero and
  // every detection must roll back.  The same scenario without common
  // cause repairs most faults by voting.
  auto setup = testutil::basic_setup(2'000.0, 100'000.0, 50, 2.0e-3);
  setup.fault_model.processors = 3;
  const sim::Decision plan =
      testutil::inner_plan(setup, 500.0, 100.0, sim::InnerKind::kCcp);
  sim::MonteCarloConfig config;
  config.runs = 200;
  config.seed = 99;

  setup.environment = FaultEnvironment::exponential().with_common_cause(1.0);
  const auto correlated = sim::run_cell(
      setup,
      [plan] { return std::make_unique<testutil::ScriptedPolicy>(plan); },
      config);
  EXPECT_GT(correlated.faults.mean(), 0.0);
  EXPECT_DOUBLE_EQ(correlated.corrections.mean(), 0.0);
  EXPECT_GT(correlated.rollbacks.mean(), 0.0);

  setup.environment = FaultEnvironment::exponential();
  const auto independent = sim::run_cell(
      setup,
      [plan] { return std::make_unique<testutil::ScriptedPolicy>(plan); },
      config);
  EXPECT_GT(independent.corrections.mean(), 0.0);
}

TEST(NModularRedundancy, FiveReplicasVoteOutAMinority) {
  // N = 5: two distinct corrupted replicas are still a strict
  // minority, so a CCP comparison repairs them instead of rolling
  // back; a common-cause strike corrupts all five and must roll back.
  auto setup = testutil::basic_setup(400.0, 100'000.0, 50, 0.0);
  setup.fault_model.processors = 5;
  auto policy_plan =
      testutil::inner_plan(setup, 400.0, 100.0, sim::InnerKind::kCcp);

  {
    testutil::ScriptedPolicy policy(policy_plan);
    // Two different replicas struck in the first two sub-intervals.
    const FaultTrace trace({{50.0, 0}, {150.0, 1}});
    ReplayFaultSource source(trace);
    const auto result = sim::simulate(setup, policy, source, {});
    EXPECT_TRUE(result.completed());
    EXPECT_EQ(result.corrections, 2);
    EXPECT_EQ(result.rollbacks, 0);
  }
  {
    testutil::ScriptedPolicy policy(policy_plan);
    const FaultTrace trace({{50.0, kAllReplicas}});
    ReplayFaultSource source(trace);
    const auto result = sim::simulate(setup, policy, source, {});
    EXPECT_TRUE(result.completed());
    EXPECT_EQ(result.corrections, 0);
    EXPECT_GE(result.rollbacks, 1);
  }
}

TEST(NModularRedundancy, CommonCauseStrikesDetectAtTheFullMaskWidth) {
  // Regression: at N = 32 (the widest allowed group) the all-replicas
  // mask must cover every replica — (1u << 32) - 1 would be UB and
  // silently corrupt nothing.
  auto setup = testutil::basic_setup(400.0, 100'000.0, 50, 0.0);
  setup.fault_model.processors = 32;
  testutil::ScriptedPolicy policy(
      testutil::inner_plan(setup, 400.0, 100.0, sim::InnerKind::kCcp));
  const FaultTrace trace({{50.0, kAllReplicas}});
  ReplayFaultSource source(trace);
  const auto result = sim::simulate(setup, policy, source, {});
  EXPECT_TRUE(result.completed());
  EXPECT_EQ(result.faults, 1);
  EXPECT_EQ(result.corrections, 0);  // no healthy majority to vote with
  EXPECT_GE(result.detections, 1);   // the strike must NOT vanish
  EXPECT_GE(result.rollbacks, 1);
}

void expect_same_stats(const sim::CellStats& a, const sim::CellStats& b) {
  EXPECT_EQ(a.completion.trials(), b.completion.trials());
  EXPECT_EQ(a.completion.successes(), b.completion.successes());
  EXPECT_EQ(a.aborted_runs, b.aborted_runs);
  const std::pair<const util::RunningStats*, const util::RunningStats*>
      tracked[] = {
          {&a.energy_success, &b.energy_success},
          {&a.energy_all, &b.energy_all},
          {&a.finish_time_success, &b.finish_time_success},
          {&a.faults, &b.faults},
          {&a.rollbacks, &b.rollbacks},
          {&a.corrections, &b.corrections},
          {&a.high_speed_cycles, &b.high_speed_cycles},
      };
  for (const auto& [lhs, rhs] : tracked) {
    EXPECT_EQ(lhs->count(), rhs->count());
    if (lhs->count() == 0) continue;
    EXPECT_DOUBLE_EQ(lhs->mean(), rhs->mean());
    EXPECT_DOUBLE_EQ(lhs->variance(), rhs->variance());
    EXPECT_DOUBLE_EQ(lhs->min(), rhs->min());
    EXPECT_DOUBLE_EQ(lhs->max(), rhs->max());
  }
}

TEST(Determinism, BurstyEnvironmentBitIdenticalAcrossThreadCounts) {
  // The 256-run chunk grain and per-run seeding make every environment
  // — not just the paper's Poisson — bit-identical for threads=1 and
  // threads=4.
  auto setup = testutil::dvs_setup(7'800.0, 10'000.0, 5, 1.4e-3);
  setup.environment = find_environment("bursty-correlated");
  sim::MonteCarloConfig serial;
  serial.runs = 700;  // 3 chunks
  serial.seed = 0xB00B5;
  serial.threads = 1;
  sim::MonteCarloConfig parallel = serial;
  parallel.threads = 4;
  const auto a =
      sim::run_cell(setup, policy::make_policy_factory("A_D_S-est"), serial);
  const auto b =
      sim::run_cell(setup, policy::make_policy_factory("A_D_S-est"), parallel);
  expect_same_stats(a, b);
  EXPECT_GT(a.faults.mean(), 0.0);
}

TEST(EffectiveRate, ApproximationPredictsSimulatedFaultCounts) {
  // Cross-check of the analytic layer's effective-rate approximation
  // against full simulations: with an unconstrained deadline and a
  // fixed plan, the mean number of injected faults per run must track
  // lambda_eff * exposure.  The horizon (50,000 time units at f = 1,
  // ~100 expected faults) is deep in the asymptotic renewal regime.
  // Exposure exceeds the 50,000-cycle floor because a failed attempt
  // is detected only at the interval-end CSCP and re-executed whole;
  // under the same Poisson approximation attempts are geometric with
  // success probability exp(-lambda_eff * Itv), giving the
  // 1 / (1 - p) inflation below.  The stated tolerance of the whole
  // approximation chain — effective rate + geometric re-execution —
  // is 10% across renewal and bursty environments (measured: <= 4%).
  for (const char* name : {"weibull-aging", "lognormal-heavy",
                           "gamma-regular", "bursty-orbit"}) {
    auto setup = testutil::basic_setup(50'000.0, 1.0e9, 1'000'000, 2.0e-3);
    setup.environment = find_environment(name);
    const double interval = 50.0;
    const sim::Decision plan = testutil::plain_plan(setup, interval);
    sim::MonteCarloConfig config;
    config.runs = 500;
    config.seed = 0xEFFEC7;
    const auto stats = sim::run_cell(
        setup,
        [plan] { return std::make_unique<testutil::ScriptedPolicy>(plan); },
        config);
    const double lambda_eff =
        setup.fault_model.rate * setup.environment.rate_multiplier();
    const double exposure_floor = 50'000.0;  // computation time at f = 1
    const double attempt_fail = -std::expm1(-lambda_eff * interval);
    const double reexecution = 1.0 / (1.0 - attempt_fail);
    const double predicted = lambda_eff * exposure_floor * reexecution;
    EXPECT_NEAR(stats.faults.mean() / predicted, 1.0, 0.10) << name;
  }
}

TEST(EstimatorPolicy, RunsUnderEveryRegistryEnvironment) {
  // Smoke-level integration: every named environment composes with the
  // rate-tracking adaptive scheme and the full Monte-Carlo pipeline.
  for (const auto& name : known_environments()) {
    auto setup = testutil::dvs_setup(7'000.0, 10'000.0, 5, 1.0e-3);
    setup.environment = find_environment(name);
    sim::MonteCarloConfig config;
    config.runs = 50;
    config.seed = 0x5EED;
    const auto stats =
        sim::run_cell(setup, policy::make_policy_factory("A_D_S-est"), config);
    EXPECT_EQ(stats.completion.trials(), 50u) << name;
    EXPECT_EQ(stats.validation_failures, 0u) << name;
  }
}

}  // namespace
}  // namespace adacheck::model
