// util/canonical_json.hpp: the canonical serializer and the stable
// content hash behind campaign cache fingerprints.  The hash values
// pinned here are load-bearing: they guard every existing on-disk
// campaign cache, so a mismatch means the algorithm changed and every
// cache is silently invalid.
#include "util/canonical_json.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/json.hpp"

namespace adacheck::util {
namespace {

std::string canon(const std::string& text) {
  return canonical_json(json::parse(text));
}

// --- canonical form ------------------------------------------------------

TEST(CanonicalJson, SortsObjectKeysAndDropsWhitespace) {
  EXPECT_EQ(canon("{\"b\": 1, \"a\": 2}"), "{\"a\":2,\"b\":1}");
  EXPECT_EQ(canon("{ \"b\" : { \"d\" : 1 , \"c\" : 2 } , \"a\" : [ 1 , 2 ] }"),
            "{\"a\":[1,2],\"b\":{\"c\":2,\"d\":1}}");
}

TEST(CanonicalJson, KeyOrderNeverMatters) {
  EXPECT_EQ(canon("{\"seed\": 7, \"runs\": 100, \"validate\": false}"),
            canon("{\"validate\": false, \"runs\": 100, \"seed\": 7}"));
}

TEST(CanonicalJson, ArrayOrderIsSemanticAndPreserved) {
  EXPECT_NE(canon("[1, 2, 3]"), canon("[3, 2, 1]"));
  EXPECT_EQ(canon("[1, 2, 3]"), "[1,2,3]");
}

TEST(CanonicalJson, NumberSpellingNormalizes) {
  // 1e2, 100.0, and 100 are the same double -> one canonical spelling.
  EXPECT_EQ(canon("[1e2, 100.0, 100]"), "[100,100,100]");
  EXPECT_EQ(canon("0.0014"), canon("1.4e-3"));
}

TEST(CanonicalJson, ScalarsAndEscapes) {
  EXPECT_EQ(canon("null"), "null");
  EXPECT_EQ(canon("true"), "true");
  EXPECT_EQ(canon("false"), "false");
  EXPECT_EQ(canon("\"a\\n\\t\\\"b\\\\\""), "\"a\\n\\t\\\"b\\\\\"");
  EXPECT_EQ(canon("\"\\u0001\""), "\"\\u0001\"");
  EXPECT_EQ(canon("{}"), "{}");
  EXPECT_EQ(canon("[]"), "[]");
}

TEST(CanonicalJson, MixedDocument) {
  EXPECT_EQ(
      canon("{\"b\": 1e2, \"a\": [1.5, \"x\\n\"], "
            "\"c\": {\"z\": null, \"y\": true}}"),
      "{\"a\":[1.5,\"x\\n\"],\"b\":100,\"c\":{\"y\":true,\"z\":null}}");
}

TEST(CanonicalJson, RoundTripsThroughItself) {
  const std::string once = canon(
      "{\"experiments\": [{\"id\": \"t\", \"rows\": [{\"utilization\": "
      "0.76, \"lambda\": 1.4e-3}]}], \"seed\": 1592614637}");
  EXPECT_EQ(canon(once), once);
}

// --- content hash --------------------------------------------------------

TEST(ContentHash128, KnownAnswers) {
  // Pinned values: see file comment.  Do not update these without
  // understanding that every existing campaign cache becomes stale.
  EXPECT_EQ(content_hash128("").hex(), "c3817c016ba4ff304063e00bcd986211");
  EXPECT_EQ(content_hash128("abc").hex(),
            "ae8f9d04ad1dc10de75a874630e4c864");
  EXPECT_EQ(content_hash128("adacheck").hex(),
            "b47cf94d8689046bb99dc64d173e5897");
}

TEST(ContentHash128, HexIs32LowercaseChars) {
  const std::string hex = content_hash128("anything").hex();
  ASSERT_EQ(hex.size(), 32u);
  for (const char c : hex) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << c;
  }
}

TEST(ContentHash128, SensitiveToEveryByte) {
  const Hash128 base = content_hash128("campaign cell");
  EXPECT_NE(base, content_hash128("campaign celL"));
  EXPECT_NE(base, content_hash128("campaign cell "));
  EXPECT_NE(base, content_hash128("Campaign cell"));
  // Length extension of a zero byte still changes the digest.
  EXPECT_NE(content_hash128(std::string("\0", 1)),
            content_hash128(std::string("\0\0", 2)));
}

TEST(ContentHash128, LanesAreDecorrelated) {
  // If both lanes ever collapsed to the same function, hi == lo for
  // every input and the digest would only be 64 bits strong.
  EXPECT_NE(content_hash128("abc").hi, content_hash128("abc").lo);
  EXPECT_NE(content_hash128("").hi, content_hash128("").lo);
}

TEST(ContentHash128, EqualityOperator) {
  EXPECT_EQ(content_hash128("same"), content_hash128("same"));
  EXPECT_FALSE(content_hash128("same") == content_hash128("diff"));
}

}  // namespace
}  // namespace adacheck::util
