#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <set>

namespace adacheck::util {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next() == b.next();
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256, DeterministicPerSeed) {
  Xoshiro256 rng(12345);
  const auto a = rng();
  const auto b = rng();
  Xoshiro256 rng2(12345);
  EXPECT_EQ(rng2(), a);
  EXPECT_EQ(rng2(), b);
  EXPECT_NE(a, b);
}

TEST(Xoshiro256, Uniform01InRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Xoshiro256, Uniform01MeanNearHalf) {
  Xoshiro256 rng(7);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Xoshiro256, UniformRespectsBounds) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 1'000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Xoshiro256, ExponentialMeanMatchesRate) {
  Xoshiro256 rng(11);
  const double rate = 0.25;
  double sum = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(rate);
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.05);
}

TEST(Xoshiro256, ExponentialZeroRateIsInfinite) {
  Xoshiro256 rng(11);
  EXPECT_TRUE(std::isinf(rng.exponential(0.0)));
  EXPECT_TRUE(std::isinf(rng.exponential(-1.0)));
}

TEST(Xoshiro256, BelowIsInRangeAndRoughlyUniform) {
  Xoshiro256 rng(13);
  std::array<int, 5> counts{};
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    const auto v = rng.below(5);
    ASSERT_LT(v, 5u);
    ++counts[v];
  }
  for (int c : counts) EXPECT_NEAR(c, n / 5, n / 50);
}

TEST(DeriveSeed, DistinctStreamsDistinctSeeds) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 1'000; ++i) {
    seeds.insert(derive_seed(0xABCDEF, i));
  }
  EXPECT_EQ(seeds.size(), 1'000u);
}

TEST(DeriveSeed, StableMapping) {
  EXPECT_EQ(derive_seed(1, 2), derive_seed(1, 2));
  EXPECT_NE(derive_seed(1, 2), derive_seed(2, 1));
}

TEST(PoissonArrivals, EmptyForZeroRateOrHorizon) {
  Xoshiro256 rng(3);
  EXPECT_TRUE(poisson_arrivals(rng, 0.0, 100.0).empty());
  EXPECT_TRUE(poisson_arrivals(rng, 1.0, 0.0).empty());
}

TEST(PoissonArrivals, SortedAndWithinHorizon) {
  Xoshiro256 rng(5);
  const auto times = poisson_arrivals(rng, 0.1, 1'000.0);
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
  for (double t : times) {
    EXPECT_GE(t, 0.0);
    EXPECT_LT(t, 1'000.0);
  }
}

TEST(PoissonArrivals, CountMatchesRateTimesHorizon) {
  Xoshiro256 rng(17);
  double total = 0.0;
  const int reps = 400;
  for (int i = 0; i < reps; ++i) {
    total += static_cast<double>(poisson_arrivals(rng, 0.02, 500.0).size());
  }
  EXPECT_NEAR(total / reps, 10.0, 0.5);  // lambda * horizon = 10
}

}  // namespace
}  // namespace adacheck::util
