#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <functional>
#include <set>
#include <vector>

namespace adacheck::util {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next() == b.next();
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256, DeterministicPerSeed) {
  Xoshiro256 rng(12345);
  const auto a = rng();
  const auto b = rng();
  Xoshiro256 rng2(12345);
  EXPECT_EQ(rng2(), a);
  EXPECT_EQ(rng2(), b);
  EXPECT_NE(a, b);
}

TEST(Xoshiro256, Uniform01InRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Xoshiro256, Uniform01MeanNearHalf) {
  Xoshiro256 rng(7);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Xoshiro256, UniformRespectsBounds) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 1'000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Xoshiro256, ExponentialMeanMatchesRate) {
  Xoshiro256 rng(11);
  const double rate = 0.25;
  double sum = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(rate);
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.05);
}

TEST(Xoshiro256, ExponentialZeroRateIsInfinite) {
  Xoshiro256 rng(11);
  EXPECT_TRUE(std::isinf(rng.exponential(0.0)));
  EXPECT_TRUE(std::isinf(rng.exponential(-1.0)));
}

TEST(Xoshiro256, BelowIsInRangeAndRoughlyUniform) {
  Xoshiro256 rng(13);
  std::array<int, 5> counts{};
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    const auto v = rng.below(5);
    ASSERT_LT(v, 5u);
    ++counts[v];
  }
  for (int c : counts) EXPECT_NEAR(c, n / 5, n / 50);
}

TEST(DeriveSeed, DistinctStreamsDistinctSeeds) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 1'000; ++i) {
    seeds.insert(derive_seed(0xABCDEF, i));
  }
  EXPECT_EQ(seeds.size(), 1'000u);
}

TEST(DeriveSeed, StableMapping) {
  EXPECT_EQ(derive_seed(1, 2), derive_seed(1, 2));
  EXPECT_NE(derive_seed(1, 2), derive_seed(2, 1));
}

/// Sample mean and unbiased variance of n draws.
std::pair<double, double> sample_moments(const std::function<double()>& draw,
                                         int n) {
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = draw();
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  return {mean, (sum2 - n * mean * mean) / (n - 1)};
}

/// One-sample Kolmogorov-Smirnov statistic D_n against the CDF.
double ks_statistic(std::vector<double> samples,
                    const std::function<double(double)>& cdf) {
  std::sort(samples.begin(), samples.end());
  const double n = static_cast<double>(samples.size());
  double d = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const double f = cdf(samples[i]);
    d = std::max(d, std::abs(f - static_cast<double>(i) / n));
    d = std::max(d, std::abs(static_cast<double>(i + 1) / n - f));
  }
  return d;
}

/// 1% critical value of the KS statistic for large n.  Fixed seeds
/// make the draws deterministic, so a passing statistic stays passing.
double ks_critical_1pct(int n) { return 1.63 / std::sqrt(n); }

TEST(Xoshiro256, NormalMomentsMatch) {
  Xoshiro256 rng(21);
  const auto [mean, var] =
      sample_moments([&] { return rng.normal(3.0, 2.0); }, 200'000);
  EXPECT_NEAR(mean, 3.0, 0.02);
  EXPECT_NEAR(var, 4.0, 0.08);
}

TEST(Xoshiro256, WeibullMomentsMatch) {
  // mean = scale * Gamma(1 + 1/k); var = scale^2 * (Gamma(1 + 2/k) -
  // Gamma(1 + 1/k)^2).
  Xoshiro256 rng(22);
  const double shape = 2.0, scale = 3.0;
  const auto [mean, var] =
      sample_moments([&] { return rng.weibull(shape, scale); }, 200'000);
  const double g1 = std::tgamma(1.0 + 1.0 / shape);
  const double g2 = std::tgamma(1.0 + 2.0 / shape);
  EXPECT_NEAR(mean, scale * g1, 0.02);
  EXPECT_NEAR(var, scale * scale * (g2 - g1 * g1), 0.05);
}

TEST(Xoshiro256, LogNormalMomentsMatch) {
  // mean = exp(mu + sigma^2 / 2); var = (exp(sigma^2) - 1) * mean^2.
  Xoshiro256 rng(23);
  const double mu = 0.5, sigma = 0.4;
  const auto [mean, var] =
      sample_moments([&] { return rng.lognormal(mu, sigma); }, 200'000);
  const double expected_mean = std::exp(mu + 0.5 * sigma * sigma);
  const double expected_var =
      (std::exp(sigma * sigma) - 1.0) * expected_mean * expected_mean;
  EXPECT_NEAR(mean, expected_mean, 0.02);
  EXPECT_NEAR(var, expected_var, 0.05);
}

TEST(Xoshiro256, GammaMomentsMatchAboveAndBelowShapeOne) {
  // mean = k * scale; var = k * scale^2 — including the boosted path
  // for shapes below 1.
  for (const double shape : {0.5, 4.5}) {
    Xoshiro256 rng(24);
    const double scale = 2.0;
    const auto [mean, var] =
        sample_moments([&] { return rng.gamma(shape, scale); }, 200'000);
    EXPECT_NEAR(mean, shape * scale, 0.05) << "shape=" << shape;
    EXPECT_NEAR(var, shape * scale * scale, 0.2) << "shape=" << shape;
  }
}

TEST(Xoshiro256, ExponentialPassesKolmogorovSmirnov) {
  Xoshiro256 rng(31);
  const double rate = 0.5;
  std::vector<double> samples(4'000);
  for (auto& x : samples) x = rng.exponential(rate);
  const double d = ks_statistic(
      std::move(samples), [&](double x) { return -std::expm1(-rate * x); });
  EXPECT_LT(d, ks_critical_1pct(4'000));
}

TEST(Xoshiro256, WeibullPassesKolmogorovSmirnov) {
  for (const double shape : {0.7, 2.0}) {
    Xoshiro256 rng(32);
    const double scale = 10.0;
    std::vector<double> samples(4'000);
    for (auto& x : samples) x = rng.weibull(shape, scale);
    const double d = ks_statistic(std::move(samples), [&](double x) {
      return -std::expm1(-std::pow(x / scale, shape));
    });
    EXPECT_LT(d, ks_critical_1pct(4'000)) << "shape=" << shape;
  }
}

TEST(Xoshiro256, LogNormalPassesKolmogorovSmirnov) {
  Xoshiro256 rng(33);
  const double mu = -1.0, sigma = 1.5;
  std::vector<double> samples(4'000);
  for (auto& x : samples) x = rng.lognormal(mu, sigma);
  const double d = ks_statistic(std::move(samples), [&](double x) {
    return 0.5 * std::erfc(-(std::log(x) - mu) / (sigma * std::sqrt(2.0)));
  });
  EXPECT_LT(d, ks_critical_1pct(4'000));
}

TEST(Xoshiro256, GammaIntegerShapePassesKolmogorovSmirnov) {
  // Integer shape k has the closed-form Erlang CDF
  // 1 - exp(-x/s) * sum_{i<k} (x/s)^i / i!.
  Xoshiro256 rng(34);
  const int k = 4;
  const double scale = 2.0;
  std::vector<double> samples(4'000);
  for (auto& x : samples) {
    x = rng.gamma(static_cast<double>(k), scale);
  }
  const double d = ks_statistic(std::move(samples), [&](double x) {
    const double y = x / scale;
    double term = 1.0, sum = 0.0;
    for (int i = 0; i < k; ++i) {
      sum += term;
      term *= y / (i + 1);
    }
    return 1.0 - std::exp(-y) * sum;
  });
  EXPECT_LT(d, ks_critical_1pct(4'000));
}

TEST(Xoshiro256, SamplersAreDeterministicPerSeed) {
  Xoshiro256 a(55), b(55);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.normal01(), b.normal01());
    EXPECT_EQ(a.weibull(1.7, 3.0), b.weibull(1.7, 3.0));
    EXPECT_EQ(a.lognormal(0.2, 0.9), b.lognormal(0.2, 0.9));
    EXPECT_EQ(a.gamma(0.8, 2.0), b.gamma(0.8, 2.0));
  }
}

TEST(PoissonArrivals, EmptyForZeroRateOrHorizon) {
  Xoshiro256 rng(3);
  EXPECT_TRUE(poisson_arrivals(rng, 0.0, 100.0).empty());
  EXPECT_TRUE(poisson_arrivals(rng, 1.0, 0.0).empty());
}

TEST(PoissonArrivals, SortedAndWithinHorizon) {
  Xoshiro256 rng(5);
  const auto times = poisson_arrivals(rng, 0.1, 1'000.0);
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
  for (double t : times) {
    EXPECT_GE(t, 0.0);
    EXPECT_LT(t, 1'000.0);
  }
}

TEST(PoissonArrivals, CountMatchesRateTimesHorizon) {
  Xoshiro256 rng(17);
  double total = 0.0;
  const int reps = 400;
  for (int i = 0; i < reps; ++i) {
    total += static_cast<double>(poisson_arrivals(rng, 0.02, 500.0).size());
  }
  EXPECT_NEAR(total / reps, 10.0, 0.5);  // lambda * horizon = 10
}

}  // namespace
}  // namespace adacheck::util
