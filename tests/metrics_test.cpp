// The metric-recorder pipeline: CellStats/recorder merge edge cases
// (empty merge is the identity, NaN energy propagates), the suite
// registry, the new tail-quantile recorder, and bit-identical metric
// values across thread counts.
#include "sim/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "sim/monte_carlo.hpp"
#include "tests/test_helpers.hpp"

namespace adacheck::sim {
namespace {

using testutil::basic_setup;

PolicyFactory scripted_factory(const SimSetup& setup, double interval) {
  const Decision plan = testutil::plain_plan(setup, interval);
  return [plan] { return std::make_unique<testutil::ScriptedPolicy>(plan); };
}

CellStats sample_stats(const SimSetup& setup, int runs,
                       std::uint64_t seed = 42) {
  MonteCarloConfig config;
  config.runs = runs;
  config.seed = seed;
  return run_cell(setup, scripted_factory(setup, 150.0), config);
}

void expect_same_cell_stats(const CellStats& a, const CellStats& b) {
  EXPECT_EQ(a.completion.trials(), b.completion.trials());
  EXPECT_EQ(a.completion.successes(), b.completion.successes());
  EXPECT_EQ(a.aborted_runs, b.aborted_runs);
  EXPECT_EQ(a.validation_failures, b.validation_failures);
  EXPECT_EQ(a.energy_all.count(), b.energy_all.count());
  EXPECT_DOUBLE_EQ(a.energy_all.mean(), b.energy_all.mean());
  EXPECT_DOUBLE_EQ(a.energy_all.variance(), b.energy_all.variance());
  EXPECT_EQ(a.faults.count(), b.faults.count());
  EXPECT_DOUBLE_EQ(a.faults.mean(), b.faults.mean());
}

// --- merge edge cases ----------------------------------------------------

TEST(CellStatsMerge, MergingAnEmptyCellIsTheIdentity) {
  const auto setup = basic_setup(2'000.0, 2'600.0, 5, 2e-3);
  const CellStats reference = sample_stats(setup, 300);

  CellStats merged = reference;
  merged.merge(CellStats{});  // right identity
  expect_same_cell_stats(merged, reference);

  CellStats from_empty;  // left identity
  from_empty.merge(reference);
  expect_same_cell_stats(from_empty, reference);
}

TEST(CellStatsMerge, EmptyMergedWithEmptyStaysEmpty) {
  CellStats a, b;
  a.merge(b);
  EXPECT_EQ(a.completion.trials(), 0u);
  EXPECT_TRUE(std::isnan(a.probability()));
  EXPECT_TRUE(std::isnan(a.energy()));
}

TEST(CellStatsMerge, NaNEnergyCellsPropagate) {
  // Zero-success cells have NaN energy (the paper's NaN cells); the
  // NaN must survive merging with another zero-success cell and be
  // replaced only by real successes.
  const auto impossible = basic_setup(1'000.0, 900.0);  // D < exec time
  const CellStats never_a = sample_stats(impossible, 60, 1);
  const CellStats never_b = sample_stats(impossible, 60, 2);
  ASSERT_TRUE(std::isnan(never_a.energy()));

  CellStats merged = never_a;
  merged.merge(never_b);
  EXPECT_EQ(merged.completion.trials(), 120u);
  EXPECT_EQ(merged.completion.successes(), 0u);
  EXPECT_TRUE(std::isnan(merged.energy()));
  EXPECT_DOUBLE_EQ(merged.probability(), 0.0);

  // A successful cell merged on top replaces the NaN with its E.
  const auto feasible = basic_setup(1'000.0, 10'000.0);
  const CellStats always = sample_stats(feasible, 60);
  ASSERT_TRUE(std::isfinite(always.energy()));
  merged.merge(always);
  EXPECT_DOUBLE_EQ(merged.energy(), always.energy());
  EXPECT_EQ(merged.energy_success.count(), always.energy_success.count());
}

// --- registry ------------------------------------------------------------

TEST(MetricSuiteRegistry, KnownNamesBuildASuite) {
  const auto names = known_metric_recorders();
  ASSERT_GE(names.size(), 2u);
  const auto suite = make_metric_suite(names);
  EXPECT_EQ(suite->names(), names);
  EXPECT_EQ(suite->size(), names.size());
}

TEST(MetricSuiteRegistry, UnknownAndDuplicateNamesThrow) {
  EXPECT_THROW(make_metric_suite({"nope"}), std::invalid_argument);
  EXPECT_THROW(make_metric_suite({"tails", "tails"}), std::invalid_argument);
}

// --- the tail-quantile recorder ------------------------------------------

MonteCarloConfig tails_config(int runs, int threads = 0) {
  MonteCarloConfig config;
  config.runs = runs;
  config.seed = 0xFEED;
  config.threads = threads;
  config.metrics = make_metric_suite({"tails", "checkpoints"});
  return config;
}

TEST(TailRecorder, QuantilesAreOrderedAndBounded) {
  const auto setup = basic_setup(2'000.0, 2'600.0, 5, 2e-3);
  const CellResult cell = run_cell_ex(setup, scripted_factory(setup, 150.0),
                                      tails_config(600));
  ASSERT_FALSE(cell.metrics.empty());
  const double* p50 = cell.metrics.find("tails", "finish_time_p50");
  const double* p90 = cell.metrics.find("tails", "finish_time_p90");
  const double* p99 = cell.metrics.find("tails", "finish_time_p99");
  const double* count = cell.metrics.find("tails", "finish_time_count");
  ASSERT_NE(p50, nullptr);
  ASSERT_NE(p90, nullptr);
  ASSERT_NE(p99, nullptr);
  ASSERT_NE(count, nullptr);
  EXPECT_EQ(static_cast<std::size_t>(*count),
            cell.stats.finish_time_success.count());
  EXPECT_LE(*p50, *p90);
  EXPECT_LE(*p90, *p99);
  // Finish times are bounded by the deadline (the histogram's range).
  EXPECT_GE(*p50, 0.0);
  EXPECT_LE(*p99, setup.task.deadline);
  // Energy quantiles bracket the observed mean.
  const double* e50 = cell.metrics.find("tails", "energy_p50");
  ASSERT_NE(e50, nullptr);
  EXPECT_GT(*e50, 0.0);
  const double* cscp = cell.metrics.find("checkpoints", "cscp_mean");
  ASSERT_NE(cscp, nullptr);
  EXPECT_GT(*cscp, 0.0);
}

TEST(TailRecorder, ValuesBitIdenticalAcrossThreadCounts) {
  const auto setup = basic_setup(2'000.0, 2'600.0, 5, 2e-3);
  const CellResult serial = run_cell_ex(
      setup, scripted_factory(setup, 150.0), tails_config(600, 1));
  const CellResult parallel = run_cell_ex(
      setup, scripted_factory(setup, 150.0), tails_config(600, 4));
  ASSERT_EQ(serial.metrics.groups.size(), parallel.metrics.groups.size());
  for (std::size_t g = 0; g < serial.metrics.groups.size(); ++g) {
    const auto& a = serial.metrics.groups[g];
    const auto& b = parallel.metrics.groups[g];
    EXPECT_EQ(a.recorder, b.recorder);
    ASSERT_EQ(a.entries.size(), b.entries.size());
    for (std::size_t i = 0; i < a.entries.size(); ++i) {
      EXPECT_EQ(a.entries[i].key, b.entries[i].key);
      // Integer bin tallies merge exactly and RunningStats merges in
      // fixed chunk order: identical bits, not just close values.
      EXPECT_DOUBLE_EQ(a.entries[i].value, b.entries[i].value) << a.entries[i].key;
    }
  }
}

TEST(MetricSet, DefaultConfigEmitsNoExtraGroups) {
  const auto setup = basic_setup(1'000.0, 10'000.0);
  MonteCarloConfig config;
  config.runs = 50;
  const CellResult cell =
      run_cell_ex(setup, scripted_factory(setup, 100.0), config);
  EXPECT_TRUE(cell.metrics.empty());
  EXPECT_EQ(cell.stats.completion.trials(), 50u);
}

TEST(MetricSet, MergeRejectsMismatchedSets) {
  const auto setup = basic_setup(1'000.0, 10'000.0);
  MetricSet with_tails =
      MetricSet::for_cell(setup, make_metric_suite({"tails"}).get());
  MetricSet plain = MetricSet::for_cell(setup, nullptr);
  EXPECT_THROW(with_tails.merge(plain), std::logic_error);
  MetricSet empty;
  EXPECT_THROW(empty.merge(plain), std::logic_error);
  // Merging an empty (default-constructed) set into a real one is a
  // no-op, mirroring the CellStats identity law.
  EXPECT_NO_THROW(plain.merge(MetricSet{}));
}

// --- a custom recorder plugs in end to end -------------------------------

/// Counts deadline misses — the README's minimal custom-recorder
/// example, kept compiling by this test.
class MissRecorder final : public IMetricRecorder {
 public:
  std::string_view name() const override { return "misses"; }
  void observe(const RunView& run) override {
    if (run.result.outcome == RunOutcome::kDeadlineMiss) ++misses_;
  }
  void merge(const IMetricRecorder& peer) override {
    misses_ += static_cast<const MissRecorder&>(peer).misses_;
  }
  void emit(MetricValues::Group& out) const override {
    out.entries.push_back({"count", static_cast<double>(misses_)});
  }

 private:
  std::size_t misses_ = 0;
};

TEST(MetricSuite, CustomRecorderComposes) {
  auto suite = std::make_shared<MetricSuite>();
  suite->add("misses",
             [](const SimSetup&) { return std::make_unique<MissRecorder>(); });

  const auto setup = basic_setup(2'000.0, 2'600.0, 5, 2e-3);
  MonteCarloConfig config;
  config.runs = 400;
  config.metrics = suite;
  const CellResult cell =
      run_cell_ex(setup, scripted_factory(setup, 150.0), config);
  const double* misses = cell.metrics.find("misses", "count");
  ASSERT_NE(misses, nullptr);
  EXPECT_DOUBLE_EQ(*misses,
                   static_cast<double>(cell.stats.completion.trials() -
                                       cell.stats.completion.successes() -
                                       cell.stats.aborted_runs));
}

}  // namespace
}  // namespace adacheck::sim
