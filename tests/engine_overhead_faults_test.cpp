// Ablation model: faults can also strike during checkpoint operations
// (FaultModel::faults_during_overhead).  These tests pin the corruption
// attribution rules of DESIGN.md §3: an SCP-store fault poisons its own
// sub-interval (the stored snapshot is bad), a CCP-compare fault slips
// past and poisons the next comparison window, and a CSCP-op fault
// carries into the next interval.
#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "tests/test_helpers.hpp"

namespace adacheck::sim {
namespace {

using testutil::ScriptedPolicy;
using testutil::inner_plan;
using testutil::plain_plan;
using testutil::run_with_faults;

sim::SimSetup overhead_setup(double cycles, double deadline,
                             model::CheckpointCosts costs) {
  auto setup = testutil::basic_setup(cycles, deadline);
  setup.costs = costs;
  setup.fault_model.faults_during_overhead = true;
  return setup;
}

TEST(EngineOverheadFaults, ExposureAdvancesThroughCheckpoints) {
  // With the flag on, exposure includes overhead windows: a "fault" at
  // exposure 101 (inside the final CSCP op of a 100-cycle task) fires.
  const auto setup =
      overhead_setup(100.0, 10'000.0, model::CheckpointCosts::paper_scp_flavor());
  ScriptedPolicy policy(plain_plan(setup, 100.0));
  const auto result = run_with_faults(setup, policy, {101.0});
  EXPECT_EQ(result.faults, 1);
}

TEST(EngineOverheadFaults, ScpStoreFaultRollsBackBeforeItsSub) {
  // Interval 100, subs of 25, t_s = 2: SCP 2 occupies exposure
  // [52, 54).  A fault there corrupts the stored snapshot of sub 2...
  // the engine must treat sub 2 as poisoned: commit only sub 1.
  const auto setup =
      overhead_setup(100.0, 10'000.0, model::CheckpointCosts::paper_scp_flavor());
  ScriptedPolicy policy(inner_plan(setup, 100.0, 25.0, InnerKind::kScp));
  // Exposure layout: sub1 [0,25) SCP1 [25,27) sub2 [27,52) SCP2 [52,54).
  const auto result = run_with_faults(setup, policy, {53.0});
  EXPECT_EQ(result.detections, 1);
  // Wait: the fault is during SCP2, which stores sub 2's state ->
  // first_fault_sub = 2 -> commit (2-1)*25 = 25 cycles.
  EXPECT_EQ(result.outcome, RunOutcome::kCompleted);
  EXPECT_NEAR(result.cycles_committed, 100.0, 1e-9);
  // Attempt 1: 128; commit 25; attempt 2 re-runs 75: 101.
  EXPECT_NEAR(result.finish_time, 229.0, 1e-9);
}

TEST(EngineOverheadFaults, CcpCompareFaultDetectedAtNextComparison) {
  const auto setup =
      overhead_setup(100.0, 10'000.0, model::CheckpointCosts::paper_ccp_flavor());
  ScriptedPolicy policy(inner_plan(setup, 100.0, 25.0, InnerKind::kCcp));
  // Exposure: sub1 [0,25) CCP1 [25,27) sub2 [27,52) CCP2 [52,54) ...
  // Fault inside CCP1's compare: the comparison itself is already done,
  // so detection happens at CCP2.
  const auto result = run_with_faults(setup, policy, {26.0});
  EXPECT_EQ(result.detections, 1);
  // Attempt 1 fails at CCP2: 25+2+25+2 = 54; retry runs clean.
  // Attempt 2: full interval = 100 + 3*2 + 22 = 128.
  EXPECT_NEAR(result.finish_time, 54.0 + 128.0, 1e-9);
}

TEST(EngineOverheadFaults, CscpOpFaultCarriesToNextInterval) {
  // Fault during the CSCP of interval 1 (exposure [100, 122) with the
  // SCP flavor and no inner checkpoints): the commit stands, but the
  // next interval starts corrupted and must retry once.
  const auto setup =
      overhead_setup(200.0, 10'000.0, model::CheckpointCosts::paper_scp_flavor());
  ScriptedPolicy policy(plain_plan(setup, 100.0));
  const auto result = run_with_faults(setup, policy, {110.0});
  EXPECT_EQ(result.outcome, RunOutcome::kCompleted);
  EXPECT_EQ(result.detections, 1);
  // Interval 1 commits (122).  Interval 2 attempt 1 fails at its CSCP
  // (122), attempt 2 clean (122).
  EXPECT_NEAR(result.finish_time, 3.0 * 122.0, 1e-9);
  EXPECT_NEAR(result.cycles_committed, 200.0, 1e-9);
}

TEST(EngineOverheadFaults, FlagOffIgnoresOverheadWindows) {
  auto setup =
      overhead_setup(200.0, 10'000.0, model::CheckpointCosts::paper_scp_flavor());
  setup.fault_model.faults_during_overhead = false;
  ScriptedPolicy policy(plain_plan(setup, 100.0));
  // Exposure with the flag off spans computation only (0..200); 110 is
  // now inside interval 2's computation -> one ordinary detection.
  const auto result = run_with_faults(setup, policy, {110.0});
  EXPECT_EQ(result.faults, 1);
  EXPECT_EQ(result.detections, 1);
  // 122 + failed 122 + retry 122.
  EXPECT_NEAR(result.finish_time, 3.0 * 122.0, 1e-9);
}

TEST(EngineOverheadFaults, RollbackOpFaultPoisonsNextAttempt) {
  auto costs = model::CheckpointCosts::paper_scp_flavor();
  costs.rollback = 10.0;
  const auto setup = overhead_setup(100.0, 10'000.0, costs);
  ScriptedPolicy policy(plain_plan(setup, 100.0));
  // Fault 1 at exposure 50 (computation) -> detection at CSCP
  // (exposure [100,122)), then rollback op spans [122,132): fault 2 at
  // 125 hits the rollback -> next attempt starts corrupted, fails at
  // its CSCP, and the third attempt succeeds.
  const auto result = run_with_faults(setup, policy, {50.0, 125.0});
  EXPECT_EQ(result.detections, 2);
  EXPECT_EQ(result.outcome, RunOutcome::kCompleted);
  // Attempts: 122 (fail) + 10 + 122 (fail, corrupted) + 10 + 122 (ok).
  EXPECT_NEAR(result.finish_time, 3.0 * 122.0 + 20.0, 1e-9);
}

}  // namespace
}  // namespace adacheck::sim
