#include "policy/adaptive.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "analytic/dvs_estimate.hpp"
#include "analytic/interval_policy.hpp"
#include "analytic/num_checkpoints.hpp"
#include "sim/engine.hpp"
#include "tests/test_helpers.hpp"

namespace adacheck::policy {
namespace {

sim::ExecContext make_context(const sim::SimSetup& setup,
                              double remaining_cycles, double now,
                              int remaining_faults) {
  sim::ExecContext ctx;
  ctx.task = &setup.task;
  ctx.costs = &setup.costs;
  ctx.processor = &setup.processor;
  ctx.lambda = setup.fault_model.rate;
  ctx.remaining_cycles = remaining_cycles;
  ctx.now = now;
  // These fixtures treat elapsed time as fully vulnerable (the rate
  // estimator observes the exposure clock).
  ctx.exposure = now;
  ctx.remaining_faults = remaining_faults;
  return ctx;
}

TEST(AdaptivePolicy, SchemeNamesFollowPaper) {
  EXPECT_EQ(AdaptiveCheckpointPolicy(AdaptiveCheckpointPolicy::adt_dvs())
                .name(),
            "A_D");
  EXPECT_EQ(AdaptiveCheckpointPolicy(
                AdaptiveCheckpointPolicy::adapchp_dvs_scp())
                .name(),
            "A_D_S");
  EXPECT_EQ(AdaptiveCheckpointPolicy(
                AdaptiveCheckpointPolicy::adapchp_dvs_ccp())
                .name(),
            "A_D_C");
  EXPECT_EQ(AdaptiveCheckpointPolicy(AdaptiveCheckpointPolicy::adapchp_scp())
                .name(),
            "adapchp-SCP");
  EXPECT_EQ(AdaptiveCheckpointPolicy(AdaptiveCheckpointPolicy::adapchp_ccp())
                .name(),
            "adapchp-CCP");
}

TEST(AdaptivePolicy, DvsPicksHighSpeedUnderPressure) {
  // Paper Table 1(a) entry state: t_est at f1 misses the deadline.
  const auto setup = testutil::dvs_setup(7'600.0, 10'000.0, 5, 1.4e-3);
  AdaptiveCheckpointPolicy policy(AdaptiveCheckpointPolicy::adt_dvs());
  const auto d = policy.initial(make_context(setup, 7'600.0, 0.0, 5));
  EXPECT_DOUBLE_EQ(d.speed.frequency, 2.0);
  EXPECT_FALSE(d.abort);
  EXPECT_EQ(d.inner, sim::InnerKind::kNone);
}

TEST(AdaptivePolicy, DvsDropsToLowSpeedWhenComfortable) {
  const auto setup = testutil::dvs_setup(7'600.0, 10'000.0, 5, 1.4e-3);
  AdaptiveCheckpointPolicy policy(AdaptiveCheckpointPolicy::adt_dvs());
  // Mid-run: 4000 cycles left, 8000 time left -> f1 feasible.
  const auto d = policy.on_fault(make_context(setup, 4'000.0, 2'000.0, 4));
  EXPECT_DOUBLE_EQ(d.speed.frequency, 1.0);
}

TEST(AdaptivePolicy, IntervalMatchesFig4) {
  const auto setup = testutil::dvs_setup(7'600.0, 10'000.0, 5, 1.4e-3);
  AdaptiveCheckpointPolicy policy(AdaptiveCheckpointPolicy::adt_dvs());
  const auto d = policy.initial(make_context(setup, 7'600.0, 0.0, 5));
  // At f2: Rt = 3800, C = 11; Fig. 4 chooses I1 here (exp_error > Rf,
  // Rt below the lambda-threshold).
  const auto expected = analytic::adaptive_interval(
      10'000.0, 3'800.0, 11.0, 5, 1.4e-3);
  EXPECT_EQ(expected.rule, analytic::IntervalRule::kPoisson);
  EXPECT_NEAR(d.cscp_interval, expected.interval, 1e-9);
}

TEST(AdaptivePolicy, ScpVariantUsesNumScp) {
  const auto setup = testutil::dvs_setup(7'600.0, 10'000.0, 5, 1.4e-3);
  AdaptiveCheckpointPolicy policy(
      AdaptiveCheckpointPolicy::adapchp_dvs_scp());
  const auto d = policy.initial(make_context(setup, 7'600.0, 0.0, 5));
  EXPECT_EQ(d.inner, sim::InnerKind::kScp);
  // sub_interval = Itv / num_SCP(Itv) with time-scaled costs at f2.
  analytic::ScpRenewalParams params;
  params.interval = d.cscp_interval;
  params.lambda = 1.4e-3;
  params.costs = {2.0 / 2.0, 20.0 / 2.0, 0.0};
  const int m = analytic::num_scp(params);
  EXPECT_NEAR(d.sub_interval, d.cscp_interval / m, 1e-9);
  EXPECT_GE(m, 1);
}

TEST(AdaptivePolicy, CcpVariantUsesNumCcp) {
  auto setup = testutil::dvs_setup(7'600.0, 10'000.0, 5, 1.4e-3);
  setup.costs = model::CheckpointCosts::paper_ccp_flavor();
  AdaptiveCheckpointPolicy policy(
      AdaptiveCheckpointPolicy::adapchp_dvs_ccp());
  const auto d = policy.initial(make_context(setup, 7'600.0, 0.0, 5));
  EXPECT_EQ(d.inner, sim::InnerKind::kCcp);
  EXPECT_LE(d.sub_interval, d.cscp_interval);
}

TEST(AdaptivePolicy, AbortsWhenNothingFits) {
  // Remaining work exceeds the deadline even at f2 (Fig. 6 line 6).
  const auto setup = testutil::dvs_setup(30'000.0, 10'000.0, 5, 1e-3);
  AdaptiveCheckpointPolicy policy(
      AdaptiveCheckpointPolicy::adapchp_dvs_scp());
  const auto d = policy.initial(make_context(setup, 30'000.0, 0.0, 5));
  EXPECT_TRUE(d.abort);
}

TEST(AdaptivePolicy, NonDvsVariantPinsSpeed) {
  const auto setup = testutil::dvs_setup(7'600.0, 10'000.0, 5, 1.4e-3);
  auto config = AdaptiveCheckpointPolicy::adapchp_scp();
  config.fixed_level = 0;
  AdaptiveCheckpointPolicy policy(config);
  const auto d = policy.initial(make_context(setup, 7'600.0, 0.0, 5));
  EXPECT_DOUBLE_EQ(d.speed.frequency, 1.0);
  EXPECT_EQ(d.inner, sim::InnerKind::kScp);
}

TEST(AdaptivePolicy, NonDvsAbortsWhenItsSpeedCannotFit) {
  // At f1 the remaining work exceeds the deadline; without DVS the
  // Fig. 3 guard fires even though f2 would have fit.
  const auto setup = testutil::dvs_setup(11'000.0, 10'000.0, 5, 1e-4);
  auto config = AdaptiveCheckpointPolicy::adapchp_scp();
  AdaptiveCheckpointPolicy policy(config);
  const auto d = policy.initial(make_context(setup, 11'000.0, 0.0, 5));
  EXPECT_TRUE(d.abort);
}

TEST(AdaptivePolicy, OnCommitKeepsPlanByDefault) {
  const auto setup = testutil::dvs_setup(7'600.0, 10'000.0, 5, 1.4e-3);
  AdaptiveCheckpointPolicy policy(
      AdaptiveCheckpointPolicy::adapchp_dvs_scp());
  (void)policy.initial(make_context(setup, 7'600.0, 0.0, 5));
  const auto replacement =
      policy.on_commit(make_context(setup, 7'000.0, 400.0, 5));
  EXPECT_FALSE(replacement.has_value());
}

TEST(AdaptivePolicy, OnCommitAbortsWhenHopeless) {
  const auto setup = testutil::dvs_setup(7'600.0, 10'000.0, 5, 1.4e-3);
  AdaptiveCheckpointPolicy policy(
      AdaptiveCheckpointPolicy::adapchp_dvs_scp());
  (void)policy.initial(make_context(setup, 7'600.0, 0.0, 5));
  // 6000 cycles left but only 2000 time: even f2 cannot fit.
  const auto replacement =
      policy.on_commit(make_context(setup, 6'000.0, 8'000.0, 3));
  ASSERT_TRUE(replacement.has_value());
  EXPECT_TRUE(replacement->abort);
}

TEST(AdaptivePolicy, RecomputeAtCommitKnob) {
  const auto setup = testutil::dvs_setup(7'600.0, 10'000.0, 5, 1.4e-3);
  auto config = AdaptiveCheckpointPolicy::adapchp_dvs_scp();
  config.recompute_at_commit = true;
  AdaptiveCheckpointPolicy policy(config);
  (void)policy.initial(make_context(setup, 7'600.0, 0.0, 5));
  const auto replacement =
      policy.on_commit(make_context(setup, 7'000.0, 400.0, 5));
  ASSERT_TRUE(replacement.has_value());
  EXPECT_FALSE(replacement->abort);
  EXPECT_GT(replacement->cscp_interval, 0.0);
}

TEST(AdaptivePolicy, MaxInnerCapRespected) {
  const auto setup = testutil::dvs_setup(7'600.0, 10'000.0, 5, 2e-2);
  auto config = AdaptiveCheckpointPolicy::adapchp_dvs_scp();
  config.max_inner = 2;
  AdaptiveCheckpointPolicy policy(config);
  const auto d = policy.initial(make_context(setup, 7'600.0, 0.0, 5));
  if (!d.abort) {
    EXPECT_GE(d.sub_interval, d.cscp_interval / 2.0 - 1e-9);
  }
  EXPECT_THROW(
      AdaptiveCheckpointPolicy([] {
        auto c = AdaptiveCheckpointPolicy::adapchp_dvs_scp();
        c.max_inner = 0;
        return c;
      }()),
      std::invalid_argument);
}

TEST(AdaptivePolicy, ExhaustedFaultBudgetStillPlans) {
  const auto setup = testutil::dvs_setup(7'600.0, 10'000.0, 1, 1e-4);
  AdaptiveCheckpointPolicy policy(
      AdaptiveCheckpointPolicy::adapchp_dvs_scp());
  const auto d = policy.on_fault(make_context(setup, 3'000.0, 5'000.0, -1));
  EXPECT_FALSE(d.abort);
  EXPECT_GT(d.cscp_interval, 0.0);
}

TEST(AdaptivePolicy, IntervalNeverExceedsRemainingWork) {
  const auto setup = testutil::dvs_setup(7'600.0, 10'000.0, 5, 1e-4);
  AdaptiveCheckpointPolicy policy(
      AdaptiveCheckpointPolicy::adapchp_dvs_scp());
  for (double rc : {7'600.0, 2'000.0, 200.0, 10.0}) {
    const auto d = policy.on_fault(make_context(setup, rc, 1'000.0, 3));
    ASSERT_FALSE(d.abort);
    EXPECT_LE(d.cscp_interval, rc / d.speed.frequency + 1e-9) << rc;
  }
}

TEST(AdaptivePolicy, EstimatorNamesCarryTheSuffix) {
  AdaptiveCheckpointPolicy policy(AdaptiveCheckpointPolicy::with_estimator(
      AdaptiveCheckpointPolicy::adapchp_dvs_scp()));
  EXPECT_EQ(policy.name(), "A_D_S-est");
  EXPECT_TRUE(policy.config().estimate_rate);
}

TEST(AdaptivePolicy, EstimatorStartsAtTheNominalRate) {
  const auto setup = testutil::dvs_setup(7'600.0, 10'000.0, 5, 1.4e-3);
  AdaptiveCheckpointPolicy policy(AdaptiveCheckpointPolicy::with_estimator(
      AdaptiveCheckpointPolicy::adapchp_dvs_scp()));
  // Before any time elapses there is nothing to observe: the planning
  // rate is exactly the nominal (environment-effective) lambda.
  const auto ctx = make_context(setup, 7'600.0, 0.0, 5);
  EXPECT_DOUBLE_EQ(policy.planning_lambda(ctx), 1.4e-3);
}

TEST(AdaptivePolicy, EstimatorTracksObservedGaps) {
  const auto setup = testutil::dvs_setup(7'600.0, 10'000.0, 5, 1.4e-3);
  AdaptiveCheckpointPolicy policy(AdaptiveCheckpointPolicy::with_estimator(
      AdaptiveCheckpointPolicy::adapchp_dvs_scp()));

  // Faults arriving much faster than nominal pull the estimate up ...
  auto stormy = make_context(setup, 5'000.0, 2'000.0, 5);
  stormy.faults_detected = 20;  // observed rate 1e-2 >> 1.4e-3
  const double up = policy.planning_lambda(stormy);
  EXPECT_GT(up, 1.4e-3);
  EXPECT_LT(up, 1e-2);  // the prior tempers the jump

  // ... and a long quiet stretch pulls it down.
  auto quiet = make_context(setup, 5'000.0, 8'000.0, 5);
  quiet.faults_detected = 0;
  EXPECT_LT(policy.planning_lambda(quiet), 1.4e-3);

  // More observations move the posterior monotonically toward the
  // observed rate (without overshooting it).
  auto heavier = stormy;
  heavier.now = 4'000.0;
  heavier.faults_detected = 40;
  const double closer = policy.planning_lambda(heavier);
  EXPECT_GT(closer, up);
  EXPECT_LT(closer, 1e-2);
}

TEST(AdaptivePolicy, EstimatorShrinksIntervalsUnderObservedStorms) {
  // The whole point of tracking: given the same nominal lambda, a
  // policy that has seen a storm plans denser checkpoints than one
  // planning blind.  An exhausted fault budget and a distant deadline
  // pin Fig. 4 to the I1 branch, whose interval sqrt(2C/lambda) is
  // strictly decreasing in the planning rate.
  const auto setup = testutil::dvs_setup(7'600.0, 400'000.0, 30, 2.0e-4);
  AdaptiveCheckpointPolicy blind(AdaptiveCheckpointPolicy::adapchp_dvs_scp());
  AdaptiveCheckpointPolicy tracking(
      AdaptiveCheckpointPolicy::with_estimator(
          AdaptiveCheckpointPolicy::adapchp_dvs_scp()));
  auto ctx = make_context(setup, 6'000.0, 3'000.0, 0);
  ctx.faults_detected = 12;  // a storm: 4e-3 observed vs 2e-4 nominal
  const auto blind_plan = blind.on_fault(ctx);
  const auto tracking_plan = tracking.on_fault(ctx);
  ASSERT_FALSE(blind_plan.abort);
  ASSERT_FALSE(tracking_plan.abort);
  EXPECT_LT(tracking_plan.cscp_interval, blind_plan.cscp_interval);
}

TEST(AdaptivePolicy, EstimatorWithZeroNominalRateUsesPureObservation) {
  const auto setup = testutil::dvs_setup(7'600.0, 10'000.0, 5, 0.0);
  AdaptiveCheckpointPolicy policy(AdaptiveCheckpointPolicy::with_estimator(
      AdaptiveCheckpointPolicy::adt_dvs()));
  auto ctx = make_context(setup, 5'000.0, 2'000.0, 5);
  ctx.faults_detected = 4;
  EXPECT_DOUBLE_EQ(policy.planning_lambda(ctx), 4.0 / 2'000.0);
}

}  // namespace
}  // namespace adacheck::policy
