#include "sched/executive.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sched/taskset.hpp"

namespace adacheck::sched {
namespace {

ExecutiveConfig quiet_config(double horizon, double lambda = 0.0) {
  ExecutiveConfig config;
  config.horizon = horizon;
  config.costs = model::CheckpointCosts::paper_scp_flavor();
  config.fault_model = model::FaultModel{lambda, false};
  return config;
}

PeriodicTask make_task(const char* name, double cycles, double period,
                       const char* policy = "A_D_S") {
  PeriodicTask task;
  task.name = name;
  task.cycles = cycles;
  task.period = period;
  task.fault_tolerance = 3;
  task.policy = policy;
  return task;
}

TEST(TaskSet, ValidationRules) {
  TaskSet empty;
  EXPECT_THROW(empty.validate(), std::invalid_argument);

  PeriodicTask bad = make_task("bad", 0.0, 100.0);
  EXPECT_THROW(bad.validate(), std::invalid_argument);

  bad = make_task("bad", 10.0, 100.0);
  bad.relative_deadline = 200.0;  // > period
  EXPECT_THROW(bad.validate(), std::invalid_argument);

  TaskSet ok{{make_task("a", 10.0, 100.0)}};
  EXPECT_NO_THROW(ok.validate());
}

TEST(TaskSet, UtilizationSums) {
  TaskSet set{{make_task("a", 100.0, 1'000.0),
               make_task("b", 300.0, 1'000.0)}};
  EXPECT_DOUBLE_EQ(set.utilization(1.0), 0.4);
  EXPECT_DOUBLE_EQ(set.utilization(2.0), 0.2);
}

TEST(TaskSet, EffectiveUtilizationExceedsRaw) {
  TaskSet set{{make_task("a", 400.0, 1'000.0)}};
  const double raw = set.utilization(1.0);
  const double effective = effective_utilization(set, 1.0, 22.0, 1e-3);
  EXPECT_GT(effective, raw);
}

TEST(TaskSet, BlockingEstimatesUseOtherTasks) {
  TaskSet set{{make_task("short", 100.0, 1'000.0),
               make_task("long", 800.0, 4'000.0)}};
  const auto blocking = blocking_estimates(set, 1.0, 22.0, 0.0);
  ASSERT_EQ(blocking.size(), 2u);
  EXPECT_NEAR(blocking[0], 800.0, 1e-9);  // short waits for long
  EXPECT_NEAR(blocking[1], 100.0, 1e-9);
}

TEST(Executive, SingleTaskFaultFreeCompletesEveryJob) {
  TaskSet set{{make_task("ctl", 400.0, 1'000.0)}};
  const auto result = run_executive(set, quiet_config(10'000.0));
  EXPECT_EQ(result.per_task[0].released, 10);
  EXPECT_EQ(result.per_task[0].completed, 10);
  EXPECT_EQ(result.per_task[0].missed, 0);
  EXPECT_GT(result.total_energy, 0.0);
  EXPECT_EQ(result.jobs.size(), 10u);
}

TEST(Executive, PhaseDelaysFirstRelease) {
  auto task = make_task("ctl", 100.0, 1'000.0);
  task.phase = 2'500.0;
  TaskSet set{{task}};
  const auto result = run_executive(set, quiet_config(10'000.0));
  EXPECT_EQ(result.per_task[0].released, 8);  // 2500, 3500, ..., 9500
  EXPECT_DOUBLE_EQ(result.jobs.front().release, 2'500.0);
}

TEST(Executive, EdfPicksEarliestDeadline) {
  // Both release at 0; the tighter-deadline task must run first even
  // though it is listed second.
  auto loose = make_task("loose", 200.0, 4'000.0);
  auto tight = make_task("tight", 200.0, 1'000.0);
  TaskSet set{{loose, tight}};
  const auto result = run_executive(set, quiet_config(4'000.0));
  ASSERT_GE(result.jobs.size(), 2u);
  EXPECT_EQ(set.tasks[result.jobs[0].task_index].name, "tight");
  EXPECT_EQ(set.tasks[result.jobs[1].task_index].name, "loose");
}

TEST(Executive, NonPreemptiveBlockingDelaysButMeetsDeadlines) {
  // A long job blocks a short one; with enough slack both complete.
  auto longt = make_task("long", 900.0, 4'000.0);
  auto shortt = make_task("short", 100.0, 2'000.0);
  shortt.phase = 10.0;  // releases just after the long job starts
  TaskSet set{{longt, shortt}};
  const auto result = run_executive(set, quiet_config(4'000.0));
  for (const auto& task_stats : result.per_task) {
    EXPECT_EQ(task_stats.missed, 0);
  }
  // The short job's response time includes the blocking.
  EXPECT_GT(result.per_task[1].response_time.max(), 900.0);
}

TEST(Executive, OverloadProducesMissesAndSkips) {
  // Utilization ~ 1.6: the executive must fall behind and skip jobs.
  TaskSet set{{make_task("a", 800.0, 1'000.0, "k-f-t"),
               make_task("b", 800.0, 1'000.0, "k-f-t")}};
  auto config = quiet_config(20'000.0);
  const auto result = run_executive(set, config);
  int missed = result.per_task[0].missed + result.per_task[1].missed;
  EXPECT_GT(missed, 0);
  int skipped = result.per_task[0].skipped + result.per_task[1].skipped;
  EXPECT_GT(skipped, 0);
}

TEST(Executive, SkipLateJobsOffStartsThemAnyway) {
  TaskSet set{{make_task("a", 800.0, 1'000.0, "k-f-t"),
               make_task("b", 800.0, 1'000.0, "k-f-t")}};
  auto config = quiet_config(10'000.0);
  config.skip_late_jobs = false;
  const auto result = run_executive(set, config);
  for (const auto& stats : result.per_task) {
    EXPECT_EQ(stats.skipped, 0);
  }
}

TEST(Executive, FaultsCauseMissesAtHighLoad) {
  TaskSet set{{make_task("ctl", 700.0, 1'000.0, "k-f-t")}};
  const auto clean = run_executive(set, quiet_config(50'000.0, 0.0));
  const auto faulty = run_executive(set, quiet_config(50'000.0, 2e-3));
  EXPECT_EQ(clean.per_task[0].missed, 0);
  EXPECT_GT(faulty.per_task[0].missed, clean.per_task[0].missed);
  EXPECT_GT(faulty.miss_ratio(0), 0.0);
}

TEST(Executive, AdaptiveSchemeBeatsFixedUnderFaults) {
  const double lambda = 1.6e-3;
  TaskSet fixed{{make_task("ctl", 700.0, 1'000.0, "k-f-t")}};
  TaskSet adaptive{{make_task("ctl", 700.0, 1'000.0, "A_D_S")}};
  const auto fixed_result =
      run_executive(fixed, quiet_config(50'000.0, lambda));
  const auto adaptive_result =
      run_executive(adaptive, quiet_config(50'000.0, lambda));
  EXPECT_LT(adaptive_result.miss_ratio(0), fixed_result.miss_ratio(0));
}

TEST(Executive, DeterministicPerSeed) {
  TaskSet set{{make_task("a", 400.0, 1'000.0),
               make_task("b", 700.0, 3'000.0)}};
  auto config = quiet_config(30'000.0, 1e-3);
  const auto r1 = run_executive(set, config);
  const auto r2 = run_executive(set, config);
  EXPECT_DOUBLE_EQ(r1.total_energy, r2.total_energy);
  EXPECT_EQ(r1.jobs.size(), r2.jobs.size());
  config.seed += 1;
  const auto r3 = run_executive(set, config);
  EXPECT_NE(r1.total_energy, r3.total_energy);
}

TEST(Executive, ConfigValidation) {
  TaskSet set{{make_task("a", 10.0, 100.0)}};
  auto config = quiet_config(0.0);
  EXPECT_THROW(run_executive(set, config), std::invalid_argument);
  config = quiet_config(100.0);
  config.speed_ratio = 1.0;
  EXPECT_THROW(run_executive(set, config), std::invalid_argument);
}

TEST(Executive, EnergyAccountingConsistent) {
  TaskSet set{{make_task("a", 400.0, 1'000.0)}};
  const auto result = run_executive(set, quiet_config(10'000.0, 1e-3));
  double sum = 0.0;
  for (const auto& job : result.jobs) sum += job.energy;
  EXPECT_NEAR(sum, result.total_energy, 1e-6);
  EXPECT_NEAR(result.per_task[0].energy, result.total_energy, 1e-6);
}

}  // namespace
}  // namespace adacheck::sched
