#include "harness/experiment.hpp"

#include <gtest/gtest.h>

#include "harness/paper_params.hpp"

namespace adacheck::harness {
namespace {

ExperimentSpec tiny_spec() {
  ExperimentSpec spec;
  spec.id = "tiny";
  spec.title = "tiny test table";
  spec.costs = model::CheckpointCosts::paper_scp_flavor();
  spec.deadline = 10'000.0;
  spec.fault_tolerance = 5;
  spec.util_level = 0;
  spec.schemes = {"Poisson", "A_D_S"};
  spec.rows = {
      {0.5, 1e-3, {{0.9, 30'000.0}, {0.99, 35'000.0}}},
      {0.8, 1e-3, {}},  // paper values optional
  };
  return spec;
}

TEST(Experiment, MakeSetupUsesUtilLevel) {
  auto spec = tiny_spec();
  const auto setup_f1 = make_setup(spec, spec.rows[0]);
  EXPECT_DOUBLE_EQ(setup_f1.task.cycles, 0.5 * 1.0 * 10'000.0);
  EXPECT_EQ(setup_f1.task.fault_tolerance, 5);
  EXPECT_DOUBLE_EQ(setup_f1.fault_model.rate, 1e-3);

  spec.util_level = 1;  // U defined against f2
  const auto setup_f2 = make_setup(spec, spec.rows[0]);
  EXPECT_DOUBLE_EQ(setup_f2.task.cycles, 0.5 * 2.0 * 10'000.0);
}

TEST(Experiment, RunFillsEveryCell) {
  const auto spec = tiny_spec();
  sim::MonteCarloConfig config;
  config.runs = 50;
  const auto result = run_experiment(spec, config);
  ASSERT_EQ(result.cells.size(), 2u);
  for (const auto& row : result.cells) {
    ASSERT_EQ(row.size(), 2u);
    for (const auto& cell : row) {
      EXPECT_EQ(cell.completion.trials(), 50u);
    }
  }
}

TEST(Experiment, CellsAreSeedDecorrelatedButReproducible) {
  const auto spec = tiny_spec();
  sim::MonteCarloConfig config;
  config.runs = 100;
  config.seed = 5;
  const auto a = run_experiment(spec, config);
  const auto b = run_experiment(spec, config);
  EXPECT_DOUBLE_EQ(a.cells[0][0].energy_all.mean(),
                   b.cells[0][0].energy_all.mean());
  // Different schemes in the same row see different fault streams.
  EXPECT_NE(a.cells[0][0].faults.mean(), a.cells[0][1].faults.mean());
}

TEST(Experiment, ValidationErrors) {
  auto spec = tiny_spec();
  spec.schemes.clear();
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = tiny_spec();
  spec.rows[0].paper.pop_back();  // mismatched width
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = tiny_spec();
  spec.util_level = 2;
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = tiny_spec();
  spec.rows[0].utilization = -1.0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(Experiment, PaperSpecsAllValidate) {
  for (const auto& spec : all_paper_tables()) {
    EXPECT_NO_THROW(spec.validate()) << spec.id;
  }
}

TEST(Experiment, UnknownEnvironmentIsRejected) {
  auto spec = tiny_spec();
  spec.environment = "not-an-environment";
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(Experiment, MakeSetupResolvesTheEnvironment) {
  auto spec = tiny_spec();
  EXPECT_TRUE(make_setup(spec, spec.rows[0]).environment.plain_exponential());
  spec.environment = "bursty-orbit";
  const auto setup = make_setup(spec, spec.rows[0]);
  EXPECT_TRUE(setup.environment.burst.enabled);
  EXPECT_DOUBLE_EQ(setup.environment.burst.rate_multiplier, 12.0);
}

TEST(Experiment, WithEnvironmentsExpandsTheAxis) {
  const auto expanded = with_environments(
      {tiny_spec()}, {"poisson", "bursty-orbit", "common-cause"});
  ASSERT_EQ(expanded.size(), 3u);
  EXPECT_EQ(expanded[0].id, "tiny@poisson");
  EXPECT_EQ(expanded[0].environment, "poisson");
  EXPECT_EQ(expanded[1].id, "tiny@bursty-orbit");
  EXPECT_EQ(expanded[1].environment, "bursty-orbit");
  EXPECT_EQ(expanded[2].id, "tiny@common-cause");
  for (const auto& spec : expanded) EXPECT_NO_THROW(spec.validate());
  EXPECT_THROW(with_environments({tiny_spec()}, {}), std::invalid_argument);
  EXPECT_THROW(with_environments({tiny_spec()}, {"nope"}),
               std::invalid_argument);
}

TEST(Experiment, EnvironmentChangesResultsButKeepsPoissonBitIdentical) {
  // Same spec, same seeds: the poisson-environment sweep must equal
  // the default-environment sweep bit-for-bit, while a bursty
  // environment must actually change the injected fault process.
  const auto spec = tiny_spec();
  sim::MonteCarloConfig config;
  config.runs = 200;
  config.seed = 0xE2E;
  const auto base = run_experiment(spec, config);

  auto poisson_spec = spec;
  poisson_spec.environment = "poisson";
  const auto poisson = run_experiment(poisson_spec, config);
  EXPECT_DOUBLE_EQ(base.cells[0][1].energy_all.mean(),
                   poisson.cells[0][1].energy_all.mean());
  EXPECT_EQ(base.cells[0][1].completion.successes(),
            poisson.cells[0][1].completion.successes());

  auto bursty_spec = spec;
  bursty_spec.environment = "bursty-storm";
  const auto bursty = run_experiment(bursty_spec, config);
  EXPECT_NE(base.cells[0][1].faults.mean(), bursty.cells[0][1].faults.mean());
}

}  // namespace
}  // namespace adacheck::harness
