#include "model/task.hpp"

#include <gtest/gtest.h>

namespace adacheck::model {
namespace {

TEST(TaskSpec, UtilizationMatchesPaperDefinition) {
  TaskSpec t{7'600.0, 10'000.0, 0.0, 5, "t"};
  EXPECT_DOUBLE_EQ(t.utilization(1.0), 0.76);  // U = N/(f1*D)
  EXPECT_DOUBLE_EQ(t.utilization(2.0), 0.38);  // U = N/(f2*D)
}

TEST(TaskSpec, UtilizationRejectsBadSpeed) {
  TaskSpec t{100.0, 10.0, 0.0, 0, "t"};
  EXPECT_THROW(t.utilization(0.0), std::invalid_argument);
  EXPECT_THROW(t.utilization(-1.0), std::invalid_argument);
}

TEST(TaskSpec, ValidityRules) {
  TaskSpec good{100.0, 10.0, 0.0, 1, "g"};
  EXPECT_TRUE(good.valid());
  EXPECT_NO_THROW(good.validate());

  TaskSpec zero_cycles = good;
  zero_cycles.cycles = 0.0;
  EXPECT_FALSE(zero_cycles.valid());
  EXPECT_THROW(zero_cycles.validate(), std::invalid_argument);

  TaskSpec bad_deadline = good;
  bad_deadline.deadline = -1.0;
  EXPECT_FALSE(bad_deadline.valid());

  TaskSpec bad_k = good;
  bad_k.fault_tolerance = -2;
  EXPECT_FALSE(bad_k.valid());

  TaskSpec short_period = good;
  short_period.period = 5.0;  // period < deadline violates D <= T
  EXPECT_FALSE(short_period.valid());

  TaskSpec ok_period = good;
  ok_period.period = 20.0;
  EXPECT_TRUE(ok_period.valid());
}

TEST(TaskFromUtilization, RoundTripsThroughU) {
  const auto t = task_from_utilization(0.76, 1.0, 10'000.0, 5);
  EXPECT_DOUBLE_EQ(t.cycles, 7'600.0);
  EXPECT_DOUBLE_EQ(t.utilization(1.0), 0.76);
  EXPECT_EQ(t.fault_tolerance, 5);

  // Table 2 style: U defined against the high speed.
  const auto t2 = task_from_utilization(0.76, 2.0, 10'000.0, 5);
  EXPECT_DOUBLE_EQ(t2.cycles, 15'200.0);
}

TEST(TaskFromUtilization, RejectsBadInputs) {
  EXPECT_THROW(task_from_utilization(0.0, 1.0, 100.0, 0),
               std::invalid_argument);
  EXPECT_THROW(task_from_utilization(0.5, 0.0, 100.0, 0),
               std::invalid_argument);
  EXPECT_THROW(task_from_utilization(0.5, 1.0, 0.0, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace adacheck::model
