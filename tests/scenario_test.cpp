// The scenario subsystem: schema parsing, path-qualified validation
// errors with "did you mean" suggestions, binder lowering onto
// harness::ExperimentSpec, and the acceptance pin — a scenario-driven
// sweep is byte-identical in its cell section to the programmatic
// equivalent at any thread count.
#include "scenario/spec.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "harness/json_report.hpp"
#include "harness/paper_params.hpp"
#include "harness/sweep.hpp"
#include "scenario/binder.hpp"

namespace adacheck::scenario {
namespace {

constexpr const char* kMinimal = R"json({
  "schema": "adacheck-scenario-v1",
  "name": "mini",
  "experiments": [
    {"id": "grid", "fault_tolerance": 5,
     "schemes": ["Poisson", "A_D_S"],
     "grid": {"utilization": [0.76, 0.8], "lambda": [1.4e-3, 1.6e-3]}}
  ]
})json";

TEST(ScenarioParse, DefaultsApplied) {
  const auto scenario = parse_scenario_text(kMinimal);
  EXPECT_EQ(scenario.name, "mini");
  EXPECT_EQ(scenario.title, "mini");
  EXPECT_EQ(scenario.config.runs, 10'000);
  EXPECT_EQ(scenario.config.seed, 0x5EED5EEDu);
  EXPECT_FALSE(scenario.config.validate);
  EXPECT_EQ(scenario.config.threads, 0);
  EXPECT_TRUE(scenario.output.empty());
  ASSERT_EQ(scenario.experiments.size(), 1u);
  const auto& exp = scenario.experiments[0];
  EXPECT_EQ(exp.title, "grid");
  EXPECT_DOUBLE_EQ(exp.costs.store, 2.0);
  EXPECT_DOUBLE_EQ(exp.costs.compare, 20.0);
  EXPECT_DOUBLE_EQ(exp.deadline, 10'000.0);
  EXPECT_DOUBLE_EQ(exp.speed_ratio, 2.0);
  EXPECT_DOUBLE_EQ(exp.voltage_kappa, 4.0);
  EXPECT_EQ(exp.util_level, 0u);
  EXPECT_EQ(exp.environment, "poisson");
  EXPECT_TRUE(exp.environments.empty());
}

TEST(ScenarioParse, GridExpandsRowMajor) {
  const auto specs = bind_experiments(parse_scenario_text(kMinimal));
  ASSERT_EQ(specs.size(), 1u);
  const auto& rows = specs[0].rows;
  ASSERT_EQ(rows.size(), 4u);  // utilization outer, lambda inner
  EXPECT_DOUBLE_EQ(rows[0].utilization, 0.76);
  EXPECT_DOUBLE_EQ(rows[0].lambda, 1.4e-3);
  EXPECT_DOUBLE_EQ(rows[1].utilization, 0.76);
  EXPECT_DOUBLE_EQ(rows[1].lambda, 1.6e-3);
  EXPECT_DOUBLE_EQ(rows[2].utilization, 0.8);
  EXPECT_DOUBLE_EQ(rows[2].lambda, 1.4e-3);
  EXPECT_DOUBLE_EQ(rows[3].utilization, 0.8);
  EXPECT_DOUBLE_EQ(rows[3].lambda, 1.6e-3);
  EXPECT_EQ(specs[0].schemes,
            (std::vector<std::string>{"Poisson", "A_D_S"}));
}

TEST(ScenarioParse, ExplicitRowsPreserved) {
  const auto scenario = parse_scenario_text(R"json({
    "schema": "adacheck-scenario-v1", "name": "rows",
    "experiments": [
      {"id": "r", "fault_tolerance": 1, "schemes": ["A_D"],
       "rows": [{"utilization": 0.92, "lambda": 1e-4},
                {"utilization": 0.95, "lambda": 2e-4}]}
    ]})json");
  const auto specs = bind_experiments(scenario);
  ASSERT_EQ(specs[0].rows.size(), 2u);
  EXPECT_DOUBLE_EQ(specs[0].rows[1].utilization, 0.95);
  EXPECT_DOUBLE_EQ(specs[0].rows[1].lambda, 2e-4);
}

TEST(ScenarioBind, TableReferenceMatchesPaperParams) {
  const auto scenario = parse_scenario_text(R"json({
    "schema": "adacheck-scenario-v1", "name": "t",
    "experiments": [{"table": "table1a"}]})json");
  const auto specs = bind_experiments(scenario);
  const auto reference = harness::table1a();
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].id, reference.id);
  EXPECT_EQ(specs[0].title, reference.title);
  EXPECT_EQ(specs[0].schemes, reference.schemes);
  EXPECT_EQ(specs[0].rows.size(), reference.rows.size());
  EXPECT_EQ(specs[0].environment, "poisson");
}

TEST(ScenarioBind, EnvironmentAxisUsesWithEnvironmentsNaming) {
  const auto scenario = parse_scenario_text(R"json({
    "schema": "adacheck-scenario-v1", "name": "axis",
    "experiments": [
      {"table": "table1a",
       "environments": ["poisson", "bursty-orbit"]}
    ]})json");
  const auto specs = bind_experiments(scenario);
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].id, "table1a@poisson");
  EXPECT_EQ(specs[0].environment, "poisson");
  EXPECT_EQ(specs[1].id, "table1a@bursty-orbit");
  EXPECT_EQ(specs[1].environment, "bursty-orbit");
}

TEST(ScenarioParse, OutputObjectAndMetricsBlock) {
  const auto scenario = parse_scenario_text(R"json({
    "schema": "adacheck-scenario-v1", "name": "m",
    "output": {"report": "m_sweep.json", "jsonl": "m_cells.jsonl"},
    "metrics": ["tails", "checkpoints"],
    "experiments": [{"table": "table1a"}]})json");
  EXPECT_EQ(scenario.output, "m_sweep.json");
  EXPECT_EQ(scenario.output_jsonl, "m_cells.jsonl");
  EXPECT_EQ(scenario.metrics,
            (std::vector<std::string>{"tails", "checkpoints"}));
  // The binder lowers the names onto a sim::MetricSuite.
  const auto config = monte_carlo_config(scenario);
  ASSERT_NE(config.metrics, nullptr);
  EXPECT_EQ(config.metrics->names(), scenario.metrics);

  // The plain-string form still works and implies no JSONL stream.
  const auto plain = parse_scenario_text(R"json({
    "schema": "adacheck-scenario-v1", "name": "p",
    "output": "p_sweep.json",
    "experiments": [{"table": "table1a"}]})json");
  EXPECT_EQ(plain.output, "p_sweep.json");
  EXPECT_TRUE(plain.output_jsonl.empty());
  EXPECT_EQ(monte_carlo_config(plain).metrics, nullptr);
}

TEST(ScenarioBind, MonteCarloConfigCarriesTheKnobs) {
  const auto scenario = parse_scenario_text(R"json({
    "schema": "adacheck-scenario-v1", "name": "cfg",
    "config": {"runs": 123, "seed": 77, "validate": true, "threads": 2},
    "experiments": [{"table": "table1a"}]})json");
  const auto config = monte_carlo_config(scenario);
  EXPECT_EQ(config.runs, 123);
  EXPECT_EQ(config.seed, 77u);
  EXPECT_TRUE(config.validate);
  EXPECT_EQ(config.threads, 2);
}

TEST(ScenarioParse, BudgetDisabledByDefault) {
  const auto scenario = parse_scenario_text(kMinimal);
  EXPECT_FALSE(scenario.budget.enabled());
  EXPECT_FALSE(monte_carlo_config(scenario).budget.enabled());
}

TEST(ScenarioParse, BudgetObjectParsedAndLowered) {
  const auto scenario = parse_scenario_text(R"json({
    "schema": "adacheck-scenario-v1", "name": "budgeted",
    "config": {"runs": 5000},
    "budget": {"target_p_halfwidth": 0.02, "target_e_rel_halfwidth": 0.05,
               "min_runs": 256, "max_runs": 2048},
    "experiments": [{"table": "table1a"}]})json");
  EXPECT_TRUE(scenario.budget.enabled());
  EXPECT_DOUBLE_EQ(scenario.budget.target_p_halfwidth, 0.02);
  EXPECT_DOUBLE_EQ(scenario.budget.target_e_rel_halfwidth, 0.05);
  EXPECT_EQ(scenario.budget.min_runs, 256);
  EXPECT_EQ(scenario.budget.max_runs, 2048);
  // The binder lowers the budget into the Monte-Carlo config, so every
  // cell of the scenario runs under it.
  const auto config = monte_carlo_config(scenario);
  EXPECT_TRUE(config.budget.enabled());
  EXPECT_DOUBLE_EQ(config.budget.target_p_halfwidth, 0.02);
  EXPECT_EQ(config.budget.resolved_max(config.runs), 2048);
}

// --- the acceptance pin --------------------------------------------------

TEST(ScenarioRun, ByteIdenticalToProgrammaticTableSweep) {
  auto scenario = parse_scenario_text(R"json({
    "schema": "adacheck-scenario-v1", "name": "table1",
    "config": {"runs": 120},
    "experiments": [{"table": "table1a"}, {"table": "table1b"}]})json");

  sim::MonteCarloConfig config;
  config.runs = 120;
  const auto programmatic =
      harness::run_sweep({harness::table1a(), harness::table1b()}, config);

  const harness::JsonReportOptions no_perf{/*include_perf=*/false};
  EXPECT_EQ(harness::sweep_json(run_scenario(scenario), no_perf),
            harness::sweep_json(programmatic, no_perf));
}

TEST(ScenarioRun, ByteIdenticalAcrossThreadCounts) {
  auto scenario = parse_scenario_text(kMinimal);
  scenario.config.runs = 300;
  scenario.config.threads = 1;
  const harness::JsonReportOptions no_perf{/*include_perf=*/false};
  const std::string serial =
      harness::sweep_json(run_scenario(scenario), no_perf);
  scenario.config.threads = 4;
  const std::string parallel =
      harness::sweep_json(run_scenario(scenario), no_perf);
  EXPECT_EQ(serial, parallel);
}

// --- DAG graph sections ---------------------------------------------------

constexpr const char* kGraphScenario = R"json({
  "schema": "adacheck-scenario-v1",
  "name": "dag",
  "output": "dag_sweep.json",
  "graphs": [
    {"id": "diamond",
     "graph": {
       "period": 18000, "deadline": 17000,
       "nodes": [
         {"name": "split", "cycles": 1500, "fault_tolerance": 2},
         {"name": "left", "cycles": 4000, "fault_tolerance": 2,
          "resources": ["bus"]},
         {"name": "right", "cycles": 3500, "fault_tolerance": 2,
          "resources": ["bus"]},
         {"name": "join", "cycles": 1000, "fault_tolerance": 2}
       ],
       "edges": [
         {"from": "split", "to": "left"}, {"from": "split", "to": "right"},
         {"from": "left", "to": "join"}, {"from": "right", "to": "join"}
       ],
       "resources": [{"name": "bus", "capacity": 1}]},
     "workers": 2,
     "schedulers": ["edf", "critical-path"],
     "lambdas": [1e-4, 8e-4]}
  ]})json";

TEST(ScenarioParse, GraphDefaultsAndBinding) {
  const auto scenario = parse_scenario_text(kGraphScenario);
  EXPECT_TRUE(scenario.experiments.empty());
  ASSERT_EQ(scenario.graphs.size(), 1u);
  const auto& parsed = scenario.graphs[0];
  EXPECT_EQ(parsed.title, "diamond");  // defaults to the id
  EXPECT_EQ(parsed.instances, 8);
  EXPECT_TRUE(parsed.skip_late_jobs);
  EXPECT_EQ(parsed.environment, "poisson");

  const auto graphs = bind_graphs(scenario);
  ASSERT_EQ(graphs.size(), 1u);
  const auto& spec = graphs[0];
  EXPECT_EQ(spec.id, "diamond");
  EXPECT_EQ(spec.graph.name, "diamond");
  EXPECT_EQ(spec.workers, 2);
  ASSERT_EQ(spec.graph.nodes.size(), 4u);
  EXPECT_EQ(spec.graph.edges.size(), 4u);
  // Resource name references were resolved to declared-list indices.
  ASSERT_EQ(spec.graph.nodes[1].resources.size(), 1u);
  EXPECT_EQ(spec.graph.resources[spec.graph.nodes[1].resources[0]].name,
            "bus");
  EXPECT_EQ(spec.schedulers,
            (std::vector<std::string>{"edf", "critical-path"}));
  EXPECT_EQ(spec.lambdas, (std::vector<double>{1e-4, 8e-4}));
  EXPECT_NO_THROW(spec.validate());
}

TEST(ScenarioBind, GraphEnvironmentAxisExpandsLikeExperiments) {
  auto scenario = parse_scenario_text(kGraphScenario);
  scenario.graphs[0].environments = {"poisson", "bursty-orbit"};
  const auto graphs = bind_graphs(scenario);
  ASSERT_EQ(graphs.size(), 2u);
  EXPECT_EQ(graphs[0].id, "diamond@poisson");
  EXPECT_EQ(graphs[0].environment, "poisson");
  EXPECT_EQ(graphs[1].id, "diamond@bursty-orbit");
  EXPECT_EQ(graphs[1].environment, "bursty-orbit");
}

// --- path-qualified validation errors ------------------------------------

void expect_scenario_error(std::string_view text,
                           const std::string& expected_path,
                           std::string_view message_piece) {
  try {
    parse_scenario_text(text);
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    EXPECT_EQ(e.path(), expected_path) << e.what();
    EXPECT_NE(std::string(e.what()).find(message_piece), std::string::npos)
        << e.what();
  }
}

TEST(ScenarioErrors, UnknownEnvironmentSuggestsTheClosestName) {
  try {
    parse_scenario_text(R"json({
      "schema": "adacheck-scenario-v1", "name": "x",
      "experiments": [
        {"id": "a", "schemes": ["A_D"], "environment": "bursty-orbitt",
         "grid": {"utilization": [0.8], "lambda": [1e-3]}}
      ]})json");
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    EXPECT_STREQ(e.what(),
                 "experiments[0].environment: unknown name "
                 "\"bursty-orbitt\", did you mean \"bursty-orbit\"?");
  }
}

TEST(ScenarioErrors, MetricsAndOutputViolations) {
  expect_scenario_error(R"json({
    "schema": "adacheck-scenario-v1", "name": "x",
    "metrics": ["tailz"],
    "experiments": [{"table": "table1a"}]})json",
                        "metrics[0]", "did you mean \"tails\"?");
  expect_scenario_error(R"json({
    "schema": "adacheck-scenario-v1", "name": "x",
    "metrics": ["tails", "tails"],
    "experiments": [{"table": "table1a"}]})json",
                        "metrics[1]", "duplicate metric recorder");
  expect_scenario_error(R"json({
    "schema": "adacheck-scenario-v1", "name": "x",
    "output": 7,
    "experiments": [{"table": "table1a"}]})json",
                        "output", "expected string");
  expect_scenario_error(R"json({
    "schema": "adacheck-scenario-v1", "name": "x",
    "output": {"reprot": "a.json"},
    "experiments": [{"table": "table1a"}]})json",
                        "output", "did you mean \"report\"?");
}

TEST(ScenarioErrors, UnknownSchemeAndTableAndKey) {
  expect_scenario_error(R"json({
    "schema": "adacheck-scenario-v1", "name": "x",
    "experiments": [
      {"id": "a", "schemes": ["A_D", "Poison"],
       "grid": {"utilization": [0.8], "lambda": [1e-3]}}
    ]})json",
                        "experiments[0].schemes[1]",
                        "did you mean \"Poisson\"?");
  expect_scenario_error(R"json({
    "schema": "adacheck-scenario-v1", "name": "x",
    "experiments": [{"table": "table5a"}]})json",
                        "experiments[0].table", "unknown name \"table5a\"");
  expect_scenario_error(R"json({
    "schema": "adacheck-scenario-v1", "name": "x",
    "experiments": [
      {"id": "a", "scheems": ["A_D"],
       "grid": {"utilization": [0.8], "lambda": [1e-3]}}
    ]})json",
                        "experiments[0]",
                        "unknown key \"scheems\", did you mean \"schemes\"?");
}

TEST(ScenarioErrors, BudgetViolations) {
  expect_scenario_error(R"json({
    "schema": "adacheck-scenario-v1", "name": "x",
    "budget": {"target_p_halfwith": 0.02},
    "experiments": [{"table": "table1a"}]})json",
                        "budget",
                        "did you mean \"target_p_halfwidth\"?");
  expect_scenario_error(R"json({
    "schema": "adacheck-scenario-v1", "name": "x",
    "budget": {"min_runs": 256},
    "experiments": [{"table": "table1a"}]})json",
                        "budget", "set at least one of");
  expect_scenario_error(R"json({
    "schema": "adacheck-scenario-v1", "name": "x",
    "budget": {"target_p_halfwidth": 0.02, "min_runs": 512, "max_runs": 256},
    "experiments": [{"table": "table1a"}]})json",
                        "budget.min_runs", "must be <= max_runs");
  expect_scenario_error(R"json({
    "schema": "adacheck-scenario-v1", "name": "x",
    "budget": {"target_p_halfwidth": -0.5},
    "experiments": [{"table": "table1a"}]})json",
                        "budget.target_p_halfwidth", "must be > 0");
  expect_scenario_error(R"json({
    "schema": "adacheck-scenario-v1", "name": "x",
    "budget": {"target_p_halfwidth": 0.02, "max_runs": 0},
    "experiments": [{"table": "table1a"}]})json",
                        "budget.max_runs", "must be >= 1");
}

TEST(ScenarioErrors, TypeAndRangeViolations) {
  expect_scenario_error(R"json({
    "schema": "adacheck-scenario-v1", "name": "x",
    "config": {"runs": "many"},
    "experiments": [{"table": "table1a"}]})json",
                        "config.runs", "expected number, got string");
  expect_scenario_error(R"json({
    "schema": "adacheck-scenario-v1", "name": "x",
    "config": {"seed": -1},
    "experiments": [{"table": "table1a"}]})json",
                        "config.seed", "must be >= 0");
  expect_scenario_error(R"json({
    "schema": "adacheck-scenario-v1", "name": "x",
    "experiments": [
      {"id": "a", "schemes": ["A_D"], "util_level": 2,
       "grid": {"utilization": [0.8], "lambda": [1e-3]}}
    ]})json",
                        "experiments[0].util_level", "must be 0 (f1) or 1");
  expect_scenario_error(R"json({
    "schema": "adacheck-scenario-v1", "name": "x",
    "experiments": [
      {"id": "a", "schemes": ["A_D"],
       "grid": {"utilization": [], "lambda": [1e-3]}}
    ]})json",
                        "experiments[0].grid.utilization",
                        "must not be empty");
}

TEST(ScenarioErrors, StructuralViolations) {
  expect_scenario_error(R"json({"name": "x", "experiments": []})json", "",
                        "missing required key \"schema\"");
  expect_scenario_error(R"json({
    "schema": "adacheck-sweep-v2", "name": "x",
    "experiments": [{"table": "table1a"}]})json",
                        "schema", "unsupported schema");
  expect_scenario_error(R"json({
    "schema": "adacheck-scenario-v1", "name": "x",
    "experiments": [
      {"id": "a", "schemes": ["A_D"],
       "rows": [{"utilization": 0.8, "lambda": 1e-3}],
       "grid": {"utilization": [0.8], "lambda": [1e-3]}}
    ]})json",
                        "experiments[0]", "exactly one of \"rows\"");
  expect_scenario_error(R"json({
    "schema": "adacheck-scenario-v1", "name": "x",
    "experiments": [
      {"id": "a", "schemes": ["A_D"], "environment": "poisson",
       "environments": ["poisson"],
       "grid": {"utilization": [0.8], "lambda": [1e-3]}}
    ]})json",
                        "experiments[0]", "at most one of \"environment\"");
  expect_scenario_error(R"json({
    "schema": "adacheck-scenario-v1", "name": "x",
    "experiments": [{"table": "table1a"}, {"table": "table1a"}]})json",
                        "experiments", "duplicate experiment id");
  expect_scenario_error(R"json({
    "schema": "adacheck-scenario-v1", "name": "x",
    "experiments": [
      {"table": "table1a", "deadline": 5000}
    ]})json",
                        "experiments[0]", "unknown key \"deadline\"");
}

TEST(ScenarioErrors, GraphViolations) {
  // Unknown scheduler name, with a did-you-mean suggestion.
  expect_scenario_error(R"json({
    "schema": "adacheck-scenario-v1", "name": "x",
    "graphs": [
      {"id": "g", "schedulers": ["edff"], "lambdas": [1e-3],
       "graph": {"period": 100, "nodes": [{"name": "a", "cycles": 10}]}}
    ]})json",
                        "graphs[0].schedulers[0]", "did you mean \"edf\"?");
  // Edge endpoints must name declared nodes.
  expect_scenario_error(R"json({
    "schema": "adacheck-scenario-v1", "name": "x",
    "graphs": [
      {"id": "g", "schedulers": ["edf"], "lambdas": [1e-3],
       "graph": {"period": 100,
                 "nodes": [{"name": "split", "cycles": 10},
                           {"name": "join", "cycles": 10}],
                 "edges": [{"from": "split", "to": "jion"}]}}
    ]})json",
                        "graphs[0].graph.edges[0].to",
                        "did you mean \"join\"?");
  // Node resource references must name declared resources.
  expect_scenario_error(R"json({
    "schema": "adacheck-scenario-v1", "name": "x",
    "graphs": [
      {"id": "g", "schedulers": ["edf"], "lambdas": [1e-3],
       "graph": {"period": 100,
                 "resources": [{"name": "bus"}],
                 "nodes": [{"name": "a", "cycles": 10,
                            "resources": ["buss"]}]}}
    ]})json",
                        "graphs[0].graph.nodes[0].resources[0]",
                        "did you mean \"bus\"?");
  // Unknown node keys get the same did-you-mean treatment.
  expect_scenario_error(R"json({
    "schema": "adacheck-scenario-v1", "name": "x",
    "graphs": [
      {"id": "g", "schedulers": ["edf"], "lambdas": [1e-3],
       "graph": {"period": 100, "nodes": [{"name": "a", "cyles": 10}]}}
    ]})json",
                        "graphs[0].graph.nodes[0]",
                        "did you mean \"cycles\"?");
  // Cyclic graphs are rejected at parse time, path spelled out.
  expect_scenario_error(R"json({
    "schema": "adacheck-scenario-v1", "name": "x",
    "graphs": [
      {"id": "g", "schedulers": ["edf"], "lambdas": [1e-3],
       "graph": {"period": 100,
                 "nodes": [{"name": "a", "cycles": 10},
                           {"name": "b", "cycles": 10}],
                 "edges": [{"from": "a", "to": "b"},
                           {"from": "b", "to": "a"}]}}
    ]})json",
                        "graphs[0].graph", "cycle: a -> b -> a");
  // Ids must be unique across experiments and graphs together.
  expect_scenario_error(R"json({
    "schema": "adacheck-scenario-v1", "name": "x",
    "experiments": [{"table": "table1a"}],
    "graphs": [
      {"id": "table1a", "schedulers": ["edf"], "lambdas": [1e-3],
       "graph": {"period": 100, "nodes": [{"name": "a", "cycles": 10}]}}
    ]})json",
                        "graphs", "duplicate experiment id \"table1a\"");
  // A scenario needs at least one of the two sections.
  expect_scenario_error(R"json({
    "schema": "adacheck-scenario-v1", "name": "x",
    "experiments": [], "graphs": []})json",
                        "",
                        "at least one of \"experiments\" or \"graphs\"");
}

TEST(ScenarioErrors, SyntaxErrorsPropagateWithPosition) {
  try {
    parse_scenario_text("{\"schema\": \"adacheck-scenario-v1\",");
    FAIL() << "expected ParseError";
  } catch (const util::json::ParseError& e) {
    EXPECT_EQ(e.line(), 1);
    EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos);
  }
}

// --- shipped scenario files ----------------------------------------------

TEST(ScenarioFiles, EveryShippedScenarioValidatesAndBinds) {
  const std::filesystem::path dir = ADACHECK_SCENARIO_DIR;
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  std::size_t count = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".json") continue;
    // Campaign documents live in the same directory but have their own
    // schema and tests (campaign_test.cpp).
    if (entry.path().filename().string().rfind("campaign_", 0) == 0) {
      continue;
    }
    ++count;
    SCOPED_TRACE(entry.path().string());
    const auto scenario = load_scenario_file(entry.path().string());
    const auto specs = bind_experiments(scenario);
    const auto graphs = bind_graphs(scenario);
    EXPECT_FALSE(specs.empty() && graphs.empty());
    std::size_t cells = 0;
    for (const auto& spec : specs) {
      EXPECT_NO_THROW(spec.validate());
      cells += spec.rows.size() * spec.schemes.size();
    }
    for (const auto& graph : graphs) {
      EXPECT_NO_THROW(graph.validate());
      cells += graph.lambdas.size() * graph.schedulers.size();
    }
    EXPECT_GT(cells, 0u);
    EXPECT_FALSE(scenario.output.empty())
        << "shipped scenarios should name their report file";
  }
  EXPECT_GE(count, 12u);  // tables 1-4, paper_tables, environments,
                          // satellite, uav, smoke, dag_*
}

TEST(ScenarioFiles, MissingFileErrorNamesThePath) {
  try {
    load_scenario_file("/nonexistent/nope.json");
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("/nonexistent/nope.json"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace adacheck::scenario
