#include "util/tables.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace adacheck::util {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "x"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  const std::string s = t.to_string();
  // Every rendered line has the same width.
  std::istringstream in(s);
  std::string line;
  std::size_t width = 0;
  while (std::getline(in, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width) << line;
  }
  EXPECT_NE(s.find("longer"), std::string::npos);
}

TEST(TextTable, RejectsWidthMismatch) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TextTable, RulesRender) {
  TextTable t({"h"});
  t.add_row({"x"});
  t.add_rule();
  t.add_row({"y"});
  const std::string s = t.to_string();
  // header rule + explicit rule
  std::size_t rules = 0, pos = 0;
  while ((pos = s.find("|-", pos)) != std::string::npos) {
    ++rules;
    pos += 2;
  }
  EXPECT_EQ(rules, 2u);
}

TEST(CsvWriter, QuotesSpecials) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.write_row({"plain", "has,comma", "has\"quote", "multi\nline"});
  EXPECT_EQ(os.str(),
            "plain,\"has,comma\",\"has\"\"quote\",\"multi\nline\"\n");
}

TEST(CsvWriter, EmptyCellsPreserved) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.write_row({"", "b", ""});
  EXPECT_EQ(os.str(), ",b,\n");
}

TEST(Formatters, FixedAndSci) {
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_fixed(-1.0, 0), "-1");
  EXPECT_EQ(fmt_sci(0.0014, 1), "1.4e-03");
}

TEST(Formatters, ProbMatchesPaperStyle) {
  EXPECT_EQ(fmt_prob(0.9991), "0.9991");
  EXPECT_EQ(fmt_prob(1.0), "1.0000");
  EXPECT_EQ(fmt_prob(std::nan("")), "NaN");
}

TEST(Formatters, EnergyMatchesPaperStyle) {
  EXPECT_EQ(fmt_energy(57563.7), "57564");
  EXPECT_EQ(fmt_energy(std::nan("")), "NaN");
}

}  // namespace
}  // namespace adacheck::util
