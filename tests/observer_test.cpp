// Sweep observers: exactly-once cell callbacks at any thread count,
// monotonic progress, cooperative cancellation, clean drain of the
// chunk queue when an observer throws, and the JSONL cell stream's
// ordering + byte-identity guarantees.
#include "sim/observer.hpp"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "harness/stream_report.hpp"
#include "harness/sweep.hpp"
#include "sim/monte_carlo.hpp"
#include "tests/test_helpers.hpp"

namespace adacheck::sim {
namespace {

using testutil::basic_setup;

PolicyFactory scripted_factory(const SimSetup& setup, double interval) {
  const Decision plan = testutil::plain_plan(setup, interval);
  return [plan] { return std::make_unique<testutil::ScriptedPolicy>(plan); };
}

/// Three cells with enough runs for several chunks each.
std::vector<CellJob> three_jobs(int runs = 600) {
  const auto setup = basic_setup(2'000.0, 2'600.0, 5, 2e-3);
  const auto factory = scripted_factory(setup, 150.0);
  std::vector<CellJob> jobs;
  for (int j = 0; j < 3; ++j) {
    MonteCarloConfig config;
    config.runs = runs;
    config.seed = 0x100 + static_cast<std::uint64_t>(j);
    jobs.push_back({setup, factory, config});
  }
  return jobs;
}

/// Records every event; callbacks are serialized by the runner, so no
/// locking here — that guarantee is itself under test (a data race
/// would trip TSan/ASan and the exactly-once counts below).
class CountingObserver : public ISweepObserver {
 public:
  void on_cell_start(std::size_t cell) override { ++starts[cell]; }
  void on_cell_done(std::size_t cell, const CellResult& result) override {
    ++dones[cell];
    results[cell] = result;
  }
  void on_progress(const SweepProgress& progress) override {
    EXPECT_GE(progress.cells_done, last.cells_done);
    EXPECT_GE(progress.runs_done, last.runs_done);
    last = progress;
    ++progress_calls;
  }

  std::map<std::size_t, int> starts, dones;
  std::map<std::size_t, CellResult> results;
  SweepProgress last;
  int progress_calls = 0;
};

TEST(Observer, CallbacksFireExactlyOncePerCellAtAnyThreadCount) {
  const auto jobs = three_jobs();
  std::vector<CellResult> reference;
  for (const int threads : {1, 4}) {
    CountingObserver observer;
    RunCellsOptions options;
    options.threads = threads;
    options.observer = &observer;
    const auto results = run_cells_ex(jobs, options);

    ASSERT_EQ(results.size(), jobs.size());
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      EXPECT_EQ(observer.starts[j], 1) << "cell " << j << " @" << threads;
      EXPECT_EQ(observer.dones[j], 1) << "cell " << j << " @" << threads;
      // The observed result is the final merged cell.
      EXPECT_EQ(observer.results[j].stats.completion.successes(),
                results[j].stats.completion.successes());
    }
    EXPECT_EQ(observer.last.cells_done, jobs.size());
    EXPECT_EQ(observer.last.cells_total, jobs.size());
    EXPECT_EQ(observer.last.runs_done, observer.last.runs_total);
    EXPECT_EQ(observer.last.runs_total, 3 * 600);
    // One progress tick per chunk: 600 runs = 3 chunks per cell.
    EXPECT_EQ(observer.progress_calls, 9);

    if (threads == 1) {
      reference = results;
    } else {
      for (std::size_t j = 0; j < jobs.size(); ++j) {
        EXPECT_EQ(results[j].stats.completion.successes(),
                  reference[j].stats.completion.successes());
        EXPECT_DOUBLE_EQ(results[j].stats.energy_all.mean(),
                         reference[j].stats.energy_all.mean());
      }
    }
  }
}

TEST(Observer, ObserverPathMatchesNullPathBitForBit) {
  const auto jobs = three_jobs();
  const auto null_path = run_cells_ex(jobs, {});
  CountingObserver observer;
  RunCellsOptions options;
  options.threads = 4;
  options.observer = &observer;
  const auto observed = run_cells_ex(jobs, options);
  ASSERT_EQ(null_path.size(), observed.size());
  for (std::size_t j = 0; j < null_path.size(); ++j) {
    EXPECT_EQ(null_path[j].stats.completion.successes(),
              observed[j].stats.completion.successes());
    EXPECT_DOUBLE_EQ(null_path[j].stats.energy_all.mean(),
                     observed[j].stats.energy_all.mean());
    EXPECT_DOUBLE_EQ(null_path[j].stats.energy_all.variance(),
                     observed[j].stats.energy_all.variance());
  }
}

// --- cancellation --------------------------------------------------------

/// Requests stop as soon as the first cell completes.
class CancelAfterFirstCell : public ISweepObserver {
 public:
  explicit CancelAfterFirstCell(CancellationToken& token) : token_(token) {}
  void on_cell_done(std::size_t, const CellResult&) override {
    token_.request_stop();
  }

 private:
  CancellationToken& token_;
};

TEST(Observer, CancellationThrowsSweepCancelledWithoutDeadlock) {
  for (const int threads : {1, 4}) {
    const auto jobs = three_jobs();
    CancellationToken token;
    CancelAfterFirstCell observer(token);
    RunCellsOptions options;
    options.threads = threads;
    options.observer = &observer;
    options.cancel = &token;
    EXPECT_THROW(run_cells_ex(jobs, options), SweepCancelled) << threads;
  }
  // The pool drained cleanly: a fresh sweep on the same shared pool
  // still works and still produces complete results.
  const auto after = run_cells_ex(three_jobs(), {});
  EXPECT_EQ(after.size(), 3u);
  EXPECT_EQ(after[0].stats.completion.trials(), 600u);
}

TEST(Observer, PreCancelledTokenRunsNothing) {
  CancellationToken token;
  token.request_stop();
  RunCellsOptions options;
  options.cancel = &token;  // cancel-only: no observer at all
  EXPECT_THROW(run_cells_ex(three_jobs(), options), SweepCancelled);
}

// --- exception paths (the drain bugfix regression) -----------------------

/// Throws from the Nth on_cell_done callback.
class ThrowingObserver : public ISweepObserver {
 public:
  void on_cell_done(std::size_t, const CellResult&) override {
    throw std::runtime_error("observer exploded");
  }
};

TEST(Observer, ThrowingObserverPropagatesWithoutDeadlockingTheQueue) {
  for (const int threads : {1, 4}) {
    ThrowingObserver observer;
    RunCellsOptions options;
    options.threads = threads;
    options.observer = &observer;
    try {
      run_cells_ex(three_jobs(), options);
      FAIL() << "expected the observer's exception (threads=" << threads
             << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "observer exploded");
    }
  }
  // No leaked queue state: the shared pool immediately serves a fresh,
  // complete sweep.
  const auto after = run_cells_ex(three_jobs(), {});
  EXPECT_EQ(after[2].stats.completion.trials(), 600u);
}

/// A recorder whose observe() throws mid-cell.
class ExplodingRecorder final : public IMetricRecorder {
 public:
  std::string_view name() const override { return "exploding"; }
  void observe(const RunView&) override {
    throw std::runtime_error("recorder exploded");
  }
  void merge(const IMetricRecorder&) override {}
  void emit(MetricValues::Group&) const override {}
};

TEST(Observer, ThrowingRecorderPropagatesThroughTheTaskGroup) {
  auto suite = std::make_shared<MetricSuite>();
  suite->add("exploding", [](const SimSetup&) {
    return std::make_unique<ExplodingRecorder>();
  });
  auto jobs = three_jobs();
  for (auto& job : jobs) job.config.metrics = suite;
  for (const int threads : {1, 4}) {
    RunCellsOptions options;
    options.threads = threads;
    try {
      run_cells_ex(jobs, options);
      FAIL() << "expected the recorder's exception (threads=" << threads
             << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "recorder exploded");
    }
  }
  const auto after = run_cells_ex(three_jobs(), {});
  EXPECT_EQ(after[1].stats.completion.trials(), 600u);
}

// --- the JSONL cell stream -----------------------------------------------

harness::ExperimentSpec jsonl_spec() {
  harness::ExperimentSpec spec;
  spec.id = "jsonltest";
  spec.title = "jsonl stream grid";
  spec.costs = model::CheckpointCosts::paper_scp_flavor();
  spec.deadline = 10'000.0;
  spec.fault_tolerance = 5;
  spec.speed_ratio = 2.0;
  spec.util_level = 0;
  spec.schemes = {"Poisson", "A_D_S"};
  spec.rows = {{0.76, 1.4e-3, {}}, {0.80, 1.6e-3, {}}};
  return spec;
}

std::string jsonl_stream(int threads) {
  const auto spec = jsonl_spec();
  sim::MonteCarloConfig config;
  config.runs = 300;
  config.seed = 0x15EA5;
  config.threads = threads;
  std::ostringstream out;
  harness::JsonlCellStream stream(out,
                                  harness::sweep_cell_refs({spec}));
  harness::SweepOptions options;
  options.observer = &stream;
  harness::run_sweep({spec}, config, options);
  EXPECT_EQ(stream.emitted(), 4u);
  return out.str();
}

TEST(JsonlStream, ByteIdenticalAcrossThreadCounts) {
  const std::string serial = jsonl_stream(1);
  const std::string parallel = jsonl_stream(4);
  EXPECT_EQ(serial, parallel);
  EXPECT_NE(serial.find("\"schema\":\"adacheck-cell-v2\""),
            std::string::npos);
}

TEST(JsonlStream, OneOrderedLinePerCell) {
  const std::string text = jsonl_stream(4);
  std::istringstream lines(text);
  std::string line;
  std::size_t expected = 0;
  while (std::getline(lines, line)) {
    EXPECT_EQ(line.find("{\"schema\":\"adacheck-cell-v2\",\"cell\":" +
                        std::to_string(expected) + ","),
              0u)
        << line;
    EXPECT_EQ(line.back(), '}');
    ++expected;
  }
  EXPECT_EQ(expected, 4u);
  // Cells stream in flat index order: row 0 scheme 0, row 0 scheme 1,
  // row 1 scheme 0, row 1 scheme 1.
  EXPECT_LT(text.find("\"scheme\":\"Poisson\""),
            text.find("\"scheme\":\"A_D_S\""));
}

}  // namespace
}  // namespace adacheck::sim
