#include "sim/monte_carlo.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "policy/factory.hpp"
#include "tests/test_helpers.hpp"

namespace adacheck::sim {
namespace {

using testutil::basic_setup;
using testutil::dvs_setup;

PolicyFactory scripted_factory(const SimSetup& setup, double interval) {
  const Decision plan = testutil::plain_plan(setup, interval);
  return [plan] { return std::make_unique<testutil::ScriptedPolicy>(plan); };
}

TEST(MonteCarlo, FaultFreeCellCompletesAlways) {
  const auto setup = basic_setup(1'000.0, 10'000.0);
  MonteCarloConfig config;
  config.runs = 200;
  const auto stats = run_cell(setup, scripted_factory(setup, 100.0), config);
  EXPECT_EQ(stats.completion.trials(), 200u);
  EXPECT_DOUBLE_EQ(stats.probability(), 1.0);
  // Deterministic energy: every run identical.
  EXPECT_NEAR(stats.energy_success.stddev(), 0.0, 1e-9);
  EXPECT_NEAR(stats.energy(), 4.0 * 1'220.0, 1e-6);
}

TEST(MonteCarlo, ZeroSuccessCellReportsNaNEnergy) {
  // Deadline shorter than fault-free execution: P = 0, E = NaN (the
  // paper's NaN cells).
  const auto setup = basic_setup(1'000.0, 900.0);
  MonteCarloConfig config;
  config.runs = 50;
  const auto stats = run_cell(setup, scripted_factory(setup, 100.0), config);
  EXPECT_DOUBLE_EQ(stats.probability(), 0.0);
  EXPECT_TRUE(std::isnan(stats.energy()));
  EXPECT_FALSE(std::isnan(stats.energy_all.mean()));
}

TEST(MonteCarlo, ThreadCountDoesNotChangeResults) {
  const auto setup = basic_setup(2'000.0, 2'600.0, 5, 1e-3);
  MonteCarloConfig serial;
  serial.runs = 400;
  serial.threads = 1;
  serial.seed = 99;
  MonteCarloConfig parallel = serial;
  parallel.threads = 4;
  const auto a = run_cell(setup, scripted_factory(setup, 150.0), serial);
  const auto b = run_cell(setup, scripted_factory(setup, 150.0), parallel);
  // Per-run seeding: success counts match exactly; merged moments agree
  // to floating-point merge tolerance.
  EXPECT_EQ(a.completion.successes(), b.completion.successes());
  EXPECT_NEAR(a.energy_all.mean(), b.energy_all.mean(),
              1e-9 * a.energy_all.mean());
  EXPECT_NEAR(a.faults.mean(), b.faults.mean(), 1e-9);
}

TEST(MonteCarlo, MergedCellStatsAgreeAcrossThreadCounts) {
  // Per-index seeding makes each run bit-identical regardless of which
  // worker executes it, so every merged accumulator — not just the
  // headline P/E — must agree between threads = 1 and threads = 4:
  // counts exactly, means to Chan-merge floating-point tolerance.
  const auto setup = basic_setup(2'000.0, 2'600.0, 5, 2e-3);
  MonteCarloConfig serial;
  serial.runs = 600;
  serial.threads = 1;
  serial.seed = 0xD15EA5E;
  MonteCarloConfig parallel = serial;
  parallel.threads = 4;
  const auto a = run_cell(setup, scripted_factory(setup, 150.0), serial);
  const auto b = run_cell(setup, scripted_factory(setup, 150.0), parallel);

  EXPECT_EQ(a.completion.trials(), b.completion.trials());
  EXPECT_EQ(a.completion.successes(), b.completion.successes());
  EXPECT_EQ(a.aborted_runs, b.aborted_runs);
  EXPECT_EQ(a.validation_failures, b.validation_failures);

  const std::pair<const util::RunningStats*, const util::RunningStats*>
      tracked[] = {
          {&a.energy_success, &b.energy_success},
          {&a.energy_all, &b.energy_all},
          {&a.finish_time_success, &b.finish_time_success},
          {&a.faults, &b.faults},
          {&a.rollbacks, &b.rollbacks},
          {&a.corrections, &b.corrections},
          {&a.high_speed_cycles, &b.high_speed_cycles},
      };
  for (const auto& [lhs, rhs] : tracked) {
    EXPECT_EQ(lhs->count(), rhs->count());
    if (lhs->count() == 0) continue;
    const double scale = std::max(1.0, std::abs(lhs->mean()));
    EXPECT_NEAR(lhs->mean(), rhs->mean(), 1e-9 * scale);
    EXPECT_DOUBLE_EQ(lhs->min(), rhs->min());
    EXPECT_DOUBLE_EQ(lhs->max(), rhs->max());
  }
}

TEST(MonteCarlo, SameSeedSameResults) {
  const auto setup = basic_setup(2'000.0, 2'600.0, 5, 1e-3);
  MonteCarloConfig config;
  config.runs = 300;
  config.seed = 1234;
  const auto a = run_cell(setup, scripted_factory(setup, 150.0), config);
  const auto b = run_cell(setup, scripted_factory(setup, 150.0), config);
  EXPECT_EQ(a.completion.successes(), b.completion.successes());
  EXPECT_DOUBLE_EQ(a.energy_all.mean(), b.energy_all.mean());
}

TEST(MonteCarlo, DifferentSeedsDiffer) {
  const auto setup = basic_setup(2'000.0, 2'600.0, 5, 2e-3);
  MonteCarloConfig a_cfg;
  a_cfg.runs = 300;
  a_cfg.seed = 1;
  MonteCarloConfig b_cfg = a_cfg;
  b_cfg.seed = 2;
  const auto a = run_cell(setup, scripted_factory(setup, 150.0), a_cfg);
  const auto b = run_cell(setup, scripted_factory(setup, 150.0), b_cfg);
  EXPECT_NE(a.energy_all.mean(), b.energy_all.mean());
}

TEST(MonteCarlo, FaultRateMatchesInjectedLambda) {
  // Expected faults per run ~ lambda * total exposure; with rare faults
  // exposure ~ fault-free exec time (computation only).
  const double lambda = 1e-3;
  const auto setup = basic_setup(2'000.0, 1e9, 50, lambda);
  MonteCarloConfig config;
  config.runs = 3'000;
  const auto stats = run_cell(setup, scripted_factory(setup, 200.0), config);
  EXPECT_GT(stats.faults.mean(), 2'000.0 * lambda * 0.9);
  EXPECT_LT(stats.faults.mean(), 2'000.0 * lambda * 1.35);
}

TEST(MonteCarlo, ValidationModeCountsNoFailures) {
  const auto setup = basic_setup(1'500.0, 2'200.0, 5, 2e-3);
  MonteCarloConfig config;
  config.runs = 500;
  config.validate = true;
  const auto stats = run_cell(setup, scripted_factory(setup, 120.0), config);
  EXPECT_EQ(stats.validation_failures, 0u);
}

TEST(MonteCarlo, AbortedRunsCounted) {
  // A_D_S on an impossible task aborts instead of running to the
  // deadline.
  auto setup = dvs_setup(30'000.0, 10'000.0, 5, 1e-3);
  MonteCarloConfig config;
  config.runs = 20;
  const auto stats =
      run_cell(setup, policy::make_policy_factory("A_D_S"), config);
  EXPECT_EQ(stats.aborted_runs, 20u);
  EXPECT_DOUBLE_EQ(stats.probability(), 0.0);
}

TEST(MonteCarlo, HighSpeedCyclesTracked) {
  // Force an A_D run that must use f2: high utilization.
  auto setup = dvs_setup(15'000.0, 10'000.0, 5, 1e-4);
  MonteCarloConfig config;
  config.runs = 50;
  const auto stats =
      run_cell(setup, policy::make_policy_factory("A_D"), config);
  EXPECT_GT(stats.high_speed_cycles.mean(), 0.0);
}

TEST(MonteCarlo, ConfigValidation) {
  const auto setup = basic_setup(100.0, 1'000.0);
  MonteCarloConfig config;
  config.runs = 0;
  EXPECT_THROW(run_cell(setup, scripted_factory(setup, 50.0), config),
               std::invalid_argument);
  config.runs = 10;
  EXPECT_THROW(run_cell(setup, PolicyFactory{}, config),
               std::invalid_argument);
}

}  // namespace
}  // namespace adacheck::sim
