// The strict JSON parser (util/json): value-tree construction,
// line/column error reporting, and the round-trip pin against the
// harness/json_report writer — parse(sweep_json(...)) must preserve
// every key and value of the adacheck-sweep-v6 schema.
#include "util/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "harness/json_report.hpp"
#include "harness/sweep.hpp"
#include "util/version.hpp"

namespace adacheck::util::json {
namespace {

// --- basic values --------------------------------------------------------

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_TRUE(parse("true").as_bool());
  EXPECT_FALSE(parse("false").as_bool());
  EXPECT_DOUBLE_EQ(parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(parse("-3.25e2").as_number(), -325.0);
  EXPECT_EQ(parse("\"hi\"").as_string(), "hi");
  EXPECT_EQ(parse(" 0 ").as_int(), 0);
  EXPECT_DOUBLE_EQ(parse("-0").as_number(), 0.0);
}

TEST(Json, ParsesNestedContainers) {
  const Value doc = parse(R"({"a": [1, 2, {"b": null}], "c": {}})");
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.as_object().size(), 2u);
  const Value* a = doc.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->as_array().size(), 3u);
  EXPECT_EQ(a->as_array()[1].as_int(), 2);
  EXPECT_TRUE(a->as_array()[2].find("b")->is_null());
  EXPECT_TRUE(doc.find("c")->as_object().empty());
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(Json, ObjectPreservesDocumentOrder) {
  const Value doc = parse(R"({"z": 1, "a": 2, "m": 3})");
  const auto& members = doc.as_object();
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0].first, "z");
  EXPECT_EQ(members[1].first, "a");
  EXPECT_EQ(members[2].first, "m");
}

TEST(Json, StringEscapes) {
  EXPECT_EQ(parse(R"("a\"b\\c\/d\n\t\r\b\f")").as_string(),
            "a\"b\\c/d\n\t\r\b\f");
  EXPECT_EQ(parse(R"("Aé")").as_string(), "A\xC3\xA9");
  // Surrogate pair -> one 4-byte UTF-8 code point.
  EXPECT_EQ(parse(R"("😀")").as_string(), "\xF0\x9F\x98\x80");
}

TEST(Json, ValuesRememberTheirPosition) {
  const Value doc = parse("{\n  \"a\": [true]\n}");
  EXPECT_EQ(doc.line(), 1);
  EXPECT_EQ(doc.column(), 1);
  const Value& a = *doc.find("a");
  EXPECT_EQ(a.line(), 2);
  EXPECT_EQ(a.column(), 8);
  EXPECT_EQ(a.as_array()[0].line(), 2);
  EXPECT_EQ(a.as_array()[0].column(), 9);
}

TEST(Json, TypeErrorsNameBothKinds) {
  const Value doc = parse(R"({"a": "text"})");
  try {
    doc.find("a")->as_number();
    FAIL() << "expected TypeError";
  } catch (const TypeError& e) {
    EXPECT_NE(std::string(e.what()).find("expected number, got string"),
              std::string::npos);
  }
  EXPECT_THROW(parse("[1]").as_object(), TypeError);
  EXPECT_THROW(parse("1.5").as_int(), TypeError);
  EXPECT_THROW(parse("1e300").as_int(), TypeError);  // beyond 2^53
}

// --- malformed input: every error carries line/column --------------------

void expect_parse_error(std::string_view text, int line, int column,
                        std::string_view message_piece) {
  try {
    parse(text);
    FAIL() << "expected ParseError for: " << text;
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), line) << text << " -> " << e.what();
    EXPECT_EQ(e.column(), column) << text << " -> " << e.what();
    EXPECT_NE(std::string(e.what()).find(message_piece), std::string::npos)
        << e.what();
    // The position must be in the message itself, not just accessors.
    EXPECT_NE(std::string(e.what()).find("line"), std::string::npos);
  }
}

TEST(JsonErrors, TruncatedDocuments) {
  expect_parse_error("", 1, 1, "unexpected end of input");
  expect_parse_error("{\"a\": 1", 1, 8, "inside object");
  expect_parse_error("[1, 2", 1, 6, "inside array");
  expect_parse_error("\"abc", 1, 5, "unterminated string");
  expect_parse_error("{\"a\":", 1, 6, "unexpected end of input");
  expect_parse_error("tru", 1, 1, "invalid literal");
}

TEST(JsonErrors, DuplicateKeysRejectedAtTheSecondKey) {
  expect_parse_error("{\n  \"a\": 1,\n  \"a\": 2\n}", 3, 3,
                     "duplicate key \"a\"");
}

TEST(JsonErrors, BadEscapes) {
  expect_parse_error(R"(["a\qb"])", 1, 4, "invalid escape sequence '\\q'");
  expect_parse_error(R"("\u00g1")", 1, 2, "invalid hex digit");
  expect_parse_error(R"("\ud83d x")", 1, 2, "unpaired surrogate");
  expect_parse_error(R"("\ude00")", 1, 2, "unpaired surrogate");
}

TEST(JsonErrors, NanAndInfinityLiteralsRejected) {
  expect_parse_error("{\"e\": NaN}", 1, 7, "NaN");
  expect_parse_error("[Infinity]", 1, 2, "Infinity");
  expect_parse_error("1e999", 1, 1, "out of range");
}

TEST(JsonErrors, StructuralMistakes) {
  expect_parse_error("[1, ]", 1, 5, "trailing commas");
  expect_parse_error("{\"a\": 1,}", 1, 9, "trailing commas");
  expect_parse_error("{} {}", 1, 4, "trailing content");
  expect_parse_error("[01]", 1, 3, "leading zeros");
  expect_parse_error("[1.]", 1, 4, "digit after '.'");
  expect_parse_error("[1e]", 1, 4, "exponent");
  expect_parse_error("{1: 2}", 1, 2, "keys must be strings");
  expect_parse_error("\"a\nb\"", 1, 3, "control character");
  const std::string deep(300, '[');
  expect_parse_error(deep, 1, 202, "nesting too deep");
}

// --- round-trip against the sweep-report writer --------------------------

harness::ExperimentSpec roundtrip_spec() {
  harness::ExperimentSpec spec;
  spec.id = "jsontest";
  spec.title = "json round-trip grid";
  spec.costs = model::CheckpointCosts::paper_scp_flavor();
  spec.deadline = 10'000.0;
  spec.fault_tolerance = 5;
  spec.speed_ratio = 2.0;
  spec.util_level = 0;
  spec.schemes = {"Poisson", "A_D_S"};
  // The U = 1.2 row is infeasible at f1: the Poisson baseline never
  // succeeds there, so its E is NaN and must round-trip as null.
  spec.rows = {{0.76, 1.4e-3, {}}, {1.2, 1.0e-4, {}}};
  return spec;
}

void expect_cell_preserved(const Value& cell, const std::string& scheme,
                           const sim::CellStats& stats) {
  const char* const keys[] = {
      "scheme", "trials", "successes", "p", "p_lo", "p_hi", "e", "e_ci95",
      "e_all", "finish_time", "faults", "rollbacks", "corrections",
      "high_speed_cycles", "aborted_runs", "validation_failures",
      "runs_executed", "p_halfwidth", "e_rel_halfwidth"};
  EXPECT_EQ(cell.as_object().size(), std::size(keys));
  for (const char* key : keys) {
    EXPECT_NE(cell.find(key), nullptr) << "missing cell key " << key;
  }
  EXPECT_EQ(cell.find("scheme")->as_string(), scheme);
  EXPECT_EQ(cell.find("trials")->as_int(),
            static_cast<std::int64_t>(stats.completion.trials()));
  EXPECT_EQ(cell.find("successes")->as_int(),
            static_cast<std::int64_t>(stats.completion.successes()));
  // Shortest-round-trip double formatting means equality is exact.
  EXPECT_EQ(cell.find("p")->as_number(), stats.probability());
  EXPECT_EQ(cell.find("p_lo")->as_number(), stats.completion.wilson_lo());
  EXPECT_EQ(cell.find("p_hi")->as_number(), stats.completion.wilson_hi());
  if (std::isfinite(stats.energy())) {
    EXPECT_EQ(cell.find("e")->as_number(), stats.energy());
  } else {
    EXPECT_TRUE(cell.find("e")->is_null());
  }
  EXPECT_EQ(cell.find("e_all")->as_number(), stats.energy_all.mean());
  EXPECT_EQ(cell.find("faults")->as_number(), stats.faults.mean());
  EXPECT_EQ(cell.find("rollbacks")->as_number(), stats.rollbacks.mean());
  EXPECT_EQ(cell.find("aborted_runs")->as_int(),
            static_cast<std::int64_t>(stats.aborted_runs));
  // v4 additions: runs_executed mirrors trials; the achieved
  // half-widths match the statistics helpers (null when NaN, e.g. a
  // cell with fewer than two successful runs).
  EXPECT_EQ(cell.find("runs_executed")->as_int(),
            static_cast<std::int64_t>(stats.completion.trials()));
  EXPECT_EQ(cell.find("p_halfwidth")->as_number(),
            stats.completion.wilson_halfwidth());
  const double e_rel = stats.energy_success.rel_ci95_halfwidth();
  if (std::isfinite(e_rel)) {
    EXPECT_EQ(cell.find("e_rel_halfwidth")->as_number(), e_rel);
  } else {
    EXPECT_TRUE(cell.find("e_rel_halfwidth")->is_null());
  }
}

TEST(JsonRoundTrip, SweepReportParsesAndPreservesEveryKey) {
  const auto spec = roundtrip_spec();
  sim::MonteCarloConfig config;
  config.runs = 60;
  config.seed = 0x1234;
  const auto sweep = harness::run_sweep({spec}, config);

  for (const bool include_perf : {false, true}) {
    const std::string text = harness::sweep_json(sweep, {include_perf});
    const Value doc = parse(text);

    EXPECT_EQ(doc.as_object().size(), include_perf ? 4u : 3u);
    EXPECT_EQ(doc.find("schema")->as_string(), "adacheck-sweep-v6");

    const Value& cfg = *doc.find("config");
    EXPECT_EQ(cfg.as_object().size(), 4u);
    EXPECT_EQ(cfg.find("version")->as_string(),
              adacheck::util::version_string());
    EXPECT_EQ(cfg.find("runs")->as_int(), 60);
    EXPECT_EQ(cfg.find("seed")->as_int(), 0x1234);
    EXPECT_FALSE(cfg.find("validate")->as_bool());

    if (include_perf) {
      const Value& perf = *doc.find("perf");
      EXPECT_EQ(perf.find("total_runs")->as_int(), 60 * 4);
      EXPECT_EQ(perf.find("cells")->as_int(), 4);
    } else {
      EXPECT_EQ(doc.find("perf"), nullptr);
    }

    const auto& experiments = doc.find("experiments")->as_array();
    ASSERT_EQ(experiments.size(), 1u);
    const Value& experiment = experiments[0];
    EXPECT_EQ(experiment.find("id")->as_string(), spec.id);
    EXPECT_EQ(experiment.find("title")->as_string(), spec.title);

    const Value& environment = *experiment.find("environment");
    EXPECT_EQ(environment.find("name")->as_string(), "poisson");
    EXPECT_EQ(environment.find("arrival")->as_string(), "exponential");
    EXPECT_EQ(environment.find("rate_multiplier")->as_number(), 1.0);
    EXPECT_FALSE(environment.find("burst")->find("enabled")->as_bool());

    const auto& schemes = experiment.find("schemes")->as_array();
    ASSERT_EQ(schemes.size(), spec.schemes.size());
    for (std::size_t s = 0; s < schemes.size(); ++s) {
      EXPECT_EQ(schemes[s].as_string(), spec.schemes[s]);
    }

    const auto& rows = experiment.find("rows")->as_array();
    ASSERT_EQ(rows.size(), spec.rows.size());
    for (std::size_t r = 0; r < rows.size(); ++r) {
      EXPECT_EQ(rows[r].find("utilization")->as_number(),
                spec.rows[r].utilization);
      EXPECT_EQ(rows[r].find("lambda")->as_number(), spec.rows[r].lambda);
      const auto& cells = rows[r].find("cells")->as_array();
      ASSERT_EQ(cells.size(), spec.schemes.size());
      for (std::size_t s = 0; s < cells.size(); ++s) {
        expect_cell_preserved(cells[s], spec.schemes[s],
                              sweep.experiments[0].cells[r][s]);
      }
    }
  }
}

TEST(JsonRoundTrip, MetricsSurviveTheSweepReport) {
  // With a metric suite the report gains config.metrics (the name
  // list) and a "metrics" object per cell whose values round-trip
  // exactly.
  const auto spec = roundtrip_spec();
  sim::MonteCarloConfig config;
  config.runs = 60;
  config.metrics = sim::make_metric_suite({"tails"});
  const auto sweep = harness::run_sweep({spec}, config);
  const Value doc = parse(harness::sweep_json(sweep, {false}));

  const auto& names = doc.find("config")->find("metrics")->as_array();
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0].as_string(), "tails");

  const Value& cell = doc.find("experiments")->as_array()[0]
                          .find("rows")->as_array()[0]
                          .find("cells")->as_array()[0];
  const Value* metrics = cell.find("metrics");
  ASSERT_NE(metrics, nullptr);
  const Value* tails = metrics->find("tails");
  ASSERT_NE(tails, nullptr);
  const auto& emitted = sweep.experiments[0].metrics[0][0];
  const double* p99 = emitted.find("tails", "finish_time_p99");
  ASSERT_NE(p99, nullptr);
  EXPECT_EQ(tails->find("finish_time_p99")->as_number(), *p99);
  EXPECT_EQ(tails->find("finish_time_count")->as_number(),
            static_cast<double>(
                sweep.experiments[0].cells[0][0].finish_time_success.count()));
}

TEST(JsonRoundTrip, InfeasibleCellEnergyIsNull) {
  const auto spec = roundtrip_spec();
  sim::MonteCarloConfig config;
  config.runs = 40;
  const auto sweep = harness::run_sweep({spec}, config);
  // Row 1 ("U" = 1.2), scheme 0 (fixed Poisson baseline at f1): no run
  // can meet the deadline, so E over successes is NaN -> null.
  ASSERT_EQ(sweep.experiments[0].cells[1][0].completion.successes(), 0u);
  const Value doc = parse(harness::sweep_json(sweep, {false}));
  const Value& row = doc.find("experiments")->as_array()[0]
                         .find("rows")->as_array()[1];
  EXPECT_TRUE(row.find("cells")->as_array()[0].find("e")->is_null());
}

}  // namespace
}  // namespace adacheck::util::json
