#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <string>

#include "sim/engine.hpp"
#include "tests/test_helpers.hpp"

namespace adacheck::sim {
namespace {

using testutil::ScriptedPolicy;
using testutil::basic_setup;
using testutil::inner_plan;
using testutil::run_with_faults;

TEST(Trace, PushAndCount) {
  Trace t;
  EXPECT_TRUE(t.empty());
  t.push(TraceEventKind::kSegment, 1.0, 25.0, 1);
  t.push(TraceEventKind::kFault, 2.0, 0.0, 1);
  t.push(TraceEventKind::kSegment, 3.0, 25.0, 2);
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.count(TraceEventKind::kSegment), 2u);
  EXPECT_EQ(t.count(TraceEventKind::kFault), 1u);
  EXPECT_EQ(t.count(TraceEventKind::kRollback), 0u);
}

TEST(Trace, ToStringListsEvents) {
  Trace t;
  t.push(TraceEventKind::kCommit, 128.0, 100.0);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("commit"), std::string::npos);
  EXPECT_NE(s.find("128"), std::string::npos);
}

TEST(Trace, KindNamesAreDistinct) {
  EXPECT_STREQ(to_string(TraceEventKind::kSegment), "segment");
  EXPECT_STREQ(to_string(TraceEventKind::kCheckpoint), "checkpoint");
  EXPECT_STREQ(to_string(TraceEventKind::kDeadlineMiss), "deadline-miss");
}

TEST(EngineTrace, CleanRunEventSequence) {
  const auto setup = basic_setup(100.0, 10'000.0);
  ScriptedPolicy policy(inner_plan(setup, 100.0, 25.0, InnerKind::kScp));
  const auto result = run_with_faults(setup, policy, {});
  const auto& events = result.trace.events();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(result.trace.count(TraceEventKind::kSegment), 4u);
  EXPECT_EQ(result.trace.count(TraceEventKind::kCheckpoint), 4u);  // 3 SCP + CSCP
  EXPECT_EQ(result.trace.count(TraceEventKind::kCommit), 1u);
  EXPECT_EQ(result.trace.count(TraceEventKind::kComplete), 1u);
  EXPECT_EQ(events.back().kind, TraceEventKind::kComplete);
}

TEST(EngineTrace, FaultRunRecordsDetectionAndRollback) {
  const auto setup = basic_setup(100.0, 10'000.0);
  ScriptedPolicy policy(inner_plan(setup, 100.0, 25.0, InnerKind::kScp));
  const auto result = run_with_faults(setup, policy, {30.0});
  EXPECT_EQ(result.trace.count(TraceEventKind::kFault), 1u);
  EXPECT_EQ(result.trace.count(TraceEventKind::kDetection), 1u);
  EXPECT_EQ(result.trace.count(TraceEventKind::kRollback), 1u);
  // The fault event stores wall-clock time and the exposure coordinate.
  for (const auto& e : result.trace.events()) {
    if (e.kind == TraceEventKind::kFault) {
      EXPECT_DOUBLE_EQ(e.value, 30.0);  // exposure coordinate
      EXPECT_NEAR(e.time, 32.0, 1e-9);  // 30 + SCP1 overhead (2)
    }
    if (e.kind == TraceEventKind::kRollback) {
      // 3 of 4 sub-intervals discarded: 75 cycles.
      EXPECT_NEAR(e.value, 75.0, 1e-9);
    }
  }
}

TEST(EngineTrace, CheckpointOpCodes) {
  const auto setup = basic_setup(100.0, 10'000.0);
  ScriptedPolicy policy(inner_plan(setup, 100.0, 25.0, InnerKind::kScp));
  const auto result = run_with_faults(setup, policy, {});
  int scp_ops = 0, cscp_ops = 0;
  for (const auto& e : result.trace.events()) {
    if (e.kind != TraceEventKind::kCheckpoint) continue;
    if (e.aux == 0) {
      ++scp_ops;
      EXPECT_DOUBLE_EQ(e.value, 2.0);  // t_s
    } else if (e.aux == 2) {
      ++cscp_ops;
      EXPECT_DOUBLE_EQ(e.value, 22.0);  // t_s + t_cp
    }
  }
  EXPECT_EQ(scp_ops, 3);
  EXPECT_EQ(cscp_ops, 1);
}

TEST(EngineTrace, DisabledByDefault) {
  const auto setup = basic_setup(100.0, 10'000.0);
  ScriptedPolicy policy(testutil::plain_plan(setup, 100.0));
  model::FaultTrace faults;
  model::ReplayFaultSource source(faults);
  const auto result = simulate(setup, policy, source);  // default config
  EXPECT_TRUE(result.trace.empty());
}

TEST(EngineTrace, AbortAndDeadlineMissMarked) {
  const auto setup = basic_setup(100.0, 50.0);
  ScriptedPolicy policy(testutil::plain_plan(setup, 100.0));
  const auto miss = run_with_faults(setup, policy, {});
  EXPECT_EQ(miss.trace.count(TraceEventKind::kDeadlineMiss), 1u);

  Decision abort_plan = testutil::plain_plan(setup, 100.0);
  abort_plan.abort = true;
  ScriptedPolicy aborter(abort_plan);
  const auto aborted = run_with_faults(setup, aborter, {});
  EXPECT_EQ(aborted.trace.count(TraceEventKind::kAbort), 1u);
}

}  // namespace
}  // namespace adacheck::sim
