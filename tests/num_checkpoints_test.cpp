#include "analytic/num_checkpoints.hpp"

#include <gtest/gtest.h>

#include <tuple>

namespace adacheck::analytic {
namespace {

ScpRenewalParams scp_params(double interval, double lambda,
                            model::CheckpointCosts costs =
                                model::CheckpointCosts::paper_scp_flavor()) {
  ScpRenewalParams p;
  p.interval = interval;
  p.lambda = lambda;
  p.costs = costs;
  return p;
}

CcpRenewalParams ccp_params(double interval, double lambda,
                            model::CheckpointCosts costs =
                                model::CheckpointCosts::paper_ccp_flavor()) {
  CcpRenewalParams p;
  p.interval = interval;
  p.lambda = lambda;
  p.costs = costs;
  return p;
}

TEST(MaxSubIntervals, BoundedByCheapestOperation) {
  // Sub-intervals shorter than the cheaper checkpoint op are useless.
  const auto costs = model::CheckpointCosts::paper_scp_flavor();  // min 2
  EXPECT_EQ(max_sub_intervals(100.0, costs), 50);
  EXPECT_EQ(max_sub_intervals(1.0, costs), 1);
  EXPECT_LE(max_sub_intervals(1e9, costs), 4096);  // hard cap
}

TEST(NumScp, SingleIntervalWhenFaultFree) {
  // lambda = 0: any extra SCP is pure overhead.
  EXPECT_EQ(num_scp(scp_params(500.0, 0.0)), 1);
}

TEST(NumScp, SingleIntervalWhenShort) {
  // A short, low-risk interval cannot amortize an extra store.
  EXPECT_EQ(num_scp(scp_params(30.0, 1e-4)), 1);
}

TEST(NumScp, SplitsLongRiskyIntervals) {
  EXPECT_GT(num_scp(scp_params(2'000.0, 5e-3)), 1);
}

TEST(NumScp, MatchesExhaustiveScan) {
  // The Fig. 2 continuous-then-round procedure must land on (or tie
  // with) the true integer optimum across a parameter sweep.
  for (double interval : {60.0, 125.0, 300.0, 800.0, 2'000.0}) {
    for (double lambda : {1e-4, 1.4e-3, 5e-3, 2e-2}) {
      const auto p = scp_params(interval, lambda);
      const int fig2 = num_scp(p);
      const int exact = num_scp_exhaustive(p);
      const double v_fig2 = scp_expected_time(p, fig2);
      const double v_exact = scp_expected_time(p, exact);
      EXPECT_LE(v_fig2, v_exact * 1.001)
          << "interval=" << interval << " lambda=" << lambda
          << " fig2 m=" << fig2 << " exact m=" << exact;
    }
  }
}

TEST(NumCcp, SingleIntervalWhenFaultFree) {
  EXPECT_EQ(num_ccp(ccp_params(500.0, 0.0)), 1);
}

TEST(NumCcp, SplitsLongRiskyIntervals) {
  EXPECT_GT(num_ccp(ccp_params(2'000.0, 5e-3)), 1);
}

TEST(NumCcp, MatchesExhaustiveScan) {
  for (double interval : {60.0, 125.0, 300.0, 800.0, 2'000.0}) {
    for (double lambda : {1e-4, 1.4e-3, 5e-3, 2e-2}) {
      const auto p = ccp_params(interval, lambda);
      const double v_fig2 = ccp_expected_time(p, num_ccp(p));
      const double v_exact = ccp_expected_time(p, num_ccp_exhaustive(p));
      EXPECT_LE(v_fig2, v_exact * 1.001)
          << "interval=" << interval << " lambda=" << lambda;
    }
  }
}

TEST(NumScp, CheapStoresEncourageMoreScps) {
  // SCP flavor (t_s = 2) should tolerate more inner checkpoints than a
  // hypothetical expensive-store variant at the same risk.
  const auto cheap = scp_params(1'000.0, 5e-3);
  const auto expensive =
      scp_params(1'000.0, 5e-3, model::CheckpointCosts{40.0, 20.0, 0.0});
  EXPECT_GE(num_scp_exhaustive(cheap), num_scp_exhaustive(expensive));
}

TEST(NumCcp, CheapComparesEncourageMoreCcps) {
  const auto cheap = ccp_params(1'000.0, 5e-3);
  const auto expensive =
      ccp_params(1'000.0, 5e-3, model::CheckpointCosts{20.0, 40.0, 0.0});
  EXPECT_GE(num_ccp_exhaustive(cheap), num_ccp_exhaustive(expensive));
}

TEST(NumScp, OptimalCountGrowsWithRisk) {
  int prev = 0;
  for (double lambda : {1e-4, 1e-3, 5e-3, 2e-2}) {
    const int m = num_scp_exhaustive(scp_params(1'000.0, lambda));
    EXPECT_GE(m, prev) << "lambda=" << lambda;
    prev = m;
  }
  EXPECT_GT(prev, 1);
}

}  // namespace
}  // namespace adacheck::analytic
