#include "model/checkpoint.hpp"

#include <gtest/gtest.h>

#include <string>

namespace adacheck::model {
namespace {

TEST(CheckpointCosts, PaperFlavors) {
  const auto scp = CheckpointCosts::paper_scp_flavor();
  EXPECT_DOUBLE_EQ(scp.store, 2.0);
  EXPECT_DOUBLE_EQ(scp.compare, 20.0);
  EXPECT_DOUBLE_EQ(scp.rollback, 0.0);
  EXPECT_DOUBLE_EQ(scp.cscp(), 22.0);  // c = t_s + t_cp

  const auto ccp = CheckpointCosts::paper_ccp_flavor();
  EXPECT_DOUBLE_EQ(ccp.store, 20.0);
  EXPECT_DOUBLE_EQ(ccp.compare, 2.0);
  EXPECT_DOUBLE_EQ(ccp.cscp(), 22.0);
}

TEST(CheckpointCosts, PerKindCost) {
  const CheckpointCosts c{3.0, 5.0, 1.0};
  EXPECT_DOUBLE_EQ(c.cost(CheckpointKind::kStore), 3.0);
  EXPECT_DOUBLE_EQ(c.cost(CheckpointKind::kCompare), 5.0);
  EXPECT_DOUBLE_EQ(c.cost(CheckpointKind::kCompareStore), 8.0);
}

TEST(CheckpointCosts, Validation) {
  EXPECT_TRUE((CheckpointCosts{1.0, 0.0, 0.0}).valid());
  EXPECT_FALSE((CheckpointCosts{0.0, 0.0, 0.0}).valid());  // c must be > 0
  EXPECT_FALSE((CheckpointCosts{-1.0, 5.0, 0.0}).valid());
  EXPECT_FALSE((CheckpointCosts{1.0, 1.0, -0.5}).valid());
  EXPECT_THROW((CheckpointCosts{0.0, 0.0, 0.0}).validate(),
               std::invalid_argument);
  EXPECT_NO_THROW(CheckpointCosts::paper_scp_flavor().validate());
}

TEST(CheckpointKind, Names) {
  EXPECT_EQ(std::string(to_string(CheckpointKind::kStore)), "SCP");
  EXPECT_EQ(std::string(to_string(CheckpointKind::kCompare)), "CCP");
  EXPECT_EQ(std::string(to_string(CheckpointKind::kCompareStore)), "CSCP");
}

}  // namespace
}  // namespace adacheck::model
