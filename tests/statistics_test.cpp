#include "util/statistics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <utility>

#include "util/rng.hpp"

namespace adacheck::util {
namespace {

TEST(RunningStats, EmptyMeanIsNaN) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(std::isnan(s.mean()));
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.sem(), 0.0);
}

TEST(RunningStats, KnownMeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.sum(), 40.0, 1e-9);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats all, a, b;
  Xoshiro256 rng(21);
  for (int i = 0; i < 1'000; ++i) {
    const double x = rng.uniform(-5.0, 20.0);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsNoOp) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(RunningStats, NumericalStabilityLargeOffset) {
  // Welford should survive a huge common offset that would destroy the
  // naive sum-of-squares formula.
  RunningStats s;
  const double offset = 1e12;
  for (double x : {1.0, 2.0, 3.0}) s.add(offset + x);
  EXPECT_NEAR(s.variance(), 1.0, 1e-3);
}

TEST(BinomialStats, EmptyProportionIsNaN) {
  BinomialStats b;
  EXPECT_TRUE(std::isnan(b.proportion()));
  EXPECT_TRUE(std::isnan(b.wilson_lo()));
}

TEST(BinomialStats, ProportionAndMerge) {
  BinomialStats a, b;
  for (int i = 0; i < 30; ++i) a.add(i < 12);
  for (int i = 0; i < 70; ++i) b.add(i < 48);
  a.merge(b);
  EXPECT_EQ(a.trials(), 100u);
  EXPECT_EQ(a.successes(), 60u);
  EXPECT_DOUBLE_EQ(a.proportion(), 0.6);
}

TEST(BinomialStats, WilsonIntervalBracketsProportion) {
  BinomialStats b;
  for (int i = 0; i < 200; ++i) b.add(i < 150);
  EXPECT_LT(b.wilson_lo(), 0.75);
  EXPECT_GT(b.wilson_hi(), 0.75);
  EXPECT_GT(b.wilson_lo(), 0.68);
  EXPECT_LT(b.wilson_hi(), 0.81);
}

TEST(BinomialStats, WilsonWellBehavedAtExtremes) {
  BinomialStats zero, one;
  for (int i = 0; i < 50; ++i) {
    zero.add(false);
    one.add(true);
  }
  EXPECT_EQ(zero.wilson_lo(), 0.0);
  EXPECT_GT(zero.wilson_hi(), 0.0);
  EXPECT_LT(zero.wilson_hi(), 0.12);
  EXPECT_EQ(one.wilson_hi(), 1.0);
  EXPECT_LT(one.wilson_lo(), 1.0);
  EXPECT_GT(one.wilson_lo(), 0.88);
}

TEST(RunningStats, RelativeHalfwidthGuards) {
  RunningStats s;
  EXPECT_TRUE(std::isnan(s.rel_ci95_halfwidth()));  // empty
  s.add(5.0);
  // One sample must never satisfy a precision target.
  EXPECT_TRUE(std::isnan(s.rel_ci95_halfwidth()));
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.rel_ci95_halfwidth(), s.ci95_halfwidth() / 6.0);

  RunningStats zero_mean;
  zero_mean.add(-1.0);
  zero_mean.add(1.0);
  EXPECT_TRUE(std::isnan(zero_mean.rel_ci95_halfwidth()));
}

TEST(RunningStats, RelativeHalfwidthClosedForm) {
  // Samples {9, 10, 11}: mean 10, variance 1, sem 1/sqrt(3).
  RunningStats s;
  for (double x : {9.0, 10.0, 11.0}) s.add(x);
  EXPECT_NEAR(s.rel_ci95_halfwidth(), 1.96 / std::sqrt(3.0) / 10.0, 1e-12);
}

TEST(Wilson95, MatchesClosedForm) {
  // s = 50, n = 100 with z = 1.96, straight from the score-interval
  // definition: center = (p + z^2/2n) / (1 + z^2/n),
  // margin = z * sqrt(p(1-p)/n + z^2/4n^2) / (1 + z^2/n).
  const double z = 1.96, n = 100.0, p = 0.5;
  const double denom = 1.0 + z * z / n;
  const double center = (p + z * z / (2.0 * n)) / denom;
  const double margin =
      z * std::sqrt(p * (1.0 - p) / n + z * z / (4.0 * n * n)) / denom;
  EXPECT_NEAR(wilson95_lower(50, 100), center - margin, 1e-12);
  EXPECT_NEAR(wilson95_upper(50, 100), center + margin, 1e-12);
  EXPECT_NEAR(wilson95_halfwidth(50, 100), margin, 1e-12);
}

TEST(Wilson95, SymmetricUnderSuccessFailureSwap) {
  // The half-width for P(success) equals the half-width for P(miss),
  // so one budget target covers both readings of the interval.
  for (const auto [s, n] : {std::pair<std::size_t, std::size_t>{3, 256},
                            {200, 256},
                            {0, 100},
                            {97, 100}}) {
    EXPECT_DOUBLE_EQ(wilson95_halfwidth(s, n), wilson95_halfwidth(n - s, n));
  }
}

TEST(Wilson95, MembersDelegateToFreeHelpers) {
  BinomialStats b;
  for (int i = 0; i < 256; ++i) b.add(i < 255);
  EXPECT_DOUBLE_EQ(b.wilson_lo(), wilson95_lower(255, 256));
  EXPECT_DOUBLE_EQ(b.wilson_hi(), wilson95_upper(255, 256));
  EXPECT_DOUBLE_EQ(b.wilson_halfwidth(), wilson95_halfwidth(255, 256));
  // The half-width is computed through the canonical (smaller) tail,
  // so it matches the raw bound spread only up to rounding.
  EXPECT_NEAR(b.wilson_halfwidth(), (b.wilson_hi() - b.wilson_lo()) / 2.0,
              1e-12);
  EXPECT_TRUE(std::isnan(wilson95_halfwidth(0, 0)));
}

TEST(Wilson95, HalfwidthShrinksWithTrials) {
  // The budget loop relies on more chunks tightening the interval.
  double previous = 1.0;
  for (std::size_t n : {256u, 512u, 1024u, 2048u}) {
    const double hw = wilson95_halfwidth(n / 2, n);
    EXPECT_LT(hw, previous);
    previous = hw;
  }
}

TEST(Histogram, RejectsDegenerateConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(-100.0);  // clamps to bin 0
  h.add(0.5);
  h.add(9.9);
  h.add(100.0);  // clamps to last bin
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
}

TEST(Histogram, NonFiniteSamplesAreSafe) {
  // Regression: casting NaN/±inf bin offsets to an integer was UB.
  // Infinities clamp to the edge bins; NaN is tallied separately and
  // never binned.
  Histogram h(0.0, 10.0, 5);
  h.add(std::numeric_limits<double>::quiet_NaN());
  h.add(std::numeric_limits<double>::infinity());
  h.add(-std::numeric_limits<double>::infinity());
  h.add(5.0);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.nan_count(), 1u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(4), 1u);
  EXPECT_EQ(h.bin_count(2), 1u);
}

TEST(Histogram, ZeroQuantileSkipsEmptyLeadingBins) {
  // Regression: quantile(0.0) returned lo_ even when every sample sat
  // in a later bin.
  Histogram h(0.0, 10.0, 5);
  h.add(7.0);
  h.add(7.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 6.0);  // lower edge of bin [6, 8)
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 8.0);  // upper edge of bin [6, 8)
}

TEST(Histogram, QuantileOnUniformData) {
  Histogram h(0.0, 1.0, 100);
  Xoshiro256 rng(33);
  for (int i = 0; i < 100'000; ++i) h.add(rng.uniform01());
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(h.quantile(0.9), 0.9, 0.02);
  EXPECT_TRUE(std::isnan(Histogram(0.0, 1.0, 4).quantile(0.5)));
}

TEST(Histogram, MergeMatchesSequentialFill) {
  // Integer tallies: a merged pair of partials is exactly the
  // histogram of the concatenated samples, whatever the split.
  Histogram whole(0.0, 10.0, 20);
  Histogram left(0.0, 10.0, 20);
  Histogram right(0.0, 10.0, 20);
  Xoshiro256 rng(7);
  for (int i = 0; i < 5'000; ++i) {
    const double x = 12.0 * rng.uniform01() - 1.0;  // exercises clamping
    whole.add(x);
    (i < 1'234 ? left : right).add(x);
  }
  left.add(std::numeric_limits<double>::quiet_NaN());
  whole.add(std::numeric_limits<double>::quiet_NaN());
  left.merge(right);
  EXPECT_EQ(left.total(), whole.total());
  EXPECT_EQ(left.nan_count(), whole.nan_count());
  for (std::size_t b = 0; b < whole.bins(); ++b) {
    EXPECT_EQ(left.bin_count(b), whole.bin_count(b)) << "bin " << b;
  }
  EXPECT_DOUBLE_EQ(left.quantile(0.99), whole.quantile(0.99));
}

TEST(Histogram, MergeRejectsMismatchedShapes) {
  Histogram a(0.0, 1.0, 4);
  Histogram bins(0.0, 1.0, 8);
  Histogram range(0.0, 2.0, 4);
  EXPECT_THROW(a.merge(bins), std::invalid_argument);
  EXPECT_THROW(a.merge(range), std::invalid_argument);
  EXPECT_NO_THROW(a.merge(Histogram(0.0, 1.0, 4)));
}

}  // namespace
}  // namespace adacheck::util
