// TMR semantics: a comparison seeing exactly one corrupted replica
// majority-votes it back to health with no work lost; two distinct
// corrupted replicas force a rollback — in SCP mode, to the last SCP
// that still holds a 2-of-3 majority.
#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "sim/validators.hpp"
#include "tests/test_helpers.hpp"

namespace adacheck::sim {
namespace {

using testutil::ScriptedPolicy;
using testutil::inner_plan;
using testutil::plain_plan;

SimSetup tmr_setup(double cycles, double deadline) {
  auto setup = testutil::basic_setup(cycles, deadline);
  setup.fault_model.processors = 3;
  return setup;
}

RunResult run_tmr(const SimSetup& setup, ICheckpointPolicy& policy,
                  std::vector<model::FaultEvent> faults) {
  const model::FaultTrace trace(std::move(faults));
  model::ReplayFaultSource source(trace);
  EngineConfig config;
  config.record_trace = true;
  return simulate(setup, policy, source, config);
}

TEST(EngineTmr, SingleFaultVotedAwayAtCscpNoWorkLost) {
  const auto setup = tmr_setup(100.0, 10'000.0);
  ScriptedPolicy policy(plain_plan(setup, 100.0));
  const auto result = run_tmr(setup, policy, {{50.0, 0}});
  EXPECT_EQ(result.outcome, RunOutcome::kCompleted);
  EXPECT_EQ(result.faults, 1);
  EXPECT_EQ(result.corrections, 1);
  EXPECT_EQ(result.detections, 0);
  EXPECT_EQ(result.rollbacks, 0);
  // No re-execution: 100 work + one CSCP (t_r = 0).
  EXPECT_NEAR(result.finish_time, 122.0, 1e-9);
  EXPECT_TRUE(validate_all(setup, result).empty());
}

TEST(EngineTmr, SameFaultForcesRollbackUnderDmr) {
  // Control: the identical scenario on the DMR pair loses the interval.
  auto setup = tmr_setup(100.0, 10'000.0);
  setup.fault_model.processors = 2;
  ScriptedPolicy policy(plain_plan(setup, 100.0));
  const auto result = run_tmr(setup, policy, {{50.0, 0}});
  EXPECT_EQ(result.rollbacks, 1);
  EXPECT_NEAR(result.finish_time, 244.0, 1e-9);
}

TEST(EngineTmr, TwoFaultsSameReplicaStillVotable) {
  const auto setup = tmr_setup(100.0, 10'000.0);
  ScriptedPolicy policy(plain_plan(setup, 100.0));
  const auto result = run_tmr(setup, policy, {{30.0, 1}, {60.0, 1}});
  EXPECT_EQ(result.corrections, 1);
  EXPECT_EQ(result.rollbacks, 0);
  EXPECT_NEAR(result.finish_time, 122.0, 1e-9);
}

TEST(EngineTmr, TwoDistinctReplicasLoseMajority) {
  const auto setup = tmr_setup(100.0, 10'000.0);
  ScriptedPolicy policy(plain_plan(setup, 100.0));
  const auto result = run_tmr(setup, policy, {{30.0, 0}, {60.0, 1}});
  EXPECT_EQ(result.corrections, 0);
  EXPECT_EQ(result.detections, 1);
  EXPECT_EQ(result.rollbacks, 1);
  EXPECT_NEAR(result.finish_time, 244.0, 1e-9);
}

TEST(EngineTmr, InnerCcpVotesMidIntervalAndContinues) {
  auto setup = tmr_setup(100.0, 10'000.0);
  setup.costs = model::CheckpointCosts::paper_ccp_flavor();
  ScriptedPolicy policy(inner_plan(setup, 100.0, 25.0, InnerKind::kCcp));
  const auto result = run_tmr(setup, policy, {{30.0, 2}});
  EXPECT_EQ(result.corrections, 1);
  EXPECT_EQ(result.rollbacks, 0);
  // Fault-free timing: 100 + 3 CCP * 2 + CSCP 22 (correction is free at
  // t_r = 0).
  EXPECT_NEAR(result.finish_time, 128.0, 1e-9);
  EXPECT_TRUE(validate_all(setup, result).empty());
}

TEST(EngineTmr, InnerCcpIsolatesFaultsIntoWindows) {
  // Two distinct-replica faults in *different* sub-intervals: each is
  // voted away at its own CCP; no rollback ever happens.
  auto setup = tmr_setup(100.0, 10'000.0);
  setup.costs = model::CheckpointCosts::paper_ccp_flavor();
  ScriptedPolicy policy(inner_plan(setup, 100.0, 25.0, InnerKind::kCcp));
  const auto result = run_tmr(setup, policy, {{30.0, 0}, {60.0, 1}});
  EXPECT_EQ(result.corrections, 2);
  EXPECT_EQ(result.rollbacks, 0);
  EXPECT_NEAR(result.finish_time, 128.0, 1e-9);
}

TEST(EngineTmr, InnerCcpSameWindowTwoReplicasRollsBack) {
  auto setup = tmr_setup(100.0, 10'000.0);
  setup.costs = model::CheckpointCosts::paper_ccp_flavor();
  ScriptedPolicy policy(inner_plan(setup, 100.0, 25.0, InnerKind::kCcp));
  const auto result = run_tmr(setup, policy, {{30.0, 0}, {40.0, 1}});
  EXPECT_EQ(result.corrections, 0);
  EXPECT_EQ(result.rollbacks, 1);
  // Failed attempt: detected at CCP2 = 2*25 + 2*2 = 54; retry clean 128.
  EXPECT_NEAR(result.finish_time, 54.0 + 128.0, 1e-9);
}

TEST(EngineTmr, ScpRollbackLandsAtMajorityBoundary) {
  // Subs of 25; replica 0 faults in sub 1, replica 1 in sub 3: SCPs 1
  // and 2 still hold a 2-of-3 majority, so rollback commits subs 1-2
  // (the DMR rule would commit nothing).
  const auto setup = tmr_setup(100.0, 10'000.0);
  ScriptedPolicy policy(inner_plan(setup, 100.0, 25.0, InnerKind::kScp));
  const auto result = run_tmr(setup, policy, {{10.0, 0}, {60.0, 1}});
  EXPECT_EQ(result.rollbacks, 1);
  // Attempt 1: full 128, commit 2 subs (50).  Attempt 2: 50 left,
  // 2 subs: 50 + 2 + 22 = 74.
  EXPECT_NEAR(result.cycles_committed, 100.0, 1e-9);
  EXPECT_NEAR(result.finish_time, 128.0 + 74.0, 1e-9);
  EXPECT_TRUE(validate_all(setup, result).empty());
}

TEST(EngineTmr, ScpSingleFaultWholeIntervalCommits) {
  const auto setup = tmr_setup(100.0, 10'000.0);
  ScriptedPolicy policy(inner_plan(setup, 100.0, 25.0, InnerKind::kScp));
  const auto result = run_tmr(setup, policy, {{10.0, 2}});
  EXPECT_EQ(result.corrections, 1);
  EXPECT_EQ(result.rollbacks, 0);
  EXPECT_NEAR(result.finish_time, 128.0, 1e-9);
}

TEST(EngineTmr, CorrectionPaysRepairCost) {
  auto setup = tmr_setup(100.0, 10'000.0);
  setup.costs.rollback = 8.0;
  ScriptedPolicy policy(plain_plan(setup, 100.0));
  const auto result = run_tmr(setup, policy, {{50.0, 0}});
  EXPECT_EQ(result.corrections, 1);
  EXPECT_NEAR(result.finish_time, 122.0 + 8.0, 1e-9);
  EXPECT_TRUE(validate_all(setup, result).empty());
}

TEST(EngineTmr, CorrectionConsumesFaultBudgetAndReplans) {
  const auto setup = tmr_setup(300.0, 10'000.0);
  ScriptedPolicy policy(plain_plan(setup, 100.0));
  const auto result = run_tmr(setup, policy, {{150.0, 0}});
  EXPECT_EQ(result.corrections, 1);
  EXPECT_EQ(policy.fault_calls, 1);  // re-plan after the voted commit
}

TEST(EngineTmr, StochasticTmrBeatsDmrOnCompletion) {
  // Same fault process: TMR masks single faults, so it completes more
  // often and faster on a hostile cell.
  auto dmr = testutil::basic_setup(5'000.0, 7'000.0, 20, 2e-3);
  auto tmr = dmr;
  tmr.fault_model.processors = 3;
  int dmr_wins = 0, tmr_wins = 0;
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    ScriptedPolicy p1(plain_plan(dmr, 250.0)), p2(plain_plan(tmr, 250.0));
    dmr_wins += simulate_seeded(dmr, p1, seed).completed();
    tmr_wins += simulate_seeded(tmr, p2, seed).completed();
  }
  EXPECT_GT(tmr_wins, dmr_wins);
}

}  // namespace
}  // namespace adacheck::sim
