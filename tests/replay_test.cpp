// Record/replay round-trip: a stochastic run's fault trace, replayed
// through ReplayFaultSource, must reproduce the run exactly.  This is
// the mechanism the satellite example uses for post-mortem debugging.
#include <gtest/gtest.h>

#include "policy/factory.hpp"
#include "sim/engine.hpp"
#include "tests/test_helpers.hpp"

namespace adacheck::sim {
namespace {

using testutil::ScriptedPolicy;
using testutil::basic_setup;
using testutil::inner_plan;

/// Extracts the replayable fault trace (exposure coordinates are stored
/// in the kFault events' value field).
model::FaultTrace extract_faults(const RunResult& result) {
  model::FaultTrace trace;
  for (const auto& e : result.trace.events()) {
    if (e.kind == TraceEventKind::kFault) trace.record(e.value, e.aux);
  }
  return trace;
}

void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.outcome, b.outcome);
  EXPECT_DOUBLE_EQ(a.finish_time, b.finish_time);
  EXPECT_DOUBLE_EQ(a.energy, b.energy);
  EXPECT_DOUBLE_EQ(a.cycles_executed, b.cycles_executed);
  EXPECT_DOUBLE_EQ(a.cycles_committed, b.cycles_committed);
  EXPECT_EQ(a.faults, b.faults);
  EXPECT_EQ(a.detections, b.detections);
  EXPECT_EQ(a.rollbacks, b.rollbacks);
  EXPECT_EQ(a.checkpoints_scp, b.checkpoints_scp);
  EXPECT_EQ(a.checkpoints_ccp, b.checkpoints_ccp);
  EXPECT_EQ(a.checkpoints_cscp, b.checkpoints_cscp);
}

TEST(Replay, RoundTripScriptedPolicy) {
  const auto setup = basic_setup(2'000.0, 5'000.0, 10, 2e-3);
  EngineConfig config;
  config.record_trace = true;

  for (std::uint64_t seed : {1ull, 7ull, 42ull, 1000ull}) {
    ScriptedPolicy original(inner_plan(setup, 200.0, 50.0, InnerKind::kScp));
    const auto recorded = simulate_seeded(setup, original, seed, config);

    const auto faults = extract_faults(recorded);
    model::ReplayFaultSource source(faults);
    ScriptedPolicy replayed_policy(
        inner_plan(setup, 200.0, 50.0, InnerKind::kScp));
    const auto replayed = simulate(setup, replayed_policy, source, config);

    expect_identical(recorded, replayed);
    EXPECT_EQ(replayed.trace.size(), recorded.trace.size());
  }
}

TEST(Replay, RoundTripAdaptivePolicies) {
  // The adaptive policies make state-dependent decisions; replay still
  // reproduces them because decisions are pure functions of ExecContext.
  for (const char* name : {"A_D", "A_D_S", "A_D_C"}) {
    auto setup = basic_setup(7'600.0, 10'000.0, 5, 1.4e-3);
    setup.processor = model::DvsProcessor::two_speed(2.0);
    EngineConfig config;
    config.record_trace = true;

    auto original = policy::make_policy(name);
    const auto recorded = simulate_seeded(setup, *original, 77, config);
    ASSERT_GT(recorded.faults, 0) << name;  // scenario must be interesting

    const auto faults = extract_faults(recorded);
    model::ReplayFaultSource source(faults);
    auto replayed_policy = policy::make_policy(name);
    const auto replayed = simulate(setup, *replayed_policy, source, config);
    expect_identical(recorded, replayed);
  }
}

TEST(Replay, PerturbedTraceDiverges) {
  const auto setup = basic_setup(2'000.0, 5'000.0, 10, 2e-3);
  EngineConfig config;
  config.record_trace = true;
  ScriptedPolicy original(inner_plan(setup, 200.0, 50.0, InnerKind::kScp));
  const auto recorded = simulate_seeded(setup, original, 42, config);
  ASSERT_GT(recorded.faults, 0);

  // Drop the first fault: the replay must differ.
  model::FaultTrace trimmed;
  bool skipped = false;
  for (const auto& e : recorded.trace.events()) {
    if (e.kind != TraceEventKind::kFault) continue;
    if (!skipped) {
      skipped = true;
      continue;
    }
    trimmed.record(e.value, e.aux);
  }
  model::ReplayFaultSource source(trimmed);
  ScriptedPolicy policy(inner_plan(setup, 200.0, 50.0, InnerKind::kScp));
  const auto replayed = simulate(setup, policy, source, config);
  EXPECT_NE(replayed.finish_time, recorded.finish_time);
}

}  // namespace
}  // namespace adacheck::sim
