// Exact-semantics tests of the CCP scheme (paper §2.2): detection at
// the first comparison after the fault, rollback to the interval-start
// CSCP, no partial commit.  Deterministic fault replay throughout.
#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "tests/test_helpers.hpp"

namespace adacheck::sim {
namespace {

using testutil::ScriptedPolicy;
using testutil::inner_plan;
using testutil::run_with_faults;

// CCP-flavor costs: t_s = 20, t_cp = 2 (CSCP = 22), t_r = 0, f = 1.
sim::SimSetup ccp_setup(double cycles, double deadline) {
  auto setup = testutil::basic_setup(cycles, deadline);
  setup.costs = model::CheckpointCosts::paper_ccp_flavor();
  return setup;
}

TEST(EngineCcp, FaultFreeCostsInnerCompares) {
  const auto setup = ccp_setup(100.0, 10'000.0);
  ScriptedPolicy policy(inner_plan(setup, 100.0, 25.0, InnerKind::kCcp));
  const auto result = run_with_faults(setup, policy, {});
  EXPECT_EQ(result.outcome, RunOutcome::kCompleted);
  // 100 work + 3 CCPs * 2 + CSCP 22.
  EXPECT_NEAR(result.finish_time, 100.0 + 6.0 + 22.0, 1e-9);
  EXPECT_EQ(result.checkpoints_ccp, 3);
  EXPECT_EQ(result.checkpoints_cscp, 1);
}

TEST(EngineCcp, EarlyDetectionTruncatesAttempt) {
  const auto setup = ccp_setup(100.0, 10'000.0);
  ScriptedPolicy policy(inner_plan(setup, 100.0, 25.0, InnerKind::kCcp));
  // Fault at exposure 30 (sub 2): detected at CCP 2 after executing
  // 50 work + 2 compares = 54; subs 3-4 are NOT executed.
  const auto result = run_with_faults(setup, policy, {30.0});
  EXPECT_EQ(result.outcome, RunOutcome::kCompleted);
  EXPECT_EQ(result.faults, 1);
  EXPECT_EQ(result.detections, 1);
  // Attempt 1 (failed): 54.  Attempt 2 (full interval): 128.
  EXPECT_NEAR(result.finish_time, 54.0 + 128.0, 1e-9);
  // Nothing was committed by the failed attempt.
  EXPECT_NEAR(result.cycles_committed, 100.0, 1e-9);
}

TEST(EngineCcp, FaultInFirstSubDetectedAtFirstCompare) {
  const auto setup = ccp_setup(100.0, 10'000.0);
  ScriptedPolicy policy(inner_plan(setup, 100.0, 25.0, InnerKind::kCcp));
  const auto result = run_with_faults(setup, policy, {10.0});
  // Failed attempt: 25 + 2 = 27; retry full: 128.
  EXPECT_NEAR(result.finish_time, 27.0 + 128.0, 1e-9);
}

TEST(EngineCcp, FaultInLastSubDetectedAtCscp) {
  const auto setup = ccp_setup(100.0, 10'000.0);
  ScriptedPolicy policy(inner_plan(setup, 100.0, 25.0, InnerKind::kCcp));
  const auto result = run_with_faults(setup, policy, {90.0});  // sub 4
  // Failed attempt runs everything: 100 + 3*2 + 22 = 128; retry 128.
  EXPECT_NEAR(result.finish_time, 256.0, 1e-9);
  EXPECT_EQ(result.detections, 1);
}

TEST(EngineCcp, TwoFaultsDistinctAttempts) {
  const auto setup = ccp_setup(100.0, 10'000.0);
  ScriptedPolicy policy(inner_plan(setup, 100.0, 25.0, InnerKind::kCcp));
  // Fault 1 at 30 -> detected at CCP2 (attempt consumed 50 exposure).
  // Attempt 2 spans exposure 50..150; fault at 60 is in its sub 1 ->
  // detected at its CCP1 (cost 27).  Attempt 3 clean: 128.
  const auto result = run_with_faults(setup, policy, {30.0, 60.0});
  EXPECT_EQ(result.detections, 2);
  EXPECT_NEAR(result.finish_time, 54.0 + 27.0 + 128.0, 1e-9);
}

TEST(EngineCcp, TwoFaultsSameSubOneDetection) {
  const auto setup = ccp_setup(100.0, 10'000.0);
  ScriptedPolicy policy(inner_plan(setup, 100.0, 25.0, InnerKind::kCcp));
  const auto result = run_with_faults(setup, policy, {30.0, 40.0});
  EXPECT_EQ(result.faults, 2);
  EXPECT_EQ(result.detections, 1);
  EXPECT_NEAR(result.finish_time, 54.0 + 128.0, 1e-9);
}

TEST(EngineCcp, PlainCscpSchemeEqualsCcpWithOneSub) {
  // InnerKind::kNone must behave exactly like kCcp with sub == interval.
  const auto setup = ccp_setup(300.0, 10'000.0);
  ScriptedPolicy none(testutil::plain_plan(setup, 100.0));
  ScriptedPolicy one_sub(inner_plan(setup, 100.0, 100.0, InnerKind::kCcp));
  const auto a = run_with_faults(setup, none, {130.0});
  const auto b = run_with_faults(setup, one_sub, {130.0});
  EXPECT_DOUBLE_EQ(a.finish_time, b.finish_time);
  EXPECT_EQ(a.detections, b.detections);
  EXPECT_DOUBLE_EQ(a.energy, b.energy);
}

TEST(EngineCcp, RollbackRestartsIntervalNotTask) {
  // Three intervals; fault mid-second: only the second is retried.
  const auto setup = ccp_setup(300.0, 10'000.0);
  ScriptedPolicy policy(inner_plan(setup, 100.0, 25.0, InnerKind::kCcp));
  const auto result = run_with_faults(setup, policy, {130.0});
  // Clean interval 128 + failed sub-attempt (detect at CCP2 of #2:
  // 50 + 2*2 = 54) + retry 128 + clean 128.
  EXPECT_NEAR(result.finish_time, 128.0 + 54.0 + 128.0 + 128.0, 1e-9);
  EXPECT_EQ(result.outcome, RunOutcome::kCompleted);
}

TEST(EngineCcp, RepeatedFaultsEventuallyMissDeadline) {
  const auto setup = ccp_setup(100.0, 300.0);
  ScriptedPolicy policy(inner_plan(setup, 100.0, 25.0, InnerKind::kCcp));
  // A fault in every attempt's first sub: 27 per failed attempt; the
  // deadline passes before any attempt completes.
  std::vector<double> faults;
  for (int i = 0; i < 40; ++i) faults.push_back(5.0 + 25.0 * i);
  const auto result = run_with_faults(setup, policy, faults);
  EXPECT_EQ(result.outcome, RunOutcome::kDeadlineMiss);
  EXPECT_DOUBLE_EQ(result.cycles_committed, 0.0);
}

TEST(EngineCcp, RollbackCostChargedOnInnerDetection) {
  auto setup = ccp_setup(100.0, 10'000.0);
  setup.costs.rollback = 9.0;
  ScriptedPolicy policy(inner_plan(setup, 100.0, 25.0, InnerKind::kCcp));
  const auto result = run_with_faults(setup, policy, {30.0});
  EXPECT_NEAR(result.finish_time, 54.0 + 9.0 + 128.0, 1e-9);
}

}  // namespace
}  // namespace adacheck::sim
