#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace adacheck::util {
namespace {

CliArgs parse(std::vector<const char*> argv,
              std::vector<std::string> allowed = {}) {
  argv.insert(argv.begin(), "prog");
  return CliArgs(static_cast<int>(argv.size()), argv.data(),
                 std::move(allowed));
}

TEST(CliArgs, EqualsForm) {
  const auto args = parse({"--runs=500", "--seed=42"});
  EXPECT_EQ(args.get_int("runs", 0), 500);
  EXPECT_EQ(args.get_int("seed", 0), 42);
}

TEST(CliArgs, SpaceForm) {
  const auto args = parse({"--runs", "500"});
  EXPECT_EQ(args.get_int("runs", 0), 500);
}

TEST(CliArgs, BooleanSwitch) {
  const auto args = parse({"--fast", "--verbose=false"});
  EXPECT_TRUE(args.get_bool("fast", false));
  EXPECT_FALSE(args.get_bool("verbose", true));
  EXPECT_TRUE(args.get_bool("absent", true));
}

TEST(CliArgs, DoublesAndStrings) {
  const auto args = parse({"--lambda=1.4e-3", "--csv=out.csv"});
  EXPECT_DOUBLE_EQ(args.get_double("lambda", 0.0), 1.4e-3);
  EXPECT_EQ(args.get_string("csv", ""), "out.csv");
}

TEST(CliArgs, PositionalArgsCollected) {
  const auto args = parse({"input.txt", "--runs=3", "more"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.txt");
  EXPECT_EQ(args.positional()[1], "more");
}

TEST(CliArgs, AllowedListRejectsUnknown) {
  EXPECT_THROW(parse({"--oops=1"}, {"runs"}), std::invalid_argument);
  EXPECT_NO_THROW(parse({"--runs=1"}, {"runs"}));
}

TEST(CliArgs, UnknownFlagErrorListsAllowedFlagsAndSuggests) {
  try {
    parse({"--thread=4"}, {"runs", "seed", "threads"});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown flag --thread"), std::string::npos) << what;
    EXPECT_NE(what.find("did you mean --threads?"), std::string::npos)
        << what;
    EXPECT_NE(what.find("allowed flags: --runs, --seed, --threads"),
              std::string::npos)
        << what;
  }
  try {
    parse({"--zzz"}, {"runs"});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    // Nothing close: no suggestion, but the allowed list still prints.
    const std::string what = e.what();
    EXPECT_EQ(what.find("did you mean"), std::string::npos) << what;
    EXPECT_NE(what.find("allowed flags: --runs"), std::string::npos) << what;
  }
}

TEST(CliArgs, DeclaredBooleanSwitchNeverConsumesThePositional) {
  // "dry-run!" declares a switch: the following token stays positional.
  const auto args =
      parse({"run", "--dry-run", "file.json"}, {"dry-run!", "runs"});
  EXPECT_TRUE(args.get_bool("dry-run", false));
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[1], "file.json");
  // Explicit =value still works, and undeclared flags keep consuming.
  EXPECT_FALSE(parse({"--dry-run=false"}, {"dry-run!"})
                   .get_bool("dry-run", true));
  EXPECT_EQ(parse({"--runs", "5"}, {"dry-run!", "runs"}).get_int("runs", 0),
            5);
}

TEST(CliArgs, SubcommandPeeksTheFirstPositional) {
  const char* run[] = {"adacheck", "run", "scenario.json", "--runs=5"};
  EXPECT_EQ(CliArgs::subcommand(4, run), "run");
  const char* flag_first[] = {"adacheck", "--help"};
  EXPECT_EQ(CliArgs::subcommand(2, flag_first), "");
  const char* bare[] = {"adacheck"};
  EXPECT_EQ(CliArgs::subcommand(1, bare), "");
  // The verb is not consumed: it stays positional()[0].
  const CliArgs args(4, run, {"runs"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "run");
  EXPECT_EQ(args.positional()[1], "scenario.json");
}

TEST(CliArgs, MalformedNumbersThrow) {
  const auto args = parse({"--runs=abc", "--x=1.2.3"});
  EXPECT_THROW(args.get_int("runs", 0), std::invalid_argument);
  EXPECT_THROW(args.get_bool("runs", false), std::invalid_argument);
}

TEST(CliArgs, HasAndGet) {
  const auto args = parse({"--a=1"});
  EXPECT_TRUE(args.has("a"));
  EXPECT_FALSE(args.has("b"));
  EXPECT_EQ(args.get("a").value(), "1");
  EXPECT_FALSE(args.get("b").has_value());
}

}  // namespace
}  // namespace adacheck::util
