#include "analytic/expected_time.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace adacheck::analytic {
namespace {

BaselineTaskParams params(double work, double interval, double lambda) {
  BaselineTaskParams p;
  p.work = work;
  p.interval = interval;
  p.lambda = lambda;
  p.costs = model::CheckpointCosts::paper_scp_flavor();
  return p;
}

TEST(FaultFreeTime, EvenDivision) {
  // 1000 work in 10 intervals of 100, each ending with a CSCP (22).
  EXPECT_DOUBLE_EQ(fault_free_time(params(1'000.0, 100.0, 0.0)),
                   1'000.0 + 10.0 * 22.0);
}

TEST(FaultFreeTime, TrailingPartialInterval) {
  // 950 work with interval 100: 9 full + 1 partial = 10 checkpoints.
  EXPECT_DOUBLE_EQ(fault_free_time(params(950.0, 100.0, 0.0)),
                   950.0 + 10.0 * 22.0);
}

TEST(FaultFreeTime, IntervalLargerThanWork) {
  EXPECT_DOUBLE_EQ(fault_free_time(params(50.0, 100.0, 0.0)), 50.0 + 22.0);
}

TEST(ExpectedTime, ReducesToFaultFreeAtZeroLambda) {
  const auto p = params(1'000.0, 100.0, 0.0);
  EXPECT_NEAR(expected_time(p), fault_free_time(p), 1e-9);
}

TEST(ExpectedTime, GrowsWithLambda) {
  const double t0 = expected_time(params(1'000.0, 100.0, 1e-4));
  const double t1 = expected_time(params(1'000.0, 100.0, 1e-3));
  const double t2 = expected_time(params(1'000.0, 100.0, 1e-2));
  EXPECT_LT(t0, t1);
  EXPECT_LT(t1, t2);
}

TEST(ExpectedTime, PaperScaleSanity) {
  // Poisson baseline of Table 1(a): N = 7600, I1 = sqrt(2*22/1.4e-3).
  const double i1 = std::sqrt(2.0 * 22.0 / 1.4e-3);
  const double t = expected_time(params(7'600.0, i1, 1.4e-3));
  // Effective time must exceed N + overhead but stay in the right
  // ballpark (the paper's baselines finish around 8600-11000).
  EXPECT_GT(t, 8'500.0);
  EXPECT_LT(t, 11'000.0);
}

TEST(ExpectedRollbacks, ZeroAtZeroLambda) {
  EXPECT_DOUBLE_EQ(expected_rollbacks(params(1'000.0, 100.0, 0.0)), 0.0);
}

TEST(ExpectedRollbacks, MatchesGeometricRetries) {
  // One interval of length L: expected retries = e^{lambda*L} - 1.
  const auto p = params(100.0, 100.0, 5e-3);
  EXPECT_NEAR(expected_rollbacks(p), std::expm1(5e-3 * 100.0), 1e-12);
}

TEST(ExpectedRollbacks, SumsOverIntervals) {
  const auto one = params(100.0, 100.0, 2e-3);
  const auto ten = params(1'000.0, 100.0, 2e-3);
  EXPECT_NEAR(expected_rollbacks(ten), 10.0 * expected_rollbacks(one),
              1e-9);
}

TEST(BaselineTaskParams, Validation) {
  EXPECT_THROW(expected_time(params(0.0, 100.0, 1e-3)),
               std::invalid_argument);
  EXPECT_THROW(expected_time(params(100.0, 0.0, 1e-3)),
               std::invalid_argument);
  EXPECT_THROW(expected_time(params(100.0, 10.0, -1e-3)),
               std::invalid_argument);
}

}  // namespace
}  // namespace adacheck::analytic
