// End-to-end reproduction checks: reduced-run versions of the paper's
// tables must reproduce the qualitative results (who wins, and roughly
// by how much).  The full 10,000-run tables live in bench/table*.
#include <gtest/gtest.h>

#include <cmath>

#include "harness/paper_params.hpp"
#include "harness/report.hpp"

namespace adacheck::harness {
namespace {

ExperimentResult run_reduced(ExperimentSpec spec, int runs = 1'500) {
  sim::MonteCarloConfig config;
  config.runs = runs;
  config.seed = 20'060'306;  // DATE'06 vintage
  return run_experiment(spec, config);
}

TEST(IntegrationShape, Table1aShapeChecksPass) {
  const auto result = run_reduced(table1a());
  for (const auto& check : shape_checks(result)) {
    EXPECT_TRUE(check.passed) << check.description;
  }
}

TEST(IntegrationShape, Table2aShapeChecksPass) {
  const auto result = run_reduced(table2a());
  for (const auto& check : shape_checks(result)) {
    EXPECT_TRUE(check.passed) << check.description;
  }
}

TEST(IntegrationShape, Table3aShapeChecksPass) {
  const auto result = run_reduced(table3a());
  for (const auto& check : shape_checks(result)) {
    EXPECT_TRUE(check.passed) << check.description;
  }
}

TEST(IntegrationShape, Table4bShapeChecksPass) {
  const auto result = run_reduced(table4b());
  for (const auto& check : shape_checks(result)) {
    EXPECT_TRUE(check.passed) << check.description;
  }
}

TEST(IntegrationShape, Table1aBaselinesMatchPaperClosely) {
  // The fixed baselines are fully determined by the model; our measured
  // P should track the paper's within Monte-Carlo noise + a small
  // modeling margin.
  const auto result = run_reduced(table1a(), 2'500);
  const auto& spec = result.spec;
  for (std::size_t r = 0; r < spec.rows.size(); ++r) {
    for (std::size_t s = 0; s < 2; ++s) {  // Poisson, k-f-t
      const double ours = result.cells[r][s].probability();
      const double paper = spec.rows[r].paper[s].p;
      EXPECT_NEAR(ours, paper, 0.05)
          << spec.schemes[s] << " row " << r;
    }
  }
}

TEST(IntegrationShape, Table1bNaNCellsReproduce) {
  // U = 1.00 rows: fixed baselines at f1 cannot ever finish by D.
  const auto result = run_reduced(table1b(), 500);
  const auto& cells = result.cells;
  ASSERT_EQ(cells.size(), 6u);
  for (std::size_t r = 4; r < 6; ++r) {
    EXPECT_DOUBLE_EQ(cells[r][0].probability(), 0.0);
    EXPECT_TRUE(std::isnan(cells[r][0].energy()));
    EXPECT_DOUBLE_EQ(cells[r][1].probability(), 0.0);
    // ...while the DVS schemes still succeed almost always.
    EXPECT_GT(cells[r][2].probability(), 0.9);
    EXPECT_GT(cells[r][3].probability(), 0.9);
  }
}

TEST(IntegrationShape, HighSpeedTablesEnergyWithinFewPercentOfPaper) {
  // In Table 2 all schemes' energies bunch together (~150k); ours must
  // land within 5% of the paper cell by cell.
  const auto result = run_reduced(table2a(), 1'000);
  const auto& spec = result.spec;
  for (std::size_t r = 0; r < spec.rows.size(); ++r) {
    for (std::size_t s = 0; s < spec.schemes.size(); ++s) {
      const double ours = result.cells[r][s].energy();
      const double paper = spec.rows[r].paper[s].e;
      if (std::isnan(ours) || std::isnan(paper)) continue;
      EXPECT_NEAR(ours / paper, 1.0, 0.05)
          << spec.schemes[s] << " row " << r;
    }
  }
}

TEST(IntegrationShape, ProposedSchemeSavesEnergyVsAdAtLowSpeedTables) {
  // The headline energy claim (Tables 1/3): A_D_S / A_D_C use less
  // energy than A_D in every cell with both succeeding.
  for (auto spec : {table1a(), table3a()}) {
    const auto result = run_reduced(spec, 1'000);
    for (std::size_t r = 0; r < result.spec.rows.size(); ++r) {
      const double e_new = result.cells[r][3].energy();
      const double e_ad = result.cells[r][2].energy();
      ASSERT_FALSE(std::isnan(e_new));
      ASSERT_FALSE(std::isnan(e_ad));
      EXPECT_LT(e_new, e_ad) << spec.id << " row " << r;
    }
  }
}

TEST(IntegrationShape, SchemesRankConsistentlyAtHighLoad) {
  // Table 2(a) last row (U = 0.82, lambda = 1.6e-3): the paper's
  // ordering is A_D_S >> A_D > Poisson ~ k-f-t.
  const auto result = run_reduced(table2a(), 2'000);
  const auto& last = result.cells.back();
  const double p_poisson = last[0].probability();
  const double p_ad = last[2].probability();
  const double p_ads = last[3].probability();
  EXPECT_GT(p_ads, p_ad + 0.1);
  EXPECT_GE(p_ad, p_poisson - 0.02);
  EXPECT_LT(p_poisson, 0.15);
}

}  // namespace
}  // namespace adacheck::harness
