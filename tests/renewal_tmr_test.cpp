#include "analytic/renewal_tmr.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "analytic/num_checkpoints.hpp"
#include "analytic/renewal_ccp.hpp"
#include "analytic/renewal_scp.hpp"
#include "sim/monte_carlo.hpp"
#include "tests/test_helpers.hpp"

namespace adacheck::analytic {
namespace {

TmrRenewalParams tmr_params(double interval, double lambda,
                            model::CheckpointCosts costs) {
  return TmrRenewalParams{interval, lambda, costs};
}

TEST(TmrWindowOdds, SumsToOneAndOrdersSanely) {
  for (double x : {0.0, 0.01, 0.3, 1.0, 4.0}) {
    const auto odds = tmr_window_odds(x);
    EXPECT_NEAR(odds.clean + odds.single + odds.majority_lost, 1.0, 1e-12);
    EXPECT_GE(odds.single, 0.0);
    EXPECT_GE(odds.majority_lost, 0.0);
  }
  const auto zero = tmr_window_odds(0.0);
  EXPECT_DOUBLE_EQ(zero.clean, 1.0);
  EXPECT_DOUBLE_EQ(zero.majority_lost, 0.0);
}

TEST(TmrWindowOdds, SmallExposureAsymptotics) {
  // For x << 1: P(single) ~ x, P(majority lost) ~ x^2/2 * (2/3).
  const double x = 1e-4;
  const auto odds = tmr_window_odds(x);
  EXPECT_NEAR(odds.single, x, x * 0.01);
  EXPECT_NEAR(odds.majority_lost, x * x / 3.0, x * x * 0.05);
}

TEST(TmrWindowOdds, RejectsNegativeExposure) {
  EXPECT_THROW(tmr_window_odds(-1.0), std::invalid_argument);
}

TEST(TmrRenewal, FaultFreeReducesToStraightLine) {
  const auto scp = tmr_params(100.0, 0.0,
                              model::CheckpointCosts::paper_scp_flavor());
  EXPECT_NEAR(tmr_scp_expected_time(scp, 4), 100.0 + 4.0 * 2.0 + 20.0,
              1e-9);
  const auto ccp = tmr_params(100.0, 0.0,
                              model::CheckpointCosts::paper_ccp_flavor());
  EXPECT_NEAR(tmr_ccp_expected_time(ccp, 4), 100.0 + 4.0 * 2.0 + 20.0,
              1e-9);
}

TEST(TmrRenewal, TmrNeverSlowerThanDmrAtZeroRepairCost) {
  // With t_r = 0 a vote costs nothing, so TMR expected time is bounded
  // by the DMR expected time for every (lambda, m).
  const auto costs_scp = model::CheckpointCosts::paper_scp_flavor();
  const auto costs_ccp = model::CheckpointCosts::paper_ccp_flavor();
  for (double lambda : {1e-4, 1.4e-3, 5e-3}) {
    for (int m : {1, 2, 4, 8}) {
      ScpRenewalParams dmr_scp{400.0, lambda, costs_scp};
      EXPECT_LE(
          tmr_scp_expected_time(tmr_params(400.0, lambda, costs_scp), m),
          scp_expected_time(dmr_scp, m) + 1e-9)
          << "scp lambda=" << lambda << " m=" << m;
      CcpRenewalParams dmr_ccp{400.0, lambda, costs_ccp};
      EXPECT_LE(
          tmr_ccp_expected_time(tmr_params(400.0, lambda, costs_ccp), m),
          ccp_expected_time_recursive(dmr_ccp, m) + 1e-9)
          << "ccp lambda=" << lambda << " m=" << m;
    }
  }
}

TEST(TmrRenewal, RepairCostRaisesExpectedTime) {
  auto costs = model::CheckpointCosts::paper_scp_flavor();
  const auto base = tmr_params(400.0, 2e-3, costs);
  costs.rollback = 30.0;
  const auto pricey = tmr_params(400.0, 2e-3, costs);
  EXPECT_GT(tmr_scp_expected_time(pricey, 4),
            tmr_scp_expected_time(base, 4));
  EXPECT_GT(tmr_ccp_expected_time(pricey, 4),
            tmr_ccp_expected_time(base, 4));
}

TEST(TmrRenewal, OptimalMNeedsFewerInnerCheckpointsThanDmr) {
  // Single faults are free under TMR, so the optimum protects only
  // against the much rarer double faults: m*_tmr <= m*_dmr.
  const double lambda = 4e-3;
  const auto costs = model::CheckpointCosts::paper_scp_flavor();
  ScpRenewalParams dmr{800.0, lambda, costs};
  const int m_dmr = num_scp_exhaustive(dmr);
  const int m_tmr = num_scp_tmr(tmr_params(800.0, lambda, costs));
  EXPECT_LE(m_tmr, m_dmr);
  EXPECT_GE(m_tmr, 1);
}

TEST(TmrRenewal, ValidatesArguments) {
  const auto p = tmr_params(100.0, 1e-3,
                            model::CheckpointCosts::paper_scp_flavor());
  EXPECT_THROW(tmr_scp_expected_time(p, 0), std::invalid_argument);
  EXPECT_THROW(tmr_ccp_expected_time(p, 0), std::invalid_argument);
  EXPECT_THROW(
      tmr_scp_expected_time(
          tmr_params(-1.0, 1e-3, model::CheckpointCosts::paper_scp_flavor()),
          1),
      std::invalid_argument);
}

/// Engine cross-validation: a single-interval TMR task, averaged over
/// many runs, must match the analytic expectation.
double simulated_tmr_interval(double interval, int m, double lambda,
                              const model::CheckpointCosts& costs,
                              sim::InnerKind kind, int runs) {
  sim::SimSetup setup{model::TaskSpec{interval, 1e9, 0.0, 1 << 20, "tmr"},
                      costs,
                      model::DvsProcessor({model::SpeedLevel{1.0, 2.0}}),
                      model::FaultModel{lambda, false, 3}};
  const sim::Decision plan = testutil::inner_plan(
      setup, interval, interval / static_cast<double>(m), kind);
  sim::MonteCarloConfig config;
  config.runs = runs;
  config.seed = 0x73A;
  const auto stats = sim::run_cell(
      setup,
      [plan] { return std::make_unique<testutil::ScriptedPolicy>(plan); },
      config);
  return stats.finish_time_success.mean();
}

TEST(TmrRenewal, ScpModelMatchesEngine) {
  const auto costs = model::CheckpointCosts::paper_scp_flavor();
  for (int m : {1, 3, 6}) {
    const double predicted =
        tmr_scp_expected_time(tmr_params(400.0, 4e-3, costs), m);
    const double simulated = simulated_tmr_interval(
        400.0, m, 4e-3, costs, sim::InnerKind::kScp, 60'000);
    EXPECT_NEAR(simulated / predicted, 1.0, 0.02) << "m=" << m;
  }
}

TEST(TmrRenewal, CcpModelMatchesEngine) {
  const auto costs = model::CheckpointCosts::paper_ccp_flavor();
  for (int m : {1, 3, 6}) {
    const double predicted =
        tmr_ccp_expected_time(tmr_params(400.0, 4e-3, costs), m);
    const double simulated = simulated_tmr_interval(
        400.0, m, 4e-3, costs, sim::InnerKind::kCcp, 60'000);
    EXPECT_NEAR(simulated / predicted, 1.0, 0.02) << "m=" << m;
  }
}

}  // namespace
}  // namespace adacheck::analytic
