// Exact-semantics tests of the SCP scheme (paper §2.1): detection at
// the interval-end CSCP, rollback to the last SCP preceding the first
// fault, partial-interval commit.  All runs use deterministic replayed
// fault traces so every timing assertion is exact.
#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "tests/test_helpers.hpp"

namespace adacheck::sim {
namespace {

using testutil::ScriptedPolicy;
using testutil::basic_setup;
using testutil::inner_plan;
using testutil::run_with_faults;

// Common scenario: N = 100, one outer interval of 100 with m = 4 subs
// of 25; costs t_s = 2, t_cp = 20 (CSCP = 22), t_r = 0, f = 1.

TEST(EngineScp, FaultFreeCostsInnerStores) {
  const auto setup = basic_setup(100.0, 10'000.0);
  ScriptedPolicy policy(inner_plan(setup, 100.0, 25.0, InnerKind::kScp));
  const auto result = run_with_faults(setup, policy, {});
  EXPECT_EQ(result.outcome, RunOutcome::kCompleted);
  // 100 work + 3 SCPs * 2 + CSCP 22.
  EXPECT_NEAR(result.finish_time, 100.0 + 6.0 + 22.0, 1e-9);
  EXPECT_EQ(result.checkpoints_scp, 3);
  EXPECT_EQ(result.checkpoints_cscp, 1);
}

TEST(EngineScp, FaultInSecondSubCommitsFirst) {
  const auto setup = basic_setup(100.0, 10'000.0);
  ScriptedPolicy policy(inner_plan(setup, 100.0, 25.0, InnerKind::kScp));
  // Fault at exposure 30: inside sub-interval 2 (25..50).
  const auto result = run_with_faults(setup, policy, {30.0});
  EXPECT_EQ(result.outcome, RunOutcome::kCompleted);
  EXPECT_EQ(result.faults, 1);
  EXPECT_EQ(result.detections, 1);
  EXPECT_EQ(result.rollbacks, 1);
  // Attempt 1: full interval 100 + 3*2 + 22 = 128, detection at CSCP,
  // commit sub 1 (25 cycles).  Attempt 2 re-runs 75 as 3 subs of 25:
  // 75 + 2*2 + 22 = 101.  Total 229.
  EXPECT_NEAR(result.finish_time, 229.0, 1e-9);
  EXPECT_NEAR(result.cycles_committed, 100.0, 1e-9);
  EXPECT_NEAR(result.cycles_executed, 229.0, 1e-9);  // f = 1
}

TEST(EngineScp, FaultInFirstSubCommitsNothing) {
  const auto setup = basic_setup(100.0, 10'000.0);
  ScriptedPolicy policy(inner_plan(setup, 100.0, 25.0, InnerKind::kScp));
  const auto result = run_with_faults(setup, policy, {10.0});
  EXPECT_EQ(result.outcome, RunOutcome::kCompleted);
  // Attempt 1: 128, commit 0.  Attempt 2: full 100 again: 128.
  EXPECT_NEAR(result.finish_time, 256.0, 1e-9);
}

TEST(EngineScp, FaultInLastSubCommitsAllButOne) {
  const auto setup = basic_setup(100.0, 10'000.0);
  ScriptedPolicy policy(inner_plan(setup, 100.0, 25.0, InnerKind::kScp));
  const auto result = run_with_faults(setup, policy, {90.0});  // sub 4
  EXPECT_EQ(result.outcome, RunOutcome::kCompleted);
  // Attempt 1: 128, commit 75.  Attempt 2: 25 left, one sub: 25 + 22.
  EXPECT_NEAR(result.finish_time, 128.0 + 47.0, 1e-9);
}

TEST(EngineScp, TwoFaultsSameAttemptRollToFirst) {
  const auto setup = basic_setup(100.0, 10'000.0);
  ScriptedPolicy policy(inner_plan(setup, 100.0, 25.0, InnerKind::kScp));
  // Faults in subs 2 and 4 of the same attempt: ONE detection at the
  // CSCP, rollback before sub 2.
  const auto result = run_with_faults(setup, policy, {30.0, 90.0});
  EXPECT_EQ(result.faults, 2);
  EXPECT_EQ(result.detections, 1);
  EXPECT_NEAR(result.finish_time, 229.0, 1e-9);  // same as single fault
}

TEST(EngineScp, FaultDuringReExecutionDetectedAgain) {
  const auto setup = basic_setup(100.0, 10'000.0);
  ScriptedPolicy policy(inner_plan(setup, 100.0, 25.0, InnerKind::kScp));
  // First fault in sub 2 (exposure 30).  Re-execution covers exposure
  // 100..175 (75 of work); second fault at 120 lands in its first sub
  // (the re-run of original sub 2).
  const auto result = run_with_faults(setup, policy, {30.0, 120.0});
  EXPECT_EQ(result.faults, 2);
  EXPECT_EQ(result.detections, 2);
  // Attempt 1: 128 (commit 25). Attempt 2: 101, fault in first sub ->
  // commit 0. Attempt 3: re-run 75: 101. Total 330.
  EXPECT_NEAR(result.finish_time, 330.0, 1e-9);
  EXPECT_EQ(result.outcome, RunOutcome::kCompleted);
}

TEST(EngineScp, SubIntervalNotDividingInterval) {
  // Interval 100 with sub 40 -> subs of 40, 40, 20.
  const auto setup = basic_setup(100.0, 10'000.0);
  ScriptedPolicy policy(inner_plan(setup, 100.0, 40.0, InnerKind::kScp));
  const auto result = run_with_faults(setup, policy, {});
  EXPECT_EQ(result.checkpoints_scp, 2);
  EXPECT_NEAR(result.finish_time, 100.0 + 2.0 * 2.0 + 22.0, 1e-9);
}

TEST(EngineScp, FaultInShortTrailingSub) {
  const auto setup = basic_setup(100.0, 10'000.0);
  ScriptedPolicy policy(inner_plan(setup, 100.0, 40.0, InnerKind::kScp));
  // Fault at 85: in the trailing 20-length sub (3rd).
  const auto result = run_with_faults(setup, policy, {85.0});
  // Attempt 1: 126, commit 80.  Attempt 2: 20 left: 20 + 22 = 42.
  EXPECT_NEAR(result.finish_time, 126.0 + 42.0, 1e-9);
  EXPECT_EQ(result.outcome, RunOutcome::kCompleted);
}

TEST(EngineScp, RollbackCostCharged) {
  auto setup = basic_setup(100.0, 10'000.0);
  setup.costs.rollback = 7.0;
  ScriptedPolicy policy(inner_plan(setup, 100.0, 25.0, InnerKind::kScp));
  const auto result = run_with_faults(setup, policy, {30.0});
  EXPECT_NEAR(result.finish_time, 229.0 + 7.0, 1e-9);
}

TEST(EngineScp, EnergyCountsEveryExecutedCycle) {
  const auto setup = basic_setup(100.0, 10'000.0);
  ScriptedPolicy policy(inner_plan(setup, 100.0, 25.0, InnerKind::kScp));
  const auto result = run_with_faults(setup, policy, {30.0});
  // f = 1, V = 2: energy = 4 * executed cycles = 4 * 229.
  EXPECT_NEAR(result.energy, 4.0 * 229.0, 1e-9);
}

TEST(EngineScp, MultiIntervalTaskWithInnerScps) {
  // N = 300 as three intervals of 100, each with 4 subs; fault in the
  // second interval only.
  const auto setup = basic_setup(300.0, 10'000.0);
  ScriptedPolicy policy(inner_plan(setup, 100.0, 25.0, InnerKind::kScp));
  const auto result = run_with_faults(setup, policy, {130.0});  // sub 2 of #2
  EXPECT_EQ(result.outcome, RunOutcome::kCompleted);
  // Intervals: 128 (clean) + [128 detect, commit 25] + 101 (re-run 75)
  // + 128 (clean) = 485.
  EXPECT_NEAR(result.finish_time, 485.0, 1e-9);
  EXPECT_EQ(result.checkpoints_cscp, 3);
}

}  // namespace
}  // namespace adacheck::sim
