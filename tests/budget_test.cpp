// Adaptive run budgets: the RunBudget spec, the PrecisionRecorder
// stop rule, and the budgeted round scheduler's determinism pins —
// a fixed budget reproduces the fixed-count path bit-for-bit, and any
// budget outcome is bit-identical across thread counts because the
// stopping decision only ever sees completed-chunk prefixes in index
// order.
#include "sim/monte_carlo.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/json_report.hpp"
#include "harness/sweep.hpp"
#include "policy/factory.hpp"
#include "tests/test_helpers.hpp"
#include "util/statistics.hpp"

namespace adacheck::sim {
namespace {

using testutil::basic_setup;

void expect_same_stats(const CellStats& a, const CellStats& b) {
  EXPECT_EQ(a.completion.trials(), b.completion.trials());
  EXPECT_EQ(a.completion.successes(), b.completion.successes());
  EXPECT_EQ(a.aborted_runs, b.aborted_runs);
  const std::pair<const util::RunningStats*, const util::RunningStats*>
      tracked[] = {
          {&a.energy_success, &b.energy_success},
          {&a.energy_all, &b.energy_all},
          {&a.finish_time_success, &b.finish_time_success},
          {&a.faults, &b.faults},
          {&a.rollbacks, &b.rollbacks},
          {&a.corrections, &b.corrections},
          {&a.high_speed_cycles, &b.high_speed_cycles},
      };
  for (const auto& [lhs, rhs] : tracked) {
    EXPECT_EQ(lhs->count(), rhs->count());
    if (lhs->count() == 0) continue;
    EXPECT_DOUBLE_EQ(lhs->mean(), rhs->mean());
    EXPECT_DOUBLE_EQ(lhs->variance(), rhs->variance());
    EXPECT_DOUBLE_EQ(lhs->min(), rhs->min());
    EXPECT_DOUBLE_EQ(lhs->max(), rhs->max());
  }
}

// --- RunBudget validation ------------------------------------------------

TEST(RunBudget, DisabledByDefault) {
  RunBudget budget;
  EXPECT_FALSE(budget.enabled());
  budget.validate();  // the default is always valid
  budget.target_p_halfwidth = 0.01;
  EXPECT_TRUE(budget.enabled());
}

TEST(RunBudget, ResolvedCaps) {
  RunBudget budget;
  budget.target_p_halfwidth = 0.01;
  EXPECT_EQ(budget.resolved_max(10'000), 10'000);  // 0 = fixed runs
  EXPECT_EQ(budget.resolved_min(10'000), kRunChunk);  // 0 = one chunk
  budget.min_runs = 1'000;
  budget.max_runs = 4'000;
  EXPECT_EQ(budget.resolved_max(10'000), 4'000);
  EXPECT_EQ(budget.resolved_min(10'000), 1'000);
  // The floor clamps to the cap when the fixed count is the cap.
  budget.max_runs = 0;
  EXPECT_EQ(budget.resolved_min(100), 100);
}

TEST(RunBudget, ValidateRejectsBadConfigs) {
  const auto expect_invalid = [](RunBudget budget, const char* what) {
    EXPECT_THROW(budget.validate(), std::invalid_argument) << what;
  };
  RunBudget bad;
  bad.target_p_halfwidth = -0.1;
  expect_invalid(bad, "negative target");
  bad.target_p_halfwidth = std::numeric_limits<double>::quiet_NaN();
  expect_invalid(bad, "NaN target");
  bad = RunBudget{};
  bad.target_e_rel_halfwidth = std::numeric_limits<double>::infinity();
  expect_invalid(bad, "infinite target");
  bad = RunBudget{};
  bad.target_p_halfwidth = 0.01;
  bad.min_runs = -1;
  expect_invalid(bad, "negative min_runs");
  bad.min_runs = 2'000;
  bad.max_runs = 1'000;
  expect_invalid(bad, "min > max");
  bad = RunBudget{};
  bad.max_runs = 1'000;
  expect_invalid(bad, "cap without a target");
}

TEST(RunBudget, RunCellRejectsInvalidBudget) {
  const auto setup = basic_setup(1'000.0, 10'000.0);
  MonteCarloConfig config;
  config.budget.target_p_halfwidth = 0.01;
  config.budget.min_runs = 600;
  config.budget.max_runs = 500;
  EXPECT_THROW(
      run_cell(setup, policy::make_policy_factory("Poisson"), config),
      std::invalid_argument);
}

// --- PrecisionRecorder ---------------------------------------------------

CellStats synthetic_chunk(int successes, int failures, double energy0) {
  CellStats stats;
  for (int i = 0; i < successes; ++i) {
    stats.completion.add(true);
    stats.energy_success.add(energy0 + static_cast<double>(i));
  }
  for (int i = 0; i < failures; ++i) stats.completion.add(false);
  return stats;
}

TEST(PrecisionRecorder, MatchesClosedFormAfterAbsorb) {
  RunBudget budget;
  budget.target_p_halfwidth = 0.05;
  PrecisionRecorder recorder(budget, 10'000);
  recorder.absorb(synthetic_chunk(200, 56, 10.0));
  recorder.absorb(synthetic_chunk(250, 6, 12.0));
  EXPECT_EQ(recorder.runs(), 512u);
  EXPECT_DOUBLE_EQ(recorder.p_halfwidth(), util::wilson95_halfwidth(450, 512));

  // The energy accumulator matches an all-at-once reference fill up
  // to rounding (Chan's merge is algebraically, not bitwise, equal to
  // sequential Welford updates; bit-identity across thread counts
  // comes from identical op sequences, never from this equivalence).
  util::RunningStats reference;
  for (int i = 0; i < 200; ++i) reference.add(10.0 + i);
  for (int i = 0; i < 250; ++i) reference.add(12.0 + i);
  EXPECT_NEAR(recorder.e_rel_halfwidth(), reference.rel_ci95_halfwidth(),
              1e-12);
}

TEST(PrecisionRecorder, StopRuleRespectsFloorTargetAndCap) {
  RunBudget budget;
  budget.target_p_halfwidth = 0.05;
  budget.min_runs = 512;
  budget.max_runs = 1'024;
  PrecisionRecorder recorder(budget, 10'000);
  // 256 runs, all successes: half-width ~0.0074 already beats the
  // target, but the floor holds the cell.
  recorder.absorb(synthetic_chunk(256, 0, 10.0));
  EXPECT_TRUE(recorder.targets_met());
  EXPECT_FALSE(recorder.should_stop());
  recorder.absorb(synthetic_chunk(256, 0, 10.0));
  EXPECT_TRUE(recorder.should_stop());
}

TEST(PrecisionRecorder, CapStopsAnUnmetTarget) {
  RunBudget budget;
  budget.target_p_halfwidth = 1e-6;  // unreachable
  budget.max_runs = 512;
  PrecisionRecorder recorder(budget, 10'000);
  recorder.absorb(synthetic_chunk(128, 128, 10.0));
  EXPECT_FALSE(recorder.should_stop());
  recorder.absorb(synthetic_chunk(128, 128, 10.0));
  EXPECT_FALSE(recorder.targets_met());
  EXPECT_TRUE(recorder.should_stop());  // the cap, not the target
}

TEST(PrecisionRecorder, EnergyTargetGatesStopping) {
  RunBudget budget;
  budget.target_p_halfwidth = 0.5;       // trivially met
  budget.target_e_rel_halfwidth = 1e-9;  // unreachable
  budget.max_runs = 512;
  PrecisionRecorder recorder(budget, 10'000);
  recorder.absorb(synthetic_chunk(256, 0, 10.0));
  // P target met, energy target not: both must hold to stop early.
  EXPECT_FALSE(recorder.targets_met());
  EXPECT_FALSE(recorder.should_stop());
}

TEST(PrecisionRecorder, NoSuccessesNeverMeetsTheEnergyTarget) {
  RunBudget budget;
  budget.target_e_rel_halfwidth = 10.0;  // absurdly loose
  PrecisionRecorder recorder(budget, 10'000);
  recorder.absorb(synthetic_chunk(0, 256, 0.0));
  // Zero successful runs -> NaN relative half-width -> not met.
  EXPECT_TRUE(std::isnan(recorder.e_rel_halfwidth()));
  EXPECT_FALSE(recorder.targets_met());
}

// --- budgeted execution --------------------------------------------------

/// A moderately faulty cell that still succeeds most of the time.
SimSetup high_p_setup() {
  return basic_setup(6'000.0, 10'000.0, 10, 1.0e-4);
}

/// P(miss) is tiny: Wilson half-width cannot reach 1e-4-level targets
/// within a few thousand runs.
SimSetup rare_event_setup() { return basic_setup(500.0, 10'000.0, 10, 1e-6); }

TEST(BudgetedRun, FixedBudgetReproducesFixedPathBitForBit) {
  const auto setup = high_p_setup();
  MonteCarloConfig fixed;
  fixed.runs = 600;  // 3 chunks of 256/256/88
  fixed.seed = 0xB0D6E7;

  MonteCarloConfig budgeted = fixed;
  budgeted.budget.target_p_halfwidth = 1e-9;  // unreachable: runs to cap
  budgeted.budget.min_runs = 600;
  budgeted.budget.max_runs = 600;

  const auto factory = policy::make_policy_factory("Poisson");
  expect_same_stats(run_cell(setup, factory, fixed),
                    run_cell(setup, factory, budgeted));
}

TEST(BudgetedRun, HighPCellStopsEarly) {
  MonteCarloConfig config;
  config.runs = 10'000;
  config.seed = 42;
  config.budget.target_p_halfwidth = 0.02;
  const auto stats = run_cell(high_p_setup(),
                              policy::make_policy_factory("Poisson"), config);
  EXPECT_LT(stats.completion.trials(), 10'000u);
  EXPECT_GE(stats.completion.trials(), 256u);
  // Stops exactly at a chunk boundary.
  EXPECT_EQ(stats.completion.trials() % kRunChunk, 0u);
  // The achieved precision really meets the target.
  EXPECT_LE(stats.completion.wilson_halfwidth(), 0.02);
}

TEST(BudgetedRun, RareEventCellStopsAtMaxRunsWithHonestHalfwidth) {
  MonteCarloConfig config;
  config.runs = 10'000;
  config.seed = 7;
  config.budget.target_p_halfwidth = 1e-4;  // needs ~100x more samples
  config.budget.max_runs = 2'048;
  const auto stats = run_cell(rare_event_setup(),
                              policy::make_policy_factory("Poisson"), config);
  // Ran to the cap...
  EXPECT_EQ(stats.completion.trials(), 2'048u);
  // ...and the reported achieved half-width is honest: still above
  // the unreached target, not silently clamped to it.
  EXPECT_GT(stats.completion.wilson_halfwidth(), 1e-4);
}

TEST(BudgetedRun, BitIdenticalAcrossThreadCounts) {
  MonteCarloConfig serial;
  serial.runs = 10'000;
  serial.seed = 0xFEED;
  serial.threads = 1;
  serial.budget.target_p_halfwidth = 0.015;
  MonteCarloConfig parallel = serial;
  parallel.threads = 4;

  const auto factory = policy::make_policy_factory("Poisson");
  const auto a = run_cell(high_p_setup(), factory, serial);
  const auto b = run_cell(high_p_setup(), factory, parallel);
  expect_same_stats(a, b);
}

TEST(BudgetedRun, MixedJobListKeepsBothPathsIdenticalAcrossThreads) {
  // One budgeted cell between two fixed ones: the round scheduler must
  // not perturb either path at any thread count.
  const auto factory = policy::make_policy_factory("Poisson");
  MonteCarloConfig fixed;
  fixed.runs = 300;
  fixed.seed = 0xAB;
  MonteCarloConfig budgeted;
  budgeted.runs = 10'000;
  budgeted.seed = 0xCD;
  budgeted.budget.target_p_halfwidth = 0.02;

  std::vector<CellJob> jobs;
  jobs.push_back({high_p_setup(), factory, fixed});
  jobs.push_back({high_p_setup(), factory, budgeted});
  jobs.push_back({rare_event_setup(), factory, fixed});

  const auto serial = run_cells(jobs, 1);
  const auto parallel = run_cells(jobs, 4);
  ASSERT_EQ(serial.size(), 3u);
  ASSERT_EQ(parallel.size(), 3u);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    expect_same_stats(serial[j], parallel[j]);
  }
  // The fixed cells executed exactly their configured runs; the
  // budgeted one stopped at a chunk boundary below the default.
  EXPECT_EQ(serial[0].completion.trials(), 300u);
  EXPECT_EQ(serial[2].completion.trials(), 300u);
  EXPECT_LT(serial[1].completion.trials(), 10'000u);
  EXPECT_EQ(serial[1].completion.trials() % kRunChunk, 0u);
}

TEST(BudgetedRun, BudgetedCellMatchesStandaloneRun) {
  // A budgeted job inside a batch stops at the same prefix as the same
  // job run alone (scheduling is a pure function of the budget).
  const auto factory = policy::make_policy_factory("Poisson");
  MonteCarloConfig budgeted;
  budgeted.runs = 10'000;
  budgeted.seed = 0xCD;
  budgeted.budget.target_p_halfwidth = 0.02;
  MonteCarloConfig fixed;
  fixed.runs = 512;
  fixed.seed = 0x11;

  std::vector<CellJob> jobs;
  jobs.push_back({high_p_setup(), factory, fixed});
  jobs.push_back({high_p_setup(), factory, budgeted});
  const auto batch = run_cells(jobs, 2);
  const auto standalone = run_cell(high_p_setup(), factory, budgeted);
  expect_same_stats(batch[1], standalone);
}

// --- observer interplay --------------------------------------------------

class RecordingObserver final : public ISweepObserver {
 public:
  void on_cell_start(std::size_t cell) override { starts.push_back(cell); }
  void on_cell_done(std::size_t cell, const CellResult& result) override {
    done.push_back(cell);
    trials.push_back(result.stats.completion.trials());
  }
  void on_progress(const SweepProgress& progress) override {
    last = progress;
  }

  std::vector<std::size_t> starts;
  std::vector<std::size_t> done;
  std::vector<std::size_t> trials;
  SweepProgress last;
};

TEST(BudgetedRun, ObserverSeesEachCellOnceAndFinalProgressSettles) {
  const auto factory = policy::make_policy_factory("Poisson");
  MonteCarloConfig budgeted;
  budgeted.runs = 10'000;
  budgeted.seed = 3;
  budgeted.budget.target_p_halfwidth = 0.02;
  MonteCarloConfig fixed;
  fixed.runs = 300;
  fixed.seed = 4;

  std::vector<CellJob> jobs;
  jobs.push_back({high_p_setup(), factory, budgeted});
  jobs.push_back({high_p_setup(), factory, fixed});

  RecordingObserver observer;
  RunCellsOptions options;
  options.threads = 4;
  options.observer = &observer;
  const auto results = run_cells_ex(jobs, options);

  EXPECT_EQ(observer.starts.size(), 2u);
  ASSERT_EQ(observer.done.size(), 2u);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const auto it =
        std::find(observer.done.begin(), observer.done.end(), j);
    ASSERT_NE(it, observer.done.end());
    const auto at = static_cast<std::size_t>(it - observer.done.begin());
    EXPECT_EQ(observer.trials[at], results[j].stats.completion.trials());
  }
  // Final progress: all cells done, runs_done drained the schedule
  // (including any wave overshoot), at least as many as aggregated.
  EXPECT_EQ(observer.last.cells_done, 2u);
  EXPECT_EQ(observer.last.cells_total, 2u);
  EXPECT_EQ(observer.last.runs_done, observer.last.runs_total);
  EXPECT_GE(observer.last.runs_done,
            static_cast<long long>(results[0].stats.completion.trials() +
                                   results[1].stats.completion.trials()));
}

// --- harness lowering ----------------------------------------------------

TEST(BudgetedRun, ExperimentSpecBudgetLowersToEveryCell) {
  harness::ExperimentSpec spec;
  spec.id = "budgettest";
  spec.title = "budget lowering";
  spec.costs = model::CheckpointCosts::paper_scp_flavor();
  spec.deadline = 10'000.0;
  spec.fault_tolerance = 5;
  spec.speed_ratio = 2.0;
  spec.util_level = 0;
  spec.schemes = {"Poisson"};
  spec.rows = {{0.5, 1.0e-4, {}}};
  spec.budget.target_p_halfwidth = 0.02;

  MonteCarloConfig config;
  config.runs = 10'000;
  const auto jobs = harness::experiment_jobs(spec, config);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_TRUE(jobs[0].config.budget.enabled());
  EXPECT_DOUBLE_EQ(jobs[0].config.budget.target_p_halfwidth, 0.02);

  const auto sweep = harness::run_sweep({spec}, config);
  const auto trials =
      sweep.experiments[0].cells[0][0].completion.trials();
  EXPECT_LT(trials, 10'000u);
  // perf.total_runs counts where budgeted cells actually stopped.
  EXPECT_EQ(sweep.perf.total_runs, static_cast<long long>(trials));
}

TEST(BudgetedRun, SweepReportCarriesBudgetAndAchievedPrecision) {
  harness::ExperimentSpec spec;
  spec.id = "budgetreport";
  spec.title = "budget report";
  spec.costs = model::CheckpointCosts::paper_scp_flavor();
  spec.deadline = 10'000.0;
  spec.fault_tolerance = 5;
  spec.speed_ratio = 2.0;
  spec.util_level = 0;
  spec.schemes = {"Poisson"};
  spec.rows = {{0.5, 1.0e-4, {}}};
  spec.budget.target_p_halfwidth = 0.02;

  MonteCarloConfig config;
  config.runs = 10'000;
  harness::JsonReportOptions options;
  options.include_perf = false;
  const std::string json =
      harness::sweep_json(harness::run_sweep({spec}, config), options);
  EXPECT_NE(json.find("\"budget\""), std::string::npos);
  EXPECT_NE(json.find("\"target_p_halfwidth\": 0.02"), std::string::npos);
  EXPECT_NE(json.find("\"runs_executed\""), std::string::npos);
  EXPECT_NE(json.find("\"p_halfwidth\""), std::string::npos);
  EXPECT_NE(json.find("\"e_rel_halfwidth\""), std::string::npos);
}

}  // namespace
}  // namespace adacheck::sim
