#include "analytic/renewal_scp.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "util/rng.hpp"

namespace adacheck::analytic {
namespace {

ScpRenewalParams paper_params(double interval = 125.0,
                              double lambda = 1.4e-3) {
  ScpRenewalParams p;
  p.interval = interval;
  p.lambda = lambda;
  p.costs = model::CheckpointCosts::paper_scp_flavor();
  return p;
}

TEST(ScpRenewal, SingleSubIntervalMatchesClosedForm) {
  // R1(1) = (T + t_s + t_cp) * e^{lambda*T} exactly (t_r = 0).
  const auto p = paper_params(200.0, 2e-3);
  const double expected =
      (200.0 + 22.0) * std::exp(2e-3 * 200.0);
  EXPECT_NEAR(scp_expected_time(p, 1), expected, 1e-9);
}

TEST(ScpRenewal, FaultFreeIsStraightLine) {
  auto p = paper_params(100.0, 0.0);
  for (int m : {1, 2, 5}) {
    EXPECT_NEAR(scp_expected_time(p, m),
                100.0 + m * p.costs.store + p.costs.compare, 1e-9)
        << "m=" << m;
  }
}

TEST(ScpRenewal, AlwaysAboveFaultFreeCost) {
  const auto p = paper_params();
  for (int m = 1; m <= 30; ++m) {
    const double fault_free =
        p.interval + m * p.costs.store + p.costs.compare;
    EXPECT_GT(scp_expected_time(p, m), fault_free) << "m=" << m;
  }
}

TEST(ScpRenewal, DivergesAsSubIntervalsExplode) {
  // T1 -> 0 means unbounded SCP overhead: R1 grows without bound in m.
  const auto p = paper_params();
  EXPECT_GT(scp_expected_time(p, 4'000), scp_expected_time(p, 40));
}

TEST(ScpRenewal, InnerCheckpointsHelpAtHighRisk) {
  // With a long interval and high lambda, splitting the interval must
  // reduce expected time (the paper's whole point): re-execution after
  // a fault restarts from the last SCP instead of the interval start.
  auto p = paper_params(800.0, 5e-3);
  EXPECT_LT(scp_expected_time(p, 4), scp_expected_time(p, 1));
}

TEST(ScpRenewal, MonotoneInLambda) {
  const auto lo = paper_params(300.0, 1e-4);
  const auto hi = paper_params(300.0, 5e-3);
  for (int m : {1, 3, 8}) {
    EXPECT_LT(scp_expected_time(lo, m), scp_expected_time(hi, m));
  }
}

TEST(ScpRenewal, RollbackCostAddsExpectedPenalty) {
  auto base = paper_params(300.0, 2e-3);
  auto with_tr = base;
  with_tr.costs.rollback = 50.0;
  for (int m : {1, 4}) {
    EXPECT_GT(scp_expected_time(with_tr, m), scp_expected_time(base, m));
  }
}

TEST(ScpRenewal, ContinuousEvaluatorRoundsToInteger) {
  const auto p = paper_params(120.0, 1e-3);
  // T1 = T/3 exactly -> same as m = 3.
  EXPECT_NEAR(scp_expected_time_continuous(p, 40.0),
              scp_expected_time(p, 3), 1e-9);
  // T1 = T -> m = 1.
  EXPECT_NEAR(scp_expected_time_continuous(p, 120.0),
              scp_expected_time(p, 1), 1e-9);
}

TEST(ScpRenewal, FirstOrderApproxAgreesAtLowRisk) {
  // For lambda*T << 1 the first-order model should be within ~1%.
  const auto p = paper_params(50.0, 1e-4);
  for (int m : {1, 2, 4}) {
    const double exact = scp_expected_time(p, m);
    const double approx = scp_expected_time_first_order(p, m);
    EXPECT_NEAR(approx / exact, 1.0, 0.01) << "m=" << m;
  }
}

TEST(ScpRenewal, ValidatesArguments) {
  auto p = paper_params();
  EXPECT_THROW(scp_expected_time(p, 0), std::invalid_argument);
  EXPECT_THROW(scp_expected_time_continuous(p, 0.0), std::invalid_argument);
  EXPECT_THROW(scp_expected_time_continuous(p, p.interval * 2.0),
               std::invalid_argument);
  p.interval = -1.0;
  EXPECT_THROW(scp_expected_time(p, 1), std::invalid_argument);
  p = paper_params();
  p.lambda = -1.0;
  EXPECT_THROW(scp_expected_time(p, 1), std::invalid_argument);
}

// Brute-force Monte-Carlo of the SCP semantics, independent of the
// engine, to validate the renewal recursion itself.
double simulate_scp_interval(const ScpRenewalParams& p, int m,
                             std::uint64_t seed, int reps) {
  util::Xoshiro256 rng(seed);
  const double t1 = p.interval / m;
  const double ts = p.costs.store, tcp = p.costs.compare,
               tr = p.costs.rollback;
  const double q = std::exp(-p.lambda * t1);
  double total = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    int next = 1;  // first sub-interval still to complete
    for (;;) {
      // Execute sub-intervals next..m, then the CSCP.
      int first_fault = 0;
      for (int i = next; i <= m; ++i) {
        total += t1;
        if (rng.uniform01() > q && first_fault == 0) first_fault = i;
        total += i < m ? ts : ts + tcp;
      }
      if (first_fault == 0) break;
      total += tr;
      next = first_fault;  // roll back to SCP (first_fault - 1)
    }
  }
  return total / reps;
}

TEST(ScpRenewal, RecursionMatchesDirectSimulation) {
  const auto p = paper_params(400.0, 3e-3);
  for (int m : {1, 2, 5}) {
    const double analytic = scp_expected_time(p, m);
    const double simulated = simulate_scp_interval(p, m, 777, 200'000);
    EXPECT_NEAR(simulated / analytic, 1.0, 0.02) << "m=" << m;
  }
}

}  // namespace
}  // namespace adacheck::analytic
