// Shared fixtures for the simulator test suites.
#pragma once

#include <utility>
#include <vector>

#include "model/fault.hpp"
#include "sim/engine.hpp"
#include "sim/policy.hpp"

namespace adacheck::testutil {

/// Policy that replays a fixed plan (optionally a scripted sequence of
/// plans, one per decision point) and records how often each hook ran.
class ScriptedPolicy final : public sim::ICheckpointPolicy {
 public:
  explicit ScriptedPolicy(sim::Decision plan) : plans_{std::move(plan)} {}
  explicit ScriptedPolicy(std::vector<sim::Decision> plans)
      : plans_(std::move(plans)) {}

  std::string name() const override { return "scripted"; }

  sim::Decision initial(const sim::ExecContext&) override {
    ++initial_calls;
    return next();
  }
  sim::Decision on_fault(const sim::ExecContext&) override {
    ++fault_calls;
    return next();
  }
  std::optional<sim::Decision> on_commit(const sim::ExecContext&) override {
    ++commit_calls;
    return std::nullopt;
  }

  int initial_calls = 0;
  int fault_calls = 0;
  int commit_calls = 0;

 private:
  sim::Decision next() {
    const sim::Decision d = plans_[cursor_];
    if (cursor_ + 1 < plans_.size()) ++cursor_;
    return d;  // last plan repeats forever
  }
  std::vector<sim::Decision> plans_;
  std::size_t cursor_ = 0;
};

/// A one-speed (f = 1, V = 2) scenario with paper SCP-flavor costs.
inline sim::SimSetup basic_setup(double cycles, double deadline,
                                 int k = 10, double lambda = 0.0) {
  return sim::SimSetup{
      model::TaskSpec{cycles, deadline, 0.0, k, "test"},
      model::CheckpointCosts::paper_scp_flavor(),
      model::DvsProcessor({model::SpeedLevel{1.0, 2.0}}),
      model::FaultModel{lambda, false}};
}

/// Two-speed variant (f2 = 2) for DVS tests.
inline sim::SimSetup dvs_setup(double cycles, double deadline, int k = 10,
                               double lambda = 0.0) {
  auto setup = basic_setup(cycles, deadline, k, lambda);
  setup.processor = model::DvsProcessor::two_speed(2.0);
  return setup;
}

/// Plan with a single full-interval CSCP scheme at the setup's slowest
/// speed.
inline sim::Decision plain_plan(const sim::SimSetup& setup,
                                double interval) {
  sim::Decision d;
  d.speed = setup.processor.slowest();
  d.cscp_interval = interval;
  d.sub_interval = interval;
  d.inner = sim::InnerKind::kNone;
  return d;
}

/// Plan with inner checkpoints.
inline sim::Decision inner_plan(const sim::SimSetup& setup, double interval,
                                double sub, sim::InnerKind kind) {
  sim::Decision d;
  d.speed = setup.processor.slowest();
  d.cscp_interval = interval;
  d.sub_interval = sub;
  d.inner = kind;
  return d;
}

/// Runs with a deterministic fault list given in exposure coordinates.
inline sim::RunResult run_with_faults(const sim::SimSetup& setup,
                                      sim::ICheckpointPolicy& policy,
                                      std::vector<double> fault_exposures,
                                      bool record_trace = true) {
  std::vector<model::FaultEvent> events;
  events.reserve(fault_exposures.size());
  for (double t : fault_exposures) events.push_back({t, 0});
  const model::FaultTrace trace(std::move(events));
  model::ReplayFaultSource source(trace);
  sim::EngineConfig config;
  config.record_trace = record_trace;
  return sim::simulate(setup, policy, source, config);
}

}  // namespace adacheck::testutil
