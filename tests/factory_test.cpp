#include "policy/factory.hpp"

#include <gtest/gtest.h>

#include "policy/adaptive.hpp"

namespace adacheck::policy {
namespace {

TEST(Factory, BuildsEveryKnownPolicy) {
  for (const auto& name : known_policies()) {
    const auto policy = make_policy(name);
    ASSERT_NE(policy, nullptr) << name;
    EXPECT_EQ(policy->name(), name);
  }
}

TEST(Factory, RejectsUnknownNames) {
  EXPECT_THROW(make_policy("definitely-not-a-policy"),
               std::invalid_argument);
  EXPECT_THROW(make_policy(""), std::invalid_argument);
  EXPECT_THROW(make_policy("a_d_s"), std::invalid_argument);  // case matters
}

TEST(Factory, BaselineLevelThreadsThrough) {
  // The level only affects the fixed baselines and the non-DVS adaptive
  // schemes; it must not break the DVS ones.
  EXPECT_NO_THROW(make_policy("Poisson", 1));
  EXPECT_NO_THROW(make_policy("k-f-t", 1));
  EXPECT_NO_THROW(make_policy("A_D_S", 1));
  const auto adaptive = make_policy("adapchp-SCP", 1);
  const auto* impl =
      dynamic_cast<const AdaptiveCheckpointPolicy*>(adaptive.get());
  ASSERT_NE(impl, nullptr);
  EXPECT_EQ(impl->config().fixed_level, 1u);
  EXPECT_FALSE(impl->config().use_dvs);
}

TEST(Factory, FactoryClosureMakesFreshInstances) {
  const auto factory = make_policy_factory("A_D_S");
  const auto a = factory();
  const auto b = factory();
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(a->name(), "A_D_S");
}

TEST(Factory, KnownPolicyListIsComplete) {
  const auto names = known_policies();
  EXPECT_EQ(names.size(), 10u);
}

TEST(Factory, EstimatorVariantsEnableRateTracking) {
  for (const char* name : {"A_D-est", "A_D_S-est", "A_D_C-est"}) {
    const auto policy = make_policy(name);
    EXPECT_EQ(policy->name(), name);
    const auto* impl =
        dynamic_cast<const AdaptiveCheckpointPolicy*>(policy.get());
    ASSERT_NE(impl, nullptr) << name;
    EXPECT_TRUE(impl->config().estimate_rate);
  }
  // The base schemes keep trusting the nominal rate.
  const auto base = make_policy("A_D_S");
  const auto* impl = dynamic_cast<const AdaptiveCheckpointPolicy*>(base.get());
  ASSERT_NE(impl, nullptr);
  EXPECT_FALSE(impl->config().estimate_rate);
}

}  // namespace
}  // namespace adacheck::policy
