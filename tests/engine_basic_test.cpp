#include <gtest/gtest.h>

#include <cmath>

#include "sim/engine.hpp"
#include "tests/test_helpers.hpp"

namespace adacheck::sim {
namespace {

using testutil::ScriptedPolicy;
using testutil::basic_setup;
using testutil::dvs_setup;
using testutil::plain_plan;
using testutil::run_with_faults;

TEST(EngineBasic, FaultFreeRunCompletesWithExactTiming) {
  // N = 1000 at f1, interval 100: 10 intervals, 10 CSCPs of 22 cycles.
  const auto setup = basic_setup(1'000.0, 10'000.0);
  ScriptedPolicy policy(plain_plan(setup, 100.0));
  const auto result = run_with_faults(setup, policy, {});
  EXPECT_EQ(result.outcome, RunOutcome::kCompleted);
  EXPECT_NEAR(result.finish_time, 1'000.0 + 10.0 * 22.0, 1e-9);
  EXPECT_EQ(result.checkpoints_cscp, 10);
  EXPECT_EQ(result.faults, 0);
  EXPECT_EQ(result.rollbacks, 0);
  EXPECT_NEAR(result.cycles_committed, 1'000.0, 1e-9);
  // Energy: V = 2 at f1, cycles = 1000 + 220 overhead.
  EXPECT_NEAR(result.energy, 4.0 * 1'220.0, 1e-9);
}

TEST(EngineBasic, PartialTrailingInterval) {
  // N = 250 with interval 100 -> intervals of 100, 100, 50.
  const auto setup = basic_setup(250.0, 10'000.0);
  ScriptedPolicy policy(plain_plan(setup, 100.0));
  const auto result = run_with_faults(setup, policy, {});
  EXPECT_EQ(result.outcome, RunOutcome::kCompleted);
  EXPECT_EQ(result.checkpoints_cscp, 3);
  EXPECT_NEAR(result.finish_time, 250.0 + 3.0 * 22.0, 1e-9);
}

TEST(EngineBasic, IntervalLargerThanTaskIsClamped) {
  const auto setup = basic_setup(100.0, 10'000.0);
  ScriptedPolicy policy(plain_plan(setup, 1e18));
  const auto result = run_with_faults(setup, policy, {});
  EXPECT_EQ(result.outcome, RunOutcome::kCompleted);
  EXPECT_EQ(result.checkpoints_cscp, 1);
  EXPECT_NEAR(result.finish_time, 122.0, 1e-9);
}

TEST(EngineBasic, DeadlineMissWhenTooTight) {
  // Work + overhead = 122 > deadline 121.
  const auto setup = basic_setup(100.0, 121.0);
  ScriptedPolicy policy(plain_plan(setup, 100.0));
  const auto result = run_with_faults(setup, policy, {});
  EXPECT_EQ(result.outcome, RunOutcome::kDeadlineMiss);
  EXPECT_FALSE(result.completed());
}

TEST(EngineBasic, CompletionExactlyAtDeadlineCounts) {
  const auto setup = basic_setup(100.0, 122.0);
  ScriptedPolicy policy(plain_plan(setup, 100.0));
  const auto result = run_with_faults(setup, policy, {});
  EXPECT_EQ(result.outcome, RunOutcome::kCompleted);
}

TEST(EngineBasic, AbortDecisionHonored) {
  const auto setup = basic_setup(100.0, 1'000.0);
  Decision d = plain_plan(setup, 100.0);
  d.abort = true;
  ScriptedPolicy policy(d);
  const auto result = run_with_faults(setup, policy, {});
  EXPECT_EQ(result.outcome, RunOutcome::kAborted);
  EXPECT_DOUBLE_EQ(result.cycles_executed, 0.0);
}

TEST(EngineBasic, HigherSpeedHalvesTimeDoublesEnergyRate) {
  auto setup = dvs_setup(1'000.0, 10'000.0);
  Decision d;
  d.speed = setup.processor.fastest();  // f = 2
  d.cscp_interval = 50.0;               // same cycle count per interval
  d.sub_interval = 50.0;
  d.inner = InnerKind::kNone;
  ScriptedPolicy policy(d);
  const auto result = run_with_faults(setup, policy, {});
  EXPECT_EQ(result.outcome, RunOutcome::kCompleted);
  // 10 intervals of 100 cycles + 10 CSCPs of 22 cycles, all at f2.
  EXPECT_NEAR(result.finish_time, (1'000.0 + 220.0) / 2.0, 1e-9);
  const double v2 = setup.processor.fastest().voltage;
  EXPECT_NEAR(result.energy, v2 * v2 * 1'220.0, 1e-6);
}

TEST(EngineBasic, SpeedSwitchCounted) {
  auto setup = dvs_setup(200.0, 10'000.0);
  Decision fast;
  fast.speed = setup.processor.fastest();
  fast.cscp_interval = 50.0;
  fast.sub_interval = 50.0;
  Decision slow = fast;
  slow.speed = setup.processor.slowest();
  // One interval fast, then (after a fault) slow.
  ScriptedPolicy policy(std::vector<Decision>{fast, slow});
  // Fault in the second interval's exposure (first interval commits
  // 100 cycles over exposure 0..50; second attempt starts at 50).
  const auto result = run_with_faults(setup, policy, {60.0});
  EXPECT_EQ(result.outcome, RunOutcome::kCompleted);
  EXPECT_EQ(result.speed_switches, 1);
  EXPECT_EQ(result.faults, 1);
}

TEST(EngineBasic, SeededRunsAreDeterministic) {
  const auto setup = basic_setup(2'000.0, 1e9, 10, 5e-3);
  ScriptedPolicy p1(plain_plan(setup, 150.0)), p2(plain_plan(setup, 150.0));
  const auto a = simulate_seeded(setup, p1, 424242);
  const auto b = simulate_seeded(setup, p2, 424242);
  EXPECT_EQ(a.outcome, b.outcome);
  EXPECT_DOUBLE_EQ(a.finish_time, b.finish_time);
  EXPECT_DOUBLE_EQ(a.energy, b.energy);
  EXPECT_EQ(a.faults, b.faults);

  ScriptedPolicy p3(plain_plan(setup, 150.0));
  const auto c = simulate_seeded(setup, p3, 424243);
  EXPECT_NE(a.faults, c.faults);  // overwhelmingly likely at this lambda
}

TEST(EngineBasic, PolicyHookCallCounts) {
  const auto setup = basic_setup(300.0, 10'000.0);
  ScriptedPolicy policy(plain_plan(setup, 100.0));
  const auto result = run_with_faults(setup, policy, {150.0});
  EXPECT_EQ(result.outcome, RunOutcome::kCompleted);
  EXPECT_EQ(policy.initial_calls, 1);
  EXPECT_EQ(policy.fault_calls, 1);
  // Commits with work left: interval 1 and the re-run of interval 2.
  // The final commit (interval 3) leaves nothing to plan, so no hook.
  EXPECT_EQ(policy.commit_calls, 2);
}

TEST(EngineBasic, StepLimitGuardsDegeneratePlans) {
  const auto setup = basic_setup(1'000.0, 1e9);
  auto d = testutil::inner_plan(setup, 1'000.0, 1e-4, InnerKind::kScp);
  ScriptedPolicy policy(d);
  EngineConfig config;
  config.max_steps = 1'000;  // 10^7 sub-intervals would exceed this
  model::FaultTrace trace;
  model::ReplayFaultSource source(trace);
  EXPECT_THROW(simulate(setup, policy, source, config), std::runtime_error);
}

TEST(EngineBasic, RejectsInvalidDecisions) {
  const auto setup = basic_setup(100.0, 1'000.0);
  Decision bad = plain_plan(setup, 0.0);  // non-positive interval
  ScriptedPolicy policy(bad);
  model::FaultTrace trace;
  model::ReplayFaultSource source(trace);
  EXPECT_THROW(simulate(setup, policy, source), std::invalid_argument);

  Decision bad_speed = plain_plan(setup, 10.0);
  bad_speed.speed.frequency = 0.0;
  ScriptedPolicy policy2(bad_speed);
  EXPECT_THROW(simulate(setup, policy2, source), std::invalid_argument);
}

TEST(EngineBasic, FaultBeyondExecutionNeverFires) {
  // Total exposure is exactly N = 100; a fault at 100.5 is unreachable.
  const auto setup = basic_setup(100.0, 10'000.0);
  ScriptedPolicy policy(plain_plan(setup, 100.0));
  const auto result = run_with_faults(setup, policy, {100.5});
  EXPECT_EQ(result.faults, 0);
  EXPECT_EQ(result.outcome, RunOutcome::kCompleted);
}

TEST(EngineBasic, SetupValidationPropagates) {
  auto setup = basic_setup(100.0, 1'000.0);
  setup.task.cycles = -5.0;
  ScriptedPolicy policy(plain_plan(setup, 10.0));
  model::FaultTrace trace;
  model::ReplayFaultSource source(trace);
  EXPECT_THROW(simulate(setup, policy, source), std::invalid_argument);
}

}  // namespace
}  // namespace adacheck::sim
