#include "analytic/intervals.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace adacheck::analytic {
namespace {

TEST(PoissonInterval, MatchesDudaFormula) {
  // I1 = sqrt(2C/lambda); paper table-1 parameters: C = 22, lambda = 1.4e-3.
  EXPECT_NEAR(poisson_interval(22.0, 1.4e-3), std::sqrt(2.0 * 22.0 / 1.4e-3),
              1e-9);
}

TEST(PoissonInterval, ZeroLambdaNeverCheckpoints) {
  EXPECT_TRUE(std::isinf(poisson_interval(22.0, 0.0)));
}

TEST(PoissonInterval, DecreasesWithLambda) {
  EXPECT_GT(poisson_interval(22.0, 1e-4), poisson_interval(22.0, 1e-3));
}

TEST(KFaultInterval, MatchesFormula) {
  // I2 = sqrt(N*C/k).
  EXPECT_NEAR(k_fault_interval(7'600.0, 5, 22.0),
              std::sqrt(7'600.0 * 22.0 / 5.0), 1e-9);
}

TEST(KFaultInterval, ZeroFaultsNeverCheckpoints) {
  EXPECT_TRUE(std::isinf(k_fault_interval(100.0, 0, 22.0)));
}

TEST(KFaultInterval, MoreFaultsMoreCheckpoints) {
  EXPECT_GT(k_fault_interval(1'000.0, 1, 22.0),
            k_fault_interval(1'000.0, 10, 22.0));
}

TEST(DeadlineInterval, StretchesWithPressure) {
  // More remaining work against the same deadline -> larger interval
  // (checkpoint overhead must shrink).
  const double i_loose = deadline_interval(5'000.0, 10'000.0, 22.0);
  const double i_tight = deadline_interval(9'000.0, 10'000.0, 22.0);
  EXPECT_GT(i_tight, i_loose);
}

TEST(DeadlineInterval, InfiniteWhenDeadlineImpossible) {
  EXPECT_TRUE(std::isinf(deadline_interval(10'000.0, 9'000.0, 22.0)));
}

TEST(DeadlineInterval, OverheadFitsSlack) {
  // With interval I3 the total checkpoint overhead (work/I3)*C is at
  // most half the slack (the factor 2 reserves recovery room).
  const double work = 8'000.0, deadline = 10'000.0, c = 22.0;
  const double i3 = deadline_interval(work, deadline, c);
  const double overhead = work / i3 * c;
  EXPECT_NEAR(overhead, (deadline + c - work) / 2.0, 1e-9);
}

TEST(PoissonThreshold, ExactFeasibilityBoundary) {
  // Th_lambda is the largest R_t whose Poisson-checkpointed effective
  // time R_t*(1 + sqrt(lambda*C/2)) fits R_d + C.
  const double rd = 10'000.0, lambda = 1.4e-3, c = 22.0;
  const double th = poisson_threshold(rd, lambda, c);
  const double effective = th * (1.0 + std::sqrt(lambda * c / 2.0));
  EXPECT_NEAR(effective, rd + c, 1e-6);
}

TEST(PoissonThreshold, ZeroLambdaGivesFullDeadline) {
  EXPECT_NEAR(poisson_threshold(10'000.0, 0.0, 22.0), 10'022.0, 1e-9);
}

TEST(KFaultThreshold, ExactFeasibilityBoundary) {
  // At R_t = Th, the k-fault worst case R_t + 2*sqrt(R_f*C*R_t) equals
  // R_d + C (DESIGN.md derivation).
  const double rd = 10'000.0, c = 22.0;
  for (int k : {1, 3, 5, 10}) {
    const double th = k_fault_threshold(rd, k, c);
    const double worst = th + 2.0 * std::sqrt(k * c * th);
    EXPECT_NEAR(worst, rd + c, 1e-6) << "k=" << k;
  }
}

TEST(KFaultThreshold, ClosedFormFactorization) {
  // The paper's expanded form equals (sqrt(Rd+C+RfC) - sqrt(RfC))^2.
  const double rd = 7'500.0, c = 22.0;
  const int k = 5;
  const double a = k * c, b = rd + c;
  const double expected = std::pow(std::sqrt(a + b) - std::sqrt(a), 2);
  EXPECT_NEAR(k_fault_threshold(rd, k, c), expected, 1e-9);
}

TEST(KFaultThreshold, ZeroFaultsGivesFullDeadline) {
  EXPECT_NEAR(k_fault_threshold(10'000.0, 0, 22.0), 10'022.0, 1e-9);
}

TEST(KFaultWorstCase, FormulaAndMonotonicity) {
  EXPECT_DOUBLE_EQ(k_fault_worst_case(1'000.0, 0, 22.0), 1'000.0);
  const double w1 = k_fault_worst_case(1'000.0, 1, 22.0);
  const double w5 = k_fault_worst_case(1'000.0, 5, 22.0);
  EXPECT_GT(w5, w1);
  EXPECT_GT(w1, 1'000.0);
  // Rollback cost adds k * t_r.
  EXPECT_NEAR(k_fault_worst_case(1'000.0, 3, 22.0, 10.0) -
                  k_fault_worst_case(1'000.0, 3, 22.0, 0.0),
              30.0, 1e-9);
}

TEST(Intervals, RejectBadArguments) {
  EXPECT_THROW(poisson_interval(0.0, 1e-3), std::invalid_argument);
  EXPECT_THROW(k_fault_interval(0.0, 5, 22.0), std::invalid_argument);
  EXPECT_THROW(deadline_interval(0.0, 100.0, 22.0), std::invalid_argument);
  EXPECT_THROW(poisson_threshold(100.0, -1.0, 22.0), std::invalid_argument);
  EXPECT_THROW(k_fault_threshold(100.0, -1, 22.0), std::invalid_argument);
  EXPECT_THROW(k_fault_worst_case(-5.0, 1, 22.0), std::invalid_argument);
}

}  // namespace
}  // namespace adacheck::analytic
