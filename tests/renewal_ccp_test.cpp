#include "analytic/renewal_ccp.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "util/rng.hpp"

namespace adacheck::analytic {
namespace {

CcpRenewalParams paper_params(double interval = 125.0,
                              double lambda = 1.4e-3) {
  CcpRenewalParams p;
  p.interval = interval;
  p.lambda = lambda;
  p.costs = model::CheckpointCosts::paper_ccp_flavor();
  return p;
}

TEST(CcpRenewal, SingleSubIntervalClosedForm) {
  // R2(1) = t_s + (T + t_cp) * e^{lambda*T} with t_r = 0.
  const auto p = paper_params(200.0, 2e-3);
  const double expected = 20.0 + (200.0 + 2.0) * std::exp(2e-3 * 200.0);
  EXPECT_NEAR(ccp_expected_time(p, 1), expected, 1e-9);
}

TEST(CcpRenewal, FaultFreeIsStraightLine) {
  auto p = paper_params(100.0, 0.0);
  for (int m : {1, 2, 5}) {
    EXPECT_NEAR(ccp_expected_time(p, m),
                100.0 + m * p.costs.compare + p.costs.store, 1e-9);
  }
}

TEST(CcpRenewal, MatchesPaperEquation2) {
  // R2(T2) = t_s + (T2 + t_cp)(e^{lambda T} - 1)/(1 - e^{-lambda T2}).
  const auto p = paper_params(300.0, 2.5e-3);
  for (int m : {1, 2, 3, 6, 10}) {
    const double t2 = p.interval / m;
    const double mu = p.lambda;
    const double expected =
        p.costs.store + (t2 + p.costs.compare) *
                            (std::exp(mu * p.interval) - 1.0) /
                            (1.0 - std::exp(-mu * t2));
    EXPECT_NEAR(ccp_expected_time(p, m), expected, 1e-6) << "m=" << m;
  }
}

TEST(CcpRenewal, EarlyDetectionHelpsAtHighRisk) {
  // Splitting a risky interval with CCPs shortens detection latency and
  // therefore the expected time.
  const auto p = paper_params(800.0, 5e-3);
  EXPECT_LT(ccp_expected_time(p, 4), ccp_expected_time(p, 1));
}

TEST(CcpRenewal, DivergesAsSubIntervalsExplode) {
  const auto p = paper_params();
  EXPECT_GT(ccp_expected_time(p, 4'000), ccp_expected_time(p, 40));
}

TEST(CcpRenewal, ContinuousFormContinuity) {
  const auto p = paper_params(120.0, 1e-3);
  EXPECT_NEAR(ccp_expected_time_continuous(p, 40.0),
              ccp_expected_time(p, 3), 1e-9);
  // The continuous relaxation is defined between integer points too and
  // stays between neighboring integer values in the convex region.
  const double mid = ccp_expected_time_continuous(p, 34.0);  // m ~ 3.5
  EXPECT_GT(mid, 0.0);
}

TEST(CcpRenewal, RecursiveMatchesClosedFormWhenStoreFree) {
  // With t_s = 0 the atomic-CSCP correction vanishes and the recursion
  // must equal the paper's closed form exactly.
  auto p = paper_params(250.0, 3e-3);
  p.costs.store = 0.0;
  for (int m : {1, 2, 4, 8}) {
    EXPECT_NEAR(ccp_expected_time_recursive(p, m), ccp_expected_time(p, m),
                1e-9)
        << "m=" << m;
  }
}

TEST(CcpRenewal, RecursiveExceedsClosedFormByBoundedStoreTerm) {
  // The simulator's CSCP pays t_s even on mismatch; the difference from
  // the paper's form is at most t_s * (e^{mu*T} - 1).
  const auto p = paper_params(300.0, 3e-3);
  for (int m : {1, 3, 9}) {
    const double closed = ccp_expected_time(p, m);
    const double recursive = ccp_expected_time_recursive(p, m);
    EXPECT_GE(recursive, closed - 1e-9);
    EXPECT_LE(recursive - closed,
              p.costs.store * std::expm1(p.lambda * p.interval) + 1e-9);
  }
}

TEST(CcpRenewal, RollbackCostRaisesExpectedTime) {
  auto base = paper_params(300.0, 2e-3);
  auto with_tr = base;
  with_tr.costs.rollback = 40.0;
  EXPECT_GT(ccp_expected_time(with_tr, 3), ccp_expected_time(base, 3));
}

TEST(CcpRenewal, ValidatesArguments) {
  auto p = paper_params();
  EXPECT_THROW(ccp_expected_time(p, 0), std::invalid_argument);
  EXPECT_THROW(ccp_expected_time_continuous(p, 0.0), std::invalid_argument);
  EXPECT_THROW(ccp_expected_time_continuous(p, 2.0 * p.interval),
               std::invalid_argument);
}

// Brute-force Monte-Carlo of the CCP semantics with the atomic CSCP,
// validating the recursive expectation.
double simulate_ccp_interval(const CcpRenewalParams& p, int m,
                             std::uint64_t seed, int reps) {
  util::Xoshiro256 rng(seed);
  const double t2 = p.interval / m;
  const double q = std::exp(-p.lambda * t2);
  double total = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    for (;;) {
      bool failed = false;
      for (int i = 1; i <= m; ++i) {
        total += t2;
        total += i < m ? p.costs.compare : p.costs.cscp();
        if (rng.uniform01() > q) {  // fault: detected at this comparison
          total += p.costs.rollback;
          failed = true;
          break;
        }
      }
      if (!failed) break;
    }
  }
  return total / reps;
}

TEST(CcpRenewal, RecursiveMatchesDirectSimulation) {
  const auto p = paper_params(400.0, 3e-3);
  for (int m : {1, 2, 5}) {
    const double analytic = ccp_expected_time_recursive(p, m);
    const double simulated = simulate_ccp_interval(p, m, 4242, 200'000);
    EXPECT_NEAR(simulated / analytic, 1.0, 0.02) << "m=" << m;
  }
}

}  // namespace
}  // namespace adacheck::analytic
