// serve/{protocol,job_manager,server}.hpp: the adacheck-serve-v1 wire
// protocol, the bounded priority job queue, and the loopback TCP
// daemon.  The load-bearing properties: a served job's JSONL stream is
// byte-identical to `adacheck run --jsonl` for the same document at
// any thread count, scheduling is highest-priority-first with FIFO
// within a level, the queue applies backpressure instead of buffering
// without bound, and cancellation lands promptly leaving a clean
// stream prefix.
#include "serve/client.hpp"
#include "serve/job_manager.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "harness/stream_report.hpp"
#include "scenario/binder.hpp"
#include "scenario/spec.hpp"
#include "util/json.hpp"

namespace adacheck::serve {
namespace {

using scenario::ScenarioError;

const char* kMiniScenario = R"({
  "schema": "adacheck-scenario-v1",
  "name": "mini",
  "config": {"runs": 64, "seed": 5},
  "experiments": [{
    "id": "mini",
    "costs": {"store": 2, "compare": 20, "rollback": 0},
    "fault_tolerance": 5,
    "schemes": ["Poisson", "k-f-t"],
    "rows": [{"utilization": 0.6, "lambda": 1.0e-3},
             {"utilization": 0.8, "lambda": 1.4e-3}]
  }]
})";

// Enough cells x runs that a cancel lands mid-sweep, never a race to
// an already-finished job.
const char* kSlowScenario = R"({
  "schema": "adacheck-scenario-v1",
  "name": "slow",
  "config": {"runs": 6000, "seed": 11},
  "experiments": [{
    "id": "slow",
    "costs": {"store": 2, "compare": 20, "rollback": 0},
    "fault_tolerance": 5,
    "schemes": ["Poisson", "k-f-t", "A_D"],
    "rows": [{"utilization": 0.5, "lambda": 1.0e-3},
             {"utilization": 0.6, "lambda": 1.2e-3},
             {"utilization": 0.7, "lambda": 1.4e-3},
             {"utilization": 0.8, "lambda": 1.6e-3},
             {"utilization": 0.9, "lambda": 1.8e-3}]
  }]
})";

scenario::ScenarioSpec mini_spec() {
  return scenario::parse_scenario_text(kMiniScenario);
}

/// The reference bytes: what `adacheck run --jsonl` writes for the
/// same document.
std::string batch_jsonl(const scenario::ScenarioSpec& spec) {
  const auto specs = scenario::bind_experiments(spec);
  std::ostringstream bytes;
  harness::JsonlCellStream stream(bytes, harness::sweep_cell_refs(specs));
  harness::SweepOptions options;
  options.observer = &stream;
  scenario::run_scenario(spec, options);
  return bytes.str();
}

/// Drains a job's stream through the public wait API until terminal.
std::string stream_all(const JobManager& manager, std::uint64_t id) {
  std::string bytes;
  for (;;) {
    const auto chunk = manager.stream_wait(id, bytes.size());
    bytes += chunk.bytes;
    if (chunk.terminal) return bytes;
  }
}

void wait_for_state(const JobManager& manager, std::uint64_t id,
                    JobState state) {
  for (int i = 0; i < 10000; ++i) {
    const auto info = manager.status(id);
    ASSERT_TRUE(info.has_value());
    if (info->state == state) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  FAIL() << "job " << id << " never reached " << to_string(state);
}

// --- protocol ------------------------------------------------------------

TEST(ServeProtocol, ParsesEveryRequestType) {
  const auto submit = parse_request(
      R"({"req": "submit", "scenario": {"x": 1}, "priority": 7,
          "threads": 2, "source": "lab"})");
  EXPECT_EQ(submit.type, Request::Type::kSubmit);
  ASSERT_TRUE(submit.document.has_value());
  EXPECT_EQ(submit.priority, 7);
  EXPECT_EQ(submit.threads, 2);
  EXPECT_EQ(submit.source, "lab");

  const auto by_path =
      parse_request(R"({"req": "submit", "path": "s.json"})");
  EXPECT_EQ(by_path.path, "s.json");
  EXPECT_EQ(by_path.source, "s.json");  // defaults to the path

  const auto status = parse_request(R"({"req": "status", "job": 3})");
  EXPECT_EQ(status.type, Request::Type::kStatus);
  EXPECT_EQ(status.job, 3u);

  const auto stream =
      parse_request(R"({"req": "stream", "job": 2, "from": 100})");
  EXPECT_EQ(stream.type, Request::Type::kStream);
  EXPECT_EQ(stream.from, 100u);

  EXPECT_EQ(parse_request(R"({"req": "list"})").type, Request::Type::kList);
  EXPECT_EQ(parse_request(R"({"req": "cancel", "job": 1})").type,
            Request::Type::kCancel);
  EXPECT_EQ(parse_request(R"({"req": "stats"})").type, Request::Type::kStats);
  EXPECT_EQ(parse_request(R"({"req": "shutdown"})").type,
            Request::Type::kShutdown);
}

TEST(ServeProtocol, StatsIsAKeylessRequest) {
  // No payload keys: anything beyond "req" is a schema violation.
  EXPECT_THROW(parse_request(R"({"req": "stats", "job": 1})"),
               ScenarioError);
  // And the did-you-mean net catches the obvious typo.
  try {
    parse_request(R"({"req": "stat"})");
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    EXPECT_NE(std::string(e.what()).find("did you mean \"stats\"?"),
              std::string::npos)
        << e.what();
  }
}

TEST(ServeProtocol, UnknownRequestTypeSuggestsTheClosest) {
  try {
    parse_request(R"({"req": "submitt"})");
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    EXPECT_NE(std::string(e.what()).find("did you mean \"submit\"?"),
              std::string::npos)
        << e.what();
  }
}

TEST(ServeProtocol, RejectsUnknownKeysAndBadValues) {
  EXPECT_THROW(parse_request(R"({"req": "submit", "scenario": {},
                                 "proirity": 1})"),
               ScenarioError);
  // Exactly one of scenario/path.
  EXPECT_THROW(parse_request(R"({"req": "submit"})"), ScenarioError);
  EXPECT_THROW(parse_request(
                   R"({"req": "submit", "scenario": {}, "path": "x"})"),
               ScenarioError);
  EXPECT_THROW(parse_request(R"({"req": "status"})"), ScenarioError);
  EXPECT_THROW(parse_request(R"({"req": "status", "job": 0})"),
               ScenarioError);
  EXPECT_THROW(parse_request(R"({"req": "stream", "job": 1, "from": -1})"),
               ScenarioError);
  EXPECT_THROW(parse_request("not json"), util::json::ParseError);
}

// --- job manager ---------------------------------------------------------

TEST(ServeJobManager, StreamIsByteIdenticalToBatchRunAtAnyThreads) {
  const auto spec = mini_spec();
  const std::string reference = batch_jsonl(spec);
  ASSERT_FALSE(reference.empty());

  JobManager manager;
  for (const int threads : {1, 4}) {
    JobRequest request;
    request.scenario = spec;
    request.threads = threads;
    const auto id = manager.submit(request);
    EXPECT_EQ(stream_all(manager, id), reference)
        << "threads=" << threads;
    const auto info = manager.status(id);
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->state, JobState::kDone);
    EXPECT_EQ(info->cells_done, info->cells_total);
    EXPECT_GT(info->runs_executed, 0);
    EXPECT_EQ(info->jsonl_bytes, reference.size());
  }
}

TEST(ServeJobManager, PriorityOrderWithFifoWithinALevel) {
  // One worker; job 1 blocks inside before_job until released, so jobs
  // 2-4 are all queued when the worker picks again.  The pick order
  // after release must be priority-descending, FIFO within a level.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::vector<std::uint64_t> picked;

  JobManagerOptions options;
  options.workers = 1;
  options.before_job = [&](std::uint64_t id) {
    std::unique_lock<std::mutex> lock(mu);
    picked.push_back(id);
    if (id == 1) cv.wait(lock, [&] { return release; });
  };
  JobManager manager(options);

  JobRequest request;
  request.scenario = mini_spec();
  ASSERT_EQ(manager.submit(request), 1u);
  wait_for_state(manager, 1, JobState::kRunning);

  request.priority = 0;
  ASSERT_EQ(manager.submit(request), 2u);
  request.priority = 5;
  ASSERT_EQ(manager.submit(request), 3u);
  ASSERT_EQ(manager.submit(request), 4u);

  {
    std::unique_lock<std::mutex> lock(mu);
    release = true;
    cv.notify_all();
  }
  for (const std::uint64_t id : {1u, 2u, 3u, 4u}) {
    wait_for_state(manager, id, JobState::kDone);
  }
  EXPECT_EQ(picked, (std::vector<std::uint64_t>{1, 3, 4, 2}));
}

TEST(ServeJobManager, FullQueueRejectsWithBackpressure) {
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;

  JobManagerOptions options;
  options.workers = 1;
  options.max_queued = 1;
  options.before_job = [&](std::uint64_t) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  };
  JobManager manager(options);

  JobRequest request;
  request.scenario = mini_spec();
  const auto first = manager.submit(request);
  wait_for_state(manager, first, JobState::kRunning);  // queue is empty again
  manager.submit(request);                             // fills the one slot
  EXPECT_EQ(manager.queued(), 1u);
  try {
    manager.submit(request);
    FAIL() << "expected QueueFull";
  } catch (const QueueFull& e) {
    EXPECT_EQ(e.limit(), 1u);
    EXPECT_NE(std::string(e.what()).find("queue full"), std::string::npos);
  }

  {
    std::unique_lock<std::mutex> lock(mu);
    release = true;
    cv.notify_all();
  }
  wait_for_state(manager, 2, JobState::kDone);
  // Capacity freed: submitting works again.
  EXPECT_EQ(manager.submit(request), 3u);
  wait_for_state(manager, 3, JobState::kDone);
}

TEST(ServeJobManager, CancelQueuedJobNeverRuns) {
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::vector<std::uint64_t> picked;

  JobManagerOptions options;
  options.workers = 1;
  options.before_job = [&](std::uint64_t id) {
    std::unique_lock<std::mutex> lock(mu);
    picked.push_back(id);
    if (id == 1) cv.wait(lock, [&] { return release; });
  };
  JobManager manager(options);

  JobRequest request;
  request.scenario = mini_spec();
  ASSERT_EQ(manager.submit(request), 1u);
  wait_for_state(manager, 1, JobState::kRunning);
  ASSERT_EQ(manager.submit(request), 2u);

  EXPECT_TRUE(manager.cancel(2));
  EXPECT_FALSE(manager.cancel(99));
  const auto info = manager.status(2);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->state, JobState::kCancelled);
  EXPECT_EQ(manager.queued(), 0u);
  // A cancelled queued job streams as an immediately terminal empty
  // stream.
  const auto chunk = manager.stream_wait(2, 0);
  EXPECT_TRUE(chunk.terminal);
  EXPECT_TRUE(chunk.bytes.empty());

  {
    std::unique_lock<std::mutex> lock(mu);
    release = true;
    cv.notify_all();
  }
  wait_for_state(manager, 1, JobState::kDone);
  EXPECT_EQ(picked, (std::vector<std::uint64_t>{1}));
}

TEST(ServeJobManager, CancelRunningJobLeavesACleanPrefix) {
  const auto spec = scenario::parse_scenario_text(kSlowScenario);
  const std::string reference = batch_jsonl(spec);

  JobManager manager;
  JobRequest request;
  request.scenario = spec;
  const auto id = manager.submit(request);

  // Wait for the first completed cell, then cancel mid-sweep.
  const auto first = manager.stream_wait(id, 0);
  ASSERT_FALSE(first.bytes.empty());
  EXPECT_TRUE(manager.cancel(id));
  const std::string bytes = first.bytes + stream_all(manager, id).substr(
                                              first.bytes.size());

  const auto info = manager.status(id);
  ASSERT_TRUE(info.has_value());
  ASSERT_EQ(info->state, JobState::kCancelled);
  // Cancelled short of the full sweep...
  EXPECT_LT(info->cells_done, info->cells_total);
  EXPECT_LT(bytes.size(), reference.size());
  // ...and what was streamed is a clean line-aligned prefix of the
  // batch stream (cells 0..k in index order, nothing torn).
  EXPECT_EQ(bytes, reference.substr(0, bytes.size()));
  EXPECT_TRUE(bytes.empty() || bytes.back() == '\n');
}

TEST(ServeJobManager, InvalidDocumentsFailBeforeQueueing) {
  JobManager manager;
  JobRequest request;
  request.scenario = mini_spec();
  request.scenario.experiments[0].table = "no-such-table";  // bind fails
  EXPECT_THROW(manager.submit(request), ScenarioError);

  const auto id = manager.record_invalid("lab-7", "no experiments");
  const auto info = manager.status(id);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->state, JobState::kFailed);
  EXPECT_EQ(info->source, "lab-7");
  EXPECT_EQ(info->error, "no experiments");
  EXPECT_EQ(manager.queued(), 0u);
  // Terminal immediately: a streamer gets EOT, list() includes it.
  EXPECT_TRUE(manager.stream_wait(id, 0).terminal);
  EXPECT_EQ(manager.list().size(), 1u);
  EXPECT_THROW(manager.stream_wait(id + 1, 0), std::out_of_range);
}

TEST(ServeJobManager, ShutdownCancelsEverythingAndUnblocksStreams) {
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;

  JobManagerOptions options;
  options.workers = 1;
  options.before_job = [&](std::uint64_t) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  };
  auto manager = std::make_unique<JobManager>(options);

  JobRequest request;
  request.scenario = mini_spec();
  manager->submit(request);
  manager->submit(request);
  wait_for_state(*manager, 1, JobState::kRunning);

  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    std::unique_lock<std::mutex> lock(mu);
    release = true;
    cv.notify_all();
  });
  manager->shutdown();  // blocks on the worker; releaser unblocks it
  releaser.join();

  const auto jobs = manager->list();
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_TRUE(is_terminal(jobs[0].state));
  EXPECT_EQ(jobs[1].state, JobState::kCancelled);  // was still queued
  EXPECT_TRUE(manager->stream_wait(2, 0).terminal);
  EXPECT_THROW(manager->submit(request), std::runtime_error);
}

// --- server (loopback socket round-trips) --------------------------------

class ServeServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServerOptions options;
    options.transcript = &transcript_;
    server_ = std::make_unique<Server>(std::move(options));
    runner_ = std::thread([this] { server_->run(); });
  }

  void TearDown() override {
    server_->request_shutdown();
    runner_.join();
    server_.reset();
  }

  /// One request line in, one response line out, parsed.  The wire
  /// protocol is newline-delimited, so embedded newlines in the JSON
  /// (raw-string test documents) are flattened first.
  util::json::Value rpc(LineClient& client, std::string line) {
    for (char& c : line) {
      if (c == '\n') c = ' ';
    }
    client.send_line(line);
    const auto response = client.recv_line();
    EXPECT_TRUE(response.has_value());
    return util::json::parse(response.value_or("null"));
  }

  std::string inline_submit(int priority = 0) {
    return R"({"req": "submit", "priority": )" + std::to_string(priority) +
           R"(, "scenario": )" + std::string(kMiniScenario) + "}";
  }

  std::ostringstream transcript_;
  std::unique_ptr<Server> server_;
  std::thread runner_;
};

TEST_F(ServeServerTest, SubmitStatusStreamRoundTrip) {
  const std::string reference = batch_jsonl(mini_spec());
  LineClient client("127.0.0.1", server_->port());

  const auto submitted = rpc(client, inline_submit());
  EXPECT_TRUE(submitted.find("ok")->as_bool());
  ASSERT_NE(submitted.find("job"), nullptr);
  EXPECT_EQ(submitted.find("job")->as_int(), 1);

  // Stream the whole job: opening response, raw cell lines, EOT.
  client.send_line(R"({"req": "stream", "job": 1})");
  const auto opening = util::json::parse(client.recv_line().value());
  EXPECT_TRUE(opening.find("ok")->as_bool());
  std::string bytes;
  for (;;) {
    const auto line = client.recv_line();
    ASSERT_TRUE(line.has_value());
    if (line->find(kEotSchema) != std::string::npos) {
      const auto eot = util::json::parse(*line);
      EXPECT_EQ(eot.find("state")->as_string(), "done");
      EXPECT_EQ(eot.find("bytes")->as_int(),
                static_cast<std::int64_t>(reference.size()));
      break;
    }
    bytes += *line + "\n";
  }
  EXPECT_EQ(bytes, reference);

  const auto status = rpc(client, R"({"req": "status", "job": 1})");
  const auto* job = status.find("job");
  ASSERT_NE(job, nullptr);
  EXPECT_EQ(job->find("state")->as_string(), "done");
  EXPECT_EQ(job->find("name")->as_string(), "mini");

  // Transcript saw both directions.
  const std::string transcript = transcript_.str();
  EXPECT_NE(transcript.find(">> "), std::string::npos);
  EXPECT_NE(transcript.find("<< "), std::string::npos);
  EXPECT_NE(transcript.find("streamed"), std::string::npos);
}

TEST_F(ServeServerTest, ConcurrentClientsGetDistinctJobs) {
  LineClient a("127.0.0.1", server_->port());
  LineClient b("127.0.0.1", server_->port());
  const auto ja = rpc(a, inline_submit(1));
  const auto jb = rpc(b, inline_submit(2));
  ASSERT_TRUE(ja.find("ok")->as_bool());
  ASSERT_TRUE(jb.find("ok")->as_bool());
  EXPECT_NE(ja.find("job")->as_int(), jb.find("job")->as_int());

  // Both complete and both appear in one list.
  for (int i = 0; i < 10000; ++i) {
    const auto list = rpc(a, R"({"req": "list"})");
    const auto& jobs = list.find("jobs")->as_array();
    std::size_t done = 0;
    for (const auto& job : jobs) {
      if (job.find("state")->as_string() == "done") ++done;
    }
    if (done == 2) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  FAIL() << "jobs never completed";
}

TEST_F(ServeServerTest, ErrorsNameTheSourceAndSuggest) {
  LineClient client("127.0.0.1", server_->port());

  // Unknown request type: did-you-mean, still a protocol-level error.
  const auto typo = rpc(client, R"({"req": "submitt"})");
  EXPECT_FALSE(typo.find("ok")->as_bool());
  EXPECT_NE(typo.find("error")->as_string().find("did you mean \"submit\"?"),
            std::string::npos);

  // Invalid document: the error names "job N (source)" and the job
  // stays addressable with that id.
  const auto invalid = rpc(
      client,
      R"({"req": "submit", "source": "lab-9", "scenario": {"schema":
          "adacheck-scenario-v1", "name": "x", "experiments": []}})");
  EXPECT_FALSE(invalid.find("ok")->as_bool());
  ASSERT_NE(invalid.find("job"), nullptr);
  const auto id = invalid.find("job")->as_int();
  const std::string message = invalid.find("error")->as_string();
  EXPECT_NE(message.find("job " + std::to_string(id)), std::string::npos)
      << message;
  EXPECT_NE(message.find("lab-9"), std::string::npos) << message;

  const auto status = rpc(
      client, R"({"req": "status", "job": )" + std::to_string(id) + "}");
  EXPECT_EQ(status.find("job")->find("state")->as_string(), "failed");

  // Unknown job ids are errors, not hangs.
  const auto missing = rpc(client, R"({"req": "status", "job": 999})");
  EXPECT_FALSE(missing.find("ok")->as_bool());
}

TEST_F(ServeServerTest, CancelAndShutdownOverTheWire) {
  LineClient client("127.0.0.1", server_->port());
  std::string slow(kSlowScenario);
  const auto submitted =
      rpc(client, R"({"req": "submit", "scenario": )" + slow + "}");
  ASSERT_TRUE(submitted.find("ok")->as_bool());

  const auto cancelled = rpc(client, R"({"req": "cancel", "job": 1})");
  EXPECT_TRUE(cancelled.find("ok")->as_bool());

  // The job lands terminal (cancelled mid-run, or done if it won the
  // race); either way shutdown is clean and run() returns.
  for (int i = 0; i < 10000; ++i) {
    const auto status = rpc(client, R"({"req": "status", "job": 1})");
    const auto state = status.find("job")->find("state")->as_string();
    if (state == "cancelled" || state == "done") break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto bye = rpc(client, R"({"req": "shutdown"})");
  EXPECT_TRUE(bye.find("ok")->as_bool());
  runner_.join();  // run() must return on its own after shutdown
  runner_ = std::thread([] {});
}

TEST_F(ServeServerTest, StatsReportsLiveCountersMonotonically) {
  LineClient client("127.0.0.1", server_->port());
  // Prime some traffic: one submitted job plus a list request.
  ASSERT_TRUE(rpc(client, inline_submit()).find("ok")->as_bool());
  ASSERT_TRUE(rpc(client, R"({"req": "list"})").find("ok")->as_bool());

  const auto first = rpc(client, R"({"req": "stats"})");
  ASSERT_TRUE(first.find("ok")->as_bool());
  EXPECT_EQ(first.find("req")->as_string(), "stats");
  const auto* stats = first.find("stats");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->find("schema")->as_string(), "adacheck-stats-v1");
  const auto* counters = stats->find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_GE(counters->find("serve.jobs_submitted")->as_int(), 1);
  const auto lists = counters->find("serve.requests.list")->as_int();
  EXPECT_GE(lists, 1);
  // The queue-depth gauge and per-verb latency histograms exist too.
  ASSERT_NE(stats->find("gauges")->find("serve.queue_depth"), nullptr);
  const auto* latency =
      stats->find("histograms")->find("serve.request_us.list");
  ASSERT_NE(latency, nullptr);
  EXPECT_GE(latency->find("count")->as_int(), lists);

  // More traffic -> strictly larger counts (counters never move down).
  ASSERT_TRUE(rpc(client, R"({"req": "list"})").find("ok")->as_bool());
  const auto second = rpc(client, R"({"req": "stats"})");
  EXPECT_GT(second.find("stats")
                ->find("counters")
                ->find("serve.requests.list")
                ->as_int(),
            lists);

  // Requests with unknown keys are rejected, not silently accepted.
  const auto extra = rpc(client, R"({"req": "stats", "verbose": true})");
  EXPECT_FALSE(extra.find("ok")->as_bool());
}

TEST_F(ServeServerTest, MalformedLineIsAnErrorNotADisconnect) {
  LineClient client("127.0.0.1", server_->port());
  const auto garbage = rpc(client, "this is not json");
  EXPECT_FALSE(garbage.find("ok")->as_bool());
  // The connection survives for the next request.
  const auto list = rpc(client, R"({"req": "list"})");
  EXPECT_TRUE(list.find("ok")->as_bool());
}

}  // namespace
}  // namespace adacheck::serve
