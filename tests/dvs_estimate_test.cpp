#include "analytic/dvs_estimate.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace adacheck::analytic {
namespace {

TEST(DvsTimeEstimate, MatchesPaperFormula) {
  // t_est = R_c (1 + sqrt(lambda c/f)) / (f (1 - sqrt(lambda c/f))).
  const double rc = 9'200.0, f = 1.0, c = 22.0, lambda = 1e-4;
  const double u = std::sqrt(lambda * c / f);
  EXPECT_NEAR(dvs_time_estimate(rc, f, c, lambda),
              rc * (1.0 + u) / (f * (1.0 - u)), 1e-9);
}

TEST(DvsTimeEstimate, FaultFreeIsPureExecutionTime) {
  EXPECT_DOUBLE_EQ(dvs_time_estimate(1'000.0, 2.0, 22.0, 0.0), 500.0);
}

TEST(DvsTimeEstimate, InfiniteWhenOverheadOutpacesProgress) {
  // sqrt(lambda c / f) >= 1 -> estimate diverges.
  EXPECT_TRUE(std::isinf(dvs_time_estimate(100.0, 1.0, 22.0, 1.0 / 22.0)));
  EXPECT_TRUE(std::isinf(dvs_time_estimate(100.0, 1.0, 22.0, 10.0)));
}

TEST(DvsTimeEstimate, FasterSpeedHelpsTwice) {
  // Higher f shortens both the base time and the per-checkpoint cost.
  const double slow = dvs_time_estimate(1'000.0, 1.0, 22.0, 1e-3);
  const double fast = dvs_time_estimate(1'000.0, 2.0, 22.0, 1e-3);
  EXPECT_LT(fast, slow / 2.0 * 1.1);
  EXPECT_LT(fast, slow);
}

TEST(DvsTimeEstimate, ValidatesArguments) {
  EXPECT_THROW(dvs_time_estimate(-1.0, 1.0, 22.0, 0.0),
               std::invalid_argument);
  EXPECT_THROW(dvs_time_estimate(10.0, 0.0, 22.0, 0.0),
               std::invalid_argument);
  EXPECT_THROW(dvs_time_estimate(10.0, 1.0, 0.0, 0.0),
               std::invalid_argument);
  EXPECT_THROW(dvs_time_estimate(10.0, 1.0, 22.0, -1.0),
               std::invalid_argument);
}

TEST(ChooseSpeed, PaperTable1Decision) {
  // Table 1(a) entry point: U = 0.76, lambda = 1.4e-3 -> t_est at f1 is
  // 10835 > 10000, so the scheme starts at f2 (Fig. 6 line 2).
  const auto proc = model::DvsProcessor::two_speed(2.0);
  const auto& lvl = choose_speed(proc, 7'600.0, 10'000.0, 22.0, 1.4e-3);
  EXPECT_DOUBLE_EQ(lvl.frequency, 2.0);
}

TEST(ChooseSpeed, LowSpeedWhenComfortable) {
  const auto proc = model::DvsProcessor::two_speed(2.0);
  const auto& lvl = choose_speed(proc, 4'000.0, 10'000.0, 22.0, 1.4e-3);
  EXPECT_DOUBLE_EQ(lvl.frequency, 1.0);
}

TEST(ChooseSpeed, FastestWhenNothingFits) {
  // Even f2 cannot make it: the decision still returns the fastest
  // level (the engine/policy then aborts).
  const auto proc = model::DvsProcessor::two_speed(2.0);
  const auto& lvl = choose_speed(proc, 30'000.0, 10'000.0, 22.0, 1.4e-3);
  EXPECT_DOUBLE_EQ(lvl.frequency, 2.0);
}

TEST(ChooseSpeed, SwitchesBackDownAsWorkDrains) {
  // The same scenario mid-run: after enough progress the low speed
  // becomes feasible again (this drives the paper's energy savings).
  const auto proc = model::DvsProcessor::two_speed(2.0);
  const double lambda = 1.4e-3, c = 22.0;
  const auto& early = choose_speed(proc, 7'600.0, 10'000.0, c, lambda);
  EXPECT_DOUBLE_EQ(early.frequency, 2.0);
  // After ~600 time units at f2: R_c = 7600 - 1200, R_d = 9400.
  const auto& later = choose_speed(proc, 6'400.0, 9'400.0, c, lambda);
  EXPECT_DOUBLE_EQ(later.frequency, 1.0);
}

TEST(ChooseSpeed, MultiLevelPicksSlowestFeasible) {
  model::VoltageLaw law;
  const model::DvsProcessor proc({{1.0, law.voltage_for(1.0)},
                                  {1.5, law.voltage_for(1.5)},
                                  {2.0, law.voltage_for(2.0)}});
  const auto& lvl = choose_speed(proc, 12'000.0, 10'000.0, 22.0, 1e-4);
  EXPECT_DOUBLE_EQ(lvl.frequency, 1.5);
}

}  // namespace
}  // namespace adacheck::analytic
