#include "policy/fixed_interval.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "analytic/intervals.hpp"
#include "sim/engine.hpp"
#include "tests/test_helpers.hpp"

namespace adacheck::policy {
namespace {

sim::ExecContext make_context(const sim::SimSetup& setup) {
  sim::ExecContext ctx;
  ctx.task = &setup.task;
  ctx.costs = &setup.costs;
  ctx.processor = &setup.processor;
  ctx.lambda = setup.fault_model.rate;
  ctx.remaining_cycles = setup.task.cycles;
  ctx.now = 0.0;
  ctx.remaining_faults = setup.task.fault_tolerance;
  return ctx;
}

TEST(PoissonArrivalPolicy, UsesDudaInterval) {
  const auto setup = testutil::dvs_setup(7'600.0, 10'000.0, 5, 1.4e-3);
  PoissonArrivalPolicy policy(0);
  const auto d = policy.initial(make_context(setup));
  EXPECT_DOUBLE_EQ(d.speed.frequency, 1.0);
  EXPECT_EQ(d.inner, sim::InnerKind::kNone);
  EXPECT_NEAR(d.cscp_interval, analytic::poisson_interval(22.0, 1.4e-3),
              1e-9);
  EXPECT_FALSE(d.abort);
}

TEST(PoissonArrivalPolicy, HighSpeedLevelScalesCost) {
  // At f2, the checkpoint cost in time is c/f2 = 11 and I1 shrinks by
  // sqrt(2).
  const auto setup = testutil::dvs_setup(15'200.0, 10'000.0, 5, 1.4e-3);
  PoissonArrivalPolicy policy(1);
  const auto d = policy.initial(make_context(setup));
  EXPECT_DOUBLE_EQ(d.speed.frequency, 2.0);
  EXPECT_NEAR(d.cscp_interval, analytic::poisson_interval(11.0, 1.4e-3),
              1e-9);
}

TEST(PoissonArrivalPolicy, ZeroLambdaClampsToWholeTask) {
  const auto setup = testutil::dvs_setup(7'600.0, 10'000.0, 5, 0.0);
  PoissonArrivalPolicy policy(0);
  const auto d = policy.initial(make_context(setup));
  // I1 is infinite; the plan clamps to the whole remaining work.
  EXPECT_DOUBLE_EQ(d.cscp_interval, 7'600.0);
}

TEST(PoissonArrivalPolicy, NeverAdaptsOnFault) {
  const auto setup = testutil::dvs_setup(7'600.0, 10'000.0, 5, 1.4e-3);
  PoissonArrivalPolicy policy(0);
  auto ctx = make_context(setup);
  const auto first = policy.initial(ctx);
  ctx.remaining_cycles = 1'000.0;  // deep into the run
  ctx.now = 9'000.0;
  ctx.remaining_faults = 0;
  const auto later = policy.on_fault(ctx);
  EXPECT_DOUBLE_EQ(later.cscp_interval, first.cscp_interval);
  EXPECT_DOUBLE_EQ(later.speed.frequency, first.speed.frequency);
}

TEST(KFaultTolerantPolicy, UsesWorstCaseInterval) {
  const auto setup = testutil::dvs_setup(7'600.0, 10'000.0, 5, 1.4e-3);
  KFaultTolerantPolicy policy(0);
  const auto d = policy.initial(make_context(setup));
  EXPECT_NEAR(d.cscp_interval,
              analytic::k_fault_interval(7'600.0, 5, 22.0), 1e-9);
}

TEST(KFaultTolerantPolicy, ZeroKClampsToWholeTask) {
  const auto setup = testutil::dvs_setup(7'600.0, 10'000.0, 0, 1.4e-3);
  KFaultTolerantPolicy policy(0);
  const auto d = policy.initial(make_context(setup));
  EXPECT_DOUBLE_EQ(d.cscp_interval, 7'600.0);
}

TEST(KFaultTolerantPolicy, FixedAcrossFaults) {
  const auto setup = testutil::dvs_setup(7'600.0, 10'000.0, 5, 1.4e-3);
  KFaultTolerantPolicy policy(0);
  auto ctx = make_context(setup);
  const auto first = policy.initial(ctx);
  ctx.remaining_cycles = 500.0;
  const auto later = policy.on_fault(ctx);
  EXPECT_DOUBLE_EQ(later.cscp_interval, first.cscp_interval);
}

TEST(FixedPolicies, EndToEndFaultFreeTiming) {
  // Full-run integration at lambda = 0: finish time equals the analytic
  // fault-free time with the policy's interval.
  const auto setup = testutil::dvs_setup(7'600.0, 10'000.0, 5, 0.0);
  KFaultTolerantPolicy policy(0);
  model::FaultTrace none;
  model::ReplayFaultSource source(none);
  const auto result = sim::simulate(setup, policy, source);
  EXPECT_EQ(result.outcome, sim::RunOutcome::kCompleted);
  const double interval = analytic::k_fault_interval(7'600.0, 5, 22.0);
  const int checkpoints =
      static_cast<int>(std::ceil(7'600.0 / interval - 1e-9));
  EXPECT_NEAR(result.finish_time, 7'600.0 + checkpoints * 22.0, 1e-6);
}

TEST(FixedPolicies, Names) {
  EXPECT_EQ(PoissonArrivalPolicy(0).name(), "Poisson");
  EXPECT_EQ(KFaultTolerantPolicy(0).name(), "k-f-t");
}

}  // namespace
}  // namespace adacheck::policy
