// The obs telemetry layer: registry metrics, trace events, and the
// one invariant everything else leans on — telemetry never changes a
// result byte.
#include "obs/registry.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "harness/json_report.hpp"
#include "harness/stream_report.hpp"
#include "harness/sweep.hpp"
#include "obs/trace.hpp"
#include "util/canonical_json.hpp"
#include "util/json.hpp"

namespace adacheck::obs {
namespace {

// ---------------------------------------------------------------------
// Counter / Gauge / LatencyHisto units

TEST(ObsCounter, MergesConcurrentIncrements) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.add(1);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
  counter.reset();
  EXPECT_EQ(counter.value(), 0);
}

TEST(ObsGauge, SetAndDeltaCompose) {
  Gauge gauge;
  gauge.set(7);
  gauge.add(3);
  gauge.add(-10);
  EXPECT_EQ(gauge.value(), 0);
}

TEST(ObsHisto, CountsSumsAndBoundsQuantiles) {
  LatencyHisto histo;
  histo.record(1);
  histo.record(100);
  histo.record(1'000);
  histo.record(10'000);
  EXPECT_EQ(histo.count(), 4);
  EXPECT_EQ(histo.sum_micros(), 11'101);
  EXPECT_EQ(histo.max_micros(), 10'000);
  // Log2 bins: quantiles land on bin upper bounds, clamped to the
  // observed max — order must hold and nothing may exceed the max.
  const double p50 = histo.quantile_micros(0.5);
  const double p99 = histo.quantile_micros(0.99);
  EXPECT_GE(p50, 100.0);
  EXPECT_LE(p50, p99);
  EXPECT_LE(p99, 10'000.0);
}

TEST(ObsHisto, EmptyQuantileIsZero) {
  LatencyHisto histo;
  EXPECT_EQ(histo.count(), 0);
  EXPECT_EQ(histo.quantile_micros(0.5), 0.0);
}

// ---------------------------------------------------------------------
// Registry

TEST(ObsRegistry, DisabledByDefaultAndReferencesAreStable) {
  Registry registry;
  EXPECT_FALSE(registry.enabled());
  Counter& counter = registry.counter("pool.tasks_enqueued");
  counter.add(5);
  // Same name -> same object; reset zeroes in place.
  EXPECT_EQ(&registry.counter("pool.tasks_enqueued"), &counter);
  registry.reset();
  EXPECT_EQ(counter.value(), 0);
  counter.add(2);
  EXPECT_EQ(registry.counter("pool.tasks_enqueued").value(), 2);
}

TEST(ObsRegistry, SnapshotIsNameSorted) {
  Registry registry;
  registry.counter("z.last").add(1);
  registry.counter("a.first").add(2);
  registry.gauge("m.middle").set(3);
  registry.histogram("h.histo").record(10);
  const StatsSnapshot snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].name, "a.first");
  EXPECT_EQ(snapshot.counters[0].value, 2);
  EXPECT_EQ(snapshot.counters[1].name, "z.last");
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_EQ(snapshot.gauges[0].value, 3);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].count, 1);
  EXPECT_EQ(snapshot.histograms[0].sum_micros, 10);
}

TEST(ObsRegistry, StatsJsonParsesAndCarriesTheSchema) {
  Registry registry;
  registry.counter("campaign.cache_hits").add(4);
  registry.gauge("serve.queue_depth").set(2);
  registry.histogram("serve.request_us.list").record(250);

  for (const bool pretty : {false, true}) {
    const std::string text = stats_json(registry.snapshot(), pretty);
    const auto root = util::json::parse(text);
    EXPECT_EQ(root.find("schema")->as_string(), kStatsSchema);
    EXPECT_EQ(root.find("counters")->find("campaign.cache_hits")->as_int(), 4);
    EXPECT_EQ(root.find("gauges")->find("serve.queue_depth")->as_int(), 2);
    const util::json::Value* histo =
        root.find("histograms")->find("serve.request_us.list");
    ASSERT_NE(histo, nullptr);
    EXPECT_EQ(histo->find("count")->as_int(), 1);
    EXPECT_EQ(histo->find("sum_micros")->as_int(), 250);
    EXPECT_EQ(histo->find("max_micros")->as_int(), 250);
  }
  // Pretty is a formatting choice, not a content one.
  EXPECT_EQ(
      util::canonical_json(util::json::parse(
          stats_json(registry.snapshot(), true))),
      util::canonical_json(util::json::parse(
          stats_json(registry.snapshot(), false))));
}

// ---------------------------------------------------------------------
// Tracer

/// Guard: leaves the process-wide tracer disabled and empty, however
/// the test exits.
struct TracerSandbox {
  TracerSandbox() {
    Tracer::instance().set_enabled(false);
    Tracer::instance().clear();
  }
  ~TracerSandbox() {
    Tracer::instance().set_enabled(false);
    Tracer::instance().clear();
  }
};

TEST(ObsTracer, BuffersSpansAndInstants) {
  TracerSandbox sandbox;
  auto& tracer = Tracer::instance();
  tracer.set_enabled(true);
  tracer.complete("chunk", "sweep", 100, 50);
  tracer.instant("budget_stop", "sweep");
  EXPECT_EQ(tracer.event_count(), 2u);

  std::ostringstream out;
  tracer.write_json(out);
  const auto root = util::json::parse(out.str());
  EXPECT_EQ(root.find("displayTimeUnit")->as_string(), "ms");
  const util::json::Value* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->as_array().size(), 2u);
  const auto& span = events->as_array()[0];
  EXPECT_EQ(span.find("name")->as_string(), "chunk");
  EXPECT_EQ(span.find("cat")->as_string(), "sweep");
  EXPECT_EQ(span.find("ph")->as_string(), "X");
  EXPECT_EQ(span.find("ts")->as_int(), 100);
  EXPECT_EQ(span.find("dur")->as_int(), 50);
  const auto& instant = events->as_array()[1];
  EXPECT_EQ(instant.find("ph")->as_string(), "i");
  EXPECT_EQ(instant.find("s")->as_string(), "t");

  tracer.clear();
  EXPECT_EQ(tracer.event_count(), 0u);
}

TEST(ObsTracer, SpanGatesOnEnabledAtConstruction) {
  TracerSandbox sandbox;
  auto& tracer = Tracer::instance();
  {
    Span span("ignored", "test");  // tracing is off -> no event
    tracer.set_enabled(true);
  }
  EXPECT_EQ(tracer.event_count(), 0u);
  {
    Span span("captured", "test");
  }
  EXPECT_EQ(tracer.event_count(), 1u);
}

// ---------------------------------------------------------------------
// The neutrality invariant: identical result bytes with telemetry on
// or off, serial or parallel.

harness::ExperimentSpec neutrality_spec() {
  harness::ExperimentSpec spec;
  spec.id = "obstest";
  spec.title = "telemetry neutrality grid";
  spec.costs = model::CheckpointCosts::paper_scp_flavor();
  spec.deadline = 10'000.0;
  spec.fault_tolerance = 5;
  spec.speed_ratio = 2.0;
  spec.util_level = 0;
  spec.schemes = {"Poisson", "A_D_S"};
  spec.rows = {{0.76, 1.4e-3, {}}, {0.80, 1.6e-3, {}}};
  return spec;
}

/// One sweep -> (report bytes, JSONL bytes), perf section excluded
/// (timing legitimately differs between runs).
std::pair<std::string, std::string> sweep_bytes(int threads) {
  const auto spec = neutrality_spec();
  sim::MonteCarloConfig config;
  config.runs = 300;
  config.seed = 0x0B5;
  config.threads = threads;
  std::ostringstream jsonl;
  harness::JsonlCellStream stream(jsonl, harness::sweep_cell_refs({spec}));
  harness::SweepOptions options;
  options.observer = &stream;
  const auto result = harness::run_sweep({spec}, config, options);
  harness::JsonReportOptions report;
  report.include_perf = false;
  return {harness::sweep_json(result, report), jsonl.str()};
}

TEST(ObsNeutrality, ResultBytesIdenticalWithTelemetryOnOrOff) {
  TracerSandbox sandbox;
  auto& registry = Registry::instance();
  const bool was_enabled = registry.enabled();
  registry.set_enabled(false);

  for (const int threads : {1, 4}) {
    const auto off = sweep_bytes(threads);

    registry.set_enabled(true);
    Tracer::instance().set_enabled(true);
    const auto on = sweep_bytes(threads);
    registry.set_enabled(false);
    Tracer::instance().set_enabled(false);

    // Telemetry collected something...
    EXPECT_GT(registry.counter("sweep.runs").value(), 0);
    EXPECT_GT(Tracer::instance().event_count(), 0u);
    // ...and not one result byte moved, at any thread count.
    EXPECT_EQ(off.first, on.first) << "report bytes, threads=" << threads;
    EXPECT_EQ(off.second, on.second) << "JSONL bytes, threads=" << threads;
    EXPECT_FALSE(off.second.empty());
  }

  registry.set_enabled(was_enabled);
}

}  // namespace
}  // namespace adacheck::obs
