// DAG task-graph subsystem: TaskGraph validation/analysis, the
// scheduler-policy registry, the pluggable flat-executive dispatch,
// the multi-worker graph executive (precedence, contention, blocking
// accounting, skip-late interactions), and the harness bridge
// (thread-count bit-identity, paired-policy miss-rate separation,
// cancellation leaving a clean JSONL prefix).
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "harness/graph_experiment.hpp"
#include "harness/json_report.hpp"
#include "harness/stream_report.hpp"
#include "harness/sweep.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "sched/executive.hpp"
#include "sched/graph_executive.hpp"
#include "sched/scheduler.hpp"
#include "sched/task_graph.hpp"
#include "sched/taskset.hpp"

namespace adacheck {
namespace {

using sched::GraphExecutiveConfig;
using sched::GraphNode;
using sched::TaskGraph;

GraphNode node(const char* name, double cycles, int k = 2) {
  GraphNode n;
  n.name = name;
  n.cycles = cycles;
  n.fault_tolerance = k;
  return n;
}

/// fetch -> decode -> process -> commit, no resources.
TaskGraph chain_graph() {
  TaskGraph graph;
  graph.period = 16'000.0;
  graph.deadline = 15'000.0;
  graph.add_node(node("fetch", 2'000.0));
  graph.add_node(node("decode", 3'000.0));
  graph.add_node(node("process", 4'000.0, 3));
  graph.add_node(node("commit", 1'000.0));
  graph.add_edge("fetch", "decode");
  graph.add_edge("decode", "process");
  graph.add_edge("process", "commit");
  return graph;
}

/// split -> {left, right} -> join; left/right contend on one bus.
TaskGraph diamond_graph(int bus_capacity = 1) {
  TaskGraph graph;
  graph.period = 18'000.0;
  graph.deadline = 17'000.0;
  const std::size_t bus = graph.add_resource("bus", bus_capacity);
  graph.add_node(node("split", 1'500.0));
  GraphNode left = node("left", 4'000.0);
  left.resources.push_back(bus);
  graph.add_node(left);
  GraphNode right = node("right", 3'500.0);
  right.resources.push_back(bus);
  graph.add_node(right);
  graph.add_node(node("join", 1'000.0));
  graph.add_edge("split", "left");
  graph.add_edge("split", "right");
  graph.add_edge("left", "join");
  graph.add_edge("right", "join");
  return graph;
}

/// Four independent short jobs (admitted first) competing with a
/// three-stage critical chain on two workers.  A ready-order policy
/// starves the chain; a path-aware policy runs it immediately.
TaskGraph chain_vs_shorts_graph() {
  TaskGraph graph;
  graph.period = 20'000.0;
  graph.deadline = 11'500.0;
  graph.add_node(node("s1", 2'000.0));
  graph.add_node(node("s2", 2'000.0));
  graph.add_node(node("s3", 2'000.0));
  graph.add_node(node("s4", 2'000.0));
  graph.add_node(node("c1", 3'000.0));
  graph.add_node(node("c2", 3'000.0));
  graph.add_node(node("c3", 3'000.0));
  graph.add_edge("c1", "c2");
  graph.add_edge("c2", "c3");
  return graph;
}

GraphExecutiveConfig quiet_config(double lambda = 0.0) {
  GraphExecutiveConfig config;
  config.costs = model::CheckpointCosts::paper_scp_flavor();
  config.fault_model = model::FaultModel{lambda, false};
  return config;
}

// --- TaskGraph validation and analysis -----------------------------------

TEST(TaskGraph, ValidationRules) {
  TaskGraph empty;
  empty.period = 100.0;
  EXPECT_THROW(empty.validate(), std::invalid_argument);

  TaskGraph no_period;
  no_period.add_node(node("a", 10.0));
  EXPECT_THROW(no_period.validate(), std::invalid_argument);

  TaskGraph dup;
  dup.period = 100.0;
  dup.add_node(node("a", 10.0));
  dup.add_node(node("a", 20.0));
  EXPECT_THROW(dup.validate(), std::invalid_argument);

  TaskGraph bad_cycles;
  bad_cycles.period = 100.0;
  bad_cycles.add_node(node("a", 0.0));
  EXPECT_THROW(bad_cycles.validate(), std::invalid_argument);

  TaskGraph self_edge;
  self_edge.period = 100.0;
  self_edge.add_node(node("a", 10.0));
  self_edge.edges.push_back({0, 0});
  EXPECT_THROW(self_edge.validate(), std::invalid_argument);

  TaskGraph bad_resource;
  bad_resource.period = 100.0;
  GraphNode needs = node("a", 10.0);
  needs.resources.push_back(3);  // no such resource
  bad_resource.add_node(needs);
  EXPECT_THROW(bad_resource.validate(), std::invalid_argument);

  TaskGraph dup_ref;
  dup_ref.period = 100.0;
  const std::size_t r = dup_ref.add_resource("bus");
  GraphNode twice = node("a", 10.0);
  twice.resources.push_back(r);
  twice.resources.push_back(r);
  dup_ref.add_node(twice);
  EXPECT_THROW(dup_ref.validate(), std::invalid_argument);

  TaskGraph bad_capacity;
  bad_capacity.period = 100.0;
  bad_capacity.add_node(node("a", 10.0));
  bad_capacity.resources.push_back({"bus", 0});
  EXPECT_THROW(bad_capacity.validate(), std::invalid_argument);

  EXPECT_NO_THROW(chain_graph().validate());
  EXPECT_NO_THROW(diamond_graph().validate());
}

TEST(TaskGraph, CycleErrorNamesThePath) {
  TaskGraph graph;
  graph.period = 100.0;
  graph.add_node(node("a", 10.0));
  graph.add_node(node("b", 10.0));
  graph.add_edge("a", "b");
  graph.add_edge("b", "a");
  try {
    graph.validate();
    FAIL() << "cycle not detected";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("cycle"), std::string::npos) << what;
    EXPECT_NE(what.find("a -> b -> a"), std::string::npos) << what;
  }
}

TEST(TaskGraph, UnknownEdgeNameThrows) {
  TaskGraph graph;
  graph.period = 100.0;
  graph.add_node(node("a", 10.0));
  EXPECT_THROW(graph.add_edge("a", "nope"), std::invalid_argument);
  EXPECT_THROW(graph.node_index("nope"), std::invalid_argument);
}

TEST(TaskGraph, TopologicalOrderAndCriticalPath) {
  const TaskGraph diamond = diamond_graph();
  const auto order = diamond.topological_order();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], diamond.node_index("split"));
  // Among simultaneously ready nodes the smallest index first.
  EXPECT_EQ(order[1], diamond.node_index("left"));
  EXPECT_EQ(order[2], diamond.node_index("right"));
  EXPECT_EQ(order[3], diamond.node_index("join"));

  // Longest path: split -> left -> join.
  EXPECT_DOUBLE_EQ(diamond.critical_path_cycles(), 6'500.0);
  const auto downstream = diamond.downstream_path_cycles();
  EXPECT_DOUBLE_EQ(downstream[diamond.node_index("split")], 6'500.0);
  EXPECT_DOUBLE_EQ(downstream[diamond.node_index("left")], 5'000.0);
  EXPECT_DOUBLE_EQ(downstream[diamond.node_index("right")], 4'500.0);
  EXPECT_DOUBLE_EQ(downstream[diamond.node_index("join")], 1'000.0);

  EXPECT_DOUBLE_EQ(chain_graph().critical_path_cycles(), 10'000.0);
}

TEST(TaskGraph, ImplicitDeadlineEqualsPeriod) {
  TaskGraph graph;
  graph.period = 500.0;
  EXPECT_DOUBLE_EQ(graph.end_to_end_deadline(), 500.0);
  graph.deadline = 400.0;
  EXPECT_DOUBLE_EQ(graph.end_to_end_deadline(), 400.0);
}

// --- scheduler registry --------------------------------------------------

TEST(SchedulerRegistry, KnownNamesAndFactories) {
  const auto names = sched::known_schedulers();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_TRUE(sched::is_known_scheduler("edf"));
  EXPECT_TRUE(sched::is_known_scheduler("fifo"));
  EXPECT_TRUE(sched::is_known_scheduler("critical-path"));
  EXPECT_TRUE(sched::is_known_scheduler("least-laxity"));
  EXPECT_FALSE(sched::is_known_scheduler("edff"));
  for (const auto& name : names) {
    const auto policy = sched::make_scheduler(name);
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(policy->name(), name);
  }
  for (const auto& info : sched::known_scheduler_info()) {
    EXPECT_FALSE(info.description.empty()) << info.name;
  }
  EXPECT_THROW(sched::make_scheduler("edff"), std::invalid_argument);
}

TEST(SchedulerRegistry, PriorityKeysOrderCandidates) {
  sched::DispatchCandidate urgent;
  urgent.ready_time = 5.0;
  urgent.absolute_deadline = 100.0;
  urgent.remaining_path = 50.0;
  sched::DispatchCandidate relaxed;
  relaxed.ready_time = 1.0;
  relaxed.absolute_deadline = 900.0;
  relaxed.remaining_path = 10.0;

  const auto edf = sched::make_scheduler("edf");
  EXPECT_LT(edf->priority_key(urgent, 10.0), edf->priority_key(relaxed, 10.0));
  const auto fifo = sched::make_scheduler("fifo");
  EXPECT_LT(fifo->priority_key(relaxed, 10.0),
            fifo->priority_key(urgent, 10.0));
  const auto cp = sched::make_scheduler("critical-path");
  EXPECT_LT(cp->priority_key(urgent, 10.0), cp->priority_key(relaxed, 10.0));
  const auto laxity = sched::make_scheduler("least-laxity");
  // urgent: (100 - 10) - 50 = 40; relaxed: (900 - 10) - 10 = 880.
  EXPECT_DOUBLE_EQ(laxity->priority_key(urgent, 10.0), 40.0);
  EXPECT_DOUBLE_EQ(laxity->priority_key(relaxed, 10.0), 880.0);
}

// --- flat executive with pluggable policies ------------------------------

sched::PeriodicTask periodic(const char* name, double cycles, double period) {
  sched::PeriodicTask task;
  task.name = name;
  task.cycles = cycles;
  task.period = period;
  task.fault_tolerance = 3;
  task.policy = "A_D_S";
  return task;
}

TEST(Executive, FifoRunsAdmissionOrderWhereEdfReorders) {
  // Both release at 0: edf runs "tight" first (deadline 1000 < 4000),
  // fifo keeps admission order (release, task index) -> "loose" first.
  sched::TaskSet set{{periodic("loose", 200.0, 4'000.0),
                      periodic("tight", 200.0, 1'000.0)}};
  sched::ExecutiveConfig config;
  config.horizon = 4'000.0;
  config.costs = model::CheckpointCosts::paper_scp_flavor();
  config.fault_model = model::FaultModel{0.0, false};

  config.scheduler = "edf";
  const auto edf = run_executive(set, config);
  ASSERT_GE(edf.jobs.size(), 2u);
  EXPECT_EQ(set.tasks[edf.jobs[0].task_index].name, "tight");

  config.scheduler = "fifo";
  const auto fifo = run_executive(set, config);
  ASSERT_GE(fifo.jobs.size(), 2u);
  EXPECT_EQ(set.tasks[fifo.jobs[0].task_index].name, "loose");
  EXPECT_EQ(set.tasks[fifo.jobs[1].task_index].name, "tight");
}

TEST(Executive, SimultaneousReleaseDeadlineTieBreaksByTaskIndex) {
  // Identical periods and deadlines: every policy key ties, so the
  // admission sequence (release, then task index) decides — pinned.
  sched::TaskSet set{{periodic("b_second", 100.0, 1'000.0),
                      periodic("a_first", 100.0, 1'000.0)}};
  for (const auto& scheduler : sched::known_schedulers()) {
    sched::ExecutiveConfig config;
    config.horizon = 2'000.0;
    config.costs = model::CheckpointCosts::paper_scp_flavor();
    config.fault_model = model::FaultModel{0.0, false};
    config.scheduler = scheduler;
    const auto result = run_executive(set, config);
    ASSERT_GE(result.jobs.size(), 2u) << scheduler;
    EXPECT_EQ(result.jobs[0].task_index, 0) << scheduler;
    EXPECT_EQ(result.jobs[1].task_index, 1) << scheduler;
  }
}

TEST(Executive, UnknownSchedulerRejected) {
  sched::TaskSet set{{periodic("a", 100.0, 1'000.0)}};
  sched::ExecutiveConfig config;
  config.horizon = 2'000.0;
  config.costs = model::CheckpointCosts::paper_scp_flavor();
  config.scheduler = "round-robin";
  EXPECT_THROW(run_executive(set, config), std::invalid_argument);
}

// --- graph executive -----------------------------------------------------

TEST(GraphExecutive, ChainCompletesInPrecedenceOrder) {
  const TaskGraph graph = chain_graph();
  auto config = quiet_config();
  config.instances = 4;
  const auto result = run_graph_executive(graph, config);
  EXPECT_EQ(result.instances_released, 4);
  EXPECT_EQ(result.instances_completed, 4);
  EXPECT_EQ(result.instances_missed, 0);
  EXPECT_GT(result.total_energy, 0.0);
  EXPECT_DOUBLE_EQ(result.total_blocking, 0.0);
  // Response times accumulate down the chain.
  const auto& nodes = result.per_node;
  EXPECT_LT(nodes[graph.node_index("fetch")].response_time.mean(),
            nodes[graph.node_index("decode")].response_time.mean());
  EXPECT_LT(nodes[graph.node_index("decode")].response_time.mean(),
            nodes[graph.node_index("process")].response_time.mean());
  EXPECT_LT(nodes[graph.node_index("process")].response_time.mean(),
            nodes[graph.node_index("commit")].response_time.mean());
  // Completed instances all met the end-to-end deadline.
  EXPECT_LE(result.end_to_end.max(), graph.end_to_end_deadline());
}

TEST(GraphExecutive, ContentionBlocksAndIsAccountedSeparately) {
  auto config = quiet_config();
  config.instances = 3;
  config.workers = 2;

  const auto contended = run_graph_executive(diamond_graph(1), config);
  EXPECT_EQ(contended.instances_missed, 0);
  EXPECT_GT(contended.total_blocking, 0.0);
  // Exactly one of left/right waits per instance (the bus holder never
  // blocks), and blocking is not execution: busy time stays the sum of
  // node service times either way.
  const auto uncontended = run_graph_executive(diamond_graph(2), config);
  EXPECT_DOUBLE_EQ(uncontended.total_blocking, 0.0);
  EXPECT_NEAR(contended.busy_time, uncontended.busy_time, 1e-6);
  EXPECT_GT(contended.makespan, uncontended.makespan);
}

TEST(GraphExecutive, SkipLateAbandonsBlockedInstances) {
  // "hog" (6000 cycles) can never meet the 2000 deadline even at f2;
  // the adaptive policy predicts the guaranteed miss and aborts it at
  // dispatch, abandoning the instance while "quick" is still blocked
  // on the bus hog acquired: the blocked node must be skipped exactly
  // once, without executing, and its worker freed for the next
  // release.  Fully deterministic at lambda = 0.
  TaskGraph graph;
  graph.period = 2'500.0;
  graph.deadline = 2'000.0;
  const std::size_t bus = graph.add_resource("bus");
  GraphNode hog = node("hog", 6'000.0);
  hog.resources.push_back(bus);
  graph.add_node(hog);
  GraphNode quick = node("quick", 500.0);
  quick.resources.push_back(bus);
  graph.add_node(quick);

  auto config = quiet_config();
  config.workers = 2;
  config.instances = 2;
  const auto skipping = run_graph_executive(graph, config);
  EXPECT_EQ(skipping.instances_released, 2);
  EXPECT_EQ(skipping.instances_missed, 2);
  EXPECT_EQ(skipping.instances_completed, 0);
  const auto& hog_stats = skipping.per_node[graph.node_index("hog")];
  const auto& quick_stats = skipping.per_node[graph.node_index("quick")];
  EXPECT_EQ(hog_stats.skipped, 0);  // dispatched (and aborted) both times
  EXPECT_EQ(hog_stats.missed, 2);
  EXPECT_EQ(quick_stats.skipped, 2);  // abandoned while blocked, never ran
  EXPECT_EQ(quick_stats.missed, 2);
  EXPECT_EQ(quick_stats.completed, 0);
  EXPECT_TRUE(quick_stats.blocking_time.empty());
  EXPECT_TRUE(skipping.end_to_end.empty());

  // A failed node abandons its instance regardless of skip_late_jobs
  // (the flag only governs late dispatch/acquisition), so the blocked
  // node is skipped either way — pinned so the semantics stay put.
  config.skip_late_jobs = false;
  const auto no_skip_flag = run_graph_executive(graph, config);
  EXPECT_EQ(no_skip_flag.instances_missed, 2);
  EXPECT_EQ(no_skip_flag.per_node[graph.node_index("quick")].skipped, 2);
}

TEST(GraphExecutive, DeterministicPerSeed) {
  const TaskGraph graph = diamond_graph();
  auto config = quiet_config(1e-3);
  config.instances = 4;
  config.workers = 2;
  const auto r1 = run_graph_executive(graph, config);
  const auto r2 = run_graph_executive(graph, config);
  EXPECT_DOUBLE_EQ(r1.total_energy, r2.total_energy);
  EXPECT_DOUBLE_EQ(r1.makespan, r2.makespan);
  EXPECT_EQ(r1.instances_completed, r2.instances_completed);
  config.seed += 1;
  const auto r3 = run_graph_executive(graph, config);
  EXPECT_NE(r1.total_energy, r3.total_energy);
}

TEST(GraphExecutive, PolicyPairMissRatesDiffer) {
  // Fault-free, so the separation is purely the dispatch order: the
  // ready-order policies (edf ties on the shared instance deadline and
  // falls back to admission order, like fifo) run the four short jobs
  // first and starve the critical chain past the deadline; the
  // path-aware policies start the chain immediately and meet it.
  const TaskGraph graph = chain_vs_shorts_graph();
  auto config = quiet_config();
  config.instances = 4;
  config.workers = 2;

  config.scheduler = "fifo";
  const auto fifo = run_graph_executive(graph, config);
  config.scheduler = "edf";
  const auto edf = run_graph_executive(graph, config);
  config.scheduler = "critical-path";
  const auto cp = run_graph_executive(graph, config);
  config.scheduler = "least-laxity";
  const auto laxity = run_graph_executive(graph, config);

  EXPECT_EQ(cp.instances_missed, 0);
  EXPECT_EQ(laxity.instances_missed, 0);
  EXPECT_EQ(fifo.instances_missed, 4);
  EXPECT_EQ(edf.instances_missed, 4);
  EXPECT_GT(fifo.instance_miss_ratio(), cp.instance_miss_ratio());
}

TEST(GraphExecutive, ValidationRejectsBadConfig) {
  const TaskGraph graph = chain_graph();
  auto config = quiet_config();
  config.workers = 0;
  EXPECT_THROW(run_graph_executive(graph, config), std::invalid_argument);
  config = quiet_config();
  config.scheduler = "nope";
  EXPECT_THROW(run_graph_executive(graph, config), std::invalid_argument);
  config = quiet_config();
  config.instances = 0;
  EXPECT_THROW(run_graph_executive(graph, config), std::invalid_argument);
}

TEST(GraphExecutive, TelemetryOnOffByteIdentity) {
  const TaskGraph graph = diamond_graph();
  auto config = quiet_config(8e-4);
  config.instances = 3;
  config.workers = 2;
  auto& registry = obs::Registry::instance();
  const bool was_enabled = registry.enabled();
  registry.set_enabled(false);
  const auto off = run_graph_executive(graph, config);
  registry.set_enabled(true);
  const auto on = run_graph_executive(graph, config);
  const std::string stats = obs::stats_json(registry.snapshot());
  registry.set_enabled(was_enabled);
  EXPECT_DOUBLE_EQ(off.total_energy, on.total_energy);
  EXPECT_DOUBLE_EQ(off.makespan, on.makespan);
  EXPECT_EQ(off.instances_completed, on.instances_completed);

  // The metered run recorded the sched counters.
  EXPECT_NE(stats.find("sched.jobs_released"), std::string::npos);
  EXPECT_NE(stats.find("sched.job_response_us"), std::string::npos);
}

TEST(GraphExecutive, TraceEmitsWorkerLaneSpans) {
  auto& tracer = obs::Tracer::instance();
  tracer.clear();
  tracer.set_enabled(true);
  const TaskGraph graph = diamond_graph();
  auto config = quiet_config();
  config.workers = 2;
  config.trace = true;
  run_graph_executive(graph, config);
  tracer.set_enabled(false);
  EXPECT_GE(tracer.event_count(), 4u);  // one span per node at least
  std::ostringstream out;
  tracer.write_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"dag\""), std::string::npos);
  EXPECT_NE(json.find("blocked:"), std::string::npos);
  tracer.clear();
}

// --- harness bridge ------------------------------------------------------

harness::GraphExperimentSpec policy_sweep_spec() {
  harness::GraphExperimentSpec spec;
  spec.id = "chain_vs_shorts";
  spec.title = "policy separation";
  spec.graph = chain_vs_shorts_graph();
  spec.workers = 2;
  spec.instances = 4;
  spec.costs = model::CheckpointCosts::paper_scp_flavor();
  spec.schedulers = {"fifo", "critical-path"};
  spec.lambdas = {1e-4};
  return spec;
}

TEST(GraphHarness, SweepBitIdenticalAcrossThreadCounts) {
  const auto spec = policy_sweep_spec();
  sim::MonteCarloConfig config;
  config.runs = 96;
  config.threads = 1;
  const auto serial = harness::run_sweep({}, {spec}, config);
  config.threads = 4;
  const auto parallel = harness::run_sweep({}, {spec}, config);

  harness::JsonReportOptions options;
  options.include_perf = false;
  EXPECT_EQ(harness::sweep_json(serial, options),
            harness::sweep_json(parallel, options));
}

TEST(GraphHarness, PolicyMissRateSeparationSurvivesAggregation) {
  const auto spec = policy_sweep_spec();
  sim::MonteCarloConfig config;
  config.runs = 64;
  const auto sweep = harness::run_sweep({}, {spec}, config);
  ASSERT_EQ(sweep.graph_experiments.size(), 1u);
  const auto& cells = sweep.graph_experiments[0].cells;
  ASSERT_EQ(cells.size(), 1u);
  ASSERT_EQ(cells[0].size(), 2u);
  const double p_fifo = cells[0][0].completion.proportion();
  const double p_cp = cells[0][1].completion.proportion();
  EXPECT_LT(p_fifo, 0.05);
  EXPECT_GT(p_cp, 0.95);
}

TEST(GraphHarness, GraphCellSeedsAreRowPaired) {
  // Scheduler columns of one lambda row share the cell seed, so policy
  // deltas see paired fault draws.
  sim::MonteCarloConfig config;
  const auto jobs = harness::graph_experiment_jobs(policy_sweep_spec(), config);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].config.seed, jobs[1].config.seed);
  EXPECT_EQ(jobs[0].config.seed, harness::graph_cell_seed(config.seed, 0));
  EXPECT_NE(harness::graph_cell_seed(config.seed, 0),
            harness::graph_cell_seed(config.seed, 1));
}

TEST(GraphHarness, JsonlStreamUsesGraphSchema) {
  const auto spec = policy_sweep_spec();
  sim::MonteCarloConfig config;
  config.runs = 32;
  std::ostringstream bytes;
  harness::JsonlCellStream stream(bytes,
                                  harness::sweep_cell_refs({}, {spec}));
  harness::SweepOptions options;
  options.observer = &stream;
  harness::run_sweep({}, {spec}, config, options);
  const std::string lines = bytes.str();
  EXPECT_EQ(stream.emitted(), 2u);
  EXPECT_NE(lines.find("\"schema\":\"adacheck-graph-cell-v1\""),
            std::string::npos);
  EXPECT_NE(lines.find("\"scheme\":\"critical-path\""), std::string::npos);
  // Graph cells carry no utilization coordinate.
  EXPECT_EQ(lines.find("utilization"), std::string::npos);
}

/// Cancels the sweep as soon as the first cell completes.
class CancelAfterFirstCell final : public sim::ISweepObserver {
 public:
  CancelAfterFirstCell(sim::CancellationToken& token) : token_(token) {}
  void on_cell_done(std::size_t, const sim::CellResult&) override {
    token_.request_stop();
  }

 private:
  sim::CancellationToken& token_;
};

TEST(GraphHarness, CancellationLeavesCleanJsonlPrefix) {
  auto spec = policy_sweep_spec();
  spec.lambdas = {1e-4, 4e-4, 8e-4};  // 6 cells
  sim::MonteCarloConfig config;
  config.runs = 64;
  config.threads = 1;
  std::ostringstream bytes;
  harness::JsonlCellStream stream(bytes,
                                  harness::sweep_cell_refs({}, {spec}));
  sim::CancellationToken token;
  CancelAfterFirstCell canceller(token);
  sim::ObserverList observers;
  observers.add(&stream).add(&canceller);
  harness::SweepOptions options;
  options.observer = &observers;
  options.cancel = &token;
  EXPECT_THROW(harness::run_sweep({}, {spec}, config, options),
               sim::SweepCancelled);

  // The stream stops at a cell boundary: every emitted line is a
  // complete, parseable graph-cell object for a contiguous prefix.
  EXPECT_GE(stream.emitted(), 1u);
  EXPECT_LT(stream.emitted(), 6u);
  std::istringstream in(bytes.str());
  std::string line;
  std::size_t parsed = 0;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"cell\":" + std::to_string(parsed)),
              std::string::npos);
    ++parsed;
  }
  EXPECT_EQ(parsed, stream.emitted());
}

TEST(GraphHarness, MixedClassicAndGraphSweep) {
  harness::ExperimentSpec classic;
  classic.id = "classic";
  classic.title = "classic";
  classic.costs = model::CheckpointCosts::paper_scp_flavor();
  classic.deadline = 10'000.0;
  classic.fault_tolerance = 5;
  classic.schemes = {"Poisson"};
  classic.rows.push_back({0.8, 1e-3, {}});

  sim::MonteCarloConfig config;
  config.runs = 64;
  const auto sweep = harness::run_sweep({classic}, {policy_sweep_spec()},
                                        config);
  EXPECT_EQ(sweep.experiments.size(), 1u);
  EXPECT_EQ(sweep.graph_experiments.size(), 1u);
  // The report carries both sections, classic first.
  harness::JsonReportOptions options;
  options.include_perf = false;
  const std::string json = harness::sweep_json(sweep, options);
  EXPECT_NE(json.find("\"graph_experiments\""), std::string::npos);
  EXPECT_LT(json.find("\"experiments\""), json.find("\"graph_experiments\""));
}

}  // namespace
}  // namespace adacheck
