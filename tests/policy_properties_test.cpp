// Cross-policy property suite: every scheme, across a randomized grid
// of task parameters, must produce invariant-clean runs.  This is the
// library's broadest failure-injection net; any engine or policy bug
// that breaks accounting, commits phantom work, or finishes late shows
// up here.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "policy/factory.hpp"
#include "sim/engine.hpp"
#include "sim/monte_carlo.hpp"
#include "sim/validators.hpp"
#include "util/rng.hpp"

namespace adacheck::sim {
namespace {

using Param = std::tuple<std::string, double, double, int>;
// (policy name, utilization, lambda, k)

class PolicyProperties : public ::testing::TestWithParam<Param> {};

SimSetup setup_for(double utilization, double lambda, int k) {
  auto processor = model::DvsProcessor::two_speed(2.0);
  SimSetup setup{
      model::task_from_utilization(utilization, 1.0, 10'000.0, k),
      model::CheckpointCosts::paper_scp_flavor(), std::move(processor),
      model::FaultModel{lambda, false}};
  return setup;
}

TEST_P(PolicyProperties, HundredSeededRunsAreInvariantClean) {
  const auto& [name, utilization, lambda, k] = GetParam();
  const auto setup = setup_for(utilization, lambda, k);
  EngineConfig config;
  config.record_trace = true;
  int completions = 0;
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    auto policy = policy::make_policy(name);
    const auto result =
        simulate_seeded(setup, *policy, util::derive_seed(4711, seed),
                        config);
    completions += result.completed();
    const auto violations = validate_all(setup, result);
    ASSERT_TRUE(violations.empty())
        << name << " U=" << utilization << " lambda=" << lambda
        << " seed=" << seed << ": " << violations.front().message;
    // Energy must be consistent with the voltage law bounds: between
    // all-low-speed and all-high-speed rates.
    const double v_lo = setup.processor.slowest().voltage;
    const double v_hi = setup.processor.fastest().voltage;
    EXPECT_GE(result.energy, v_lo * v_lo * result.cycles_executed - 1e-6);
    EXPECT_LE(result.energy, v_hi * v_hi * result.cycles_executed + 1e-6);
  }
  // The adaptive DVS schemes must actually succeed on feasible loads.
  if ((name == "A_D" || name == "A_D_S" || name == "A_D_C") &&
      utilization <= 0.9 && lambda <= 2e-3) {
    EXPECT_GT(completions, 60) << name;
  }
}

std::string grid_label(const ::testing::TestParamInfo<Param>& info) {
  std::string label = std::get<0>(info.param);
  for (auto& ch : label) {
    if (ch == '-') ch = '_';
  }
  label += "_u" +
           std::to_string(static_cast<int>(std::get<1>(info.param) * 100));
  label += "_l" +
           std::to_string(static_cast<int>(std::get<2>(info.param) * 1e5));
  label += "_k" + std::to_string(std::get<3>(info.param));
  return label;
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemesGrid, PolicyProperties,
    ::testing::Combine(
        ::testing::Values("Poisson", "k-f-t", "A_D", "A_D_S", "A_D_C",
                          "adapchp-SCP", "adapchp-CCP"),
        ::testing::Values(0.5, 0.8, 1.1),
        ::testing::Values(1e-4, 2e-3),
        ::testing::Values(1, 5)),
    grid_label);

std::string scheme_label(const ::testing::TestParamInfo<std::string>& info) {
  std::string label = info.param;
  for (auto& ch : label) {
    if (ch == '-') ch = '_';
  }
  return label;
}

// Determinism across the whole policy zoo: the same seed must give the
// same outcome (policies must not carry hidden global state).
class PolicyDeterminism : public ::testing::TestWithParam<std::string> {};

TEST_P(PolicyDeterminism, SameSeedSameRun) {
  const auto setup = setup_for(0.8, 1.4e-3, 5);
  auto p1 = policy::make_policy(GetParam());
  auto p2 = policy::make_policy(GetParam());
  const auto a = simulate_seeded(setup, *p1, 31337);
  const auto b = simulate_seeded(setup, *p2, 31337);
  EXPECT_EQ(a.outcome, b.outcome);
  EXPECT_DOUBLE_EQ(a.finish_time, b.finish_time);
  EXPECT_DOUBLE_EQ(a.energy, b.energy);
  EXPECT_EQ(a.faults, b.faults);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, PolicyDeterminism,
                         ::testing::Values("Poisson", "k-f-t", "A_D",
                                           "A_D_S", "A_D_C", "adapchp-SCP",
                                           "adapchp-CCP"),
                         scheme_label);

// Monte-Carlo-level sanity for each scheme on the paper's Table 1(a)
// first cell: validators clean across 300 runs, probabilities within
// the physically meaningful range.
class PolicyCellSanity : public ::testing::TestWithParam<std::string> {};

TEST_P(PolicyCellSanity, Table1aFirstCell) {
  const auto setup = setup_for(0.76, 1.4e-3, 5);
  MonteCarloConfig config;
  config.runs = 300;
  config.validate = true;
  const auto stats =
      run_cell(setup, policy::make_policy_factory(GetParam()), config);
  EXPECT_EQ(stats.validation_failures, 0u);
  EXPECT_GE(stats.probability(), 0.0);
  EXPECT_LE(stats.probability(), 1.0);
  if (!std::isnan(stats.energy())) {
    EXPECT_GT(stats.energy(), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, PolicyCellSanity,
                         ::testing::Values("Poisson", "k-f-t", "A_D",
                                           "A_D_S", "A_D_C", "adapchp-SCP",
                                           "adapchp-CCP"),
                         scheme_label);

}  // namespace
}  // namespace adacheck::sim
