// Cross-validation between the analytic layer and the simulator: the
// renewal equations R1/R2 predict the expected time of one CSCP
// interval; the engine, run many times over a single-interval task,
// must average to the same value.  This closes the loop between the
// paper's §2 formulas and our execution semantics.
#include <gtest/gtest.h>

#include <cmath>

#include "analytic/num_checkpoints.hpp"
#include "analytic/renewal_ccp.hpp"
#include "analytic/renewal_scp.hpp"
#include "sim/engine.hpp"
#include "sim/monte_carlo.hpp"
#include "tests/test_helpers.hpp"

namespace adacheck::sim {
namespace {

/// Mean completion time of a task consisting of exactly one outer
/// interval of length T with m sub-intervals of the given kind.
double simulated_interval_time(double interval, int m, double lambda,
                               const model::CheckpointCosts& costs,
                               InnerKind kind, int runs) {
  SimSetup setup{model::TaskSpec{interval, 1e9, 0.0, 1'000'000, "one"},
                 costs,
                 model::DvsProcessor({model::SpeedLevel{1.0, 2.0}}),
                 model::FaultModel{lambda, false}};
  const Decision plan = testutil::inner_plan(
      setup, interval, interval / static_cast<double>(m), kind);
  MonteCarloConfig config;
  config.runs = runs;
  config.seed = 0xFACE;
  const auto stats = run_cell(
      setup,
      [plan] { return std::make_unique<testutil::ScriptedPolicy>(plan); },
      config);
  EXPECT_DOUBLE_EQ(stats.probability(), 1.0);
  return stats.finish_time_success.mean();
}

TEST(AnalyticVsSim, ScpRenewalMatchesEngine) {
  const auto costs = model::CheckpointCosts::paper_scp_flavor();
  for (const double lambda : {1e-3, 4e-3}) {
    for (const int m : {1, 2, 4, 8}) {
      analytic::ScpRenewalParams params;
      params.interval = 400.0;
      params.lambda = lambda;
      params.costs = costs;
      const double predicted = analytic::scp_expected_time(params, m);
      const double simulated = simulated_interval_time(
          400.0, m, lambda, costs, InnerKind::kScp, 40'000);
      EXPECT_NEAR(simulated / predicted, 1.0, 0.02)
          << "lambda=" << lambda << " m=" << m;
    }
  }
}

TEST(AnalyticVsSim, CcpRenewalMatchesEngine) {
  const auto costs = model::CheckpointCosts::paper_ccp_flavor();
  for (const double lambda : {1e-3, 4e-3}) {
    for (const int m : {1, 2, 4, 8}) {
      analytic::CcpRenewalParams params;
      params.interval = 400.0;
      params.lambda = lambda;
      params.costs = costs;
      // The engine's CSCP is atomic (store paid on mismatch), which the
      // recursive form models exactly.
      const double predicted =
          analytic::ccp_expected_time_recursive(params, m);
      const double simulated = simulated_interval_time(
          400.0, m, lambda, costs, InnerKind::kCcp, 40'000);
      EXPECT_NEAR(simulated / predicted, 1.0, 0.02)
          << "lambda=" << lambda << " m=" << m;
    }
  }
}

TEST(AnalyticVsSim, PaperClosedFormCloseToEngineDespiteAtomicCscp) {
  // The paper's own R2 closed form should still be within ~2% + the
  // bounded t_s correction of what the engine measures.
  analytic::CcpRenewalParams params;
  params.interval = 300.0;
  params.lambda = 2e-3;
  params.costs = model::CheckpointCosts::paper_ccp_flavor();
  const double closed = analytic::ccp_expected_time(params, 4);
  const double simulated = simulated_interval_time(
      300.0, 4, 2e-3, params.costs, InnerKind::kCcp, 40'000);
  const double bound =
      params.costs.store * std::expm1(params.lambda * params.interval);
  EXPECT_NEAR(simulated, closed, 0.02 * closed + bound);
}

TEST(AnalyticVsSim, OptimalMFromFig2BeatsNeighborsInSimulation) {
  // num_SCP's choice must be at least as good as m/2 and 2m when
  // actually simulated (not just under the analytic model).
  analytic::ScpRenewalParams params;
  params.interval = 800.0;
  params.lambda = 4e-3;
  params.costs = model::CheckpointCosts::paper_scp_flavor();
  const int m_opt = analytic::num_scp(params);
  ASSERT_GT(m_opt, 1);
  const double at_opt = simulated_interval_time(
      800.0, m_opt, 4e-3, params.costs, InnerKind::kScp, 60'000);
  const double at_half = simulated_interval_time(
      800.0, std::max(1, m_opt / 2), 4e-3, params.costs, InnerKind::kScp,
      60'000);
  const double at_double = simulated_interval_time(
      800.0, m_opt * 2, 4e-3, params.costs, InnerKind::kScp, 60'000);
  EXPECT_LE(at_opt, at_half * 1.01);
  EXPECT_LE(at_opt, at_double * 1.01);
}

}  // namespace
}  // namespace adacheck::sim
