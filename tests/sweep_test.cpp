// The sweep subsystem: flat-queue batching, policy reuse, and the
// JSON perf report's determinism guarantees.
#include "harness/sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <utility>

#include "harness/json_report.hpp"
#include "policy/factory.hpp"
#include "tests/test_helpers.hpp"
#include "util/thread_pool.hpp"

namespace adacheck::harness {
namespace {

using testutil::basic_setup;

/// A small custom spec (not a paper table) exercising DVS + inner SCPs.
ExperimentSpec small_spec() {
  ExperimentSpec spec;
  spec.id = "sweeptest";
  spec.title = "sweep test grid";
  spec.costs = model::CheckpointCosts::paper_scp_flavor();
  spec.deadline = 10'000.0;
  spec.fault_tolerance = 5;
  spec.speed_ratio = 2.0;
  spec.util_level = 0;
  spec.schemes = {"Poisson", "A_D_S"};
  spec.rows = {{0.76, 1.4e-3, {}}, {0.80, 1.6e-3, {}}};
  return spec;
}

void expect_same_stats(const sim::CellStats& a, const sim::CellStats& b) {
  EXPECT_EQ(a.completion.trials(), b.completion.trials());
  EXPECT_EQ(a.completion.successes(), b.completion.successes());
  EXPECT_EQ(a.aborted_runs, b.aborted_runs);
  const std::pair<const util::RunningStats*, const util::RunningStats*>
      tracked[] = {
          {&a.energy_success, &b.energy_success},
          {&a.energy_all, &b.energy_all},
          {&a.finish_time_success, &b.finish_time_success},
          {&a.faults, &b.faults},
          {&a.rollbacks, &b.rollbacks},
          {&a.corrections, &b.corrections},
          {&a.high_speed_cycles, &b.high_speed_cycles},
      };
  for (const auto& [lhs, rhs] : tracked) {
    EXPECT_EQ(lhs->count(), rhs->count());
    if (lhs->count() == 0) continue;
    // Fixed-grain chunking makes aggregation bit-identical, not just
    // close: chunk boundaries and merge order never depend on the
    // executing threads.
    EXPECT_DOUBLE_EQ(lhs->mean(), rhs->mean());
    EXPECT_DOUBLE_EQ(lhs->variance(), rhs->variance());
    EXPECT_DOUBLE_EQ(lhs->min(), rhs->min());
    EXPECT_DOUBLE_EQ(lhs->max(), rhs->max());
  }
}

TEST(Sweep, MatchesSequentialRunExperiment) {
  const auto spec = small_spec();
  sim::MonteCarloConfig config;
  config.runs = 300;
  config.seed = 0xABCD;
  const auto sequential = run_experiment(spec, config);
  const auto sweep = run_sweep({spec}, config);
  ASSERT_EQ(sweep.experiments.size(), 1u);
  const auto& swept = sweep.experiments[0];
  ASSERT_EQ(swept.cells.size(), sequential.cells.size());
  for (std::size_t r = 0; r < sequential.cells.size(); ++r) {
    for (std::size_t s = 0; s < sequential.cells[r].size(); ++s) {
      expect_same_stats(sequential.cells[r][s], swept.cells[r][s]);
    }
  }
}

TEST(Sweep, PerfMetricsPopulated) {
  sim::MonteCarloConfig config;
  config.runs = 100;
  const auto sweep = run_sweep({small_spec()}, config);
  EXPECT_EQ(sweep.perf.cells, 4u);  // 2 rows x 2 schemes
  EXPECT_EQ(sweep.perf.total_runs, 400);
  EXPECT_GT(sweep.perf.wall_seconds, 0.0);
  EXPECT_GT(sweep.perf.runs_per_second, 0.0);
  EXPECT_GE(sweep.perf.threads, 1);
}

TEST(Sweep, PerfThreadsReportsAppliedParallelismNotTheCap) {
  sim::MonteCarloConfig config;
  config.runs = 100;     // 1 chunk per cell -> 4 chunks total
  config.threads = 64;   // far above both the chunk count and the pool
  const auto sweep = run_sweep({small_spec()}, config);
  EXPECT_GE(sweep.perf.threads, 1);
  EXPECT_LE(sweep.perf.threads, 4);  // clamped to the chunk count
  EXPECT_LE(sweep.perf.threads, util::ThreadPool::shared().size() + 1);
}

TEST(Sweep, JsonByteIdenticalAcrossThreadCounts) {
  const auto spec = small_spec();
  sim::MonteCarloConfig serial;
  serial.runs = 300;
  serial.seed = 0x15DEAD;
  serial.threads = 1;
  sim::MonteCarloConfig parallel = serial;
  parallel.threads = 4;

  JsonReportOptions options;
  options.include_perf = false;  // timing legitimately differs
  const std::string a = sweep_json(run_sweep({spec}, serial), options);
  const std::string b = sweep_json(run_sweep({spec}, parallel), options);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"schema\": \"adacheck-sweep-v6\""), std::string::npos);
  EXPECT_NE(a.find("\"scheme\": \"A_D_S\""), std::string::npos);
  EXPECT_NE(a.find("\"environment\""), std::string::npos);
  EXPECT_NE(a.find("\"name\": \"poisson\""), std::string::npos);
}

TEST(Sweep, JsonPerfSectionPresentByDefault) {
  sim::MonteCarloConfig config;
  config.runs = 50;
  const auto json = sweep_json(run_sweep({small_spec()}, config));
  EXPECT_NE(json.find("\"perf\""), std::string::npos);
  EXPECT_NE(json.find("\"runs_per_second\""), std::string::npos);
}

TEST(Sweep, MultipleSpecsKeepTheirSlices) {
  auto spec_a = small_spec();
  auto spec_b = small_spec();
  spec_b.id = "sweeptest-b";
  spec_b.rows = {{0.92, 1.0e-4, {}}};
  sim::MonteCarloConfig config;
  config.runs = 100;
  const auto sweep = run_sweep({spec_a, spec_b}, config);
  ASSERT_EQ(sweep.experiments.size(), 2u);
  EXPECT_EQ(sweep.experiments[0].cells.size(), 2u);
  EXPECT_EQ(sweep.experiments[1].cells.size(), 1u);
  // Same spec content -> same seeds -> spec_a's first row must match a
  // standalone run.
  const auto standalone = run_experiment(spec_a, config);
  expect_same_stats(standalone.cells[0][0], sweep.experiments[0].cells[0][0]);
}

/// Wrapper hiding a policy's reset support, forcing the per-run
/// factory fallback.
class NoResetPolicy final : public sim::ICheckpointPolicy {
 public:
  explicit NoResetPolicy(std::unique_ptr<sim::ICheckpointPolicy> inner)
      : inner_(std::move(inner)) {}
  std::string name() const override { return inner_->name(); }
  bool reset() override { return false; }
  sim::Decision initial(const sim::ExecContext& ctx) override {
    return inner_->initial(ctx);
  }
  sim::Decision on_fault(const sim::ExecContext& ctx) override {
    return inner_->on_fault(ctx);
  }
  std::optional<sim::Decision> on_commit(const sim::ExecContext& ctx) override {
    return inner_->on_commit(ctx);
  }

 private:
  std::unique_ptr<sim::ICheckpointPolicy> inner_;
};

TEST(Sweep, PolicyReuseMatchesFreshConstruction) {
  // reset()-reused policies must be indistinguishable from per-run
  // fresh instances.
  const auto setup = testutil::dvs_setup(7'800.0, 10'000.0, 5, 1.4e-3);
  sim::MonteCarloConfig config;
  config.runs = 500;
  config.seed = 77;
  const auto reused =
      sim::run_cell(setup, policy::make_policy_factory("A_D_S"), config);
  const auto fresh = sim::run_cell(
      setup,
      [] {
        return std::make_unique<NoResetPolicy>(policy::make_policy("A_D_S"));
      },
      config);
  expect_same_stats(reused, fresh);
}

TEST(Sweep, ResettablePolicyBuiltOncePerChunk) {
  const auto setup = basic_setup(1'000.0, 10'000.0);
  sim::MonteCarloConfig config;
  config.runs = 600;  // 3 chunks of 256/256/88
  config.threads = 1;
  auto constructions = std::make_shared<std::atomic<int>>(0);
  const auto stats = sim::run_cell(
      setup,
      [constructions] {
        ++*constructions;
        return policy::make_policy("Poisson");
      },
      config);
  EXPECT_EQ(stats.completion.trials(), 600u);
  EXPECT_EQ(constructions->load(), 3);
}

TEST(Sweep, NonResettablePolicyBuiltPerRun) {
  const auto setup = basic_setup(1'000.0, 10'000.0);
  const sim::Decision plan = testutil::plain_plan(setup, 100.0);
  sim::MonteCarloConfig config;
  config.runs = 100;
  config.threads = 1;
  auto constructions = std::make_shared<std::atomic<int>>(0);
  const auto stats = sim::run_cell(
      setup,
      [constructions, plan] {
        ++*constructions;
        // ScriptedPolicy keeps per-run cursor state and does not
        // override reset().
        return std::make_unique<testutil::ScriptedPolicy>(plan);
      },
      config);
  EXPECT_EQ(stats.completion.trials(), 100u);
  EXPECT_EQ(constructions->load(), 100);
}

}  // namespace
}  // namespace adacheck::harness
