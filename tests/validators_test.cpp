#include "sim/validators.hpp"

#include <gtest/gtest.h>

#include "tests/test_helpers.hpp"

namespace adacheck::sim {
namespace {

using testutil::ScriptedPolicy;
using testutil::basic_setup;
using testutil::inner_plan;
using testutil::run_with_faults;

TEST(Validators, CleanRunHasNoViolations) {
  const auto setup = basic_setup(300.0, 10'000.0);
  ScriptedPolicy policy(inner_plan(setup, 100.0, 25.0, InnerKind::kScp));
  const auto result = run_with_faults(setup, policy, {130.0});
  EXPECT_TRUE(validate_all(setup, result).empty());
}

TEST(Validators, FaultyRunsAcrossModesStillValid) {
  for (const auto kind :
       {InnerKind::kNone, InnerKind::kScp, InnerKind::kCcp}) {
    const auto setup = basic_setup(300.0, 10'000.0);
    ScriptedPolicy policy(inner_plan(setup, 100.0, 25.0, kind));
    const auto result = run_with_faults(setup, policy, {30.0, 130.0, 140.0});
    EXPECT_TRUE(validate_all(setup, result).empty())
        << "mode " << to_string(kind);
  }
}

TEST(Validators, DetectsEnergyMismatch) {
  const auto setup = basic_setup(100.0, 10'000.0);
  ScriptedPolicy policy(testutil::plain_plan(setup, 100.0));
  auto result = run_with_faults(setup, policy, {});
  result.energy += 1'000.0;  // corrupt
  const auto violations = validate_result(setup, result);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].message.find("energy"), std::string::npos);
}

TEST(Validators, DetectsCommitShortfall) {
  const auto setup = basic_setup(100.0, 10'000.0);
  ScriptedPolicy policy(testutil::plain_plan(setup, 100.0));
  auto result = run_with_faults(setup, policy, {});
  result.cycles_committed = 50.0;  // claims completion with missing work
  EXPECT_FALSE(validate_result(setup, result).empty());
}

TEST(Validators, DetectsLateCompletion) {
  const auto setup = basic_setup(100.0, 10'000.0);
  ScriptedPolicy policy(testutil::plain_plan(setup, 100.0));
  auto result = run_with_faults(setup, policy, {});
  result.finish_time = setup.task.deadline + 1.0;
  EXPECT_FALSE(validate_result(setup, result).empty());
}

TEST(Validators, DetectsRollbackImbalance) {
  const auto setup = basic_setup(100.0, 10'000.0);
  ScriptedPolicy policy(testutil::plain_plan(setup, 100.0));
  auto result = run_with_faults(setup, policy, {});
  result.detections = 3;  // without matching rollbacks
  EXPECT_FALSE(validate_result(setup, result).empty());
}

TEST(Validators, DetectsImpossibleDetectionCount) {
  const auto setup = basic_setup(100.0, 10'000.0);
  ScriptedPolicy policy(testutil::plain_plan(setup, 100.0));
  auto result = run_with_faults(setup, policy, {});
  result.detections = 2;
  result.rollbacks = 2;  // balanced, but no faults occurred
  EXPECT_FALSE(validate_result(setup, result).empty());
}

TEST(Validators, TraceDetectsBackwardsTime) {
  const auto setup = basic_setup(100.0, 10'000.0);
  ScriptedPolicy policy(testutil::plain_plan(setup, 100.0));
  auto result = run_with_faults(setup, policy, {});
  result.trace.push(TraceEventKind::kSegment, /*time=*/1.0, 10.0, 1);
  const auto violations = validate_trace(setup, result);
  ASSERT_FALSE(violations.empty());
}

TEST(Validators, TraceDetectsUnaccountedCycles) {
  const auto setup = basic_setup(100.0, 10'000.0);
  ScriptedPolicy policy(testutil::plain_plan(setup, 100.0));
  auto result = run_with_faults(setup, policy, {});
  result.cycles_executed += 500.0;  // meter and trace now disagree
  bool found = false;
  for (const auto& v : validate_trace(setup, result)) {
    if (v.message.find("accounts for") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Validators, TraceDetectsRollbackWithoutDetection) {
  const auto setup = basic_setup(100.0, 10'000.0);
  ScriptedPolicy policy(testutil::plain_plan(setup, 100.0));
  auto result = run_with_faults(setup, policy, {});
  Trace t;
  t.push(TraceEventKind::kRollback, 10.0, 50.0);
  result.trace = t;
  bool found = false;
  for (const auto& v : validate_trace(setup, result)) {
    if (v.message.find("rollback without detection") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Validators, EmptyTraceFlaggedWhenRequested) {
  const auto setup = basic_setup(100.0, 10'000.0);
  RunResult result;  // empty trace, zero everything
  EXPECT_FALSE(validate_trace(setup, result).empty());
}

TEST(Validators, RandomizedRunsNeverViolate) {
  // Property sweep: random lambdas and plans, every run must validate.
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    const double lambda = 1e-4 * static_cast<double>(1 + seed % 40);
    auto setup = basic_setup(2'000.0, 5'000.0, 5, lambda);
    const auto kind = static_cast<InnerKind>(seed % 3);
    ScriptedPolicy policy(inner_plan(setup, 200.0, 40.0, kind));
    EngineConfig config;
    config.record_trace = true;
    const auto result = simulate_seeded(setup, policy, seed, config);
    const auto violations = validate_all(setup, result);
    EXPECT_TRUE(violations.empty())
        << "seed " << seed << ": " << violations.front().message;
  }
}

}  // namespace
}  // namespace adacheck::sim
