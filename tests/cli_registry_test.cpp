// cli/command.hpp: the subcommand registry every adacheck verb is
// declared through — dispatch, generated help, --version, did-you-mean
// for verbs and flags, and the single output-precedence rule.
#include "cli/command.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

namespace adacheck::cli {
namespace {

/// argv helper: builds a stable char* array from string literals.
struct Argv {
  explicit Argv(std::vector<std::string> args) : strings(std::move(args)) {
    for (auto& s : strings) pointers.push_back(s.c_str());
  }
  int argc() const { return static_cast<int>(pointers.size()); }
  const char* const* argv() const { return pointers.data(); }

  std::vector<std::string> strings;
  std::vector<const char*> pointers;
};

CommandRegistry make_registry(int* ran = nullptr,
                              std::string* got_flag = nullptr) {
  CommandRegistry registry("tool", "tool — a test registry", "1.2.3");
  registry.add({"run", "run things", "run <file>",
                {{"out", "PATH", "output path"},
                 {"dry-run", "", "plan only"}},
                [ran, got_flag](const util::CliArgs& args) {
                  if (ran != nullptr) ++*ran;
                  if (got_flag != nullptr) {
                    *got_flag = args.get_string("out", "<unset>");
                  }
                  return 0;
                }});
  registry.add({"list", "list things", "list [what]", {},
                [](const util::CliArgs&) { return 0; }});
  return registry;
}

int dispatch(const CommandRegistry& registry, std::vector<std::string> args,
             std::string* out_text = nullptr,
             std::string* err_text = nullptr) {
  const Argv argv(std::move(args));
  std::ostringstream out, err;
  const int code = registry.dispatch(argv.argc(), argv.argv(), out, err);
  if (out_text != nullptr) *out_text = out.str();
  if (err_text != nullptr) *err_text = err.str();
  return code;
}

// --- dispatch ------------------------------------------------------------

TEST(CommandRegistry, DispatchesToTheNamedCommand) {
  int ran = 0;
  std::string out_flag;
  const auto registry = make_registry(&ran, &out_flag);
  EXPECT_EQ(dispatch(registry, {"tool", "run", "file.json", "--out=x.json"}),
            0);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(out_flag, "x.json");
}

TEST(CommandRegistry, BooleanSwitchKeepsPositionals) {
  std::string out_flag;
  CommandRegistry registry("tool", "intro", "1");
  std::vector<std::string> positionals;
  registry.add({"run", "s", "run <file>",
                {{"dry-run", "", "plan only"}},
                [&positionals](const util::CliArgs& args) {
                  positionals = args.positional();
                  EXPECT_TRUE(args.get_bool("dry-run", false));
                  return 0;
                }});
  EXPECT_EQ(dispatch(registry, {"tool", "run", "--dry-run", "file.json"}), 0);
  ASSERT_EQ(positionals.size(), 2u);  // verb + file
  EXPECT_EQ(positionals[1], "file.json");
}

TEST(CommandRegistry, MissingSubcommandIsUsageError) {
  std::string err;
  EXPECT_EQ(dispatch(make_registry(), {"tool"}, nullptr, &err), 2);
  EXPECT_NE(err.find("missing subcommand"), std::string::npos);
  EXPECT_NE(err.find("tool run <file>"), std::string::npos);  // overview
}

TEST(CommandRegistry, UnknownVerbSuggestsTheClosest) {
  std::string err;
  EXPECT_EQ(dispatch(make_registry(), {"tool", "rn"}, nullptr, &err), 2);
  EXPECT_NE(err.find("unknown subcommand \"rn\""), std::string::npos);
  EXPECT_NE(err.find("did you mean \"run\"?"), std::string::npos);
}

TEST(CommandRegistry, UnknownFlagFailsWithSuggestionAndExit2) {
  int ran = 0;
  std::string err;
  const auto registry = make_registry(&ran);
  EXPECT_EQ(dispatch(registry, {"tool", "run", "--ot=x"}, nullptr, &err), 2);
  EXPECT_EQ(ran, 0);
  EXPECT_NE(err.find("--ot"), std::string::npos);
  EXPECT_NE(err.find("--out"), std::string::npos);  // did you mean / allowed
}

// --- help and version ----------------------------------------------------

TEST(CommandRegistry, VersionVerbAndFlag) {
  std::string out;
  EXPECT_EQ(dispatch(make_registry(), {"tool", "version"}, &out), 0);
  EXPECT_EQ(out, "tool 1.2.3\n");
  EXPECT_EQ(dispatch(make_registry(), {"tool", "--version"}, &out), 0);
  EXPECT_EQ(out, "tool 1.2.3\n");
}

TEST(CommandRegistry, HelpOverviewListsEveryCommand) {
  std::string out;
  EXPECT_EQ(dispatch(make_registry(), {"tool", "help"}, &out), 0);
  EXPECT_NE(out.find("tool — a test registry"), std::string::npos);
  EXPECT_NE(out.find("run things"), std::string::npos);
  EXPECT_NE(out.find("list things"), std::string::npos);
  std::string flag_help;
  EXPECT_EQ(dispatch(make_registry(), {"tool", "--help"}, &flag_help), 0);
  EXPECT_EQ(out, flag_help);
}

TEST(CommandRegistry, HelpTopicShowsTheFlagTable) {
  std::string out;
  EXPECT_EQ(dispatch(make_registry(), {"tool", "help", "run"}, &out), 0);
  EXPECT_NE(out.find("usage: tool run <file>"), std::string::npos);
  EXPECT_NE(out.find("--out=PATH"), std::string::npos);
  EXPECT_NE(out.find("--dry-run"), std::string::npos);
  EXPECT_NE(out.find("plan only"), std::string::npos);
}

TEST(CommandRegistry, CommandDashDashHelpMatchesHelpTopic) {
  std::string topic, flag;
  int ran = 0;
  const auto registry = make_registry(&ran);
  EXPECT_EQ(dispatch(registry, {"tool", "help", "run"}, &topic), 0);
  EXPECT_EQ(dispatch(registry, {"tool", "run", "--help"}, &flag), 0);
  EXPECT_EQ(topic, flag);
  EXPECT_EQ(ran, 0);  // --help never runs the command
}

TEST(CommandRegistry, HelpUnknownTopicSuggests) {
  std::string err;
  EXPECT_EQ(dispatch(make_registry(), {"tool", "help", "lst"}, nullptr, &err),
            2);
  EXPECT_NE(err.find("did you mean \"list\"?"), std::string::npos);
}

// --- output precedence ---------------------------------------------------

TEST(ResolveOutput, FlagBeatsDocumentBeatsFallback) {
  const Argv with_flag({"tool", "run", "--out=flag.json"});
  const util::CliArgs args(with_flag.argc(), with_flag.argv(), {"out"});
  EXPECT_EQ(resolve_output(args, "out", "doc.json", "fallback.json"),
            "flag.json");

  const Argv without({"tool", "run"});
  const util::CliArgs bare(without.argc(), without.argv(), {"out"});
  EXPECT_EQ(resolve_output(bare, "out", "doc.json", "fallback.json"),
            "doc.json");
  EXPECT_EQ(resolve_output(bare, "out", "", "fallback.json"),
            "fallback.json");
}

TEST(ResolveOutput, ExplicitStdoutFlagWins) {
  const Argv argv({"tool", "run", "--out=-"});
  const util::CliArgs args(argv.argc(), argv.argv(), {"out"});
  EXPECT_EQ(resolve_output(args, "out", "doc.json", "fallback.json"), "-");
}

}  // namespace
}  // namespace adacheck::cli
