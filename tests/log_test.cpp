#include "util/log.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace adacheck::util {
namespace {

/// Captures stderr for the duration of a scope.
class StderrCapture {
 public:
  StderrCapture() : old_(std::cerr.rdbuf(buffer_.rdbuf())) {}
  ~StderrCapture() { std::cerr.rdbuf(old_); }
  std::string text() const { return buffer_.str(); }

 private:
  std::ostringstream buffer_;
  std::streambuf* old_;
};

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override { set_log_level(LogLevel::kInfo); }
  void TearDown() override { set_log_level(LogLevel::kInfo); }
};

TEST_F(LogTest, LevelFilteringDropsBelowThreshold) {
  StderrCapture capture;
  set_log_level(LogLevel::kWarn);
  log_info("should not appear");
  log_warn("warning text");
  log_error("error text");
  const auto text = capture.text();
  EXPECT_EQ(text.find("should not appear"), std::string::npos);
  EXPECT_NE(text.find("[WARN] warning text"), std::string::npos);
  EXPECT_NE(text.find("[ERROR] error text"), std::string::npos);
}

TEST_F(LogTest, DebugEnabledWhenRequested) {
  StderrCapture capture;
  set_log_level(LogLevel::kDebug);
  log_debug("debug text");
  EXPECT_NE(capture.text().find("[DEBUG] debug text"), std::string::npos);
}

TEST_F(LogTest, VariadicConcatenation) {
  StderrCapture capture;
  log_info("run ", 42, " finished at t=", 1.5);
  EXPECT_NE(capture.text().find("[INFO] run 42 finished at t=1.5"),
            std::string::npos);
}

TEST_F(LogTest, LevelRoundTrip) {
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

}  // namespace
}  // namespace adacheck::util
