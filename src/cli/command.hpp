// Subcommand registry for multi-verb tools (the adacheck driver).
//
// Each subcommand declares itself ONCE — name, one-line summary,
// usage line, flag table, run function — and the registry derives
// everything that used to be per-subcommand switch code from that
// single declaration:
//
//   - dispatch: `tool <verb> ...` parses the verb's declared flags
//     (util::CliArgs, so unknown-flag errors carry the allowed list
//     and a "did you mean" suggestion from one engine) and calls the
//     run function;
//   - help: `tool help`, `tool --help`, and `tool help <verb>` /
//     `tool <verb> --help` are generated from the summaries and flag
//     tables;
//   - unknown verbs get a "did you mean" suggestion against the
//     registered names;
//   - `tool --version` / `tool version` print the registered version
//     string.
//
// The registry performs no I/O beyond the streams it is handed and
// throws nothing itself; std::invalid_argument from flag parsing (or
// a run function's own validation) is translated into exit code 2
// with the message on the error stream.
#pragma once

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "util/cli.hpp"

namespace adacheck::cli {

/// One flag row of a command's table.  `value_name` empty declares a
/// boolean switch (the CliArgs "name!" form: never consumes the next
/// token, so positionals survive `--switch file.json`).
struct Flag {
  std::string name;        ///< without the leading "--"
  std::string value_name;  ///< e.g. "N", "PATH"; "" = boolean switch
  std::string help;        ///< one line
};

/// A subcommand: everything the engine needs, declared once.
struct Command {
  std::string name;     ///< the verb ("run")
  std::string summary;  ///< one line for the overview listing
  /// Positional signature shown in help ("run <scenario.json>").
  std::string usage;
  std::vector<Flag> flags;
  /// Invoked with the fully parsed arguments (verb in positional()[0],
  /// flags validated against the table).  Returns the exit code.
  std::function<int(const util::CliArgs&)> run;
};

class CommandRegistry {
 public:
  /// `intro` heads the overview help; `version` is what `--version`
  /// prints (util::version_string() for adacheck).
  CommandRegistry(std::string tool, std::string intro, std::string version);

  CommandRegistry& add(Command command);

  const Command* find(const std::string& name) const;
  const std::vector<Command>& commands() const noexcept { return commands_; }

  /// The whole engine: verb lookup (with "did you mean"), per-command
  /// flag parsing, help/version interception, run dispatch.  Returns
  /// the process exit code; exceptions from run functions propagate
  /// (the tool's main decides how to report them), but flag-parsing
  /// std::invalid_argument is reported on `err` with exit code 2.
  int dispatch(int argc, const char* const* argv, std::ostream& out,
               std::ostream& err) const;

  /// The overview: intro, usage of every command, flag-free footer.
  void print_overview(std::ostream& os) const;
  /// One command's help: usage, summary, and its flag table.
  void print_command_help(const Command& command, std::ostream& os) const;

 private:
  /// The CliArgs allowed-flag list for a command: its table (boolean
  /// switches in the "name!" form) plus the implicit --help switch.
  static std::vector<std::string> allowed_flags(const Command& command);

  /// Appends a ", did you mean ...?" (or the command list) to an
  /// unknown-verb error.
  void suggest(const std::string& name, std::ostream& err) const;

  std::string tool_;
  std::string intro_;
  std::string version_;
  std::vector<Command> commands_;
};

/// THE output-selection precedence rule, applied identically by every
/// subcommand that writes a document: an explicit flag wins, else the
/// input document's "output" value, else the built-in fallback
/// (documented per subcommand; "-" always means stdout).  Exists so
/// run and campaign cannot drift apart.
std::string resolve_output(const util::CliArgs& args, const std::string& flag,
                           const std::string& document_value,
                           const std::string& fallback);

}  // namespace adacheck::cli
