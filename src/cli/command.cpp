#include "cli/command.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "util/log.hpp"
#include "util/text.hpp"

namespace adacheck::cli {

namespace {

/// Log verbosity, resolved once per dispatch: the ADACHECK_LOG env
/// var sets the baseline, an explicit --log-level flag (implicit on
/// every command, like --help) overrides it.  Throws
/// std::invalid_argument on an unparsable flag value; a bad env var
/// is ignored (environments outlive any one invocation's error
/// stream).
void apply_log_level(const util::CliArgs& args) {
  if (const char* env = std::getenv("ADACHECK_LOG")) {
    if (const auto level = util::parse_log_level(env)) {
      util::set_log_level(*level);
    }
  }
  if (const auto text = args.get("log-level")) {
    const auto level = util::parse_log_level(*text);
    if (!level) {
      throw std::invalid_argument(
          "--log-level: unknown level \"" + *text +
          "\" (use debug, info, warn, or error)");
    }
    util::set_log_level(*level);
  }
}

}  // namespace

CommandRegistry::CommandRegistry(std::string tool, std::string intro,
                                 std::string version)
    : tool_(std::move(tool)),
      intro_(std::move(intro)),
      version_(std::move(version)) {}

CommandRegistry& CommandRegistry::add(Command command) {
  commands_.push_back(std::move(command));
  return *this;
}

const Command* CommandRegistry::find(const std::string& name) const {
  for (const auto& command : commands_) {
    if (command.name == name) return &command;
  }
  return nullptr;
}

std::vector<std::string> CommandRegistry::allowed_flags(
    const Command& command) {
  std::vector<std::string> allowed;
  allowed.reserve(command.flags.size() + 1);
  for (const auto& flag : command.flags) {
    allowed.push_back(flag.value_name.empty() ? flag.name + "!" : flag.name);
  }
  allowed.push_back("help!");
  allowed.push_back("log-level");
  return allowed;
}

void CommandRegistry::print_overview(std::ostream& os) const {
  os << intro_ << "\n\nusage:\n";
  for (const auto& command : commands_) {
    os << "  " << tool_ << " " << command.usage << "\n";
  }
  os << "\ncommands:\n";
  for (const auto& command : commands_) {
    os << "  " << command.name;
    for (std::size_t i = command.name.size(); i < 12; ++i) os << ' ';
    os << command.summary << "\n";
  }
  os << "\n`" << tool_ << " help <command>` (or `" << tool_
     << " <command> --help`) shows a command's flags;\n`" << tool_
     << " --version` prints the code version every report and cache\n"
        "fingerprint carries.  Every command also accepts\n"
        "--log-level=debug|info|warn|error (the ADACHECK_LOG environment\n"
        "variable sets the baseline).\n";
}

void CommandRegistry::print_command_help(const Command& command,
                                         std::ostream& os) const {
  os << "usage: " << tool_ << " " << command.usage << "\n\n"
     << command.summary << "\n";
  if (command.flags.empty()) return;
  os << "\nflags:\n";
  std::size_t width = 0;
  std::vector<std::string> labels;
  labels.reserve(command.flags.size());
  for (const auto& flag : command.flags) {
    std::string label = "--" + flag.name;
    if (!flag.value_name.empty()) label += "=" + flag.value_name;
    width = std::max(width, label.size());
    labels.push_back(std::move(label));
  }
  for (std::size_t i = 0; i < command.flags.size(); ++i) {
    os << "  " << labels[i];
    for (std::size_t pad = labels[i].size(); pad < width + 2; ++pad) os << ' ';
    os << command.flags[i].help << "\n";
  }
}

int CommandRegistry::dispatch(int argc, const char* const* argv,
                              std::ostream& out, std::ostream& err) const {
  const std::string verb = util::CliArgs::subcommand(argc, argv);

  if (verb.empty()) {
    // No verb: only --help / --version are meaningful; anything else
    // is a usage error (reported with the overview for orientation).
    try {
      const util::CliArgs args(argc, argv, {"help!", "version!"});
      if (args.get_bool("version", false)) {
        out << tool_ << " " << version_ << "\n";
        return 0;
      }
      if (args.get_bool("help", false)) {
        print_overview(out);
        return 0;
      }
    } catch (const std::invalid_argument& e) {
      err << e.what() << "\n";
      return 2;
    }
    err << "missing subcommand\n\n";
    print_overview(err);
    return 2;
  }

  if (verb == "version") {
    out << tool_ << " " << version_ << "\n";
    return 0;
  }

  if (verb == "help") {
    const util::CliArgs args(argc, argv, {});
    if (args.positional().size() < 2) {
      print_overview(out);
      return 0;
    }
    const std::string& topic = args.positional()[1];
    if (const Command* command = find(topic)) {
      print_command_help(*command, out);
      return 0;
    }
    err << "unknown command \"" << topic << "\"";
    suggest(topic, err);
    err << "\n";
    return 2;
  }

  const Command* command = find(verb);
  if (command == nullptr) {
    err << "unknown subcommand \"" << verb << "\"";
    suggest(verb, err);
    err << "\n\n";
    print_overview(err);
    return 2;
  }

  try {
    const util::CliArgs args(argc, argv, allowed_flags(*command));
    if (args.get_bool("help", false)) {
      print_command_help(*command, out);
      return 0;
    }
    apply_log_level(args);
    return command->run(args);
  } catch (const std::invalid_argument& e) {
    // Flag-table violations (unknown flag with its own "did you mean",
    // malformed values) — usage errors, not tool failures.
    err << verb << ": " << e.what() << "\n";
    return 2;
  }
}

void CommandRegistry::suggest(const std::string& name,
                              std::ostream& err) const {
  std::vector<std::string> names;
  names.reserve(commands_.size());
  for (const auto& command : commands_) names.push_back(command.name);
  const std::string match = util::closest_match(name, names);
  if (!match.empty()) {
    err << ", did you mean \"" << match << "\"?";
  } else {
    err << " (commands: " << util::join(names, ", ") << ")";
  }
}

std::string resolve_output(const util::CliArgs& args, const std::string& flag,
                           const std::string& document_value,
                           const std::string& fallback) {
  if (const auto value = args.get(flag)) return *value;
  if (!document_value.empty()) return document_value;
  return fallback;
}

}  // namespace adacheck::cli
