// Experiment descriptions and the runner that reproduces the paper's
// tables: a grid of (utilization, lambda) cells, each simulated under
// several schemes with a shared Monte-Carlo budget.
#pragma once

#include <string>
#include <vector>

#include "model/checkpoint.hpp"
#include "model/speed.hpp"
#include "sim/monte_carlo.hpp"

namespace adacheck::harness {

/// The paper's reported numbers for one (cell, scheme) pair; E may be
/// NaN (the tables print NaN when no run succeeds).
struct PaperCell {
  double p = 0.0;
  double e = 0.0;
};

/// One table row: a (U, lambda) point with the paper's values per scheme.
struct ExperimentRow {
  double utilization = 0.0;  ///< U as defined by the table (see util_level)
  double lambda = 0.0;       ///< per-processor fault rate
  std::vector<PaperCell> paper;  ///< one entry per spec.schemes element
};

/// A full table ((a) and (b) sub-tables are separate specs).
struct ExperimentSpec {
  std::string id;     ///< e.g. "table1a"
  std::string title;
  model::CheckpointCosts costs;  ///< cycle units
  double deadline = 10'000.0;
  int fault_tolerance = 0;       ///< k
  double speed_ratio = 2.0;      ///< f2 / f1
  model::VoltageLaw voltage;     ///< energy calibration (DESIGN.md §3)
  /// Speed level whose frequency converts U to N (paper: U = N/(f*D))
  /// and at which the fixed baselines run: 0 = f1, 1 = f2.
  std::size_t util_level = 0;
  std::vector<std::string> schemes;  ///< policy names (see policy/factory.hpp)
  std::vector<ExperimentRow> rows;

  void validate() const;
};

/// Measured statistics for every (row, scheme) cell, same shape as
/// spec.rows x spec.schemes.
struct ExperimentResult {
  ExperimentSpec spec;
  std::vector<std::vector<sim::CellStats>> cells;  ///< [row][scheme]
};

/// Builds the SimSetup for one row of a spec (exposed for tests).
sim::SimSetup make_setup(const ExperimentSpec& spec,
                         const ExperimentRow& row);

/// Runs every cell of the experiment.
ExperimentResult run_experiment(const ExperimentSpec& spec,
                                const sim::MonteCarloConfig& config = {});

}  // namespace adacheck::harness
