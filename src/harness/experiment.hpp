// Experiment descriptions and the runner that reproduces the paper's
// tables: a grid of (utilization, lambda) cells, each simulated under
// several schemes with a shared Monte-Carlo budget.
#pragma once

#include <string>
#include <vector>

#include "model/checkpoint.hpp"
#include "model/speed.hpp"
#include "sim/monte_carlo.hpp"

namespace adacheck::harness {

/// The paper's reported numbers for one (cell, scheme) pair; E may be
/// NaN (the tables print NaN when no run succeeds).
struct PaperCell {
  double p = 0.0;
  double e = 0.0;
};

/// One table row: a (U, lambda) point with the paper's values per scheme.
struct ExperimentRow {
  double utilization = 0.0;  ///< U as defined by the table (see util_level)
  double lambda = 0.0;       ///< per-processor fault rate
  std::vector<PaperCell> paper;  ///< one entry per spec.schemes element
};

/// A full table ((a) and (b) sub-tables are separate specs).
struct ExperimentSpec {
  std::string id;     ///< e.g. "table1a"
  std::string title;
  model::CheckpointCosts costs;  ///< cycle units
  double deadline = 10'000.0;
  int fault_tolerance = 0;       ///< k
  double speed_ratio = 2.0;      ///< f2 / f1
  model::VoltageLaw voltage;     ///< energy calibration (DESIGN.md §3)
  /// Speed level whose frequency converts U to N (paper: U = N/(f*D))
  /// and at which the fixed baselines run: 0 = f1, 1 = f2.
  std::size_t util_level = 0;
  /// Fault-environment registry name applied to every cell (see
  /// model/fault_env.hpp); the default "poisson" reproduces the paper
  /// bit-for-bit.
  std::string environment = "poisson";
  /// Per-experiment precision budget; when enabled it overrides the
  /// sweep config's budget for every cell of this spec (sequential
  /// stopping instead of the config's fixed run count — see
  /// sim::RunBudget).  Disabled by default.
  sim::RunBudget budget;
  std::vector<std::string> schemes;  ///< policy names (see policy/factory.hpp)
  std::vector<ExperimentRow> rows;

  void validate() const;
};

/// Observer/cancellation hooks threaded from the harness entry points
/// down to sim::run_cells_ex; both null = the zero-cost null path.
/// Cell indices reported to the observer are flat row-major positions
/// ((row * schemes + scheme), spec-major across a sweep) — the same
/// order as sweep_cell_refs (harness/stream_report.hpp).
struct SweepOptions {
  sim::ISweepObserver* observer = nullptr;
  sim::CancellationToken* cancel = nullptr;
};

/// Measured statistics for every (row, scheme) cell, same shape as
/// spec.rows x spec.schemes.
struct ExperimentResult {
  ExperimentSpec spec;
  std::vector<std::vector<sim::CellStats>> cells;  ///< [row][scheme]
  /// Extra metric-recorder values per cell, same shape as `cells`;
  /// every entry is empty when the config named no MetricSuite.
  std::vector<std::vector<sim::MetricValues>> metrics;
};

/// Builds the SimSetup for one row of a spec (exposed for tests).
sim::SimSetup make_setup(const ExperimentSpec& spec,
                         const ExperimentRow& row);

/// The environment axis of a sweep: one copy of every spec per named
/// environment, ids suffixed "@<environment>" (e.g. "table1a@bursty-
/// orbit").  Cell seeds depend only on (row, scheme), so the same
/// master seed gives *paired* fault-process draws across environments
/// — cross-environment deltas are not seed noise.
std::vector<ExperimentSpec> with_environments(
    const std::vector<ExperimentSpec>& specs,
    const std::vector<std::string>& environments);

/// Seed for the (row, scheme) cell: decorrelates cells while keeping
/// every cell reproducible.  Shared by run_experiment and run_sweep so
/// their results are interchangeable.
std::uint64_t cell_seed(std::uint64_t master, std::size_t row,
                        std::size_t scheme) noexcept;

/// The flat Monte-Carlo job list for every (row, scheme) cell of the
/// spec, in row-major order (exposed for run_sweep and tests).
std::vector<sim::CellJob> experiment_jobs(const ExperimentSpec& spec,
                                          const sim::MonteCarloConfig& config);

/// Reassembles a row-major flat cell-result slice (as produced by
/// running experiment_jobs) into the spec's [row][scheme] cell and
/// metrics grids.  `results` must hold at least offset + rows x
/// schemes entries.
ExperimentResult assemble_experiment(
    const ExperimentSpec& spec, const std::vector<sim::CellResult>& results,
    std::size_t offset = 0);

/// Runs every cell of the experiment as one flat task queue on the
/// shared thread pool (config.threads caps the parallelism).
ExperimentResult run_experiment(const ExperimentSpec& spec,
                                const sim::MonteCarloConfig& config = {},
                                const SweepOptions& options = {});

}  // namespace adacheck::harness
