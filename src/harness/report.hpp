// Rendering and shape-checking of experiment results.
//
// `render_experiment` prints a paper-vs-measured table; `shape_checks`
// evaluates the qualitative claims the paper makes about each table
// (who wins, and roughly by how much) — absolute numbers are not
// expected to match a reimplementation, the ordering is (DESIGN.md §4).
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "harness/experiment.hpp"

namespace adacheck::harness {

/// Paper-vs-measured table, one row per (U, lambda) point with P and E
/// for every scheme.
std::string render_experiment(const ExperimentResult& result);

/// Extended statistics (CIs, fault/rollback/high-speed-cycle means).
std::string render_extended(const ExperimentResult& result);

/// Writes a machine-readable CSV (one line per cell).
void write_csv(const ExperimentResult& result, std::ostream& os);

/// One qualitative expectation evaluated against measured data.
struct ShapeCheck {
  std::string description;
  bool passed = false;
};

/// Evaluates the paper's qualitative claims for this table:
///  - the proposed scheme's P is within tolerance of, or above, A_D's
///    in every cell, and strictly better in the cells the paper
///    highlights (baselines-at-f2 tables);
///  - both adaptive schemes dominate the fixed baselines' P wherever
///    the paper's own gap exceeds 0.2;
///  - in baselines-at-f1 tables the proposed scheme uses no more
///    energy than A_D (cell-median comparison).
std::vector<ShapeCheck> shape_checks(const ExperimentResult& result);

/// Render shape checks as a PASS/FAIL listing.
std::string render_shape_checks(const std::vector<ShapeCheck>& checks);

}  // namespace adacheck::harness
