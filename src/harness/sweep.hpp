// Parallel experiment sweeps.
//
// run_sweep executes any number of experiment specs — a whole paper
// table set, or a custom parameter grid — as ONE flat chunk queue on
// the shared thread pool.  That is the difference from calling
// run_experiment in a loop pre-pool: there is no barrier between
// cells, so workers drain cheap and expensive cells alike with no
// idle tail, and thread start-up is paid once per process instead of
// once per cell.
//
// Results are bit-identical to sequential run_experiment calls with
// the same config: cells are seeded by (row, scheme) via cell_seed()
// and chunk merge order is thread-count independent.
#pragma once

#include <cstddef>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/graph_experiment.hpp"

namespace adacheck::harness {

/// Wall-clock and throughput metrics for one sweep execution.
struct SweepPerf {
  double wall_seconds = 0.0;
  /// Runs aggregated across all cells — cells x runs for fixed-count
  /// sweeps, the sum of per-cell stopping points for budgeted ones
  /// (wave overshoot past a stopping chunk is excluded).
  long long total_runs = 0;
  double runs_per_second = 0.0;  ///< total_runs / wall_seconds
  int threads = 0;               ///< parallelism cap actually applied
  std::size_t cells = 0;         ///< (row, scheme) cells executed
};

/// Every spec's measured cells plus the sweep's perf metrics.
struct SweepResult {
  std::vector<ExperimentResult> experiments;
  std::vector<GraphExperimentResult> graph_experiments;
  sim::MonteCarloConfig config;  ///< per-cell budget/seed actually used
  SweepPerf perf;
};

/// Runs all cells of all specs as one flat task queue.  The options'
/// observer sees flat cell indices in spec-major row-major order (the
/// order of sweep_cell_refs); its cancellation token aborts the queue
/// with sim::SweepCancelled.
SweepResult run_sweep(const std::vector<ExperimentSpec>& specs,
                      const sim::MonteCarloConfig& config = {},
                      const SweepOptions& options = {});

/// run_sweep with DAG experiments in the same flat queue: graph cells
/// are appended after every classic cell, spec-major with schedulers
/// innermost — the order of sweep_cell_refs(specs, graphs).  Either
/// list may be empty (but not both).
SweepResult run_sweep(const std::vector<ExperimentSpec>& specs,
                      const std::vector<GraphExperimentSpec>& graphs,
                      const sim::MonteCarloConfig& config = {},
                      const SweepOptions& options = {});

}  // namespace adacheck::harness
