// DAG experiment descriptions and their Monte-Carlo bridge.
//
// A GraphExperimentSpec is the DAG analogue of ExperimentSpec: one
// TaskGraph swept over a lambda axis (rows) and a scheduler axis
// (columns), each (lambda, scheduler) cell a Monte-Carlo population of
// whole graph-executive runs.  Graph cells ride the exact same
// machinery as classic cells — they become sim::CellJobs whose custom
// ChunkRunner replays the graph executive per run index, so chunking,
// budget waves, observers, cancellation, and JSONL streaming all apply
// unchanged and results stay bit-identical across thread counts.
//
// Cell P is the probability every released instance meets the
// end-to-end deadline; cell E the expected total energy of a
// successful run.  The extra "graph" metrics group carries end-to-end
// response, blocking, and per-node breakdowns.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "model/checkpoint.hpp"
#include "model/speed.hpp"
#include "sched/task_graph.hpp"
#include "sim/monte_carlo.hpp"

namespace adacheck::harness {

struct GraphExperimentSpec {
  std::string id;     ///< e.g. "dag_diamond"
  std::string title;
  sched::TaskGraph graph;
  int workers = 1;
  int instances = 8;  ///< periodic releases per simulated run
  bool skip_late_jobs = true;
  model::CheckpointCosts costs;  ///< cycle units
  double speed_ratio = 2.0;      ///< f2 / f1
  model::VoltageLaw voltage;
  /// Fault-environment registry name applied to every cell.
  std::string environment = "poisson";
  /// Per-experiment precision budget, same layering as ExperimentSpec.
  sim::RunBudget budget;
  std::vector<std::string> schedulers;  ///< registry names (columns)
  std::vector<double> lambdas;          ///< per-processor rates (rows)

  void validate() const;
};

/// Measured statistics per (lambda, scheduler) cell.
struct GraphExperimentResult {
  GraphExperimentSpec spec;
  std::vector<std::vector<sim::CellStats>> cells;       ///< [lambda][sched]
  std::vector<std::vector<sim::MetricValues>> metrics;  ///< same shape
};

/// The environment axis, mirroring with_environments for classic
/// specs: one copy per environment, ids suffixed "@<environment>".
std::vector<GraphExperimentSpec> graphs_with_environments(
    const std::vector<GraphExperimentSpec>& specs,
    const std::vector<std::string>& environments);

/// Seed for a graph cell: derived from the lambda row only, so the
/// scheduler columns of one row see paired fault draws — policy deltas
/// are never seed noise.  Distinct from cell_seed's domain.
std::uint64_t graph_cell_seed(std::uint64_t master, std::size_t row) noexcept;

/// The flat Monte-Carlo job list for every (lambda, scheduler) cell in
/// row-major order; each job carries a ChunkRunner driving the graph
/// executive (CellJob::setup/factory are unused).
std::vector<sim::CellJob> graph_experiment_jobs(
    const GraphExperimentSpec& spec, const sim::MonteCarloConfig& config);

/// Reassembles a row-major flat result slice into the spec's grids.
GraphExperimentResult assemble_graph_experiment(
    const GraphExperimentSpec& spec,
    const std::vector<sim::CellResult>& results, std::size_t offset = 0);

}  // namespace adacheck::harness
