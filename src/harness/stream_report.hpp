// Streaming sweep output: the JSONL cell stream and the live progress
// line, both implemented as sim::ISweepObserver so they plug straight
// into run_sweep / run_cells_ex.
//
// JSONL stream ("adacheck-cell-v2" for classic cells,
// "adacheck-graph-cell-v1" for DAG cells, whose lines carry the
// scheduler name in the "scheme" field and no utilization): one
// compact JSON object per completed cell, one per line, written in
// flat cell-index order (the sweep_cell_refs order: spec-major,
// row-major, scheme inner, graph experiments appended last).  Cells
// complete out of order under parallel execution, so the stream
// buffers finished lines until their predecessors are written — the
// emitted bytes are therefore identical for every thread count, just
// like the main report's cell section — budgeted sweeps included,
// since a budgeted cell's stopping chunk is thread-count independent.
// Each line carries the cell's coordinates (experiment id,
// utilization, lambda, scheme), every sweep report cell field
// (runs_executed and the achieved half-widths included), and the
// extra recorder metrics when present.
#pragma once

#include <cstddef>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/graph_experiment.hpp"
#include "sim/observer.hpp"

namespace adacheck::harness {

/// Coordinates of one flat sweep cell, in the exact order run_sweep
/// flattens jobs (and numbers observer cells): spec-major, then
/// row-major with schemes innermost; graph cells (lambda rows,
/// scheduler columns) follow every classic cell.
struct SweepCellRef {
  enum class Kind { kScheme, kGraph };
  Kind kind = Kind::kScheme;
  std::string experiment_id;
  std::size_t row = 0;
  std::size_t scheme = 0;     ///< scheme or scheduler column
  double utilization = 0.0;   ///< classic cells only
  double lambda = 0.0;
  std::string scheme_name;    ///< scheme or scheduler name
};

/// The flat cell list of a sweep over `specs` (validates each spec).
std::vector<SweepCellRef> sweep_cell_refs(
    const std::vector<ExperimentSpec>& specs);

/// The flat cell list with graph experiments appended — the order of
/// the two-list run_sweep overload.
std::vector<SweepCellRef> sweep_cell_refs(
    const std::vector<ExperimentSpec>& specs,
    const std::vector<GraphExperimentSpec>& graphs);

/// Streams one JSONL line per completed cell to `os`, in cell-index
/// order.  Construct with the refs of the exact spec list passed to
/// run_sweep.  Callbacks arrive serialized (sim/observer.hpp), so the
/// class needs no locking.
class JsonlCellStream final : public sim::ISweepObserver {
 public:
  JsonlCellStream(std::ostream& os, std::vector<SweepCellRef> refs);

  void on_cell_done(std::size_t cell, const sim::CellResult& result) override;

  /// Lines written so far; equals the ref count after a complete sweep
  /// (a cancelled sweep legitimately stops short).
  std::size_t emitted() const noexcept { return next_; }

 private:
  std::ostream& os_;
  std::vector<SweepCellRef> refs_;
  std::size_t next_ = 0;                     ///< next cell index to write
  std::map<std::size_t, std::string> pending_;  ///< finished out of order
};

/// Live progress line for interactive drivers: rewrites one
/// carriage-return-terminated status line ("cells 12/208  34562
/// runs/s") on every progress tick, throttled to `min_interval`
/// seconds, and always ends with a final newline-terminated line when
/// the last cell completes.  Point it at stderr so it never
/// contaminates report documents on stdout.
class ProgressLine final : public sim::ISweepObserver {
 public:
  explicit ProgressLine(std::ostream& os, double min_interval = 0.2);

  void on_progress(const sim::SweepProgress& progress) override;

 private:
  std::ostream& os_;
  double min_interval_;
  double start_ = 0.0;       ///< steady-clock seconds at first tick
  double last_print_ = -1.0;
  bool any_ = false;
};

}  // namespace adacheck::harness
