#include "harness/sweep.hpp"

#include <chrono>
#include <stdexcept>

namespace adacheck::harness {

SweepResult run_sweep(const std::vector<ExperimentSpec>& specs,
                      const std::vector<GraphExperimentSpec>& graphs,
                      const sim::MonteCarloConfig& config,
                      const SweepOptions& options) {
  if (specs.empty() && graphs.empty()) {
    throw std::invalid_argument("run_sweep: nothing to run");
  }
  // Flatten: [spec][row][scheme] then [graph][lambda][scheduler] ->
  // one job list, remembering where each spec's slice starts.
  std::vector<sim::CellJob> jobs;
  std::vector<std::size_t> offsets;
  offsets.reserve(specs.size());
  for (const auto& spec : specs) {
    offsets.push_back(jobs.size());
    auto spec_jobs = experiment_jobs(spec, config);
    jobs.insert(jobs.end(), std::make_move_iterator(spec_jobs.begin()),
                std::make_move_iterator(spec_jobs.end()));
  }
  std::vector<std::size_t> graph_offsets;
  graph_offsets.reserve(graphs.size());
  for (const auto& graph : graphs) {
    graph_offsets.push_back(jobs.size());
    auto graph_jobs = graph_experiment_jobs(graph, config);
    jobs.insert(jobs.end(), std::make_move_iterator(graph_jobs.begin()),
                std::make_move_iterator(graph_jobs.end()));
  }

  int threads_used = 1;
  sim::RunCellsOptions run_options;
  run_options.threads = config.threads;
  run_options.threads_used = &threads_used;
  run_options.observer = options.observer;
  run_options.cancel = options.cancel;
  const auto t0 = std::chrono::steady_clock::now();
  const auto cell_results = sim::run_cells_ex(jobs, run_options);
  const auto t1 = std::chrono::steady_clock::now();

  SweepResult result;
  result.config = config;
  result.experiments.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    result.experiments.push_back(
        assemble_experiment(specs[i], cell_results, offsets[i]));
  }
  result.graph_experiments.reserve(graphs.size());
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    result.graph_experiments.push_back(assemble_graph_experiment(
        graphs[i], cell_results, graph_offsets[i]));
  }

  result.perf.wall_seconds =
      std::chrono::duration<double>(t1 - t0).count();
  result.perf.cells = jobs.size();
  // Count the runs actually aggregated: for budgeted cells that is
  // where each one stopped, for fixed cells exactly cells x runs.
  result.perf.total_runs = 0;
  for (const auto& cell : cell_results) {
    result.perf.total_runs +=
        static_cast<long long>(cell.stats.completion.trials());
  }
  result.perf.runs_per_second =
      result.perf.wall_seconds > 0.0
          ? static_cast<double>(result.perf.total_runs) /
                result.perf.wall_seconds
          : 0.0;
  result.perf.threads = threads_used;
  return result;
}

SweepResult run_sweep(const std::vector<ExperimentSpec>& specs,
                      const sim::MonteCarloConfig& config,
                      const SweepOptions& options) {
  return run_sweep(specs, {}, config, options);
}

}  // namespace adacheck::harness
