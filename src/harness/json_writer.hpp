// Minimal streaming JSON encoder shared by the sweep report writer and
// the JSONL cell stream: fixed key order, shortest round-trip doubles,
// non-finite doubles as null.  Two layouts: kPretty (two-space indent,
// the adacheck-sweep-v6 document) and kCompact (no whitespace at all,
// one JSONL line).  Internal to the harness layer — not a public API.
#pragma once

#include <charconv>
#include <cmath>
#include <concepts>
#include <cstdio>
#include <ostream>
#include <string>
#include <vector>

#include "sim/metrics.hpp"

namespace adacheck::harness {

enum class JsonStyle { kPretty, kCompact };

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os, JsonStyle style = JsonStyle::kPretty)
      : os_(os), compact_(style == JsonStyle::kCompact) {}

  void key(const char* name) {
    element_prefix();
    write_string(name);
    os_ << (compact_ ? ":" : ": ");
    pending_key_ = true;
  }

  void begin_object() {
    element_start();
    os_ << '{';
    first_.push_back(true);
  }
  void end_object() { close('}'); }

  void begin_array() {
    element_start();
    os_ << '[';
    first_.push_back(true);
  }
  void end_array() { close(']'); }

  void value(const std::string& s) {
    element_start();
    write_string(s.c_str());
  }
  void value(double v) {
    element_start();
    if (!std::isfinite(v)) {
      os_ << "null";
      return;
    }
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof buf, v);
    os_.write(buf, res.ptr - buf);
  }
  void value(bool b) { element_start(); os_ << (b ? "true" : "false"); }
  // One template for all integer widths: distinct exact overloads
  // would be ambiguous for std::size_t on platforms where it matches
  // neither uint64_t nor long long exactly.  bool prefers the
  // non-template overload above.
  void value(std::integral auto v) { element_start(); os_ << v; }

  /// Splices pre-encoded JSON verbatim as one value — for embedding a
  /// document produced elsewhere (e.g. an obs stats snapshot inside a
  /// protocol response line).  The caller owns its validity.
  void raw_value(const std::string& json) {
    element_start();
    os_ << json;
  }

  template <class T>
  void kv(const char* name, const T& v) {
    key(name);
    value(v);
  }

 private:
  void element_start() {
    if (pending_key_) {
      pending_key_ = false;
      return;
    }
    element_prefix();
  }
  void element_prefix() {
    if (first_.empty()) return;  // document root
    if (!first_.back()) os_ << ',';
    first_.back() = false;
    newline_indent();
  }
  void newline_indent() {
    if (compact_) return;
    os_ << '\n';
    for (std::size_t i = 0; i < first_.size(); ++i) os_ << "  ";
  }
  void close(char bracket) {
    const bool was_empty = first_.back();
    first_.pop_back();
    if (!was_empty) newline_indent();
    os_ << bracket;
  }
  void write_string(const char* s) {
    os_ << '"';
    for (; *s != '\0'; ++s) {
      const char c = *s;
      switch (c) {
        case '"': os_ << "\\\""; break;
        case '\\': os_ << "\\\\"; break;
        case '\n': os_ << "\\n"; break;
        case '\t': os_ << "\\t"; break;
        case '\r': os_ << "\\r"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            os_ << buf;
          } else {
            os_ << c;
          }
      }
    }
    os_ << '"';
  }

  std::ostream& os_;
  std::vector<bool> first_;
  bool pending_key_ = false;
  bool compact_ = false;
};

/// The fields of one measured cell, shared verbatim by the sweep report's
/// cell objects and the JSONL stream: the v3 fields in their original
/// order, the v4 additions (runs_executed, p_halfwidth,
/// e_rel_halfwidth), then — only when the cell carried extra
/// recorders — a "metrics" object of one sub-object per recorder.
/// Defined in json_report.cpp.
void write_cell_fields(JsonWriter& json, const std::string& scheme,
                       const sim::CellStats& stats,
                       const sim::MetricValues& metrics);

}  // namespace adacheck::harness
