#include "harness/graph_experiment.hpp"

#include <memory>
#include <stdexcept>
#include <utility>

#include "model/fault_env.hpp"
#include "obs/trace.hpp"
#include "sched/graph_executive.hpp"
#include "sched/scheduler.hpp"
#include "util/rng.hpp"

namespace adacheck::harness {

void GraphExperimentSpec::validate() const {
  if (id.empty()) throw std::invalid_argument("GraphExperimentSpec: empty id");
  graph.validate();
  if (workers < 1)
    throw std::invalid_argument("GraphExperimentSpec: workers < 1");
  if (instances <= 0)
    throw std::invalid_argument("GraphExperimentSpec: instances <= 0");
  costs.validate();
  if (speed_ratio <= 1.0)
    throw std::invalid_argument("GraphExperimentSpec: speed_ratio <= 1");
  if (!model::is_known_environment(environment)) {
    throw std::invalid_argument(
        "GraphExperimentSpec: unknown environment \"" + environment + "\"");
  }
  budget.validate();
  if (schedulers.empty())
    throw std::invalid_argument("GraphExperimentSpec: no schedulers");
  for (const auto& name : schedulers) {
    if (!sched::is_known_scheduler(name)) {
      throw std::invalid_argument(
          "GraphExperimentSpec: unknown scheduler \"" + name + "\"");
    }
  }
  if (lambdas.empty())
    throw std::invalid_argument("GraphExperimentSpec: no lambdas");
  for (const double lambda : lambdas) {
    if (lambda < 0.0)
      throw std::invalid_argument("GraphExperimentSpec: lambda < 0");
  }
}

std::vector<GraphExperimentSpec> graphs_with_environments(
    const std::vector<GraphExperimentSpec>& specs,
    const std::vector<std::string>& environments) {
  if (environments.empty()) {
    throw std::invalid_argument("graphs_with_environments: no environments");
  }
  std::vector<GraphExperimentSpec> expanded;
  expanded.reserve(specs.size() * environments.size());
  for (const auto& env : environments) {
    if (!model::is_known_environment(env)) {
      throw std::invalid_argument(
          "graphs_with_environments: unknown environment \"" + env + "\"");
    }
    for (const auto& spec : specs) {
      GraphExperimentSpec copy = spec;
      copy.environment = env;
      copy.id += "@" + env;
      expanded.push_back(std::move(copy));
    }
  }
  return expanded;
}

std::uint64_t graph_cell_seed(std::uint64_t master,
                              std::size_t row) noexcept {
  return util::derive_seed(master, (row << 8) ^ 0xDA6ULL);
}

namespace {

/// The graph executive's full schedule, attached to each RunView so
/// the "graph" recorder can aggregate beyond the synthetic RunResult.
struct GraphRunDetail final : sim::IRunDetail {
  const sched::GraphScheduleResult* schedule = nullptr;
};

/// Per-cell graph aggregates: end-to-end response, blocking, and
/// per-node breakdowns, emitted as the "graph" metrics group.  All
/// accumulators are RunningStats over per-run scalars merged with the
/// same Chan merges CellStats uses — deterministic in chunk order.
class GraphMetricsRecorder final : public sim::IMetricRecorder {
 public:
  explicit GraphMetricsRecorder(const sched::TaskGraph& graph) {
    node_names_.reserve(graph.nodes.size());
    for (const auto& node : graph.nodes) node_names_.push_back(node.name);
    per_node_.resize(graph.nodes.size());
  }

  std::string_view name() const override { return "graph"; }

  void observe(const sim::RunView& run) override {
    const auto* detail = dynamic_cast<const GraphRunDetail*>(run.detail);
    if (detail == nullptr || detail->schedule == nullptr) {
      throw std::logic_error(
          "GraphMetricsRecorder: RunView carries no graph schedule");
    }
    const auto& schedule = *detail->schedule;
    instances_released_.add(
        static_cast<double>(schedule.instances_released));
    instances_missed_.add(static_cast<double>(schedule.instances_missed));
    if (!schedule.end_to_end.empty()) {
      end_to_end_.add(schedule.end_to_end.mean());
    }
    blocking_.add(schedule.total_blocking);
    busy_.add(schedule.busy_time);
    makespan_.add(schedule.makespan);
    for (std::size_t n = 0; n < per_node_.size(); ++n) {
      const auto& node = schedule.per_node[n];
      auto& acc = per_node_[n];
      if (!node.response_time.empty()) {
        acc.response.add(node.response_time.mean());
      }
      if (!node.blocking_time.empty()) {
        acc.blocking.add(node.blocking_time.mean());
      }
      acc.missed.add(static_cast<double>(node.missed));
    }
  }

  void merge(const sim::IMetricRecorder& peer) override {
    const auto& other = static_cast<const GraphMetricsRecorder&>(peer);
    instances_released_.merge(other.instances_released_);
    instances_missed_.merge(other.instances_missed_);
    end_to_end_.merge(other.end_to_end_);
    blocking_.merge(other.blocking_);
    busy_.merge(other.busy_);
    makespan_.merge(other.makespan_);
    for (std::size_t n = 0; n < per_node_.size(); ++n) {
      per_node_[n].response.merge(other.per_node_[n].response);
      per_node_[n].blocking.merge(other.per_node_[n].blocking);
      per_node_[n].missed.merge(other.per_node_[n].missed);
    }
  }

  void emit(sim::MetricValues::Group& out) const override {
    out.entries.push_back(
        {"instances_released_mean", instances_released_.mean()});
    out.entries.push_back(
        {"instances_missed_mean", instances_missed_.mean()});
    out.entries.push_back({"end_to_end_mean", end_to_end_.mean()});
    out.entries.push_back({"blocking_time_mean", blocking_.mean()});
    out.entries.push_back({"busy_time_mean", busy_.mean()});
    out.entries.push_back({"makespan_mean", makespan_.mean()});
    for (std::size_t n = 0; n < per_node_.size(); ++n) {
      const std::string prefix = "node." + node_names_[n] + ".";
      out.entries.push_back(
          {prefix + "response_mean", per_node_[n].response.mean()});
      out.entries.push_back(
          {prefix + "blocking_mean", per_node_[n].blocking.mean()});
      out.entries.push_back(
          {prefix + "missed_mean", per_node_[n].missed.mean()});
    }
  }

 private:
  struct NodeAccumulators {
    util::RunningStats response;
    util::RunningStats blocking;
    util::RunningStats missed;
  };
  std::vector<std::string> node_names_;
  util::RunningStats instances_released_;
  util::RunningStats instances_missed_;
  util::RunningStats end_to_end_;
  util::RunningStats blocking_;
  util::RunningStats busy_;
  util::RunningStats makespan_;
  std::vector<NodeAccumulators> per_node_;
};

/// The chunk runner for one (lambda, scheduler) cell: replays the
/// graph executive once per run index, synthesizing a RunResult so the
/// built-in CellStats recorder (and the budget evaluator) see the cell
/// exactly like a classic one.  Run `i`'s executive seed is
/// derive_seed(cell seed, i) — the same per-index derivation as the
/// engine loop — and node seeds inside are scheduler-independent.
sim::MetricSet run_graph_chunk(const GraphExperimentSpec& spec, double lambda,
                               const std::string& scheduler,
                               const sim::MonteCarloConfig& config, int begin,
                               int end) {
  std::vector<std::unique_ptr<sim::IMetricRecorder>> recorders;
  recorders.push_back(std::make_unique<sim::CellStatsRecorder>());
  recorders.push_back(std::make_unique<GraphMetricsRecorder>(spec.graph));
  auto metrics = sim::MetricSet::from_recorders(std::move(recorders));

  sched::GraphExecutiveConfig exec;
  exec.instances = spec.instances;
  exec.skip_late_jobs = spec.skip_late_jobs;
  exec.workers = spec.workers;
  exec.scheduler = scheduler;
  exec.costs = spec.costs;
  exec.fault_model = model::FaultModel{lambda, false};
  exec.environment = model::find_environment(spec.environment);
  exec.speed_ratio = spec.speed_ratio;
  exec.voltage = spec.voltage;
  const bool tracing = obs::Tracer::instance().enabled();

  // Recorders read nothing from the setup (base_frequency rides the
  // view); this placeholder just satisfies the RunView reference.
  const sim::SimSetup context(
      model::TaskSpec{spec.graph.critical_path_cycles(),
                      spec.graph.end_to_end_deadline(), 0.0, 0, spec.id},
      spec.costs,
      model::DvsProcessor::two_speed(spec.speed_ratio, spec.voltage),
      model::FaultModel{lambda, false}, exec.environment);
  for (int i = begin; i < end; ++i) {
    exec.seed = util::derive_seed(config.seed, static_cast<std::uint64_t>(i));
    // One exemplar schedule per cell in the trace: run 0's spans.
    exec.trace = tracing && i == 0;
    const auto schedule = sched::run_graph_executive(spec.graph, exec);

    sim::RunResult run;
    run.outcome = schedule.instances_missed == 0
                      ? sim::RunOutcome::kCompleted
                      : sim::RunOutcome::kDeadlineMiss;
    run.finish_time = schedule.makespan;
    run.energy = schedule.total_energy;
    run.faults = static_cast<int>(schedule.total_faults);
    run.rollbacks = static_cast<int>(schedule.total_rollbacks);
    run.corrections = static_cast<int>(schedule.total_corrections);

    GraphRunDetail detail;
    detail.schedule = &schedule;
    metrics.observe({context, run, 1.0, false, &detail});
  }
  return metrics;
}

}  // namespace

std::vector<sim::CellJob> graph_experiment_jobs(
    const GraphExperimentSpec& spec, const sim::MonteCarloConfig& config) {
  spec.validate();
  // One shared immutable copy for every cell's runner closure.
  const auto shared = std::make_shared<const GraphExperimentSpec>(spec);
  // CellJob::setup/factory are unused on the runner path but the
  // member still needs constructing (SimSetup has no default state).
  const sim::SimSetup placeholder(
      model::TaskSpec{spec.graph.critical_path_cycles(),
                      spec.graph.end_to_end_deadline(), 0.0, 0, spec.id},
      spec.costs,
      model::DvsProcessor::two_speed(spec.speed_ratio, spec.voltage),
      model::FaultModel{0.0, false});
  std::vector<sim::CellJob> jobs;
  jobs.reserve(spec.lambdas.size() * spec.schedulers.size());
  for (std::size_t r = 0; r < spec.lambdas.size(); ++r) {
    for (std::size_t s = 0; s < spec.schedulers.size(); ++s) {
      sim::CellJob job{placeholder, {}, config, {}};
      job.config.seed = graph_cell_seed(config.seed, r);
      if (spec.budget.enabled()) job.config.budget = spec.budget;
      const double lambda = spec.lambdas[r];
      const std::string scheduler = spec.schedulers[s];
      job.runner = [shared, lambda, scheduler](
                       const sim::MonteCarloConfig& cell_config, int begin,
                       int end) {
        return run_graph_chunk(*shared, lambda, scheduler, cell_config,
                               begin, end);
      };
      jobs.push_back(std::move(job));
    }
  }
  return jobs;
}

GraphExperimentResult assemble_graph_experiment(
    const GraphExperimentSpec& spec,
    const std::vector<sim::CellResult>& results, std::size_t offset) {
  GraphExperimentResult result;
  result.spec = spec;
  result.cells.reserve(spec.lambdas.size());
  result.metrics.reserve(spec.lambdas.size());
  const std::size_t width = spec.schedulers.size();
  for (std::size_t r = 0; r < spec.lambdas.size(); ++r) {
    auto& cells = result.cells.emplace_back();
    auto& metrics = result.metrics.emplace_back();
    cells.reserve(width);
    metrics.reserve(width);
    for (std::size_t s = 0; s < width; ++s) {
      const auto& cell = results[offset + r * width + s];
      cells.push_back(cell.stats);
      metrics.push_back(cell.metrics);
    }
  }
  return result;
}

}  // namespace adacheck::harness
