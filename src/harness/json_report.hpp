// Machine-readable sweep reports.
//
// Emits one JSON document per sweep so CI can archive the perf
// trajectory (runs per second, wall-clock) next to the measured cell
// statistics.  The encoding is deterministic: keys are emitted in a
// fixed order, doubles use shortest round-trip formatting, and the
// cell section depends only on seeds and run counts — never on thread
// count or timing — so two sweeps with the same config compare
// byte-for-byte.  NaN and infinities (e.g. the paper's "NaN" energy
// cells) are emitted as null.  Schema documented in README.md.
#pragma once

#include <ostream>
#include <string>

#include "harness/sweep.hpp"

namespace adacheck::harness {

struct JsonReportOptions {
  /// Emit the "perf" section (wall-clock, runs/s).  Disable to get a
  /// byte-stable document for determinism comparisons.
  bool include_perf = true;
};

/// Writes the sweep as JSON (schema "adacheck-sweep-v2": v1 plus a
/// per-experiment "environment" object describing the fault process).
void write_sweep_json(const SweepResult& sweep, std::ostream& os,
                      const JsonReportOptions& options = {});

/// Convenience: the same document as a string.
std::string sweep_json(const SweepResult& sweep,
                       const JsonReportOptions& options = {});

}  // namespace adacheck::harness
