// Machine-readable sweep reports.
//
// Emits one JSON document per sweep so CI can archive the perf
// trajectory (runs per second, wall-clock) next to the measured cell
// statistics.  The encoding is deterministic: keys are emitted in a
// fixed order, doubles use shortest round-trip formatting, and the
// cell section depends only on seeds and run counts — never on thread
// count or timing — so two sweeps with the same config compare
// byte-for-byte.  NaN and infinities (e.g. the paper's "NaN" energy
// cells) are emitted as null.  Schema documented in README.md.
#pragma once

#include <ostream>
#include <string>

#include "harness/sweep.hpp"

namespace adacheck::harness {

/// Advisory observer-overhead comparison written into the perf section
/// (bench_sweep fills this from the committed BENCH_sweep.json
/// baseline; see README "Bench guard").  Advisory only — machines and
/// run counts differ across measurements — so it never fails anything;
/// within_tolerance in the report flags observer_vs_null_ratio <
/// kMinObserverRatio.
struct PerfBaseline {
  /// Observer plumbing must keep >= 90% of null-path throughput.
  static constexpr double kMinObserverRatio = 0.9;

  std::string path;                       ///< baseline file compared against
  double runs_per_second = 0.0;           ///< baseline's recorded throughput
  double null_runs_per_second = 0.0;      ///< this run, no observer
  double observer_runs_per_second = 0.0;  ///< this run, no-op observer
};

/// Fixed-count vs budgeted comparison at matched precision, written
/// into the perf section as "time_to_target_precision" (bench_sweep
/// fills this; see README "Bench guard").  Tracks the sequential-
/// stopping speedup in the CI perf trajectory instead of claiming it.
struct PrecisionBench {
  double target_p_halfwidth = 0.0;  ///< precision both sides must reach
  long long fixed_runs = 0;         ///< the fixed cell's run count
  double fixed_wall_seconds = 0.0;
  double fixed_p_halfwidth = 0.0;   ///< achieved by the fixed cell
  long long budgeted_runs = 0;      ///< where the budgeted cell stopped
  double budgeted_wall_seconds = 0.0;
  double budgeted_p_halfwidth = 0.0;
};

/// Telemetry-enabled vs telemetry-disabled rerun of the same sweep,
/// written into the perf section as "telemetry_overhead" (bench_sweep
/// fills this).  Advisory like observer_overhead: the obs registry's
/// sharded counters should keep the metered path within
/// kMinTelemetryRatio of disabled-path throughput, and CI tracks the
/// ratio instead of trusting the claim.
struct TelemetryBench {
  /// Metered path must keep >= 90% of disabled-path throughput.
  static constexpr double kMinTelemetryRatio = 0.9;

  double disabled_runs_per_second = 0.0;  ///< telemetry off (the default)
  double enabled_runs_per_second = 0.0;   ///< registry + tracer on
  long long events_recorded = 0;          ///< trace events from the metered run
};

struct JsonReportOptions {
  /// Emit the "perf" section (wall-clock, runs/s).  Disable to get a
  /// byte-stable document for determinism comparisons.
  bool include_perf = true;
  /// When set (and include_perf), perf gains an "observer_overhead"
  /// advisory object.  Not owned; must outlive the write call.
  const PerfBaseline* baseline = nullptr;
  /// When set (and include_perf), perf gains a
  /// "time_to_target_precision" object.  Not owned; must outlive the
  /// write call.
  const PrecisionBench* precision = nullptr;
  /// When set (and include_perf), perf gains a "telemetry_overhead"
  /// advisory object.  Not owned; must outlive the write call.
  const TelemetryBench* telemetry = nullptr;
};

/// Writes the sweep as JSON (schema "adacheck-sweep-v6": v5 plus a
/// "graph_experiments" array — DAG experiment grids with the graph
/// shape, scheduler axis, and per-cell graph metrics — emitted only
/// when the sweep ran graph experiments; every v5 field is unchanged).
void write_sweep_json(const SweepResult& sweep, std::ostream& os,
                      const JsonReportOptions& options = {});

/// Convenience: the same document as a string.
std::string sweep_json(const SweepResult& sweep,
                       const JsonReportOptions& options = {});

}  // namespace adacheck::harness
