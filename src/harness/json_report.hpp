// Machine-readable sweep reports.
//
// Emits one JSON document per sweep so CI can archive the perf
// trajectory (runs per second, wall-clock) next to the measured cell
// statistics.  The encoding is deterministic: keys are emitted in a
// fixed order, doubles use shortest round-trip formatting, and the
// cell section depends only on seeds and run counts — never on thread
// count or timing — so two sweeps with the same config compare
// byte-for-byte.  NaN and infinities (e.g. the paper's "NaN" energy
// cells) are emitted as null.  Schema documented in README.md.
#pragma once

#include <ostream>
#include <string>

#include "harness/sweep.hpp"

namespace adacheck::harness {

/// Advisory observer-overhead comparison written into the perf section
/// (bench_sweep fills this from the committed BENCH_sweep.json
/// baseline; see README "Bench guard").  Advisory only — machines and
/// run counts differ across measurements — so it never fails anything;
/// within_tolerance in the report flags observer_vs_null_ratio <
/// kMinObserverRatio.
struct PerfBaseline {
  /// Observer plumbing must keep >= 90% of null-path throughput.
  static constexpr double kMinObserverRatio = 0.9;

  std::string path;                       ///< baseline file compared against
  double runs_per_second = 0.0;           ///< baseline's recorded throughput
  double null_runs_per_second = 0.0;      ///< this run, no observer
  double observer_runs_per_second = 0.0;  ///< this run, no-op observer
};

struct JsonReportOptions {
  /// Emit the "perf" section (wall-clock, runs/s).  Disable to get a
  /// byte-stable document for determinism comparisons.
  bool include_perf = true;
  /// When set (and include_perf), perf gains an "observer_overhead"
  /// advisory object.  Not owned; must outlive the write call.
  const PerfBaseline* baseline = nullptr;
};

/// Writes the sweep as JSON (schema "adacheck-sweep-v3": v2 plus a
/// per-cell "metrics" object of recorder values and a "metrics" name
/// list in config, both present only when the sweep ran extra metric
/// recorders).
void write_sweep_json(const SweepResult& sweep, std::ostream& os,
                      const JsonReportOptions& options = {});

/// Convenience: the same document as a string.
std::string sweep_json(const SweepResult& sweep,
                       const JsonReportOptions& options = {});

}  // namespace adacheck::harness
