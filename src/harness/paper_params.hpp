// The paper's exact experiment grids (Tables 1-4) with its reported
// P/E values embedded, so every bench prints paper-vs-measured rows.
//
// Common parameters (paper §4): D = 10000, c = t_s + t_cp = 22 cycles,
// t_r = 0, f2 = 2*f1, 10,000 runs per cell.
//   SCP flavor (Tables 1-2): t_s = 2,  t_cp = 20 (comparison dominates).
//   CCP flavor (Tables 3-4): t_s = 20, t_cp = 2  (store dominates).
//   (a) sub-tables: k = 5, lambda in {1.4e-3, 1.6e-3},
//       U in {0.76, 0.78, 0.80, 0.82}.
//   (b) sub-tables: k = 1, lambda in {1e-4, 2e-4},
//       U in {0.92, 0.95[, 1.00]}.
// Tables 1/3 run the fixed baselines at f1 (U = N/(f1*D)); Tables 2/4
// at f2 (U = N/(f2*D)).
#pragma once

#include <vector>

#include "harness/experiment.hpp"

namespace adacheck::harness {

ExperimentSpec table1a();
ExperimentSpec table1b();
ExperimentSpec table2a();
ExperimentSpec table2b();
ExperimentSpec table3a();
ExperimentSpec table3b();
ExperimentSpec table4a();
ExperimentSpec table4b();

/// All eight sub-tables in paper order.
std::vector<ExperimentSpec> all_paper_tables();

}  // namespace adacheck::harness
