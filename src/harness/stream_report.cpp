#include "harness/stream_report.hpp"

#include <chrono>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "harness/json_writer.hpp"

namespace adacheck::harness {

std::vector<SweepCellRef> sweep_cell_refs(
    const std::vector<ExperimentSpec>& specs) {
  std::vector<SweepCellRef> refs;
  for (const auto& spec : specs) {
    spec.validate();
    for (std::size_t r = 0; r < spec.rows.size(); ++r) {
      for (std::size_t s = 0; s < spec.schemes.size(); ++s) {
        SweepCellRef ref;
        ref.experiment_id = spec.id;
        ref.row = r;
        ref.scheme = s;
        ref.utilization = spec.rows[r].utilization;
        ref.lambda = spec.rows[r].lambda;
        ref.scheme_name = spec.schemes[s];
        refs.push_back(std::move(ref));
      }
    }
  }
  return refs;
}

std::vector<SweepCellRef> sweep_cell_refs(
    const std::vector<ExperimentSpec>& specs,
    const std::vector<GraphExperimentSpec>& graphs) {
  auto refs = sweep_cell_refs(specs);
  for (const auto& spec : graphs) {
    spec.validate();
    for (std::size_t r = 0; r < spec.lambdas.size(); ++r) {
      for (std::size_t s = 0; s < spec.schedulers.size(); ++s) {
        SweepCellRef ref;
        ref.kind = SweepCellRef::Kind::kGraph;
        ref.experiment_id = spec.id;
        ref.row = r;
        ref.scheme = s;
        ref.lambda = spec.lambdas[r];
        ref.scheme_name = spec.schedulers[s];
        refs.push_back(std::move(ref));
      }
    }
  }
  return refs;
}

JsonlCellStream::JsonlCellStream(std::ostream& os,
                                 std::vector<SweepCellRef> refs)
    : os_(os), refs_(std::move(refs)) {}

void JsonlCellStream::on_cell_done(std::size_t cell,
                                   const sim::CellResult& result) {
  if (cell >= refs_.size()) {
    // The refs must describe the exact spec list being swept; a
    // desync is a programming error and an incomplete stream would
    // hide it — fail loudly (the runner aborts the sweep).
    throw std::logic_error("JsonlCellStream: cell index " +
                           std::to_string(cell) + " outside the " +
                           std::to_string(refs_.size()) + " known refs");
  }
  std::ostringstream line;
  {
    JsonWriter json(line, JsonStyle::kCompact);
    const SweepCellRef& ref = refs_[cell];
    const bool graph = ref.kind == SweepCellRef::Kind::kGraph;
    json.begin_object();
    json.kv("schema", std::string(graph ? "adacheck-graph-cell-v1"
                                        : "adacheck-cell-v2"));
    json.kv("cell", cell);
    json.kv("experiment", ref.experiment_id);
    json.kv("row", ref.row);
    if (!graph) json.kv("utilization", ref.utilization);
    json.kv("lambda", ref.lambda);
    write_cell_fields(json, ref.scheme_name, result.stats, result.metrics);
    json.end_object();
  }

  // Emit in index order: buffer lines that finished ahead of their
  // predecessors, flush the run that just became contiguous.  The
  // stream is flushed per line so a tail -f (or a crashed sweep's
  // post-mortem) sees every completed cell.
  pending_.emplace(cell, std::move(line).str());
  while (!pending_.empty() && pending_.begin()->first == next_) {
    os_ << pending_.begin()->second << '\n';
    pending_.erase(pending_.begin());
    ++next_;
  }
  os_.flush();
}

namespace {

double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ProgressLine::ProgressLine(std::ostream& os, double min_interval)
    : os_(os), min_interval_(min_interval) {}

void ProgressLine::on_progress(const sim::SweepProgress& progress) {
  const double now = steady_seconds();
  if (!any_) {
    any_ = true;
    start_ = now;
  }
  const bool final = progress.cells_done == progress.cells_total;
  if (!final && last_print_ >= 0.0 && now - last_print_ < min_interval_) {
    return;
  }
  last_print_ = now;
  const double elapsed = now - start_;
  const long long rate =
      elapsed > 0.0
          ? static_cast<long long>(static_cast<double>(progress.runs_done) /
                                   elapsed)
          : 0;
  os_ << '\r' << "cells " << progress.cells_done << '/'
      << progress.cells_total << "  runs " << progress.runs_done << '/'
      << progress.runs_total << "  " << rate << " runs/s";
  if (final) os_ << '\n';
  os_.flush();
}

}  // namespace adacheck::harness
