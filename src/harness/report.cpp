#include "harness/report.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/tables.hpp"

namespace adacheck::harness {

namespace {
using util::fmt_energy;
using util::fmt_fixed;
using util::fmt_prob;
using util::fmt_sci;

bool has_paper(const ExperimentRow& row) { return !row.paper.empty(); }
}  // namespace

std::string render_experiment(const ExperimentResult& result) {
  const auto& spec = result.spec;
  std::vector<std::string> headers = {"U", "lambda"};
  for (const auto& scheme : spec.schemes) {
    headers.push_back(scheme + " P(paper/ours)");
    headers.push_back(scheme + " E(paper/ours)");
  }
  util::TextTable table(headers);
  for (std::size_t r = 0; r < spec.rows.size(); ++r) {
    const auto& row = spec.rows[r];
    std::vector<std::string> cells = {fmt_fixed(row.utilization, 2),
                                      fmt_sci(row.lambda, 1)};
    for (std::size_t s = 0; s < spec.schemes.size(); ++s) {
      const auto& stats = result.cells[r][s];
      const std::string paper_p =
          has_paper(row) ? fmt_prob(row.paper[s].p) : "-";
      const std::string paper_e =
          has_paper(row) ? fmt_energy(row.paper[s].e) : "-";
      cells.push_back(paper_p + " / " + fmt_prob(stats.probability()));
      cells.push_back(paper_e + " / " + fmt_energy(stats.energy()));
    }
    table.add_row(std::move(cells));
  }
  std::ostringstream out;
  out << spec.title << "\n" << table;
  return out.str();
}

std::string render_extended(const ExperimentResult& result) {
  const auto& spec = result.spec;
  util::TextTable table({"U", "lambda", "scheme", "P", "P 95% CI", "E",
                         "E +-95%", "E(all)", "faults", "rollbacks",
                         "hi-cycles", "aborted"});
  for (std::size_t r = 0; r < spec.rows.size(); ++r) {
    const auto& row = spec.rows[r];
    for (std::size_t s = 0; s < spec.schemes.size(); ++s) {
      const auto& st = result.cells[r][s];
      table.add_row(
          {fmt_fixed(row.utilization, 2), fmt_sci(row.lambda, 1),
           spec.schemes[s], fmt_prob(st.probability()),
           "[" + fmt_prob(st.completion.wilson_lo()) + "," +
               fmt_prob(st.completion.wilson_hi()) + "]",
           fmt_energy(st.energy()),
           fmt_energy(st.energy_success.ci95_halfwidth()),
           fmt_energy(st.energy_all.mean()), fmt_fixed(st.faults.mean(), 2),
           fmt_fixed(st.rollbacks.mean(), 2),
           fmt_energy(st.high_speed_cycles.mean()),
           std::to_string(st.aborted_runs)});
    }
    if (r + 1 < spec.rows.size()) table.add_rule();
  }
  std::ostringstream out;
  out << spec.title << " [extended]\n" << table;
  return out.str();
}

void write_csv(const ExperimentResult& result, std::ostream& os) {
  util::CsvWriter csv(os);
  csv.write_row({"table", "utilization", "lambda", "scheme", "paper_p",
                 "paper_e", "p", "p_lo", "p_hi", "e_success", "e_all",
                 "faults_mean", "rollbacks_mean", "high_speed_cycles"});
  const auto& spec = result.spec;
  for (std::size_t r = 0; r < spec.rows.size(); ++r) {
    const auto& row = spec.rows[r];
    for (std::size_t s = 0; s < spec.schemes.size(); ++s) {
      const auto& st = result.cells[r][s];
      const double paper_p = has_paper(row) ? row.paper[s].p : std::nan("");
      const double paper_e = has_paper(row) ? row.paper[s].e : std::nan("");
      csv.write_row({spec.id, fmt_fixed(row.utilization, 4),
                     fmt_sci(row.lambda, 6), spec.schemes[s],
                     fmt_prob(paper_p), fmt_energy(paper_e),
                     fmt_prob(st.probability()),
                     fmt_prob(st.completion.wilson_lo()),
                     fmt_prob(st.completion.wilson_hi()),
                     fmt_energy(st.energy()),
                     fmt_energy(st.energy_all.mean()),
                     fmt_fixed(st.faults.mean(), 3),
                     fmt_fixed(st.rollbacks.mean(), 3),
                     fmt_energy(st.high_speed_cycles.mean())});
    }
  }
}

namespace {

std::size_t scheme_index(const ExperimentSpec& spec, const std::string& name) {
  const auto it = std::find(spec.schemes.begin(), spec.schemes.end(), name);
  return static_cast<std::size_t>(it - spec.schemes.begin());
}

}  // namespace

std::vector<ShapeCheck> shape_checks(const ExperimentResult& result) {
  std::vector<ShapeCheck> checks;
  const auto& spec = result.spec;
  const std::size_t i_ad = scheme_index(spec, "A_D");
  // The proposed scheme is whichever of A_D_S / A_D_C the table uses.
  std::size_t i_new = scheme_index(spec, "A_D_S");
  if (i_new >= spec.schemes.size()) i_new = scheme_index(spec, "A_D_C");
  const std::size_t i_poisson = scheme_index(spec, "Poisson");
  const std::size_t i_kft = scheme_index(spec, "k-f-t");
  if (i_ad >= spec.schemes.size() || i_new >= spec.schemes.size()) {
    return checks;  // not a paper-style comparison table
  }

  // 1. P(new) >= P(A_D) - tol in every cell.
  {
    bool ok = true;
    std::ostringstream desc;
    for (std::size_t r = 0; r < spec.rows.size(); ++r) {
      const double p_new = result.cells[r][i_new].probability();
      const double p_ad = result.cells[r][i_ad].probability();
      if (p_new + 0.02 < p_ad) {
        ok = false;
        desc << " [row " << r << ": " << p_new << " < " << p_ad << "]";
      }
    }
    checks.push_back({"proposed scheme matches or beats A_D's completion "
                      "probability in every cell" + desc.str(),
                      ok});
  }

  // 2. Where the paper reports a gap > 0.2 over a fixed baseline, we
  //    see a gap > 0.1 (same direction, looser margin).
  for (const std::size_t i_base : {i_poisson, i_kft}) {
    if (i_base >= spec.schemes.size()) continue;
    bool ok = true;
    std::ostringstream desc;
    for (std::size_t r = 0; r < spec.rows.size(); ++r) {
      const auto& row = spec.rows[r];
      if (!has_paper(row)) continue;
      const double paper_gap = row.paper[i_new].p - row.paper[i_base].p;
      if (paper_gap <= 0.2) continue;
      const double our_gap = result.cells[r][i_new].probability() -
                             result.cells[r][i_base].probability();
      if (our_gap <= 0.1) {
        ok = false;
        desc << " [row " << r << ": gap " << our_gap << "]";
      }
    }
    checks.push_back(
        {"proposed scheme dominates '" + spec.schemes[i_base] +
             "' wherever the paper reports a >0.2 advantage" + desc.str(),
         ok});
  }

  // 3. Baselines-at-f1 tables: proposed scheme uses no more energy than
  //    A_D (median across cells; both must have successes).
  if (spec.util_level == 0) {
    std::vector<double> ratios;
    for (std::size_t r = 0; r < spec.rows.size(); ++r) {
      const double e_new = result.cells[r][i_new].energy();
      const double e_ad = result.cells[r][i_ad].energy();
      if (std::isnan(e_new) || std::isnan(e_ad) || e_ad <= 0.0) continue;
      ratios.push_back(e_new / e_ad);
    }
    bool ok = false;
    double median = std::nan("");
    if (!ratios.empty()) {
      std::nth_element(ratios.begin(), ratios.begin() + ratios.size() / 2,
                       ratios.end());
      median = ratios[ratios.size() / 2];
      ok = median <= 1.02;
    }
    std::ostringstream desc;
    desc << "proposed scheme's median energy ratio vs A_D <= 1.02 (measured "
         << median << ")";
    checks.push_back({desc.str(), ok});
  }

  return checks;
}

std::string render_shape_checks(const std::vector<ShapeCheck>& checks) {
  std::ostringstream out;
  for (const auto& check : checks) {
    out << (check.passed ? "[PASS] " : "[FAIL] ") << check.description
        << "\n";
  }
  return out.str();
}

}  // namespace adacheck::harness
