#include "harness/json_report.hpp"

#include <cstdint>
#include <sstream>

#include "harness/json_writer.hpp"
#include "model/fault_env.hpp"
#include "util/version.hpp"

namespace adacheck::harness {

void write_cell_fields(JsonWriter& json, const std::string& scheme,
                       const sim::CellStats& stats,
                       const sim::MetricValues& metrics) {
  json.kv("scheme", scheme);
  json.kv("trials", stats.completion.trials());
  json.kv("successes", stats.completion.successes());
  json.kv("p", stats.probability());
  json.kv("p_lo", stats.completion.wilson_lo());
  json.kv("p_hi", stats.completion.wilson_hi());
  json.kv("e", stats.energy());
  json.kv("e_ci95", stats.energy_success.ci95_halfwidth());
  json.kv("e_all", stats.energy_all.mean());
  json.kv("finish_time", stats.finish_time_success.mean());
  json.kv("faults", stats.faults.mean());
  json.kv("rollbacks", stats.rollbacks.mean());
  json.kv("corrections", stats.corrections.mean());
  json.kv("high_speed_cycles", stats.high_speed_cycles.mean());
  json.kv("aborted_runs", stats.aborted_runs);
  json.kv("validation_failures", stats.validation_failures);
  // v4: how many runs the cell actually executed (== trials; explicit
  // so budgeted reports read naturally) and the achieved precisions
  // the stop rule evaluates.  Null (NaN) e_rel_halfwidth means fewer
  // than two successful runs — reported, never silently wrong.
  json.kv("runs_executed", stats.completion.trials());
  json.kv("p_halfwidth", stats.completion.wilson_halfwidth());
  json.kv("e_rel_halfwidth", stats.energy_success.rel_ci95_halfwidth());
  if (!metrics.empty()) {
    json.key("metrics");
    json.begin_object();
    for (const auto& group : metrics.groups) {
      json.key(group.recorder.c_str());
      json.begin_object();
      for (const auto& entry : group.entries) {
        json.kv(entry.key.c_str(), entry.value);
      }
      json.end_object();
    }
    json.end_object();
  }
}

namespace {

/// The fault environment of one experiment, fully expanded so report
/// consumers need no registry lookup.  rate_multiplier is the
/// documented effective-rate approximation: lambda_eff = lambda * it.
void write_environment(JsonWriter& json, const std::string& name) {
  const auto& env = model::find_environment(name);
  json.begin_object();
  json.kv("name", name);
  json.kv("arrival", std::string(model::to_string(env.arrival)));
  json.kv("shape", env.shape);
  json.kv("common_cause_fraction", env.common_cause_fraction);
  json.kv("rate_multiplier", env.rate_multiplier());
  json.key("burst");
  json.begin_object();
  json.kv("enabled", env.burst.enabled);
  if (env.burst.enabled) {
    json.kv("rate_multiplier", env.burst.rate_multiplier);
    json.kv("mean_quiet_dwell", env.burst.mean_quiet_dwell);
    json.kv("mean_burst_dwell", env.burst.mean_burst_dwell);
  }
  json.end_object();
  json.end_object();
}

/// A RunBudget, all four knobs expanded (zeros mean "unset", matching
/// the in-memory defaults).
void write_budget(JsonWriter& json, const sim::RunBudget& budget) {
  json.begin_object();
  json.kv("target_p_halfwidth", budget.target_p_halfwidth);
  json.kv("target_e_rel_halfwidth", budget.target_e_rel_halfwidth);
  json.kv("min_runs", budget.min_runs);
  json.kv("max_runs", budget.max_runs);
  json.end_object();
}

}  // namespace

void write_sweep_json(const SweepResult& sweep, std::ostream& os,
                      const JsonReportOptions& options) {
  JsonWriter json(os);
  json.begin_object();
  json.kv("schema", std::string("adacheck-sweep-v6"));

  // Only result-affecting parameters here — thread count is an
  // execution detail and lives in "perf", keeping the no-perf document
  // byte-identical across thread counts.  "version" is the same
  // code-version string the campaign cache fingerprints, so a report
  // always records which build produced it.
  json.key("config");
  json.begin_object();
  json.kv("version", util::version_string());
  json.kv("runs", sweep.config.runs);
  json.kv("seed", static_cast<std::uint64_t>(sweep.config.seed));
  json.kv("validate", sweep.config.validate);
  if (sweep.config.budget.enabled()) {
    json.key("budget");
    write_budget(json, sweep.config.budget);
  }
  if (sweep.config.metrics && !sweep.config.metrics->empty()) {
    json.key("metrics");
    json.begin_array();
    for (const auto& name : sweep.config.metrics->names()) json.value(name);
    json.end_array();
  }
  json.end_object();

  if (options.include_perf) {
    json.key("perf");
    json.begin_object();
    json.kv("wall_seconds", sweep.perf.wall_seconds);
    json.kv("total_runs", sweep.perf.total_runs);
    json.kv("runs_per_second", sweep.perf.runs_per_second);
    json.kv("threads", sweep.perf.threads);
    json.kv("cells", sweep.perf.cells);
    if (options.baseline != nullptr) {
      const PerfBaseline& baseline = *options.baseline;
      json.key("observer_overhead");
      json.begin_object();
      json.kv("advisory", true);
      json.kv("baseline_path", baseline.path);
      json.kv("baseline_runs_per_second", baseline.runs_per_second);
      json.kv("null_observer_runs_per_second",
              baseline.null_runs_per_second);
      json.kv("null_vs_baseline_ratio",
              baseline.runs_per_second > 0.0
                  ? baseline.null_runs_per_second / baseline.runs_per_second
                  : 0.0);
      json.kv("observer_runs_per_second",
              baseline.observer_runs_per_second);
      const double observer_ratio =
          baseline.null_runs_per_second > 0.0
              ? baseline.observer_runs_per_second /
                    baseline.null_runs_per_second
              : 0.0;
      json.kv("observer_vs_null_ratio", observer_ratio);
      json.kv("within_tolerance",
              observer_ratio >= PerfBaseline::kMinObserverRatio);
      json.end_object();
    }
    if (options.precision != nullptr) {
      const PrecisionBench& bench = *options.precision;
      json.key("time_to_target_precision");
      json.begin_object();
      json.kv("target_p_halfwidth", bench.target_p_halfwidth);
      json.kv("fixed_runs", bench.fixed_runs);
      json.kv("fixed_wall_seconds", bench.fixed_wall_seconds);
      json.kv("fixed_p_halfwidth", bench.fixed_p_halfwidth);
      json.kv("budgeted_runs", bench.budgeted_runs);
      json.kv("budgeted_wall_seconds", bench.budgeted_wall_seconds);
      json.kv("budgeted_p_halfwidth", bench.budgeted_p_halfwidth);
      json.kv("runs_ratio",
              bench.budgeted_runs > 0
                  ? static_cast<double>(bench.fixed_runs) /
                        static_cast<double>(bench.budgeted_runs)
                  : 0.0);
      json.kv("wall_ratio",
              bench.budgeted_wall_seconds > 0.0
                  ? bench.fixed_wall_seconds / bench.budgeted_wall_seconds
                  : 0.0);
      json.end_object();
    }
    if (options.telemetry != nullptr) {
      const TelemetryBench& bench = *options.telemetry;
      json.key("telemetry_overhead");
      json.begin_object();
      json.kv("advisory", true);
      json.kv("disabled_runs_per_second", bench.disabled_runs_per_second);
      json.kv("enabled_runs_per_second", bench.enabled_runs_per_second);
      const double ratio =
          bench.disabled_runs_per_second > 0.0
              ? bench.enabled_runs_per_second /
                    bench.disabled_runs_per_second
              : 0.0;
      json.kv("enabled_vs_disabled_ratio", ratio);
      json.kv("events_recorded", bench.events_recorded);
      json.kv("within_tolerance",
              ratio >= TelemetryBench::kMinTelemetryRatio);
      json.end_object();
    }
    json.end_object();
  }

  json.key("experiments");
  json.begin_array();
  for (const auto& experiment : sweep.experiments) {
    const auto& spec = experiment.spec;
    json.begin_object();
    json.kv("id", spec.id);
    json.kv("title", spec.title);
    json.key("environment");
    write_environment(json, spec.environment);
    if (spec.budget.enabled()) {
      json.key("budget");
      write_budget(json, spec.budget);
    }
    json.key("schemes");
    json.begin_array();
    for (const auto& scheme : spec.schemes) json.value(scheme);
    json.end_array();
    json.key("rows");
    json.begin_array();
    for (std::size_t r = 0; r < spec.rows.size(); ++r) {
      json.begin_object();
      json.kv("utilization", spec.rows[r].utilization);
      json.kv("lambda", spec.rows[r].lambda);
      json.key("cells");
      json.begin_array();
      for (std::size_t s = 0; s < spec.schemes.size(); ++s) {
        // Hand-assembled results may omit the metrics grid entirely.
        static const sim::MetricValues kNoMetrics;
        const auto& metrics = r < experiment.metrics.size() &&
                                      s < experiment.metrics[r].size()
                                  ? experiment.metrics[r][s]
                                  : kNoMetrics;
        json.begin_object();
        write_cell_fields(json, spec.schemes[s], experiment.cells[r][s],
                          metrics);
        json.end_object();
      }
      json.end_array();
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }
  json.end_array();

  // v6: DAG experiments, present only when the sweep ran any — classic
  // sweeps keep their v5 byte layout under the new schema tag.
  if (!sweep.graph_experiments.empty()) {
    json.key("graph_experiments");
    json.begin_array();
    for (const auto& experiment : sweep.graph_experiments) {
      const auto& spec = experiment.spec;
      json.begin_object();
      json.kv("id", spec.id);
      json.kv("title", spec.title);
      json.key("environment");
      write_environment(json, spec.environment);
      json.kv("workers", spec.workers);
      json.kv("instances", spec.instances);
      json.kv("skip_late_jobs", spec.skip_late_jobs);
      if (spec.budget.enabled()) {
        json.key("budget");
        write_budget(json, spec.budget);
      }
      json.key("graph");
      json.begin_object();
      json.kv("period", spec.graph.period);
      json.kv("deadline", spec.graph.end_to_end_deadline());
      json.kv("critical_path_cycles", spec.graph.critical_path_cycles());
      json.key("nodes");
      json.begin_array();
      for (const auto& node : spec.graph.nodes) {
        json.begin_object();
        json.kv("name", node.name);
        json.kv("cycles", node.cycles);
        json.kv("fault_tolerance", node.fault_tolerance);
        json.kv("policy", node.policy);
        json.key("resources");
        json.begin_array();
        for (const std::size_t r : node.resources) {
          json.value(spec.graph.resources[r].name);
        }
        json.end_array();
        json.end_object();
      }
      json.end_array();
      json.key("edges");
      json.begin_array();
      for (const auto& edge : spec.graph.edges) {
        json.begin_object();
        json.kv("from", spec.graph.nodes[edge.from].name);
        json.kv("to", spec.graph.nodes[edge.to].name);
        json.end_object();
      }
      json.end_array();
      json.key("resources");
      json.begin_array();
      for (const auto& resource : spec.graph.resources) {
        json.begin_object();
        json.kv("name", resource.name);
        json.kv("capacity", resource.capacity);
        json.end_object();
      }
      json.end_array();
      json.end_object();
      json.key("schedulers");
      json.begin_array();
      for (const auto& scheduler : spec.schedulers) json.value(scheduler);
      json.end_array();
      json.key("rows");
      json.begin_array();
      for (std::size_t r = 0; r < spec.lambdas.size(); ++r) {
        json.begin_object();
        json.kv("lambda", spec.lambdas[r]);
        json.key("cells");
        json.begin_array();
        for (std::size_t s = 0; s < spec.schedulers.size(); ++s) {
          static const sim::MetricValues kNoMetrics;
          const auto& metrics = r < experiment.metrics.size() &&
                                        s < experiment.metrics[r].size()
                                    ? experiment.metrics[r][s]
                                    : kNoMetrics;
          json.begin_object();
          write_cell_fields(json, spec.schedulers[s], experiment.cells[r][s],
                            metrics);
          json.end_object();
        }
        json.end_array();
        json.end_object();
      }
      json.end_array();
      json.end_object();
    }
    json.end_array();
  }

  json.end_object();
  os << "\n";
}

std::string sweep_json(const SweepResult& sweep,
                       const JsonReportOptions& options) {
  std::ostringstream out;
  write_sweep_json(sweep, out, options);
  return out.str();
}

}  // namespace adacheck::harness
