#include "harness/json_report.hpp"

#include <charconv>
#include <cmath>
#include <concepts>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <vector>

#include "model/fault_env.hpp"

namespace adacheck::harness {

namespace {

/// Minimal streaming JSON encoder: fixed key order, two-space indent,
/// shortest round-trip doubles, non-finite doubles as null.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  void key(const char* name) {
    element_prefix();
    write_string(name);
    os_ << ": ";
    pending_key_ = true;
  }

  void begin_object() {
    element_start();
    os_ << '{';
    first_.push_back(true);
  }
  void end_object() { close('}'); }

  void begin_array() {
    element_start();
    os_ << '[';
    first_.push_back(true);
  }
  void end_array() { close(']'); }

  void value(const std::string& s) {
    element_start();
    write_string(s.c_str());
  }
  void value(double v) {
    element_start();
    if (!std::isfinite(v)) {
      os_ << "null";
      return;
    }
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof buf, v);
    os_.write(buf, res.ptr - buf);
  }
  void value(bool b) { element_start(); os_ << (b ? "true" : "false"); }
  // One template for all integer widths: distinct exact overloads
  // would be ambiguous for std::size_t on platforms where it matches
  // neither uint64_t nor long long exactly.  bool prefers the
  // non-template overload above.
  void value(std::integral auto v) { element_start(); os_ << v; }

  template <class T>
  void kv(const char* name, const T& v) {
    key(name);
    value(v);
  }

 private:
  void element_start() {
    if (pending_key_) {
      pending_key_ = false;
      return;
    }
    element_prefix();
  }
  void element_prefix() {
    if (first_.empty()) return;  // document root
    if (!first_.back()) os_ << ',';
    first_.back() = false;
    newline_indent();
  }
  void newline_indent() {
    os_ << '\n';
    for (std::size_t i = 0; i < first_.size(); ++i) os_ << "  ";
  }
  void close(char bracket) {
    const bool was_empty = first_.back();
    first_.pop_back();
    if (!was_empty) newline_indent();
    os_ << bracket;
  }
  void write_string(const char* s) {
    os_ << '"';
    for (; *s != '\0'; ++s) {
      const char c = *s;
      switch (c) {
        case '"': os_ << "\\\""; break;
        case '\\': os_ << "\\\\"; break;
        case '\n': os_ << "\\n"; break;
        case '\t': os_ << "\\t"; break;
        case '\r': os_ << "\\r"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            os_ << buf;
          } else {
            os_ << c;
          }
      }
    }
    os_ << '"';
  }

  std::ostream& os_;
  std::vector<bool> first_;
  bool pending_key_ = false;
};

void write_cell(JsonWriter& json, const std::string& scheme,
                const sim::CellStats& stats) {
  json.begin_object();
  json.kv("scheme", scheme);
  json.kv("trials", stats.completion.trials());
  json.kv("successes", stats.completion.successes());
  json.kv("p", stats.probability());
  json.kv("p_lo", stats.completion.wilson_lo());
  json.kv("p_hi", stats.completion.wilson_hi());
  json.kv("e", stats.energy());
  json.kv("e_ci95", stats.energy_success.ci95_halfwidth());
  json.kv("e_all", stats.energy_all.mean());
  json.kv("finish_time", stats.finish_time_success.mean());
  json.kv("faults", stats.faults.mean());
  json.kv("rollbacks", stats.rollbacks.mean());
  json.kv("corrections", stats.corrections.mean());
  json.kv("high_speed_cycles", stats.high_speed_cycles.mean());
  json.kv("aborted_runs", stats.aborted_runs);
  json.kv("validation_failures", stats.validation_failures);
  json.end_object();
}

/// The fault environment of one experiment, fully expanded so report
/// consumers need no registry lookup.  rate_multiplier is the
/// documented effective-rate approximation: lambda_eff = lambda * it.
void write_environment(JsonWriter& json, const std::string& name) {
  const auto& env = model::find_environment(name);
  json.begin_object();
  json.kv("name", name);
  json.kv("arrival", std::string(model::to_string(env.arrival)));
  json.kv("shape", env.shape);
  json.kv("common_cause_fraction", env.common_cause_fraction);
  json.kv("rate_multiplier", env.rate_multiplier());
  json.key("burst");
  json.begin_object();
  json.kv("enabled", env.burst.enabled);
  if (env.burst.enabled) {
    json.kv("rate_multiplier", env.burst.rate_multiplier);
    json.kv("mean_quiet_dwell", env.burst.mean_quiet_dwell);
    json.kv("mean_burst_dwell", env.burst.mean_burst_dwell);
  }
  json.end_object();
  json.end_object();
}

}  // namespace

void write_sweep_json(const SweepResult& sweep, std::ostream& os,
                      const JsonReportOptions& options) {
  JsonWriter json(os);
  json.begin_object();
  json.kv("schema", std::string("adacheck-sweep-v2"));

  // Only result-affecting parameters here — thread count is an
  // execution detail and lives in "perf", keeping the no-perf document
  // byte-identical across thread counts.
  json.key("config");
  json.begin_object();
  json.kv("runs", sweep.config.runs);
  json.kv("seed", static_cast<std::uint64_t>(sweep.config.seed));
  json.kv("validate", sweep.config.validate);
  json.end_object();

  if (options.include_perf) {
    json.key("perf");
    json.begin_object();
    json.kv("wall_seconds", sweep.perf.wall_seconds);
    json.kv("total_runs", sweep.perf.total_runs);
    json.kv("runs_per_second", sweep.perf.runs_per_second);
    json.kv("threads", sweep.perf.threads);
    json.kv("cells", sweep.perf.cells);
    json.end_object();
  }

  json.key("experiments");
  json.begin_array();
  for (const auto& experiment : sweep.experiments) {
    const auto& spec = experiment.spec;
    json.begin_object();
    json.kv("id", spec.id);
    json.kv("title", spec.title);
    json.key("environment");
    write_environment(json, spec.environment);
    json.key("schemes");
    json.begin_array();
    for (const auto& scheme : spec.schemes) json.value(scheme);
    json.end_array();
    json.key("rows");
    json.begin_array();
    for (std::size_t r = 0; r < spec.rows.size(); ++r) {
      json.begin_object();
      json.kv("utilization", spec.rows[r].utilization);
      json.kv("lambda", spec.rows[r].lambda);
      json.key("cells");
      json.begin_array();
      for (std::size_t s = 0; s < spec.schemes.size(); ++s) {
        write_cell(json, spec.schemes[s], experiment.cells[r][s]);
      }
      json.end_array();
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }
  json.end_array();
  json.end_object();
  os << "\n";
}

std::string sweep_json(const SweepResult& sweep,
                       const JsonReportOptions& options) {
  std::ostringstream out;
  write_sweep_json(sweep, out, options);
  return out.str();
}

}  // namespace adacheck::harness
