#include "harness/experiment.hpp"

#include <stdexcept>

#include "model/fault_env.hpp"
#include "model/task.hpp"
#include "policy/factory.hpp"
#include "util/rng.hpp"

namespace adacheck::harness {

void ExperimentSpec::validate() const {
  if (id.empty()) throw std::invalid_argument("ExperimentSpec: empty id");
  costs.validate();
  if (deadline <= 0.0)
    throw std::invalid_argument("ExperimentSpec: deadline <= 0");
  if (fault_tolerance < 0)
    throw std::invalid_argument("ExperimentSpec: k < 0");
  if (speed_ratio <= 1.0)
    throw std::invalid_argument("ExperimentSpec: speed_ratio <= 1");
  if (util_level > 1)
    throw std::invalid_argument("ExperimentSpec: util_level must be 0 or 1");
  if (!model::is_known_environment(environment))
    throw std::invalid_argument("ExperimentSpec: unknown environment \"" +
                                environment + "\"");
  budget.validate();
  if (schemes.empty())
    throw std::invalid_argument("ExperimentSpec: no schemes");
  for (const auto& row : rows) {
    if (row.utilization <= 0.0 || row.lambda < 0.0) {
      throw std::invalid_argument("ExperimentSpec: bad row parameters");
    }
    if (!row.paper.empty() && row.paper.size() != schemes.size()) {
      throw std::invalid_argument(
          "ExperimentSpec: paper cells do not match schemes");
    }
  }
}

sim::SimSetup make_setup(const ExperimentSpec& spec,
                         const ExperimentRow& row) {
  auto processor = model::DvsProcessor::two_speed(spec.speed_ratio,
                                                  spec.voltage);
  const double util_freq = processor.level(spec.util_level).frequency;
  sim::SimSetup setup{
      model::task_from_utilization(row.utilization, util_freq, spec.deadline,
                                   spec.fault_tolerance, spec.id),
      spec.costs, std::move(processor), model::FaultModel{row.lambda, false},
      model::find_environment(spec.environment)};
  return setup;
}

std::vector<ExperimentSpec> with_environments(
    const std::vector<ExperimentSpec>& specs,
    const std::vector<std::string>& environments) {
  if (environments.empty()) {
    throw std::invalid_argument("with_environments: no environments");
  }
  std::vector<ExperimentSpec> expanded;
  expanded.reserve(specs.size() * environments.size());
  for (const auto& env : environments) {
    if (!model::is_known_environment(env)) {
      throw std::invalid_argument("with_environments: unknown environment \"" +
                                  env + "\"");
    }
    for (const auto& spec : specs) {
      ExperimentSpec copy = spec;
      copy.environment = env;
      copy.id += "@" + env;
      expanded.push_back(std::move(copy));
    }
  }
  return expanded;
}

std::uint64_t cell_seed(std::uint64_t master, std::size_t row,
                        std::size_t scheme) noexcept {
  return util::derive_seed(master, (row << 8) ^ scheme ^ 0xC311ULL);
}

std::vector<sim::CellJob> experiment_jobs(
    const ExperimentSpec& spec, const sim::MonteCarloConfig& config) {
  spec.validate();
  std::vector<sim::CellJob> jobs;
  jobs.reserve(spec.rows.size() * spec.schemes.size());
  for (std::size_t r = 0; r < spec.rows.size(); ++r) {
    const auto setup = make_setup(spec, spec.rows[r]);
    for (std::size_t s = 0; s < spec.schemes.size(); ++s) {
      sim::MonteCarloConfig cell_config = config;
      cell_config.seed = cell_seed(config.seed, r, s);
      if (spec.budget.enabled()) cell_config.budget = spec.budget;
      jobs.push_back(
          {setup,
           policy::make_policy_factory(spec.schemes[s], spec.util_level),
           cell_config});
    }
  }
  return jobs;
}

ExperimentResult assemble_experiment(
    const ExperimentSpec& spec, const std::vector<sim::CellResult>& results,
    std::size_t offset) {
  ExperimentResult result;
  result.spec = spec;
  result.cells.reserve(spec.rows.size());
  result.metrics.reserve(spec.rows.size());
  const std::size_t width = spec.schemes.size();
  for (std::size_t r = 0; r < spec.rows.size(); ++r) {
    auto& cells = result.cells.emplace_back();
    auto& metrics = result.metrics.emplace_back();
    cells.reserve(width);
    metrics.reserve(width);
    for (std::size_t s = 0; s < width; ++s) {
      const auto& cell = results[offset + r * width + s];
      cells.push_back(cell.stats);
      metrics.push_back(cell.metrics);
    }
  }
  return result;
}

ExperimentResult run_experiment(const ExperimentSpec& spec,
                                const sim::MonteCarloConfig& config,
                                const SweepOptions& options) {
  sim::RunCellsOptions run_options;
  run_options.threads = config.threads;
  run_options.observer = options.observer;
  run_options.cancel = options.cancel;
  const auto results =
      sim::run_cells_ex(experiment_jobs(spec, config), run_options);
  return assemble_experiment(spec, results);
}

}  // namespace adacheck::harness
