#include "harness/experiment.hpp"

#include <stdexcept>

#include "model/task.hpp"
#include "policy/factory.hpp"
#include "util/rng.hpp"

namespace adacheck::harness {

void ExperimentSpec::validate() const {
  if (id.empty()) throw std::invalid_argument("ExperimentSpec: empty id");
  costs.validate();
  if (deadline <= 0.0)
    throw std::invalid_argument("ExperimentSpec: deadline <= 0");
  if (fault_tolerance < 0)
    throw std::invalid_argument("ExperimentSpec: k < 0");
  if (speed_ratio <= 1.0)
    throw std::invalid_argument("ExperimentSpec: speed_ratio <= 1");
  if (util_level > 1)
    throw std::invalid_argument("ExperimentSpec: util_level must be 0 or 1");
  if (schemes.empty())
    throw std::invalid_argument("ExperimentSpec: no schemes");
  for (const auto& row : rows) {
    if (row.utilization <= 0.0 || row.lambda < 0.0) {
      throw std::invalid_argument("ExperimentSpec: bad row parameters");
    }
    if (!row.paper.empty() && row.paper.size() != schemes.size()) {
      throw std::invalid_argument(
          "ExperimentSpec: paper cells do not match schemes");
    }
  }
}

sim::SimSetup make_setup(const ExperimentSpec& spec,
                         const ExperimentRow& row) {
  auto processor = model::DvsProcessor::two_speed(spec.speed_ratio,
                                                  spec.voltage);
  const double util_freq = processor.level(spec.util_level).frequency;
  sim::SimSetup setup{
      model::task_from_utilization(row.utilization, util_freq, spec.deadline,
                                   spec.fault_tolerance, spec.id),
      spec.costs, std::move(processor), model::FaultModel{row.lambda, false}};
  return setup;
}

ExperimentResult run_experiment(const ExperimentSpec& spec,
                                const sim::MonteCarloConfig& config) {
  spec.validate();
  ExperimentResult result;
  result.spec = spec;
  result.cells.reserve(spec.rows.size());

  for (std::size_t r = 0; r < spec.rows.size(); ++r) {
    const auto setup = make_setup(spec, spec.rows[r]);
    std::vector<sim::CellStats> row_cells;
    row_cells.reserve(spec.schemes.size());
    for (std::size_t s = 0; s < spec.schemes.size(); ++s) {
      // Decorrelate cells while keeping every cell reproducible.
      sim::MonteCarloConfig cell_config = config;
      cell_config.seed = util::derive_seed(
          config.seed, (r << 8) ^ s ^ 0xC311ULL);
      row_cells.push_back(sim::run_cell(
          setup, policy::make_policy_factory(spec.schemes[s], spec.util_level),
          cell_config));
    }
    result.cells.push_back(std::move(row_cells));
  }
  return result;
}

}  // namespace adacheck::harness
