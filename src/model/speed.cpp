#include "model/speed.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace adacheck::model {

double VoltageLaw::voltage_for(double frequency) const {
  if (frequency <= 0.0)
    throw std::invalid_argument("VoltageLaw: frequency must be > 0");
  if (kappa <= 0.0) throw std::invalid_argument("VoltageLaw: kappa must be > 0");
  return std::sqrt(kappa * frequency);
}

DvsProcessor::DvsProcessor(std::vector<SpeedLevel> levels)
    : levels_(std::move(levels)) {
  if (levels_.empty())
    throw std::invalid_argument("DvsProcessor: at least one speed level");
  std::sort(levels_.begin(), levels_.end(),
            [](const SpeedLevel& a, const SpeedLevel& b) {
              return a.frequency < b.frequency;
            });
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    if (levels_[i].frequency <= 0.0 || levels_[i].voltage <= 0.0) {
      throw std::invalid_argument("DvsProcessor: levels must be positive");
    }
    if (i > 0 && levels_[i].frequency == levels_[i - 1].frequency) {
      throw std::invalid_argument("DvsProcessor: duplicate frequency");
    }
  }
}

DvsProcessor DvsProcessor::two_speed(double ratio, VoltageLaw law) {
  if (ratio <= 1.0)
    throw std::invalid_argument("two_speed: ratio must be > 1");
  return DvsProcessor({SpeedLevel{1.0, law.voltage_for(1.0)},
                       SpeedLevel{ratio, law.voltage_for(ratio)}});
}

const SpeedLevel& DvsProcessor::level(std::size_t i) const {
  if (i >= levels_.size()) throw std::out_of_range("DvsProcessor::level");
  return levels_[i];
}

const SpeedLevel& DvsProcessor::at_least(double frequency) const noexcept {
  for (const auto& lvl : levels_) {
    if (lvl.frequency >= frequency) return lvl;
  }
  return levels_.back();
}

}  // namespace adacheck::model
