// Checkpoint taxonomy and cost model.
//
// Three checkpoint kinds (paper §1):
//   SCP  — store-checkpoint: both processors store state, no comparison.
//   CCP  — compare-checkpoint: states compared, nothing stored.
//   CSCP — compare-and-store: comparison followed (on agreement) by a
//          store; this is the "full" checkpoint all schemes place at
//          the outer interval boundaries.
//
// Costs are cycle counts (t_s store, t_cp compare, t_r rollback); at
// speed f an operation of c cycles takes c/f time.  The paper's lumped
// per-checkpoint cost is c = t_s + t_cp (22 in the experiments).
#pragma once

#include <string>

namespace adacheck::model {

enum class CheckpointKind { kStore, kCompare, kCompareStore };

/// Human-readable name ("SCP", "CCP", "CSCP").
const char* to_string(CheckpointKind kind) noexcept;

struct CheckpointCosts {
  double store = 2.0;     ///< t_s, cycles to store both processors' states.
  double compare = 20.0;  ///< t_cp, cycles to compare the two states.
  double rollback = 0.0;  ///< t_r, cycles to restore a consistent state.

  /// Lumped cost of a full (compare-and-store) checkpoint: c = t_s + t_cp.
  double cscp() const noexcept { return store + compare; }

  /// Cycle cost of one checkpoint of the given kind, assuming the
  /// comparison succeeds (a failed CSCP comparison skips the store; the
  /// simulator charges that case explicitly).
  double cost(CheckpointKind kind) const noexcept;

  bool valid() const noexcept {
    return store >= 0.0 && compare >= 0.0 && rollback >= 0.0 &&
           (store + compare) > 0.0;
  }
  void validate() const;

  /// The paper's SCP-flavor experiment costs (comparison dominates).
  static CheckpointCosts paper_scp_flavor() noexcept { return {2.0, 20.0, 0.0}; }
  /// The paper's CCP-flavor experiment costs (store dominates).
  static CheckpointCosts paper_ccp_flavor() noexcept { return {20.0, 2.0, 0.0}; }
};

}  // namespace adacheck::model
