// Real-time task model.
//
// A task is characterized the way the paper does it: a worst-case
// cycle count N measured at the normalized minimum processor speed
// (f1 = 1, so one cycle == one time unit at f1), a relative deadline D
// in time units, a period T (unused by the single-job analyses but kept
// for completeness / the examples), and the number of faults k the
// schedule must tolerate.
#pragma once

#include <string>

namespace adacheck::model {

struct TaskSpec {
  double cycles = 0.0;       ///< N: worst-case computation cycles, fault-free.
  double deadline = 0.0;     ///< D: relative deadline (time at f1 = 1).
  double period = 0.0;       ///< T: period; 0 means aperiodic / single job.
  int fault_tolerance = 0;   ///< k: number of faults that must be tolerated.
  std::string name = "task";

  /// Utilization N / (f * D) at a given speed, the quantity the paper
  /// calls U.  f must be > 0.
  double utilization(double speed) const;

  /// True when the parameters are physically meaningful (positive N and
  /// D, non-negative k, period either 0 or >= deadline-compatible).
  bool valid() const noexcept;

  /// Throws std::invalid_argument with a description if !valid().
  void validate() const;
};

/// Builds a TaskSpec from a target utilization: N = U * f * D.  This is
/// how the paper parameterizes its tables ("U = N/(f1 D)").
TaskSpec task_from_utilization(double utilization, double speed,
                               double deadline, int fault_tolerance,
                               std::string name = "task");

}  // namespace adacheck::model
