// Fault-environment specification and registry.
//
// The paper injects faults as one homogeneous Poisson process; a
// FaultEnvironment generalizes the *shape* of that process while
// keeping the FaultModel's rate lambda as the quiet-state arrival
// rate.  Three orthogonal axes:
//
//  * Inter-arrival distribution — exponential (the paper), Weibull
//    (aging / infant mortality), log-normal (heavy tails), gamma
//    (more regular than Poisson).  Non-exponential distributions are
//    renewal processes scaled so the mean inter-arrival time stays
//    1/lambda: the long-run arrival rate is identical across kinds,
//    only the clustering changes.
//  * Burst modulation — a two-state Markov-modulated Poisson process
//    (quiet/burst) for radiation events: exponential dwell in each
//    state, burst-state rate = rate_multiplier * lambda.  Burst mode
//    requires exponential arrivals (the modulation is what shapes the
//    process).
//  * Common cause — a fraction of arrivals strikes ALL replicas at
//    once (correlated upsets) instead of one replica uniformly.
//
// The exact renewal/interval results of the analytic layer hold only
// for the plain exponential environment; for everything else the
// documented approximation is the long-run *effective rate*
// lambda_eff = lambda * rate_multiplier() (see README and
// tests/fault_env_test.cpp for measured accuracy).
#pragma once

#include <string>
#include <vector>

namespace adacheck::model {

/// Inter-arrival distribution family of the fault process.
enum class ArrivalKind {
  kExponential,  ///< the paper's homogeneous Poisson process
  kWeibull,      ///< shape < 1: infant mortality; > 1: aging
  kLogNormal,    ///< heavy-tailed gaps (shape = sigma of log gap)
  kGamma,        ///< shape > 1: more regular than Poisson
};

const char* to_string(ArrivalKind kind) noexcept;

/// Two-state Markov-modulated burst process (quiet <-> burst).
struct BurstSpec {
  bool enabled = false;
  /// Burst-state arrival rate as a multiple of the quiet rate (> 1).
  double rate_multiplier = 1.0;
  /// Expected dwell time in the quiet state (> 0 when enabled).
  double mean_quiet_dwell = 0.0;
  /// Expected dwell time in the burst state (> 0 when enabled).
  double mean_burst_dwell = 0.0;

  /// Fraction of time spent in the burst state at stationarity.
  double burst_duty() const noexcept {
    return mean_burst_dwell / (mean_quiet_dwell + mean_burst_dwell);
  }
};

/// Describes how faults arrive; composes with FaultModel (which keeps
/// the quiet-state rate lambda and the replica count).
struct FaultEnvironment {
  ArrivalKind arrival = ArrivalKind::kExponential;
  /// Shape parameter of the inter-arrival distribution: Weibull shape,
  /// log-normal sigma, gamma shape.  Ignored for exponential.
  double shape = 1.0;
  BurstSpec burst;
  /// Probability in [0, 1] that an arrival strikes all replicas at
  /// once (reported as processor = kAllReplicas) instead of one
  /// replica uniformly.
  double common_cause_fraction = 0.0;

  /// True for the paper's environment: exponential arrivals, no burst
  /// modulation, no common cause.  This is the configuration whose
  /// fault stream is bit-identical to the pre-environment simulator.
  bool plain_exponential() const noexcept;

  bool valid() const noexcept;
  void validate() const;  ///< throws std::invalid_argument if !valid()

  /// Long-run arrival-rate multiplier relative to the quiet-state
  /// lambda: 1 for renewal environments (the mean gap is pinned to
  /// 1/lambda), (T_q + mult * T_b) / (T_q + T_b) under bursts.  The
  /// analytic layer's effective-rate approximation is
  /// lambda_eff = lambda * rate_multiplier().
  double rate_multiplier() const noexcept;

  /// Named constructors.
  static FaultEnvironment exponential();
  static FaultEnvironment weibull(double shape);
  static FaultEnvironment log_normal(double sigma);
  static FaultEnvironment gamma_arrivals(double shape);
  static FaultEnvironment bursty(double rate_multiplier, double quiet_dwell,
                                 double burst_dwell);
  /// Adds a common-cause fraction to any environment (chainable).
  FaultEnvironment with_common_cause(double fraction) const;
};

/// Registry of named environments usable from experiment specs, CLI
/// flags, and JSON reports.  Names are stable identifiers:
///   "poisson"            the paper's homogeneous Poisson process
///   "weibull-infant"     Weibull shape 0.7 (clustered early arrivals)
///   "weibull-aging"      Weibull shape 2.0 (hazard grows with the gap)
///   "lognormal-heavy"    log-normal sigma 1.5 (heavy-tailed gaps)
///   "gamma-regular"      gamma shape 4 (sub-Poisson variability)
///   "bursty-orbit"       12x bursts, 2300/250 dwell (SAA crossings)
///   "bursty-storm"       40x bursts, 4000/120 dwell (solar storms)
///   "common-cause"       Poisson with 25% all-replica strikes
///   "bursty-correlated"  bursty-orbit with 30% all-replica strikes
const FaultEnvironment& find_environment(const std::string& name);
bool is_known_environment(const std::string& name) noexcept;
std::vector<std::string> known_environments();

}  // namespace adacheck::model
