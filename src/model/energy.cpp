#include "model/energy.hpp"

#include <algorithm>
#include <stdexcept>

namespace adacheck::model {

void EnergyMeter::charge(const SpeedLevel& level, double cycles) {
  if (cycles < 0.0) throw std::invalid_argument("EnergyMeter: negative cycles");
  total_ += level.energy(cycles);
  total_cycles_ += cycles;
  for (std::size_t i = 0; i < slot_count_; ++i) {
    if (slots_[i].frequency == level.frequency) {
      slots_[i].cycles += cycles;
      return;
    }
  }
  if (slot_count_ < kInlineLevels) {
    slots_[slot_count_++] = {level.frequency, cycles};
    return;
  }
  for (auto& entry : spill_) {
    if (entry.frequency == level.frequency) {
      entry.cycles += cycles;
      return;
    }
  }
  spill_.push_back({level.frequency, cycles});
}

double EnergyMeter::cycles_at(double frequency) const noexcept {
  for (std::size_t i = 0; i < slot_count_; ++i) {
    if (slots_[i].frequency == frequency) return slots_[i].cycles;
  }
  for (const auto& entry : spill_) {
    if (entry.frequency == frequency) return entry.cycles;
  }
  return 0.0;
}

double EnergyMeter::cycles_above(double frequency) const noexcept {
  double sum = 0.0;
  for (std::size_t i = 0; i < slot_count_; ++i) {
    if (slots_[i].frequency > frequency) sum += slots_[i].cycles;
  }
  for (const auto& entry : spill_) {
    if (entry.frequency > frequency) sum += entry.cycles;
  }
  return sum;
}

std::vector<std::pair<double, double>> EnergyMeter::breakdown() const {
  std::vector<std::pair<double, double>> out;
  out.reserve(slot_count_ + spill_.size());
  for (std::size_t i = 0; i < slot_count_; ++i) {
    out.emplace_back(slots_[i].frequency, slots_[i].cycles);
  }
  for (const auto& entry : spill_) {
    out.emplace_back(entry.frequency, entry.cycles);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void EnergyMeter::reset() noexcept {
  total_ = 0.0;
  total_cycles_ = 0.0;
  slot_count_ = 0;
  spill_.clear();
}

}  // namespace adacheck::model
