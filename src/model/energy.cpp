#include "model/energy.hpp"

#include <stdexcept>

namespace adacheck::model {

void EnergyMeter::charge(const SpeedLevel& level, double cycles) {
  if (cycles < 0.0) throw std::invalid_argument("EnergyMeter: negative cycles");
  total_ += level.energy(cycles);
  total_cycles_ += cycles;
  cycles_by_freq_[level.frequency] += cycles;
}

double EnergyMeter::cycles_at(double frequency) const noexcept {
  const auto it = cycles_by_freq_.find(frequency);
  return it == cycles_by_freq_.end() ? 0.0 : it->second;
}

void EnergyMeter::reset() noexcept {
  total_ = 0.0;
  total_cycles_ = 0.0;
  cycles_by_freq_.clear();
}

}  // namespace adacheck::model
