#include "model/checkpoint.hpp"

#include <stdexcept>

namespace adacheck::model {

const char* to_string(CheckpointKind kind) noexcept {
  switch (kind) {
    case CheckpointKind::kStore: return "SCP";
    case CheckpointKind::kCompare: return "CCP";
    case CheckpointKind::kCompareStore: return "CSCP";
  }
  return "?";
}

double CheckpointCosts::cost(CheckpointKind kind) const noexcept {
  switch (kind) {
    case CheckpointKind::kStore: return store;
    case CheckpointKind::kCompare: return compare;
    case CheckpointKind::kCompareStore: return store + compare;
  }
  return 0.0;
}

void CheckpointCosts::validate() const {
  if (!valid()) {
    throw std::invalid_argument(
        "CheckpointCosts: costs must be non-negative with t_s + t_cp > 0");
  }
}

}  // namespace adacheck::model
