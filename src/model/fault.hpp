// Transient-fault model for the replica group.
//
// In the paper, faults arrive to the duplex *system* as one Poisson
// process of rate lambda (per time unit); each fault strikes one of
// the two processors uniformly.  This is the paper's "faults are
// injected into the system using a Poisson process with parameter
// lambda", and it is the only reading under which the paper's
// baseline completion probabilities reproduce (DESIGN.md §3); the
// same lambda feeds the renewal equations and interval rules, keeping
// analysis and injection consistent.  The fault-environment subsystem
// (model/fault_env.hpp) generalizes the arrival process — Weibull /
// log-normal / gamma renewal gaps, Markov-modulated bursts, and
// common-cause strikes hitting every replica — with Poisson remaining
// the bit-identical default.  Faults corrupt processor state; they
// are latent until a comparison (CCP or CSCP) observes disagreement.
// By default faults strike only during computation segments, matching
// the analytic model; `faults_during_overhead` extends exposure to
// checkpoint operations for ablation.
//
// FaultTrace supports record/replay so a stochastic run can be rerun
// deterministically (tests, debugging, the satellite example).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "util/rng.hpp"

namespace adacheck::model {

struct FaultEnvironment;  // model/fault_env.hpp
enum class ArrivalKind;   // model/fault_env.hpp

/// Widest replica group a fault mask can express (engine masks are
/// 32-bit; replica indices recorded in traces must fit below this).
inline constexpr int kMaxProcessors = 32;

/// Sentinel processor index meaning "all replicas struck at once"
/// (common-cause strikes; accepted by FaultTrace and the engine).
inline constexpr int kAllReplicas = -1;

struct FaultModel {
  double rate = 0.0;  ///< lambda: system-level fault rate per time unit.
  bool faults_during_overhead = false;
  /// Number of replicated processors sharing the arrival process: 2 for
  /// the paper's DMR, 3 for the TMR extension, any N >= 2 for the
  /// N-modular generalization (each arrival strikes one processor
  /// uniformly, or all at once under a common-cause environment).
  int processors = 2;

  bool valid() const noexcept {
    return rate >= 0.0 && processors >= 2 && processors <= kMaxProcessors;
  }
  /// Combined arrival rate seen by the replica group (== rate).
  double pair_rate() const noexcept { return rate; }
};

/// A recorded fault: which processor and when (absolute sim time).
struct FaultEvent {
  double time = 0.0;
  /// Replica index (0..processors-1), or kAllReplicas (-1) for a
  /// common-cause strike hitting every replica at once.
  int processor = 0;
};

/// Sorted-by-time fault series, recordable and replayable.
class FaultTrace {
 public:
  FaultTrace() = default;
  explicit FaultTrace(std::vector<FaultEvent> events);

  void record(double time, int processor);
  const std::vector<FaultEvent>& events() const noexcept { return events_; }
  std::size_t size() const noexcept { return events_.size(); }
  bool empty() const noexcept { return events_.empty(); }

  /// Number of faults in the half-open window [t0, t1).
  std::size_t count_in(double t0, double t1) const;

 private:
  std::vector<FaultEvent> events_;
};

/// Source of "time until the next fault on either processor" samples.
/// The stochastic implementation draws exponentials; the replay
/// implementation walks a FaultTrace.  `exposure` elapses only while
/// the pair is vulnerable (the engine controls what counts).
class FaultSource {
 public:
  virtual ~FaultSource() = default;
  /// Exposure time from `from_exposure` until the next fault on either
  /// processor; +infinity if none.  Also reports which processor.
  virtual double next_fault_after(double from_exposure, int& processor) = 0;
};

/// Memoryless stochastic source at the pair rate 2*lambda.
class PoissonFaultSource final : public FaultSource {
 public:
  PoissonFaultSource(const FaultModel& model, util::Xoshiro256& rng);
  double next_fault_after(double from_exposure, int& processor) override;

 private:
  double pair_rate_;
  int processors_;
  util::Xoshiro256& rng_;
  double next_time_;
  int next_proc_;
  void advance();
};

/// Renewal-process stochastic source: i.i.d. inter-arrival gaps drawn
/// from the environment's distribution, scaled so the mean gap is
/// 1/lambda (the long-run rate matches the Poisson source; only the
/// clustering differs).  Honors the environment's common-cause
/// fraction by reporting kAllReplicas for correlated strikes.
class RenewalFaultSource final : public FaultSource {
 public:
  RenewalFaultSource(const FaultModel& model, const FaultEnvironment& env,
                     util::Xoshiro256& rng);
  double next_fault_after(double from_exposure, int& processor) override;

 private:
  ArrivalKind kind_;
  double shape_ = 1.0;
  double scale_ = 0.0;  ///< Weibull/gamma scale or log-normal mu
  double common_cause_ = 0.0;
  int processors_;
  util::Xoshiro256& rng_;
  double next_time_;
  int next_proc_;
  double draw_gap();
  int draw_processor();
  void advance();
};

/// Two-state Markov-modulated Poisson source (quiet/burst) on the
/// exposure clock: exponential dwell in each state, arrival rate
/// lambda in quiet and rate_multiplier * lambda in burst.  Runs start
/// in the quiet state.  Also honors the common-cause fraction.
class MmppFaultSource final : public FaultSource {
 public:
  MmppFaultSource(const FaultModel& model, const FaultEnvironment& env,
                  util::Xoshiro256& rng);
  double next_fault_after(double from_exposure, int& processor) override;

 private:
  double quiet_rate_;
  double burst_rate_;
  double mean_quiet_dwell_;
  double mean_burst_dwell_;
  double common_cause_ = 0.0;
  int processors_;
  util::Xoshiro256& rng_;
  bool in_burst_ = false;
  double state_end_;   ///< exposure time at which the state flips
  double cursor_;      ///< arrival-sampling position on the exposure clock
  double next_time_;
  int next_proc_;
  int draw_processor();
  void advance();
};

/// Replays a pre-recorded trace (times interpreted as exposure time).
class ReplayFaultSource final : public FaultSource {
 public:
  explicit ReplayFaultSource(const FaultTrace& trace);
  double next_fault_after(double from_exposure, int& processor) override;

 private:
  const FaultTrace& trace_;
  std::size_t cursor_ = 0;
};

/// Builds the stochastic source matching the environment: the plain
/// exponential environment yields a PoissonFaultSource consuming the
/// exact RNG stream of the pre-environment simulator (bit-identical
/// runs); bursty environments yield MmppFaultSource; everything else
/// RenewalFaultSource.
std::unique_ptr<FaultSource> make_fault_source(const FaultModel& model,
                                               const FaultEnvironment& env,
                                               util::Xoshiro256& rng);

}  // namespace adacheck::model
