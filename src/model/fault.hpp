// Transient-fault model for the DMR pair.
//
// Faults arrive to the duplex *system* as one Poisson process of rate
// lambda (per time unit); each fault strikes one of the two processors
// uniformly.  This is the paper's "faults are injected into the system
// using a Poisson process with parameter lambda", and it is the only
// reading under which the paper's baseline completion probabilities
// reproduce (DESIGN.md §3); the same lambda feeds the renewal
// equations and interval rules, keeping analysis and injection
// consistent.  Faults corrupt processor state; they are latent until a
// comparison (CCP or CSCP) observes disagreement.  By default faults
// strike only during computation segments, matching the analytic
// model; `faults_during_overhead` extends exposure to checkpoint
// operations for ablation.
//
// FaultTrace supports record/replay so a stochastic run can be rerun
// deterministically (tests, debugging, the satellite example).
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace adacheck::model {

struct FaultModel {
  double rate = 0.0;  ///< lambda: system-level fault rate per time unit.
  bool faults_during_overhead = false;
  /// Number of replicated processors sharing the arrival process: 2 for
  /// the paper's DMR, 3 for the TMR extension (each arrival strikes one
  /// processor uniformly).
  int processors = 2;

  bool valid() const noexcept {
    return rate >= 0.0 && (processors == 2 || processors == 3);
  }
  /// Combined arrival rate seen by the replica group (== rate).
  double pair_rate() const noexcept { return rate; }
};

/// A recorded fault: which processor and when (absolute sim time).
struct FaultEvent {
  double time = 0.0;
  int processor = 0;  ///< replica index (0..processors-1).
};

/// Sorted-by-time fault series, recordable and replayable.
class FaultTrace {
 public:
  FaultTrace() = default;
  explicit FaultTrace(std::vector<FaultEvent> events);

  void record(double time, int processor);
  const std::vector<FaultEvent>& events() const noexcept { return events_; }
  std::size_t size() const noexcept { return events_.size(); }
  bool empty() const noexcept { return events_.empty(); }

  /// Number of faults in the half-open window [t0, t1).
  std::size_t count_in(double t0, double t1) const;

 private:
  std::vector<FaultEvent> events_;
};

/// Source of "time until the next fault on either processor" samples.
/// The stochastic implementation draws exponentials; the replay
/// implementation walks a FaultTrace.  `exposure` elapses only while
/// the pair is vulnerable (the engine controls what counts).
class FaultSource {
 public:
  virtual ~FaultSource() = default;
  /// Exposure time from `from_exposure` until the next fault on either
  /// processor; +infinity if none.  Also reports which processor.
  virtual double next_fault_after(double from_exposure, int& processor) = 0;
};

/// Memoryless stochastic source at the pair rate 2*lambda.
class PoissonFaultSource final : public FaultSource {
 public:
  PoissonFaultSource(const FaultModel& model, util::Xoshiro256& rng);
  double next_fault_after(double from_exposure, int& processor) override;

 private:
  double pair_rate_;
  int processors_;
  util::Xoshiro256& rng_;
  double next_time_;
  int next_proc_;
  void advance();
};

/// Replays a pre-recorded trace (times interpreted as exposure time).
class ReplayFaultSource final : public FaultSource {
 public:
  explicit ReplayFaultSource(const FaultTrace& trace);
  double next_fault_after(double from_exposure, int& processor) override;

 private:
  const FaultTrace& trace_;
  std::size_t cursor_ = 0;
};

}  // namespace adacheck::model
