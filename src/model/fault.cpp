#include "model/fault.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "model/fault_env.hpp"

namespace adacheck::model {

FaultTrace::FaultTrace(std::vector<FaultEvent> events)
    : events_(std::move(events)) {
  if (!std::is_sorted(events_.begin(), events_.end(),
                      [](const FaultEvent& a, const FaultEvent& b) {
                        return a.time < b.time;
                      })) {
    throw std::invalid_argument("FaultTrace: events must be time-sorted");
  }
}

void FaultTrace::record(double time, int processor) {
  if (!events_.empty() && time < events_.back().time) {
    throw std::invalid_argument("FaultTrace: out-of-order record");
  }
  if (processor < kAllReplicas || processor >= kMaxProcessors) {
    throw std::invalid_argument(
        "FaultTrace: processor must be a replica index below 32, or -1 "
        "for a common-cause strike");
  }
  events_.push_back({time, processor});
}

std::size_t FaultTrace::count_in(double t0, double t1) const {
  const auto lo = std::lower_bound(
      events_.begin(), events_.end(), t0,
      [](const FaultEvent& e, double t) { return e.time < t; });
  const auto hi = std::lower_bound(
      lo, events_.end(), t1,
      [](const FaultEvent& e, double t) { return e.time < t; });
  return static_cast<std::size_t>(hi - lo);
}

PoissonFaultSource::PoissonFaultSource(const FaultModel& model,
                                       util::Xoshiro256& rng)
    : pair_rate_(model.pair_rate()), processors_(model.processors),
      rng_(rng), next_time_(0.0), next_proc_(0) {
  if (!model.valid()) throw std::invalid_argument("FaultModel: invalid");
  next_time_ = rng_.exponential(pair_rate_);
  next_proc_ = static_cast<int>(
      rng_.below(static_cast<std::uint64_t>(processors_)));
}

void PoissonFaultSource::advance() {
  next_time_ += rng_.exponential(pair_rate_);
  next_proc_ = static_cast<int>(
      rng_.below(static_cast<std::uint64_t>(processors_)));
}

double PoissonFaultSource::next_fault_after(double from_exposure,
                                            int& processor) {
  // The process is memoryless, so we only ever move forward; the engine
  // queries with non-decreasing exposure except after rollbacks, where
  // re-executed work is *new* exposure (faults can strike again), which
  // the engine models by continuing to accumulate exposure time.
  while (next_time_ < from_exposure) advance();
  processor = next_proc_;
  return next_time_;
}

namespace {

/// Common-cause coin flip, else a uniform replica index — the shared
/// strike-assignment rule of every stochastic environment source.
int draw_struck_processor(util::Xoshiro256& rng, double common_cause,
                          int processors) {
  if (common_cause > 0.0 && rng.uniform01() < common_cause) {
    return kAllReplicas;
  }
  return static_cast<int>(rng.below(static_cast<std::uint64_t>(processors)));
}

}  // namespace

RenewalFaultSource::RenewalFaultSource(const FaultModel& model,
                                       const FaultEnvironment& env,
                                       util::Xoshiro256& rng)
    : kind_(env.arrival), shape_(env.shape),
      common_cause_(env.common_cause_fraction),
      processors_(model.processors), rng_(rng), next_time_(0.0),
      next_proc_(0) {
  if (!model.valid()) throw std::invalid_argument("FaultModel: invalid");
  env.validate();
  if (env.burst.enabled) {
    throw std::invalid_argument(
        "RenewalFaultSource: bursty environments use MmppFaultSource");
  }
  // Pin the mean inter-arrival gap to 1/rate so every distribution
  // family injects faults at the same long-run rate as the Poisson
  // source; a rate of 0 disables arrivals entirely.
  const double rate = model.pair_rate();
  const double mean_gap = rate > 0.0 ? 1.0 / rate : 0.0;
  switch (env.arrival) {
    case ArrivalKind::kExponential:
      scale_ = mean_gap;
      break;
    case ArrivalKind::kWeibull:
      // mean = scale * Gamma(1 + 1/k)
      scale_ = mean_gap / std::tgamma(1.0 + 1.0 / shape_);
      break;
    case ArrivalKind::kLogNormal:
      // mean = exp(mu + sigma^2/2); scale_ stores mu.
      scale_ = rate > 0.0 ? -std::log(rate) - 0.5 * shape_ * shape_ : 0.0;
      break;
    case ArrivalKind::kGamma:
      // mean = shape * scale
      scale_ = mean_gap / shape_;
      break;
  }
  if (rate > 0.0) {
    next_time_ = draw_gap();
    next_proc_ = draw_processor();
  } else {
    next_time_ = std::numeric_limits<double>::infinity();
  }
}

double RenewalFaultSource::draw_gap() {
  switch (kind_) {
    case ArrivalKind::kExponential:
      return scale_ > 0.0 ? rng_.exponential(1.0 / scale_)
                          : std::numeric_limits<double>::infinity();
    case ArrivalKind::kWeibull:
      return rng_.weibull(shape_, scale_);
    case ArrivalKind::kLogNormal:
      return rng_.lognormal(scale_, shape_);
    case ArrivalKind::kGamma:
      return rng_.gamma(shape_, scale_);
  }
  return std::numeric_limits<double>::infinity();
}

int RenewalFaultSource::draw_processor() {
  return draw_struck_processor(rng_, common_cause_, processors_);
}

void RenewalFaultSource::advance() {
  next_time_ += draw_gap();
  next_proc_ = draw_processor();
}

double RenewalFaultSource::next_fault_after(double from_exposure,
                                            int& processor) {
  // Unlike the Poisson source this process is NOT memoryless, but the
  // engine only ever queries forward on the exposure clock (rollback
  // re-execution is new exposure), so walking the renewal sequence is
  // exact.
  while (next_time_ < from_exposure) advance();
  processor = next_proc_;
  return next_time_;
}

MmppFaultSource::MmppFaultSource(const FaultModel& model,
                                 const FaultEnvironment& env,
                                 util::Xoshiro256& rng)
    : quiet_rate_(model.pair_rate()),
      burst_rate_(model.pair_rate() * env.burst.rate_multiplier),
      mean_quiet_dwell_(env.burst.mean_quiet_dwell),
      mean_burst_dwell_(env.burst.mean_burst_dwell),
      common_cause_(env.common_cause_fraction),
      processors_(model.processors), rng_(rng), cursor_(0.0),
      next_time_(0.0), next_proc_(0) {
  if (!model.valid()) throw std::invalid_argument("FaultModel: invalid");
  env.validate();
  if (!env.burst.enabled) {
    throw std::invalid_argument(
        "MmppFaultSource: environment has no burst process");
  }
  if (quiet_rate_ <= 0.0) {
    // No arrivals in either state; skip the modulation walk entirely
    // (it would otherwise flip states forever chasing an infinite gap).
    next_time_ = std::numeric_limits<double>::infinity();
    state_end_ = std::numeric_limits<double>::infinity();
    return;
  }
  state_end_ = rng_.exponential(1.0 / mean_quiet_dwell_);
  advance();
}

int MmppFaultSource::draw_processor() {
  return draw_struck_processor(rng_, common_cause_, processors_);
}

void MmppFaultSource::advance() {
  // Competing exponentials: within a state both the next arrival and
  // the state flip are memoryless, so re-drawing the arrival gap after
  // each flip is exact.
  for (;;) {
    const double rate = in_burst_ ? burst_rate_ : quiet_rate_;
    const double gap = rng_.exponential(rate);
    if (cursor_ + gap < state_end_) {
      cursor_ += gap;
      next_time_ = cursor_;
      next_proc_ = draw_processor();
      return;
    }
    cursor_ = state_end_;
    in_burst_ = !in_burst_;
    const double dwell = in_burst_ ? mean_burst_dwell_ : mean_quiet_dwell_;
    state_end_ = cursor_ + rng_.exponential(1.0 / dwell);
  }
}

double MmppFaultSource::next_fault_after(double from_exposure,
                                         int& processor) {
  while (next_time_ < from_exposure) advance();
  processor = next_proc_;
  return next_time_;
}

ReplayFaultSource::ReplayFaultSource(const FaultTrace& trace) : trace_(trace) {}

double ReplayFaultSource::next_fault_after(double from_exposure,
                                           int& processor) {
  while (cursor_ < trace_.size() &&
         trace_.events()[cursor_].time < from_exposure) {
    ++cursor_;
  }
  if (cursor_ >= trace_.size()) {
    processor = 0;
    return std::numeric_limits<double>::infinity();
  }
  processor = trace_.events()[cursor_].processor;
  return trace_.events()[cursor_].time;
}

std::unique_ptr<FaultSource> make_fault_source(const FaultModel& model,
                                               const FaultEnvironment& env,
                                               util::Xoshiro256& rng) {
  env.validate();
  if (env.plain_exponential()) {
    return std::make_unique<PoissonFaultSource>(model, rng);
  }
  if (env.burst.enabled) {
    return std::make_unique<MmppFaultSource>(model, env, rng);
  }
  return std::make_unique<RenewalFaultSource>(model, env, rng);
}

}  // namespace adacheck::model
