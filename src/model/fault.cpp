#include "model/fault.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace adacheck::model {

FaultTrace::FaultTrace(std::vector<FaultEvent> events)
    : events_(std::move(events)) {
  if (!std::is_sorted(events_.begin(), events_.end(),
                      [](const FaultEvent& a, const FaultEvent& b) {
                        return a.time < b.time;
                      })) {
    throw std::invalid_argument("FaultTrace: events must be time-sorted");
  }
}

void FaultTrace::record(double time, int processor) {
  if (!events_.empty() && time < events_.back().time) {
    throw std::invalid_argument("FaultTrace: out-of-order record");
  }
  if (processor < 0 || processor > 2) {
    throw std::invalid_argument("FaultTrace: processor must be 0, 1, or 2");
  }
  events_.push_back({time, processor});
}

std::size_t FaultTrace::count_in(double t0, double t1) const {
  const auto lo = std::lower_bound(
      events_.begin(), events_.end(), t0,
      [](const FaultEvent& e, double t) { return e.time < t; });
  const auto hi = std::lower_bound(
      lo, events_.end(), t1,
      [](const FaultEvent& e, double t) { return e.time < t; });
  return static_cast<std::size_t>(hi - lo);
}

PoissonFaultSource::PoissonFaultSource(const FaultModel& model,
                                       util::Xoshiro256& rng)
    : pair_rate_(model.pair_rate()), processors_(model.processors),
      rng_(rng), next_time_(0.0), next_proc_(0) {
  if (!model.valid()) throw std::invalid_argument("FaultModel: invalid");
  next_time_ = rng_.exponential(pair_rate_);
  next_proc_ = static_cast<int>(
      rng_.below(static_cast<std::uint64_t>(processors_)));
}

void PoissonFaultSource::advance() {
  next_time_ += rng_.exponential(pair_rate_);
  next_proc_ = static_cast<int>(
      rng_.below(static_cast<std::uint64_t>(processors_)));
}

double PoissonFaultSource::next_fault_after(double from_exposure,
                                            int& processor) {
  // The process is memoryless, so we only ever move forward; the engine
  // queries with non-decreasing exposure except after rollbacks, where
  // re-executed work is *new* exposure (faults can strike again), which
  // the engine models by continuing to accumulate exposure time.
  while (next_time_ < from_exposure) advance();
  processor = next_proc_;
  return next_time_;
}

ReplayFaultSource::ReplayFaultSource(const FaultTrace& trace) : trace_(trace) {}

double ReplayFaultSource::next_fault_after(double from_exposure,
                                           int& processor) {
  while (cursor_ < trace_.size() &&
         trace_.events()[cursor_].time < from_exposure) {
    ++cursor_;
  }
  if (cursor_ >= trace_.size()) {
    processor = 0;
    return std::numeric_limits<double>::infinity();
  }
  processor = trace_.events()[cursor_].processor;
  return trace_.events()[cursor_].time;
}

}  // namespace adacheck::model
