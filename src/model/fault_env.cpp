#include "model/fault_env.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace adacheck::model {

const char* to_string(ArrivalKind kind) noexcept {
  switch (kind) {
    case ArrivalKind::kExponential: return "exponential";
    case ArrivalKind::kWeibull: return "weibull";
    case ArrivalKind::kLogNormal: return "lognormal";
    case ArrivalKind::kGamma: return "gamma";
  }
  return "unknown";
}

bool FaultEnvironment::plain_exponential() const noexcept {
  return arrival == ArrivalKind::kExponential && !burst.enabled &&
         common_cause_fraction == 0.0;
}

bool FaultEnvironment::valid() const noexcept {
  if (!(common_cause_fraction >= 0.0 && common_cause_fraction <= 1.0)) {
    return false;
  }
  if (arrival != ArrivalKind::kExponential &&
      !(shape > 0.0 && std::isfinite(shape))) {
    return false;
  }
  if (burst.enabled) {
    // Burst modulation shapes a Poisson process; composing it with a
    // non-exponential renewal process has no well-defined rate
    // semantics, so it is rejected rather than silently approximated.
    if (arrival != ArrivalKind::kExponential) return false;
    if (!(burst.rate_multiplier >= 1.0 &&
          std::isfinite(burst.rate_multiplier))) {
      return false;
    }
    if (!(burst.mean_quiet_dwell > 0.0) ||
        !std::isfinite(burst.mean_quiet_dwell) ||
        !(burst.mean_burst_dwell > 0.0) ||
        !std::isfinite(burst.mean_burst_dwell)) {
      return false;
    }
  }
  return true;
}

void FaultEnvironment::validate() const {
  if (!valid()) {
    throw std::invalid_argument(
        "FaultEnvironment: invalid spec (shape must be positive, burst "
        "requires exponential arrivals with positive dwells and "
        "multiplier >= 1, common_cause_fraction in [0, 1])");
  }
}

double FaultEnvironment::rate_multiplier() const noexcept {
  if (!burst.enabled) return 1.0;
  const double duty = burst.burst_duty();
  return 1.0 + duty * (burst.rate_multiplier - 1.0);
}

FaultEnvironment FaultEnvironment::exponential() { return {}; }

FaultEnvironment FaultEnvironment::weibull(double shape) {
  FaultEnvironment env;
  env.arrival = ArrivalKind::kWeibull;
  env.shape = shape;
  return env;
}

FaultEnvironment FaultEnvironment::log_normal(double sigma) {
  FaultEnvironment env;
  env.arrival = ArrivalKind::kLogNormal;
  env.shape = sigma;
  return env;
}

FaultEnvironment FaultEnvironment::gamma_arrivals(double shape) {
  FaultEnvironment env;
  env.arrival = ArrivalKind::kGamma;
  env.shape = shape;
  return env;
}

FaultEnvironment FaultEnvironment::bursty(double rate_multiplier,
                                          double quiet_dwell,
                                          double burst_dwell) {
  FaultEnvironment env;
  env.burst.enabled = true;
  env.burst.rate_multiplier = rate_multiplier;
  env.burst.mean_quiet_dwell = quiet_dwell;
  env.burst.mean_burst_dwell = burst_dwell;
  return env;
}

FaultEnvironment FaultEnvironment::with_common_cause(double fraction) const {
  FaultEnvironment env = *this;
  env.common_cause_fraction = fraction;
  return env;
}

namespace {

struct NamedEnvironment {
  const char* name;
  FaultEnvironment env;
};

const std::vector<NamedEnvironment>& registry() {
  static const std::vector<NamedEnvironment> entries = [] {
    std::vector<NamedEnvironment> v;
    v.push_back({"poisson", FaultEnvironment::exponential()});
    v.push_back({"weibull-infant", FaultEnvironment::weibull(0.7)});
    v.push_back({"weibull-aging", FaultEnvironment::weibull(2.0)});
    v.push_back({"lognormal-heavy", FaultEnvironment::log_normal(1.5)});
    v.push_back({"gamma-regular", FaultEnvironment::gamma_arrivals(4.0)});
    v.push_back({"bursty-orbit",
                 FaultEnvironment::bursty(12.0, 2'300.0, 250.0)});
    v.push_back({"bursty-storm",
                 FaultEnvironment::bursty(40.0, 4'000.0, 120.0)});
    v.push_back({"common-cause",
                 FaultEnvironment::exponential().with_common_cause(0.25)});
    v.push_back({"bursty-correlated",
                 FaultEnvironment::bursty(12.0, 2'300.0, 250.0)
                     .with_common_cause(0.3)});
    return v;
  }();
  return entries;
}

}  // namespace

const FaultEnvironment& find_environment(const std::string& name) {
  for (const auto& entry : registry()) {
    if (name == entry.name) return entry.env;
  }
  throw std::invalid_argument("unknown fault environment: " + name);
}

bool is_known_environment(const std::string& name) noexcept {
  for (const auto& entry : registry()) {
    if (name == entry.name) return true;
  }
  return false;
}

std::vector<std::string> known_environments() {
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& entry : registry()) names.emplace_back(entry.name);
  return names;
}

}  // namespace adacheck::model
