// Two-speed (and generally multi-level) DVS processor model.
//
// The paper assumes a processor with speeds f1 < f2, normalized so
// f1 = 1 and (in the experiments) f2 = 2*f1, with negligible switching
// time.  Energy per cycle is V(f)^2; because the paper never states its
// supply voltages we expose a configurable voltage law with the
// conventional near-linear V ~ f scaling (V^2 = kappa * f), calibrated
// so the absolute energy magnitudes land near the paper's tables (see
// DESIGN.md §3).
#pragma once

#include <cstddef>
#include <vector>

namespace adacheck::model {

/// One operating point of the processor.
struct SpeedLevel {
  double frequency = 1.0;  ///< cycles per time unit, normalized to f1 = 1.
  double voltage = 1.0;    ///< supply voltage (arbitrary units).

  /// Energy consumed executing `cycles` cycles at this level: V^2 * cycles.
  double energy(double cycles) const noexcept {
    return voltage * voltage * cycles;
  }
  /// Wall-clock time for `cycles` cycles at this level.
  double time(double cycles) const noexcept { return cycles / frequency; }
};

/// Voltage law V(f)^2 = kappa * f.  kappa = 4.0 reproduces the paper's
/// energy magnitudes (V1 = 2.0 at f1 = 1, V2 ~ 2.83 at f2 = 2).
struct VoltageLaw {
  double kappa = 4.0;
  double voltage_for(double frequency) const;
};

/// A DVS-capable processor: an ordered set of speed levels (ascending
/// frequency) and zero-cost switching, as assumed in the paper.
class DvsProcessor {
 public:
  /// Builds a processor from explicit levels.  Levels are sorted by
  /// frequency; duplicate frequencies are rejected.
  explicit DvsProcessor(std::vector<SpeedLevel> levels);

  /// Convenience factory for the paper's configuration: two speeds
  /// {f1 = 1, f2 = ratio}, voltages from `law`.
  static DvsProcessor two_speed(double ratio = 2.0, VoltageLaw law = {});

  std::size_t num_levels() const noexcept { return levels_.size(); }
  const SpeedLevel& level(std::size_t i) const;
  const SpeedLevel& slowest() const noexcept { return levels_.front(); }
  const SpeedLevel& fastest() const noexcept { return levels_.back(); }

  /// The slowest level with frequency >= f; fastest() if none.
  const SpeedLevel& at_least(double frequency) const noexcept;

 private:
  std::vector<SpeedLevel> levels_;
};

}  // namespace adacheck::model
