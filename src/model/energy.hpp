// Energy accounting.
//
// The paper measures energy by "summing the product of the square of
// the voltage and the number of computation cycles over all the
// segments of the task".  EnergyMeter implements exactly that, keeping
// a per-speed breakdown so benches can report how much work ran at the
// high speed.  We account one processor of the DMR pair (both execute
// the same cycles; a doubled figure is a constant factor).
//
// The meter sits on the Monte-Carlo hot path (one per simulated run),
// so the per-frequency table lives in a fixed inline array — charging
// never touches the heap for processors with up to kInlineLevels speed
// levels; beyond that it spills to a vector.
#pragma once

#include <array>
#include <cstddef>
#include <utility>
#include <vector>

#include "model/speed.hpp"

namespace adacheck::model {

class EnergyMeter {
 public:
  /// Charges `cycles` cycles executed at `level` (computation or
  /// checkpoint overhead alike — everything the CPU executes costs).
  void charge(const SpeedLevel& level, double cycles);

  double total() const noexcept { return total_; }
  double cycles_at(double frequency) const noexcept;
  double total_cycles() const noexcept { return total_cycles_; }
  /// Cycles executed strictly above `frequency`; allocation-free, for
  /// hot-path aggregation of high-speed work.
  double cycles_above(double frequency) const noexcept;
  /// Per-frequency cycle breakdown, sorted ascending by frequency.
  /// Builds a fresh vector — reporting paths only.
  std::vector<std::pair<double, double>> breakdown() const;

  void reset() noexcept;

 private:
  struct Entry {
    double frequency = 0.0;
    double cycles = 0.0;
  };
  /// Covers every realistic DVS table (the paper uses two levels).
  static constexpr std::size_t kInlineLevels = 6;

  double total_ = 0.0;
  double total_cycles_ = 0.0;
  std::array<Entry, kInlineLevels> slots_{};
  std::size_t slot_count_ = 0;
  std::vector<Entry> spill_;  ///< only for > kInlineLevels frequencies
};

}  // namespace adacheck::model
