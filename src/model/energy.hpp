// Energy accounting.
//
// The paper measures energy by "summing the product of the square of
// the voltage and the number of computation cycles over all the
// segments of the task".  EnergyMeter implements exactly that, keeping
// a per-speed breakdown so benches can report how much work ran at the
// high speed.  We account one processor of the DMR pair (both execute
// the same cycles; a doubled figure is a constant factor).
#pragma once

#include <map>

#include "model/speed.hpp"

namespace adacheck::model {

class EnergyMeter {
 public:
  /// Charges `cycles` cycles executed at `level` (computation or
  /// checkpoint overhead alike — everything the CPU executes costs).
  void charge(const SpeedLevel& level, double cycles);

  double total() const noexcept { return total_; }
  double cycles_at(double frequency) const noexcept;
  double total_cycles() const noexcept { return total_cycles_; }
  /// Per-frequency cycle breakdown (frequency -> cycles executed).
  const std::map<double, double>& breakdown() const noexcept {
    return cycles_by_freq_;
  }

  void reset() noexcept;

 private:
  double total_ = 0.0;
  double total_cycles_ = 0.0;
  std::map<double, double> cycles_by_freq_;
};

}  // namespace adacheck::model
