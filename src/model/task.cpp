#include "model/task.hpp"

#include <stdexcept>

namespace adacheck::model {

double TaskSpec::utilization(double speed) const {
  if (speed <= 0.0) throw std::invalid_argument("utilization: speed <= 0");
  if (deadline <= 0.0) throw std::invalid_argument("utilization: deadline <= 0");
  return cycles / (speed * deadline);
}

bool TaskSpec::valid() const noexcept {
  if (cycles <= 0.0 || deadline <= 0.0) return false;
  if (fault_tolerance < 0) return false;
  if (period < 0.0) return false;
  if (period > 0.0 && period < deadline) return false;  // D <= T convention
  return true;
}

void TaskSpec::validate() const {
  if (cycles <= 0.0) throw std::invalid_argument("TaskSpec: cycles must be > 0");
  if (deadline <= 0.0)
    throw std::invalid_argument("TaskSpec: deadline must be > 0");
  if (fault_tolerance < 0)
    throw std::invalid_argument("TaskSpec: fault_tolerance must be >= 0");
  if (period < 0.0) throw std::invalid_argument("TaskSpec: period must be >= 0");
  if (period > 0.0 && period < deadline)
    throw std::invalid_argument("TaskSpec: period must be >= deadline");
}

TaskSpec task_from_utilization(double utilization, double speed,
                               double deadline, int fault_tolerance,
                               std::string name) {
  if (utilization <= 0.0)
    throw std::invalid_argument("task_from_utilization: U must be > 0");
  if (speed <= 0.0)
    throw std::invalid_argument("task_from_utilization: speed must be > 0");
  TaskSpec t;
  t.cycles = utilization * speed * deadline;
  t.deadline = deadline;
  t.period = 0.0;
  t.fault_tolerance = fault_tolerance;
  t.name = std::move(name);
  t.validate();
  return t;
}

}  // namespace adacheck::model
