#include "util/cli.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/text.hpp"

namespace adacheck::util {

namespace {
bool is_flag(const std::string& arg) {
  return arg.size() > 2 && arg.rfind("--", 0) == 0;
}
}  // namespace

CliArgs::CliArgs(int argc, const char* const* argv,
                 std::vector<std::string> allowed) {
  // Split the "name!" boolean-switch markers out of the allowed list.
  std::vector<std::string> boolean_switches;
  for (auto& entry : allowed) {
    if (!entry.empty() && entry.back() == '!') {
      entry.pop_back();
      boolean_switches.push_back(entry);
    }
  }
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!is_flag(arg)) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    std::string name, value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      // --name value form: consume the next token unless it is a flag
      // or the name is a declared boolean switch.
      const bool declared_switch =
          std::find(boolean_switches.begin(), boolean_switches.end(), name) !=
          boolean_switches.end();
      if (!declared_switch && i + 1 < argc && !is_flag(argv[i + 1])) {
        value = argv[++i];
      } else {
        value = "true";  // boolean switch
      }
    }
    if (!allowed.empty() &&
        std::find(allowed.begin(), allowed.end(), name) == allowed.end()) {
      std::string message = "unknown flag --" + name;
      const std::string suggestion = closest_match(name, allowed);
      if (!suggestion.empty()) {
        message += " (did you mean --" + suggestion + "?)";
      }
      message += "; allowed flags: --" + join(allowed, ", --");
      throw std::invalid_argument(message);
    }
    flags_[name] = std::move(value);
  }
}

std::string CliArgs::subcommand(int argc, const char* const* argv) {
  if (argc < 2) return "";
  const std::string first = argv[1];
  return is_flag(first) ? "" : first;
}

bool CliArgs::has(const std::string& name) const {
  return flags_.count(name) != 0;
}

std::optional<std::string> CliArgs::get(const std::string& name) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return std::nullopt;
  return it->second;
}

std::string CliArgs::get_string(const std::string& name,
                                const std::string& fallback) const {
  return get(name).value_or(fallback);
}

std::int64_t CliArgs::get_int(const std::string& name,
                              std::int64_t fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  try {
    return std::stoll(*v);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects an integer, got '" +
                                *v + "'");
  }
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  try {
    return std::stod(*v);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects a number, got '" +
                                *v + "'");
  }
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  if (*v == "true" || *v == "1" || *v == "yes" || *v == "on") return true;
  if (*v == "false" || *v == "0" || *v == "no" || *v == "off") return false;
  throw std::invalid_argument("flag --" + name + " expects a boolean, got '" +
                              *v + "'");
}

std::vector<std::string> split_csv(const std::string& value) {
  std::vector<std::string> items;
  std::string::size_type begin = 0;
  while (begin <= value.size()) {
    const auto end = value.find(',', begin);
    const auto stop = end == std::string::npos ? value.size() : end;
    if (stop > begin) items.push_back(value.substr(begin, stop - begin));
    if (end == std::string::npos) break;
    begin = end + 1;
  }
  return items;
}

}  // namespace adacheck::util
