// Streaming statistics for Monte-Carlo aggregation.
//
// Experiment cells aggregate 10,000+ run results; we need numerically
// stable single-pass mean/variance (Welford), binomial confidence
// intervals for completion probabilities, and mergeable accumulators so
// per-thread partial results can be combined deterministically.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace adacheck::util {

/// Wilson 95% score bounds as free helpers, shared by BinomialStats and
/// the budget evaluator (sim::PrecisionRecorder) instead of being
/// re-derived at each call site.  All three return NaN when trials is
/// zero; bounds are clamped to [0, 1].  The interval is equivariant
/// under the success/failure swap, so the half-width for P(success)
/// equals the half-width for P(miss).
double wilson95_lower(std::size_t successes, std::size_t trials) noexcept;
double wilson95_upper(std::size_t successes, std::size_t trials) noexcept;
/// Half the interval width, (upper - lower) / 2.
double wilson95_halfwidth(std::size_t successes, std::size_t trials) noexcept;

/// Welford single-pass accumulator for mean / variance / extrema.
/// Mergeable (parallel-friendly) via Chan's algorithm.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  bool empty() const noexcept { return n_ == 0; }
  /// Mean of the observed samples; NaN when empty (mirrors the paper's
  /// "NaN" energy entries for cells with zero successful runs).
  double mean() const noexcept;
  /// Unbiased sample variance; 0 when fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  /// Standard error of the mean; 0 when fewer than two samples.
  double sem() const noexcept;
  /// Normal-approximation 95% half-width of the mean's CI.
  double ci95_halfwidth() const noexcept;
  /// ci95_halfwidth() / |mean()| — the relative precision budgeted
  /// cells target.  NaN when fewer than two samples exist or the mean
  /// is zero/non-finite (one lucky sample must never satisfy a target).
  double rel_ci95_halfwidth() const noexcept;
  double min() const noexcept;
  double max() const noexcept;
  double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Success/failure counter with Wilson-score interval for proportions.
class BinomialStats {
 public:
  void add(bool success) noexcept;
  void merge(const BinomialStats& other) noexcept;

  std::size_t trials() const noexcept { return trials_; }
  std::size_t successes() const noexcept { return successes_; }
  /// Empirical proportion; NaN when no trials recorded.
  double proportion() const noexcept;
  /// Wilson 95% interval bounds — well-behaved near p = 0 and p = 1.
  double wilson_lo() const noexcept;
  double wilson_hi() const noexcept;
  /// Half the Wilson interval width; NaN when no trials recorded.
  double wilson_halfwidth() const noexcept;

 private:
  std::size_t trials_ = 0;
  std::size_t successes_ = 0;
};

/// Fixed-width histogram over [lo, hi); out-of-range samples (±inf
/// included) clamp to the edge bins, NaN samples are counted in
/// nan_count() and otherwise ignored.  Used by trace analyses and the
/// examples.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  /// Adds another histogram's tallies bin-by-bin.  Both histograms must
  /// have identical bounds and bin counts (throws std::invalid_argument
  /// otherwise).  Counts are integers, so merging is exact and the
  /// result is independent of merge order — parallel partials combine
  /// deterministically.
  void merge(const Histogram& other);
  std::size_t bin_count(std::size_t i) const;
  std::size_t bins() const noexcept { return counts_.size(); }
  std::size_t total() const noexcept { return total_; }
  /// Samples rejected because they were NaN; never binned or counted
  /// in total().
  std::size_t nan_count() const noexcept { return nan_count_; }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  /// Smallest x such that at least `q` fraction of samples are <= x
  /// (linear interpolation inside the bin).  q in [0, 1].
  double quantile(double q) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t nan_count_ = 0;
};

}  // namespace adacheck::util
