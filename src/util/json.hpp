// Strict JSON parser — the inverse of the harness/json_report writer.
//
// Parses one RFC 8259 document into a Value tree.  Strictness is the
// point: scenario files and archived sweep reports are configuration,
// and a silently-misread configuration is worse than a loud error.
// Therefore no comments, no trailing commas, no NaN/Infinity literals
// (the report writer emits null for non-finite doubles), duplicate
// object keys are rejected, and every failure carries the 1-based
// line/column where parsing stopped.
//
// Values remember their own source position, so downstream schema
// validation (src/scenario) can point at the offending field even when
// the document itself was syntactically fine.
//
// Numbers are stored as double: integers are exact up to 2^53, which
// covers every count the sweep schema emits; as_int() checks that the
// stored value really is an integer in range.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace adacheck::util::json {

class Value;

using Array = std::vector<Value>;
/// Object members in document order (duplicate keys are a parse error,
/// so the vector doubles as a map with stable iteration).
using Member = std::pair<std::string, Value>;
using Object = std::vector<Member>;

enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

/// Human-readable kind name ("null", "boolean", "number", ...).
const char* to_string(Kind kind) noexcept;

/// Syntax error: what() includes the position, and line()/column()
/// expose it for tooling.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& message, int line, int column);
  int line() const noexcept { return line_; }
  int column() const noexcept { return column_; }

 private:
  int line_;
  int column_;
};

/// Accessor mismatch (as_number() on a string, find() on an array):
/// carries the value's source position so callers can still point at
/// the document.
class TypeError : public std::runtime_error {
 public:
  TypeError(const std::string& message, int line, int column);
  int line() const noexcept { return line_; }
  int column() const noexcept { return column_; }

 private:
  int line_;
  int column_;
};

class Value {
 public:
  Value() = default;  ///< null

  Kind kind() const noexcept;
  /// 1-based source position of the value's first character (0 when
  /// the value was default-constructed rather than parsed).
  int line() const noexcept { return line_; }
  int column() const noexcept { return column_; }

  bool is_null() const noexcept { return kind() == Kind::kNull; }
  bool is_bool() const noexcept { return kind() == Kind::kBool; }
  bool is_number() const noexcept { return kind() == Kind::kNumber; }
  bool is_string() const noexcept { return kind() == Kind::kString; }
  bool is_array() const noexcept { return kind() == Kind::kArray; }
  bool is_object() const noexcept { return kind() == Kind::kObject; }

  /// The as_*() accessors throw TypeError on kind mismatch.
  bool as_bool() const;
  double as_number() const;
  /// The number as an integer; TypeError when the value is not a
  /// number, not integral, or outside the exactly-representable
  /// +-2^53 range.
  std::int64_t as_int() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object member lookup; nullptr when the key is absent.  TypeError
  /// on non-objects.
  const Value* find(std::string_view key) const;

 private:
  friend class Parser;

  std::variant<std::nullptr_t, bool, double, std::string, Array, Object>
      data_;
  int line_ = 0;
  int column_ = 0;
};

/// Parses exactly one JSON document; trailing non-whitespace content
/// is an error.  Throws ParseError.
Value parse(std::string_view text);

}  // namespace adacheck::util::json
