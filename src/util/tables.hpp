// Plain-text and CSV table rendering for the benchmark harness.
//
// Every bench binary prints the paper's table rows next to our measured
// values; TextTable handles column alignment, CsvWriter produces
// machine-readable output for plotting.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace adacheck::util {

/// Column-aligned monospace table.  Cells are strings; numeric
/// formatting is the caller's job (see fmt_* helpers below).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Appends a row; it must have exactly as many cells as the header.
  void add_row(std::vector<std::string> cells);
  /// Appends a horizontal rule (rendered as dashes).
  void add_rule();

  std::size_t rows() const noexcept { return rows_.size(); }
  std::string to_string() const;
  friend std::ostream& operator<<(std::ostream& os, const TextTable& t);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;  // empty vector = rule
};

/// Minimal CSV emitter (RFC-4180 quoting for commas/quotes/newlines).
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}
  void write_row(const std::vector<std::string>& cells);

 private:
  std::ostream& os_;
};

/// Fixed-precision float: fmt_fixed(3.14159, 2) == "3.14".
std::string fmt_fixed(double v, int precision);
/// Probability with 4 decimals, matching the paper's tables ("0.9991");
/// NaN renders as "NaN".
std::string fmt_prob(double v);
/// Energy as a rounded integer, matching the paper ("57564"); NaN
/// renders as "NaN".
std::string fmt_energy(double v);
/// Compact scientific notation, e.g. "1.4e-03".
std::string fmt_sci(double v, int precision = 2);

}  // namespace adacheck::util
