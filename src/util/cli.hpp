// Tiny command-line flag parser shared by bench binaries and examples.
//
// Supports --name=value and --name value forms plus boolean switches
// (--fast).  Unknown flags are an error so typos in experiment sweeps
// fail loudly instead of silently running the default configuration.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace adacheck::util {

class CliArgs {
 public:
  /// Parses argv.  Throws std::invalid_argument on malformed input or,
  /// when `allowed` is non-empty, on flags outside the allowed set.
  CliArgs(int argc, const char* const* argv,
          std::vector<std::string> allowed = {});

  bool has(const std::string& name) const;
  std::optional<std::string> get(const std::string& name) const;

  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// Positional (non-flag) arguments in order of appearance.
  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

/// Splits a comma-separated flag value ("a,b,c") into its non-empty
/// items — the list form used by --tables / --envs style flags.
std::vector<std::string> split_csv(const std::string& value);

}  // namespace adacheck::util
