// Tiny command-line flag parser shared by bench binaries, examples,
// and the adacheck driver.
//
// Supports --name=value and --name value forms plus boolean switches
// (--fast).  Unknown flags are an error so typos in experiment sweeps
// fail loudly instead of silently running the default configuration;
// the error lists the allowed flags (with a "did you mean" suggestion
// when one is close).
//
// Subcommands: multi-verb tools (adacheck run/validate/list) peek the
// verb with CliArgs::subcommand(argc, argv) first, then construct a
// CliArgs with that verb's allowed-flag set; the verb stays in
// positional()[0].
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace adacheck::util {

class CliArgs {
 public:
  /// Parses argv.  Throws std::invalid_argument on malformed input or,
  /// when `allowed` is non-empty, on flags outside the allowed set.
  /// An allowed entry ending in '!' (e.g. "dry-run!") declares a
  /// boolean switch: --dry-run never consumes the following token, so
  /// `run --dry-run file.json` keeps file.json positional.  Use it for
  /// switches in tools that take positionals (explicit
  /// --dry-run=false still works).
  CliArgs(int argc, const char* const* argv,
          std::vector<std::string> allowed = {});

  bool has(const std::string& name) const;
  std::optional<std::string> get(const std::string& name) const;

  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// Positional (non-flag) arguments in order of appearance.
  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// The subcommand: argv[1] when it exists and is not a flag, ""
  /// otherwise.  A peek — it does not consume anything; when parsed,
  /// the verb is positional()[0].
  static std::string subcommand(int argc, const char* const* argv);

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

/// Splits a comma-separated flag value ("a,b,c") into its non-empty
/// items — the list form used by --tables / --envs style flags.
std::vector<std::string> split_csv(const std::string& value);

}  // namespace adacheck::util
