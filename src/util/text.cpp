#include "util/text.hpp"

#include <algorithm>
#include <numeric>

namespace adacheck::util {

std::size_t edit_distance(std::string_view a, std::string_view b) {
  // Two-row dynamic program; rows indexed by positions in b.
  std::vector<std::size_t> prev(b.size() + 1);
  std::vector<std::size_t> curr(b.size() + 1);
  std::iota(prev.begin(), prev.end(), std::size_t{0});
  for (std::size_t i = 1; i <= a.size(); ++i) {
    curr[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t substitution =
          prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      curr[j] = std::min({prev[j] + 1, curr[j - 1] + 1, substitution});
    }
    std::swap(prev, curr);
  }
  return prev[b.size()];
}

std::string closest_match(std::string_view name,
                          const std::vector<std::string>& candidates) {
  const std::size_t budget = 1 + name.size() / 4;
  std::string best;
  std::size_t best_distance = budget + 1;
  for (const auto& candidate : candidates) {
    const std::size_t distance = edit_distance(name, candidate);
    if (distance < best_distance) {
      best_distance = distance;
      best = candidate;
    }
  }
  return best;
}

std::string join(const std::vector<std::string>& items,
                 std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += separator;
    out += items[i];
  }
  return out;
}

}  // namespace adacheck::util
