#include "util/json.hpp"

#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdlib>

namespace adacheck::util::json {

namespace {

std::string position_suffix(int line, int column) {
  return " at line " + std::to_string(line) + ", column " +
         std::to_string(column);
}

}  // namespace

const char* to_string(Kind kind) noexcept {
  switch (kind) {
    case Kind::kNull: return "null";
    case Kind::kBool: return "boolean";
    case Kind::kNumber: return "number";
    case Kind::kString: return "string";
    case Kind::kArray: return "array";
    case Kind::kObject: return "object";
  }
  return "?";
}

ParseError::ParseError(const std::string& message, int line, int column)
    : std::runtime_error(message + position_suffix(line, column)),
      line_(line),
      column_(column) {}

TypeError::TypeError(const std::string& message, int line, int column)
    : std::runtime_error(message + position_suffix(line, column)),
      line_(line),
      column_(column) {}

Kind Value::kind() const noexcept {
  return static_cast<Kind>(data_.index());
}

namespace {

[[noreturn]] void type_mismatch(const Value& v, Kind wanted) {
  throw TypeError(std::string("expected ") + to_string(wanted) + ", got " +
                      to_string(v.kind()),
                  v.line(), v.column());
}

}  // namespace

bool Value::as_bool() const {
  if (!is_bool()) type_mismatch(*this, Kind::kBool);
  return std::get<bool>(data_);
}

double Value::as_number() const {
  if (!is_number()) type_mismatch(*this, Kind::kNumber);
  return std::get<double>(data_);
}

std::int64_t Value::as_int() const {
  const double v = as_number();
  // 2^53: the largest range where every integer has an exact double.
  constexpr double kMax = 9007199254740992.0;
  if (std::floor(v) != v || v < -kMax || v > kMax) {
    throw TypeError("expected integer, got non-integral number", line_,
                    column_);
  }
  return static_cast<std::int64_t>(v);
}

const std::string& Value::as_string() const {
  if (!is_string()) type_mismatch(*this, Kind::kString);
  return std::get<std::string>(data_);
}

const Array& Value::as_array() const {
  if (!is_array()) type_mismatch(*this, Kind::kArray);
  return std::get<Array>(data_);
}

const Object& Value::as_object() const {
  if (!is_object()) type_mismatch(*this, Kind::kObject);
  return std::get<Object>(data_);
}

const Value* Value::find(std::string_view key) const {
  for (const auto& [name, value] : as_object()) {
    if (name == key) return &value;
  }
  return nullptr;
}

/// Recursive-descent parser over the raw text; tracks the 1-based
/// position of every character it consumes.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    skip_whitespace();
    Value root = parse_value(0);
    skip_whitespace();
    if (!at_end()) fail("trailing content after the JSON document");
    return root;
  }

 private:
  // Deep enough for any real scenario/report; shallow enough that
  // recursion cannot overflow the stack before we error out.
  static constexpr int kMaxDepth = 200;

  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError(message, line_, column_);
  }

  bool at_end() const noexcept { return pos_ >= text_.size(); }
  char peek() const noexcept { return text_[pos_]; }

  char take() {
    const char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  void skip_whitespace() {
    while (!at_end()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') return;
      take();
    }
  }

  void expect(char wanted, const char* context) {
    if (at_end()) {
      fail(std::string("unexpected end of input ") + context);
    }
    if (peek() != wanted) {
      fail(std::string("expected '") + wanted + "' " + context);
    }
    take();
  }

  /// Stamps the value with the position where its first character sat.
  template <class T>
  Value make(T&& data, int line, int column) {
    Value v;
    v.data_ = std::forward<T>(data);
    v.line_ = line;
    v.column_ = column;
    return v;
  }

  Value parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    if (at_end()) fail("unexpected end of input, expected a value");
    const char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': {
        const int line = line_, column = column_;
        return make(parse_string(), line, column);
      }
      case 't': return parse_literal("true", true);
      case 'f': return parse_literal("false", false);
      case 'n': return parse_literal("null", nullptr);
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
        if (text_.substr(pos_, 3) == "NaN" ||
            text_.substr(pos_, 8) == "Infinity" ||
            text_.substr(pos_, 9) == "-Infinity") {
          fail("JSON has no NaN/Infinity literals (the report writer "
               "emits null for non-finite values)");
        }
        fail(std::string("unexpected character '") + c + "'");
    }
  }

  template <class T>
  Value parse_literal(std::string_view word, T value) {
    const int line = line_, column = column_;
    for (const char expected : word) {
      if (at_end() || peek() != expected) {
        throw ParseError(
            "invalid literal, expected \"" + std::string(word) + "\"", line,
            column);
      }
      take();
    }
    return make(value, line, column);
  }

  Value parse_number() {
    const int line = line_, column = column_;
    const std::size_t start = pos_;
    if (!at_end() && peek() == '-') take();
    if (at_end() || peek() < '0' || peek() > '9') {
      fail("invalid number: expected a digit");
    }
    if (peek() == '0') {
      take();
      if (!at_end() && peek() >= '0' && peek() <= '9') {
        fail("invalid number: leading zeros are not allowed");
      }
    } else {
      while (!at_end() && peek() >= '0' && peek() <= '9') take();
    }
    if (!at_end() && peek() == '.') {
      take();
      if (at_end() || peek() < '0' || peek() > '9') {
        fail("invalid number: expected a digit after '.'");
      }
      while (!at_end() && peek() >= '0' && peek() <= '9') take();
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      take();
      if (!at_end() && (peek() == '+' || peek() == '-')) take();
      if (at_end() || peek() < '0' || peek() > '9') {
        fail("invalid number: expected a digit in the exponent");
      }
      while (!at_end() && peek() >= '0' && peek() <= '9') take();
    }
    // from_chars, not strtod: the conversion must stay locale-blind (a
    // comma-decimal LC_NUMERIC would silently truncate "1.4e-3").
    const std::string_view token = text_.substr(start, pos_ - start);
    double parsed = 0.0;
    const auto result =
        std::from_chars(token.data(), token.data() + token.size(), parsed);
    if (result.ec == std::errc::result_out_of_range) {
      // Overflow to +-inf is an error (the document cannot
      // round-trip); underflow toward zero is accepted as zero.  The
      // scanner already fixed the grammar, so the magnitude decides.
      errno = 0;
      const double approx = std::strtod(std::string(token).c_str(), nullptr);
      if (std::isinf(approx)) {
        throw ParseError("number out of range", line, column);
      }
      parsed = 0.0;
    }
    return make(parsed, line, column);
  }

  std::string parse_string() {
    take();  // opening quote
    std::string out;
    for (;;) {
      if (at_end()) fail("unterminated string");
      if (peek() == '"') {
        take();
        return out;
      }
      if (static_cast<unsigned char>(peek()) < 0x20) {
        fail("unescaped control character in string (use \\n, \\t, "
             "\\u00XX, ...)");
      }
      if (peek() != '\\') {
        out.push_back(take());
        continue;
      }
      // Report escape errors at the backslash that starts the sequence.
      const int escape_line = line_, escape_column = column_;
      take();  // backslash
      if (at_end()) fail("unterminated string");
      const char e = take();
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          const unsigned first = parse_hex4(escape_line, escape_column);
          unsigned code_point = first;
          if (first >= 0xD800 && first <= 0xDBFF) {
            // High surrogate: a low surrogate escape must follow.
            if (at_end() || peek() != '\\') {
              throw ParseError("unpaired surrogate in \\u escape",
                               escape_line, escape_column);
            }
            take();
            if (at_end() || take() != 'u') {
              throw ParseError("unpaired surrogate in \\u escape",
                               escape_line, escape_column);
            }
            const unsigned second = parse_hex4(escape_line, escape_column);
            if (second < 0xDC00 || second > 0xDFFF) {
              throw ParseError("unpaired surrogate in \\u escape",
                               escape_line, escape_column);
            }
            code_point =
                0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
          } else if (first >= 0xDC00 && first <= 0xDFFF) {
            throw ParseError("unpaired surrogate in \\u escape", escape_line,
                             escape_column);
          }
          append_utf8(out, code_point);
          break;
        }
        default:
          throw ParseError(std::string("invalid escape sequence '\\") + e +
                               "'",
                           escape_line, escape_column);
      }
    }
  }

  unsigned parse_hex4(int escape_line, int escape_column) {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      if (at_end()) {
        throw ParseError("truncated \\u escape", escape_line, escape_column);
      }
      const char c = take();
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value += static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value += static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value += static_cast<unsigned>(c - 'A' + 10);
      } else {
        throw ParseError("invalid hex digit in \\u escape", escape_line,
                         escape_column);
      }
    }
    return value;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Value parse_array(int depth) {
    const int line = line_, column = column_;
    take();  // '['
    Array items;
    skip_whitespace();
    if (!at_end() && peek() == ']') {
      take();
      return make(std::move(items), line, column);
    }
    for (;;) {
      skip_whitespace();
      if (!at_end() && (peek() == ']' || peek() == ',')) {
        fail("expected a value (trailing commas are not allowed)");
      }
      items.push_back(parse_value(depth + 1));
      skip_whitespace();
      if (at_end()) fail("unexpected end of input inside array");
      if (peek() == ']') {
        take();
        return make(std::move(items), line, column);
      }
      if (peek() != ',') fail("expected ',' or ']' in array");
      take();
    }
  }

  Value parse_object(int depth) {
    const int line = line_, column = column_;
    take();  // '{'
    Object members;
    skip_whitespace();
    if (!at_end() && peek() == '}') {
      take();
      return make(std::move(members), line, column);
    }
    for (;;) {
      skip_whitespace();
      if (at_end()) fail("unexpected end of input inside object");
      if (peek() == '}' || peek() == ',') {
        fail("expected a key string (trailing commas are not allowed)");
      }
      if (peek() != '"') fail("object keys must be strings");
      const int key_line = line_, key_column = column_;
      std::string key = parse_string();
      for (const auto& [existing, ignored] : members) {
        if (existing == key) {
          throw ParseError("duplicate key \"" + key + "\"", key_line,
                           key_column);
        }
      }
      skip_whitespace();
      expect(':', "after object key");
      skip_whitespace();
      if (at_end()) fail("unexpected end of input inside object");
      members.emplace_back(std::move(key), parse_value(depth + 1));
      skip_whitespace();
      if (at_end()) fail("unexpected end of input inside object");
      if (peek() == '}') {
        take();
        return make(std::move(members), line, column);
      }
      if (peek() != ',') fail("expected ',' or '}' in object");
      take();
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

Value parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace adacheck::util::json
