#include "util/tables.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace adacheck::util {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("TextTable: no headers");
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TextTable: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

void TextTable::add_rule() { rows_.emplace_back(); }

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      out << row[c] << std::string(widths[c] - row[c].size(), ' ');
    }
    out << " |\n";
  };
  auto emit_rule = [&] {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      out << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
    }
    out << "-|\n";
  };
  emit_row(headers_);
  emit_rule();
  for (const auto& row : rows_) {
    if (row.empty()) {
      emit_rule();
    } else {
      emit_row(row);
    }
  }
  return out.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& t) {
  return os << t.to_string();
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) os_ << ',';
    const std::string& cell = cells[i];
    const bool needs_quote =
        cell.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quote) {
      os_ << cell;
      continue;
    }
    os_ << '"';
    for (char ch : cell) {
      if (ch == '"') os_ << '"';
      os_ << ch;
    }
    os_ << '"';
  }
  os_ << '\n';
}

std::string fmt_fixed(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string fmt_prob(double v) {
  if (std::isnan(v)) return "NaN";
  return fmt_fixed(v, 4);
}

std::string fmt_energy(double v) {
  if (std::isnan(v)) return "NaN";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.0f", v);
  return buf;
}

std::string fmt_sci(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", precision, v);
  return buf;
}

}  // namespace adacheck::util
