#include "util/optimize.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace adacheck::util {

ScalarMinimum golden_section_minimize(const std::function<double(double)>& f,
                                      double lo, double hi, double tol) {
  if (!std::isfinite(lo) || !std::isfinite(hi)) {
    throw std::invalid_argument("golden_section: non-finite bracket");
  }
  if (!(hi >= lo)) throw std::invalid_argument("golden_section: hi < lo");
  // tol <= 0 (or NaN) can never be reached by the shrinking bracket and
  // would spin forever once b - a hits the floating-point floor.
  if (!(tol > 0.0) || !std::isfinite(tol)) {
    throw std::invalid_argument("golden_section: tol must be finite and > 0");
  }
  constexpr double invphi = 0.6180339887498949;   // 1/phi
  constexpr double invphi2 = 0.3819660112501051;  // 1/phi^2
  double a = lo, b = hi;
  double c = a + invphi2 * (b - a);
  double d = a + invphi * (b - a);
  double fc = f(c), fd = f(d);
  double width = b - a;
  while (width > tol) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = a + invphi2 * (b - a);
      fc = f(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + invphi * (b - a);
      fd = f(d);
    }
    // When tol is below the bracket's ULP spacing the probe points
    // round onto the endpoints and the width stops shrinking; bail out
    // at floating-point resolution instead of spinning.
    const double new_width = b - a;
    if (new_width >= width) break;
    width = new_width;
  }
  const double xm = 0.5 * (a + b);
  return {xm, f(xm)};
}

IntegerMinimum integer_argmin(const std::function<double(std::int64_t)>& f,
                              std::int64_t lo, std::int64_t hi,
                              int early_stop_rises) {
  if (lo > hi) throw std::invalid_argument("integer_argmin: lo > hi");
  IntegerMinimum best{lo, f(lo)};
  double prev = best.fx;
  int rises = 0;
  for (std::int64_t x = lo + 1; x <= hi; ++x) {
    const double fx = f(x);
    if (fx < best.fx) {
      best = {x, fx};
    }
    if (early_stop_rises > 0) {
      rises = fx > prev ? rises + 1 : 0;
      if (rises >= early_stop_rises) break;
    }
    prev = fx;
  }
  return best;
}

double bisect_root(const std::function<double(double)>& f, double lo,
                   double hi, double tol) {
  if (!std::isfinite(lo) || !std::isfinite(hi)) {
    throw std::invalid_argument("bisect_root: non-finite bracket");
  }
  if (!(tol > 0.0) || !std::isfinite(tol)) {
    throw std::invalid_argument("bisect_root: tol must be finite and > 0");
  }
  double flo = f(lo), fhi = f(hi);
  if (flo == 0.0) return lo;
  if (fhi == 0.0) return hi;
  if (std::signbit(flo) == std::signbit(fhi)) {
    throw std::invalid_argument("bisect_root: no sign change on bracket");
  }
  while (hi - lo > tol) {
    const double mid = 0.5 * (lo + hi);
    // Adjacent doubles: the midpoint rounds back onto an endpoint and
    // the bracket can never reach a tol below its ULP spacing.
    if (mid == lo || mid == hi) return mid;
    const double fmid = f(mid);
    if (fmid == 0.0) return mid;
    if (std::signbit(fmid) == std::signbit(flo)) {
      lo = mid;
      flo = fmid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace adacheck::util
