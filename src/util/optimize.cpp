#include "util/optimize.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace adacheck::util {

ScalarMinimum golden_section_minimize(const std::function<double(double)>& f,
                                      double lo, double hi, double tol) {
  if (!(hi >= lo)) throw std::invalid_argument("golden_section: hi < lo");
  constexpr double invphi = 0.6180339887498949;   // 1/phi
  constexpr double invphi2 = 0.3819660112501051;  // 1/phi^2
  double a = lo, b = hi;
  double c = a + invphi2 * (b - a);
  double d = a + invphi * (b - a);
  double fc = f(c), fd = f(d);
  while (b - a > tol) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = a + invphi2 * (b - a);
      fc = f(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + invphi * (b - a);
      fd = f(d);
    }
  }
  const double xm = 0.5 * (a + b);
  return {xm, f(xm)};
}

IntegerMinimum integer_argmin(const std::function<double(std::int64_t)>& f,
                              std::int64_t lo, std::int64_t hi,
                              int early_stop_rises) {
  if (lo > hi) throw std::invalid_argument("integer_argmin: lo > hi");
  IntegerMinimum best{lo, f(lo)};
  double prev = best.fx;
  int rises = 0;
  for (std::int64_t x = lo + 1; x <= hi; ++x) {
    const double fx = f(x);
    if (fx < best.fx) {
      best = {x, fx};
    }
    if (early_stop_rises > 0) {
      rises = fx > prev ? rises + 1 : 0;
      if (rises >= early_stop_rises) break;
    }
    prev = fx;
  }
  return best;
}

double bisect_root(const std::function<double(double)>& f, double lo,
                   double hi, double tol) {
  double flo = f(lo), fhi = f(hi);
  if (flo == 0.0) return lo;
  if (fhi == 0.0) return hi;
  if (std::signbit(flo) == std::signbit(fhi)) {
    throw std::invalid_argument("bisect_root: no sign change on bracket");
  }
  while (hi - lo > tol) {
    const double mid = 0.5 * (lo + hi);
    const double fmid = f(mid);
    if (fmid == 0.0) return mid;
    if (std::signbit(fmid) == std::signbit(flo)) {
      lo = mid;
      flo = fmid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace adacheck::util
