#include "util/canonical_json.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace adacheck::util {

namespace {

void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  // The parser rejects NaN/Infinity literals, so every parsed number
  // is finite; emit the shortest round-trip form (the same formatting
  // the report writer uses, so canonical text and reports agree on
  // number spelling).
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);
}

void append_canonical(std::string& out, const json::Value& value) {
  switch (value.kind()) {
    case json::Kind::kNull:
      out += "null";
      return;
    case json::Kind::kBool:
      out += value.as_bool() ? "true" : "false";
      return;
    case json::Kind::kNumber:
      append_number(out, value.as_number());
      return;
    case json::Kind::kString:
      append_escaped(out, value.as_string());
      return;
    case json::Kind::kArray: {
      out += '[';
      bool first = true;
      for (const auto& element : value.as_array()) {
        if (!first) out += ',';
        first = false;
        append_canonical(out, element);
      }
      out += ']';
      return;
    }
    case json::Kind::kObject: {
      // Sort members bytewise by key; the parser already rejected
      // duplicates, so the order is total.
      const auto& object = value.as_object();
      std::vector<const json::Member*> members;
      members.reserve(object.size());
      for (const auto& member : object) members.push_back(&member);
      std::sort(members.begin(), members.end(),
                [](const json::Member* a, const json::Member* b) {
                  return a->first < b->first;
                });
      out += '{';
      bool first = true;
      for (const auto* member : members) {
        if (!first) out += ',';
        first = false;
        append_escaped(out, member->first);
        out += ':';
        append_canonical(out, member->second);
      }
      out += '}';
      return;
    }
  }
}

/// splitmix64 finalizer: full-avalanche bit mix.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

std::string canonical_json(const json::Value& value) {
  std::string out;
  append_canonical(out, value);
  return out;
}

std::string Hash128::hex() const {
  char buf[33];
  std::snprintf(buf, sizeof buf, "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buf;
}

Hash128 content_hash128(std::string_view bytes) {
  // Two FNV-1a-64 lanes decorrelated by basis and per-byte tweak; the
  // splitmix64 finalizer fixes FNV's weak high-bit diffusion.  Pinned
  // by known-answer tests — do not change without bumping the cache
  // code-version story (src/campaign).
  constexpr std::uint64_t kPrime = 0x100000001B3ULL;
  std::uint64_t h1 = 0xCBF29CE484222325ULL;  // FNV offset basis
  std::uint64_t h2 = 0x6C62272E07BB0142ULL;  // FNV-1a-128 basis high word
  for (const char c : bytes) {
    const auto b = static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h1 = (h1 ^ b) * kPrime;
    h2 = (h2 ^ (b + 0x9EULL)) * kPrime;
  }
  // Fold the length in so lane collisions cannot align across sizes.
  h1 = mix64(h1 ^ static_cast<std::uint64_t>(bytes.size()));
  h2 = mix64(h2 + 0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(bytes.size()));
  return {h1, h2};
}

}  // namespace adacheck::util
