// Deterministic, splittable pseudo-random number generation for the
// simulation substrate.
//
// Monte-Carlo experiments need (a) reproducibility given a master seed,
// (b) statistically independent streams per run so runs can execute on
// any thread in any order, and (c) fast exponential sampling for Poisson
// fault processes.  We implement SplitMix64 (seed expansion / stream
// derivation) and xoshiro256** (bulk generation), both public-domain
// algorithms by Blackman & Vigna, plus the distribution helpers used
// throughout the library.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace adacheck::util {

/// SplitMix64: a tiny 64-bit PRNG mainly used to expand seeds and derive
/// independent sub-stream seeds.  Passes BigCrush; period 2^64.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next 64 uniformly distributed bits.
  std::uint64_t next() noexcept;

 private:
  std::uint64_t state_;
};

/// xoshiro256**: general-purpose 256-bit-state PRNG.  Period 2^256-1.
/// Satisfies UniformRandomBitGenerator so it composes with <random>.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the 256-bit state by running SplitMix64 on `seed`, per the
  /// reference implementation's recommendation.
  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept;

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double uniform01() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Exponentially distributed variate with the given rate (mean 1/rate).
  /// rate <= 0 yields +infinity (the event never happens).
  double exponential(double rate) noexcept;

  /// Standard normal variate via Box-Muller (cosine branch).  Consumes
  /// exactly two uniforms per call, so streams stay reproducible
  /// without cached-spare state.
  double normal01() noexcept;

  /// Normal variate with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Weibull variate with shape k > 0 and scale > 0 (mean
  /// scale * Gamma(1 + 1/k)) by CDF inversion.  Consumes one uniform.
  double weibull(double shape, double scale) noexcept;

  /// Log-normal variate: exp(N(mu, sigma^2)).  Consumes two uniforms.
  double lognormal(double mu, double sigma) noexcept;

  /// Gamma variate with shape k > 0 and scale > 0 (mean k * scale) by
  /// Marsaglia-Tsang squeeze; rejection makes the uniform consumption
  /// data-dependent (still fully determined by the seed).
  double gamma(double shape, double scale) noexcept;

  /// Uniform integer in [0, n).  n must be > 0.
  std::uint64_t below(std::uint64_t n) noexcept;

 private:
  std::array<std::uint64_t, 4> s_;
};

/// Derives the seed for sub-stream `stream` of a master seed.  Distinct
/// streams are statistically independent; the mapping is stable across
/// platforms, so experiment cells are reproducible regardless of the
/// thread that executes them.
std::uint64_t derive_seed(std::uint64_t master, std::uint64_t stream) noexcept;

/// Samples the arrival times of a homogeneous Poisson process with the
/// given rate on [0, horizon), sorted ascending.  rate <= 0 or
/// horizon <= 0 gives an empty vector.
std::vector<double> poisson_arrivals(Xoshiro256& rng, double rate,
                                     double horizon);

}  // namespace adacheck::util
