#include "util/rng.hpp"

#include <cmath>
#include <limits>

namespace adacheck::util {

std::uint64_t SplitMix64::next() noexcept {
  std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

Xoshiro256::result_type Xoshiro256::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Xoshiro256::uniform01() noexcept {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Xoshiro256::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01();
}

double Xoshiro256::exponential(double rate) noexcept {
  if (rate <= 0.0) return std::numeric_limits<double>::infinity();
  // -log(1-U) with U in [0,1) avoids log(0).
  return -std::log1p(-uniform01()) / rate;
}

double Xoshiro256::normal01() noexcept {
  // Box-Muller on (0, 1] x [0, 1): 1 - uniform01() keeps the log away
  // from zero without rejection, preserving the two-draws-per-variate
  // contract that keeps fault streams reproducible.
  const double u1 = 1.0 - uniform01();
  const double u2 = uniform01();
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
}

double Xoshiro256::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal01();
}

double Xoshiro256::weibull(double shape, double scale) noexcept {
  // Inverse CDF: scale * (-log(1-U))^(1/shape); -log1p(-U) reuses the
  // exponential trick to avoid log(0).
  return scale * std::pow(-std::log1p(-uniform01()), 1.0 / shape);
}

double Xoshiro256::lognormal(double mu, double sigma) noexcept {
  return std::exp(mu + sigma * normal01());
}

double Xoshiro256::gamma(double shape, double scale) noexcept {
  // Marsaglia & Tsang (2000).  Shapes below 1 are boosted to shape+1
  // and corrected by U^(1/shape) (their Note 2).
  if (shape < 1.0) {
    const double boosted = gamma(shape + 1.0, scale);
    return boosted * std::pow(uniform01(), 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x, v;
    do {
      x = normal01();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = 1.0 - uniform01();  // (0, 1]: log(u) stays finite
    const double x2 = x * x;
    if (u < 1.0 - 0.0331 * x2 * x2) return d * v * scale;
    if (std::log(u) < 0.5 * x2 + d * (1.0 - v + std::log(v))) {
      return d * v * scale;
    }
  }
}

std::uint64_t Xoshiro256::below(std::uint64_t n) noexcept {
  // Lemire's multiply-shift rejection method: unbiased and branch-light.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t derive_seed(std::uint64_t master, std::uint64_t stream) noexcept {
  SplitMix64 sm(master ^ (0xA0761D6478BD642FULL + stream * 0xE7037ED1A0B428DBULL));
  sm.next();
  return sm.next();
}

std::vector<double> poisson_arrivals(Xoshiro256& rng, double rate,
                                     double horizon) {
  std::vector<double> times;
  if (rate <= 0.0 || horizon <= 0.0) return times;
  double t = rng.exponential(rate);
  while (t < horizon) {
    times.push_back(t);
    t += rng.exponential(rate);
  }
  return times;
}

}  // namespace adacheck::util
