// Shared worker-thread pool for the simulation subsystem.
//
// Monte-Carlo cells, experiment grids, and sweeps all decompose into
// independent chunks of runs.  Before this pool existed every
// `run_cell` call spawned and joined its own std::thread set; now one
// process-wide set of persistent workers drains a single task queue,
// so a whole table sweep is one flat queue instead of N sequential
// cells each paying thread start-up.
//
// Concurrency model ("work-stealing-lite"):
//  * ThreadPool owns the workers and a FIFO queue of tasks, each
//    tagged with the TaskGroup that submitted it.
//  * TaskGroup tracks completion of its own tasks.  `wait()` does not
//    just block: the waiting thread first *helps*, executing queued
//    tasks of its own group.  This keeps nested use safe — a task
//    running on a worker may itself create a group, submit, and wait
//    without deadlocking, even on a single-worker pool.
//  * The first exception thrown by a group's task is captured and
//    rethrown from `wait()`; remaining tasks still run to completion.
//
// Determinism: the pool never reorders results — callers index output
// slots by task, so the merge order (and therefore floating-point
// rounding) is independent of which worker ran what.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace adacheck::util {

class TaskGroup;

class ThreadPool {
 public:
  /// Starts `threads` persistent workers; 0 means default_concurrency().
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (>= 1).
  int size() const noexcept { return static_cast<int>(workers_.size()); }

  /// Hardware concurrency clamped to >= 1.
  static int default_concurrency() noexcept;

  /// Process-wide pool shared by run_cell / run_cells / run_sweep.
  /// Its first use fixes the worker count: a set_shared_size() request
  /// if one was made, else the ADACHECK_THREADS environment variable,
  /// else default_concurrency().  Statistics never depend on the
  /// choice — chunking and merge order are thread-count independent —
  /// so resizing only trades wall-clock for cores.
  static ThreadPool& shared();

  /// Requests the shared() pool's worker count before its first use
  /// (the --threads plumbing of benches, examples, and the adacheck
  /// driver).  threads <= 0 means "keep the default" and is always
  /// accepted.  Once shared() exists its size is fixed: re-requesting
  /// the current size is a no-op, any other size throws
  /// std::logic_error.
  static void set_shared_size(int threads);

  /// Parses a thread-count override ("6" -> 6).  Returns 0 — meaning
  /// "use the default" — for null, empty, non-numeric, or
  /// non-positive text.  Used for ADACHECK_THREADS; exposed for tests.
  static int parse_thread_override(const char* text) noexcept;

 private:
  friend class TaskGroup;

  struct Task {
    std::function<void()> fn;
    TaskGroup* group = nullptr;
    /// obs::now_micros() at enqueue when telemetry is enabled, else 0;
    /// execute() derives pool.task_wait_us from it.
    std::uint64_t enqueued_us = 0;
  };

  void enqueue(Task task);
  /// Pops and executes one queued task belonging to `group` (any task
  /// when null).  Returns false when no matching task was queued.
  bool try_run_one(const TaskGroup* group);
  static void execute(Task task) noexcept;
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Task> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Completion tracker for one batch of tasks.  Not reusable across
/// pools; a group may be reused for further batches after wait().
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool) noexcept : pool_(pool) {}
  /// Blocks until all submitted tasks finished (exceptions swallowed —
  /// call wait() explicitly to observe them).
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Submits one task to the pool under this group.
  void run(std::function<void()> fn);

  /// Helps execute this group's queued tasks, then blocks until every
  /// submitted task completed.  Rethrows the first captured exception.
  void wait();

 private:
  friend class ThreadPool;
  void finish(std::exception_ptr error) noexcept;
  void wait_pending() noexcept;

  ThreadPool& pool_;
  std::mutex mu_;
  std::condition_variable done_;
  std::size_t pending_ = 0;
  std::exception_ptr error_;
};

/// Runs body(lo, hi) over [begin, end) in blocks of `grain`, claimed
/// dynamically by an atomic cursor so fast workers take more blocks.
/// Blocks may execute concurrently and in any order; `body` must be
/// thread-safe.  Rethrows the first exception a block throws.
/// `max_parallelism` caps concurrency (0 = pool width + the helping
/// caller).  Returns the parallelism actually applied: the number of
/// claimant tasks, min(blocks, cap, pool width + 1).
int parallel_for(ThreadPool& pool, int begin, int end, int grain,
                 const std::function<void(int, int)>& body,
                 int max_parallelism = 0);

}  // namespace adacheck::util
