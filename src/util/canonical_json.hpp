// Canonical JSON and stable content hashing — the identity layer of
// the campaign result cache.
//
// canonical_json re-serializes a parsed util::json::Value into one
// normal form: object keys sorted bytewise, no whitespace, shortest
// round-trip doubles, minimal string escaping.  Two documents that
// differ only in key order, inter-token whitespace, or number spelling
// ("1e2" vs "100.0") canonicalize to identical bytes — which is what
// makes a content fingerprint stable under cosmetic edits to a
// scenario or campaign file.  Array order is semantic in every
// adacheck schema (grids, scheme lists, seeds) and is preserved.
//
// content_hash128 is the companion digest: a stable, non-cryptographic
// 128-bit hash (two decorrelated FNV-1a-64 lanes, each finalized with
// the splitmix64 avalanche) whose value depends only on the input
// bytes — never on platform, thread count, or process.  Cache keys and
// result digests must stay comparable across runs and machines, so the
// algorithm is pinned by known-answer tests; changing it invalidates
// every existing campaign cache (which the code-version fingerprint
// component makes observable, see src/campaign).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/json.hpp"

namespace adacheck::util {

/// The canonical serialization of a parsed JSON document (see file
/// comment).  Total: every Value kind has exactly one encoding.
std::string canonical_json(const json::Value& value);

/// A 128-bit digest, comparable and hex-printable.
struct Hash128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  /// 32 lowercase hex characters, hi lane first.
  std::string hex() const;

  friend bool operator==(const Hash128&, const Hash128&) = default;
};

/// Stable content hash of a byte string (see file comment).  Not
/// cryptographic: fine for cache keys and corruption checks, not for
/// adversarial inputs.
Hash128 content_hash128(std::string_view bytes);

}  // namespace adacheck::util
