// Small string helpers for error messages: "did you mean" suggestions
// against a candidate list (CLI flags, registry names, schema keys)
// and list joining.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace adacheck::util {

/// Levenshtein edit distance (insertions, deletions, substitutions).
std::size_t edit_distance(std::string_view a, std::string_view b);

/// The candidate closest to `name` when the distance is small enough
/// to plausibly be a typo (<= 1 + |name|/4); empty string when nothing
/// qualifies.  Ties go to the earlier candidate.
std::string closest_match(std::string_view name,
                          const std::vector<std::string>& candidates);

/// Joins items with a separator ("a, b, c").
std::string join(const std::vector<std::string>& items,
                 std::string_view separator);

}  // namespace adacheck::util
