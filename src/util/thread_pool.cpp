#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace adacheck::util {

namespace {

/// Telemetry handles, resolved once; every hot-path site gates on
/// obs::Registry::instance().enabled() before touching them, so the
/// disabled cost is one relaxed load.
struct PoolMetrics {
  obs::Counter& tasks_enqueued;
  obs::Counter& tasks_helped;
  obs::Gauge& queue_depth;
  obs::LatencyHisto& task_wait_us;
  obs::LatencyHisto& task_run_us;

  static PoolMetrics& get() {
    static PoolMetrics* const metrics = new PoolMetrics{
        obs::Registry::instance().counter("pool.tasks_enqueued"),
        obs::Registry::instance().counter("pool.tasks_helped"),
        obs::Registry::instance().gauge("pool.queue_depth"),
        obs::Registry::instance().histogram("pool.task_wait_us"),
        obs::Registry::instance().histogram("pool.task_run_us")};
    return *metrics;
  }
};

/// Guards the shared-pool size request; a function-local static so the
/// mutex exists before any static-initialization-order shenanigans.
std::mutex& shared_size_mutex() {
  static std::mutex mu;
  return mu;
}
int g_shared_size_request = 0;  // 0 = default
bool g_shared_pool_built = false;

int resolve_shared_size() {
  std::lock_guard<std::mutex> lock(shared_size_mutex());
  g_shared_pool_built = true;
  if (g_shared_size_request > 0) return g_shared_size_request;
  const int from_env =
      ThreadPool::parse_thread_override(std::getenv("ADACHECK_THREADS"));
  if (from_env > 0) return from_env;
  return ThreadPool::default_concurrency();
}

}  // namespace

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) threads = default_concurrency();
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

int ThreadPool::default_concurrency() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(resolve_shared_size());
  return pool;
}

void ThreadPool::set_shared_size(int threads) {
  if (threads <= 0) return;
  {
    std::lock_guard<std::mutex> lock(shared_size_mutex());
    if (!g_shared_pool_built) {
      g_shared_size_request = threads;
      return;
    }
  }
  if (shared().size() != threads) {
    throw std::logic_error(
        "ThreadPool::set_shared_size(" + std::to_string(threads) +
        "): shared pool already running " + std::to_string(shared().size()) +
        " workers; request the size before the first simulation");
  }
}

int ThreadPool::parse_thread_override(const char* text) noexcept {
  if (text == nullptr || *text == '\0') return 0;
  errno = 0;
  char* end = nullptr;
  const long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0') return 0;
  if (errno == ERANGE || value <= 0 || value > 4096) return 0;
  return static_cast<int>(value);
}

void ThreadPool::enqueue(Task task) {
  const bool telemetry = obs::Registry::instance().enabled();
  if (telemetry) task.enqueued_us = obs::now_micros();
  std::size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      throw std::runtime_error("ThreadPool: submit after shutdown");
    }
    queue_.push_back(std::move(task));
    depth = queue_.size();
  }
  if (telemetry) {
    auto& metrics = PoolMetrics::get();
    metrics.tasks_enqueued.add(1);
    metrics.queue_depth.set(static_cast<long long>(depth));
  }
  cv_.notify_one();
}

void ThreadPool::execute(Task task) noexcept {
  const bool telemetry =
      obs::Registry::instance().enabled() && task.enqueued_us != 0;
  std::uint64_t start = 0;
  if (telemetry) {
    start = obs::now_micros();
    PoolMetrics::get().task_wait_us.record(start - task.enqueued_us);
  }
  std::exception_ptr error;
  try {
    task.fn();
  } catch (...) {
    error = std::current_exception();
  }
  if (telemetry) {
    const std::uint64_t end = obs::now_micros();
    PoolMetrics::get().task_run_us.record(end - start);
    obs::Tracer::instance().complete("task", "pool", start, end - start);
  }
  task.group->finish(error);
}

bool ThreadPool::try_run_one(const TaskGroup* group) {
  Task task;
  std::size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = group == nullptr
                        ? queue_.begin()
                        : std::find_if(queue_.begin(), queue_.end(),
                                       [group](const Task& t) {
                                         return t.group == group;
                                       });
    if (it == queue_.end()) return false;
    task = std::move(*it);
    queue_.erase(it);
    depth = queue_.size();
  }
  if (obs::Registry::instance().enabled()) {
    // A waiter executing a queued task in place of a worker — the
    // pool's flavor of work stealing.
    auto& metrics = PoolMetrics::get();
    metrics.tasks_helped.add(1);
    metrics.queue_depth.set(static_cast<long long>(depth));
  }
  execute(std::move(task));
  return true;
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Drain the queue before honoring shutdown so submitted groups
      // always complete.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      if (obs::Registry::instance().enabled()) {
        PoolMetrics::get().queue_depth.set(
            static_cast<long long>(queue_.size()));
      }
    }
    execute(std::move(task));
  }
}

TaskGroup::~TaskGroup() {
  while (pool_.try_run_one(this)) {
  }
  wait_pending();
}

void TaskGroup::run(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++pending_;
  }
  try {
    pool_.enqueue({std::move(fn), this});
  } catch (...) {
    finish(std::current_exception());
    throw;
  }
}

void TaskGroup::wait() {
  // Help: run our own queued tasks on this thread, then block for any
  // still executing on workers.
  while (pool_.try_run_one(this)) {
  }
  wait_pending();
  std::lock_guard<std::mutex> lock(mu_);
  if (error_) {
    std::exception_ptr error = std::exchange(error_, nullptr);
    std::rethrow_exception(error);
  }
}

void TaskGroup::finish(std::exception_ptr error) noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  if (error && !error_) error_ = error;
  if (--pending_ == 0) done_.notify_all();
}

void TaskGroup::wait_pending() noexcept {
  std::unique_lock<std::mutex> lock(mu_);
  done_.wait(lock, [this] { return pending_ == 0; });
}

int parallel_for(ThreadPool& pool, int begin, int end, int grain,
                 const std::function<void(int, int)>& body,
                 int max_parallelism) {
  if (begin >= end) return 0;
  if (grain < 1) grain = 1;
  const int blocks = (end - begin + grain - 1) / grain;
  // One claiming task per worker plus the helping waiter; the atomic
  // cursor hands out blocks dynamically ("stealing" from slow peers).
  int claimants = std::min(blocks, pool.size() + 1);
  if (max_parallelism > 0) claimants = std::min(claimants, max_parallelism);
  std::atomic<int> cursor{0};
  TaskGroup group(pool);
  for (int c = 0; c < claimants; ++c) {
    group.run([&] {
      for (;;) {
        const int b = cursor.fetch_add(1, std::memory_order_relaxed);
        if (b >= blocks) return;
        const int lo = begin + b * grain;
        body(lo, std::min(end, lo + grain));
      }
    });
  }
  group.wait();
  return claimants;
}

}  // namespace adacheck::util
