// Leveled stderr logging.  The simulator itself never logs on hot paths;
// logging is for harness progress reporting and example narration.
#pragma once

#include <optional>
#include <sstream>
#include <string>

namespace adacheck::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold; messages below it are dropped.  Defaults to kInfo.
void set_log_level(LogLevel level);
LogLevel log_level() noexcept;

/// Parses "debug"/"info"/"warn"/"error" (case-insensitive; "warning"
/// accepted).  nullopt on anything else — the --log-level flag and
/// ADACHECK_LOG env var both route through this.
std::optional<LogLevel> parse_log_level(const std::string& text) noexcept;

/// Emits one line "[LEVEL] message" to stderr if enabled.  Thread-safe.
void log_message(LogLevel level, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::kDebug)
    log_message(LogLevel::kDebug, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::kInfo)
    log_message(LogLevel::kInfo, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::kWarn)
    log_message(LogLevel::kWarn, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_error(Args&&... args) {
  if (log_level() <= LogLevel::kError)
    log_message(LogLevel::kError, detail::concat(std::forward<Args>(args)...));
}

}  // namespace adacheck::util
