// Scalar minimization and root finding used by the analytic layer.
//
// The paper's Fig. 2 procedure first minimizes the renewal cost over a
// continuous sub-interval length T1 (we use golden-section search on a
// unimodal bracket) and then rounds the implied count m to the better
// of floor/ceil.  num_SCP/num_CCP also cross-check with a direct integer
// scan, which these helpers support.
#pragma once

#include <cstdint>
#include <functional>

namespace adacheck::util {

struct ScalarMinimum {
  double x = 0.0;  ///< argmin
  double fx = 0.0; ///< f(argmin)
};

/// Golden-section search for the minimum of a unimodal f on [lo, hi].
/// Runs until the bracket is narrower than tol (absolute).  If f is not
/// unimodal the result is a local minimum inside the bracket.  Throws
/// std::invalid_argument on a non-finite bracket, hi < lo, or a
/// tolerance that is not finite and positive.
ScalarMinimum golden_section_minimize(const std::function<double(double)>& f,
                                      double lo, double hi,
                                      double tol = 1e-7);

struct IntegerMinimum {
  std::int64_t x = 1;
  double fx = 0.0;
};

/// Scans f over integers [lo, hi] and returns the argmin.  If
/// `early_stop_rises` > 0 the scan stops after the value has risen that
/// many consecutive times (valid shortcut for convex/unimodal costs such
/// as the renewal equations, where the tail is monotone increasing).
IntegerMinimum integer_argmin(const std::function<double(std::int64_t)>& f,
                              std::int64_t lo, std::int64_t hi,
                              int early_stop_rises = 0);

/// Bisection root finder for continuous f with f(lo), f(hi) of opposite
/// sign.  Returns the root to within tol.  Throws std::invalid_argument
/// if the bracket does not straddle a sign change, is non-finite, or
/// the tolerance is not finite and positive.
double bisect_root(const std::function<double(double)>& f, double lo,
                   double hi, double tol = 1e-10);

}  // namespace adacheck::util
