#include "util/statistics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace adacheck::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::mean() const noexcept {
  return n_ == 0 ? std::numeric_limits<double>::quiet_NaN() : mean_;
}

double RunningStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::sem() const noexcept {
  return n_ < 2 ? 0.0 : stddev() / std::sqrt(static_cast<double>(n_));
}

double RunningStats::ci95_halfwidth() const noexcept { return 1.96 * sem(); }

double RunningStats::rel_ci95_halfwidth() const noexcept {
  if (n_ < 2) return std::numeric_limits<double>::quiet_NaN();
  const double m = mean();
  if (!std::isfinite(m) || m == 0.0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return ci95_halfwidth() / std::abs(m);
}

double RunningStats::min() const noexcept {
  return n_ == 0 ? std::numeric_limits<double>::quiet_NaN() : min_;
}

double RunningStats::max() const noexcept {
  return n_ == 0 ? std::numeric_limits<double>::quiet_NaN() : max_;
}

void BinomialStats::add(bool success) noexcept {
  ++trials_;
  if (success) ++successes_;
}

void BinomialStats::merge(const BinomialStats& other) noexcept {
  trials_ += other.trials_;
  successes_ += other.successes_;
}

double BinomialStats::proportion() const noexcept {
  if (trials_ == 0) return std::numeric_limits<double>::quiet_NaN();
  return static_cast<double>(successes_) / static_cast<double>(trials_);
}

namespace {
// Wilson score bound; sign = -1 for lower, +1 for upper.
double wilson_bound(std::size_t successes, std::size_t trials, int sign) {
  if (trials == 0) return std::numeric_limits<double>::quiet_NaN();
  constexpr double z = 1.96;
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = p + z2 / (2.0 * n);
  const double margin = z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  return std::clamp((center + sign * margin) / denom, 0.0, 1.0);
}
}  // namespace

double wilson95_lower(std::size_t successes, std::size_t trials) noexcept {
  return wilson_bound(successes, trials, -1);
}

double wilson95_upper(std::size_t successes, std::size_t trials) noexcept {
  return wilson_bound(successes, trials, +1);
}

double wilson95_halfwidth(std::size_t successes, std::size_t trials) noexcept {
  if (trials == 0) return std::numeric_limits<double>::quiet_NaN();
  // Canonicalize to the smaller tail: the half-width is symmetric
  // under the success/failure swap, and routing both readings through
  // identical operands makes that symmetry exact, not just
  // approximate — P(miss) and P(success) targets stop at the same
  // chunk.
  const std::size_t s = std::min(successes, trials - successes);
  return (wilson_bound(s, trials, +1) - wilson_bound(s, trials, -1)) / 2.0;
}

double BinomialStats::wilson_lo() const noexcept {
  return wilson95_lower(successes_, trials_);
}

double BinomialStats::wilson_hi() const noexcept {
  return wilson95_upper(successes_, trials_);
}

double BinomialStats::wilson_halfwidth() const noexcept {
  return wilson95_halfwidth(successes_, trials_);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  if (!(hi > lo) || bins == 0) {
    throw std::invalid_argument("Histogram requires hi > lo and bins > 0");
  }
}

void Histogram::add(double x) noexcept {
  // Casting a NaN or ±inf offset to an integer is UB, so resolve the
  // bin with explicit range checks: NaN is tallied separately, and
  // out-of-range values (±inf included) clamp to the edge bins.
  if (std::isnan(x)) {
    ++nan_count_;
    return;
  }
  std::size_t idx;
  if (x <= lo_) {
    idx = 0;
  } else if (x >= hi_) {
    idx = counts_.size() - 1;
  } else {
    idx = std::min(static_cast<std::size_t>((x - lo_) / width_),
                   counts_.size() - 1);
  }
  ++counts_[idx];
  ++total_;
}

void Histogram::merge(const Histogram& other) {
  if (lo_ != other.lo_ || hi_ != other.hi_ ||
      counts_.size() != other.counts_.size()) {
    throw std::invalid_argument(
        "Histogram::merge: bounds and bin count must match");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
  nan_count_ += other.nan_count_;
}

std::size_t Histogram::bin_count(std::size_t i) const { return counts_.at(i); }

double Histogram::bin_lo(std::size_t i) const {
  if (i >= counts_.size()) throw std::out_of_range("Histogram::bin_lo");
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i) + width_; }

double Histogram::quantile(double q) const {
  if (total_ == 0) return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    // Empty bins can satisfy `next >= target` when target == 0 (q == 0
    // with empty leading bins); the quantile must land in a populated
    // bin, so skip bins that contribute no mass.
    if (counts_[i] > 0 && next >= target) {
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      return bin_lo(i) + frac * width_;
    }
    cum = next;
  }
  return hi_;
}

}  // namespace adacheck::util
