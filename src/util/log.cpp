#include "util/log.hpp"

#include <atomic>
#include <cctype>
#include <iostream>
#include <mutex>

namespace adacheck::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() noexcept { return g_level.load(); }

std::optional<LogLevel> parse_log_level(const std::string& text) noexcept {
  std::string lower;
  lower.reserve(text.size());
  for (const char c : text) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  return std::nullopt;
}

void log_message(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::cerr << '[' << level_name(level) << "] " << message << '\n';
}

}  // namespace adacheck::util
