// The code-version string: one identifier shared by `adacheck
// --version`, every report's config object, and the campaign cache
// fingerprint — so "which code produced this result" and "is this
// cached result still valid" are answered by the same value.  Bumping
// the CMake project VERSION invalidates every campaign cache entry
// (the fingerprint changes), which is exactly the conservative default
// for a code change.
#pragma once

#include <string>

namespace adacheck::util {

/// The project version ("0.2.0"), injected by CMake via the
/// ADACHECK_VERSION compile definition; a placeholder when built
/// outside CMake so the string is never empty.
const std::string& version_string();

}  // namespace adacheck::util
