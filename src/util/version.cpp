#include "util/version.hpp"

namespace adacheck::util {

const std::string& version_string() {
#ifdef ADACHECK_VERSION
  static const std::string version = ADACHECK_VERSION;
#else
  static const std::string version = "0.0.0-unversioned";
#endif
  return version;
}

}  // namespace adacheck::util
