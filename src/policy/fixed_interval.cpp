#include "policy/fixed_interval.hpp"

#include <algorithm>

#include "analytic/intervals.hpp"

namespace adacheck::policy {

sim::Decision PoissonArrivalPolicy::initial(const sim::ExecContext& ctx) {
  const auto& level = ctx.processor->level(level_);
  const double cost_time = ctx.costs->cscp() / level.frequency;
  const double work_time = ctx.remaining_cycles / level.frequency;
  sim::Decision d;
  d.speed = level;
  d.cscp_interval = std::min(
      analytic::poisson_interval(cost_time, ctx.lambda), work_time);
  d.sub_interval = d.cscp_interval;
  d.inner = sim::InnerKind::kNone;
  plan_ = d;
  return d;
}

sim::Decision PoissonArrivalPolicy::on_fault(const sim::ExecContext&) {
  return plan_;  // fixed scheme: never adapts
}

sim::Decision KFaultTolerantPolicy::initial(const sim::ExecContext& ctx) {
  const auto& level = ctx.processor->level(level_);
  const double cost_time = ctx.costs->cscp() / level.frequency;
  const double work_time = ctx.remaining_cycles / level.frequency;
  sim::Decision d;
  d.speed = level;
  d.cscp_interval =
      std::min(analytic::k_fault_interval(work_time,
                                          ctx.task->fault_tolerance, cost_time),
               work_time);
  d.sub_interval = d.cscp_interval;
  d.inner = sim::InnerKind::kNone;
  plan_ = d;
  return d;
}

sim::Decision KFaultTolerantPolicy::on_fault(const sim::ExecContext&) {
  return plan_;
}

}  // namespace adacheck::policy
