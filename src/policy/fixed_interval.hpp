// The two fixed-interval baseline schemes the paper compares against.
//
// Both place only CSCPs at a constant interval computed once, run at a
// fixed processor speed, and never adapt — exactly the "Poisson" and
// "k-f-t" columns of Tables 1-4.
#pragma once

#include <cstddef>

#include "sim/policy.hpp"

namespace adacheck::policy {

/// Poisson-arrival scheme (Duda): constant interval I1 = sqrt(2C/lambda)
/// at the configured speed level, where C = (t_s + t_cp)/f.
class PoissonArrivalPolicy final : public sim::ICheckpointPolicy {
 public:
  /// `level` indexes the processor's speed table (0 = slowest).
  explicit PoissonArrivalPolicy(std::size_t level = 0) : level_(level) {}

  std::string name() const override { return "Poisson"; }
  bool reset() override {
    plan_ = {};
    return true;
  }
  sim::Decision initial(const sim::ExecContext& ctx) override;
  sim::Decision on_fault(const sim::ExecContext& ctx) override;

 private:
  std::size_t level_;
  sim::Decision plan_{};
};

/// k-fault-tolerant scheme (Lee/Shin/Min): constant interval
/// I2 = sqrt(N*C/k) sized from the whole task's worst case.
class KFaultTolerantPolicy final : public sim::ICheckpointPolicy {
 public:
  explicit KFaultTolerantPolicy(std::size_t level = 0) : level_(level) {}

  std::string name() const override { return "k-f-t"; }
  bool reset() override {
    plan_ = {};
    return true;
  }
  sim::Decision initial(const sim::ExecContext& ctx) override;
  sim::Decision on_fault(const sim::ExecContext& ctx) override;

 private:
  std::size_t level_;
  sim::Decision plan_{};
};

}  // namespace adacheck::policy
