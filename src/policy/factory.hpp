// By-name policy construction for the harness, benches, and examples.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/monte_carlo.hpp"
#include "sim/policy.hpp"

namespace adacheck::policy {

/// Builds a policy by scheme name.  Recognized names (paper's labels):
///   "Poisson"      Poisson-arrival baseline (at `baseline_level`)
///   "k-f-t"        k-fault-tolerant baseline (at `baseline_level`)
///   "A_D"          ADT_DVS adaptive baseline of ref [3]
///   "A_D_S"        adapchp_dvs_SCP (Fig. 6)
///   "A_D_C"        adapchp_dvs_CCP (Fig. 7)
///   "adapchp-SCP"  non-DVS adaptive with SCPs (Fig. 3)
///   "adapchp-CCP"  non-DVS adaptive with CCPs (§2.2)
///   "A_D-est", "A_D_S-est", "A_D_C-est"
///                  rate-tracking variants: the adaptive rule blends
///                  the nominal lambda with the observed inter-fault
///                  gap rate (for non-Poisson fault environments)
/// Throws std::invalid_argument for unknown names.
std::unique_ptr<sim::ICheckpointPolicy> make_policy(
    const std::string& name, std::size_t baseline_level = 0);

/// A factory closure suitable for sim::run_cell.
sim::PolicyFactory make_policy_factory(const std::string& name,
                                       std::size_t baseline_level = 0);

/// All scheme names recognized by make_policy.
std::vector<std::string> known_policies();

}  // namespace adacheck::policy
