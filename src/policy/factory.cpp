#include "policy/factory.hpp"

#include <stdexcept>

#include "policy/adaptive.hpp"
#include "policy/fixed_interval.hpp"

namespace adacheck::policy {

std::unique_ptr<sim::ICheckpointPolicy> make_policy(
    const std::string& name, std::size_t baseline_level) {
  if (name == "Poisson") {
    return std::make_unique<PoissonArrivalPolicy>(baseline_level);
  }
  if (name == "k-f-t") {
    return std::make_unique<KFaultTolerantPolicy>(baseline_level);
  }
  if (name == "A_D") {
    return std::make_unique<AdaptiveCheckpointPolicy>(
        AdaptiveCheckpointPolicy::adt_dvs());
  }
  if (name == "A_D_S") {
    return std::make_unique<AdaptiveCheckpointPolicy>(
        AdaptiveCheckpointPolicy::adapchp_dvs_scp());
  }
  if (name == "A_D_C") {
    return std::make_unique<AdaptiveCheckpointPolicy>(
        AdaptiveCheckpointPolicy::adapchp_dvs_ccp());
  }
  if (name == "adapchp-SCP") {
    auto config = AdaptiveCheckpointPolicy::adapchp_scp();
    config.fixed_level = baseline_level;
    return std::make_unique<AdaptiveCheckpointPolicy>(config);
  }
  if (name == "adapchp-CCP") {
    auto config = AdaptiveCheckpointPolicy::adapchp_ccp();
    config.fixed_level = baseline_level;
    return std::make_unique<AdaptiveCheckpointPolicy>(config);
  }
  // Rate-tracking variants for non-Poisson fault environments: the
  // adaptive rule re-estimates lambda from observed inter-fault gaps
  // instead of trusting the nominal rate for the whole run.
  if (name == "A_D-est") {
    return std::make_unique<AdaptiveCheckpointPolicy>(
        AdaptiveCheckpointPolicy::with_estimator(
            AdaptiveCheckpointPolicy::adt_dvs()));
  }
  if (name == "A_D_S-est") {
    return std::make_unique<AdaptiveCheckpointPolicy>(
        AdaptiveCheckpointPolicy::with_estimator(
            AdaptiveCheckpointPolicy::adapchp_dvs_scp()));
  }
  if (name == "A_D_C-est") {
    return std::make_unique<AdaptiveCheckpointPolicy>(
        AdaptiveCheckpointPolicy::with_estimator(
            AdaptiveCheckpointPolicy::adapchp_dvs_ccp()));
  }
  throw std::invalid_argument("unknown policy: " + name);
}

sim::PolicyFactory make_policy_factory(const std::string& name,
                                       std::size_t baseline_level) {
  return [name, baseline_level] { return make_policy(name, baseline_level); };
}

std::vector<std::string> known_policies() {
  return {"Poisson",     "k-f-t",       "A_D",     "A_D_S",
          "A_D_C",       "adapchp-SCP", "adapchp-CCP",
          "A_D-est",     "A_D_S-est",   "A_D_C-est"};
}

}  // namespace adacheck::policy
