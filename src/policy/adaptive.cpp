#include "policy/adaptive.hpp"

#include <algorithm>
#include <stdexcept>

#include "analytic/dvs_estimate.hpp"
#include "analytic/interval_policy.hpp"
#include "analytic/num_checkpoints.hpp"
#include "analytic/renewal_tmr.hpp"

namespace adacheck::policy {

namespace {
std::string scheme_name(const AdaptiveConfig& c) {
  if (!c.use_dvs) {
    switch (c.inner) {
      case sim::InnerKind::kNone: return "adapchp";
      case sim::InnerKind::kScp: return "adapchp-SCP";
      case sim::InnerKind::kCcp: return "adapchp-CCP";
    }
  }
  switch (c.inner) {
    case sim::InnerKind::kNone: return "A_D";
    case sim::InnerKind::kScp: return "A_D_S";
    case sim::InnerKind::kCcp: return "A_D_C";
  }
  return "adaptive";
}
}  // namespace

AdaptiveCheckpointPolicy::AdaptiveCheckpointPolicy(AdaptiveConfig config)
    : config_(config), name_(scheme_name(config)) {
  if (config_.max_inner < 1) {
    throw std::invalid_argument("AdaptiveConfig: max_inner must be >= 1");
  }
}

sim::Decision AdaptiveCheckpointPolicy::decide(
    const sim::ExecContext& ctx) const {
  const double c_cycles = ctx.costs->cscp();
  const auto& level =
      config_.use_dvs
          ? analytic::choose_speed(*ctx.processor, ctx.remaining_cycles,
                                   ctx.remaining_deadline(), c_cycles,
                                   ctx.lambda)
          : ctx.processor->level(config_.fixed_level);

  sim::Decision d;
  d.speed = level;

  const double f = level.frequency;
  const double remaining_work = ctx.remaining_cycles / f;   // R_t
  const double remaining_deadline = ctx.remaining_deadline();  // R_d
  // Fig. 6 line 6: even the chosen (fastest-if-needed) speed cannot fit
  // the remaining work before the deadline — break with task failure.
  if (remaining_work > remaining_deadline) {
    d.abort = true;
    return d;
  }

  const double cost_time = c_cycles / f;
  const auto interval = analytic::adaptive_interval(
      remaining_deadline, remaining_work, cost_time, ctx.remaining_faults,
      ctx.lambda);
  const double itv = std::min(interval.interval, remaining_work);
  d.cscp_interval = itv;
  d.inner = config_.inner;

  // Sub-interval count from the renewal model matching the platform's
  // redundancy: DMR uses the paper's R1/R2, TMR the vote-aware variants.
  const model::CheckpointCosts time_costs{ctx.costs->store / f,
                                          ctx.costs->compare / f,
                                          ctx.costs->rollback / f};
  const bool tmr = ctx.redundancy == 3;
  switch (config_.inner) {
    case sim::InnerKind::kNone:
      d.sub_interval = itv;
      break;
    case sim::InnerKind::kScp: {
      int m = 1;
      if (tmr) {
        analytic::TmrRenewalParams params{itv, ctx.lambda, time_costs};
        m = analytic::num_scp_tmr(params);
      } else {
        analytic::ScpRenewalParams params{itv, ctx.lambda, time_costs};
        m = analytic::num_scp(params);
      }
      m = std::min(m, config_.max_inner);
      d.sub_interval = itv / static_cast<double>(m);
      break;
    }
    case sim::InnerKind::kCcp: {
      int m = 1;
      if (tmr) {
        analytic::TmrRenewalParams params{itv, ctx.lambda, time_costs};
        m = analytic::num_ccp_tmr(params);
      } else {
        analytic::CcpRenewalParams params{itv, ctx.lambda, time_costs};
        m = analytic::num_ccp(params);
      }
      m = std::min(m, config_.max_inner);
      d.sub_interval = itv / static_cast<double>(m);
      break;
    }
  }
  return d;
}

sim::Decision AdaptiveCheckpointPolicy::initial(const sim::ExecContext& ctx) {
  return decide(ctx);
}

sim::Decision AdaptiveCheckpointPolicy::on_fault(const sim::ExecContext& ctx) {
  return decide(ctx);
}

std::optional<sim::Decision> AdaptiveCheckpointPolicy::on_commit(
    const sim::ExecContext& ctx) {
  if (ctx.remaining_cycles <= 0.0) return std::nullopt;  // engine will finish
  if (config_.recompute_at_commit) return decide(ctx);
  // Even without re-planning, the while-loop guard of Figs. 3/6/7 runs
  // every iteration: break with failure when the remaining work cannot
  // fit the remaining deadline at the fastest speed.
  const double best_f = ctx.processor->fastest().frequency;
  if (ctx.remaining_cycles / best_f > ctx.remaining_deadline()) {
    sim::Decision d;
    d.speed = ctx.processor->fastest();
    d.abort = true;
    return d;
  }
  return std::nullopt;
}

AdaptiveConfig AdaptiveCheckpointPolicy::adt_dvs() {
  AdaptiveConfig c;
  c.inner = sim::InnerKind::kNone;
  c.use_dvs = true;
  return c;
}

AdaptiveConfig AdaptiveCheckpointPolicy::adapchp_scp() {
  AdaptiveConfig c;
  c.inner = sim::InnerKind::kScp;
  c.use_dvs = false;
  return c;
}

AdaptiveConfig AdaptiveCheckpointPolicy::adapchp_ccp() {
  AdaptiveConfig c;
  c.inner = sim::InnerKind::kCcp;
  c.use_dvs = false;
  return c;
}

AdaptiveConfig AdaptiveCheckpointPolicy::adapchp_dvs_scp() {
  AdaptiveConfig c;
  c.inner = sim::InnerKind::kScp;
  c.use_dvs = true;
  return c;
}

AdaptiveConfig AdaptiveCheckpointPolicy::adapchp_dvs_ccp() {
  AdaptiveConfig c;
  c.inner = sim::InnerKind::kCcp;
  c.use_dvs = true;
  return c;
}

}  // namespace adacheck::policy
