#include "policy/adaptive.hpp"

#include <algorithm>
#include <stdexcept>

#include "analytic/dvs_estimate.hpp"
#include "analytic/interval_policy.hpp"
#include "analytic/num_checkpoints.hpp"
#include "analytic/renewal_tmr.hpp"

namespace adacheck::policy {

namespace {
std::string scheme_name(const AdaptiveConfig& c) {
  std::string base = "adaptive";
  if (!c.use_dvs) {
    switch (c.inner) {
      case sim::InnerKind::kNone: base = "adapchp"; break;
      case sim::InnerKind::kScp: base = "adapchp-SCP"; break;
      case sim::InnerKind::kCcp: base = "adapchp-CCP"; break;
    }
  } else {
    switch (c.inner) {
      case sim::InnerKind::kNone: base = "A_D"; break;
      case sim::InnerKind::kScp: base = "A_D_S"; break;
      case sim::InnerKind::kCcp: base = "A_D_C"; break;
    }
  }
  return c.estimate_rate ? base + "-est" : base;
}
}  // namespace

AdaptiveCheckpointPolicy::AdaptiveCheckpointPolicy(AdaptiveConfig config)
    : config_(config), name_(scheme_name(config)) {
  if (config_.max_inner < 1) {
    throw std::invalid_argument("AdaptiveConfig: max_inner must be >= 1");
  }
  if (config_.estimate_rate && !(config_.estimator_prior_strength > 0.0)) {
    throw std::invalid_argument(
        "AdaptiveConfig: estimator_prior_strength must be > 0");
  }
}

double AdaptiveCheckpointPolicy::planning_lambda(
    const sim::ExecContext& ctx) const {
  // Observation window on the *exposure* clock — the clock lambda is
  // defined on — so checkpoint/rollback overhead does not dilute the
  // estimate.  (Detections still undercount bursts that land several
  // faults in one attempt; the estimator is deliberately conservative.)
  if (!config_.estimate_rate || ctx.exposure <= 0.0) return ctx.lambda;
  const double detections = static_cast<double>(ctx.faults_detected);
  if (ctx.lambda <= 0.0) {
    // No prior to anchor on: pure maximum-likelihood detections/time.
    return detections / ctx.exposure;
  }
  // Gamma(k0, k0/lambda0) prior on the rate, Poisson-count likelihood:
  // the posterior mean interpolates from the nominal rate (exposure
  // -> 0) to the observed inter-detection-gap rate (detections -> inf).
  const double k0 = config_.estimator_prior_strength;
  return (k0 + detections) / (k0 / ctx.lambda + ctx.exposure);
}

sim::Decision AdaptiveCheckpointPolicy::decide(
    const sim::ExecContext& ctx) const {
  const double c_cycles = ctx.costs->cscp();
  const double lambda = planning_lambda(ctx);
  const auto& level =
      config_.use_dvs
          ? analytic::choose_speed(*ctx.processor, ctx.remaining_cycles,
                                   ctx.remaining_deadline(), c_cycles,
                                   lambda)
          : ctx.processor->level(config_.fixed_level);

  sim::Decision d;
  d.speed = level;

  const double f = level.frequency;
  const double remaining_work = ctx.remaining_cycles / f;   // R_t
  const double remaining_deadline = ctx.remaining_deadline();  // R_d
  // Fig. 6 line 6: even the chosen (fastest-if-needed) speed cannot fit
  // the remaining work before the deadline — break with task failure.
  if (remaining_work > remaining_deadline) {
    d.abort = true;
    return d;
  }

  const double cost_time = c_cycles / f;
  const auto interval = analytic::adaptive_interval(
      remaining_deadline, remaining_work, cost_time, ctx.remaining_faults,
      lambda);
  const double itv = std::min(interval.interval, remaining_work);
  d.cscp_interval = itv;
  d.inner = config_.inner;

  // Sub-interval count from the renewal model matching the platform's
  // redundancy: DMR uses the paper's R1/R2; any voting group (N >= 3)
  // the vote-aware TMR variants — exact for 3 replicas, and the
  // documented approximation for wider NMR groups (the engine votes
  // there too, so the 2-of-3 renewal model is far closer than the
  // every-fault-rolls-back DMR equations).
  const model::CheckpointCosts time_costs{ctx.costs->store / f,
                                          ctx.costs->compare / f,
                                          ctx.costs->rollback / f};
  const bool tmr = ctx.redundancy >= 3;
  switch (config_.inner) {
    case sim::InnerKind::kNone:
      d.sub_interval = itv;
      break;
    case sim::InnerKind::kScp: {
      int m = 1;
      if (tmr) {
        analytic::TmrRenewalParams params{itv, lambda, time_costs};
        m = analytic::num_scp_tmr(params);
      } else {
        analytic::ScpRenewalParams params{itv, lambda, time_costs};
        m = analytic::num_scp(params);
      }
      m = std::min(m, config_.max_inner);
      d.sub_interval = itv / static_cast<double>(m);
      break;
    }
    case sim::InnerKind::kCcp: {
      int m = 1;
      if (tmr) {
        analytic::TmrRenewalParams params{itv, lambda, time_costs};
        m = analytic::num_ccp_tmr(params);
      } else {
        analytic::CcpRenewalParams params{itv, lambda, time_costs};
        m = analytic::num_ccp(params);
      }
      m = std::min(m, config_.max_inner);
      d.sub_interval = itv / static_cast<double>(m);
      break;
    }
  }
  return d;
}

sim::Decision AdaptiveCheckpointPolicy::initial(const sim::ExecContext& ctx) {
  return decide(ctx);
}

sim::Decision AdaptiveCheckpointPolicy::on_fault(const sim::ExecContext& ctx) {
  return decide(ctx);
}

std::optional<sim::Decision> AdaptiveCheckpointPolicy::on_commit(
    const sim::ExecContext& ctx) {
  if (ctx.remaining_cycles <= 0.0) return std::nullopt;  // engine will finish
  if (config_.recompute_at_commit) return decide(ctx);
  // Even without re-planning, the while-loop guard of Figs. 3/6/7 runs
  // every iteration: break with failure when the remaining work cannot
  // fit the remaining deadline at the fastest speed.
  const double best_f = ctx.processor->fastest().frequency;
  if (ctx.remaining_cycles / best_f > ctx.remaining_deadline()) {
    sim::Decision d;
    d.speed = ctx.processor->fastest();
    d.abort = true;
    return d;
  }
  return std::nullopt;
}

AdaptiveConfig AdaptiveCheckpointPolicy::adt_dvs() {
  AdaptiveConfig c;
  c.inner = sim::InnerKind::kNone;
  c.use_dvs = true;
  return c;
}

AdaptiveConfig AdaptiveCheckpointPolicy::adapchp_scp() {
  AdaptiveConfig c;
  c.inner = sim::InnerKind::kScp;
  c.use_dvs = false;
  return c;
}

AdaptiveConfig AdaptiveCheckpointPolicy::adapchp_ccp() {
  AdaptiveConfig c;
  c.inner = sim::InnerKind::kCcp;
  c.use_dvs = false;
  return c;
}

AdaptiveConfig AdaptiveCheckpointPolicy::adapchp_dvs_scp() {
  AdaptiveConfig c;
  c.inner = sim::InnerKind::kScp;
  c.use_dvs = true;
  return c;
}

AdaptiveConfig AdaptiveCheckpointPolicy::adapchp_dvs_ccp() {
  AdaptiveConfig c;
  c.inner = sim::InnerKind::kCcp;
  c.use_dvs = true;
  return c;
}

AdaptiveConfig AdaptiveCheckpointPolicy::with_estimator(AdaptiveConfig c) {
  c.estimate_rate = true;
  return c;
}

}  // namespace adacheck::policy
