// The adaptive checkpointing schemes: the paper's contribution and the
// DATE'03 baseline it extends.
//
// One configurable implementation covers all five pseudocode variants:
//
//   scheme            figure   DVS   inner checkpoints
//   ADT_DVS (A_D)     [3]      yes   none
//   adapchp-SCP       Fig. 3   no    SCPs
//   adapchp-CCP       §2.2     no    CCPs
//   adapchp_dvs_SCP   Fig. 6   yes   SCPs   <- "A_D_S"
//   adapchp_dvs_CCP   Fig. 7   yes   CCPs   <- "A_D_C"
//
// Decision recipe (the figures' lines 1-4 / 13-17):
//   1. speed: with DVS, the slowest level whose fault-aware estimate
//      t_est fits the remaining deadline, else the fastest (Fig. 6
//      line 2/15); without DVS, a fixed level.
//   2. abort when remaining work at the chosen speed cannot fit the
//      remaining deadline (Fig. 6 line 6).
//   3. outer interval Itv from procedure interval() (Fig. 4), clamped
//      to the remaining work.
//   4. inner count m from num_SCP/num_CCP (Fig. 2) on the renewal
//      model, sub-interval itv = Itv/m.
// Recomputed at start and after every detected fault; optionally also
// at every committed CSCP (ablation knob, off in the paper).
#pragma once

#include <cstddef>
#include <string>

#include "sim/policy.hpp"

namespace adacheck::policy {

struct AdaptiveConfig {
  sim::InnerKind inner = sim::InnerKind::kNone;
  bool use_dvs = true;          ///< false: pin to `fixed_level`
  std::size_t fixed_level = 0;  ///< used when use_dvs is false
  bool recompute_at_commit = false;  ///< ablation: also re-plan per CSCP
  /// Cap on the inner count so degenerate renewal minima cannot flood
  /// an interval with checkpoints (paper's optimum is small anyway).
  int max_inner = 4096;
  /// Online inter-fault-gap rate tracking: instead of trusting the
  /// environment's nominal lambda for the whole run, blend it with the
  /// realized detection rate via a Gamma-posterior mean
  ///   lambda_hat = (k0 + detections) / (k0 / lambda0 + exposure)
  /// (k0 = estimator_prior_strength pseudo-faults at the nominal
  /// rate; exposure is the vulnerable-time clock lambda is defined
  /// on).  Early in a run lambda_hat ~ lambda0; as observed gaps
  /// accumulate the estimate follows the realized rate, which is what
  /// lets the adaptive rule track bursty / non-Poisson environments.
  /// Off by default: the paper's schemes (and their bit-identical
  /// statistics) trust the nominal rate.
  bool estimate_rate = false;
  double estimator_prior_strength = 4.0;  ///< k0, in pseudo-faults
};

class AdaptiveCheckpointPolicy final : public sim::ICheckpointPolicy {
 public:
  explicit AdaptiveCheckpointPolicy(AdaptiveConfig config);

  std::string name() const override { return name_; }
  /// All per-run state lives in the ExecContext; instances are reusable.
  bool reset() override { return true; }
  sim::Decision initial(const sim::ExecContext& ctx) override;
  sim::Decision on_fault(const sim::ExecContext& ctx) override;
  std::optional<sim::Decision> on_commit(const sim::ExecContext& ctx) override;

  const AdaptiveConfig& config() const noexcept { return config_; }

  /// Factory helpers with the paper's scheme names.
  static AdaptiveConfig adt_dvs();          ///< A_D (DATE'03 baseline)
  static AdaptiveConfig adapchp_scp();      ///< Fig. 3, fixed speed
  static AdaptiveConfig adapchp_ccp();      ///< §2.2, fixed speed
  static AdaptiveConfig adapchp_dvs_scp();  ///< A_D_S (Fig. 6)
  static AdaptiveConfig adapchp_dvs_ccp();  ///< A_D_C (Fig. 7)
  /// Rate-tracking variant of any config ("-est" scheme-name suffix).
  static AdaptiveConfig with_estimator(AdaptiveConfig config);

  /// The rate the policy plans with: ctx.lambda, or the Gamma-posterior
  /// blend of nominal rate and observed detections when estimate_rate
  /// is set (exposed for tests).
  double planning_lambda(const sim::ExecContext& ctx) const;

 private:
  sim::Decision decide(const sim::ExecContext& ctx) const;

  AdaptiveConfig config_;
  std::string name_;
};

}  // namespace adacheck::policy
