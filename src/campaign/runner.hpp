// Campaign planning, cell fingerprints, the result cache, and the
// runner behind `adacheck campaign`.
//
// Planning expands a CampaignSpec's matrix into cells — one resolved
// scenario (overrides applied) per (entry, environment, seed) triple —
// and stamps each cell with a content fingerprint: the canonical-JSON
// hash (util/canonical_json.hpp) of everything that determines the
// cell's results — the bound harness experiment specs, the
// result-affecting config knobs (runs, seed, validate; NOT threads),
// the metric suite, and the code-version string.  Two cells with the
// same fingerprint produce byte-identical adacheck-cell-v2 streams, so
// the fingerprint doubles as the cache key.
//
// The cache directory holds two files per fingerprint:
//
//   <fp>.jsonl       the cell's adacheck-cell-v2 lines, verbatim
//   <fp>.meta.json   provenance + content_hash128 of the .jsonl bytes
//
// The meta file is written AFTER the payload and acts as the commit
// marker: a payload without meta (crashed writer) is an ordinary
// miss, and a meta whose result_hash does not match the payload bytes
// (torn write, manual edit) is treated as a miss too — the cache can
// only replay exactly what a fresh run would produce.
//
// run_campaign replays cached cells and executes the misses
// CONCURRENTLY — cells are independent, so cache-miss cells run as
// parallel tasks on the shared pool (each internally parallel too;
// CampaignOptions::cell_parallelism caps how many are in flight, and
// fail_fast falls back to strictly sequential plan order so "skip
// everything after the first failure" stays exact).  Two cells with
// the same fingerprint never execute concurrently: the first
// occurrence runs, later duplicates replay its committed result.
// Report and JSONL emission stay in deterministic plan order
// regardless — per-cell output is buffered and flushed as the
// contiguous done-prefix grows — so the stream is byte-identical to a
// sequential run.  The JSONL stream interleaves one
// adacheck-campaign-cell-v1 header line per cell with that cell's
// adacheck-cell-v2 body lines (cached or fresh — same bytes), and a
// rerun over a warm cache reproduces it byte-for-byte.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "campaign/spec.hpp"
#include "harness/stream_report.hpp"
#include "sim/observer.hpp"
#include "util/canonical_json.hpp"

namespace adacheck::campaign {

/// One expanded cell: a fully resolved scenario run.
struct CampaignCell {
  std::size_t index = 0;       ///< position in plan order
  std::size_t entry = 0;       ///< matrix entry this cell came from
  std::string scenario_ref;    ///< the entry's ref, as written
  std::string scenario_path;   ///< resolved against the document dir
  std::string environment;     ///< override applied, "" = scenario's own
  std::uint64_t seed = 0;
  /// The scenario with every override applied (seed, environment,
  /// runs, budget); binding this is what the fingerprint covers.
  scenario::ScenarioSpec resolved;
  std::string fingerprint;     ///< cell_fingerprint(resolved), hex
  std::size_t sweep_cells = 0; ///< flat (row, scheme) cells of the sweep
};

struct CampaignPlan {
  std::vector<CampaignCell> cells;
};

/// The canonical-JSON document a cell's fingerprint hashes (exposed so
/// tests can pin its stability properties).  Key order in the result
/// is canonical regardless of emission order; includes the
/// code-version string.
std::string cell_fingerprint_document(const scenario::ScenarioSpec& resolved);

/// content_hash128 of the fingerprint document, as 32 hex chars.
std::string cell_fingerprint(const scenario::ScenarioSpec& resolved);

/// Expands the matrix, loading and resolving every referenced
/// scenario.  Throws std::runtime_error (unreadable ref) or
/// scenario::ScenarioError (invalid scenario) with the ref path in
/// the message.
CampaignPlan plan_campaign(const CampaignSpec& spec);

enum class CellStatus { kCached, kExecuted, kFailed, kSkipped };

/// "cached" | "executed" | "failed" | "skipped".
const char* to_string(CellStatus status);

struct CellOutcome {
  CellStatus status = CellStatus::kSkipped;
  /// Monte-Carlo runs performed by THIS campaign run (0 when cached).
  long long runs_executed = 0;
  /// content_hash128 hex of the cell's adacheck-cell-v2 bytes ("" for
  /// failed/skipped cells).
  std::string result_hash;
  std::string error;  ///< what() for failed cells
};

struct CampaignOptions {
  /// Replay cached cells (--resume, the default); false (--fresh)
  /// re-executes everything and overwrites the cache.
  bool resume = true;
  /// Stop at the first failed cell, marking the rest skipped.
  bool fail_fast = false;
  /// Parallelism cap for each cell's sweep; -1 = keep each scenario's
  /// own config.threads.  Never part of the fingerprint.
  int threads = -1;
  /// Cache-miss cells in flight at once: 0 = shared-pool width, 1 =
  /// strictly sequential (also forced by fail_fast).  Results and the
  /// emitted report/JSONL bytes are identical for every value.
  int cell_parallelism = 0;
  /// Overrides the document's cache_dir when non-empty.
  std::string cache_dir = {};
  std::ostream* status = nullptr;  ///< per-cell progress lines
  std::ostream* jsonl = nullptr;   ///< campaign JSONL stream
  /// Extra observer for each freshly executed sweep (progress lines).
  sim::ISweepObserver* observer = nullptr;
  /// Test seam, called before a cell is (re)executed — never for
  /// cache hits; a throw marks the cell failed.
  std::function<void(const CampaignCell&)> before_execute = {};
};

struct CampaignResult {
  CampaignPlan plan;
  std::vector<CellOutcome> outcomes;  ///< parallel to plan.cells
  std::string cache_dir;              ///< the directory actually used
  double wall_seconds = 0.0;

  bool any_failed() const;
};

/// True when the cache holds a committed, hash-verified entry for the
/// fingerprint (what --dry-run reports as "cached").
bool cache_probe(const std::string& cache_dir, const std::string& fingerprint);

/// Plans and executes the whole campaign.  Throws only for planning
/// and cache-directory errors; per-cell execution errors become
/// kFailed outcomes.
CampaignResult run_campaign(const CampaignSpec& spec,
                            const CampaignOptions& options = {});

struct CampaignReportOptions {
  /// Emit the volatile "execution" section (statuses, runs executed,
  /// wall-clock).  Disable (--no-perf) to get a byte-stable document:
  /// everything else depends only on the plan, never on cache state.
  bool include_execution = true;
};

/// Writes the campaign report (schema "adacheck-campaign-report-v1").
void write_campaign_json(const CampaignSpec& spec,
                         const CampaignResult& result, std::ostream& os,
                         const CampaignReportOptions& options = {});

/// Convenience: the same document as a string.
std::string campaign_json(const CampaignSpec& spec,
                          const CampaignResult& result,
                          const CampaignReportOptions& options = {});

// --- cache inspection and pruning (`adacheck campaign ls` / `gc`) --------

/// One cache entry as found on disk.  `valid` means what cache_probe
/// means: meta parses, names the same fingerprint, and its result_hash
/// matches the payload bytes; anything else is a defect run_campaign
/// would treat as a miss, and `defect` says which.
struct CacheEntryInfo {
  std::string fingerprint;
  bool valid = false;
  std::string defect;       ///< "" when valid
  std::string scenario;     ///< meta provenance (valid entries only)
  std::string environment;
  std::uint64_t seed = 0;
  std::size_t sweep_cells = 0;
  long long total_runs = 0;
  std::string code_version;
  std::uintmax_t bytes = 0;     ///< payload + meta size on disk
  double age_seconds = 0.0;     ///< now - last write (the meta's when present)
};

/// Scans a cache directory; entries sorted by fingerprint (one per
/// stem — orphan payloads and meta-only stubs appear as invalid
/// entries).  Throws std::runtime_error when the directory cannot be
/// read; a missing directory is an empty cache, not an error.
std::vector<CacheEntryInfo> cache_ls(const std::string& cache_dir);

struct CacheGcOptions {
  /// Remove valid entries whose age is >= this many seconds; 0 keeps
  /// every valid entry (corrupt ones are still pruned).
  double older_than_seconds = 0.0;
  /// Report what would be removed without touching the directory.
  bool dry_run = false;
};

struct CacheGcResult {
  std::vector<CacheEntryInfo> removed;  ///< pruned (or would-be, dry run)
  std::size_t kept = 0;
  std::uintmax_t bytes_freed = 0;
};

/// Prunes a cache directory: corrupt entries always (the self-healing
/// sweep), valid entries by age when older_than_seconds is set.
CacheGcResult cache_gc(const std::string& cache_dir,
                       const CacheGcOptions& options = {});

/// Parses a human age like "30" (seconds), "45s", "30m", "12h", or
/// "7d" into seconds.  Throws std::invalid_argument on junk.
double parse_duration_seconds(const std::string& text);

}  // namespace adacheck::campaign
