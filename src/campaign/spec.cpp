#include "campaign/spec.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "model/fault_env.hpp"
#include "scenario/schema.hpp"

namespace adacheck::campaign {

using namespace scenario::schema;
using scenario::ScenarioError;
using util::json::Value;

namespace {

std::vector<std::uint64_t> parse_seeds(const Value& v,
                                       const std::string& path) {
  std::vector<std::uint64_t> seeds;
  const auto& array = as_array(v, path);
  if (array.empty()) fail(path, "must not be empty");
  for (std::size_t i = 0; i < array.size(); ++i) {
    const std::string item_path = index_path(path, i);
    const auto value = as_int(array[i], item_path);
    if (value < 0) fail(item_path, "must be >= 0");
    const auto seed = static_cast<std::uint64_t>(value);
    if (std::find(seeds.begin(), seeds.end(), seed) != seeds.end()) {
      fail(item_path, "duplicate seed " + std::to_string(value));
    }
    seeds.push_back(seed);
  }
  return seeds;
}

std::vector<std::string> parse_environments(const Value& v,
                                            const std::string& path) {
  std::vector<std::string> names;
  const auto& array = as_array(v, path);
  if (array.empty()) fail(path, "must not be empty");
  for (std::size_t i = 0; i < array.size(); ++i) {
    const std::string item_path = index_path(path, i);
    const std::string& name = as_string(array[i], item_path);
    check_name(name, model::known_environments(), item_path);
    if (std::find(names.begin(), names.end(), name) != names.end()) {
      fail(item_path, "duplicate environment \"" + name + "\"");
    }
    names.push_back(name);
  }
  return names;
}

MatrixEntry parse_entry(const Value& v, const std::string& path) {
  require_object(v, path);
  check_keys(v, path, {"scenario", "seeds", "environments", "runs", "budget"});
  MatrixEntry entry;
  entry.scenario =
      as_string(require(v, path, "scenario"), member_path(path, "scenario"));
  if (entry.scenario.empty()) {
    fail(member_path(path, "scenario"), "must not be empty");
  }
  if (const Value* seeds = v.find("seeds")) {
    entry.seeds = parse_seeds(*seeds, member_path(path, "seeds"));
  }
  if (const Value* environments = v.find("environments")) {
    entry.environments =
        parse_environments(*environments, member_path(path, "environments"));
  }
  if (const Value* runs = v.find("runs")) {
    const std::string runs_path = member_path(path, "runs");
    const auto value = as_int(*runs, runs_path);
    if (value < 1) fail(runs_path, "must be >= 1");
    if (value > 1'000'000'000) fail(runs_path, "must be <= 1e9");
    entry.runs = static_cast<int>(value);
  }
  if (const Value* budget = v.find("budget")) {
    entry.budget = scenario::parse_budget(*budget, member_path(path, "budget"));
  }
  return entry;
}

/// Same two-form "output" key as a scenario document.
void parse_output(const Value& v, const std::string& path,
                  CampaignSpec& spec) {
  if (v.is_string()) {
    spec.output = v.as_string();
    return;
  }
  if (!v.is_object()) {
    fail(path, "expected string (report path) or object "
               "{\"report\", \"jsonl\"}, got " + kind_name(v));
  }
  check_keys(v, path, {"report", "jsonl"});
  if (const Value* report = v.find("report")) {
    spec.output = as_string(*report, member_path(path, "report"));
  }
  if (const Value* jsonl = v.find("jsonl")) {
    spec.output_jsonl = as_string(*jsonl, member_path(path, "jsonl"));
  }
}

}  // namespace

bool is_campaign_document(const Value& root) {
  if (!root.is_object()) return false;
  const Value* schema = root.find("schema");
  return schema != nullptr && schema->is_string() &&
         schema->as_string() == "adacheck-campaign-v1";
}

CampaignSpec parse_campaign(const Value& root) {
  const std::string top;  // the document root has no path prefix
  require_object(root, top);
  check_keys(root, top,
             {"schema", "name", "title", "cache_dir", "output", "matrix"});

  const std::string& schema = as_string(require(root, top, "schema"), "schema");
  if (schema != "adacheck-campaign-v1") {
    fail("schema", "unsupported schema \"" + schema +
                       "\"; expected \"adacheck-campaign-v1\"");
  }

  CampaignSpec spec;
  spec.name = as_string(require(root, top, "name"), "name");
  if (spec.name.empty()) fail("name", "must not be empty");
  spec.title =
      root.find("title") ? as_string(*root.find("title"), "title") : spec.name;
  if (const Value* cache_dir = root.find("cache_dir")) {
    spec.cache_dir = as_string(*cache_dir, "cache_dir");
    if (spec.cache_dir.empty()) fail("cache_dir", "must not be empty");
  } else {
    spec.cache_dir = spec.name + "_cache";
  }
  if (const Value* output = root.find("output")) {
    parse_output(*output, "output", spec);
  }

  const auto& matrix = as_array(require(root, top, "matrix"), "matrix");
  if (matrix.empty()) fail("matrix", "must not be empty");
  for (std::size_t i = 0; i < matrix.size(); ++i) {
    spec.matrix.push_back(parse_entry(matrix[i], index_path("matrix", i)));
  }
  return spec;
}

CampaignSpec parse_campaign_text(std::string_view text) {
  return parse_campaign(util::json::parse(text));
}

CampaignSpec load_campaign_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error(path + ": cannot open campaign file");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    CampaignSpec spec = parse_campaign_text(buffer.str());
    spec.base_dir = std::filesystem::path(path).parent_path().string();
    return spec;
  } catch (const util::json::ParseError& e) {
    throw std::runtime_error(path + ": " + e.what());
  } catch (const ScenarioError& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

}  // namespace adacheck::campaign
