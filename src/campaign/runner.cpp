#include "campaign/runner.hpp"

#include <chrono>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <sstream>
#include <utility>

#include "harness/json_writer.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "scenario/binder.hpp"
#include "util/thread_pool.hpp"
#include "util/version.hpp"

namespace adacheck::campaign {

namespace fs = std::filesystem;

namespace {

/// Telemetry handles (gated on Registry::enabled(); see obs/registry.hpp).
/// Hit/miss semantics: a hit is a successful replay, a miss is a cell
/// that had to execute, corrupt is a present-but-unverifiable entry
/// (also counted as the miss its execution implies).
struct CampaignMetrics {
  obs::Counter& cache_hits;
  obs::Counter& cache_misses;
  obs::Counter& cache_corrupt;
  obs::Gauge& cells_in_flight;
  obs::LatencyHisto& cell_us;

  static CampaignMetrics& get() {
    static CampaignMetrics* const metrics = new CampaignMetrics{
        obs::Registry::instance().counter("campaign.cache_hits"),
        obs::Registry::instance().counter("campaign.cache_misses"),
        obs::Registry::instance().counter("campaign.cache_corrupt"),
        obs::Registry::instance().gauge("campaign.cells_in_flight"),
        obs::Registry::instance().histogram("campaign.cell_us")};
    return *metrics;
  }
};

void write_budget(harness::JsonWriter& json, const sim::RunBudget& budget) {
  json.begin_object();
  if (budget.target_p_halfwidth > 0.0) {
    json.kv("target_p_halfwidth", budget.target_p_halfwidth);
  }
  if (budget.target_e_rel_halfwidth > 0.0) {
    json.kv("target_e_rel_halfwidth", budget.target_e_rel_halfwidth);
  }
  if (budget.min_runs > 0) json.kv("min_runs", budget.min_runs);
  if (budget.max_runs > 0) json.kv("max_runs", budget.max_runs);
  json.end_object();
}

fs::path resolve_ref(const CampaignSpec& spec, const std::string& ref) {
  const fs::path path(ref);
  if (path.is_absolute() || spec.base_dir.empty()) return path;
  return fs::path(spec.base_dir) / path;
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error(path.string() + ": cannot open file");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

fs::path payload_path(const std::string& cache_dir, const std::string& fp) {
  return fs::path(cache_dir) / (fp + ".jsonl");
}

fs::path meta_path(const std::string& cache_dir, const std::string& fp) {
  return fs::path(cache_dir) / (fp + ".meta.json");
}

/// A committed cache entry: the payload bytes plus meta provenance.
struct CacheEntry {
  std::string bytes;
  long long total_runs = 0;  ///< runs the original execution performed
};

/// Loads and verifies a cache entry; nullopt on any defect (missing
/// file, unparsable meta, fingerprint or hash mismatch) — defects are
/// misses, never errors, so a corrupted cache heals itself.  When
/// `corrupt` is non-null it is set iff both files existed but failed
/// verification (the telemetry distinction between "never cached" and
/// "cached but damaged").
std::optional<CacheEntry> cache_load(const std::string& cache_dir,
                                     const std::string& fingerprint,
                                     bool* corrupt = nullptr) {
  const fs::path meta_file = meta_path(cache_dir, fingerprint);
  const fs::path payload_file = payload_path(cache_dir, fingerprint);
  std::error_code ec;
  if (!fs::exists(meta_file, ec) || !fs::exists(payload_file, ec)) {
    return std::nullopt;
  }
  if (corrupt != nullptr) *corrupt = true;  // cleared on success below
  try {
    const auto meta = util::json::parse(read_file(meta_file));
    const util::json::Value* hash = meta.find("result_hash");
    const util::json::Value* fp = meta.find("fingerprint");
    if (hash == nullptr || !hash->is_string() || fp == nullptr ||
        !fp->is_string() || fp->as_string() != fingerprint) {
      return std::nullopt;
    }
    CacheEntry entry;
    entry.bytes = read_file(payload_file);
    if (util::content_hash128(entry.bytes).hex() != hash->as_string()) {
      return std::nullopt;
    }
    if (const util::json::Value* runs = meta.find("total_runs")) {
      if (runs->is_number()) entry.total_runs = runs->as_int();
    }
    if (corrupt != nullptr) *corrupt = false;
    return entry;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

/// Commits an entry: payload first, meta last (the commit marker).
void cache_store(const std::string& cache_dir, const CampaignCell& cell,
                 const std::string& bytes, long long total_runs,
                 const std::string& result_hash) {
  const fs::path payload_file = payload_path(cache_dir, cell.fingerprint);
  {
    std::ofstream out(payload_file, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out) {
      throw std::runtime_error(payload_file.string() + ": cannot write");
    }
  }
  std::ofstream out(meta_path(cache_dir, cell.fingerprint),
                    std::ios::binary | std::ios::trunc);
  harness::JsonWriter json(out);
  json.begin_object();
  json.kv("schema", std::string("adacheck-cache-meta-v1"));
  json.kv("fingerprint", cell.fingerprint);
  json.kv("code_version", util::version_string());
  json.kv("scenario", cell.resolved.name);
  if (!cell.environment.empty()) json.kv("environment", cell.environment);
  json.kv("seed", cell.seed);
  json.kv("sweep_cells", cell.sweep_cells);
  json.kv("total_runs", total_runs);
  json.kv("result_hash", result_hash);
  json.end_object();
  out << "\n";
  if (!out) {
    throw std::runtime_error(
        meta_path(cache_dir, cell.fingerprint).string() + ": cannot write");
  }
}

/// The deterministic adacheck-campaign-cell-v1 header line for a cell.
std::string header_line(const CampaignCell& cell) {
  std::ostringstream out;
  harness::JsonWriter json(out, harness::JsonStyle::kCompact);
  json.begin_object();
  json.kv("schema", std::string("adacheck-campaign-cell-v1"));
  json.kv("cell", cell.index);
  json.kv("scenario", cell.scenario_ref);
  json.kv("name", cell.resolved.name);
  if (!cell.environment.empty()) json.kv("environment", cell.environment);
  json.kv("seed", cell.seed);
  json.kv("fingerprint", cell.fingerprint);
  json.kv("sweep_cells", cell.sweep_cells);
  json.end_object();
  out << "\n";
  return out.str();
}

}  // namespace

std::string cell_fingerprint_document(
    const scenario::ScenarioSpec& resolved) {
  // Emission order here is irrelevant by construction: the document is
  // re-serialized canonically (sorted keys) before hashing.  What
  // matters is the field set — everything result-affecting, nothing
  // else (no threads, no titles, no output paths).
  std::ostringstream out;
  harness::JsonWriter json(out, harness::JsonStyle::kCompact);
  json.begin_object();
  json.kv("code_version", util::version_string());
  json.key("config");
  json.begin_object();
  json.kv("runs", resolved.config.runs);
  json.kv("seed", resolved.config.seed);
  json.kv("validate", resolved.config.validate);
  json.end_object();
  if (resolved.budget.enabled()) {
    json.key("budget");
    write_budget(json, resolved.budget);
  }
  if (!resolved.metrics.empty()) {
    json.key("metrics");
    json.begin_array();
    for (const auto& name : resolved.metrics) json.value(name);
    json.end_array();
  }
  json.key("experiments");
  json.begin_array();
  for (const auto& spec : scenario::bind_experiments(resolved)) {
    json.begin_object();
    json.kv("id", spec.id);
    json.kv("environment", spec.environment);
    json.key("costs");
    json.begin_object();
    json.kv("store", spec.costs.store);
    json.kv("compare", spec.costs.compare);
    json.kv("rollback", spec.costs.rollback);
    json.end_object();
    json.kv("deadline", spec.deadline);
    json.kv("fault_tolerance", spec.fault_tolerance);
    json.kv("speed_ratio", spec.speed_ratio);
    json.kv("voltage_kappa", spec.voltage.kappa);
    json.kv("util_level", spec.util_level);
    if (spec.budget.enabled()) {
      json.key("budget");
      write_budget(json, spec.budget);
    }
    json.key("schemes");
    json.begin_array();
    for (const auto& scheme : spec.schemes) json.value(scheme);
    json.end_array();
    json.key("rows");
    json.begin_array();
    for (const auto& row : spec.rows) {
      json.begin_object();
      json.kv("utilization", row.utilization);
      json.kv("lambda", row.lambda);
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }
  json.end_array();
  // Graph experiments are result-affecting too: the whole DAG shape,
  // contention declarations, and both axes join the fingerprint.
  const auto graphs = scenario::bind_graphs(resolved);
  if (!graphs.empty()) {
    json.key("graphs");
    json.begin_array();
    for (const auto& spec : graphs) {
      json.begin_object();
      json.kv("id", spec.id);
      json.kv("environment", spec.environment);
      json.kv("workers", spec.workers);
      json.kv("instances", spec.instances);
      json.kv("skip_late_jobs", spec.skip_late_jobs);
      json.key("costs");
      json.begin_object();
      json.kv("store", spec.costs.store);
      json.kv("compare", spec.costs.compare);
      json.kv("rollback", spec.costs.rollback);
      json.end_object();
      json.kv("speed_ratio", spec.speed_ratio);
      json.kv("voltage_kappa", spec.voltage.kappa);
      if (spec.budget.enabled()) {
        json.key("budget");
        write_budget(json, spec.budget);
      }
      json.key("graph");
      json.begin_object();
      json.kv("period", spec.graph.period);
      json.kv("deadline", spec.graph.deadline);
      json.key("nodes");
      json.begin_array();
      for (const auto& node : spec.graph.nodes) {
        json.begin_object();
        json.kv("name", node.name);
        json.kv("cycles", node.cycles);
        json.kv("fault_tolerance", node.fault_tolerance);
        json.kv("policy", node.policy);
        json.key("resources");
        json.begin_array();
        for (const auto r : node.resources) json.value(r);
        json.end_array();
        json.end_object();
      }
      json.end_array();
      json.key("edges");
      json.begin_array();
      for (const auto& edge : spec.graph.edges) {
        json.begin_object();
        json.kv("from", edge.from);
        json.kv("to", edge.to);
        json.end_object();
      }
      json.end_array();
      json.key("resources");
      json.begin_array();
      for (const auto& resource : spec.graph.resources) {
        json.begin_object();
        json.kv("name", resource.name);
        json.kv("capacity", resource.capacity);
        json.end_object();
      }
      json.end_array();
      json.end_object();
      json.key("schedulers");
      json.begin_array();
      for (const auto& scheduler : spec.schedulers) json.value(scheduler);
      json.end_array();
      json.key("lambdas");
      json.begin_array();
      for (const auto lambda : spec.lambdas) json.value(lambda);
      json.end_array();
      json.end_object();
    }
    json.end_array();
  }
  json.end_object();
  return util::canonical_json(util::json::parse(out.str()));
}

std::string cell_fingerprint(const scenario::ScenarioSpec& resolved) {
  return util::content_hash128(cell_fingerprint_document(resolved)).hex();
}

CampaignPlan plan_campaign(const CampaignSpec& spec) {
  CampaignPlan plan;
  for (std::size_t ei = 0; ei < spec.matrix.size(); ++ei) {
    const MatrixEntry& entry = spec.matrix[ei];
    const fs::path path = resolve_ref(spec, entry.scenario);
    scenario::ScenarioSpec base =
        scenario::load_scenario_file(path.string());
    if (entry.runs > 0) base.config.runs = entry.runs;
    if (entry.budget.enabled()) base.budget = entry.budget;

    const std::vector<std::string> environments =
        entry.environments.empty() ? std::vector<std::string>{""}
                                   : entry.environments;
    const std::vector<std::uint64_t> seeds =
        entry.seeds.empty() ? std::vector<std::uint64_t>{base.config.seed}
                            : entry.seeds;
    for (const auto& environment : environments) {
      scenario::ScenarioSpec with_env = base;
      if (!environment.empty()) {
        for (auto& exp : with_env.experiments) {
          exp.environment = environment;
          exp.environments.clear();
        }
        for (auto& graph : with_env.graphs) {
          graph.environment = environment;
          graph.environments.clear();
        }
      }
      for (const auto seed : seeds) {
        CampaignCell cell;
        cell.index = plan.cells.size();
        cell.entry = ei;
        cell.scenario_ref = entry.scenario;
        cell.scenario_path = path.string();
        cell.environment = environment;
        cell.seed = seed;
        cell.resolved = with_env;
        cell.resolved.config.seed = seed;
        cell.sweep_cells =
            harness::sweep_cell_refs(
                scenario::bind_experiments(cell.resolved),
                scenario::bind_graphs(cell.resolved))
                .size();
        cell.fingerprint = cell_fingerprint(cell.resolved);
        plan.cells.push_back(std::move(cell));
      }
    }
  }
  return plan;
}

const char* to_string(CellStatus status) {
  switch (status) {
    case CellStatus::kCached: return "cached";
    case CellStatus::kExecuted: return "executed";
    case CellStatus::kFailed: return "failed";
    case CellStatus::kSkipped: return "skipped";
  }
  return "unknown";
}

bool CampaignResult::any_failed() const {
  for (const auto& outcome : outcomes) {
    if (outcome.status == CellStatus::kFailed) return true;
  }
  return false;
}

bool cache_probe(const std::string& cache_dir,
                 const std::string& fingerprint) {
  return cache_load(cache_dir, fingerprint).has_value();
}

namespace {

/// Serializes an external observer shared by concurrently executing
/// cell sweeps.  The runner serializes callbacks *within* one sweep,
/// but two cells' sweeps may fire at the same time.
class LockedObserver final : public sim::ISweepObserver {
 public:
  explicit LockedObserver(sim::ISweepObserver* inner) : inner_(inner) {}

  void on_cell_start(std::size_t cell) override {
    std::lock_guard<std::mutex> lock(mu_);
    inner_->on_cell_start(cell);
  }
  void on_cell_done(std::size_t cell, const sim::CellResult& result) override {
    std::lock_guard<std::mutex> lock(mu_);
    inner_->on_cell_done(cell, result);
  }
  void on_progress(const sim::SweepProgress& progress) override {
    std::lock_guard<std::mutex> lock(mu_);
    inner_->on_progress(progress);
  }

 private:
  sim::ISweepObserver* inner_;
  std::mutex mu_;
};

}  // namespace

CampaignResult run_campaign(const CampaignSpec& spec,
                            const CampaignOptions& options) {
  CampaignResult result;
  result.plan = plan_campaign(spec);
  result.outcomes.resize(result.plan.cells.size());
  result.cache_dir =
      options.cache_dir.empty() ? spec.cache_dir : options.cache_dir;

  std::error_code ec;
  fs::create_directories(result.cache_dir, ec);
  if (ec) {
    throw std::runtime_error(result.cache_dir +
                             ": cannot create cache directory (" +
                             ec.message() + ")");
  }

  const auto start = std::chrono::steady_clock::now();
  const std::size_t n = result.plan.cells.size();

  auto prefix_for = [&](std::size_t i) {
    const CampaignCell& cell = result.plan.cells[i];
    std::string label = cell.resolved.name;
    if (!cell.environment.empty()) label += "@" + cell.environment;
    label += " seed=" + std::to_string(cell.seed);
    return "[" + std::to_string(i + 1) + "/" + std::to_string(n) + "] " +
           label;
  };

  // Replays a committed cache entry into the cell's buffers; false on
  // a miss.
  auto try_replay = [&](std::size_t i, std::string& payload_out,
                        std::string& status_out) {
    const CampaignCell& cell = result.plan.cells[i];
    const bool telemetry = obs::Registry::instance().enabled();
    bool corrupt = false;
    auto entry = cache_load(result.cache_dir, cell.fingerprint,
                            telemetry ? &corrupt : nullptr);
    if (telemetry) {
      if (entry) {
        CampaignMetrics::get().cache_hits.add(1);
      } else if (corrupt) {
        CampaignMetrics::get().cache_corrupt.add(1);
      }
      // A plain miss is counted by the execution it forces.
    }
    if (!entry) return false;
    CellOutcome& outcome = result.outcomes[i];
    outcome.status = CellStatus::kCached;
    outcome.runs_executed = 0;
    outcome.result_hash = util::content_hash128(entry->bytes).hex();
    payload_out = std::move(entry->bytes);
    status_out = prefix_for(i) + " cached (" +
                 std::to_string(cell.sweep_cells) + " cells)\n";
    return true;
  };

  // Executes cell i's sweep (cache commit included) into its buffers.
  // Never throws: execution errors become kFailed outcomes.
  auto execute_cell = [&](std::size_t i, std::string& payload_out,
                          std::string& status_out,
                          sim::ISweepObserver* observer) {
    const CampaignCell& cell = result.plan.cells[i];
    CellOutcome& outcome = result.outcomes[i];
    const bool telemetry = obs::Registry::instance().enabled();
    std::uint64_t started_us = 0;
    if (telemetry) {
      auto& metrics = CampaignMetrics::get();
      metrics.cache_misses.add(1);  // executing == the cache missed
      metrics.cells_in_flight.add(1);
      started_us = obs::now_micros();
    }
    obs::Span span(cell.resolved.name, "campaign");
    try {
      if (options.before_execute) options.before_execute(cell);
      scenario::ScenarioSpec to_run = cell.resolved;
      if (options.threads >= 0) to_run.config.threads = options.threads;

      std::ostringstream bytes;
      harness::JsonlCellStream stream(
          bytes, harness::sweep_cell_refs(
                     scenario::bind_experiments(to_run),
                     scenario::bind_graphs(to_run)));
      sim::ObserverList observers;
      observers.add(&stream).add(observer);
      harness::SweepOptions sweep_options;
      sweep_options.observer = &observers;
      const harness::SweepResult sweep =
          scenario::run_scenario(to_run, sweep_options);

      std::string payload = bytes.str();
      outcome.result_hash = util::content_hash128(payload).hex();
      cache_store(result.cache_dir, cell, payload, sweep.perf.total_runs,
                  outcome.result_hash);
      outcome.status = CellStatus::kExecuted;
      outcome.runs_executed = sweep.perf.total_runs;
      payload_out = std::move(payload);
      status_out = prefix_for(i) + " executed (" +
                   std::to_string(cell.sweep_cells) + " cells, " +
                   std::to_string(sweep.perf.total_runs) + " runs)\n";
    } catch (const std::exception& e) {
      outcome.status = CellStatus::kFailed;
      outcome.error = e.what();
      status_out = prefix_for(i) + " FAILED: " + e.what() + "\n";
    }
    if (telemetry) {
      auto& metrics = CampaignMetrics::get();
      metrics.cells_in_flight.add(-1);
      metrics.cell_us.record(obs::now_micros() - started_us);
    }
  };

  if (options.fail_fast) {
    // Strictly sequential plan order so "skip everything after the
    // first failure" stays exact — no cell is even attempted once an
    // earlier one failed.
    bool stop = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (stop) {
        result.outcomes[i].status = CellStatus::kSkipped;
        continue;
      }
      const CampaignCell& cell = result.plan.cells[i];
      if (options.jsonl != nullptr) *options.jsonl << header_line(cell);
      std::string payload, status_line;
      if (!(options.resume && try_replay(i, payload, status_line))) {
        execute_cell(i, payload, status_line, options.observer);
      }
      if (options.jsonl != nullptr) *options.jsonl << payload;
      if (options.status != nullptr) *options.status << status_line;
      if (result.outcomes[i].status == CellStatus::kFailed) stop = true;
    }
    result.wall_seconds = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count();
    return result;
  }

  // Concurrent engine.  Emission stays in plan order: each cell's
  // header/payload/status lines are buffered, and a finalized cell
  // flushes the contiguous done-prefix under a mutex — so the streams
  // are byte-identical to a sequential run at any parallelism.
  std::vector<std::string> payloads(n), status_lines(n);
  std::vector<char> finalized(n, 0);
  std::size_t next_emit = 0;
  std::mutex emit_mu;
  auto finalize = [&](std::size_t i) {
    std::lock_guard<std::mutex> lock(emit_mu);
    finalized[i] = 1;
    while (next_emit < n && finalized[next_emit] != 0) {
      if (options.jsonl != nullptr) {
        *options.jsonl << header_line(result.plan.cells[next_emit])
                       << payloads[next_emit];
      }
      if (options.status != nullptr) *options.status << status_lines[next_emit];
      payloads[next_emit].clear();  // release buffered bytes early
      ++next_emit;
    }
  };

  // Phase 1: replay cache hits up front and split out the misses.
  // Duplicate fingerprints are deferred behind their first occurrence
  // so two executions never race on the same cache files.
  std::vector<std::size_t> primaries, deferred;
  std::set<std::string> claimed;
  for (std::size_t i = 0; i < n; ++i) {
    if (options.resume && try_replay(i, payloads[i], status_lines[i])) {
      finalize(i);
      continue;
    }
    if (claimed.insert(result.plan.cells[i].fingerprint).second) {
      primaries.push_back(i);
    } else {
      deferred.push_back(i);
    }
  }

  // Phase 2: execute the unique-fingerprint misses concurrently.  Each
  // sweep is internally parallel on the same shared pool; claimants
  // help with sweep chunks while waiting, so the pool never deadlocks.
  if (!primaries.empty()) {
    LockedObserver locked(options.observer);
    sim::ISweepObserver* observer =
        options.observer != nullptr ? &locked : nullptr;
    util::parallel_for(
        util::ThreadPool::shared(), 0, static_cast<int>(primaries.size()), 1,
        [&](int lo, int hi) {
          for (int b = lo; b < hi; ++b) {
            const std::size_t i = primaries[static_cast<std::size_t>(b)];
            execute_cell(i, payloads[i], status_lines[i], observer);
            finalize(i);
          }
        },
        options.cell_parallelism);
  }

  // Phase 3: deferred duplicates.  Their primary has committed by now,
  // so this is normally a replay; a miss (primary failed, or --fresh)
  // executes sequentially.
  for (const std::size_t i : deferred) {
    if (!try_replay(i, payloads[i], status_lines[i])) {
      execute_cell(i, payloads[i], status_lines[i], options.observer);
    }
    finalize(i);
  }

  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

void write_campaign_json(const CampaignSpec& spec,
                         const CampaignResult& result, std::ostream& os,
                         const CampaignReportOptions& options) {
  harness::JsonWriter json(os);
  json.begin_object();
  json.kv("schema", std::string("adacheck-campaign-report-v1"));
  json.kv("name", spec.name);
  json.kv("title", spec.title);
  json.key("config");
  json.begin_object();
  json.kv("version", util::version_string());
  json.kv("cache_dir", result.cache_dir);
  json.kv("cells", result.plan.cells.size());
  json.end_object();
  json.key("cells");
  json.begin_array();
  for (const auto& cell : result.plan.cells) {
    json.begin_object();
    json.kv("cell", cell.index);
    json.kv("scenario", cell.scenario_ref);
    json.kv("name", cell.resolved.name);
    if (!cell.environment.empty()) json.kv("environment", cell.environment);
    json.kv("seed", cell.seed);
    json.kv("runs", cell.resolved.config.runs);
    json.kv("sweep_cells", cell.sweep_cells);
    json.kv("fingerprint", cell.fingerprint);
    json.end_object();
  }
  json.end_array();
  if (options.include_execution) {
    std::size_t counts[4] = {0, 0, 0, 0};
    long long total_runs = 0;
    for (const auto& outcome : result.outcomes) {
      counts[static_cast<int>(outcome.status)]++;
      total_runs += outcome.runs_executed;
    }
    json.key("execution");
    json.begin_object();
    json.kv("cached", counts[static_cast<int>(CellStatus::kCached)]);
    json.kv("executed", counts[static_cast<int>(CellStatus::kExecuted)]);
    json.kv("failed", counts[static_cast<int>(CellStatus::kFailed)]);
    json.kv("skipped", counts[static_cast<int>(CellStatus::kSkipped)]);
    json.kv("runs_executed", total_runs);
    json.kv("wall_seconds", result.wall_seconds);
    json.key("cells");
    json.begin_array();
    for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
      const CellOutcome& outcome = result.outcomes[i];
      json.begin_object();
      json.kv("cell", i);
      json.kv("status", std::string(to_string(outcome.status)));
      json.kv("runs_executed", outcome.runs_executed);
      if (!outcome.result_hash.empty()) {
        json.kv("result_hash", outcome.result_hash);
      }
      if (!outcome.error.empty()) json.kv("error", outcome.error);
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }
  json.end_object();
  os << "\n";
}

std::string campaign_json(const CampaignSpec& spec,
                          const CampaignResult& result,
                          const CampaignReportOptions& options) {
  std::ostringstream out;
  write_campaign_json(spec, result, out, options);
  return out.str();
}

std::vector<CacheEntryInfo> cache_ls(const std::string& cache_dir) {
  std::error_code ec;
  if (!fs::exists(cache_dir, ec)) return {};
  fs::directory_iterator it(cache_dir, ec);
  if (ec) {
    throw std::runtime_error(cache_dir + ": cannot read cache directory (" +
                             ec.message() + ")");
  }

  struct Stem {
    bool has_payload = false;
    bool has_meta = false;
    std::uintmax_t bytes = 0;
    fs::file_time_type mtime{};  ///< the meta's when present
    bool has_mtime = false;
  };
  std::map<std::string, Stem> stems;
  for (const fs::directory_entry& entry : it) {
    std::error_code fec;
    if (!entry.is_regular_file(fec) || fec) continue;
    const std::string name = entry.path().filename().string();
    std::string stem;
    bool meta = false;
    if (name.size() > 10 && name.ends_with(".meta.json")) {
      stem = name.substr(0, name.size() - 10);
      meta = true;
    } else if (name.size() > 6 && name.ends_with(".jsonl")) {
      stem = name.substr(0, name.size() - 6);
    } else {
      continue;
    }
    Stem& record = stems[stem];
    (meta ? record.has_meta : record.has_payload) = true;
    const std::uintmax_t size = entry.file_size(fec);
    if (!fec) record.bytes += size;
    const fs::file_time_type mtime = entry.last_write_time(fec);
    if (!fec && (meta || !record.has_mtime)) {
      record.mtime = mtime;
      record.has_mtime = true;
    }
  }

  const auto now = fs::file_time_type::clock::now();
  std::vector<CacheEntryInfo> entries;
  entries.reserve(stems.size());
  for (const auto& [stem, record] : stems) {
    CacheEntryInfo info;
    info.fingerprint = stem;
    info.bytes = record.bytes;
    if (record.has_mtime) {
      info.age_seconds =
          std::chrono::duration<double>(now - record.mtime).count();
      if (info.age_seconds < 0.0) info.age_seconds = 0.0;
    }
    if (!record.has_meta) {
      info.defect = "missing meta (uncommitted payload)";
    } else if (!record.has_payload) {
      info.defect = "missing payload";
    } else {
      try {
        const auto meta = util::json::parse(
            read_file(meta_path(cache_dir, stem)));
        const util::json::Value* fp = meta.find("fingerprint");
        const util::json::Value* hash = meta.find("result_hash");
        if (fp == nullptr || !fp->is_string() || fp->as_string() != stem) {
          info.defect = "meta names a different fingerprint";
        } else if (hash == nullptr || !hash->is_string()) {
          info.defect = "meta lacks result_hash";
        } else if (util::content_hash128(
                       read_file(payload_path(cache_dir, stem)))
                       .hex() != hash->as_string()) {
          info.defect = "payload bytes do not match result_hash";
        } else {
          info.valid = true;
          if (const auto* v = meta.find("scenario"); v && v->is_string()) {
            info.scenario = v->as_string();
          }
          if (const auto* v = meta.find("environment"); v && v->is_string()) {
            info.environment = v->as_string();
          }
          if (const auto* v = meta.find("seed"); v && v->is_number()) {
            info.seed = static_cast<std::uint64_t>(v->as_int());
          }
          if (const auto* v = meta.find("sweep_cells"); v && v->is_number()) {
            info.sweep_cells = static_cast<std::size_t>(v->as_int());
          }
          if (const auto* v = meta.find("total_runs"); v && v->is_number()) {
            info.total_runs = v->as_int();
          }
          if (const auto* v = meta.find("code_version"); v && v->is_string()) {
            info.code_version = v->as_string();
          }
        }
      } catch (const std::exception&) {
        info.defect = "unparsable meta";
      }
    }
    entries.push_back(std::move(info));
  }
  return entries;
}

CacheGcResult cache_gc(const std::string& cache_dir,
                       const CacheGcOptions& options) {
  CacheGcResult result;
  for (CacheEntryInfo& info : cache_ls(cache_dir)) {
    const bool expired = options.older_than_seconds > 0.0 &&
                         info.age_seconds >= options.older_than_seconds;
    if (info.valid && !expired) {
      ++result.kept;
      continue;
    }
    if (!options.dry_run) {
      // Meta first: it is the commit marker, so a crash mid-removal
      // leaves an uncommitted payload (an ordinary miss), never a
      // committed entry with missing bytes.
      std::error_code ec;
      fs::remove(meta_path(cache_dir, info.fingerprint), ec);
      fs::remove(payload_path(cache_dir, info.fingerprint), ec);
    }
    result.bytes_freed += info.bytes;
    result.removed.push_back(std::move(info));
  }
  return result;
}

double parse_duration_seconds(const std::string& text) {
  if (text.empty()) {
    throw std::invalid_argument("empty duration");
  }
  double scale = 1.0;
  std::string number = text;
  switch (text.back()) {
    case 's': scale = 1.0; break;
    case 'm': scale = 60.0; break;
    case 'h': scale = 3600.0; break;
    case 'd': scale = 86400.0; break;
    case 'w': scale = 604800.0; break;
    default:
      if (std::isdigit(static_cast<unsigned char>(text.back())) == 0) {
        throw std::invalid_argument(
            text + ": unknown duration unit '" + std::string(1, text.back()) +
            "' (use s, m, h, d, or w)");
      }
      scale = 0.0;  // plain number of seconds, no unit to strip
  }
  if (scale != 0.0) {
    number = text.substr(0, text.size() - 1);
  } else {
    scale = 1.0;
  }
  std::size_t parsed = 0;
  double value = 0.0;
  try {
    value = std::stod(number, &parsed);
  } catch (const std::exception&) {
    throw std::invalid_argument(text + ": not a duration");
  }
  if (parsed != number.size() || value < 0.0) {
    throw std::invalid_argument(text + ": not a duration");
  }
  return value * scale;
}

}  // namespace adacheck::campaign
