// Campaign documents: schema "adacheck-campaign-v1".
//
// A campaign describes a *matrix of scenario runs* — scenario refs
// crossed with seed lists and environment overrides, plus runs/budget
// overrides — and the `adacheck campaign` runner executes it through a
// content-addressed result cache: every expanded cell gets a
// fingerprint over its resolved configuration (canonical JSON, so key
// order never matters) + seed + the code-version string, and cells
// whose fingerprint already has a cached result are replayed from disk
// byte-for-byte instead of simulated.  That is what makes week-long
// parameter studies cheap to iterate on: rerunning a thousand-cell
// campaign after editing one scenario re-executes only the cells the
// edit actually touched.
//
// Document layout (full reference in README.md "Campaigns"):
//
//   {
//     "schema": "adacheck-campaign-v1",
//     "name": "orbit-study",                // required identifier
//     "title": "...",                       // optional, defaults to name
//     "cache_dir": "orbit_cache",           // optional; default
//                                           // "<name>_cache" (cwd-relative,
//                                           // like every output path)
//     "output": "orbit_campaign.json",      // optional report path, or
//     "output": {"report": PATH, "jsonl": PATH},
//     "matrix": [                           // required, non-empty
//       {"scenario": "smoke.json",          // ref, relative to this file
//        "seeds": [1, 2, 3],                // optional; default: the
//                                           // scenario's own seed
//        "environments": ["bursty-orbit"],  // optional override axis:
//                                           // replaces every experiment's
//                                           // environment(s)
//        "runs": 500,                       // optional config.runs override
//        "budget": {"target_p_halfwidth": 0.01}}  // optional override
//     ]
//   }
//
// One matrix entry expands to |environments| x |seeds| cells (axes
// default to one element each).  Validation is strict and
// path-qualified with "did you mean" suggestions, same engine as the
// scenario schema (scenario/schema.hpp); referenced scenario files are
// loaded and validated when the campaign is planned
// (campaign/runner.hpp), not at parse time, so a campaign document is
// parseable without touching the filesystem.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "scenario/spec.hpp"
#include "util/json.hpp"

namespace adacheck::campaign {

/// One matrix entry: a scenario ref crossed with optional seed and
/// environment axes, plus overrides applied to every expanded cell.
struct MatrixEntry {
  std::string scenario;  ///< ref, resolved relative to the document
  /// Seed axis; empty = one cell with the scenario's own seed.
  std::vector<std::uint64_t> seeds;
  /// Environment override axis (registry names); empty = keep the
  /// scenario's environment(s).  A named override replaces BOTH the
  /// "environment" and "environments" keys of every experiment.
  std::vector<std::string> environments;
  int runs = 0;  ///< config.runs override; 0 = keep the scenario's
  /// Budget override; disabled = keep the scenario's budget.
  sim::RunBudget budget;
};

struct CampaignSpec {
  std::string name;
  std::string title;      ///< defaults to name
  std::string cache_dir;  ///< defaults to "<name>_cache"
  /// Default report / JSONL stream paths ("output", same two forms as
  /// a scenario document); the driver's --out/--jsonl flags take
  /// precedence (cli::resolve_output).
  std::string output;
  std::string output_jsonl;
  std::vector<MatrixEntry> matrix;
  /// Directory of the loaded document — scenario refs resolve against
  /// it ("" when parsed from text: refs resolve against the cwd).
  std::string base_dir;
};

/// True when a parsed JSON document declares the campaign schema —
/// the dispatch test `adacheck validate` uses to route a file to this
/// parser instead of the scenario one.
bool is_campaign_document(const util::json::Value& root);

/// Lowers a parsed JSON document into a validated CampaignSpec.
/// Throws scenario::ScenarioError on any schema violation.
CampaignSpec parse_campaign(const util::json::Value& root);

/// util::json::parse + parse_campaign.
CampaignSpec parse_campaign_text(std::string_view text);

/// Reads and parses a campaign file; error messages are prefixed with
/// the file path, and base_dir is set for scenario-ref resolution.
CampaignSpec load_campaign_file(const std::string& path);

}  // namespace adacheck::campaign
