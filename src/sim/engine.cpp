#include "sim/engine.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/rng.hpp"

namespace adacheck::sim {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

int popcount(unsigned mask) noexcept { return std::popcount(mask); }

/// Mutable run state shared by the helpers below.
struct EngineState {
  const SimSetup* setup = nullptr;
  const EngineConfig* config = nullptr;
  model::FaultSource* faults = nullptr;
  RunResult* result = nullptr;

  double committed = 0.0;   ///< cycles banked at consistent checkpoints
  double now = 0.0;         ///< wall-clock time
  double exposure = 0.0;    ///< cumulative vulnerable time
  int remaining_faults = 0; ///< R_f
  unsigned carry_mask = 0;  ///< replicas corrupted by trailing overhead ops
  double last_frequency = 0.0;
  std::size_t steps = 0;

  int redundancy() const noexcept { return setup->fault_model.processors; }

  double remaining_cycles() const noexcept {
    return setup->task.cycles - committed;
  }

  void trace(TraceEventKind kind, double value = 0.0, int aux = 0) {
    if (config->record_trace) result->trace.push(kind, now, value, aux);
  }

  void bump_steps() {
    if (++steps > config->max_steps) {
      throw std::runtime_error(
          "engine: step limit exceeded (degenerate checkpoint plan?)");
    }
  }

  /// Collects faults on the exposure window [exposure, exposure+span)
  /// and returns the bitmask of replicas struck.  A common-cause
  /// arrival (processor == model::kAllReplicas) strikes every replica.
  unsigned collect_faults(double span) {
    unsigned mask = 0;
    const double window_end = exposure + span;
    double cursor = exposure;
    int processor = 0;
    for (;;) {
      const double t = faults->next_fault_after(cursor, processor);
      if (!(t < window_end)) break;
      ++result->faults;
      if (config->record_trace) {
        // Both wall-clock time and the exposure coordinate (for replay).
        result->trace.push(TraceEventKind::kFault, now + (t - exposure), t,
                           processor);
      }
      // ~0u >> (32 - n) rather than (1u << n) - 1: n may be the full
      // mask width (kMaxProcessors == 32), where the left shift is UB.
      mask |= processor == model::kAllReplicas
                  ? ~0u >> (32 - redundancy())
                  : 1u << processor;
      cursor = std::nextafter(t, kInf);
    }
    exposure = window_end;
    return mask;
  }

  /// Executes a computation window of `duration` time at `level`.
  /// Returns the replica-fault mask for the window.
  unsigned run_computation(const model::SpeedLevel& level, double duration,
                           int sub_index) {
    const unsigned mask = collect_faults(duration);
    now += duration;
    result->meter.charge(level, duration * level.frequency);
    trace(TraceEventKind::kSegment, duration * level.frequency, sub_index);
    return mask;
  }

  /// Executes a checkpoint/vote/rollback operation of `cycles` cycles.
  /// Faults strike during the operation only when
  /// faults_during_overhead is set.
  unsigned run_overhead(const model::SpeedLevel& level, double cycles) {
    if (cycles <= 0.0) return 0;
    const double duration = cycles / level.frequency;
    unsigned mask = 0;
    if (setup->fault_model.faults_during_overhead) {
      mask = collect_faults(duration);
    }
    now += duration;
    result->meter.charge(level, cycles);
    return mask;
  }
};

/// Corruption bookkeeping for one interval attempt: which replicas have
/// faulted since the last consistency point, in which sub-interval the
/// first fault landed, and in which sub-interval the healthy majority
/// was first lost (the voting rollback boundary — SCPs up to there
/// still hold a recoverable majority).  For N replicas the majority is
/// lost once ceil(N/2) distinct replicas are corrupted (2-of-3 for the
/// paper's TMR).
struct AttemptCorruption {
  unsigned mask = 0;
  int majority_count = 2;  ///< corrupted-replica count that kills majority
  int first_sub = 0;       ///< 0 = clean
  int majority_sub = 0;    ///< 0 = majority still holds

  void note(unsigned new_mask, int sub) {
    if (new_mask == 0) return;
    if (first_sub == 0) first_sub = sub;
    const unsigned merged = mask | new_mask;
    if (majority_sub == 0 && popcount(merged) >= majority_count) {
      majority_sub = sub;
    }
    mask = merged;
  }
  void clear() { *this = AttemptCorruption{.majority_count = majority_count}; }
  bool corrupted() const noexcept { return mask != 0; }
};

/// Result of executing one CSCP-interval attempt.
enum class AttemptOutcome {
  kCommitted,       ///< interval committed cleanly
  kCommittedVoted,  ///< committed after a majority-vote correction (TMR)
  kFaultDetected,   ///< rolled back; policy must re-plan
};

/// Executes one outer interval under `decision`.
///
/// DMR (2 replicas): any comparison that sees corruption triggers a
/// rollback — to the last good SCP (SCP mode) or the interval start
/// (CCP/None mode).
/// NMR (N >= 3 replicas, the paper's TMR generalized): a comparison
/// seeing a corrupted strict minority majority-votes it back to health
/// (cost t_r, no work lost); once a majority cannot be formed the
/// comparison forces a rollback, to the last SCP that still has a
/// healthy majority (SCP mode) or to the interval start (CCP/None
/// mode).
AttemptOutcome execute_interval(EngineState& st, const Decision& decision) {
  const auto& level = decision.speed;
  const auto& costs = st.setup->costs;
  const double f = level.frequency;
  const int n_rep = st.redundancy();
  const bool voting = n_rep >= 3;

  // Clamp the plan to the remaining work.  Interval lengths are wall
  // clock at the current speed; work is cycles.
  const double remaining_time = st.remaining_cycles() / f;
  const double itv_outer = std::min(decision.cscp_interval, remaining_time);
  double itv_sub = decision.inner == InnerKind::kNone
                       ? itv_outer
                       : std::min(decision.sub_interval, itv_outer);
  if (!(itv_outer > 0.0) || !(itv_sub > 0.0)) {
    throw std::invalid_argument("engine: non-positive checkpoint interval");
  }
  // Number of sub-intervals, preserving the planned sub length (the
  // paper inserts checkpoints by length); the last one may be shorter.
  const double n_real = itv_outer / itv_sub;
  const int n_subs = std::max(1, static_cast<int>(std::ceil(n_real - 1e-9)));

  // Corruption carried over from a trailing overhead fault of the
  // previous interval poisons the attempt from its start.
  AttemptCorruption corrupt;
  // ceil(N/2) corrupted replicas leave no healthy strict majority.
  corrupt.majority_count = (n_rep + 1) / 2;
  corrupt.note(st.carry_mask, 1);
  st.carry_mask = 0;

  // A comparison seeing a corrupted strict minority can vote it back.
  const auto votable = [&] {
    return voting && popcount(corrupt.mask) * 2 < n_rep;
  };
  const auto vote_correct = [&](unsigned op_mask, int next_sub) {
    ++st.result->corrections;
    --st.remaining_faults;
    st.trace(TraceEventKind::kCorrection, 0.0,
             static_cast<int>(corrupt.mask));
    const unsigned repair_mask = st.run_overhead(level, costs.rollback);
    corrupt.clear();
    corrupt.note(op_mask | repair_mask, next_sub);
  };

  bool voted_this_interval = false;

  for (int i = 1; i <= n_subs; ++i) {
    st.bump_steps();
    const double w =
        i < n_subs ? itv_sub
                   : itv_outer - static_cast<double>(n_subs - 1) * itv_sub;
    corrupt.note(st.run_computation(level, w, i), i);

    const bool is_last = i == n_subs;
    if (!is_last) {
      switch (decision.inner) {
        case InnerKind::kScp: {
          // Store all replica states; no comparison, so no detection.
          // A fault during the store corrupts the stored snapshot:
          // attribute it to this sub-interval so rollback lands before.
          const unsigned op_mask = st.run_overhead(level, costs.store);
          ++st.result->checkpoints_scp;
          st.trace(TraceEventKind::kCheckpoint, costs.store, 0);
          corrupt.note(op_mask, i);
          break;
        }
        case InnerKind::kCcp: {
          // Compare the running states: sees any corruption so far.
          const unsigned op_mask = st.run_overhead(level, costs.compare);
          ++st.result->checkpoints_ccp;
          st.trace(TraceEventKind::kCheckpoint, costs.compare, 1);
          if (corrupt.corrupted()) {
            if (votable()) {
              // NMR: the healthy majority repairs the deviant minority;
              // execution continues with no work lost.  A fault during
              // the compare/repair corrupts the *following* window.
              vote_correct(op_mask, i + 1);
              voted_this_interval = true;
              break;
            }
            // No majority: roll back to the interval-start CSCP.
            st.trace(TraceEventKind::kDetection);
            const unsigned rollback_mask =
                st.run_overhead(level, costs.rollback);
            ++st.result->detections;
            ++st.result->rollbacks;
            --st.remaining_faults;
            st.trace(TraceEventKind::kRollback,
                     static_cast<double>(i) * itv_sub * f,
                     st.result->detections);
            // Faults during the compare or restore slip past and
            // corrupt the next attempt.
            st.carry_mask = op_mask | rollback_mask;
            return AttemptOutcome::kFaultDetected;
          }
          // Clean comparison; a fault during the compare corrupts the
          // following execution (seen at the next comparison).
          corrupt.note(op_mask, i + 1);
          break;
        }
        case InnerKind::kNone:
          break;  // unreachable: n_subs == 1 when inner is none
      }
    }
  }

  // Interval-end CSCP: one atomic compare-and-store operation costing
  // t_cp + t_s whether or not the comparison agrees (the paper's lumped
  // per-checkpoint cost c; its baseline results across the two cost
  // flavors confirm the full cost is paid on mismatch too).
  const unsigned cscp_mask = st.run_overhead(level, costs.cscp());
  st.trace(TraceEventKind::kCheckpoint, costs.cscp(), 2);

  if (corrupt.corrupted() && votable()) {
    // NMR: repair the deviant minority and commit the interval.
    vote_correct(cscp_mask, 1);
    st.carry_mask = corrupt.mask;
    ++st.result->checkpoints_cscp;
    st.committed += itv_outer * f;
    st.trace(TraceEventKind::kCommit, st.committed);
    return AttemptOutcome::kCommittedVoted;
  }

  if (corrupt.corrupted()) {
    st.trace(TraceEventKind::kDetection);
    ++st.result->detections;
    ++st.result->rollbacks;
    --st.remaining_faults;
    const unsigned rollback_mask = st.run_overhead(level, costs.rollback);
    if (decision.inner == InnerKind::kScp) {
      // Roll back to the most recent recoverable SCP: DMR needs stored
      // states that are identical (before the first fault); NMR only a
      // healthy majority (before majority loss).  That prefix is
      // recovery-consistent, so it is committed.
      const int boundary = voting && corrupt.majority_sub > 0
                               ? corrupt.majority_sub
                               : corrupt.first_sub;
      const double committed_subs = static_cast<double>(boundary - 1);
      const double committed_cycles = committed_subs * itv_sub * f;
      st.committed += committed_cycles;
      st.trace(TraceEventKind::kRollback, itv_outer * f - committed_cycles,
               st.result->detections);
    } else {
      // CCP/None: nothing stored since the interval start.
      st.trace(TraceEventKind::kRollback, itv_outer * f,
               st.result->detections);
    }
    st.carry_mask = cscp_mask | rollback_mask;
    return AttemptOutcome::kFaultDetected;
  }

  // Agreement: the stored snapshot commits the whole interval.
  ++st.result->checkpoints_cscp;
  st.committed += itv_outer * f;
  st.trace(TraceEventKind::kCommit, st.committed);
  // A fault during the operation corrupts the running state after the
  // committed snapshot; the next comparison will catch it.
  st.carry_mask = cscp_mask;
  return voted_this_interval ? AttemptOutcome::kCommittedVoted
                             : AttemptOutcome::kCommitted;
}

void validate_decision(const Decision& d) {
  if (!(d.speed.frequency > 0.0) || !(d.speed.voltage > 0.0)) {
    throw std::invalid_argument("engine: decision with non-positive speed");
  }
  if (d.abort) return;  // intervals unused
  if (!(d.cscp_interval > 0.0)) {
    throw std::invalid_argument("engine: decision with non-positive Itv");
  }
  if (d.inner != InnerKind::kNone && !(d.sub_interval > 0.0)) {
    throw std::invalid_argument("engine: decision with non-positive itv");
  }
}

}  // namespace

void SimSetup::validate() const {
  task.validate();
  costs.validate();
  if (!fault_model.valid()) {
    throw std::invalid_argument(
        "SimSetup: fault model needs rate >= 0 and 2..32 processors");
  }
  environment.validate();
}

RunResult simulate(const SimSetup& setup, ICheckpointPolicy& policy,
                   model::FaultSource& fault_source,
                   const EngineConfig& config) {
  setup.validate();
  RunResult result;

  EngineState st;
  st.setup = &setup;
  st.config = &config;
  st.faults = &fault_source;
  st.result = &result;
  st.remaining_faults = setup.task.fault_tolerance;

  ExecContext ctx;
  ctx.task = &setup.task;
  ctx.costs = &setup.costs;
  ctx.processor = &setup.processor;
  // Policies see the environment's long-run effective rate: exact for
  // exponential arrivals (multiplier 1 leaves the rate bit-identical),
  // the documented approximation otherwise.
  ctx.lambda = setup.fault_model.rate * setup.environment.rate_multiplier();
  ctx.redundancy = setup.fault_model.processors;

  auto refresh_ctx = [&] {
    ctx.remaining_cycles = st.remaining_cycles();
    ctx.now = st.now;
    ctx.exposure = st.exposure;
    ctx.remaining_faults = st.remaining_faults;
    ctx.faults_detected = result.detections + result.corrections;
  };

  refresh_ctx();
  Decision decision = policy.initial(ctx);

  const double work_eps = setup.task.cycles * 1e-12;

  for (;;) {
    validate_decision(decision);
    if (st.remaining_cycles() <= work_eps) {
      result.outcome = st.now <= setup.task.deadline
                           ? RunOutcome::kCompleted
                           : RunOutcome::kDeadlineMiss;
      result.finish_time = st.now;
      st.trace(result.completed() ? TraceEventKind::kComplete
                                  : TraceEventKind::kDeadlineMiss,
               st.committed);
      break;
    }
    if (decision.abort) {
      result.outcome = RunOutcome::kAborted;
      result.finish_time = st.now;
      st.trace(TraceEventKind::kAbort);
      break;
    }
    if (st.now >= setup.task.deadline) {
      result.outcome = RunOutcome::kDeadlineMiss;
      result.finish_time = setup.task.deadline;
      st.trace(TraceEventKind::kDeadlineMiss, st.committed);
      break;
    }

    if (decision.speed.frequency != st.last_frequency) {
      if (st.last_frequency != 0.0) {
        ++result.speed_switches;
        st.trace(TraceEventKind::kSpeedChange, decision.speed.frequency);
      }
      st.last_frequency = decision.speed.frequency;
    }

    const AttemptOutcome outcome = execute_interval(st, decision);
    refresh_ctx();
    if (st.remaining_cycles() <= work_eps) {
      continue;  // done — the loop top records the outcome
    }
    if (outcome == AttemptOutcome::kFaultDetected ||
        outcome == AttemptOutcome::kCommittedVoted) {
      // Both consume fault budget; the policy re-plans (Fig. 3/6/7
      // "else" branch).  For a voted commit nothing was lost, but the
      // remaining budget changed, so the plan may too.
      decision = policy.on_fault(ctx);
    } else if (auto replacement = policy.on_commit(ctx)) {
      decision = *replacement;
    }
  }

  result.energy = result.meter.total();
  result.cycles_executed = result.meter.total_cycles();
  result.cycles_committed = st.committed;
  return result;
}

RunResult simulate_seeded(const SimSetup& setup, ICheckpointPolicy& policy,
                          std::uint64_t seed, const EngineConfig& config) {
  // Stack-constructed sources keep the per-run hot path allocation-free
  // (the same three-way dispatch as model::make_fault_source).
  util::Xoshiro256 rng(seed);
  const auto& env = setup.environment;
  if (env.plain_exponential()) {
    model::PoissonFaultSource source(setup.fault_model, rng);
    return simulate(setup, policy, source, config);
  }
  if (env.burst.enabled) {
    model::MmppFaultSource source(setup.fault_model, env, rng);
    return simulate(setup, policy, source, config);
  }
  model::RenewalFaultSource source(setup.fault_model, env, rng);
  return simulate(setup, policy, source, config);
}

}  // namespace adacheck::sim
