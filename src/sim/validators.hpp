// Invariant validators over run results and traces.
//
// Property-based tests and the failure-injection suites run these over
// thousands of randomized executions; any violated invariant indicates
// an engine bug rather than a modeling choice.
#pragma once

#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/run_result.hpp"

namespace adacheck::sim {

/// One violated invariant, human readable.
struct Violation {
  std::string message;
};

/// Checks result-level invariants (no trace required):
///  - energy equals the meter total and is non-negative
///  - executed cycles >= committed cycles >= 0
///  - on completion, committed work equals the task's cycles
///  - detections == rollbacks; faults >= detections + corrections
///  - finish_time <= deadline on completion; > 0 whenever work ran
std::vector<Violation> validate_result(const SimSetup& setup,
                                       const RunResult& result);

/// Checks trace-level invariants (requires record_trace):
///  - event timestamps are non-decreasing
///  - committed cycles (kCommit values) are non-decreasing and end at N
///    on completion
///  - every detection is followed by a rollback before the next segment
///  - segment cycles sum to the meter's total computation cycles
///  - rollback never discards more than one outer interval of work
std::vector<Violation> validate_trace(const SimSetup& setup,
                                      const RunResult& result);

/// Convenience: both validators; empty result means all invariants hold.
std::vector<Violation> validate_all(const SimSetup& setup,
                                    const RunResult& result);

}  // namespace adacheck::sim
