// Pluggable per-run metric recorders.
//
// The results pipeline is an open API: a cell's aggregation is a
// MetricSet — an ordered list of IMetricRecorder instances that each
// observe every RunResult, merge with same-typed peers in run-index
// order, and emit named values.  Slot 0 is always the built-in
// CellStatsRecorder, which reimplements the paper's CellStats fields
// (P, E, and the extended accumulators) with bit-identical values at
// any thread count; everything after slot 0 comes from the cell's
// MetricSuite — the recipe named in MonteCarloConfig::metrics (and in
// a scenario's "metrics" array).
//
// Determinism contract: recorders are created per chunk, observe runs
// in ascending run-index order within the chunk, and are merged in
// chunk-index order.  A recorder whose merge is exact for that order
// (integer tallies, or the same Chan merges CellStats uses) therefore
// produces identical values for threads = 1 and threads = N.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sim/engine.hpp"
#include "sim/run_result.hpp"
#include "util/statistics.hpp"

namespace adacheck::sim {

/// Fixed chunk grain for Monte-Carlo aggregation: partial merges (and
/// the budget evaluator's stopping boundaries) happen per chunk in
/// index order, so any change here changes rounding (not correctness).
/// 256 runs keeps >= 39 chunks for the paper's 10,000-run cells —
/// enough parallelism without drowning the queue.
inline constexpr int kRunChunk = 256;

/// Precision targets for sequential stopping.  When enabled() (any
/// target set), a cell runs in deterministic seed-indexed waves of
/// kRunChunk-run chunks until every set target is met at a chunk
/// boundary, instead of a fixed MonteCarloConfig::runs count.  The
/// stop rule depends only on the completed-chunk prefix in index
/// order — never on thread scheduling — so budgeted results are
/// bit-identical across thread counts.
struct RunBudget {
  /// Stop once the Wilson 95% half-width of P is at or below this
  /// (equivalently of P(miss): the interval is swap-symmetric).
  /// 0 = no probability target.
  double target_p_halfwidth = 0.0;
  /// Stop once E[energy | success]'s 95% CI half-width divided by the
  /// mean is at or below this.  0 = no energy target.
  double target_e_rel_halfwidth = 0.0;
  /// Never stop before this many runs; 0 = one chunk (kRunChunk).
  int min_runs = 0;
  /// Hard cap; 0 = the config's fixed `runs` count.
  int max_runs = 0;

  /// A budget participates in scheduling only when a target is set.
  bool enabled() const noexcept {
    return target_p_halfwidth > 0.0 || target_e_rel_halfwidth > 0.0;
  }
  /// The hard cap this budget resolves to for a cell whose fixed count
  /// is `fixed_runs`.
  int resolved_max(int fixed_runs) const noexcept {
    return max_runs > 0 ? max_runs : fixed_runs;
  }
  /// The floor, clamped to the cap so min/max never cross at runtime.
  int resolved_min(int fixed_runs) const noexcept {
    const int floor = min_runs > 0 ? min_runs : kRunChunk;
    const int cap = resolved_max(fixed_runs);
    return floor < cap ? floor : cap;
  }
  /// Throws std::invalid_argument on non-finite or negative targets,
  /// negative caps, min_runs > max_runs (both set), or caps set
  /// without any target (a cap-only budget silently degenerating to
  /// the fixed path would hide a config mistake).
  void validate() const;
};
struct CellStats {
  util::BinomialStats completion;        ///< P
  util::RunningStats energy_success;     ///< E (paper's definition)
  util::RunningStats energy_all;         ///< energy over every run
  util::RunningStats finish_time_success;
  util::RunningStats faults;             ///< physical faults per run
  util::RunningStats rollbacks;
  util::RunningStats corrections;        ///< TMR vote repairs per run
  util::RunningStats high_speed_cycles;  ///< cycles above the base speed
  std::size_t aborted_runs = 0;
  std::size_t validation_failures = 0;

  double probability() const noexcept { return completion.proportion(); }
  /// Paper's E: NaN when no run succeeded (the tables print "NaN").
  double energy() const noexcept { return energy_success.mean(); }

  void merge(const CellStats& other) noexcept;
};

/// Streaming budget evaluator: absorbs completed chunks' CellStats in
/// index order (Welford/Chan merges for energy, exact counter merges
/// for completion) and answers the stop question at each chunk
/// boundary.  Lives beside the recorders because the run loop feeds it
/// the same per-chunk partials it merges into the cell result — the
/// decision stream and the reported statistics can never diverge.
class PrecisionRecorder {
 public:
  /// An inert recorder (should_stop() always true).  Exists so
  /// containers can be default-constructed.
  PrecisionRecorder() = default;
  /// Evaluator for one cell; `fixed_runs` is the cell's
  /// MonteCarloConfig::runs, used to resolve the budget's caps.
  PrecisionRecorder(const RunBudget& budget, int fixed_runs);

  /// Folds one completed chunk's statistics in; chunks must arrive in
  /// run-index order (same contract as MetricSet::merge).
  void absorb(const CellStats& chunk);

  /// Runs absorbed so far.
  std::size_t runs() const noexcept { return completion_.trials(); }
  /// True once every set target is met.  NaN half-widths (no trials,
  /// or fewer than two successful runs for the energy target) never
  /// satisfy a target.
  bool targets_met() const noexcept;
  /// The stop rule: at or past the floor AND (targets met OR at the
  /// cap).
  bool should_stop() const noexcept;

  /// Achieved Wilson 95% half-width on P; NaN before any runs.
  double p_halfwidth() const noexcept {
    return completion_.wilson_halfwidth();
  }
  /// Achieved relative 95% half-width on E[energy | success]; NaN
  /// until two successful runs exist.
  double e_rel_halfwidth() const noexcept {
    return energy_.rel_ci95_halfwidth();
  }

 private:
  RunBudget budget_;
  std::size_t min_ = 0;
  std::size_t max_ = 0;
  util::BinomialStats completion_;
  util::RunningStats energy_;
};

/// Opaque workload-specific payload a custom chunk runner can attach
/// to a RunView (RunView::detail).  Recorders that know the concrete
/// type downcast; everything else (including the built-in
/// CellStatsRecorder) ignores it.
struct IRunDetail {
  virtual ~IRunDetail() = default;
};

/// One simulated run as seen by recorders: the engine's RunResult plus
/// the loop-level context recorders need (the setup, the base
/// frequency the default recorder compares speeds against, and the
/// validator verdict when validation is enabled).
struct RunView {
  const SimSetup& setup;
  const RunResult& result;
  double base_frequency = 1.0;    ///< setup.processor.slowest().frequency
  bool validation_failed = false; ///< only meaningful with config.validate
  /// Workload payload for custom recorders; null for classic cells.
  const IRunDetail* detail = nullptr;
};

/// Snapshot of a MetricSet's emitted values: one named group per
/// recorder (beyond the built-in slot 0), each an ordered list of
/// (key, value) pairs.  Copyable — this is what reports and observers
/// carry around after the move-only recorders are gone.
struct MetricValues {
  struct Entry {
    std::string key;
    double value = 0.0;
  };
  struct Group {
    std::string recorder;
    std::vector<Entry> entries;
  };
  std::vector<Group> groups;

  bool empty() const noexcept { return groups.empty(); }
  /// Looks up one value; nullptr when the group or key is absent.
  const double* find(std::string_view recorder, std::string_view key) const;
};

/// One streaming metric over a cell's runs.  Implementations must obey
/// the determinism contract in the file comment: observe() is called
/// once per run in ascending run-index order within a chunk, merge()
/// receives a peer built by the same factory covering the immediately
/// following run-index range, and emit() appends (key, value) entries
/// in a fixed order.
class IMetricRecorder {
 public:
  virtual ~IMetricRecorder() = default;

  /// Stable identifier; the group name in reports.
  virtual std::string_view name() const = 0;
  virtual void observe(const RunView& run) = 0;
  /// Merges a same-typed peer that observed the runs immediately after
  /// this recorder's.  Implementations may downcast; the runner
  /// guarantees the peer came from the same suite slot.
  virtual void merge(const IMetricRecorder& peer) = 0;
  /// Appends this recorder's named values to `out.entries`
  /// (out.recorder is already set to name()).
  virtual void emit(MetricValues::Group& out) const = 0;
};

/// Builds a fresh recorder for one cell.  The setup is the cell's —
/// factories read bounds (deadline, speed levels) from it so
/// fixed-range accumulators like histograms can be sized upfront.
using MetricRecorderFactory =
    std::function<std::unique_ptr<IMetricRecorder>(const SimSetup& setup)>;

/// An immutable recipe for the extra recorders of a cell, shared by
/// every chunk of every cell that uses it (via
/// MonteCarloConfig::metrics).  Compose with add(); instantiate() is
/// called once per chunk.
class MetricSuite {
 public:
  MetricSuite& add(std::string name, MetricRecorderFactory factory);

  bool empty() const noexcept { return factories_.empty(); }
  std::size_t size() const noexcept { return factories_.size(); }
  /// Registry names in slot order (reports list these in "config").
  const std::vector<std::string>& names() const noexcept { return names_; }

  std::vector<std::unique_ptr<IMetricRecorder>> instantiate(
      const SimSetup& setup) const;

 private:
  std::vector<std::string> names_;
  std::vector<MetricRecorderFactory> factories_;
};

/// The built-in default recorder: today's CellStats, observed exactly
/// as the pre-redesign run loop did (same operations, same order), so
/// the merged values are bit-identical to the seed implementation.
class CellStatsRecorder final : public IMetricRecorder {
 public:
  std::string_view name() const override { return "cell_stats"; }
  void observe(const RunView& run) override;
  void merge(const IMetricRecorder& peer) override;
  /// Emits nothing: CellStats values are the report's first-class cell
  /// fields (p, e, ...), not a named metrics group.
  void emit(MetricValues::Group& out) const override;

  const CellStats& stats() const noexcept { return stats_; }
  CellStats& stats() noexcept { return stats_; }

 private:
  CellStats stats_;
};

/// Finish-time / energy distributions with tail quantiles ("tails").
/// Finish time (successful runs) is binned over [0, deadline]; energy
/// (all runs) over [0, V(f_max)^2 * f_max * deadline] — the maximum
/// energy a run bounded by the deadline can dissipate.  Integer bin
/// tallies merge exactly, so quantiles are bit-identical at any thread
/// count.
class TailRecorder final : public IMetricRecorder {
 public:
  static constexpr std::size_t kBins = 64;

  explicit TailRecorder(const SimSetup& setup);

  std::string_view name() const override { return "tails"; }
  void observe(const RunView& run) override;
  void merge(const IMetricRecorder& peer) override;
  void emit(MetricValues::Group& out) const override;

  const util::Histogram& finish_time() const noexcept { return finish_time_; }
  const util::Histogram& energy() const noexcept { return energy_; }

 private:
  util::Histogram finish_time_;
  util::Histogram energy_;
};

/// Checkpoint-operation and speed-switch profile ("checkpoints"):
/// means of the per-run SCP/CCP/CSCP checkpoint counts, detections,
/// and DVS speed switches — RunResult fields the default cell stats
/// never aggregated.
class CheckpointRecorder final : public IMetricRecorder {
 public:
  std::string_view name() const override { return "checkpoints"; }
  void observe(const RunView& run) override;
  void merge(const IMetricRecorder& peer) override;
  void emit(MetricValues::Group& out) const override;

 private:
  util::RunningStats scp_, ccp_, cscp_, detections_, speed_switches_;
};

/// Registry names accepted by make_metric_suite (and a scenario's
/// "metrics" array): currently "tails" and "checkpoints".
std::vector<std::string> known_metric_recorders();

/// Builds a suite from registry names (slot order = name order).
/// Throws std::invalid_argument on an unknown or duplicate name.
std::shared_ptr<const MetricSuite> make_metric_suite(
    const std::vector<std::string>& names);

/// The per-chunk aggregation state: the built-in CellStatsRecorder in
/// slot 0 plus one recorder per suite entry.  Move-only (owns the
/// recorders); values() snapshots the extras into a copyable
/// MetricValues.
class MetricSet {
 public:
  /// An empty set (no recorders); observe() on it is invalid.  Exists
  /// so containers of MetricSet can be default-constructed.
  MetricSet() = default;

  /// The aggregation state for one chunk of one cell.
  static MetricSet for_cell(const SimSetup& setup, const MetricSuite* suite);

  /// The aggregation state from an explicit recorder list — for
  /// workloads (graph cells) whose recorders are not built from a
  /// SimSetup.  Slot 0 must be a CellStatsRecorder; throws
  /// std::invalid_argument otherwise.
  static MetricSet from_recorders(
      std::vector<std::unique_ptr<IMetricRecorder>> recorders);

  bool valid() const noexcept { return !recorders_.empty(); }

  void observe(const RunView& run);
  /// Merges `other` slot-by-slot; `other` must have been built by
  /// for_cell with the same setup/suite and cover the immediately
  /// following run-index range.
  void merge(const MetricSet& other);

  const CellStats& cell_stats() const;
  CellStats& cell_stats();
  /// Emitted values of every suite recorder (slot 0's CellStats is
  /// surfaced as first-class report fields instead).
  MetricValues values() const;

 private:
  std::vector<std::unique_ptr<IMetricRecorder>> recorders_;
};

}  // namespace adacheck::sim
