#include "sim/policy.hpp"

#include "sim/run_result.hpp"

namespace adacheck::sim {

const char* to_string(InnerKind kind) noexcept {
  switch (kind) {
    case InnerKind::kNone: return "none";
    case InnerKind::kScp: return "scp";
    case InnerKind::kCcp: return "ccp";
  }
  return "?";
}

const char* to_string(RunOutcome outcome) noexcept {
  switch (outcome) {
    case RunOutcome::kCompleted: return "completed";
    case RunOutcome::kDeadlineMiss: return "deadline-miss";
    case RunOutcome::kAborted: return "aborted";
  }
  return "?";
}

}  // namespace adacheck::sim
