// Outcome of one simulated task execution.
#pragma once

#include "model/energy.hpp"
#include "sim/trace.hpp"

namespace adacheck::sim {

enum class RunOutcome {
  kCompleted,     ///< all work committed at or before the deadline
  kDeadlineMiss,  ///< wall clock reached the deadline with work pending
  kAborted,       ///< the policy broke with task failure early
};

const char* to_string(RunOutcome outcome) noexcept;

struct RunResult {
  RunOutcome outcome = RunOutcome::kDeadlineMiss;
  double finish_time = 0.0;      ///< completion time, or time at failure
  double energy = 0.0;           ///< sum V^2 * cycles, one processor
  double cycles_executed = 0.0;  ///< incl. re-execution and overhead
  double cycles_committed = 0.0; ///< useful work banked (== N on success)
  int faults = 0;                ///< physical faults that struck
  int detections = 0;            ///< mismatches that forced a rollback
  int corrections = 0;           ///< TMR majority-vote repairs (no rollback)
  int rollbacks = 0;             ///< recovery actions taken
  int checkpoints_scp = 0;
  int checkpoints_ccp = 0;
  int checkpoints_cscp = 0;
  int speed_switches = 0;
  model::EnergyMeter meter;      ///< per-frequency breakdown
  Trace trace;                   ///< populated when tracing is enabled

  bool completed() const noexcept { return outcome == RunOutcome::kCompleted; }
};

}  // namespace adacheck::sim
