// Sweep observers and cooperative cancellation.
//
// run_cells / run_sweep execute a flat chunk queue; an ISweepObserver
// watches cell-granular progress of that queue without perturbing it:
// on_cell_start when a cell's first chunk begins, on_cell_done exactly
// once per cell — with the cell's final merged statistics — when its
// last chunk finishes, and on_progress after every chunk.  The runner
// SERIALIZES all callbacks behind one mutex: implementations never see
// concurrent calls and need no locking of their own, but they run on
// worker threads and block the queue while they execute, so they
// should be quick.
//
// Passing no observer and no cancellation token is the zero-cost null
// path: the runner skips every piece of tracking bookkeeping and
// behaves exactly like the pre-observer implementation.
//
// Cancellation is cooperative: a CancellationToken flips an atomic
// flag that workers check between chunks.  Remaining chunks are
// drained without simulating, and the runner throws SweepCancelled —
// partial statistics never escape as if they were complete.  An
// observer or recorder that throws aborts the sweep the same way: the
// queue fast-drains and the first exception propagates from the
// TaskGroup.
#pragma once

#include <atomic>
#include <stdexcept>
#include <vector>

#include "sim/metrics.hpp"

namespace adacheck::sim {

/// One completed cell: the merged default statistics plus the emitted
/// values of the cell's extra metric recorders (empty when the cell's
/// config named no suite).
struct CellResult {
  CellStats stats;
  MetricValues metrics;
};

/// Chunk-granular progress of one run_cells execution.  For budgeted
/// cells (MonteCarloConfig::budget) runs_total is the runs scheduled
/// so far and grows as waves are added — it is an estimate that only
/// settles when every budgeted cell has stopped; runs_done counts
/// every executed run, including wave overshoot past a cell's
/// stopping chunk, so runs_done == runs_total on the final call.
struct SweepProgress {
  std::size_t cells_total = 0;
  std::size_t cells_done = 0;
  long long runs_total = 0;
  long long runs_done = 0;
};

/// Observer interface; default implementations ignore every event, so
/// implementations override only what they need.
class ISweepObserver {
 public:
  virtual ~ISweepObserver() = default;

  /// The first chunk of cell `cell` is about to execute.
  virtual void on_cell_start(std::size_t cell) { (void)cell; }
  /// Cell `cell` finished: every chunk executed and merged (for a
  /// budgeted cell, the stopping prefix was merged).  Fires exactly
  /// once per cell, in completion order (not index order).
  virtual void on_cell_done(std::size_t cell, const CellResult& result) {
    (void)cell;
    (void)result;
  }
  /// A chunk finished.  Monotonic within a sweep; the final call
  /// reports cells_done == cells_total.
  virtual void on_progress(const SweepProgress& progress) { (void)progress; }
};

/// Cooperative stop flag shared between a controller and a sweep.
/// request_stop() may be called from any thread (an observer callback
/// included); workers drain the remaining queue without simulating and
/// the runner throws SweepCancelled.
class CancellationToken {
 public:
  void request_stop() noexcept {
    stop_.store(true, std::memory_order_relaxed);
  }
  bool stop_requested() const noexcept {
    return stop_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> stop_{false};
};

/// Thrown by run_cells / run_sweep when a CancellationToken stopped the
/// sweep before every chunk executed.
class SweepCancelled : public std::runtime_error {
 public:
  SweepCancelled() : std::runtime_error("sweep cancelled") {}
};

/// Fans events out to several observers in registration order (e.g.
/// a JSONL stream plus a progress line).  Does not own the observers.
class ObserverList final : public ISweepObserver {
 public:
  ObserverList& add(ISweepObserver* observer) {
    if (observer != nullptr) observers_.push_back(observer);
    return *this;
  }
  bool empty() const noexcept { return observers_.empty(); }

  void on_cell_start(std::size_t cell) override {
    for (auto* observer : observers_) observer->on_cell_start(cell);
  }
  void on_cell_done(std::size_t cell, const CellResult& result) override {
    for (auto* observer : observers_) observer->on_cell_done(cell, result);
  }
  void on_progress(const SweepProgress& progress) override {
    for (auto* observer : observers_) observer->on_progress(progress);
  }

 private:
  std::vector<ISweepObserver*> observers_;
};

}  // namespace adacheck::sim
