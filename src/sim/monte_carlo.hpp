// Monte-Carlo experiment harness.
//
// Repeats a scenario `runs` times with independent fault streams and
// aggregates the two quantities the paper reports — P (probability of
// timely completion) and E (mean energy over successful runs) — plus
// extended statistics.  Runs are seeded per-index from the master seed
// and aggregated in fixed-size chunks merged in index order, so
// results are bit-identical regardless of thread count.
//
// Execution happens on the shared util::ThreadPool: one cell
// (`run_cell`) chunks its runs onto the persistent workers, and a
// whole batch of cells (`run_cells`) becomes a single flat task queue
// — the backbone of harness::run_sweep.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/engine.hpp"
#include "util/statistics.hpp"

namespace adacheck::sim {

/// Builds a fresh policy instance.  The run loop keeps one instance
/// per chunk alive and re-arms it between runs via
/// ICheckpointPolicy::reset(); the factory is the fallback for
/// policies that cannot reset (it is then invoked once per run).
using PolicyFactory = std::function<std::unique_ptr<ICheckpointPolicy>()>;

struct MonteCarloConfig {
  int runs = 10'000;          ///< paper: "repeated 10,000 times"
  std::uint64_t seed = 0x5EED5EED;
  int threads = 0;            ///< 0 = shared pool width; 1 = in-caller
  bool validate = false;      ///< run invariant validators on every run
};

/// Aggregated cell statistics.
struct CellStats {
  util::BinomialStats completion;        ///< P
  util::RunningStats energy_success;     ///< E (paper's definition)
  util::RunningStats energy_all;         ///< energy over every run
  util::RunningStats finish_time_success;
  util::RunningStats faults;             ///< physical faults per run
  util::RunningStats rollbacks;
  util::RunningStats corrections;        ///< TMR vote repairs per run
  util::RunningStats high_speed_cycles;  ///< cycles above the base speed
  std::size_t aborted_runs = 0;
  std::size_t validation_failures = 0;

  double probability() const noexcept { return completion.proportion(); }
  /// Paper's E: NaN when no run succeeded (the tables print "NaN").
  double energy() const noexcept { return energy_success.mean(); }

  void merge(const CellStats& other) noexcept;
};

/// Runs one experiment cell.  Throws only on configuration errors;
/// validation failures are counted, not thrown (the property tests
/// assert the count is zero).
CellStats run_cell(const SimSetup& setup, const PolicyFactory& factory,
                   const MonteCarloConfig& config = {});

/// One independent cell of a batch.  `config.threads` is ignored here —
/// run_cells parallelizes across the whole batch, not per cell.
struct CellJob {
  SimSetup setup;
  PolicyFactory factory;
  MonteCarloConfig config;
};

/// Runs every job as one flat chunk queue on the shared thread pool
/// (`threads` caps the parallelism; 0 = pool width, 1 = fully serial
/// in the calling thread).  Results are identical to calling run_cell
/// per job — bit-identical for every thread count, since chunking and
/// merge order depend only on each job's run count.  `threads_used`,
/// when given, receives the parallelism actually applied — the cap
/// clamped to the chunk count and to pool width + 1 (the waiting
/// caller helps execute tasks) — what perf reports should record.
std::vector<CellStats> run_cells(const std::vector<CellJob>& jobs,
                                 int threads = 0,
                                 int* threads_used = nullptr);

}  // namespace adacheck::sim
