// Monte-Carlo experiment harness.
//
// Repeats a scenario `runs` times with independent fault streams and
// aggregates the two quantities the paper reports — P (probability of
// timely completion) and E (mean energy over successful runs) — plus
// extended statistics.  Runs are seeded per-index from the master seed,
// so results are bit-identical regardless of thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "sim/engine.hpp"
#include "util/statistics.hpp"

namespace adacheck::sim {

/// Fresh policy instance per run (policies carry per-run mutable state).
using PolicyFactory = std::function<std::unique_ptr<ICheckpointPolicy>()>;

struct MonteCarloConfig {
  int runs = 10'000;          ///< paper: "repeated 10,000 times"
  std::uint64_t seed = 0x5EED5EED;
  int threads = 0;            ///< 0 = hardware concurrency
  bool validate = false;      ///< run invariant validators on every run
};

/// Aggregated cell statistics.
struct CellStats {
  util::BinomialStats completion;        ///< P
  util::RunningStats energy_success;     ///< E (paper's definition)
  util::RunningStats energy_all;         ///< energy over every run
  util::RunningStats finish_time_success;
  util::RunningStats faults;             ///< physical faults per run
  util::RunningStats rollbacks;
  util::RunningStats corrections;        ///< TMR vote repairs per run
  util::RunningStats high_speed_cycles;  ///< cycles above the base speed
  std::size_t aborted_runs = 0;
  std::size_t validation_failures = 0;

  double probability() const noexcept { return completion.proportion(); }
  /// Paper's E: NaN when no run succeeded (the tables print "NaN").
  double energy() const noexcept { return energy_success.mean(); }

  void merge(const CellStats& other) noexcept;
};

/// Runs one experiment cell.  Throws only on configuration errors;
/// validation failures are counted, not thrown (the property tests
/// assert the count is zero).
CellStats run_cell(const SimSetup& setup, const PolicyFactory& factory,
                   const MonteCarloConfig& config = {});

}  // namespace adacheck::sim
