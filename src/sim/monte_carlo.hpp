// Monte-Carlo experiment harness.
//
// Repeats a scenario with independent fault streams and aggregates
// per-run results through the pluggable metric-recorder pipeline
// (sim/metrics.hpp): every cell gets a MetricSet — the built-in
// CellStats recorder plus whatever extra recorders the config's
// MetricSuite names.  By default a cell executes a fixed `runs` count
// (the paper's "repeated 10,000 times"); with a RunBudget configured
// it instead runs in doubling waves of kRunChunk-run chunks until the
// targeted confidence-interval half-widths are achieved or the hard
// cap is hit.  Either way runs are seeded per-index from the master
// seed and aggregated in fixed-size chunks merged in index order —
// and for budgets, the stop rule is evaluated only at chunk
// boundaries over that same index-ordered prefix — so all recorder
// values (and the budget's stopping point) are bit-identical
// regardless of thread count.
//
// Execution happens on the shared util::ThreadPool: one cell
// (`run_cell`) chunks its runs onto the persistent workers, and a
// whole batch of cells (`run_cells`) becomes a single flat task queue
// — the backbone of harness::run_sweep.  An ISweepObserver
// (sim/observer.hpp) can watch cell completion and progress, and a
// CancellationToken stops the queue cooperatively; both default to the
// zero-cost null path.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/engine.hpp"
#include "sim/metrics.hpp"
#include "sim/observer.hpp"
#include "util/statistics.hpp"

namespace adacheck::sim {

/// Builds a fresh policy instance.  The run loop keeps one instance
/// per chunk alive and re-arms it between runs via
/// ICheckpointPolicy::reset(); the factory is the fallback for
/// policies that cannot reset (it is then invoked once per run).
using PolicyFactory = std::function<std::unique_ptr<ICheckpointPolicy>()>;

struct MonteCarloConfig {
  /// Fixed run count when no budget is enabled (the paper's "repeated
  /// 10,000 times"); with a budget it is only the fallback for caps
  /// the budget leaves unset (RunBudget::resolved_max).
  int runs = 10'000;
  std::uint64_t seed = 0x5EED5EED;
  int threads = 0;            ///< 0 = shared pool width; 1 = in-caller
  bool validate = false;      ///< run invariant validators on every run
  /// Precision-targeted sequential stopping; disabled (fixed `runs`)
  /// by default.  A budget with min_runs == max_runs == runs executes
  /// exactly the fixed path's chunks and reproduces its statistics
  /// bit-for-bit.
  RunBudget budget;
  /// Extra metric recorders instantiated per cell (see
  /// sim::make_metric_suite); null = the default CellStats only.
  std::shared_ptr<const MetricSuite> metrics;
};

/// Runs one experiment cell; returns the default statistics.  Throws
/// only on configuration errors; validation failures are counted, not
/// thrown (the property tests assert the count is zero).
CellStats run_cell(const SimSetup& setup, const PolicyFactory& factory,
                   const MonteCarloConfig& config = {});

/// run_cell with the full result (extra metric values included) and
/// optional observer/cancellation hooks.
CellResult run_cell_ex(const SimSetup& setup, const PolicyFactory& factory,
                       const MonteCarloConfig& config = {},
                       ISweepObserver* observer = nullptr,
                       CancellationToken* cancel = nullptr);

/// Executes one chunk [begin, end) of a cell's runs and returns the
/// fully-observed MetricSet for it.  Custom workloads (graph cells)
/// supply one of these instead of a SimSetup/PolicyFactory pair; the
/// runner still owns chunking, budget waves, observers, and merge
/// order, so the determinism contract is inherited for free.  Must
/// derive all randomness from `config.seed` and the run indices.
using ChunkRunner =
    std::function<MetricSet(const MonteCarloConfig& config, int begin,
                            int end)>;

/// One independent cell of a batch.  `config.threads` is ignored here —
/// run_cells parallelizes across the whole batch, not per cell.
struct CellJob {
  SimSetup setup;
  PolicyFactory factory;
  MonteCarloConfig config;
  /// When set, runs chunks through this instead of the built-in
  /// engine loop; `setup`/`factory` are then ignored (and unvalidated).
  ChunkRunner runner;
};

/// Execution knobs for run_cells_ex beyond the job list itself.
struct RunCellsOptions {
  /// Parallelism cap; 0 = pool width, 1 = fully serial in the caller.
  int threads = 0;
  /// When given, receives the parallelism actually applied — the cap
  /// clamped to the chunk count and to pool width + 1 (the waiting
  /// caller helps execute tasks) — what perf reports should record.
  int* threads_used = nullptr;
  /// Cell-completion / progress callbacks (serialized by the runner);
  /// null = no tracking overhead at all.
  ISweepObserver* observer = nullptr;
  /// Cooperative stop flag; when it fires before the queue is fully
  /// executed, run_cells_ex throws SweepCancelled.
  CancellationToken* cancel = nullptr;
};

/// Runs every job as one flat chunk queue on the shared thread pool.
/// Results are identical to calling run_cell per job — bit-identical
/// for every thread count, since chunking and merge order depend only
/// on each job's run count.  Observer callbacks fire exactly once per
/// cell regardless of thread count.  Throws SweepCancelled when the
/// options' token stopped the sweep early; a throwing recorder or
/// observer fast-drains the queue and propagates its exception.
std::vector<CellResult> run_cells_ex(const std::vector<CellJob>& jobs,
                                     const RunCellsOptions& options = {});

/// Compatibility wrapper: default statistics only, no observers.
std::vector<CellStats> run_cells(const std::vector<CellJob>& jobs,
                                 int threads = 0,
                                 int* threads_used = nullptr);

}  // namespace adacheck::sim
