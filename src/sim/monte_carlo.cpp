#include "sim/monte_carlo.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>
#include <vector>

#include "sim/validators.hpp"
#include "util/rng.hpp"

namespace adacheck::sim {

void CellStats::merge(const CellStats& other) noexcept {
  completion.merge(other.completion);
  energy_success.merge(other.energy_success);
  energy_all.merge(other.energy_all);
  finish_time_success.merge(other.finish_time_success);
  faults.merge(other.faults);
  rollbacks.merge(other.rollbacks);
  corrections.merge(other.corrections);
  high_speed_cycles.merge(other.high_speed_cycles);
  aborted_runs += other.aborted_runs;
  validation_failures += other.validation_failures;
}

namespace {

CellStats run_range(const SimSetup& setup, const PolicyFactory& factory,
                    const MonteCarloConfig& config, int begin, int end) {
  CellStats stats;
  EngineConfig engine_config;
  engine_config.record_trace = config.validate;
  const double base_freq = setup.processor.slowest().frequency;
  for (int i = begin; i < end; ++i) {
    const std::uint64_t seed =
        util::derive_seed(config.seed, static_cast<std::uint64_t>(i));
    auto policy = factory();
    const RunResult result =
        simulate_seeded(setup, *policy, seed, engine_config);

    const bool ok = result.completed();
    stats.completion.add(ok);
    stats.energy_all.add(result.energy);
    if (ok) {
      stats.energy_success.add(result.energy);
      stats.finish_time_success.add(result.finish_time);
    }
    stats.faults.add(static_cast<double>(result.faults));
    stats.rollbacks.add(static_cast<double>(result.rollbacks));
    stats.corrections.add(static_cast<double>(result.corrections));
    double high_cycles = 0.0;
    for (const auto& [freq, cycles] : result.meter.breakdown()) {
      if (freq > base_freq) high_cycles += cycles;
    }
    stats.high_speed_cycles.add(high_cycles);
    if (result.outcome == RunOutcome::kAborted) ++stats.aborted_runs;
    if (config.validate && !validate_all(setup, result).empty()) {
      ++stats.validation_failures;
    }
  }
  return stats;
}

}  // namespace

CellStats run_cell(const SimSetup& setup, const PolicyFactory& factory,
                   const MonteCarloConfig& config) {
  setup.validate();
  if (config.runs <= 0) {
    throw std::invalid_argument("MonteCarloConfig: runs must be > 0");
  }
  if (!factory) {
    throw std::invalid_argument("run_cell: null policy factory");
  }

  int threads = config.threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  threads = std::min(threads, config.runs);

  if (threads == 1) {
    return run_range(setup, factory, config, 0, config.runs);
  }

  // Chunk by thread; per-run seeding keeps the aggregate independent of
  // the partition.  Merge in chunk order for deterministic rounding.
  std::vector<CellStats> partials(static_cast<std::size_t>(threads));
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  const int chunk = (config.runs + threads - 1) / threads;
  for (int t = 0; t < threads; ++t) {
    const int begin = t * chunk;
    const int end = std::min(config.runs, begin + chunk);
    if (begin >= end) break;
    pool.emplace_back([&, t, begin, end] {
      partials[static_cast<std::size_t>(t)] =
          run_range(setup, factory, config, begin, end);
    });
  }
  for (auto& th : pool) th.join();

  CellStats total;
  for (const auto& p : partials) total.merge(p);
  return total;
}

}  // namespace adacheck::sim
