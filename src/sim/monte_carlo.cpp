#include "sim/monte_carlo.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/validators.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace adacheck::sim {

void CellStats::merge(const CellStats& other) noexcept {
  completion.merge(other.completion);
  energy_success.merge(other.energy_success);
  energy_all.merge(other.energy_all);
  finish_time_success.merge(other.finish_time_success);
  faults.merge(other.faults);
  rollbacks.merge(other.rollbacks);
  corrections.merge(other.corrections);
  high_speed_cycles.merge(other.high_speed_cycles);
  aborted_runs += other.aborted_runs;
  validation_failures += other.validation_failures;
}

namespace {

/// Fixed chunk grain: partial merges happen per chunk in index order,
/// so any change here changes rounding (not correctness).  256 runs
/// keeps >= 39 chunks for the paper's 10,000-run cells — enough
/// parallelism without drowning the queue.
constexpr int kRunChunk = 256;

/// One contiguous slice of one job's run indices.
struct Chunk {
  std::size_t job = 0;
  int begin = 0;
  int end = 0;
};

CellStats run_chunk(const SimSetup& setup, const PolicyFactory& factory,
                    const MonteCarloConfig& config, int begin, int end) {
  CellStats stats;
  EngineConfig engine_config;
  engine_config.record_trace = config.validate;
  const double base_freq = setup.processor.slowest().frequency;
  std::unique_ptr<ICheckpointPolicy> policy;
  for (int i = begin; i < end; ++i) {
    const std::uint64_t seed =
        util::derive_seed(config.seed, static_cast<std::uint64_t>(i));
    // Reuse the chunk's policy instance when it can re-arm itself;
    // otherwise pay the factory allocation per run.
    if (!policy || !policy->reset()) policy = factory();
    const RunResult result =
        simulate_seeded(setup, *policy, seed, engine_config);

    const bool ok = result.completed();
    stats.completion.add(ok);
    stats.energy_all.add(result.energy);
    if (ok) {
      stats.energy_success.add(result.energy);
      stats.finish_time_success.add(result.finish_time);
    }
    stats.faults.add(static_cast<double>(result.faults));
    stats.rollbacks.add(static_cast<double>(result.rollbacks));
    stats.corrections.add(static_cast<double>(result.corrections));
    stats.high_speed_cycles.add(result.meter.cycles_above(base_freq));
    if (result.outcome == RunOutcome::kAborted) ++stats.aborted_runs;
    if (config.validate && !validate_all(setup, result).empty()) {
      ++stats.validation_failures;
    }
  }
  return stats;
}

void validate_job(const CellJob& job) {
  job.setup.validate();
  if (job.config.runs <= 0) {
    throw std::invalid_argument("MonteCarloConfig: runs must be > 0");
  }
  if (!job.factory) {
    throw std::invalid_argument("run_cell: null policy factory");
  }
}

}  // namespace

std::vector<CellStats> run_cells(const std::vector<CellJob>& jobs,
                                 int threads, int* threads_used) {
  for (const auto& job : jobs) validate_job(job);

  std::vector<Chunk> chunks;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    for (int begin = 0; begin < jobs[j].config.runs; begin += kRunChunk) {
      chunks.push_back(
          {j, begin, std::min(jobs[j].config.runs, begin + kRunChunk)});
    }
  }

  // Partial stats are indexed by chunk, so the final merge below walks
  // them in run-index order no matter which worker produced them.
  // Claiming chunks one at a time lets the flat queue self-balance
  // across cells of very different cost.
  std::vector<CellStats> partials(chunks.size());
  const auto process = [&](int lo, int hi) {
    for (int c = lo; c < hi; ++c) {
      const auto& chunk = chunks[static_cast<std::size_t>(c)];
      const auto& job = jobs[chunk.job];
      partials[static_cast<std::size_t>(c)] = run_chunk(
          job.setup, job.factory, job.config, chunk.begin, chunk.end);
    }
  };

  int applied = 1;
  if (threads == 1) {
    // Fully serial in the calling thread — never touches (or even
    // constructs) the shared pool.
    process(0, static_cast<int>(chunks.size()));
  } else {
    applied = util::parallel_for(util::ThreadPool::shared(), 0,
                                 static_cast<int>(chunks.size()),
                                 /*grain=*/1, process, threads);
  }
  if (threads_used != nullptr) *threads_used = std::max(applied, 1);

  std::vector<CellStats> results(jobs.size());
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    results[chunks[c].job].merge(partials[c]);
  }
  return results;
}

CellStats run_cell(const SimSetup& setup, const PolicyFactory& factory,
                   const MonteCarloConfig& config) {
  std::vector<CellJob> jobs;
  jobs.push_back({setup, factory, config});
  return run_cells(jobs, config.threads)[0];
}

}  // namespace adacheck::sim
