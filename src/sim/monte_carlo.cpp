#include "sim/monte_carlo.hpp"

#include <algorithm>
#include <atomic>
#include <climits>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "sim/validators.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace adacheck::sim {

namespace {

/// Telemetry handles (gated on Registry::enabled(); see obs/registry.hpp).
struct SweepMetrics {
  obs::Counter& chunks;
  obs::Counter& runs;
  obs::Counter& budget_stops;

  static SweepMetrics& get() {
    static SweepMetrics* const metrics = new SweepMetrics{
        obs::Registry::instance().counter("sweep.chunks"),
        obs::Registry::instance().counter("sweep.runs"),
        obs::Registry::instance().counter("sweep.budget_stops")};
    return *metrics;
  }
};

/// One contiguous slice of one job's run indices.
struct Chunk {
  std::size_t job = 0;
  int begin = 0;
  int end = 0;
};

/// Per-job scheduling state.  Unbudgeted jobs place all their chunks
/// in round 0 and never revisit them; budgeted jobs grow in doubling
/// waves, absorbing each wave's chunks in index order at the round
/// boundary until the stop rule fires.  Everything here is a pure
/// function of the job's config — never of thread scheduling — which
/// is what makes budget outcomes bit-identical across thread counts.
struct JobPlan {
  bool budgeted = false;
  bool done = false;
  int max = 0;                         ///< resolved run cap (budgeted)
  int scheduled = 0;                   ///< runs scheduled so far
  std::size_t absorbed = 0;            ///< chunks folded into `prefix`
  std::vector<std::size_t> chunk_ids;  ///< into the chunk queue, in order
  MetricSet prefix;                    ///< merged completed-chunk prefix
  PrecisionRecorder precision;
};

MetricSet run_chunk(const SimSetup& setup, const PolicyFactory& factory,
                    const MonteCarloConfig& config, int begin, int end) {
  MetricSet metrics = MetricSet::for_cell(setup, config.metrics.get());
  EngineConfig engine_config;
  engine_config.record_trace = config.validate;
  const double base_freq = setup.processor.slowest().frequency;
  std::unique_ptr<ICheckpointPolicy> policy;
  for (int i = begin; i < end; ++i) {
    const std::uint64_t seed =
        util::derive_seed(config.seed, static_cast<std::uint64_t>(i));
    // Reuse the chunk's policy instance when it can re-arm itself;
    // otherwise pay the factory allocation per run.
    if (!policy || !policy->reset()) policy = factory();
    const RunResult result =
        simulate_seeded(setup, *policy, seed, engine_config);
    const bool validation_failed =
        config.validate && !validate_all(setup, result).empty();
    metrics.observe({setup, result, base_freq, validation_failed});
  }
  return metrics;
}

void validate_job(const CellJob& job) {
  if (job.config.runs <= 0) {
    throw std::invalid_argument("MonteCarloConfig: runs must be > 0");
  }
  job.config.budget.validate();
  // Custom-runner jobs own their workload; setup/factory are unused.
  if (job.runner) return;
  job.setup.validate();
  if (!job.factory) {
    throw std::invalid_argument("run_cell: null policy factory");
  }
}

/// Shared bookkeeping for the observer path of one run_cells_ex call.
/// Exists only when an observer or a cancellation token is present —
/// the null path never allocates or touches any of it.
struct SweepTracker {
  explicit SweepTracker(const std::vector<CellJob>& jobs,
                        const std::vector<JobPlan>& plans) {
    remaining.reserve(jobs.size());
    started.reserve(jobs.size());
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      // Budgeted cells complete at round boundaries, not when a worker
      // finishes their last chunk; the sentinel keeps the worker-side
      // decrement from ever reaching zero for them.
      const int chunks_left =
          plans[j].budgeted ? INT_MAX
                            : static_cast<int>(plans[j].chunk_ids.size());
      remaining.push_back(std::make_unique<std::atomic<int>>(chunks_left));
      started.push_back(std::make_unique<std::atomic<bool>>(false));
      progress.runs_total += plans[j].scheduled;
    }
    progress.cells_total = jobs.size();
  }

  /// Serializes every observer callback: implementations never run
  /// concurrently (documented in sim/observer.hpp).
  std::mutex callback_mu;
  std::vector<std::unique_ptr<std::atomic<int>>> remaining;
  std::vector<std::unique_ptr<std::atomic<bool>>> started;
  SweepProgress progress;  ///< counters mutated under callback_mu
};

/// Aligns a run count up to the chunk grain, capped at `max`.  Wide
/// arithmetic so the doubling schedule cannot overflow near INT_MAX.
int align_runs(long long runs, int max) {
  const long long aligned =
      (runs + kRunChunk - 1) / kRunChunk * kRunChunk;
  return static_cast<int>(std::min<long long>(aligned, max));
}

}  // namespace

std::vector<CellResult> run_cells_ex(const std::vector<CellJob>& jobs,
                                     const RunCellsOptions& options) {
  for (const auto& job : jobs) validate_job(job);

  std::vector<Chunk> chunks;
  std::vector<JobPlan> plans(jobs.size());

  // Appends job `j`'s chunks covering run indices [plan.scheduled,
  // end) to the queue.  Chunk boundaries are always kRunChunk-aligned
  // (the cap is the only place a short chunk can appear), so a given
  // run index lands in the same chunk no matter how many waves it
  // took to get there.
  const auto schedule_runs = [&](std::size_t j, int end) {
    for (int b = plans[j].scheduled; b < end; b += kRunChunk) {
      plans[j].chunk_ids.push_back(chunks.size());
      chunks.push_back({j, b, std::min(end, b + kRunChunk)});
    }
    plans[j].scheduled = end;
  };

  // Round 0: every chunk of every unbudgeted job (job-major,
  // contiguous — the exact pre-budget queue layout) plus the first
  // wave of each budgeted job.
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const auto& config = jobs[j].config;
    if (config.budget.enabled()) {
      plans[j].budgeted = true;
      plans[j].max = config.budget.resolved_max(config.runs);
      plans[j].precision = PrecisionRecorder(config.budget, config.runs);
      schedule_runs(j, align_runs(config.budget.resolved_min(config.runs),
                                  plans[j].max));
    } else {
      schedule_runs(j, config.runs);
    }
  }

  // Partial metric sets are indexed by chunk, so every merge below —
  // whether at cell completion or after the queue drains — walks them
  // in run-index order no matter which worker produced them.
  std::vector<MetricSet> partials(chunks.size());
  std::vector<CellResult> results(jobs.size());

  std::unique_ptr<SweepTracker> tracker;
  if (options.observer != nullptr) {
    tracker = std::make_unique<SweepTracker>(jobs, plans);
  }

  // Any chunk body that throws flips `abort` so peers drain the rest
  // of the queue without simulating; `skipped` records that at least
  // one chunk never executed (cancellation must not return partial
  // results as if they were complete).
  std::atomic<bool> abort{false};
  std::atomic<bool> skipped{false};

  // Merges one completed unbudgeted cell's partials (all written,
  // ordered by the remaining-counter's acq_rel decrement) and reports
  // it.
  const auto complete_cell = [&](std::size_t job) {
    const auto& ids = plans[job].chunk_ids;
    MetricSet merged = std::move(partials[ids.front()]);
    for (std::size_t i = 1; i < ids.size(); ++i) {
      merged.merge(partials[ids[i]]);
    }
    results[job] = {merged.cell_stats(), merged.values()};
    std::lock_guard<std::mutex> lock(tracker->callback_mu);
    options.observer->on_cell_done(job, results[job]);
  };

  const auto process = [&](int lo, int hi) {
    for (int c = lo; c < hi; ++c) {
      if (abort.load(std::memory_order_relaxed)) {
        skipped.store(true, std::memory_order_relaxed);
        return;
      }
      if (options.cancel != nullptr && options.cancel->stop_requested()) {
        abort.store(true, std::memory_order_relaxed);
        skipped.store(true, std::memory_order_relaxed);
        return;
      }
      const auto& chunk = chunks[static_cast<std::size_t>(c)];
      const auto& job = jobs[chunk.job];
      try {
        if (tracker &&
            !tracker->started[chunk.job]->exchange(
                true, std::memory_order_relaxed)) {
          std::lock_guard<std::mutex> lock(tracker->callback_mu);
          options.observer->on_cell_start(chunk.job);
        }
        {
          obs::Span span("chunk", "sweep");
          partials[static_cast<std::size_t>(c)] =
              job.runner
                  ? job.runner(job.config, chunk.begin, chunk.end)
                  : run_chunk(job.setup, job.factory, job.config, chunk.begin,
                              chunk.end);
        }
        if (obs::Registry::instance().enabled()) {
          auto& metrics = SweepMetrics::get();
          metrics.chunks.add(1);
          metrics.runs.add(chunk.end - chunk.begin);
        }
        if (tracker) {
          const bool cell_done =
              tracker->remaining[chunk.job]->fetch_sub(
                  1, std::memory_order_acq_rel) == 1;
          if (cell_done) complete_cell(chunk.job);
          std::lock_guard<std::mutex> lock(tracker->callback_mu);
          tracker->progress.runs_done += chunk.end - chunk.begin;
          if (cell_done) ++tracker->progress.cells_done;
          options.observer->on_progress(tracker->progress);
        }
      } catch (...) {
        // First exception wins (TaskGroup keeps the first it sees);
        // everyone else just drains.
        abort.store(true, std::memory_order_relaxed);
        throw;
      }
    }
  };

  // The round loop: execute the scheduled chunk range, then advance
  // every live budgeted job — absorb its newly completed chunks in
  // index order, evaluating the stop rule at each chunk boundary, and
  // either finalize the cell or schedule the next doubling wave.
  // Rounds end at barriers, so the stop decision only ever sees fully
  // completed prefixes; which worker ran which chunk is invisible.
  std::size_t round_begin = 0;
  int applied = 1;
  while (round_begin < chunks.size()) {
    const std::size_t round_end = chunks.size();
    {
      obs::Span wave("wave", "sweep");
      if (options.threads == 1) {
        // Fully serial in the calling thread — never touches (or even
        // constructs) the shared pool.
        process(static_cast<int>(round_begin), static_cast<int>(round_end));
      } else {
        applied = std::max(
            applied,
            util::parallel_for(util::ThreadPool::shared(),
                               static_cast<int>(round_begin),
                               static_cast<int>(round_end),
                               /*grain=*/1, process, options.threads));
      }
    }
    if (options.threads_used != nullptr) {
      *options.threads_used = std::max(applied, 1);
    }
    if (skipped.load(std::memory_order_relaxed)) throw SweepCancelled();

    for (std::size_t j = 0; j < jobs.size(); ++j) {
      auto& plan = plans[j];
      if (!plan.budgeted || plan.done) continue;
      while (plan.absorbed < plan.chunk_ids.size()) {
        const std::size_t id = plan.chunk_ids[plan.absorbed];
        plan.precision.absorb(partials[id].cell_stats());
        if (plan.absorbed == 0) {
          plan.prefix = std::move(partials[id]);
        } else {
          plan.prefix.merge(partials[id]);
        }
        ++plan.absorbed;
        if (plan.precision.should_stop()) {
          // Later chunks of this wave (already executed) are discarded
          // unabsorbed: the result is the stopping prefix, which is
          // the same prefix at any thread count.
          plan.done = true;
          if (obs::Registry::instance().enabled()) {
            SweepMetrics::get().budget_stops.add(1);
            obs::Tracer::instance().instant("budget_stop", "sweep");
          }
          break;
        }
      }
      if (plan.done) {
        results[j] = {plan.prefix.cell_stats(), plan.prefix.values()};
        if (tracker) {
          std::lock_guard<std::mutex> lock(tracker->callback_mu);
          options.observer->on_cell_done(j, results[j]);
          ++tracker->progress.cells_done;
          options.observer->on_progress(tracker->progress);
        }
      } else {
        // Not stopped with the cap unreached: double the schedule.
        const int begin = plan.scheduled;
        schedule_runs(j, align_runs(2LL * plan.scheduled, plan.max));
        partials.resize(chunks.size());
        if (tracker) {
          std::lock_guard<std::mutex> lock(tracker->callback_mu);
          tracker->progress.runs_total += plan.scheduled - begin;
        }
      }
    }
    round_begin = round_end;
  }

  if (!tracker) {
    // Null / cancel-only path for unbudgeted cells: one pass of
    // in-order merges at the end, exactly the pre-observer
    // implementation.  (Budgeted cells were finalized by the round
    // loop either way.)
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      if (plans[j].budgeted) continue;
      const auto& ids = plans[j].chunk_ids;
      MetricSet merged = std::move(partials[ids.front()]);
      for (std::size_t i = 1; i < ids.size(); ++i) {
        merged.merge(partials[ids[i]]);
      }
      results[j] = {merged.cell_stats(), merged.values()};
    }
  }
  return results;
}

std::vector<CellStats> run_cells(const std::vector<CellJob>& jobs,
                                 int threads, int* threads_used) {
  RunCellsOptions options;
  options.threads = threads;
  options.threads_used = threads_used;
  auto results = run_cells_ex(jobs, options);
  std::vector<CellStats> stats;
  stats.reserve(results.size());
  for (auto& result : results) stats.push_back(std::move(result.stats));
  return stats;
}

CellResult run_cell_ex(const SimSetup& setup, const PolicyFactory& factory,
                       const MonteCarloConfig& config,
                       ISweepObserver* observer, CancellationToken* cancel) {
  std::vector<CellJob> jobs;
  jobs.push_back({setup, factory, config});
  RunCellsOptions options;
  options.threads = config.threads;
  options.observer = observer;
  options.cancel = cancel;
  return std::move(run_cells_ex(jobs, options)[0]);
}

CellStats run_cell(const SimSetup& setup, const PolicyFactory& factory,
                   const MonteCarloConfig& config) {
  return run_cell_ex(setup, factory, config).stats;
}

}  // namespace adacheck::sim
