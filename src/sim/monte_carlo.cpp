#include "sim/monte_carlo.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "sim/validators.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace adacheck::sim {

namespace {

/// Fixed chunk grain: partial merges happen per chunk in index order,
/// so any change here changes rounding (not correctness).  256 runs
/// keeps >= 39 chunks for the paper's 10,000-run cells — enough
/// parallelism without drowning the queue.
constexpr int kRunChunk = 256;

/// One contiguous slice of one job's run indices.
struct Chunk {
  std::size_t job = 0;
  int begin = 0;
  int end = 0;
};

MetricSet run_chunk(const SimSetup& setup, const PolicyFactory& factory,
                    const MonteCarloConfig& config, int begin, int end) {
  MetricSet metrics = MetricSet::for_cell(setup, config.metrics.get());
  EngineConfig engine_config;
  engine_config.record_trace = config.validate;
  const double base_freq = setup.processor.slowest().frequency;
  std::unique_ptr<ICheckpointPolicy> policy;
  for (int i = begin; i < end; ++i) {
    const std::uint64_t seed =
        util::derive_seed(config.seed, static_cast<std::uint64_t>(i));
    // Reuse the chunk's policy instance when it can re-arm itself;
    // otherwise pay the factory allocation per run.
    if (!policy || !policy->reset()) policy = factory();
    const RunResult result =
        simulate_seeded(setup, *policy, seed, engine_config);
    const bool validation_failed =
        config.validate && !validate_all(setup, result).empty();
    metrics.observe({setup, result, base_freq, validation_failed});
  }
  return metrics;
}

void validate_job(const CellJob& job) {
  job.setup.validate();
  if (job.config.runs <= 0) {
    throw std::invalid_argument("MonteCarloConfig: runs must be > 0");
  }
  if (!job.factory) {
    throw std::invalid_argument("run_cell: null policy factory");
  }
}

/// Shared bookkeeping for the observer path of one run_cells_ex call.
/// Exists only when an observer or a cancellation token is present —
/// the null path never allocates or touches any of it.
struct SweepTracker {
  explicit SweepTracker(const std::vector<CellJob>& jobs,
                        const std::vector<std::size_t>& first_chunk,
                        std::size_t chunk_count) {
    remaining.reserve(jobs.size());
    started.reserve(jobs.size());
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      const std::size_t next =
          j + 1 < jobs.size() ? first_chunk[j + 1] : chunk_count;
      remaining.push_back(
          std::make_unique<std::atomic<int>>(static_cast<int>(next -
                                                              first_chunk[j])));
      started.push_back(std::make_unique<std::atomic<bool>>(false));
      progress.runs_total += jobs[j].config.runs;
    }
    progress.cells_total = jobs.size();
  }

  /// Serializes every observer callback: implementations never run
  /// concurrently (documented in sim/observer.hpp).
  std::mutex callback_mu;
  std::vector<std::unique_ptr<std::atomic<int>>> remaining;
  std::vector<std::unique_ptr<std::atomic<bool>>> started;
  SweepProgress progress;  ///< counters mutated under callback_mu
};

}  // namespace

std::vector<CellResult> run_cells_ex(const std::vector<CellJob>& jobs,
                                     const RunCellsOptions& options) {
  for (const auto& job : jobs) validate_job(job);

  std::vector<Chunk> chunks;
  std::vector<std::size_t> first_chunk;  // per job, into `chunks`
  first_chunk.reserve(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    first_chunk.push_back(chunks.size());
    for (int begin = 0; begin < jobs[j].config.runs; begin += kRunChunk) {
      chunks.push_back(
          {j, begin, std::min(jobs[j].config.runs, begin + kRunChunk)});
    }
  }

  // Partial metric sets are indexed by chunk, so every merge below —
  // whether at cell completion or after the queue drains — walks them
  // in run-index order no matter which worker produced them.
  std::vector<MetricSet> partials(chunks.size());
  std::vector<CellResult> results(jobs.size());

  std::unique_ptr<SweepTracker> tracker;
  if (options.observer != nullptr) {
    tracker = std::make_unique<SweepTracker>(jobs, first_chunk, chunks.size());
  }

  // Any chunk body that throws flips `abort` so peers drain the rest
  // of the queue without simulating; `skipped` records that at least
  // one chunk never executed (cancellation must not return partial
  // results as if they were complete).
  std::atomic<bool> abort{false};
  std::atomic<bool> skipped{false};

  // Merges one completed cell's partials (all written, ordered by the
  // remaining-counter's acq_rel decrement) and reports it.
  const auto complete_cell = [&](std::size_t job) {
    const std::size_t next =
        job + 1 < jobs.size() ? first_chunk[job + 1] : chunks.size();
    MetricSet merged = std::move(partials[first_chunk[job]]);
    for (std::size_t c = first_chunk[job] + 1; c < next; ++c) {
      merged.merge(partials[c]);
    }
    results[job] = {merged.cell_stats(), merged.values()};
    std::lock_guard<std::mutex> lock(tracker->callback_mu);
    options.observer->on_cell_done(job, results[job]);
  };

  const auto process = [&](int lo, int hi) {
    for (int c = lo; c < hi; ++c) {
      if (abort.load(std::memory_order_relaxed)) {
        skipped.store(true, std::memory_order_relaxed);
        return;
      }
      if (options.cancel != nullptr && options.cancel->stop_requested()) {
        abort.store(true, std::memory_order_relaxed);
        skipped.store(true, std::memory_order_relaxed);
        return;
      }
      const auto& chunk = chunks[static_cast<std::size_t>(c)];
      const auto& job = jobs[chunk.job];
      try {
        if (tracker &&
            !tracker->started[chunk.job]->exchange(
                true, std::memory_order_relaxed)) {
          std::lock_guard<std::mutex> lock(tracker->callback_mu);
          options.observer->on_cell_start(chunk.job);
        }
        partials[static_cast<std::size_t>(c)] = run_chunk(
            job.setup, job.factory, job.config, chunk.begin, chunk.end);
        if (tracker) {
          const bool cell_done =
              tracker->remaining[chunk.job]->fetch_sub(
                  1, std::memory_order_acq_rel) == 1;
          if (cell_done) complete_cell(chunk.job);
          std::lock_guard<std::mutex> lock(tracker->callback_mu);
          tracker->progress.runs_done += chunk.end - chunk.begin;
          if (cell_done) ++tracker->progress.cells_done;
          options.observer->on_progress(tracker->progress);
        }
      } catch (...) {
        // First exception wins (TaskGroup keeps the first it sees);
        // everyone else just drains.
        abort.store(true, std::memory_order_relaxed);
        throw;
      }
    }
  };

  int applied = 1;
  if (options.threads == 1) {
    // Fully serial in the calling thread — never touches (or even
    // constructs) the shared pool.
    process(0, static_cast<int>(chunks.size()));
  } else {
    applied = util::parallel_for(util::ThreadPool::shared(), 0,
                                 static_cast<int>(chunks.size()),
                                 /*grain=*/1, process, options.threads);
  }
  if (options.threads_used != nullptr) {
    *options.threads_used = std::max(applied, 1);
  }

  if (skipped.load(std::memory_order_relaxed)) throw SweepCancelled();

  if (!tracker) {
    // Null / cancel-only path: one pass of in-order merges at the end,
    // exactly the pre-observer implementation.
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      const std::size_t next =
          j + 1 < jobs.size() ? first_chunk[j + 1] : chunks.size();
      MetricSet merged = std::move(partials[first_chunk[j]]);
      for (std::size_t c = first_chunk[j] + 1; c < next; ++c) {
        merged.merge(partials[c]);
      }
      results[j] = {merged.cell_stats(), merged.values()};
    }
  }
  return results;
}

std::vector<CellStats> run_cells(const std::vector<CellJob>& jobs,
                                 int threads, int* threads_used) {
  RunCellsOptions options;
  options.threads = threads;
  options.threads_used = threads_used;
  auto results = run_cells_ex(jobs, options);
  std::vector<CellStats> stats;
  stats.reserve(results.size());
  for (auto& result : results) stats.push_back(std::move(result.stats));
  return stats;
}

CellResult run_cell_ex(const SimSetup& setup, const PolicyFactory& factory,
                       const MonteCarloConfig& config,
                       ISweepObserver* observer, CancellationToken* cancel) {
  std::vector<CellJob> jobs;
  jobs.push_back({setup, factory, config});
  RunCellsOptions options;
  options.threads = config.threads;
  options.observer = observer;
  options.cancel = cancel;
  return std::move(run_cells_ex(jobs, options)[0]);
}

CellStats run_cell(const SimSetup& setup, const PolicyFactory& factory,
                   const MonteCarloConfig& config) {
  return run_cell_ex(setup, factory, config).stats;
}

}  // namespace adacheck::sim
