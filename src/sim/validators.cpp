#include "sim/validators.hpp"

#include <cmath>
#include <sstream>

namespace adacheck::sim {

namespace {
void fail(std::vector<Violation>& out, const std::string& message) {
  out.push_back({message});
}

template <typename... Args>
std::string msg(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace

std::vector<Violation> validate_result(const SimSetup& setup,
                                       const RunResult& result) {
  std::vector<Violation> out;
  const double n = setup.task.cycles;
  const double eps = 1e-6 * std::max(1.0, n);

  if (result.energy < 0.0) fail(out, "negative energy");
  if (std::abs(result.energy - result.meter.total()) > 1e-6 * (1.0 + result.energy)) {
    fail(out, msg("energy ", result.energy, " != meter total ",
                  result.meter.total()));
  }
  if (result.cycles_executed + eps < result.cycles_committed) {
    fail(out, msg("executed ", result.cycles_executed, " < committed ",
                  result.cycles_committed));
  }
  if (result.cycles_committed < -eps) fail(out, "negative committed cycles");
  if (result.completed()) {
    if (std::abs(result.cycles_committed - n) > eps) {
      fail(out, msg("completed but committed ", result.cycles_committed,
                    " != N ", n));
    }
    if (result.finish_time > setup.task.deadline + 1e-9) {
      fail(out, msg("completed after deadline: ", result.finish_time));
    }
  }
  if (result.detections != result.rollbacks) {
    fail(out, msg("detections ", result.detections, " != rollbacks ",
                  result.rollbacks));
  }
  if (result.faults < result.detections + result.corrections) {
    fail(out, msg("faults ", result.faults, " < detections ",
                  result.detections, " + corrections ",
                  result.corrections));
  }
  if (result.corrections < 0) fail(out, "negative corrections");
  if (result.cycles_executed > 0.0 && result.finish_time <= 0.0) {
    fail(out, "work executed but finish_time <= 0");
  }
  return out;
}

std::vector<Violation> validate_trace(const SimSetup& setup,
                                      const RunResult& result) {
  std::vector<Violation> out;
  const auto& events = result.trace.events();
  if (events.empty()) {
    fail(out, "trace requested but empty");
    return out;
  }

  const double n = setup.task.cycles;
  const double eps = 1e-6 * std::max(1.0, n);

  double prev_time = 0.0;
  double prev_commit = 0.0;
  double segment_cycles = 0.0;
  double checkpoint_cycles = 0.0;
  bool pending_rollback = false;
  for (const auto& e : events) {
    if (e.time + 1e-9 < prev_time) {
      fail(out, msg("time went backwards at ", to_string(e.kind), ": ",
                    e.time, " < ", prev_time));
    }
    prev_time = std::max(prev_time, e.time);

    switch (e.kind) {
      case TraceEventKind::kSegment:
        if (pending_rollback) {
          fail(out, "segment executed between detection and rollback");
        }
        if (e.value <= 0.0) fail(out, "non-positive segment cycles");
        segment_cycles += e.value;
        break;
      case TraceEventKind::kCheckpoint:
        if (e.value < 0.0) fail(out, "negative checkpoint cycles");
        checkpoint_cycles += e.value;
        break;
      case TraceEventKind::kDetection:
        pending_rollback = true;
        break;
      case TraceEventKind::kRollback:
        if (!pending_rollback) fail(out, "rollback without detection");
        pending_rollback = false;
        if (e.value < -eps || e.value > n + eps) {
          fail(out, msg("rollback discards implausible cycles: ", e.value));
        }
        break;
      case TraceEventKind::kCommit:
        if (e.value + eps < prev_commit) {
          fail(out, msg("commit went backwards: ", e.value, " < ",
                        prev_commit));
        }
        prev_commit = std::max(prev_commit, e.value);
        if (e.value > n + eps) {
          fail(out, msg("committed more work than the task has: ", e.value));
        }
        break;
      default:
        break;
    }
  }

  // Rollback restores and TMR vote repairs both charge t_r cycles.
  const double rollback_cycles =
      static_cast<double>(result.rollbacks + result.corrections) *
      setup.costs.rollback;
  const double accounted =
      segment_cycles + checkpoint_cycles + rollback_cycles;
  if (std::abs(accounted - result.cycles_executed) >
      1e-6 * (1.0 + result.cycles_executed)) {
    fail(out, msg("trace accounts for ", accounted, " cycles but meter saw ",
                  result.cycles_executed));
  }
  if (result.completed() && std::abs(prev_commit - n) > eps) {
    fail(out, msg("completed but last commit is ", prev_commit));
  }
  return out;
}

std::vector<Violation> validate_all(const SimSetup& setup,
                                    const RunResult& result) {
  auto out = validate_result(setup, result);
  if (!result.trace.empty()) {
    auto t = validate_trace(setup, result);
    out.insert(out.end(), t.begin(), t.end());
  }
  return out;
}

}  // namespace adacheck::sim
