#include "sim/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace adacheck::sim {

void CellStats::merge(const CellStats& other) noexcept {
  completion.merge(other.completion);
  energy_success.merge(other.energy_success);
  energy_all.merge(other.energy_all);
  finish_time_success.merge(other.finish_time_success);
  faults.merge(other.faults);
  rollbacks.merge(other.rollbacks);
  corrections.merge(other.corrections);
  high_speed_cycles.merge(other.high_speed_cycles);
  aborted_runs += other.aborted_runs;
  validation_failures += other.validation_failures;
}

void RunBudget::validate() const {
  const auto bad_target = [](double t) {
    return !std::isfinite(t) || t < 0.0;
  };
  if (bad_target(target_p_halfwidth) || bad_target(target_e_rel_halfwidth)) {
    throw std::invalid_argument(
        "RunBudget: targets must be finite and >= 0 (0 = unset)");
  }
  if (min_runs < 0 || max_runs < 0) {
    throw std::invalid_argument(
        "RunBudget: min_runs/max_runs must be >= 0 (0 = unset)");
  }
  if (min_runs > 0 && max_runs > 0 && min_runs > max_runs) {
    throw std::invalid_argument("RunBudget: min_runs must be <= max_runs");
  }
  if (!enabled() && (min_runs > 0 || max_runs > 0)) {
    throw std::invalid_argument(
        "RunBudget: min_runs/max_runs need a precision target "
        "(set target_p_halfwidth or target_e_rel_halfwidth)");
  }
}

PrecisionRecorder::PrecisionRecorder(const RunBudget& budget, int fixed_runs)
    : budget_(budget),
      min_(static_cast<std::size_t>(budget.resolved_min(fixed_runs))),
      max_(static_cast<std::size_t>(budget.resolved_max(fixed_runs))) {}

void PrecisionRecorder::absorb(const CellStats& chunk) {
  completion_.merge(chunk.completion);
  energy_.merge(chunk.energy_success);
}

bool PrecisionRecorder::targets_met() const noexcept {
  if (budget_.target_p_halfwidth > 0.0 &&
      !(p_halfwidth() <= budget_.target_p_halfwidth)) {
    return false;
  }
  if (budget_.target_e_rel_halfwidth > 0.0 &&
      !(e_rel_halfwidth() <= budget_.target_e_rel_halfwidth)) {
    return false;
  }
  return true;
}

bool PrecisionRecorder::should_stop() const noexcept {
  return runs() >= min_ && (targets_met() || runs() >= max_);
}

const double* MetricValues::find(std::string_view recorder,
                                 std::string_view key) const {
  for (const auto& group : groups) {
    if (group.recorder != recorder) continue;
    for (const auto& entry : group.entries) {
      if (entry.key == key) return &entry.value;
    }
  }
  return nullptr;
}

// --- CellStatsRecorder ---------------------------------------------------

void CellStatsRecorder::observe(const RunView& run) {
  const RunResult& result = run.result;
  const bool ok = result.completed();
  stats_.completion.add(ok);
  stats_.energy_all.add(result.energy);
  if (ok) {
    stats_.energy_success.add(result.energy);
    stats_.finish_time_success.add(result.finish_time);
  }
  stats_.faults.add(static_cast<double>(result.faults));
  stats_.rollbacks.add(static_cast<double>(result.rollbacks));
  stats_.corrections.add(static_cast<double>(result.corrections));
  stats_.high_speed_cycles.add(result.meter.cycles_above(run.base_frequency));
  if (result.outcome == RunOutcome::kAborted) ++stats_.aborted_runs;
  if (run.validation_failed) ++stats_.validation_failures;
}

void CellStatsRecorder::merge(const IMetricRecorder& peer) {
  stats_.merge(static_cast<const CellStatsRecorder&>(peer).stats_);
}

void CellStatsRecorder::emit(MetricValues::Group&) const {}

// --- TailRecorder --------------------------------------------------------

namespace {

double max_cell_energy(const SimSetup& setup) {
  // A run never executes past the deadline, and never faster than the
  // fastest level: cycles <= f_max * D, each costing at most V(f_max)^2.
  const auto& fastest = setup.processor.fastest();
  return fastest.energy(fastest.frequency * setup.task.deadline);
}

}  // namespace

TailRecorder::TailRecorder(const SimSetup& setup)
    : finish_time_(0.0, setup.task.deadline, kBins),
      energy_(0.0, max_cell_energy(setup), kBins) {}

void TailRecorder::observe(const RunView& run) {
  if (run.result.completed()) finish_time_.add(run.result.finish_time);
  energy_.add(run.result.energy);
}

void TailRecorder::merge(const IMetricRecorder& peer) {
  const auto& other = static_cast<const TailRecorder&>(peer);
  finish_time_.merge(other.finish_time_);
  energy_.merge(other.energy_);
}

void TailRecorder::emit(MetricValues::Group& out) const {
  const auto quantiles = [&out](const char* prefix,
                                const util::Histogram& hist) {
    static constexpr std::pair<const char*, double> kQuantiles[] = {
        {"_p50", 0.50}, {"_p90", 0.90}, {"_p99", 0.99}, {"_p999", 0.999}};
    out.entries.push_back(
        {std::string(prefix) + "_count", static_cast<double>(hist.total())});
    for (const auto& [suffix, q] : kQuantiles) {
      out.entries.push_back({std::string(prefix) + suffix, hist.quantile(q)});
    }
  };
  quantiles("finish_time", finish_time_);
  quantiles("energy", energy_);
}

// --- CheckpointRecorder --------------------------------------------------

void CheckpointRecorder::observe(const RunView& run) {
  const RunResult& result = run.result;
  scp_.add(static_cast<double>(result.checkpoints_scp));
  ccp_.add(static_cast<double>(result.checkpoints_ccp));
  cscp_.add(static_cast<double>(result.checkpoints_cscp));
  detections_.add(static_cast<double>(result.detections));
  speed_switches_.add(static_cast<double>(result.speed_switches));
}

void CheckpointRecorder::merge(const IMetricRecorder& peer) {
  const auto& other = static_cast<const CheckpointRecorder&>(peer);
  scp_.merge(other.scp_);
  ccp_.merge(other.ccp_);
  cscp_.merge(other.cscp_);
  detections_.merge(other.detections_);
  speed_switches_.merge(other.speed_switches_);
}

void CheckpointRecorder::emit(MetricValues::Group& out) const {
  out.entries.push_back({"scp_mean", scp_.mean()});
  out.entries.push_back({"ccp_mean", ccp_.mean()});
  out.entries.push_back({"cscp_mean", cscp_.mean()});
  out.entries.push_back({"detections_mean", detections_.mean()});
  out.entries.push_back({"speed_switches_mean", speed_switches_.mean()});
}

// --- suite + registry ----------------------------------------------------

MetricSuite& MetricSuite::add(std::string name, MetricRecorderFactory factory) {
  if (!factory) {
    throw std::invalid_argument("MetricSuite::add: null factory for \"" +
                                name + "\"");
  }
  names_.push_back(std::move(name));
  factories_.push_back(std::move(factory));
  return *this;
}

std::vector<std::unique_ptr<IMetricRecorder>> MetricSuite::instantiate(
    const SimSetup& setup) const {
  std::vector<std::unique_ptr<IMetricRecorder>> recorders;
  recorders.reserve(factories_.size());
  for (const auto& factory : factories_) recorders.push_back(factory(setup));
  return recorders;
}

std::vector<std::string> known_metric_recorders() {
  return {"tails", "checkpoints"};
}

std::shared_ptr<const MetricSuite> make_metric_suite(
    const std::vector<std::string>& names) {
  auto suite = std::make_shared<MetricSuite>();
  for (const auto& name : names) {
    const auto& seen = suite->names();
    if (std::find(seen.begin(), seen.end(), name) != seen.end()) {
      throw std::invalid_argument("make_metric_suite: duplicate recorder \"" +
                                  name + "\"");
    }
    if (name == "tails") {
      suite->add(name, [](const SimSetup& setup) {
        return std::make_unique<TailRecorder>(setup);
      });
    } else if (name == "checkpoints") {
      suite->add(name, [](const SimSetup&) {
        return std::make_unique<CheckpointRecorder>();
      });
    } else {
      throw std::invalid_argument("make_metric_suite: unknown recorder \"" +
                                  name + "\"");
    }
  }
  return suite;
}

// --- MetricSet -----------------------------------------------------------

MetricSet MetricSet::for_cell(const SimSetup& setup,
                              const MetricSuite* suite) {
  MetricSet set;
  set.recorders_.push_back(std::make_unique<CellStatsRecorder>());
  if (suite != nullptr) {
    auto extras = suite->instantiate(setup);
    set.recorders_.insert(set.recorders_.end(),
                          std::make_move_iterator(extras.begin()),
                          std::make_move_iterator(extras.end()));
  }
  return set;
}

MetricSet MetricSet::from_recorders(
    std::vector<std::unique_ptr<IMetricRecorder>> recorders) {
  if (recorders.empty() ||
      dynamic_cast<CellStatsRecorder*>(recorders.front().get()) == nullptr) {
    throw std::invalid_argument(
        "MetricSet::from_recorders: slot 0 must be a CellStatsRecorder");
  }
  MetricSet set;
  set.recorders_ = std::move(recorders);
  return set;
}

void MetricSet::observe(const RunView& run) {
  for (auto& recorder : recorders_) recorder->observe(run);
}

void MetricSet::merge(const MetricSet& other) {
  if (!other.valid()) return;
  if (!valid()) {
    throw std::logic_error("MetricSet::merge: merging into an empty set");
  }
  if (recorders_.size() != other.recorders_.size()) {
    throw std::logic_error("MetricSet::merge: mismatched recorder sets");
  }
  for (std::size_t i = 0; i < recorders_.size(); ++i) {
    recorders_[i]->merge(*other.recorders_[i]);
  }
}

const CellStats& MetricSet::cell_stats() const {
  return static_cast<const CellStatsRecorder&>(*recorders_.front()).stats();
}

CellStats& MetricSet::cell_stats() {
  return static_cast<CellStatsRecorder&>(*recorders_.front()).stats();
}

MetricValues MetricSet::values() const {
  MetricValues values;
  for (std::size_t i = 1; i < recorders_.size(); ++i) {
    MetricValues::Group group;
    group.recorder = std::string(recorders_[i]->name());
    recorders_[i]->emit(group);
    values.groups.push_back(std::move(group));
  }
  return values;
}

}  // namespace adacheck::sim
