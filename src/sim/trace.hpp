// Execution event traces.
//
// When enabled, the engine records every semantically meaningful event
// of a run: computation segments, checkpoint operations, physical
// faults, detections, rollbacks, commits, speed changes, and the final
// outcome.  Traces feed the invariant validators, the debugging
// examples, and the replay tests.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace adacheck::sim {

enum class TraceEventKind {
  kSegment,      ///< computation: value = cycles executed, aux = sub index
  kCheckpoint,   ///< value = overhead cycles, aux = op (0 SCP store,
                 ///< 1 CCP compare, 2 CSCP compare-and-store)
  kFault,        ///< physical fault strikes, aux = processor id
  kDetection,    ///< comparison observed disagreement
  kCorrection,   ///< TMR majority vote repaired a replica, aux = mask
  kRollback,     ///< value = cycles discarded, aux = faults detected so far
  kCommit,       ///< CSCP committed, value = total committed cycles
  kSpeedChange,  ///< value = new frequency
  kAbort,        ///< policy broke with task failure
  kDeadlineMiss, ///< wall clock passed the deadline
  kComplete,     ///< all work committed
};

const char* to_string(TraceEventKind kind) noexcept;

struct TraceEvent {
  TraceEventKind kind;
  double time = 0.0;   ///< wall-clock timestamp of the event('s end)
  double value = 0.0;  ///< kind-specific payload (see enum docs)
  int aux = 0;         ///< kind-specific payload
};

class Trace {
 public:
  void push(TraceEventKind kind, double time, double value = 0.0, int aux = 0);
  const std::vector<TraceEvent>& events() const noexcept { return events_; }
  bool empty() const noexcept { return events_.empty(); }
  std::size_t size() const noexcept { return events_.size(); }

  std::size_t count(TraceEventKind kind) const noexcept;
  /// Renders a human-readable listing (one event per line).
  std::string to_string() const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace adacheck::sim
