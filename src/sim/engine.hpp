// DMR execution engine.
//
// Simulates one job of a task on a replicated (DMR/TMR/NMR) system
// under a checkpointing policy: computation segments, SCP/CCP/CSCP
// operations, transient faults from a pluggable environment (Poisson,
// renewal, Markov-modulated bursts, common cause — or replayed),
// comparison-based detection, rollback recovery, DVS speed changes,
// and V^2-per-cycle energy accounting.  The engine owns the
// *mechanics* — policies only pick speeds and interval lengths (see
// sim/policy.hpp).
//
// Semantics implemented (DESIGN.md §3):
//  * Faults strike either processor during computation (optionally also
//    during checkpoint operations); they corrupt processor state and
//    stay latent until a comparison (CCP or CSCP) observes disagreement.
//  * SCP mode: detection at the interval-end CSCP; rollback to the most
//    recent SCP preceding the first fault of the attempt (that work is
//    committed — its stored states are identical).
//  * CCP mode: detection at the first comparison at/after the fault;
//    rollback to the interval-start CSCP (nothing in between was
//    stored).
//  * None mode: equivalent to CCP mode with a single sub-interval.
//  * A CSCP compares (t_cp) and, only on agreement, stores (t_s).
//  * After every detection the policy is consulted again (Fig. 3/6/7
//    "else" branch); after every committed CSCP it may optionally
//    replace the plan (paper recomputes only on faults).
//  * The run ends at completion, at the deadline (failure), or when the
//    policy aborts (Fig. 6 line 6).
#pragma once

#include <utility>

#include "model/checkpoint.hpp"
#include "model/fault.hpp"
#include "model/fault_env.hpp"
#include "model/speed.hpp"
#include "model/task.hpp"
#include "sim/policy.hpp"
#include "sim/run_result.hpp"

namespace adacheck::sim {

/// Immutable description of one simulation scenario.
struct SimSetup {
  model::TaskSpec task;
  model::CheckpointCosts costs;       ///< cycle units
  model::DvsProcessor processor;
  model::FaultModel fault_model;
  /// How faults arrive (distribution shape, bursts, common cause).
  /// The default is the paper's homogeneous Poisson process, which is
  /// bit-identical to the pre-environment simulator.
  model::FaultEnvironment environment;

  SimSetup() = default;
  SimSetup(model::TaskSpec task_, model::CheckpointCosts costs_,
           model::DvsProcessor processor_, model::FaultModel fault_model_,
           model::FaultEnvironment environment_ = {})
      : task(std::move(task_)), costs(costs_),
        processor(std::move(processor_)), fault_model(fault_model_),
        environment(environment_) {}

  void validate() const;
};

struct EngineConfig {
  bool record_trace = false;
  /// Safety valve: the engine throws if a single run executes more than
  /// this many sub-interval attempts (guards against degenerate plans).
  std::size_t max_steps = 50'000'000;
};

/// Runs one job to completion / deadline / abort and returns the
/// outcome.  `fault_source` supplies fault arrival times on the
/// *exposure* clock (cumulative vulnerable time); use
/// model::PoissonFaultSource for stochastic runs or
/// model::ReplayFaultSource for deterministic replay.
RunResult simulate(const SimSetup& setup, ICheckpointPolicy& policy,
                   model::FaultSource& fault_source,
                   const EngineConfig& config = {});

/// Convenience overload: stochastic faults from a fresh RNG seed,
/// drawn by the source matching setup.environment (Poisson, renewal,
/// or Markov-modulated burst — see model::make_fault_source).
RunResult simulate_seeded(const SimSetup& setup, ICheckpointPolicy& policy,
                          std::uint64_t seed, const EngineConfig& config = {});

}  // namespace adacheck::sim
