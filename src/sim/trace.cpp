#include "sim/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace adacheck::sim {

const char* to_string(TraceEventKind kind) noexcept {
  switch (kind) {
    case TraceEventKind::kSegment: return "segment";
    case TraceEventKind::kCheckpoint: return "checkpoint";
    case TraceEventKind::kFault: return "fault";
    case TraceEventKind::kDetection: return "detection";
    case TraceEventKind::kCorrection: return "correction";
    case TraceEventKind::kRollback: return "rollback";
    case TraceEventKind::kCommit: return "commit";
    case TraceEventKind::kSpeedChange: return "speed-change";
    case TraceEventKind::kAbort: return "abort";
    case TraceEventKind::kDeadlineMiss: return "deadline-miss";
    case TraceEventKind::kComplete: return "complete";
  }
  return "?";
}

void Trace::push(TraceEventKind kind, double time, double value, int aux) {
  events_.push_back({kind, time, value, aux});
}

std::size_t Trace::count(TraceEventKind kind) const noexcept {
  return static_cast<std::size_t>(
      std::count_if(events_.begin(), events_.end(),
                    [kind](const TraceEvent& e) { return e.kind == kind; }));
}

std::string Trace::to_string() const {
  std::ostringstream out;
  char buf[160];
  for (const auto& e : events_) {
    std::snprintf(buf, sizeof buf, "t=%10.3f  %-13s value=%.3f aux=%d\n",
                  e.time, sim::to_string(e.kind), e.value, e.aux);
    out << buf;
  }
  return out.str();
}

}  // namespace adacheck::sim
