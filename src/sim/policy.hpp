// Policy interface between the DMR execution engine and the
// checkpointing schemes.
//
// The engine owns the mechanics (fault sampling, detection points,
// rollback targets, time/energy accounting); a policy owns the
// decisions the paper's pseudocode makes: the processor speed, the
// outer CSCP interval length Itv, the inner checkpoint kind and
// sub-interval length itv, and the early-abort call.  Policies are
// consulted at the three points where the paper's procedures act:
// before the first interval (line 1-4), after every fault detection
// (the else branch), and after every committed CSCP (where the
// pseudocode only updates Rt/Rd, so most policies keep their plan).
#pragma once

#include <optional>
#include <string>

#include "model/checkpoint.hpp"
#include "model/speed.hpp"
#include "model/task.hpp"

namespace adacheck::sim {

/// Inner-checkpoint flavor between consecutive CSCPs.
enum class InnerKind {
  kNone,  ///< plain CSCP scheme (baselines, A_D)
  kScp,   ///< additional store-checkpoints (paper §2.1)
  kCcp,   ///< additional compare-checkpoints (paper §2.2)
};

const char* to_string(InnerKind kind) noexcept;

/// One checkpointing plan, valid until the next decision point.
/// Lengths are wall-clock time units at `speed`.
struct Decision {
  model::SpeedLevel speed{};
  double cscp_interval = 0.0;  ///< Itv: distance between CSCPs.
  double sub_interval = 0.0;   ///< itv: distance between inner checkpoints
                               ///< (== cscp_interval when inner == kNone).
  InnerKind inner = InnerKind::kNone;
  bool abort = false;  ///< break with task failure (Fig. 6 line 6).
};

/// Execution snapshot a policy sees at a decision point.  All times are
/// absolute wall-clock; work is in cycles (speed-independent).
struct ExecContext {
  const model::TaskSpec* task = nullptr;
  const model::CheckpointCosts* costs = nullptr;  ///< cycle units
  const model::DvsProcessor* processor = nullptr;
  /// System-level fault rate (per exposure time): the environment's
  /// long-run effective rate — exact for exponential arrivals, the
  /// documented approximation for renewal/bursty environments
  /// (policies wanting to track the realized rate online can blend in
  /// faults_detected / exposure, see
  /// policy::AdaptiveConfig::estimate_rate).
  double lambda = 0.0;
  double remaining_cycles = 0.0; ///< R_c: committed work still to do.
  double now = 0.0;              ///< elapsed wall-clock time.
  /// Cumulative vulnerable time: the clock lambda is defined on
  /// (computation only, unless faults_during_overhead).
  double exposure = 0.0;
  int remaining_faults = 0;      ///< R_f: fault budget left.
  int faults_detected = 0;       ///< detections + corrections so far.
  int redundancy = 2;            ///< replicas: 2 (DMR), 3 (TMR), N (NMR).

  /// R_d: time left before the deadline.
  double remaining_deadline() const noexcept {
    return task->deadline - now;
  }
};

class ICheckpointPolicy {
 public:
  virtual ~ICheckpointPolicy() = default;

  virtual std::string name() const = 0;

  /// Re-arms the policy for a fresh, independent run, as if newly
  /// constructed.  Returns false when the policy cannot guarantee that;
  /// the Monte-Carlo loop then falls back to constructing a new
  /// instance per run from its PolicyFactory.  Overriding this keeps
  /// the hot path allocation-free: one instance serves a whole chunk
  /// of runs.
  virtual bool reset() { return false; }

  /// Called once before execution begins.
  virtual Decision initial(const ExecContext& ctx) = 0;

  /// Called after every fault detection + rollback (context reflects
  /// the rolled-back state).  Adaptive schemes recompute speed and
  /// intervals here; fixed schemes return their standing plan.
  virtual Decision on_fault(const ExecContext& ctx) = 0;

  /// Called after every committed CSCP.  Return a new plan to replace
  /// the current one, or nullopt to keep it (the default — the paper's
  /// procedures only recompute on faults).
  virtual std::optional<Decision> on_commit(const ExecContext& ctx) {
    (void)ctx;
    return std::nullopt;
  }
};

}  // namespace adacheck::sim
