#include "obs/trace.hpp"

#include <fstream>

namespace adacheck::obs {

namespace {

void append_escaped(std::string& out, const std::string& text) {
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out.push_back(' ');  // control chars never appear in span names
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace

Tracer& Tracer::instance() {
  static Tracer* const tracer = new Tracer();  // never destroyed
  return *tracer;
}

void Tracer::complete(std::string name, const char* category,
                      std::uint64_t start_micros, std::uint64_t dur_micros) {
  if (!enabled()) return;
  Event event;
  event.name = std::move(name);
  event.category = category;
  event.phase = 'X';
  event.ts_micros = start_micros;
  event.dur_micros = dur_micros;
  event.tid = thread_id();
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

void Tracer::complete(std::string name, const char* category,
                      std::uint64_t start_micros, std::uint64_t dur_micros,
                      int tid) {
  if (!enabled()) return;
  Event event;
  event.name = std::move(name);
  event.category = category;
  event.phase = 'X';
  event.ts_micros = start_micros;
  event.dur_micros = dur_micros;
  event.tid = tid;
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

void Tracer::instant(std::string name, const char* category) {
  if (!enabled()) return;
  Event event;
  event.name = std::move(name);
  event.category = category;
  event.phase = 'i';
  event.ts_micros = now_micros();
  event.tid = thread_id();
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void Tracer::write_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  bool first = true;
  std::string line;
  for (const auto& event : events_) {
    if (!first) os << ",\n";
    first = false;
    line.clear();
    line += "  {\"name\": ";
    append_escaped(line, event.name);
    line += ", \"cat\": ";
    append_escaped(line, event.category);
    line += ", \"ph\": \"";
    line.push_back(event.phase);
    line += "\", \"ts\": ";
    line += std::to_string(event.ts_micros);
    if (event.phase == 'X') {
      line += ", \"dur\": ";
      line += std::to_string(event.dur_micros);
    } else {
      line += ", \"s\": \"t\"";
    }
    line += ", \"pid\": 1, \"tid\": ";
    line += std::to_string(event.tid);
    line += "}";
    os << line;
  }
  os << "\n]}\n";
}

bool Tracer::write_file(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  if (!os) return false;
  write_json(os);
  return os.good();
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

}  // namespace adacheck::obs
