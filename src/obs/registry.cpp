#include "obs/registry.hpp"

#include <algorithm>
#include <bit>
#include <charconv>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace adacheck::obs {

namespace {

std::chrono::steady_clock::time_point process_epoch() noexcept {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

// Touch the epoch as early as static init allows so now_micros() is
// small-and-growing rather than anchored to the first instrumented call.
const auto g_epoch_init = process_epoch();

std::atomic<int> g_next_thread_id{0};

}  // namespace

std::uint64_t now_micros() noexcept {
  const auto elapsed = std::chrono::steady_clock::now() - process_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count());
}

int thread_id() noexcept {
  thread_local const int id =
      g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

// ---------------------------------------------------------------------------
// LatencyHisto

void LatencyHisto::record(std::uint64_t micros) noexcept {
  const int bin = std::min(static_cast<int>(std::bit_width(micros)), kBins - 1);
  bins_[static_cast<std::size_t>(bin)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(static_cast<long long>(micros), std::memory_order_relaxed);
  long long seen = max_.load(std::memory_order_relaxed);
  const auto value = static_cast<long long>(micros);
  while (seen < value &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

long long LatencyHisto::count() const noexcept {
  return count_.load(std::memory_order_relaxed);
}

long long LatencyHisto::sum_micros() const noexcept {
  return sum_.load(std::memory_order_relaxed);
}

long long LatencyHisto::max_micros() const noexcept {
  return max_.load(std::memory_order_relaxed);
}

double LatencyHisto::quantile_micros(double q) const noexcept {
  const long long total = count();
  if (total <= 0) return 0.0;
  const double target = q * static_cast<double>(total);
  long long seen = 0;
  for (int bin = 0; bin < kBins; ++bin) {
    seen += bins_[static_cast<std::size_t>(bin)].load(std::memory_order_relaxed);
    if (static_cast<double>(seen) >= target) {
      // Upper bound of bin i is 2^i - 1 micros (bin 0 holds zeros);
      // clamp to the observed maximum so the tail estimate never
      // exceeds a real sample.
      const double upper =
          bin == 0 ? 0.0 : std::ldexp(1.0, bin) - 1.0;
      return std::min(upper, static_cast<double>(max_micros()));
    }
  }
  return static_cast<double>(max_micros());
}

void LatencyHisto::reset() noexcept {
  for (auto& bin : bins_) bin.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Registry

Registry& Registry::instance() {
  static Registry* const registry = new Registry();  // never destroyed
  return *registry;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

LatencyHisto& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<LatencyHisto>();
  return *slot;
}

StatsSnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  StatsSnapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.counters.push_back({name, counter->value()});
  }
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.gauges.push_back({name, gauge->value()});
  }
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, histo] : histograms_) {
    StatsSnapshot::Histo h;
    h.name = name;
    h.count = histo->count();
    h.sum_micros = histo->sum_micros();
    h.max_micros = histo->max_micros();
    h.p50_micros = histo->quantile_micros(0.50);
    h.p90_micros = histo->quantile_micros(0.90);
    h.p99_micros = histo->quantile_micros(0.99);
    out.histograms.push_back(std::move(h));
  }
  return out;  // std::map iteration is already name-sorted
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, histo] : histograms_) histo->reset();
}

// ---------------------------------------------------------------------------
// adacheck-stats-v1 encoding
//
// obs sits below util/harness, so it carries its own minimal JSON
// emitter: string keys are metric names (dot-separated identifiers)
// but are escaped defensively anyway; doubles are emitted via
// std::to_chars shortest round-trip like harness::JsonWriter.

namespace {

void append_escaped(std::string& out, const std::string& text) {
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_number(std::string& out, long long value) {
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  out.append(buf, ptr);
}

void append_number(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "null";
    return;
  }
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  std::string text(buf, ptr);
  // Keep integral doubles recognisably floating ("12" -> "12.0").
  if (text.find_first_of(".eE") == std::string::npos) text += ".0";
  out += text;
}

/// Tiny layout helper so compact and pretty share one emission path.
struct Layout {
  bool pretty = false;
  int depth = 0;

  void open(std::string& out, char brace) {
    out.push_back(brace);
    ++depth;
  }
  void close(std::string& out, char brace, bool had_items) {
    --depth;
    if (pretty && had_items) newline(out);
    out.push_back(brace);
  }
  void item(std::string& out, bool first) {
    if (!first) out.push_back(',');
    if (pretty) newline(out);
  }
  void newline(std::string& out) {
    out.push_back('\n');
    out.append(static_cast<std::size_t>(depth) * 2, ' ');
  }
  void key(std::string& out, const std::string& name) {
    append_escaped(out, name);
    out.push_back(':');
    if (pretty) out.push_back(' ');
  }
};

void append_scalars(std::string& out, Layout& layout,
                    const std::vector<StatsSnapshot::Scalar>& scalars) {
  layout.open(out, '{');
  bool first = true;
  for (const auto& scalar : scalars) {
    layout.item(out, first);
    first = false;
    layout.key(out, scalar.name);
    append_number(out, scalar.value);
  }
  layout.close(out, '}', !scalars.empty());
}

}  // namespace

std::string stats_json(const StatsSnapshot& snapshot, bool pretty) {
  std::string out;
  Layout layout{pretty, 0};
  layout.open(out, '{');

  layout.item(out, true);
  layout.key(out, "schema");
  append_escaped(out, kStatsSchema);

  layout.item(out, false);
  layout.key(out, "counters");
  append_scalars(out, layout, snapshot.counters);

  layout.item(out, false);
  layout.key(out, "gauges");
  append_scalars(out, layout, snapshot.gauges);

  layout.item(out, false);
  layout.key(out, "histograms");
  layout.open(out, '{');
  bool first = true;
  for (const auto& histo : snapshot.histograms) {
    layout.item(out, first);
    first = false;
    layout.key(out, histo.name);
    layout.open(out, '{');
    layout.item(out, true);
    layout.key(out, "count");
    append_number(out, histo.count);
    layout.item(out, false);
    layout.key(out, "sum_micros");
    append_number(out, histo.sum_micros);
    layout.item(out, false);
    layout.key(out, "max_micros");
    append_number(out, histo.max_micros);
    layout.item(out, false);
    layout.key(out, "p50_micros");
    append_number(out, histo.p50_micros);
    layout.item(out, false);
    layout.key(out, "p90_micros");
    append_number(out, histo.p90_micros);
    layout.item(out, false);
    layout.key(out, "p99_micros");
    append_number(out, histo.p99_micros);
    layout.close(out, '}', true);
  }
  layout.close(out, '}', !snapshot.histograms.empty());

  layout.close(out, '}', true);
  if (pretty) out.push_back('\n');
  return out;
}

}  // namespace adacheck::obs
