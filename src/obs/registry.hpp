// Runtime telemetry: process-wide counters, gauges, and latency
// histograms for the operational layers (thread pool, sweeps,
// campaigns, serve).
//
// This is *operational* observability — queue depths, cache hit
// rates, request latencies — as opposed to the *result* observability
// of sim/metrics (statistics of the simulated system).  The hard
// invariant, pinned by obs_test and a CI cmp: telemetry is purely
// additive.  Result documents (sweep reports, cell JSONL, campaign
// reports) are byte-identical with telemetry on, off, and at any
// thread count; timestamps and durations appear only in obs outputs.
//
// Concurrency model:
//  * Writes are atomics on the hot path.  Counters shard across
//    cache-line-padded lanes keyed by a per-thread id, so concurrent
//    increments never contend on one line; reads merge the shards.
//  * A disabled registry costs instrumented code one relaxed load:
//    every site checks `enabled()` before touching clocks or metrics.
//  * Metric objects are created on first use under a mutex and are
//    never destroyed or moved afterwards, so call sites may cache
//    `Counter&` references for the process lifetime (reset() zeroes
//    values in place, it does not invalidate references).
//
// Snapshots serialize as the adacheck-stats-v1 JSON document (the
// serve `stats` verb and the --metrics-out flags): metric names map
// to values, sorted by name, deterministic encoding.  Layering: obs
// sits *below* util (the thread pool is itself instrumented), so this
// header depends on the standard library only.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace adacheck::obs {

/// Monotonic microseconds since the process-wide telemetry epoch (the
/// first call).  The one clock every obs timestamp uses — never wall
/// time, so traces and transcripts are immune to clock steps.
std::uint64_t now_micros() noexcept;

/// Small dense id of the calling thread (0, 1, 2, ... in first-use
/// order) — the "tid" of trace events and the counter-shard key.
int thread_id() noexcept;

/// Monotonically increasing event count, sharded to keep concurrent
/// writers off each other's cache lines.
class Counter {
 public:
  static constexpr int kShards = 8;

  void add(long long delta = 1) noexcept {
    shards_[static_cast<std::size_t>(thread_id()) % kShards].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

  /// Merged total across shards.
  long long value() const noexcept {
    long long total = 0;
    for (const auto& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void reset() noexcept {
    for (auto& shard : shards_) shard.value.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<long long> value{0};
  };
  std::array<Shard, kShards> shards_{};
};

/// Point-in-time level (queue depth, cells in flight).  Last write
/// wins; add() supports increment/decrement use.
class Gauge {
 public:
  void set(long long value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  void add(long long delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  long long value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0); }

 private:
  std::atomic<long long> value_{0};
};

/// Latency histogram over log2 microsecond bins: bin i holds samples
/// in [2^(i-1), 2^i) microseconds (bin 0 is < 1us).  Quantiles are
/// bin-resolution estimates (reported as the bin's upper bound,
/// clamped to the observed maximum) — right for "where does the time
/// go", not for nanosecond benchmarking.
class LatencyHisto {
 public:
  static constexpr int kBins = 64;

  void record(std::uint64_t micros) noexcept;

  long long count() const noexcept;
  long long sum_micros() const noexcept;
  long long max_micros() const noexcept;
  /// q in (0, 1]; 0 when the histogram is empty.
  double quantile_micros(double q) const noexcept;

  void reset() noexcept;

 private:
  std::array<std::atomic<long long>, kBins> bins_{};
  std::atomic<long long> count_{0};
  std::atomic<long long> sum_{0};
  std::atomic<long long> max_{0};
};

/// One merged, ordered read of a registry (the adacheck-stats-v1
/// payload before encoding).
struct StatsSnapshot {
  struct Scalar {
    std::string name;
    long long value = 0;
  };
  struct Histo {
    std::string name;
    long long count = 0;
    long long sum_micros = 0;
    long long max_micros = 0;
    double p50_micros = 0.0;
    double p90_micros = 0.0;
    double p99_micros = 0.0;
  };
  std::vector<Scalar> counters;    ///< sorted by name
  std::vector<Scalar> gauges;      ///< sorted by name
  std::vector<Histo> histograms;   ///< sorted by name
};

inline constexpr const char* kStatsSchema = "adacheck-stats-v1";

/// Serializes a snapshot as one adacheck-stats-v1 JSON document:
/// {"schema":...,"counters":{name:value,...},"gauges":{...},
/// "histograms":{name:{"count","sum_micros","max_micros",
/// "p50_micros","p90_micros","p99_micros"},...}}.  Compact by default
/// (embeddable in a protocol line); pretty adds two-space indentation
/// for --metrics-out files.  Deterministic given the snapshot.
std::string stats_json(const StatsSnapshot& snapshot, bool pretty = false);

/// Named-metric registry.  The process-wide one is instance();
/// separate instances exist for unit tests.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry every instrumented layer writes to.
  /// Never destroyed (worker threads may outlive static teardown).
  static Registry& instance();

  /// Master switch; disabled (the default) makes every instrumentation
  /// site a single relaxed load.
  void set_enabled(bool enabled) noexcept {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Finds or creates the named metric.  The reference stays valid for
  /// the registry's lifetime; naming scheme is "layer.metric"
  /// ("pool.queue_depth", "serve.request_us.submit").
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  LatencyHisto& histogram(const std::string& name);

  /// Merged, name-sorted read of everything registered so far.
  StatsSnapshot snapshot() const;

  /// Zeroes every value in place (references stay valid).  Tests only.
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHisto>> histograms_;
  std::atomic<bool> enabled_{false};
};

}  // namespace adacheck::obs
