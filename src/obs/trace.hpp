// Span/instant event tracing in the Chrome trace-event JSON format,
// loadable in Perfetto (https://ui.perfetto.dev) or chrome://tracing.
//
// Same contract as the metrics registry: disabled (the default) costs
// instrumented code one relaxed load and the RAII Span helper never
// touches the clock; enabled, events are buffered in memory (mutex +
// vector — tracing targets smoke runs and incident captures, not
// always-on production recording) and flushed once via write_file()
// when the process is about to exit.  Timestamps are obs::now_micros()
// monotonic microseconds, thread ids are obs::thread_id() dense ints.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/registry.hpp"  // now_micros, thread_id

namespace adacheck::obs {

class Tracer {
 public:
  struct Event {
    std::string name;
    const char* category = "";  ///< static string: "pool", "sweep", ...
    char phase = 'X';           ///< 'X' complete span, 'i' instant
    std::uint64_t ts_micros = 0;
    std::uint64_t dur_micros = 0;
    int tid = 0;
  };

  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The process-wide tracer; never destroyed.
  static Tracer& instance();

  void set_enabled(bool enabled) noexcept {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Records a complete span ('X'); start/duration from the caller so
  /// the span can be timed without holding the tracer lock.
  void complete(std::string name, const char* category,
                std::uint64_t start_micros, std::uint64_t dur_micros);

  /// complete() with an explicit lane id instead of the calling
  /// thread's.  For simulated-time spans (the DAG executive's worker
  /// lanes): timestamps come from the simulation clock and the "tid"
  /// is the simulated worker, so Perfetto renders the schedule rather
  /// than the host threads.
  void complete(std::string name, const char* category,
                std::uint64_t start_micros, std::uint64_t dur_micros,
                int tid);

  /// Records a zero-duration instant event ('i', thread scope).
  void instant(std::string name, const char* category);

  std::size_t event_count() const;

  /// Serializes buffered events as one Chrome trace-event JSON object:
  /// {"displayTimeUnit":"ms","traceEvents":[...]}.
  void write_json(std::ostream& os) const;

  /// write_json to a file; returns false (and logs nothing — obs sits
  /// below util/log) when the file cannot be opened.
  bool write_file(const std::string& path) const;

  /// Drops all buffered events.  Tests only.
  void clear();

 private:
  mutable std::mutex mu_;
  std::vector<Event> events_;
  std::atomic<bool> enabled_{false};
};

/// RAII complete-span helper:
///
///   obs::Span span("chunk", "sweep");
///   ... work ...
///   // destructor emits the event if tracing was enabled at start
///
/// Gates itself on Tracer::instance().enabled() at construction; a
/// span that began while disabled stays disabled even if tracing is
/// switched on mid-flight (avoids bogus durations).
class Span {
 public:
  Span(std::string name, const char* category)
      : enabled_(Tracer::instance().enabled()) {
    if (enabled_) {
      name_ = std::move(name);
      category_ = category;
      start_ = now_micros();
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() {
    if (enabled_) {
      Tracer::instance().complete(std::move(name_), category_, start_,
                                  now_micros() - start_);
    }
  }

 private:
  bool enabled_;
  std::string name_;
  const char* category_ = "";
  std::uint64_t start_ = 0;
};

}  // namespace adacheck::obs
