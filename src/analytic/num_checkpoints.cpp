#include "analytic/num_checkpoints.hpp"

#include <algorithm>
#include <cmath>

#include "util/optimize.hpp"

namespace adacheck::analytic {

int max_sub_intervals(double interval, const model::CheckpointCosts& costs) {
  // A sub-interval shorter than the cheaper of the two checkpoint
  // operations can never pay for itself; also hard-cap for safety.
  const double cheapest = std::max(std::min(costs.store, costs.compare), 1e-9);
  const double cap = interval / cheapest;
  return std::clamp(static_cast<int>(cap), 1, 4096);
}

namespace {

/// Shared Fig. 2 skeleton: golden-section over T1 in (0, T], then round
/// m = T/T1~ to the better neighbor.
template <typename EvalContinuous, typename EvalInteger>
int fig2_optimize(double interval, int m_max, EvalContinuous r_cont,
                  EvalInteger r_int) {
  // Line 1: T1~ = argmin of the continuous relaxation.  The cost blows
  // up as T1 -> 0, so search on [T/m_max, T].
  const double lo = interval / static_cast<double>(m_max);
  const auto minimum = util::golden_section_minimize(
      [&](double t1) { return r_cont(t1); }, lo, interval,
      std::max(1e-9, interval * 1e-9));
  const double t1_opt = minimum.x;
  // Line 2-7: if T1~ < T round m = T/T1~ to the better of floor/ceil,
  // else a single sub-interval is optimal.
  if (t1_opt >= interval) return 1;
  const int m_floor =
      std::max(1, static_cast<int>(std::floor(interval / t1_opt)));
  const int m_ceil = std::min(m_max, m_floor + 1);
  return r_int(m_floor) <= r_int(m_ceil) ? m_floor : m_ceil;
}

}  // namespace

int num_scp(const ScpRenewalParams& params) {
  params.validate();
  const int m_max = max_sub_intervals(params.interval, params.costs);
  return fig2_optimize(
      params.interval, m_max,
      [&](double t1) { return scp_expected_time_continuous(params, t1); },
      [&](int m) { return scp_expected_time(params, m); });
}

int num_ccp(const CcpRenewalParams& params) {
  params.validate();
  const int m_max = max_sub_intervals(params.interval, params.costs);
  return fig2_optimize(
      params.interval, m_max,
      [&](double t2) { return ccp_expected_time_continuous(params, t2); },
      [&](int m) { return ccp_expected_time(params, m); });
}

int num_scp_exhaustive(const ScpRenewalParams& params) {
  params.validate();
  const int m_max = max_sub_intervals(params.interval, params.costs);
  const auto best = util::integer_argmin(
      [&](std::int64_t m) {
        return scp_expected_time(params, static_cast<int>(m));
      },
      1, m_max, /*early_stop_rises=*/8);
  return static_cast<int>(best.x);
}

int num_ccp_exhaustive(const CcpRenewalParams& params) {
  params.validate();
  const int m_max = max_sub_intervals(params.interval, params.costs);
  const auto best = util::integer_argmin(
      [&](std::int64_t m) {
        return ccp_expected_time(params, static_cast<int>(m));
      },
      1, m_max, /*early_stop_rises=*/8);
  return static_cast<int>(best.x);
}

}  // namespace adacheck::analytic
